/**
 * @file
 * Power-model tests: report-tree mechanics, Table IV/V anchors,
 * Eq. 1 structure (static independent of activity, dynamic linear in
 * activity), and process scaling.
 */

#include <gtest/gtest.h>

#include "perf/activity.hh"
#include "power/chip_power.hh"
#include "power/report.hh"

using namespace gpusimpow;
using namespace gpusimpow::power;

namespace {

perf::ChipActivity
idleActivity(const GpuConfig &cfg)
{
    perf::ChipActivity a;
    a.cores.resize(cfg.numCores());
    a.cluster_busy_cycles.assign(cfg.clusters, 0);
    a.shader_cycles = 1000000;
    a.elapsed_s = 1e-3;
    return a;
}

perf::ChipActivity
busyActivity(const GpuConfig &cfg, uint64_t scale = 1)
{
    perf::ChipActivity a = idleActivity(cfg);
    for (auto &c : a.cores) {
        c.cycles_resident = 1000000;
        c.issued_insts = 800000 * scale;
        c.int_lane_ops = 8000000 * scale;
        c.fp_lane_ops = 12000000 * scale;
        c.sfu_lane_ops = 400000 * scale;
        c.rf_bank_reads = 6000000 * scale;
        c.rf_bank_writes = 2000000 * scale;
        c.collector_writes = 2000000 * scale;
        c.collector_reads = 800000 * scale;
        c.rf_xbar_transfers = 2000000 * scale;
        c.wst_reads = 1000000 * scale;
        c.icache_reads = 1000000 * scale;
        c.decodes = 1000000 * scale;
        c.ibuffer_writes = 1000000 * scale;
        c.ibuffer_reads = 800000 * scale;
        c.smem_accesses = 500000 * scale;
        c.agu_addrs = 1000000 * scale;
    }
    a.cluster_busy_cycles.assign(cfg.clusters, 1000000);
    a.gpu_busy_cycles = 1000000;
    a.mem.noc_flits = 300000 * scale;
    a.mem.mc_requests = 100000 * scale;
    a.mem.dram_read_bursts = 300000 * scale;
    a.mem.dram_write_bursts = 100000 * scale;
    a.mem.dram_activates = 50000 * scale;
    a.mem.dram_bus_cycles = 400000 * scale;
    return a;
}

} // namespace

TEST(PowerNodeTree, ChildFindAndTotals)
{
    PowerNode root;
    root.name = "GPU";
    PowerNode &a = root.child("A");
    a.sub_leakage_w = 1.0;
    a.runtime_dynamic_w = 2.0;
    PowerNode &ab = a.child("B");
    ab.gate_leakage_w = 0.5;
    ab.area_mm2 = 3.0;
    EXPECT_EQ(root.find("A"), &root.children[0]);
    EXPECT_EQ(root.find("A/B"), &root.children[0].children[0]);
    EXPECT_EQ(root.find("A/C"), nullptr);
    EXPECT_DOUBLE_EQ(root.totalStatic(), 1.5);
    EXPECT_DOUBLE_EQ(root.totalDynamic(), 2.0);
    EXPECT_DOUBLE_EQ(root.totalArea(), 3.0);
}

TEST(PowerNodeTree, FindRejectsEmptyPathSegments)
{
    PowerNode root;
    root.name = "GPU";
    PowerNode &cores = root.child("Cores");
    cores.child("WCU");
    // A pathological empty-named child must never be reachable
    // through an empty segment.
    root.child("");

    EXPECT_EQ(root.find(""), nullptr);
    EXPECT_EQ(root.find("/"), nullptr);
    EXPECT_EQ(root.find("/Cores"), nullptr);
    EXPECT_EQ(root.find("Cores/"), nullptr);
    EXPECT_EQ(root.find("Cores//WCU"), nullptr);
    EXPECT_EQ(root.find("//"), nullptr);
    // Well-formed paths keep working.
    EXPECT_EQ(root.find("Cores/WCU"), &root.children[0].children[0]);
}

TEST(PowerModel, TableIVAnchorsGt240)
{
    GpuPowerModel m(GpuConfig::gt240());
    EXPECT_NEAR(m.staticPower(), 17.9, 0.3);   // paper: 17.9 W
    EXPECT_NEAR(m.area(), 105.0, 3.0);         // paper: 105 mm2
}

TEST(PowerModel, TableIVAnchorsGtx580)
{
    GpuPowerModel m(GpuConfig::gtx580());
    EXPECT_NEAR(m.staticPower(), 81.5, 1.0);   // paper: 81.5 W
    EXPECT_NEAR(m.area(), 306.0, 6.0);         // paper: 306 mm2
}

TEST(PowerModel, StaticIndependentOfActivity)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    PowerReport idle = m.evaluate(idleActivity(cfg));
    PowerReport busy = m.evaluate(busyActivity(cfg));
    EXPECT_NEAR(idle.staticPower(), busy.staticPower(), 1e-9);
}

TEST(PowerModel, IdleChipHasNoDynamicPower)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    PowerReport rep = m.evaluate(idleActivity(cfg));
    EXPECT_NEAR(rep.dynamicPower(), 0.0, 1e-9);
}

TEST(PowerModel, DynamicScalesWithActivity)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    double d1 = m.evaluate(busyActivity(cfg, 1)).dynamicPower();
    double d2 = m.evaluate(busyActivity(cfg, 2)).dynamicPower();
    EXPECT_GT(d2, d1);
    // The activity-proportional part doubles; base power does not.
    EXPECT_LT(d2, 2.0 * d1);
}

TEST(PowerModel, TableVStructurePresent)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    PowerReport rep = m.evaluate(busyActivity(cfg));
    for (const char *path :
         {"Cores", "NoC", "Memory Controller", "PCIe Controller",
          "Cores/Core0", "Cores/Core0/Base Power", "Cores/Core0/WCU",
          "Cores/Core0/Register File", "Cores/Core0/Execution Units",
          "Cores/Core0/LDSTU", "Cores/Core0/Undiff. Core",
          "Cores/Cluster Base", "Cores/Global Scheduler"}) {
        EXPECT_NE(rep.gpu.find(path), nullptr) << path;
    }
}

TEST(PowerModel, TableVStaticAnchorsPerCore)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    PowerReport rep = m.staticReport();
    const PowerNode *core = rep.gpu.find("Cores/Core0");
    ASSERT_NE(core, nullptr);
    EXPECT_NEAR(core->totalStatic(), 1.283, 0.06);   // Table V
    EXPECT_NEAR(core->find("WCU")->totalStatic(), 0.042, 0.01);
    EXPECT_NEAR(core->find("Register File")->totalStatic(), 0.112,
                0.025);
    EXPECT_NEAR(core->find("Execution Units")->totalStatic(), 0.0096,
                0.004);
    EXPECT_NEAR(core->find("LDSTU")->totalStatic(), 0.234, 0.04);
    EXPECT_NEAR(core->find("Undiff. Core")->totalStatic(), 0.886,
                0.001);
}

TEST(PowerModel, UncoreStaticAnchors)
{
    GpuPowerModel m(GpuConfig::gt240());
    PowerReport rep = m.staticReport();
    EXPECT_NEAR(rep.gpu.find("NoC")->totalStatic(), 1.484, 0.15);
    EXPECT_NEAR(rep.gpu.find("Memory Controller")->totalStatic(),
                0.497, 0.08);
    EXPECT_NEAR(rep.gpu.find("PCIe Controller")->totalStatic(), 0.539,
                0.05);
}

TEST(PowerModel, BasePowerFollowsBusyFractions)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    perf::ChipActivity a = idleActivity(cfg);
    a.gpu_busy_cycles = a.shader_cycles;          // scheduler on
    a.cluster_busy_cycles[0] = a.shader_cycles;   // one cluster
    PowerReport rep = m.evaluate(a);
    EXPECT_NEAR(rep.gpu.find("Cores/Global Scheduler")->totalDynamic(),
                cfg.calib.global_sched_w, 1e-6);
    EXPECT_NEAR(rep.gpu.find("Cores/Cluster Base")->totalDynamic(),
                cfg.calib.cluster_base_w, 1e-6);
}

TEST(PowerModel, EuEnergyMatchesEmpiricalConstants)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    perf::ChipActivity a = idleActivity(cfg);
    a.cores[0].int_lane_ops = 1000000;
    PowerReport rep = m.evaluate(a);
    // 1e6 INT lane-ops x 40 pJ over 1 ms = 0.04 W.
    EXPECT_NEAR(rep.gpu.find("Cores/Core0/Execution Units")
                    ->totalDynamic(),
                1e6 * 40e-12 / 1e-3, 1e-6);
}

TEST(PowerModel, DramPowerRespondsToTraffic)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    double idle_dram = m.evaluate(idleActivity(cfg)).dram_w;
    double busy_dram = m.evaluate(busyActivity(cfg)).dram_w;
    EXPECT_GT(busy_dram, idle_dram);
}

TEST(PowerModel, PeakAboveTypicalRuntime)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    EXPECT_GT(m.peakDynamicPower(),
              m.evaluate(busyActivity(cfg)).dynamicPower());
}

TEST(PowerModel, SmallerNodeShrinksArea)
{
    GpuConfig a = GpuConfig::gt240();
    GpuConfig b = a;
    b.tech.node_nm = 28;
    b.tech.vdd = 0.95;
    EXPECT_LT(GpuPowerModel(b).area() -
                  b.calib.undiff_core_area_mm2 * b.numCores(),
              GpuPowerModel(a).area() -
                  a.calib.undiff_core_area_mm2 * a.numCores());
}

TEST(PowerModel, HotterChipLeaksMore)
{
    GpuConfig cold = GpuConfig::gt240();
    cold.tech.temperature = 320.0;
    GpuConfig hot = GpuConfig::gt240();
    hot.tech.temperature = 360.0;
    EXPECT_GT(GpuPowerModel(hot).staticPower(),
              GpuPowerModel(cold).staticPower());
}

TEST(PowerModel, ShortCircuitShareReported)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel m(cfg);
    PowerReport rep = m.evaluate(busyActivity(cfg));
    EXPECT_GT(rep.short_circuit_w, 0.0);
    EXPECT_LT(rep.short_circuit_w, rep.dynamicPower());
}

TEST(PowerModel, ReportFormatsWithoutCrashing)
{
    GpuPowerModel m(GpuConfig::gt240());
    std::string s = m.staticReport().format();
    EXPECT_NE(s.find("Register File"), std::string::npos);
    EXPECT_NE(s.find("Chip total"), std::string::npos);
}
