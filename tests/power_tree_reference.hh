/**
 * @file
 * Reference implementation of the thermal block split computed the
 * way the pre-compiled GpuPowerModel::blockPowers() did: string-path
 * find() lookups and recursive subtree totals over a report tree,
 * with the folded L2 shares moved back to the L2 block and the base
 * powers re-derived from the configuration. Shared by the
 * compiled-vs-tree bit-identity suite (test_compiled_power) and the
 * throughput benchmark (bench_power_eval) so the two cross-checks
 * cannot drift apart. Deliberately *not* part of the production
 * library — the production split is the compiled evaluator's.
 */

#ifndef GPUSIMPOW_TESTS_POWER_TREE_REFERENCE_HH
#define GPUSIMPOW_TESTS_POWER_TREE_REFERENCE_HH

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "perf/activity.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"
#include "power/report.hh"

namespace gpusimpow {
namespace power {
namespace testref {

/**
 * Legacy tree-walk block split of `rep`, which must have been
 * produced by model.evaluate(act) (empty `temps`) or
 * model.evaluateAt(act, temps).
 */
inline std::vector<BlockPower>
treeBlockPowers(const GpuConfig &cfg, const GpuPowerModel &model,
                const PowerReport &rep, const perf::ChipActivity &act,
                const std::vector<double> &temps = {})
{
    thermal::BlockSet set = model.thermalBlocks();
    const CompiledPowerModel &cpm = model.compiled();
    std::vector<BlockPower> bp(set.size());

    double elapsed = rep.elapsed_s > 0.0 ? rep.elapsed_s : 1.0;
    double cycles = act.shader_cycles > 0
                        ? static_cast<double>(act.shader_cycles)
                        : 1.0;
    unsigned n_cores = cfg.numCores();
    double vs = cfg.tech.vdd_scale;
    double base_power_scale = vs * vs * cfg.clocks.freq_scale;

    double r_l2 = 1.0;
    if (set.has_l2 && !temps.empty())
        r_l2 = cpm.subLeakScaleAt(temps[set.l2Index()]);
    // Per-core folded L2 shares: subs scaled at the L2 block's
    // temperature (that is where the share physically heats).
    double l2_dyn_share = 0.0, l2_sub_share = 0.0, l2_gate_share = 0.0;
    if (set.has_l2) {
        l2_dyn_share =
            perf::dotCounters(act.mem,
                              cpm.l2ShareCoefficients().data()) /
            elapsed;
        l2_sub_share = cpm.l2ShareStatics().sub_leakage_w * r_l2;
        l2_gate_share = cpm.l2ShareStatics().gate_leakage_w;
    }

    for (unsigned i = 0; i < n_cores; ++i) {
        const PowerNode *core =
            rep.gpu.find("Cores/Core" + std::to_string(i));
        GSP_ASSERT(core, "report misses Core", i);
        BlockPower &cluster = bp[i / cfg.cores_per_cluster];
        cluster.dynamic_w += core->totalDynamic() - l2_dyn_share;
        cluster.sub_leak_w += core->totalSubLeakage() - l2_sub_share;
        cluster.fixed_w += core->totalGateLeakage() - l2_gate_share;
    }
    if (set.has_l2) {
        BlockPower &l2 = bp[set.l2Index()];
        l2.dynamic_w = l2_dyn_share * n_cores;
        l2.sub_leak_w = l2_sub_share * n_cores;
        l2.fixed_w = l2_gate_share * n_cores;
    }

    for (std::size_t c = 0; c < act.cluster_busy_cycles.size(); ++c) {
        double busy = static_cast<double>(act.cluster_busy_cycles[c]);
        bp[std::min<std::size_t>(c, cfg.clusters - 1)].dynamic_w +=
            cfg.calib.cluster_base_w * base_power_scale *
            std::min(1.0, busy / cycles);
    }
    BlockPower &uncore = bp[set.uncoreIndex()];
    if (const PowerNode *sched = rep.gpu.find("Cores/Global Scheduler"))
        uncore.dynamic_w += sched->totalDynamic();
    for (const char *name :
         {"NoC", "Memory Controller", "PCIe Controller"}) {
        const PowerNode *node = rep.gpu.find(name);
        GSP_ASSERT(node, "report misses ", name);
        uncore.dynamic_w += node->totalDynamic();
        uncore.sub_leak_w += node->totalSubLeakage();
        uncore.fixed_w += node->totalGateLeakage();
    }
    bp[set.dramIndex()].fixed_w = rep.dram_w;
    return bp;
}

} // namespace testref
} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_TESTS_POWER_TREE_REFERENCE_HH
