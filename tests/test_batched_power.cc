/**
 * @file
 * Batched-vs-scalar equivalence: BatchedPowerEvaluator packs many
 * activity intervals and many power-model variants into dense matrix
 * kernels, but its contract is that every output is *bit-identical*
 * to the per-interval CompiledPowerModel::evaluate() it replaces.
 * This suite drives randomized interval batches across both Table II
 * chips, process nodes, and DVFS operating points, checks the
 * nominal block statics against the scalar split, and checks that
 * the per-block thermal rescale the simulator applies on top of the
 * batched rows reproduces evaluateAt() exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "perf/activity.hh"
#include "power/batched.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"

using namespace gpusimpow;
using namespace gpusimpow::power;

namespace {

perf::ChipActivity
randomActivity(const GpuConfig &cfg, SplitMix64 &rng)
{
    perf::ChipActivity act;
    act.cores.resize(cfg.numCores());
    for (perf::CoreActivity &c : act.cores) {
#define X(name) c.name = rng.nextBounded(1u << 22);
        GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    }
#define X(name) act.mem.name = rng.nextBounded(1u << 24);
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    act.cluster_busy_cycles.resize(cfg.clusters);
    for (uint64_t &busy : act.cluster_busy_cycles)
        busy = rng.nextBounded(1u << 22);
    act.shader_cycles = 1u << 21;
    act.gpu_busy_cycles = rng.nextBounded(act.shader_cycles + 1);
    act.blocks_dispatched = rng.nextBounded(4096);
    act.elapsed_s = rng.uniform(1e-5, 5e-3);
    return act;
}

GpuConfig
configFor(const GpuConfig &base, unsigned node_nm,
          const OperatingPoint &op)
{
    GpuConfig cfg = base;
    if (node_nm != cfg.tech.node_nm) {
        cfg.tech.node_nm = node_nm;
        cfg.tech.vdd = -1.0; // node-nominal supply
    }
    op.applyTo(cfg);
    return cfg;
}

/** The power-only variant grid one timing fingerprint fans into:
 *  every (node, operating point) combination of one chip. */
std::vector<std::unique_ptr<GpuPowerModel>>
variantModels(const GpuConfig &base)
{
    const std::vector<unsigned> nodes = {40u, 28u};
    const std::vector<OperatingPoint> ops = {
        {1.0, 1.0}, {0.9, 0.8}, {1.05, 1.0}};
    std::vector<std::unique_ptr<GpuPowerModel>> models;
    for (unsigned node : nodes)
        for (const OperatingPoint &op : ops)
            models.push_back(std::make_unique<GpuPowerModel>(
                configFor(base, node, op)));
    return models;
}

std::vector<const CompiledPowerModel *>
compiledOf(const std::vector<std::unique_ptr<GpuPowerModel>> &models)
{
    std::vector<const CompiledPowerModel *> out;
    for (const auto &m : models)
        out.push_back(&m->compiled());
    return out;
}

/** Bit-identity of one batched run against per-interval scalar
 *  evaluate() for every (variant, interval) pair. */
void
expectBatchedMatchesScalar(
    const std::vector<const CompiledPowerModel *> &variants,
    const std::vector<perf::ChipActivity> &acts, bool want_blocks,
    BatchedPowerEvaluator::Workspace &ws, const std::string &tag)
{
    SCOPED_TRACE(tag);
    std::vector<const perf::ChipActivity *> ptrs;
    for (const perf::ChipActivity &a : acts)
        ptrs.push_back(&a);

    BatchedPowerEvaluator evaluator(variants);
    std::vector<BatchedKernelPower> batched;
    evaluator.evaluate(ptrs, want_blocks, ws, batched);
    ASSERT_EQ(batched.size(), variants.size());

    CompiledPowerModel::Eval ev;
    for (std::size_t v = 0; v < variants.size(); ++v) {
        SCOPED_TRACE("variant " + std::to_string(v));
        const BatchedKernelPower &bp = batched[v];
        ASSERT_EQ(bp.n_intervals, acts.size());
        ASSERT_EQ(bp.dynamic_w.size(), acts.size());
        ASSERT_EQ(bp.dram_w.size(), acts.size());
        const std::size_t n_blocks = variants[v]->blocks().size();
        ASSERT_EQ(bp.static_blocks.size(), n_blocks);
        if (want_blocks) {
            ASSERT_EQ(bp.n_blocks, n_blocks);
            ASSERT_EQ(bp.block_dynamic_w.size(),
                      acts.size() * n_blocks);
        } else {
            EXPECT_EQ(bp.n_blocks, 0u);
            EXPECT_TRUE(bp.block_dynamic_w.empty());
        }

        for (std::size_t i = 0; i < acts.size(); ++i) {
            SCOPED_TRACE("interval " + std::to_string(i));
            variants[v]->evaluate(acts[i], ev);
            EXPECT_EQ(bp.dynamic_w[i], ev.dynamic_w);
            EXPECT_EQ(bp.dram_w[i], ev.dram_w);
            const std::size_t dram = variants[v]->blocks().dramIndex();
            for (std::size_t b = 0; b < n_blocks; ++b) {
                if (want_blocks) {
                    EXPECT_EQ(bp.block_dynamic_w[i * n_blocks + b],
                              ev.blocks[b].dynamic_w);
                }
                // The statics evaluate() computes are interval-
                // independent at nominal temperature; the batched
                // result carries them once. The DRAM board block's
                // per-interval fixed share lives in dram_w instead.
                EXPECT_EQ(bp.static_blocks[b].sub_leak_w,
                          ev.blocks[b].sub_leak_w);
                if (b == dram) {
                    EXPECT_EQ(bp.static_blocks[b].fixed_w, 0.0);
                    EXPECT_EQ(ev.blocks[b].fixed_w, ev.dram_w);
                } else {
                    EXPECT_EQ(bp.static_blocks[b].fixed_w,
                              ev.blocks[b].fixed_w);
                }
            }
        }
    }
}

} // namespace

TEST(BatchedPower, RandomizedBitIdentityAcrossChipsNodesOps)
{
    const std::vector<GpuConfig> chips = {GpuConfig::gt240(),
                                          GpuConfig::gtx580()};
    SplitMix64 rng(0xBA7C4ED0ULL);
    BatchedPowerEvaluator::Workspace ws; // shared across every case

    for (const GpuConfig &base : chips) {
        auto models = variantModels(base);
        auto variants = compiledOf(models);
        // Interval counts straddling the internal tile size,
        // including the empty batch and a lone interval.
        for (std::size_t n : {std::size_t(0), std::size_t(1),
                              std::size_t(31), std::size_t(32),
                              std::size_t(77)}) {
            std::vector<perf::ChipActivity> acts;
            for (std::size_t i = 0; i < n; ++i)
                acts.push_back(randomActivity(base, rng));
            std::string tag =
                base.name + "/" + std::to_string(n) + "ivals";
            expectBatchedMatchesScalar(variants, acts, true, ws,
                                       tag + "/blocks");
            expectBatchedMatchesScalar(variants, acts, false, ws,
                                       tag + "/totals");
        }
    }
}

TEST(BatchedPower, DegenerateIntervalsTakeGuardPaths)
{
    GpuConfig cfg = GpuConfig::gtx580();
    auto models = variantModels(cfg);
    auto variants = compiledOf(models);
    BatchedPowerEvaluator::Workspace ws;

    perf::ChipActivity idle;
    idle.cores.resize(cfg.numCores());
    idle.cluster_busy_cycles.assign(cfg.clusters, 0);
    idle.shader_cycles = 1;
    idle.elapsed_s = 1.0;

    perf::ChipActivity degenerate = idle;
    degenerate.elapsed_s = 0.0; // elapsed > 0 ? ... : 1.0 guard
    degenerate.shader_cycles = 0; // cycles guard

    std::vector<perf::ChipActivity> acts = {idle, degenerate};
    expectBatchedMatchesScalar(variants, acts, true, ws, "guards");
}

TEST(BatchedPower, ThermalRescaleOfStaticsMatchesScalarMarch)
{
    // The simulator's thermal march rescales nominal block sub-leak
    // sums by subLeakScaleAt(block temperature) — identically on the
    // scalar path (Eval::blocks of a nominal evaluate()) and on the
    // batched rows. Bit-identity of the batched statics with the
    // nominal Eval (checked here and in the randomized suite) is
    // therefore exactly the replay contract. evaluateAt(), which
    // scales each component *before* summing, may differ from the
    // sum-then-scale march by association order only — pin that
    // relationship down with a tight relative tolerance so a real
    // modeling divergence cannot hide behind it.
    GpuConfig cfg = GpuConfig::gt240();
    auto models = variantModels(cfg);
    auto variants = compiledOf(models);
    BatchedPowerEvaluator::Workspace ws;
    SplitMix64 rng(0x7E3A11ULL);

    std::vector<perf::ChipActivity> acts = {randomActivity(cfg, rng)};
    std::vector<const perf::ChipActivity *> ptrs = {&acts[0]};
    BatchedPowerEvaluator evaluator(variants);
    std::vector<BatchedKernelPower> batched;
    evaluator.evaluate(ptrs, true, ws, batched);

    CompiledPowerModel::Eval nominal, at;
    for (std::size_t v = 0; v < variants.size(); ++v) {
        SCOPED_TRACE("variant " + std::to_string(v));
        const CompiledPowerModel &cpm = *variants[v];
        std::vector<double> temps(cpm.blocks().size());
        for (double &t : temps)
            t = rng.uniform(310.0, 400.0);
        cpm.evaluate(acts[0], nominal);
        cpm.evaluateAt(acts[0], temps, at);
        const BatchedKernelPower &bp = batched[v];
        for (std::size_t b = 0; b < temps.size(); ++b) {
            SCOPED_TRACE("block " + std::to_string(b));
            double scale = cpm.subLeakScaleAt(temps[b]);
            // What the scalar march feeds the RC network...
            double scalar_leak = nominal.blocks[b].sub_leak_w * scale;
            // ...is bit-identical to the batched march's input.
            EXPECT_EQ(bp.static_blocks[b].sub_leak_w * scale,
                      scalar_leak);
            // And the component-wise evaluateAt() split agrees up to
            // summation association order.
            EXPECT_NEAR(scalar_leak, at.blocks[b].sub_leak_w,
                        1e-12 * at.blocks[b].sub_leak_w + 1e-300);
            EXPECT_EQ(bp.block_dynamic_w[b], at.blocks[b].dynamic_w);
        }
    }
}

TEST(BatchedPower, WorkspaceReuseAcrossShapesIsIdempotent)
{
    // One per-worker workspace serves batches of different chips,
    // core counts, and interval counts back to back; stale tile
    // contents must never leak into a later evaluation.
    SplitMix64 rng(99);
    BatchedPowerEvaluator::Workspace ws;

    GpuConfig big = GpuConfig::gtx580();
    GpuConfig small = GpuConfig::gt240();
    auto big_models = variantModels(big);
    auto small_models = variantModels(small);
    auto big_variants = compiledOf(big_models);
    auto small_variants = compiledOf(small_models);

    std::vector<perf::ChipActivity> big_acts;
    for (int i = 0; i < 40; ++i)
        big_acts.push_back(randomActivity(big, rng));
    std::vector<perf::ChipActivity> small_acts;
    for (int i = 0; i < 7; ++i)
        small_acts.push_back(randomActivity(small, rng));

    // Dirty the workspace with the big shape, then check the small
    // one (and vice versa) against fresh scalar evaluations.
    expectBatchedMatchesScalar(big_variants, big_acts, true, ws,
                               "big-first");
    expectBatchedMatchesScalar(small_variants, small_acts, true, ws,
                               "small-after-big");
    expectBatchedMatchesScalar(big_variants, big_acts, false, ws,
                               "big-again");
}
