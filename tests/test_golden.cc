/**
 * @file
 * Golden-anchor regression tests: the paper-facing reference numbers
 * — Table IV static power / area and the Table V blackscholes power
 * breakdown — are serialized under tests/golden/ for the GT240 and
 * GTX580 reference configurations, and every component value must
 * stay within 0.1% of its anchor. Any model change that moves these
 * numbers is flagged here before it silently drifts the paper
 * reproduction.
 *
 * Regenerate the anchors intentionally with:
 *   GPUSIMPOW_REGEN_GOLDEN=1 ./test_golden
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/strutil.hh"
#include "power/chip_power.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

namespace {

/** Relative tolerance of the anchors. */
constexpr double kTolerance = 1e-3;
/** Absolute floor so exact zeros compare cleanly. */
constexpr double kAbsFloor = 1e-12;

std::string
goldenDir()
{
    if (const char *env = std::getenv("GPUSIMPOW_TEST_DATA"))
        return std::string(env) + "/golden";
#ifdef GPUSIMPOW_SOURCE_DIR
    return std::string(GPUSIMPOW_SOURCE_DIR) + "/tests/golden";
#else
    return "tests/golden";
#endif
}

bool
regenRequested()
{
    const char *env = std::getenv("GPUSIMPOW_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/**
 * Serialized anchor: "path field value" lines (PowerNode::flatten)
 * plus scalar "summary <name> <value>" lines.
 */
std::map<std::string, double>
parseAnchor(const std::string &text)
{
    std::map<std::string, double> values;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t last_space = line.rfind(' ');
        if (last_space == std::string::npos) {
            ADD_FAILURE() << "malformed anchor line: " << line;
            continue;
        }
        try {
            values[line.substr(0, last_space)] =
                std::stod(line.substr(last_space + 1));
        } catch (const std::exception &) {
            ADD_FAILURE() << "unparsable anchor value: " << line;
        }
    }
    return values;
}

void
compareToGolden(const std::string &file, const std::string &actual)
{
    std::string path = goldenDir() + "/" + file;
    if (regenRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with GPUSIMPOW_REGEN_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::map<std::string, double> golden, current;
    parseAnchor(buffer.str()).swap(golden);
    parseAnchor(actual).swap(current);

    ASSERT_FALSE(golden.empty()) << path;
    EXPECT_EQ(golden.size(), current.size())
        << "component set changed vs " << file;
    for (const auto &[key, expected] : golden) {
        auto it = current.find(key);
        if (it == current.end()) {
            ADD_FAILURE() << "missing component '" << key << "' vs "
                          << file;
            continue;
        }
        double bound =
            std::max(kAbsFloor, kTolerance * std::fabs(expected));
        EXPECT_NEAR(it->second, expected, bound)
            << file << ": " << key << " drifted by "
            << (expected != 0.0
                    ? (it->second - expected) / expected * 100.0
                    : 0.0)
            << "%";
    }
}

/** Table IV anchor: static-only report of an idle chip. */
std::string
staticAnchor(const GpuConfig &cfg)
{
    power::GpuPowerModel model(cfg);
    power::PowerReport report = model.staticReport();
    std::string out = report.gpu.flatten();
    out += strformat("summary static_w %.9g\n", model.staticPower());
    out += strformat("summary area_mm2 %.9g\n", model.area());
    out += strformat("summary peak_dynamic_w %.9g\n",
                     model.peakDynamicPower());
    return out;
}

/** Table V anchor: blackscholes breakdown on the reference config. */
std::string
breakdownAnchor(const GpuConfig &cfg)
{
    sim::Scenario scenario;
    scenario.config = cfg;
    scenario.workload = "blackscholes";
    sim::ScenarioResult result =
        sim::SimulationEngine().runScenario(scenario);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.kernels.size(), 1u);
    const power::PowerReport &report = result.kernels.at(0).run.report;
    std::string out = report.gpu.flatten();
    out += strformat("summary dram_w %.9g\n", report.dram_w);
    out += strformat("summary static_w %.9g\n", report.staticPower());
    out += strformat("summary dynamic_w %.9g\n", report.dynamicPower());
    out += strformat("summary time_s %.9g\n", result.time_s);
    out += strformat("summary energy_j %.9g\n", result.energy_j);
    return out;
}

/**
 * Waveform anchor: a traced GTX580 blackscholes kernel under the
 * stock cooler, serialized sample for sample (power split and the
 * transient block temperatures). End-of-kernel totals cannot see a
 * per-interval regression of the power/thermal evaluation loop; this
 * fixture can.
 */
std::string
thermalWaveformAnchor()
{
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");

    sim::EngineOptions opt;
    opt.with_trace = true;
    opt.sample_interval_s = 0.5e-6;
    sim::Scenario scenario;
    scenario.config = cfg;
    scenario.workload = "blackscholes";
    scenario.scale = 8;
    sim::ScenarioResult result =
        sim::SimulationEngine(opt).runScenario(scenario);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.kernels.size(), 1u);
    const KernelRun &run = result.kernels.at(0).run;
    EXPECT_TRUE(run.thermal.enabled);
    EXPECT_TRUE(run.thermal.converged);
    EXPECT_EQ(run.trace.size(), run.thermal.trace.size());
    EXPECT_GE(run.trace.size(), 50u);

    // Die blocks sit before the dram entry; the heatsink node is the
    // last transient temperature.
    std::size_t dram_index = run.thermal.block_names.size() - 1;
    EXPECT_EQ(run.thermal.block_names.at(dram_index), "dram");

    std::string out;
    out += strformat("summary samples %zu\n", run.trace.size());
    for (std::size_t k = 0; k < run.trace.size(); ++k) {
        const PowerSample &p = run.trace[k];
        const ThermalSample &t = run.thermal.trace[k];
        double die_max = 0.0;
        for (std::size_t b = 0; b < dram_index; ++b)
            die_max = std::max(die_max, t.temps_k[b]);
        std::string key = strformat("sample%04zu", k);
        out += strformat("%s t0_us %.9g\n", key.c_str(), p.t0 * 1e6);
        out += strformat("%s t1_us %.9g\n", key.c_str(), p.t1 * 1e6);
        out += strformat("%s dynamic_w %.9g\n", key.c_str(),
                         p.dynamic_w);
        out += strformat("%s static_w %.9g\n", key.c_str(),
                         p.static_w);
        out += strformat("%s dram_w %.9g\n", key.c_str(), p.dram_w);
        out += strformat("%s t_die_max_k %.9g\n", key.c_str(),
                         die_max);
        out += strformat("%s t_dram_k %.9g\n", key.c_str(),
                         t.temps_k[dram_index]);
        out += strformat("%s t_heatsink_k %.9g\n", key.c_str(),
                         t.temps_k.back());
    }
    return out;
}

} // namespace

TEST(Golden, Table4StaticGt240)
{
    compareToGolden("gt240_static.txt",
                    staticAnchor(GpuConfig::gt240()));
}

TEST(Golden, Table4StaticGtx580)
{
    compareToGolden("gtx580_static.txt",
                    staticAnchor(GpuConfig::gtx580()));
}

TEST(Golden, Table5BreakdownGt240)
{
    compareToGolden("gt240_blackscholes_breakdown.txt",
                    breakdownAnchor(GpuConfig::gt240()));
}

TEST(Golden, Table5BreakdownGtx580)
{
    compareToGolden("gtx580_blackscholes_breakdown.txt",
                    breakdownAnchor(GpuConfig::gtx580()));
}

TEST(Golden, ThermalWaveformGtx580)
{
    compareToGolden("gtx580_thermal_waveform.txt",
                    thermalWaveformAnchor());
}

/**
 * The paper's own headline values (Table IV "Simulated" column) are
 * anchored directly too, at the paper's print precision, so the model
 * cannot drift away from the publication even if the golden files are
 * regenerated carelessly.
 */
TEST(Golden, Table4PaperHeadlineNumbers)
{
    power::GpuPowerModel gt240(GpuConfig::gt240());
    EXPECT_NEAR(gt240.staticPower(), 17.9, 0.5);
    EXPECT_NEAR(gt240.area(), 105.0, 3.0);

    power::GpuPowerModel gtx580(GpuConfig::gtx580());
    EXPECT_NEAR(gtx580.staticPower(), 81.5, 2.0);
    EXPECT_NEAR(gtx580.area(), 306.0, 8.0);
}
