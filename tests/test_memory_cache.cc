/**
 * @file
 * Unit tests for the functional memories, the cache model, and the
 * coalescing / bank-conflict analysis.
 */

#include <gtest/gtest.h>

#include "perf/cache.hh"
#include "perf/coalescer.hh"
#include "perf/memory.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

TEST(GlobalMemoryTest, ZeroFilledByDefault)
{
    GlobalMemory m;
    EXPECT_EQ(m.load32(0x1234 & ~3u), 0u);
    EXPECT_EQ(m.pageCount(), 0u);   // reads allocate nothing
}

TEST(GlobalMemoryTest, StoreLoadRoundTrip)
{
    GlobalMemory m;
    m.store32(0x100, 0xDEADBEEF);
    EXPECT_EQ(m.load32(0x100), 0xDEADBEEFu);
    m.storeF32(0x104, 2.5f);
    EXPECT_EQ(m.loadF32(0x104), 2.5f);
}

TEST(GlobalMemoryTest, BulkCopyCrossesPages)
{
    GlobalMemory m;
    std::vector<uint32_t> data(40000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint32_t>(i * 3);
    // 160 KB starting near a 64 KB page end: spans 3+ pages.
    uint32_t base = 0xFFF0;
    m.write(base, data.data(), data.size() * 4);
    std::vector<uint32_t> back(data.size());
    m.read(base, back.data(), back.size() * 4);
    EXPECT_EQ(back, data);
    EXPECT_GE(m.pageCount(), 3u);
}

TEST(GlobalAllocatorTest, AlignsTo256)
{
    GlobalAllocator a;
    uint32_t x = a.alloc(100);
    uint32_t y = a.alloc(1);
    EXPECT_EQ(x % 256, 0u);
    EXPECT_EQ(y - x, 256u);
}

TEST(SharedMemoryTest, RoundTrip)
{
    SharedMemory s(1024);
    s.store32(0, 7);
    s.store32(1020, 9);
    EXPECT_EQ(s.load32(0), 7u);
    EXPECT_EQ(s.load32(1020), 9u);
    EXPECT_EQ(s.size(), 1024u);
}

TEST(ConstantMemoryTest, WriteAndLoad)
{
    ConstantMemory c;
    uint32_t v = 42;
    c.write(128, &v, 4);
    EXPECT_EQ(c.load32(128), 42u);
    EXPECT_EQ(c.load32(132), 0u);
}

// ---- Cache model ----

TEST(CacheModelTest, ColdMissThenHit)
{
    CacheModel c({1024, 64, 2, false});
    EXPECT_FALSE(c.access(0, false));
    EXPECT_TRUE(c.access(0, false));
    EXPECT_TRUE(c.access(63, false));    // same line
    EXPECT_FALSE(c.access(64, false));   // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModelTest, LruEviction)
{
    // 2-way, 64 B lines, 2 sets (256 B total).
    CacheModel c({256, 64, 2, false});
    EXPECT_EQ(c.numSets(), 2u);
    // Three lines mapping to set 0: 0, 128, 256.
    c.access(0, false);
    c.access(128, false);
    c.access(0, false);      // touch 0: 128 becomes LRU
    c.access(256, false);    // evicts 128
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(128, false));
}

TEST(CacheModelTest, WriteAroundPolicy)
{
    CacheModel c({1024, 64, 2, false});
    EXPECT_FALSE(c.access(0, true));    // write miss, no allocate
    EXPECT_FALSE(c.access(0, false));   // still missing
}

TEST(CacheModelTest, WriteAllocatePolicy)
{
    CacheModel c({1024, 64, 2, true});
    EXPECT_FALSE(c.access(0, true));
    EXPECT_TRUE(c.access(0, false));    // allocated by the write
}

TEST(CacheModelTest, FlushInvalidatesAll)
{
    CacheModel c({1024, 64, 2, false});
    c.access(0, false);
    c.flush();
    EXPECT_FALSE(c.access(0, false));
}

/** Property sweep: structural invariants over geometries. */
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheSweep, MissesBoundedAndCapacityRespected)
{
    auto [size, assoc] = GetParam();
    CacheModel c({size, 64, assoc, false});
    unsigned lines = size / 64;
    // Touch exactly `lines` distinct lines: all miss, then all hit.
    for (unsigned i = 0; i < lines; ++i)
        c.access(static_cast<uint64_t>(i) * 64, false);
    EXPECT_EQ(c.misses(), lines);
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(static_cast<uint64_t>(i) * 64, false));
    EXPECT_EQ(c.misses(), lines);
    EXPECT_LE(c.misses(), c.accesses());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(::testing::Values(1024u, 8192u, 65536u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// ---- Coalescer ----

TEST(CoalescerTest, UnitStrideMergesToOneLinePerSegment)
{
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 32; ++i)
        addrs.push_back(0x1000 + i * 4);
    std::vector<uint32_t> segs;
    EXPECT_EQ(coalesce(addrs, 128, segs), 1u);
    EXPECT_EQ(segs[0], 0x1000u);
}

TEST(CoalescerTest, StridedAccessSplits)
{
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 32; ++i)
        addrs.push_back(i * 128);
    std::vector<uint32_t> segs;
    EXPECT_EQ(coalesce(addrs, 128, segs), 32u);
}

TEST(CoalescerTest, SameAddressBroadcasts)
{
    std::vector<uint32_t> addrs(32, 0x2000);
    std::vector<uint32_t> segs;
    EXPECT_EQ(coalesce(addrs, 128, segs), 1u);
}

TEST(CoalescerTest, MisalignedRunTouchesTwoLines)
{
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 32; ++i)
        addrs.push_back(0x1040 + i * 4);   // straddles 0x1000/0x1080
    std::vector<uint32_t> segs;
    EXPECT_EQ(coalesce(addrs, 128, segs), 2u);
}

TEST(SmemConflictTest, UnitStrideIsConflictFree)
{
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 16; ++i)
        addrs.push_back(i * 4);
    BankConflictInfo info = analyzeSmemAccess(addrs, 16);
    EXPECT_EQ(info.serialization, 1u);
    EXPECT_EQ(info.distinct_words, 16u);
}

TEST(SmemConflictTest, SameWordBroadcasts)
{
    std::vector<uint32_t> addrs(32, 64);
    BankConflictInfo info = analyzeSmemAccess(addrs, 16);
    EXPECT_EQ(info.distinct_words, 1u);
    EXPECT_EQ(info.serialization, 1u);
}

TEST(SmemConflictTest, PowerOfTwoStrideConflicts)
{
    // Stride of 16 words with 16 banks: every access hits bank 0.
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 8; ++i)
        addrs.push_back(i * 16 * 4);
    BankConflictInfo info = analyzeSmemAccess(addrs, 16);
    EXPECT_EQ(info.serialization, 8u);
}

TEST(SmemConflictTest, TwoWayConflict)
{
    // Stride of 8 words with 16 banks: pairs collide.
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 16; ++i)
        addrs.push_back(i * 8 * 4);
    BankConflictInfo info = analyzeSmemAccess(addrs, 16);
    EXPECT_EQ(info.serialization, 8u);
    EXPECT_EQ(info.distinct_words, 16u);
}

TEST(DistinctAddressesTest, CountsUnique)
{
    EXPECT_EQ(distinctAddresses({1, 1, 1}), 1u);
    EXPECT_EQ(distinctAddresses({1, 2, 3, 2}), 3u);
    EXPECT_EQ(distinctAddresses({}), 0u);
}
