/**
 * @file
 * Concurrency stress tests of the sweep engine, written to be run
 * under ThreadSanitizer (the CI tsan job builds exactly this suite).
 * They hammer the three pieces of cross-worker shared state:
 *
 *   - the memoized snapshot cache (cross-worker map of
 *     ActivitySnapshots keyed on Scenario::snapshotKey()),
 *   - batch-replay grouping (one timing run fanning out into many
 *     batched power evaluations),
 *   - progress accounting (serialized callback, done/total counters),
 *
 * using sweeps that mix replayable scenarios with governed (thermal
 * throttling) ones, so both the replay fast path and the
 * full-simulation fallback run concurrently in one pool. Every
 * assertion doubles as a determinism check: whatever the interleaving,
 * results must be bit-identical to the jobs=1 run.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hh"
#include "sim/sweep.hh"

using namespace gpusimpow;
using sim::EngineOptions;
using sim::Scenario;
using sim::ScenarioResult;
using sim::SimulationEngine;
using sim::SweepResult;
using sim::SweepSpec;

namespace {

/**
 * Mixed sweep: the gt240 half is fully replayable (the node axis is
 * power-only, so each workload's second node replays from the first's
 * snapshot), while the gtx580 half runs under a throttling governor
 * and must take the full-simulation path every time. 8 scenarios.
 */
SweepSpec
mixedSweep()
{
    SweepSpec spec;
    GpuConfig governed = GpuConfig::gtx580();
    governed.thermal.throttle = true;
    spec.configs = {GpuConfig::gt240(), governed};
    spec.tech_nodes = {40u, 28u};
    spec.coolings = {"constrained"};
    spec.workloads = {"vectoradd", "matmul"};
    return spec;
}

/** Replayable-only sweep with high variant fan-out per snapshot key:
 *  one timing run feeds three power variants per workload. */
SweepSpec
replaySweep()
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 32u, 28u};
    spec.workloads = {"vectoradd", "matmul", "blackscholes"};
    return spec;
}

SweepResult
runWith(const SweepSpec &spec, unsigned jobs, bool memoize = true,
        bool batch_replay = true)
{
    EngineOptions opt;
    opt.jobs = jobs;
    opt.memoize = memoize;
    opt.batch_replay = batch_replay;
    return SimulationEngine(opt).run(spec);
}

/** Replays a deterministic schedule must produce: every replayable
 *  scenario beyond the first of its snapshot-key group. */
std::size_t
expectedReplays(const SweepSpec &spec)
{
    std::map<std::string, std::size_t> groups;
    for (const Scenario &s : spec.expand())
        if (s.replayable())
            groups[s.snapshotKey()]++;
    std::size_t replays = 0;
    for (const auto &entry : groups)
        replays += entry.second - 1;
    return replays;
}

void
expectBitIdentical(const SweepResult &a, const SweepResult &b,
                   const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const ScenarioResult &x = a.at(i);
        const ScenarioResult &y = b.at(i);
        EXPECT_EQ(x.scenario.label, y.scenario.label) << what;
        EXPECT_EQ(x.time_s, y.time_s) << what << ": " << x.scenario.label;
        EXPECT_EQ(x.energy_j, y.energy_j)
            << what << ": " << x.scenario.label;
        EXPECT_EQ(x.avg_power_w, y.avg_power_w)
            << what << ": " << x.scenario.label;
        EXPECT_EQ(x.static_w, y.static_w)
            << what << ": " << x.scenario.label;
        EXPECT_EQ(x.vdd, y.vdd) << what << ": " << x.scenario.label;
        EXPECT_EQ(x.t_max_k, y.t_max_k)
            << what << ": " << x.scenario.label;
        EXPECT_EQ(x.throttled, y.throttled)
            << what << ": " << x.scenario.label;
        EXPECT_EQ(x.min_freq_scale, y.min_freq_scale)
            << what << ": " << x.scenario.label;
        ASSERT_EQ(x.kernels.size(), y.kernels.size())
            << what << ": " << x.scenario.label;
        for (std::size_t k = 0; k < x.kernels.size(); ++k)
            EXPECT_EQ(x.kernels[k].run.perf.cycles,
                      y.kernels[k].run.perf.cycles)
                << what << ": " << x.scenario.label;
    }
}

} // namespace

TEST(EngineStress, MixedSweepIsDeterministicAcrossWorkerCounts)
{
    SweepSpec spec = mixedSweep();

    // The sweep must actually be mixed for the test to mean anything.
    std::size_t replayable = 0, governed = 0;
    for (const Scenario &s : spec.expand())
        (s.replayable() ? replayable : governed)++;
    ASSERT_GT(replayable, 0u);
    ASSERT_GT(governed, 0u);

    SweepResult serial = runWith(spec, 1);
    unsigned hw = std::thread::hardware_concurrency();
    for (unsigned jobs : {2u, 8u, hw ? hw : 4u}) {
        SweepResult parallel = runWith(spec, jobs);
        expectBitIdentical(serial, parallel,
                           ("jobs=" + std::to_string(jobs)).c_str());
        // Batched replay groups the work units up front, so the
        // replay count is deterministic whatever the worker count.
        EXPECT_EQ(parallel.replayedScenarios(), expectedReplays(spec))
            << "jobs=" << jobs;
    }
    EXPECT_EQ(serial.replayedScenarios(), expectedReplays(spec));
}

TEST(EngineStress, SnapshotCacheContentionKeepsReplayCountExact)
{
    // High fan-out (3 variants per key) with 8 workers racing on the
    // snapshot cache: grouping must still yield exactly one timing
    // run per key and bit-identical rows.
    SweepSpec spec = replaySweep();
    SweepResult serial = runWith(spec, 1);
    for (int repeat = 0; repeat < 3; ++repeat) {
        SweepResult stressed = runWith(spec, 8);
        expectBitIdentical(serial, stressed, "8-way replay sweep");
        EXPECT_EQ(stressed.replayedScenarios(), expectedReplays(spec))
            << "repeat=" << repeat;
    }
}

TEST(EngineStress, MemoizeAndBatchKnobsAreBitIdenticalUnderContention)
{
    SweepSpec spec = mixedSweep();
    SweepResult batched = runWith(spec, 8, true, true);
    SweepResult legacy = runWith(spec, 8, true, false);
    SweepResult unmemoized = runWith(spec, 8, false, false);

    expectBitIdentical(batched, legacy, "batch_replay off");
    expectBitIdentical(batched, unmemoized, "memoize off");
    EXPECT_EQ(unmemoized.replayedScenarios(), 0u);
    // The legacy per-scenario cache may lose replays when two workers
    // start the same key concurrently, but it can never invent them.
    EXPECT_LE(legacy.replayedScenarios(), expectedReplays(spec));
}

TEST(EngineStress, ProgressAccountingSurvivesContention)
{
    SweepSpec spec = replaySweep();
    std::vector<int> seen(spec.size(), 0);
    std::vector<int> done_hits(spec.size() + 1, 0);
    EngineOptions opt;
    opt.jobs = 8;
    opt.progress = [&](const ScenarioResult &r, std::size_t done,
                       std::size_t total) {
        // Serialized by the engine's progress mutex: plain writes.
        ASSERT_EQ(total, seen.size());
        ASSERT_LT(r.scenario.index, seen.size());
        seen[r.scenario.index]++;
        ASSERT_GE(done, 1u);
        ASSERT_LE(done, total);
        done_hits[done]++;
    };
    SweepResult result = SimulationEngine(opt).run(spec);
    ASSERT_EQ(result.size(), spec.size());
    for (int count : seen)
        EXPECT_EQ(count, 1);
    // The serialized completed-count must hit 1..total exactly once
    // each — a lost update would skip one value and repeat another.
    for (std::size_t done = 1; done <= spec.size(); ++done)
        EXPECT_EQ(done_hits[done], 1) << "done=" << done;
}

TEST(EngineStress, ConcurrentEnginesDoNotShareState)
{
    // Two independent engines sweeping concurrently from different
    // threads: snapshot caches are per-run, so nothing may bleed
    // between them (also exercises the lazily-initialized kernel
    // dispatch and logging singletons from multiple pools at once).
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.workloads = {"vectoradd", "scalarprod"};

    SweepResult baseline = runWith(spec, 1);
    std::vector<SweepResult> results(2);
    std::vector<std::thread> drivers;
    for (std::size_t t = 0; t < results.size(); ++t)
        drivers.emplace_back(
            [&results, &spec, t]() { results[t] = runWith(spec, 4); });
    for (std::thread &t : drivers)
        t.join();
    for (std::size_t t = 0; t < results.size(); ++t) {
        expectBitIdentical(baseline, results[t], "concurrent engine");
        EXPECT_EQ(results[t].replayedScenarios(), expectedReplays(spec));
    }
}
