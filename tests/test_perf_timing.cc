/**
 * @file
 * Timing-model and activity-accounting tests: occupancy effects,
 * coalescing and bank-conflict penalties, scheduler policies,
 * counter consistency, and the Fig. 4 breadth-first block placement.
 */

#include <gtest/gtest.h>

#include "perf/gpu.hh"
#include "perf/kernel.hh"
#include "workloads/microbench.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

namespace {

Operand R(unsigned r) { return Operand::reg(r); }
Operand I(uint32_t v) { return Operand::imm(v); }

constexpr uint32_t sink = 0x40000;

/** Strided global-load kernel: stride in bytes between lanes. */
KernelProgram
makeStridedLoad(unsigned stride_bytes, unsigned iters)
{
    KernelBuilder b("strided", 12);
    b.imad(0, Operand::special(SpecialReg::CtaIdX),
           Operand::special(SpecialReg::NTidX),
           Operand::special(SpecialReg::TidX));
    b.imul(1, R(0), I(stride_bytes));
    b.mov(2, I(0));
    b.mov(5, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(2), I(iters));
    b.braIf(0, false, done, done);
    b.ldg(3, R(1), 0x100000);
    b.iadd(5, R(5), R(3));
    b.iadd(1, R(1), I(65536));
    b.iadd(2, R(2), I(1));
    b.jump(loop);
    b.bind(done);
    b.imad(6, R(0), I(4), I(sink));
    b.stg(R(6), R(5));
    b.exit();
    return b.finish();
}

/** SMEM kernel with configurable word stride (bank conflicts). */
KernelProgram
makeSmemStride(unsigned word_stride, unsigned iters)
{
    KernelBuilder b("smem_stride", 12, 16384);
    b.mov(0, Operand::special(SpecialReg::TidX));
    b.imul(1, R(0), I(word_stride * 4));
    b.iand(1, R(1), I(16383));
    b.mov(2, I(0));
    b.mov(5, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(2), I(iters));
    b.braIf(0, false, done, done);
    b.lds(3, R(1));
    b.iadd(5, R(5), R(3));
    b.sts(R(1), R(5));
    b.iadd(2, R(2), I(1));
    b.jump(loop);
    b.bind(done);
    b.exit();
    return b.finish();
}

} // namespace

TEST(Timing, MoreBlocksFinishFasterPerBlock)
{
    // Fixed total work split across more blocks uses more cores.
    GpuConfig cfg = GpuConfig::gt240();
    Gpu gpu(cfg);
    uint32_t s = gpu.allocator().alloc(1 << 20);
    KernelProgram prog = workloads::makeOccupancyKernel(300, s);
    LaunchConfig one;
    one.grid = {1, 1};
    one.block = {256, 1};
    LaunchConfig twelve;
    twelve.grid = {12, 1};
    twelve.block = {256, 1};
    uint64_t t1 = gpu.run(prog, one).cycles;
    uint64_t t12 = gpu.run(prog, twelve).cycles;
    // 12x the work in less than 2x the time (parallel cores).
    EXPECT_LT(t12, 2 * t1);
}

TEST(Timing, UncoalescedAccessIsSlower)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.clusters = 1;
    cfg.cores_per_cluster = 1;
    Gpu gpu(cfg);
    LaunchConfig lc;
    lc.grid = {1, 1};
    lc.block = {128, 1};
    RunResult coalesced = gpu.run(makeStridedLoad(4, 16), lc);
    RunResult scattered = gpu.run(makeStridedLoad(512, 16), lc);
    EXPECT_GT(scattered.cycles, coalesced.cycles * 2);
    uint64_t txn_c = coalesced.activity.cores[0].coalescer_transactions;
    uint64_t txn_s = scattered.activity.cores[0].coalescer_transactions;
    EXPECT_GT(txn_s, 8 * txn_c);
}

TEST(Timing, BankConflictsSerializeSmem)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.clusters = 1;
    cfg.cores_per_cluster = 1;
    Gpu gpu(cfg);
    LaunchConfig lc;
    lc.grid = {1, 1};
    lc.block = {128, 1};
    RunResult clean = gpu.run(makeSmemStride(1, 64), lc);
    RunResult conflicted = gpu.run(makeSmemStride(16, 64), lc);
    EXPECT_GT(conflicted.cycles, clean.cycles);
    EXPECT_GT(conflicted.activity.cores[0].smem_conflict_cycles,
              clean.activity.cores[0].smem_conflict_cycles);
}

TEST(Timing, CountersAreConsistent)
{
    GpuConfig cfg = GpuConfig::gt240();
    Gpu gpu(cfg);
    uint32_t s = gpu.allocator().alloc(1 << 20);
    KernelProgram prog = workloads::makeOccupancyKernel(200, s);
    LaunchConfig lc;
    lc.grid = {8, 1};
    lc.block = {256, 1};
    RunResult r = gpu.run(prog, lc);
    CoreActivity total;
    for (const auto &c : r.activity.cores)
        total += c;
    // Every issued instruction was decoded and buffered first.
    EXPECT_LE(total.issued_insts, total.decodes);
    EXPECT_EQ(total.ibuffer_reads, total.issued_insts);
    // Lane ops never exceed warp instructions x warp size.
    EXPECT_LE(total.int_lane_ops, total.int_warp_insts * 32);
    // Unit class counts partition issued instructions.
    EXPECT_EQ(total.int_warp_insts + total.fp_warp_insts +
                  total.sfu_warp_insts + total.mem_warp_insts +
                  total.ctrl_warp_insts,
              total.issued_insts);
    // Misses cannot exceed accesses.
    EXPECT_LE(total.icache_misses, total.icache_reads);
    EXPECT_LE(total.l1_misses, total.l1_reads);
    // Every divergent push eventually pops.
    EXPECT_LE(total.reconv_pops,
              total.reconv_pushes + 64 * lc.grid.count());
}

TEST(Timing, BreadthFirstBlockPlacement)
{
    // With exactly 4 blocks on a 4-cluster GPU, every cluster must
    // light up (the Fig. 4 behaviour).
    GpuConfig cfg = GpuConfig::gt240();
    Gpu gpu(cfg);
    uint32_t s = gpu.allocator().alloc(1 << 20);
    KernelProgram prog = workloads::makeOccupancyKernel(200, s);
    LaunchConfig lc;
    lc.grid = {4, 1};
    lc.block = {256, 1};
    RunResult r = gpu.run(prog, lc);
    for (unsigned cl = 0; cl < cfg.clusters; ++cl) {
        EXPECT_GT(r.activity.cluster_busy_cycles[cl], 0u)
            << "cluster " << cl << " never became busy";
    }
    // And with 1 block, exactly one cluster is busy.
    lc.grid = {1, 1};
    RunResult r1 = gpu.run(prog, lc);
    unsigned busy = 0;
    for (unsigned cl = 0; cl < cfg.clusters; ++cl)
        busy += r1.activity.cluster_busy_cycles[cl] > 0 ? 1 : 0;
    EXPECT_EQ(busy, 1u);
}

TEST(Timing, GreedySchedulerDiffersFromRoundRobin)
{
    auto run = [](const std::string &policy) {
        GpuConfig cfg = GpuConfig::gt240();
        cfg.clusters = 1;
        cfg.cores_per_cluster = 1;
        cfg.core.sched_policy = policy;
        Gpu gpu(cfg);
        LaunchConfig lc;
        lc.grid = {1, 1};
        lc.block = {256, 1};
        return gpu.run(makeStridedLoad(4, 32), lc).cycles;
    };
    uint64_t rr = run("rr");
    uint64_t gto = run("gto");
    // Policies must both complete; they generally differ in cycles.
    EXPECT_GT(rr, 0u);
    EXPECT_GT(gto, 0u);
}

TEST(Timing, ScoreboardOverlapsIndependentWork)
{
    // Independent instruction chains: the scoreboarded (Fermi-like)
    // core should beat the blocking barrel core at equal lane count.
    auto run = [](bool scoreboard) {
        GpuConfig cfg = GpuConfig::gt240();
        cfg.clusters = 1;
        cfg.cores_per_cluster = 1;
        cfg.core.scoreboard = scoreboard;
        Gpu gpu(cfg);
        uint32_t s = gpu.allocator().alloc(1 << 20);
        KernelProgram prog = workloads::makeOccupancyKernel(300, s);
        LaunchConfig lc;
        lc.grid = {1, 1};
        lc.block = {64, 1};   // few warps: latency exposed
        return gpu.run(prog, lc).cycles;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(Timing, SamplerDeliversMonotoneIntervals)
{
    GpuConfig cfg = GpuConfig::gt240();
    Gpu gpu(cfg);
    uint32_t s = gpu.allocator().alloc(1 << 20);
    KernelProgram prog = workloads::makeOccupancyKernel(400, s);
    LaunchConfig lc;
    lc.grid = {12, 1};
    lc.block = {256, 1};
    double last_t1 = 0.0;
    uint64_t sampled_cycles = 0;
    RunResult r = gpu.run(
        prog, lc,
        [&](const ChipActivity &delta, double t0, double t1) {
            EXPECT_GE(t0, last_t1 - 1e-12);
            EXPECT_GT(t1, t0);
            last_t1 = t1;
            sampled_cycles += delta.shader_cycles;
        },
        10e-6);
    EXPECT_EQ(sampled_cycles, r.cycles);
}

TEST(Timing, PcieBytesScopedToKernelWindow)
{
    GpuConfig cfg = GpuConfig::gt240();
    Gpu gpu(cfg);
    uint32_t s = gpu.allocator().alloc(4096);
    std::vector<uint32_t> buf(1024, 1);
    gpu.memcpyToDevice(s, buf.data(), buf.size() * 4);
    KernelProgram prog = workloads::makeOccupancyKernel(100, s);
    LaunchConfig lc;
    lc.grid = {1, 1};
    lc.block = {64, 1};
    RunResult r = gpu.run(prog, lc);
    // The pre-kernel host copy must not be charged to the kernel.
    EXPECT_EQ(r.activity.mem.pcie_bytes, 0u);
}
