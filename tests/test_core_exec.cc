/**
 * @file
 * Functional-execution tests of the SIMT core: every opcode, the
 * stack-based divergence mechanism (nested branches, loops with
 * non-uniform trip counts, EXIT inside divergent paths), barriers
 * with shared memory, predication, and atomics. All run on a tiny
 * one-core GPU so each test is fast and deterministic.
 */

#include <gtest/gtest.h>

#include "perf/gpu.hh"
#include "perf/kernel.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

namespace {

Operand R(unsigned r) { return Operand::reg(r); }
Operand I(uint32_t v) { return Operand::imm(v); }
Operand F(float v) { return Operand::immf(v); }
Operand S(SpecialReg s) { return Operand::special(s); }

GpuConfig
tinyGpu()
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.clusters = 1;
    cfg.cores_per_cluster = 1;
    return cfg;
}

/** Run a kernel on a 1-core GPU and return the result buffer. */
std::vector<uint32_t>
runKernel(const KernelProgram &prog, unsigned threads,
          uint32_t out_addr, unsigned out_words,
          const std::function<void(Gpu &)> &setup = nullptr,
          unsigned blocks = 1)
{
    GpuConfig cfg = tinyGpu();
    Gpu gpu(cfg);
    if (setup)
        setup(gpu);
    LaunchConfig lc;
    lc.grid = {blocks, 1};
    lc.block = {threads, 1};
    gpu.run(prog, lc);
    std::vector<uint32_t> out(out_words);
    gpu.memcpyToHost(out.data(), out_addr, out_words * 4);
    return out;
}

constexpr uint32_t out_base = 0x10000;

/** Emit "store r_src at out[gtid]" and exit. */
void
emitStoreResult(KernelBuilder &b, unsigned src)
{
    b.imad(14, S(SpecialReg::CtaIdX), S(SpecialReg::NTidX),
           S(SpecialReg::TidX));
    b.imad(14, R(14), I(4), I(out_base));
    b.stg(R(14), R(src));
    b.exit();
}

} // namespace

TEST(Exec, IntegerAluOps)
{
    KernelBuilder b("int_ops", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.iadd(1, R(0), I(100));       // tid + 100
    b.imul(2, R(1), I(3));         // *3
    b.isub(2, R(2), I(5));         // -5
    b.ishl(3, R(2), I(2));         // <<2
    b.ishr(3, R(3), I(1));         // >>1
    b.iand(4, R(3), I(0xFF));
    b.ior(4, R(4), I(0x100));
    b.ixor(4, R(4), I(0x3));
    emitStoreResult(b, 4);
    auto out = runKernel(b.finish(), 8, out_base, 8);
    for (uint32_t tid = 0; tid < 8; ++tid) {
        uint32_t v = (tid + 100) * 3 - 5;
        v = (v << 2) >> 1;
        v = ((v & 0xFF) | 0x100) ^ 0x3;
        EXPECT_EQ(out[tid], v) << "tid " << tid;
    }
}

TEST(Exec, ImadAndMinMax)
{
    KernelBuilder b("imad", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.imad(1, R(0), I(7), I(13));
    b.imin(2, R(1), I(30));
    b.imax(2, R(2), I(17));
    emitStoreResult(b, 2);
    auto out = runKernel(b.finish(), 8, out_base, 8);
    for (uint32_t tid = 0; tid < 8; ++tid) {
        int32_t v = static_cast<int32_t>(tid * 7 + 13);
        v = std::max(std::min(v, 30), 17);
        EXPECT_EQ(out[tid], static_cast<uint32_t>(v));
    }
}

TEST(Exec, SignedMinMaxHandleNegatives)
{
    KernelBuilder b("smin", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.isub(1, I(0), R(0));          // -tid
    b.imin(2, R(1), I(0));          // min(-tid, 0) = -tid
    b.imax(3, R(1), I(0));          // max(-tid, 0) = 0
    b.iadd(4, R(2), R(3));
    emitStoreResult(b, 4);
    auto out = runKernel(b.finish(), 4, out_base, 4);
    for (uint32_t tid = 0; tid < 4; ++tid)
        EXPECT_EQ(out[tid], static_cast<uint32_t>(-(int)tid));
}

TEST(Exec, FloatOps)
{
    KernelBuilder b("fp_ops", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.i2f(1, R(0));
    b.fadd(2, R(1), F(0.5f));
    b.fmul(2, R(2), F(2.0f));
    b.ffma(3, R(2), F(3.0f), F(1.0f));
    b.fsub(3, R(3), F(2.0f));
    b.fmin(4, R(3), F(50.0f));
    b.fmax(4, R(4), F(1.0f));
    b.f2i(5, R(4));
    emitStoreResult(b, 5);
    auto out = runKernel(b.finish(), 8, out_base, 8);
    for (uint32_t tid = 0; tid < 8; ++tid) {
        float f = (static_cast<float>(tid) + 0.5f) * 2.0f;
        f = f * 3.0f + 1.0f - 2.0f;
        f = std::max(std::min(f, 50.0f), 1.0f);
        EXPECT_EQ(out[tid], static_cast<uint32_t>(
                                static_cast<int32_t>(f)));
    }
}

TEST(Exec, SfuOps)
{
    KernelBuilder b("sfu", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.i2f(1, R(0));
    b.fadd(1, R(1), F(1.0f));      // x = tid+1
    b.rcp(2, R(1));
    b.fsqrt(3, R(1));
    b.rsqrt(4, R(1));
    b.ex2(5, R(1));
    b.lg2(6, R(5));                // lg2(2^x) == x
    b.fsin(7, R(1));
    b.fcos(8, R(1));
    // result = rcp*sqrt*rsqrt + lg2 ( == 1/x * sqrt(x) * 1/sqrt(x) + x )
    b.fmul(9, R(2), R(3));
    b.fmul(9, R(9), R(4));
    b.fadd(9, R(9), R(6));
    // pack sin^2+cos^2 (must be ~1) into the result as well
    b.fmul(10, R(7), R(7));
    b.ffma(10, R(8), R(8), R(10));
    b.fadd(9, R(9), R(10));
    b.fmul(9, R(9), F(1024.0f));
    b.f2i(11, R(9));
    emitStoreResult(b, 11);
    auto out = runKernel(b.finish(), 4, out_base, 4);
    for (uint32_t tid = 0; tid < 4; ++tid) {
        float x = static_cast<float>(tid) + 1.0f;
        float want = (1.0f / x + x + 1.0f) * 1024.0f;
        EXPECT_NEAR(static_cast<float>(out[tid]), want,
                    want * 2e-3f + 2.0f)
            << "tid " << tid;
    }
}

TEST(Exec, SetpSelpAllComparisons)
{
    KernelBuilder b("setp", 16);
    b.mov(0, S(SpecialReg::TidX));
    uint32_t acc = 12;
    b.mov(acc, I(0));
    struct Case
    {
        Cmp cmp;
        uint32_t bit;
    };
    Case cases[] = {{Cmp::EQ, 1}, {Cmp::NE, 2},  {Cmp::LT, 4},
                    {Cmp::LE, 8}, {Cmp::GT, 16}, {Cmp::GE, 32}};
    for (const Case &c : cases) {
        b.setp(0, c.cmp, CmpType::U32, R(0), I(2));
        b.selp(1, 0, I(c.bit), I(0));
        b.ior(acc, R(acc), R(1));
    }
    emitStoreResult(b, acc);
    auto out = runKernel(b.finish(), 4, out_base, 4);
    for (uint32_t tid = 0; tid < 4; ++tid) {
        uint32_t want = 0;
        if (tid == 2) want |= 1;
        if (tid != 2) want |= 2;
        if (tid < 2) want |= 4;
        if (tid <= 2) want |= 8;
        if (tid > 2) want |= 16;
        if (tid >= 2) want |= 32;
        EXPECT_EQ(out[tid], want) << "tid " << tid;
    }
}

TEST(Exec, FloatComparison)
{
    KernelBuilder b("fsetp", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.i2f(1, R(0));
    b.setp(0, Cmp::GT, CmpType::F32, R(1), F(1.5f));
    b.selp(2, 0, I(111), I(222));
    emitStoreResult(b, 2);
    auto out = runKernel(b.finish(), 4, out_base, 4);
    EXPECT_EQ(out[0], 222u);
    EXPECT_EQ(out[1], 222u);
    EXPECT_EQ(out[2], 111u);
    EXPECT_EQ(out[3], 111u);
}

TEST(Exec, PredicatedExecutionMasksLanes)
{
    KernelBuilder b("pred", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.mov(1, I(7));
    b.setp(0, Cmp::LT, CmpType::U32, R(0), I(2));
    b.pred(0).mov(1, I(99));              // only tid 0,1
    b.pred(0, true).iadd(1, R(1), I(1));  // only tid >= 2: 7+1
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 4, out_base, 4);
    EXPECT_EQ(out[0], 99u);
    EXPECT_EQ(out[1], 99u);
    EXPECT_EQ(out[2], 8u);
    EXPECT_EQ(out[3], 8u);
}

TEST(Exec, SimpleDivergenceIfElse)
{
    KernelBuilder b("ifelse", 16);
    b.mov(0, S(SpecialReg::TidX));
    auto else_l = b.newLabel();
    auto end_l = b.newLabel();
    b.setp(0, Cmp::GE, CmpType::U32, R(0), I(16));
    b.braIf(0, false, else_l, end_l);
    b.mov(1, I(10));                 // then: tid < 16
    b.jump(end_l);
    b.bind(else_l);
    b.mov(1, I(20));                 // else: tid >= 16
    b.bind(end_l);
    b.iadd(1, R(1), R(0));
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 32, out_base, 32);
    for (uint32_t tid = 0; tid < 32; ++tid)
        EXPECT_EQ(out[tid], (tid < 16 ? 10u : 20u) + tid);
}

TEST(Exec, NestedDivergence)
{
    KernelBuilder b("nested", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.mov(1, I(0));
    auto outer_else = b.newLabel();
    auto outer_end = b.newLabel();
    auto inner_else = b.newLabel();
    auto inner_end = b.newLabel();
    // if (tid < 16) { if (tid < 8) r1=1 else r1=2 } else r1=3
    b.setp(0, Cmp::GE, CmpType::U32, R(0), I(16));
    b.braIf(0, false, outer_else, outer_end);
    b.setp(1, Cmp::GE, CmpType::U32, R(0), I(8));
    b.braIf(1, false, inner_else, inner_end);
    b.mov(1, I(1));
    b.jump(inner_end);
    b.bind(inner_else);
    b.mov(1, I(2));
    b.bind(inner_end);
    b.jump(outer_end);
    b.bind(outer_else);
    b.mov(1, I(3));
    b.bind(outer_end);
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 32, out_base, 32);
    for (uint32_t tid = 0; tid < 32; ++tid) {
        uint32_t want = tid < 8 ? 1 : (tid < 16 ? 2 : 3);
        EXPECT_EQ(out[tid], want) << "tid " << tid;
    }
}

TEST(Exec, LoopWithNonUniformTripCount)
{
    // Each thread sums 1..tid with a data-dependent trip count:
    // exercises divergent backward branches and reconvergence.
    KernelBuilder b("varloop", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.mov(1, I(0));   // acc
    b.mov(2, I(1));   // i
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GT, CmpType::U32, R(2), R(0));
    b.braIf(0, false, done, done);
    b.iadd(1, R(1), R(2));
    b.iadd(2, R(2), I(1));
    b.jump(loop);
    b.bind(done);
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 32, out_base, 32);
    for (uint32_t tid = 0; tid < 32; ++tid)
        EXPECT_EQ(out[tid], tid * (tid + 1) / 2) << "tid " << tid;
}

TEST(Exec, ExitInsideDivergentPath)
{
    // Odd threads exit early and never store.
    KernelBuilder b("early_exit", 16);
    b.mov(0, S(SpecialReg::TidX));
    auto cont = b.newLabel();
    b.iand(1, R(0), I(1));
    b.setp(0, Cmp::EQ, CmpType::U32, R(1), I(0));
    b.braIf(0, false, cont, cont);
    b.exit();                        // odd threads
    b.bind(cont);
    b.mov(2, I(77));
    emitStoreResult(b, 2);
    auto out = runKernel(b.finish(), 8, out_base, 8);
    for (uint32_t tid = 0; tid < 8; ++tid)
        EXPECT_EQ(out[tid], tid % 2 == 0 ? 77u : 0u);
}

TEST(Exec, BarrierOrdersSharedMemory)
{
    // Thread t writes smem[t]; after the barrier thread t reads
    // smem[(t+1) % n]: any missing synchronization is visible.
    const unsigned n = 64;
    KernelBuilder b("barrier", 16, n * 4);
    b.mov(0, S(SpecialReg::TidX));
    b.imul(1, R(0), I(4));
    b.imad(2, R(0), I(13), I(5));   // value = 13 tid + 5
    b.sts(R(1), R(2));
    b.bar();
    b.iadd(3, R(0), I(1));
    b.iand(3, R(3), I(n - 1));
    b.imul(3, R(3), I(4));
    b.lds(4, R(3));
    emitStoreResult(b, 4);
    auto out = runKernel(b.finish(), n, out_base, n);
    for (uint32_t tid = 0; tid < n; ++tid)
        EXPECT_EQ(out[tid], 13 * ((tid + 1) % n) + 5);
}

TEST(Exec, GlobalAtomicsAccumulate)
{
    const uint32_t counter = 0x20000;
    KernelBuilder b("atom", 16);
    b.atomgAdd(1, I(counter), I(1));
    // Also store the observed old value (must be unique per thread).
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 64, out_base, 64, nullptr, 2);
    GpuConfig cfg = tinyGpu();
    // 2 blocks x 64 threads incremented by 1 each.
    std::vector<bool> seen(128, false);
    for (uint32_t v : out) {
        ASSERT_LT(v, 128u);
        // Old values within the first block's window must be unique.
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Exec, ConstantMemoryBroadcast)
{
    KernelBuilder b("ldc", 16);
    b.ldc(1, I(64));
    b.mov(0, S(SpecialReg::TidX));
    b.iadd(1, R(1), R(0));
    emitStoreResult(b, 1);
    auto out = runKernel(
        b.finish(), 8, out_base, 8, [](Gpu &gpu) {
            uint32_t v = 4242;
            gpu.constMem().write(64, &v, 4);
        });
    for (uint32_t tid = 0; tid < 8; ++tid)
        EXPECT_EQ(out[tid], 4242u + tid);
}

TEST(Exec, SpecialRegisters2D)
{
    KernelBuilder b("sregs", 16);
    // out = tidy * 1000 + tidx for a 4x4 block
    b.imul(1, S(SpecialReg::TidY), I(1000));
    b.iadd(1, R(1), S(SpecialReg::TidX));
    b.imad(14, S(SpecialReg::TidY), S(SpecialReg::NTidX),
           S(SpecialReg::TidX));
    b.imad(14, R(14), I(4), I(out_base));
    b.stg(R(14), R(1));
    b.exit();
    GpuConfig cfg = tinyGpu();
    Gpu gpu(cfg);
    LaunchConfig lc;
    lc.grid = {1, 1};
    lc.block = {4, 4};
    gpu.run(b.finish(), lc);
    std::vector<uint32_t> out(16);
    gpu.memcpyToHost(out.data(), out_base, 16 * 4);
    for (uint32_t y = 0; y < 4; ++y)
        for (uint32_t x = 0; x < 4; ++x)
            EXPECT_EQ(out[y * 4 + x], y * 1000 + x);
}

TEST(Exec, LaneIdAndWarpId)
{
    KernelBuilder b("lane", 16);
    b.imul(1, S(SpecialReg::WarpId), I(100));
    b.iadd(1, R(1), S(SpecialReg::LaneId));
    emitStoreResult(b, 1);
    auto out = runKernel(b.finish(), 96, out_base, 96);
    for (uint32_t tid = 0; tid < 96; ++tid)
        EXPECT_EQ(out[tid], (tid / 32) * 100 + tid % 32);
}

TEST(Exec, MultipleBlocksCoverGrid)
{
    KernelBuilder b("grid", 16);
    b.imad(1, S(SpecialReg::CtaIdX), S(SpecialReg::NTidX),
           S(SpecialReg::TidX));
    b.imul(2, R(1), I(3));
    emitStoreResult(b, 2);
    auto out = runKernel(b.finish(), 64, out_base, 64 * 6, nullptr, 6);
    for (uint32_t g = 0; g < 64 * 6; ++g)
        EXPECT_EQ(out[g], g * 3);
}

TEST(Exec, GuardedMemoryOpsDoNotTouchMemory)
{
    KernelBuilder b("guarded_st", 16);
    b.mov(0, S(SpecialReg::TidX));
    b.setp(0, Cmp::LT, CmpType::U32, R(0), I(2));
    b.imad(1, R(0), I(4), I(out_base));
    b.mov(2, I(55));
    b.pred(0).stg(R(1), R(2));   // only tids 0 and 1 store
    b.exit();
    auto out = runKernel(b.finish(), 8, out_base, 8);
    EXPECT_EQ(out[0], 55u);
    EXPECT_EQ(out[1], 55u);
    for (uint32_t tid = 2; tid < 8; ++tid)
        EXPECT_EQ(out[tid], 0u);
}
