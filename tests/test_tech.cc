/**
 * @file
 * Unit and property tests for the technology layer (ITRS-style node
 * table, device parameters, leakage physics).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "tech/tech.hh"

using namespace gpusimpow;
using tech::DeviceType;
using tech::TechNode;

TEST(Tech, NominalVddSelectedWhenUnspecified)
{
    TechNode t = TechNode::make(40);
    EXPECT_NEAR(t.vdd, 1.05, 1e-9);
    TechNode t65 = TechNode::make(65);
    EXPECT_NEAR(t65.vdd, 1.10, 1e-9);
}

TEST(Tech, ExplicitVddOverrides)
{
    TechNode t = TechNode::make(40, 0.9);
    EXPECT_NEAR(t.vdd, 0.9, 1e-12);
}

TEST(Tech, FeatureSizeInMeters)
{
    EXPECT_NEAR(TechNode::make(40).feature_m, 40e-9, 1e-15);
}

TEST(Tech, TempLeakFactorDoublesEvery20K)
{
    TechNode a = TechNode::make(40, -1, 300.0);
    TechNode b = TechNode::make(40, -1, 320.0);
    TechNode c = TechNode::make(40, -1, 340.0);
    EXPECT_NEAR(a.tempLeakFactor(), 1.0, 1e-9);
    EXPECT_NEAR(b.tempLeakFactor() / a.tempLeakFactor(), 2.0, 1e-9);
    EXPECT_NEAR(c.tempLeakFactor() / b.tempLeakFactor(), 2.0, 1e-9);
}

TEST(Tech, LstpLeaksFarLessThanHp)
{
    TechNode t = TechNode::make(40);
    double hp = t.leakage(100.0, DeviceType::HP);
    double lstp = t.leakage(100.0, DeviceType::LSTP);
    EXPECT_GT(hp, 100.0 * lstp * 0.5);  // orders of magnitude apart
    EXPECT_GT(lstp, 0.0);
}

TEST(Tech, LeakageScalesLinearlyWithWidth)
{
    TechNode t = TechNode::make(40);
    EXPECT_NEAR(t.leakage(200.0), 2.0 * t.leakage(100.0), 1e-12);
}

TEST(Tech, LeakageMagnitudeSane)
{
    // 1 mm of HP transistor width at 40 nm / 350 K should leak
    // on the order of milliwatts to a watt, not kW or nW.
    TechNode t = TechNode::make(40, -1, 350.0);
    double w = t.leakage(1000.0 /* um */);
    EXPECT_GT(w, 1e-4);
    EXPECT_LT(w, 10.0);
}

TEST(Tech, SwitchEnergyQuadraticInVdd)
{
    TechNode a = TechNode::make(40, 1.0);
    TechNode b = TechNode::make(40, 2.0);
    EXPECT_NEAR(b.switchEnergy(1e-15) / a.switchEnergy(1e-15), 4.0,
                1e-9);
}

TEST(Tech, SramCellAreaScalesWithFSquared)
{
    double a65 = TechNode::make(65).sramCellArea();
    double a32 = TechNode::make(32).sramCellArea();
    EXPECT_NEAR(a65 / a32, (65.0 * 65.0) / (32.0 * 32.0), 0.01);
}

TEST(Tech, UnsupportedNodeIsFatal)
{
    EXPECT_THROW(TechNode::make(7), FatalError);
    EXPECT_THROW(TechNode::make(180), FatalError);
}

/** Interpolation property: parameters vary monotonically with node. */
class TechSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TechSweep, InterpolatedValuesBoundedByTableEndpoints)
{
    unsigned nm = GetParam();
    TechNode t = TechNode::make(nm);
    TechNode hi = TechNode::make(65);
    TechNode lo = TechNode::make(28);
    // Gate cap per um decreases toward smaller nodes.
    EXPECT_LE(t.hp.c_gate_per_um, hi.hp.c_gate_per_um + 1e-20);
    EXPECT_GE(t.hp.c_gate_per_um, lo.hp.c_gate_per_um - 1e-20);
    // HP subthreshold leakage increases toward smaller nodes.
    EXPECT_GE(t.hp.i_sub_per_um, hi.hp.i_sub_per_um - 1e-15);
    EXPECT_LE(t.hp.i_sub_per_um, lo.hp.i_sub_per_um + 1e-15);
    // Nominal Vdd decreases toward smaller nodes.
    EXPECT_LE(t.vdd, hi.vdd + 1e-9);
    EXPECT_GE(t.vdd, lo.vdd - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Nodes, TechSweep,
                         ::testing::Values(28u, 32u, 36u, 40u, 45u, 52u,
                                           60u, 65u));
