/**
 * @file
 * Unit tests for the common substrate: string utilities, bit
 * utilities, deterministic RNG, and the error-reporting discipline.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"

using namespace gpusimpow;

TEST(StrUtil, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  abc \t\n"), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StrUtil, SplitPreservesEmptyTokens)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("gpusimpow", "gpu"));
    EXPECT_FALSE(startsWith("gpu", "gpusimpow"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(StrUtil, ParseLongAcceptsDecimalAndHex)
{
    EXPECT_EQ(parseLong("42", "t"), 42);
    EXPECT_EQ(parseLong(" -7 ", "t"), -7);
    EXPECT_EQ(parseLong("0x10", "t"), 16);
}

TEST(StrUtil, ParseLongRejectsGarbage)
{
    EXPECT_THROW(parseLong("12abc", "t"), FatalError);
    EXPECT_THROW(parseLong("", "t"), FatalError);
    // Overflow must be a hard error, not a silent clamp to LONG_MAX.
    EXPECT_THROW(parseLong("99999999999999999999999", "t"), FatalError);
}

TEST(StrUtil, ParseUnsignedRejectsNegativesInsteadOfWrapping)
{
    // The CLI bug class this guards: "--jobs -1" must not become
    // 4294967295 workers through an unsigned cast.
    EXPECT_EQ(parseUnsigned("42", "t"), 42u);
    EXPECT_EQ(parseUnsigned("0", "t"), 0u);
    EXPECT_THROW(parseUnsigned("-1", "t"), FatalError);
    EXPECT_THROW(parseUnsigned("-2147483648", "t"), FatalError);
    EXPECT_THROW(parseUnsigned("abc", "t"), FatalError);
}

TEST(StrUtil, ParseUnsignedEnforcesRange)
{
    EXPECT_EQ(parseUnsigned("8", "t", 1, 16), 8u);
    EXPECT_THROW(parseUnsigned("0", "t", 1, 16), FatalError);
    EXPECT_THROW(parseUnsigned("17", "t", 1, 16), FatalError);
}

TEST(StrUtil, ParseDoubleAndBool)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5e3", "t"), 2500.0);
    EXPECT_THROW(parseDouble("abc", "t"), FatalError);
    EXPECT_TRUE(parseBool("true", "t"));
    EXPECT_FALSE(parseBool("0", "t"));
    EXPECT_THROW(parseBool("yes", "t"), FatalError);
}

TEST(StrUtil, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strformat("%.2f", 1.234), "1.23");
}

TEST(BitUtil, PowersOfTwo)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
}

TEST(BitUtil, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(255), 7u);
    EXPECT_EQ(floorLog2(256), 8u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(255), 8u);
    EXPECT_EQ(ceilLog2(256), 8u);
}

TEST(BitUtil, RoundingAndPopcount)
{
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(divCeil(9, 4), 3u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xFFull), 8u);
    EXPECT_EQ(popCount(~0ull), 64u);
}

TEST(Random, Deterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DoublesInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, UniformRespectsBounds)
{
    SplitMix64 rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.uniform(-2.0, 3.0);
        EXPECT_GE(d, -2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(Random, GaussianHasReasonableMoments)
{
    SplitMix64 rng(11);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Random, HashStringDiffersForDifferentInputs)
{
    EXPECT_NE(hashString("a"), hashString("b"));
    EXPECT_EQ(hashString("kernel"), hashString("kernel"));
}

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad thing ", 42);
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad thing 42");
    }
}

TEST(Logging, LevelFilters)
{
    Logger::instance().setLevel(LogLevel::Quiet);
    // Must not crash and must be a no-op at Quiet.
    inform("hidden");
    warn("hidden");
    Logger::instance().setLevel(LogLevel::Warn);
}
