/**
 * @file
 * Unit tests for the GDDR5 timing and power model.
 */

#include <gtest/gtest.h>

#include "config/gpu_config.hh"
#include "dram/gddr5.hh"

using namespace gpusimpow;
using namespace gpusimpow::dram;

namespace {

DramConfig
smallConfig()
{
    DramConfig d;
    d.banks = 4;
    d.row_bytes = 1024;
    return d;
}

} // namespace

TEST(DramChannel, RowHitIsFasterThanRowMiss)
{
    DramChannel ch(smallConfig());
    uint64_t t1 = ch.access(0, false, 0);          // cold: activate
    uint64_t t2 = ch.access(32, false, t1);        // same row: hit
    uint64_t t3 = ch.access(1024 * 4 * 5, false, t2); // other row
    EXPECT_EQ(ch.rowHits(), 1u);
    EXPECT_GE(ch.activates(), 2u);
    EXPECT_GT(t3 - t2, t2 - t1);
}

TEST(DramChannel, CountsReadAndWriteBursts)
{
    DramChannel ch(smallConfig());
    ch.access(0, false, 0);
    ch.access(64, true, 100);
    ch.access(128, true, 200);
    EXPECT_EQ(ch.readBursts(), 1u);
    EXPECT_EQ(ch.writeBursts(), 2u);
    EXPECT_GT(ch.busBusyCycles(), 0u);
}

TEST(DramChannel, BusSerializesConcurrentAccesses)
{
    DramChannel ch(smallConfig());
    // Two same-row accesses issued at the same instant cannot both
    // use the data bus at once.
    ch.access(0, false, 0);
    uint64_t a = ch.access(32, false, 0);
    uint64_t b = ch.access(64, false, 0);
    EXPECT_GT(b, a);
}

TEST(DramChannel, ResetCountersKeepsState)
{
    DramChannel ch(smallConfig());
    ch.access(0, false, 0);
    ch.resetCounters();
    EXPECT_EQ(ch.activates(), 0u);
    EXPECT_EQ(ch.readBursts(), 0u);
    // Row is still open: next same-row access is a hit.
    ch.access(32, false, 1000);
    EXPECT_EQ(ch.rowHits(), 1u);
}

TEST(DramChannel, ResetTimingClosesRows)
{
    DramChannel ch(smallConfig());
    ch.access(0, false, 0);
    ch.resetTiming();
    ch.resetCounters();
    ch.access(32, false, 0);
    // After a timing reset the row must be re-activated.
    EXPECT_EQ(ch.rowHits(), 0u);
    EXPECT_EQ(ch.activates(), 1u);
}

TEST(DramPower, IdleIsBackgroundPlusRefresh)
{
    DramConfig d;
    Gddr5Power p(d, 850e6);
    DramActivity idle;
    idle.elapsed_s = 1.0;
    DramPowerBreakdown b = p.compute(idle);
    EXPECT_GT(b.background, 0.0);
    EXPECT_GT(b.refresh, 0.0);
    EXPECT_DOUBLE_EQ(b.activate, 0.0);
    EXPECT_DOUBLE_EQ(b.read_write, 0.0);
    EXPECT_DOUBLE_EQ(b.termination, 0.0);
    EXPECT_NEAR(p.idlePower(), b.background + b.refresh, 1e-9);
}

TEST(DramPower, BackgroundRisesWithOpenRows)
{
    DramConfig d;
    Gddr5Power p(d, 850e6);
    DramActivity closed;
    closed.elapsed_s = 1.0;
    DramActivity open = closed;
    open.row_open_frac = 1.0;
    EXPECT_GT(p.compute(open).background,
              p.compute(closed).background);
}

TEST(DramPower, TrafficComponentsScaleLinearly)
{
    DramConfig d;
    Gddr5Power p(d, 850e6);
    DramActivity a;
    a.elapsed_s = 1e-3;
    a.activates = 1000;
    a.read_bursts = 10000;
    a.write_bursts = 5000;
    DramActivity twice = a;
    twice.activates *= 2;
    twice.read_bursts *= 2;
    twice.write_bursts *= 2;
    DramPowerBreakdown b1 = p.compute(a);
    DramPowerBreakdown b2 = p.compute(twice);
    EXPECT_NEAR(b2.activate, 2.0 * b1.activate, 1e-9);
    EXPECT_NEAR(b2.read_write, 2.0 * b1.read_write, 1e-9);
    EXPECT_NEAR(b2.termination, 2.0 * b1.termination, 1e-9);
}

TEST(DramPower, Gt240IdleInPlausibleRange)
{
    GpuConfig cfg = GpuConfig::gt240();
    Gddr5Power p(cfg.dram, cfg.clocks.dram_hz);
    // 8 GDDR5 chips idle: single-digit watts.
    EXPECT_GT(p.idlePower(), 0.5);
    EXPECT_LT(p.idlePower(), 6.0);
}

TEST(DramActivityMerge, WeightedByDuration)
{
    DramActivity a;
    a.elapsed_s = 1.0;
    a.row_open_frac = 1.0;
    a.activates = 10;
    DramActivity b;
    b.elapsed_s = 3.0;
    b.row_open_frac = 0.0;
    b.activates = 30;
    a += b;
    EXPECT_NEAR(a.row_open_frac, 0.25, 1e-9);
    EXPECT_EQ(a.activates, 40u);
    EXPECT_NEAR(a.elapsed_s, 4.0, 1e-12);
}
