/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace gpusimpow::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c("hits", "cache hits");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionStat, MeanAndCount)
{
    Distribution d("lat", "latency", 0, 100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(DistributionStat, ClampsOutOfRangeSamples)
{
    Distribution d("x", "x", 0, 9, 10);
    d.sample(-5);
    d.sample(500);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_EQ(d.buckets().front(), 1u);
    EXPECT_EQ(d.buckets().back(), 1u);
}

TEST(DistributionStat, BucketsPartitionRange)
{
    Distribution d("x", "x", 0, 99, 10);
    for (int i = 0; i < 100; ++i)
        d.sample(i);
    for (uint64_t b : d.buckets())
        EXPECT_EQ(b, 10u);
}

TEST(GroupStat, CounterIdentityAndLookup)
{
    Group g("core0");
    Counter &a = g.counter("issues", "issued instructions");
    Counter &b = g.counter("issues", "issued instructions");
    EXPECT_EQ(&a, &b);   // same object on re-request
    a.inc(5);
    EXPECT_EQ(g.get("issues"), 5u);
    EXPECT_EQ(g.get("missing"), 0u);
}

TEST(GroupStat, ResetClearsEverything)
{
    Group g("x");
    g.counter("c", "c").inc(3);
    g.distribution("d", "d", 0, 10, 5).sample(4);
    g.reset();
    EXPECT_EQ(g.get("c"), 0u);
}

TEST(GroupStat, FormatContainsNamesAndValues)
{
    Group g("wcu");
    g.counter("fetches", "instruction fetches").inc(7);
    std::string s = g.format();
    EXPECT_NE(s.find("wcu.fetches 7"), std::string::npos);
    EXPECT_NE(s.find("instruction fetches"), std::string::npos);
}
