/**
 * @file
 * Workload-level integration tests: every Table I benchmark runs on
 * both evaluated GPUs and verifies its device results against the
 * host reference (functional correctness of the whole simulator
 * under realistic kernels). Parameterized over (workload, GPU).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

class WorkloadRun
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(WorkloadRun, VerifiesAgainstHostReference)
{
    auto [wl_name, gpu_name] = GetParam();
    GpuConfig cfg = gpu_name == "gt240" ? GpuConfig::gt240()
                                        : GpuConfig::gtx580();
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload(wl_name);
    auto seq = wl->prepare(sim.gpu());
    ASSERT_FALSE(seq.empty());
    for (const auto &kl : seq) {
        KernelRun run = sim.runKernel(kl.prog, kl.launch);
        EXPECT_GT(run.perf.cycles, 0u);
        EXPECT_GT(run.report.dynamicPower(), 0.0) << kl.label;
    }
    EXPECT_TRUE(wl->verify(sim.gpu())) << wl_name << " on " << gpu_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadRun,
    ::testing::Combine(
        ::testing::Values("vectoradd", "scalarprod", "matmul",
                          "blackscholes", "mergesort", "bfs", "hotspot",
                          "pathfinder", "kmeans", "backprop",
                          "heartwall", "needle"),
        ::testing::Values("gt240", "gtx580")),
    // Not named `info`: the INSTANTIATE_ macro expands around this
    // lambda with its own `info` parameter, which -Wshadow flags.
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_" +
               std::get<1>(param_info.param);
    });

TEST(WorkloadRegistry, TableOneInventory)
{
    auto all = workloads::makeAllWorkloads();
    EXPECT_EQ(all.size(), 12u);   // 11 from Table I + needle
    for (const auto &wl : all) {
        EXPECT_FALSE(wl->description().empty());
        EXPECT_TRUE(wl->origin() == "Rodinia" ||
                    wl->origin() == "CUDA SDK");
    }
}

TEST(WorkloadRegistry, Figure6OrderHasNineteenKernels)
{
    auto order = workloads::figure6KernelOrder();
    EXPECT_EQ(order.size(), 19u);
    // Every label in the order is produced by some workload.
    perf::Gpu gpu(GpuConfig::gt240());
    std::set<std::string> produced;
    for (auto &wl : workloads::makeAllWorkloads()) {
        for (const auto &kl : wl->prepare(gpu))
            produced.insert(kl.label);
    }
    for (const auto &label : order)
        EXPECT_TRUE(produced.count(label)) << label;
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(workloads::makeWorkload("nonesuch"), FatalError);
}

TEST(WorkloadRegistry, MergeSort3IsNotRepeatable)
{
    perf::Gpu gpu(GpuConfig::gt240());
    auto wl = workloads::makeWorkload("mergesort");
    auto seq = wl->prepare(gpu);
    bool found = false;
    for (const auto &kl : seq) {
        if (kl.label == "mergeSort3") {
            EXPECT_FALSE(kl.repeatable);
            found = true;
        } else {
            EXPECT_TRUE(kl.repeatable);
        }
    }
    EXPECT_TRUE(found);
}
