/**
 * @file
 * Tests of the two-phase simulation flow: activity-snapshot capture
 * and replay must be bit-identical to full simulation across every
 * power-only axis (process node, supply scale, cooling), snapshots
 * must survive serialization, the cache key must collapse exactly the
 * timing-invariant axes and split everything else, and the engine's
 * memoized sweeps must match the --no-memo path bit for bit —
 * including the throttling-governor fallback.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "sim/sweep.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;
using sim::EngineOptions;
using sim::Scenario;
using sim::ScenarioResult;
using sim::SimulationEngine;
using sim::SweepResult;
using sim::SweepSpec;

namespace {

/** Per-kernel launches of a workload against a given simulator. */
std::vector<workloads::KernelLaunch>
prepareWorkload(Simulator &sim, const std::string &name)
{
    auto wl = workloads::makeWorkload(name, 1);
    return wl->prepare(sim.gpu());
}

/** Exact equality of two kernel runs, power traces included. */
void
expectRunsEqual(const KernelRun &a, const KernelRun &b,
                const std::string &what)
{
    EXPECT_EQ(a.perf.cycles, b.perf.cycles) << what;
    EXPECT_EQ(a.perf.time_s, b.perf.time_s) << what;
    EXPECT_EQ(a.perf.instructions, b.perf.instructions) << what;
    EXPECT_EQ(a.report.totalPower(), b.report.totalPower()) << what;
    EXPECT_EQ(a.report.dynamicPower(), b.report.dynamicPower()) << what;
    EXPECT_EQ(a.report.staticPower(), b.report.staticPower()) << what;
    EXPECT_EQ(a.report.dram_w, b.report.dram_w) << what;
    EXPECT_EQ(a.report.elapsed_s, b.report.elapsed_s) << what;
    ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].t0, b.trace[i].t0) << what << " @" << i;
        EXPECT_EQ(a.trace[i].t1, b.trace[i].t1) << what << " @" << i;
        EXPECT_EQ(a.trace[i].dynamic_w, b.trace[i].dynamic_w)
            << what << " @" << i;
        EXPECT_EQ(a.trace[i].static_w, b.trace[i].static_w)
            << what << " @" << i;
        EXPECT_EQ(a.trace[i].dram_w, b.trace[i].dram_w)
            << what << " @" << i;
    }
    EXPECT_EQ(a.thermal.enabled, b.thermal.enabled) << what;
    EXPECT_EQ(a.thermal.converged, b.thermal.converged) << what;
    EXPECT_EQ(a.thermal.throttled, b.thermal.throttled) << what;
    EXPECT_EQ(a.thermal.t_max_k, b.thermal.t_max_k) << what;
    EXPECT_EQ(a.thermal.heatsink_k, b.thermal.heatsink_k) << what;
    EXPECT_EQ(a.thermal.block_temps_k, b.thermal.block_temps_k) << what;
    ASSERT_EQ(a.thermal.trace.size(), b.thermal.trace.size()) << what;
    for (std::size_t i = 0; i < a.thermal.trace.size(); ++i) {
        EXPECT_EQ(a.thermal.trace[i].temps_k, b.thermal.trace[i].temps_k)
            << what << " @" << i;
    }
}

/** Exact equality of two scenario rows, kernel by kernel. */
void
expectScenariosEqual(const ScenarioResult &a, const ScenarioResult &b)
{
    const std::string &what = a.scenario.label;
    EXPECT_EQ(a.scenario.label, b.scenario.label);
    EXPECT_EQ(a.time_s, b.time_s) << what;
    EXPECT_EQ(a.energy_j, b.energy_j) << what;
    EXPECT_EQ(a.avg_power_w, b.avg_power_w) << what;
    EXPECT_EQ(a.static_w, b.static_w) << what;
    EXPECT_EQ(a.area_mm2, b.area_mm2) << what;
    EXPECT_EQ(a.vdd, b.vdd) << what;
    EXPECT_EQ(a.shader_hz, b.shader_hz) << what;
    EXPECT_EQ(a.verified, b.verified) << what;
    EXPECT_EQ(a.thermal, b.thermal) << what;
    EXPECT_EQ(a.t_max_k, b.t_max_k) << what;
    EXPECT_EQ(a.throttled, b.throttled) << what;
    EXPECT_EQ(a.thermal_converged, b.thermal_converged) << what;
    EXPECT_EQ(a.min_freq_scale, b.min_freq_scale) << what;
    ASSERT_EQ(a.kernels.size(), b.kernels.size()) << what;
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        EXPECT_EQ(a.kernels[k].label, b.kernels[k].label) << what;
        EXPECT_EQ(a.kernels[k].repeatable, b.kernels[k].repeatable)
            << what;
        expectRunsEqual(a.kernels[k].run, b.kernels[k].run,
                        what + "/" + a.kernels[k].label);
    }
}

/** The memoization showcase sweep: all swept axes are power-only. */
SweepSpec
powerAxesSweep()
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.operating_points = OperatingPoint::parseList("0.9:1,1:1");
    spec.coolings = {"stock", "liquid"};
    spec.workloads = {"vectoradd", "matmul"};
    return spec;
}

SweepResult
runSweep(const SweepSpec &spec, unsigned jobs, bool memoize,
         bool with_trace = false, bool batch_replay = true)
{
    EngineOptions opt;
    opt.jobs = jobs;
    opt.memoize = memoize;
    opt.with_trace = with_trace;
    opt.batch_replay = batch_replay;
    return SimulationEngine(opt).run(spec);
}

void
expectSweepsEqual(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectScenariosEqual(a.at(i), b.at(i));
}

} // namespace

TEST(ActivitySerialization, RoundTripsBitExactly)
{
    Simulator sim(GpuConfig::gt240());
    auto launches = prepareWorkload(sim, "vectoradd");
    ASSERT_FALSE(launches.empty());
    KernelSnapshot snap = sim.capturePerf(launches[0].prog,
                                          launches[0].launch);

    std::ostringstream out;
    snap.perf.activity.serialize(out);
    std::istringstream in(out.str());
    perf::ChipActivity parsed = perf::ChipActivity::parse(in);

    EXPECT_EQ(parsed.elapsed_s, snap.perf.activity.elapsed_s);
    EXPECT_EQ(parsed.shader_cycles, snap.perf.activity.shader_cycles);
    EXPECT_EQ(parsed.gpu_busy_cycles,
              snap.perf.activity.gpu_busy_cycles);
    EXPECT_EQ(parsed.cluster_busy_cycles,
              snap.perf.activity.cluster_busy_cycles);
    ASSERT_EQ(parsed.cores.size(), snap.perf.activity.cores.size());
    // Spot-check through format(), which renders every counter.
    EXPECT_EQ(parsed.format(), snap.perf.activity.format());
}

TEST(ActivitySerialization, RejectsSchemaMismatch)
{
    std::istringstream in("chip-activity 0 0 3 2\nmem 0 0\n");
    EXPECT_THROW(perf::ChipActivity::parse(in), FatalError);
}

TEST(Snapshot, CaptureReplayMatchesRunKernelWithTrace)
{
    GpuConfig cfg = GpuConfig::gt240();
    Simulator live(cfg);
    auto live_launches = prepareWorkload(live, "vectoradd");
    KernelRun direct = live.runKernel(live_launches[0].prog,
                                      live_launches[0].launch,
                                      /*with_trace=*/true);

    Simulator staged(cfg);
    auto staged_launches = prepareWorkload(staged, "vectoradd");
    KernelSnapshot snap = staged.capturePerf(staged_launches[0].prog,
                                             staged_launches[0].launch,
                                             /*with_trace=*/true);
    EXPECT_FALSE(snap.samples.empty());
    KernelRun replayed = staged.replayKernel(snap);

    expectRunsEqual(direct, replayed, "vectoradd");
}

TEST(Snapshot, ReplayAcrossNodeAndVddMatchesFullSimulation)
{
    // Capture timing once on the nominal GT240...
    GpuConfig base = GpuConfig::gt240();
    Simulator capture_sim(base);
    auto launches = prepareWorkload(capture_sim, "matmul");
    std::vector<KernelSnapshot> snaps;
    for (const auto &kl : launches) {
        KernelSnapshot s = capture_sim.capturePerf(kl.prog, kl.launch,
                                                   true);
        s.label = kl.label;
        snaps.push_back(std::move(s));
    }

    // ...then retarget to 28 nm at 0.9x supply: power-only changes.
    GpuConfig variant = base;
    variant.tech.node_nm = 28;
    variant.tech.vdd = -1.0; // node-nominal supply
    variant.tech.vdd_scale = 0.9;
    ASSERT_EQ(sim::timingFingerprint(base),
              sim::timingFingerprint(variant));

    Simulator full(variant);
    auto full_launches = prepareWorkload(full, "matmul");
    Simulator replay(variant); // untouched GPU: replay needs no prepare
    ASSERT_EQ(full_launches.size(), snaps.size());
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        KernelRun truth = full.runKernel(full_launches[i].prog,
                                         full_launches[i].launch, true);
        KernelRun replayed = replay.replayKernel(snaps[i]);
        expectRunsEqual(truth, replayed, snaps[i].label);
    }
}

TEST(Snapshot, ReplayAcrossCoolingMatchesFullSimulation)
{
    GpuConfig base = GpuConfig::gt240();
    Simulator capture_sim(base);
    auto launches = prepareWorkload(capture_sim, "matmul");
    std::vector<KernelSnapshot> snaps;
    for (const auto &kl : launches)
        snaps.push_back(capture_sim.capturePerf(kl.prog, kl.launch,
                                                true));

    for (const char *cooling : {"stock", "liquid"}) {
        GpuConfig variant = base;
        variant.thermal.applyCooling(cooling);
        ASSERT_EQ(sim::timingFingerprint(base),
                  sim::timingFingerprint(variant));

        Simulator full(variant);
        auto full_launches = prepareWorkload(full, "matmul");
        Simulator replay(variant);
        for (std::size_t i = 0; i < snaps.size(); ++i) {
            KernelRun truth = full.runKernel(full_launches[i].prog,
                                             full_launches[i].launch,
                                             true);
            KernelRun replayed = replay.replayKernel(snaps[i]);
            ASSERT_TRUE(replayed.thermal.enabled);
            EXPECT_FALSE(replayed.thermal.trace.empty());
            expectRunsEqual(truth, replayed, cooling);
        }
    }
}

TEST(Snapshot, SerializationRoundTripReplaysIdentically)
{
    Scenario scenario;
    scenario.config = GpuConfig::gt240();
    scenario.workload = "vectoradd";

    EngineOptions opt;
    opt.with_trace = true;
    SimulationEngine engine(opt);
    Simulator sim(scenario.config);
    ActivitySnapshot captured;
    ScenarioResult direct = engine.runScenario(scenario, sim,
                                               &captured);
    ASSERT_FALSE(captured.kernels.empty());

    std::string text = captured.serialize();
    ActivitySnapshot parsed = ActivitySnapshot::parse(text);
    EXPECT_EQ(parsed.workload, captured.workload);
    EXPECT_EQ(parsed.scale, captured.scale);
    EXPECT_EQ(parsed.with_trace, captured.with_trace);
    EXPECT_EQ(parsed.sample_interval_s, captured.sample_interval_s);
    EXPECT_EQ(parsed.verified, captured.verified);
    ASSERT_EQ(parsed.kernels.size(), captured.kernels.size());
    EXPECT_EQ(parsed.kernels[0].label, captured.kernels[0].label);
    EXPECT_EQ(parsed.kernels[0].samples.size(),
              captured.kernels[0].samples.size());

    Simulator replay_sim(scenario.config);
    ScenarioResult replayed = engine.replayScenario(scenario, parsed,
                                                    replay_sim);
    expectScenariosEqual(direct, replayed);
}

TEST(Snapshot, SerializationRejectsGarbage)
{
    EXPECT_THROW(ActivitySnapshot::parse("not a snapshot"),
                 FatalError);
    EXPECT_THROW(ActivitySnapshot::parse(
                     "gpusimpow-activity-snapshot v99\n"),
                 FatalError);
    // Negative counts must not wrap through strtoull into 2^64-1...
    EXPECT_THROW(ActivitySnapshot::parse(
                     "gpusimpow-activity-snapshot v1\n"
                     "workload vectoradd\nscale -1\n"),
                 FatalError);
    // ...and absurd counts must hit the malformed-record fatal(),
    // not an uncaught length_error out of reserve().
    EXPECT_THROW(ActivitySnapshot::parse(
                     "gpusimpow-activity-snapshot v1\n"
                     "workload vectoradd\nscale 1\nwith_trace 0\n"
                     "sample_interval_s 0x0p+0\nverified 1\n"
                     "kernels 9999999999999999\n"),
                 FatalError);
}

namespace {

/** Minimal kernel-less snapshot text with substitutable header
 *  fields, for targeted malformed-input probes. */
std::string
snapshotHeader(const std::string &scale, const std::string &with_trace,
               const std::string &interval)
{
    return "gpusimpow-activity-snapshot v1\n"
           "workload vectoradd\n"
           "scale " + scale + "\n"
           "with_trace " + with_trace + "\n"
           "sample_interval_s " + interval + "\n"
           "verified 0\nkernels 0\n";
}

} // namespace

TEST(Snapshot, ParserRejectsOutOfRangeScale)
{
    // The 32-bit boundary itself is a legal scale...
    EXPECT_EQ(ActivitySnapshot::parse(
                  snapshotHeader("4294967295", "0", "0x0p+0")).scale,
              4294967295u);
    // ...but one past it used to truncate silently to 0 through
    // static_cast<unsigned>; it must be a parse error instead.
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("4294967296", "0", "0x0p+0")),
                 FatalError);
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("18446744073709551615", "0",
                                    "0x0p+0")),
                 FatalError);
}

TEST(Snapshot, ParserRejectsNonBooleanFlags)
{
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("1", "2", "0x0p+0")),
                 FatalError);
}

TEST(Snapshot, ParserRejectsInvalidSampleInterval)
{
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("1", "0", "-0x1p-10")),
                 FatalError);
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("1", "0", "nan")),
                 FatalError);
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("1", "0", "inf")),
                 FatalError);
    // A traced snapshot sampled at 0 is self-contradictory; the
    // same interval on an untraced snapshot is the legal default.
    EXPECT_THROW(ActivitySnapshot::parse(
                     snapshotHeader("1", "1", "0x0p+0")),
                 FatalError);
    EXPECT_NO_THROW(ActivitySnapshot::parse(
        snapshotHeader("1", "0", "0x0p+0")));
}

TEST(Snapshot, ParseErrorsReportTextPosition)
{
    // A bad token deep in the text must be located for the reader: a
    // corrupt store entry or hand-edited snapshot is only diagnosable
    // if the error names where the parse stopped.
    try {
        ActivitySnapshot::parse(snapshotHeader("1", "2", "0x0p+0"));
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        // The bad with_trace flag sits on line 4 of the header.
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("column "), std::string::npos) << msg;
        EXPECT_NE(msg.find("byte offset "), std::string::npos) << msg;
    }

    // Truncated input: the position points at the end of the text.
    const std::string truncated =
        "gpusimpow-activity-snapshot v1\nworkload vectoradd\n";
    try {
        ActivitySnapshot::parse(truncated);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line "), std::string::npos) << msg;
        EXPECT_NE(msg.find(strformat("byte offset %zu",
                                     truncated.size())),
                  std::string::npos)
            << msg;
    }
}

TEST(Snapshot, ParserRejectsInvalidSamplesAndTimes)
{
    // Corrupt individual lines of a genuine traced snapshot, so
    // everything around the probed field stays structurally valid.
    Scenario scenario;
    scenario.config = GpuConfig::gt240();
    scenario.workload = "vectoradd";
    EngineOptions opt;
    opt.with_trace = true;
    SimulationEngine engine(opt);
    Simulator sim(scenario.config);
    ActivitySnapshot captured;
    engine.runScenario(scenario, sim, &captured);
    ASSERT_FALSE(captured.kernels.empty());
    ASSERT_FALSE(captured.kernels[0].samples.empty());
    const std::string text = captured.serialize();
    ASSERT_NO_THROW(ActivitySnapshot::parse(text)); // control

    auto corrupt_line = [&](const char *marker,
                            const std::string &replacement) {
        std::size_t pos = text.find(marker);
        EXPECT_NE(pos, std::string::npos) << marker;
        std::size_t eol = text.find('\n', pos + 1);
        std::string t = text;
        t.replace(pos + 1, eol - pos - 1, replacement);
        return t;
    };
    // A sample interval running backwards (t1 < t0).
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\nsample ", "sample 0x1p+0 0x1p-1")),
                 FatalError);
    // Non-finite and negative sample bounds.
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\nsample ", "sample nan 0x1p-1")),
                 FatalError);
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\nsample ", "sample -0x1p-1 0x1p+0")),
                 FatalError);
    // Negative kernel time_s.
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\nperf ", "perf 1 1 -0x1p+0")),
                 FatalError);
    // Non-boolean kernel flags.
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\nflags ", "flags 2 0")),
                 FatalError);
    // Non-finite activity elapsed_s.
    EXPECT_THROW(ActivitySnapshot::parse(corrupt_line(
                     "\ntotals ", "totals 1 1 1 inf")),
                 FatalError);
}

TEST(ActivitySerialization, RejectsImplausibleCounts)
{
    std::istringstream in("chip-activity 9999999999999999 0 46 10\n");
    EXPECT_THROW(perf::ChipActivity::parse(in), FatalError);
    std::istringstream neg("chip-activity -4 0 46 10\n");
    EXPECT_THROW(perf::ChipActivity::parse(neg), FatalError);
}

TEST(TimingFingerprint, CollapsesEveryPowerOnlyAxis)
{
    GpuConfig base = GpuConfig::gt240();
    std::string fp = sim::timingFingerprint(base);

    GpuConfig node = base;
    node.tech.node_nm = 28;
    node.tech.vdd = -1.0;
    EXPECT_EQ(fp, sim::timingFingerprint(node));

    GpuConfig vdd = base;
    vdd.tech.vdd_scale = 0.85;
    EXPECT_EQ(fp, sim::timingFingerprint(vdd));

    GpuConfig cooling = base;
    cooling.thermal.applyCooling("liquid");
    cooling.thermal.ambient_k = 300.0;
    EXPECT_EQ(fp, sim::timingFingerprint(cooling));

    GpuConfig calib = base;
    calib.calib.int_op_pj *= 2.0;
    calib.calib.global_sched_w *= 3.0;
    EXPECT_EQ(fp, sim::timingFingerprint(calib));

    GpuConfig named = base;
    named.name = "Rebadged GT240";
    named.chip = "GT215-B";
    EXPECT_EQ(fp, sim::timingFingerprint(named));

    GpuConfig dram_elec = base;
    dram_elec.dram.idd4r *= 1.5;
    dram_elec.dram.vdd = 1.35;
    EXPECT_EQ(fp, sim::timingFingerprint(dram_elec));
}

TEST(TimingFingerprint, SplitsEveryTimingAxis)
{
    GpuConfig base = GpuConfig::gt240();
    std::string fp = sim::timingFingerprint(base);

    GpuConfig freq = base;
    freq.clocks.freq_scale = 0.8;
    EXPECT_NE(fp, sim::timingFingerprint(freq));

    GpuConfig clusters = base;
    clusters.clusters = 2;
    EXPECT_NE(fp, sim::timingFingerprint(clusters));

    GpuConfig sched = base;
    sched.core.sched_policy = "gto";
    EXPECT_NE(fp, sim::timingFingerprint(sched));

    GpuConfig coal = base;
    coal.core.coalescing = false;
    EXPECT_NE(fp, sim::timingFingerprint(coal));

    GpuConfig dram_geom = base;
    dram_geom.dram.channels = 2;
    EXPECT_NE(fp, sim::timingFingerprint(dram_geom));

    // The two presets are architecturally different.
    EXPECT_NE(fp, sim::timingFingerprint(GpuConfig::gtx580()));
}

TEST(SnapshotKey, SplitsWorkloadScaleAndVerify)
{
    Scenario a;
    a.config = GpuConfig::gt240();
    a.workload = "vectoradd";

    Scenario b = a;
    b.workload = "matmul";
    EXPECT_NE(a.snapshotKey(), b.snapshotKey());

    Scenario c = a;
    c.scale = 2;
    EXPECT_NE(a.snapshotKey(), c.snapshotKey());

    Scenario d = a;
    d.verify = false;
    EXPECT_NE(a.snapshotKey(), d.snapshotKey());

    // Node retargets share the key: the whole point of the cache.
    Scenario e = a;
    e.config.tech.node_nm = 28;
    e.config.tech.vdd = -1.0;
    EXPECT_EQ(a.snapshotKey(), e.snapshotKey());
}

TEST(Scenario, ReplayableExactlyWithoutGovernor)
{
    Scenario s;
    s.config = GpuConfig::gt240();
    EXPECT_TRUE(s.replayable());

    s.config.thermal.enabled = true;
    EXPECT_TRUE(s.replayable()); // ungoverned thermal replays fine

    s.config.thermal.throttle = true;
    EXPECT_FALSE(s.replayable());

    s.config.thermal.enabled = false;
    EXPECT_TRUE(s.replayable()); // throttle flag inert without thermal
}

TEST(Snapshot, ReplayKernelRejectsGovernedConfig)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.thermal.applyCooling("stock");
    cfg.thermal.throttle = true;
    Simulator sim(cfg);
    KernelSnapshot snap;
    EXPECT_THROW(sim.replayKernel(snap), FatalError);
}

TEST(Engine, MemoizedSweepBitIdenticalToFullSimulation)
{
    SweepSpec spec = powerAxesSweep();
    SweepResult memo = runSweep(spec, 1, true);
    SweepResult full = runSweep(spec, 1, false);
    // 16 scenarios, 2 timing-unique workloads: one serial worker
    // must replay every other scenario.
    EXPECT_EQ(memo.replayedScenarios(), spec.size() - 2);
    EXPECT_EQ(full.replayedScenarios(), 0u);
    expectSweepsEqual(memo, full);
}

TEST(Engine, MemoizedSweepBitIdenticalAcrossWorkerCounts)
{
    SweepSpec spec = powerAxesSweep();
    SweepResult serial = runSweep(spec, 1, true);
    SweepResult parallel = runSweep(spec, 4, true);
    expectSweepsEqual(serial, parallel);
}

TEST(Engine, MemoizedSweepWithTracesBitIdentical)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.coolings = {"stock"};
    spec.workloads = {"vectoradd"};
    SweepResult memo = runSweep(spec, 1, true, /*with_trace=*/true);
    SweepResult full = runSweep(spec, 1, false, /*with_trace=*/true);
    EXPECT_EQ(memo.replayedScenarios(), 1u);
    // Traces must actually exist for the comparison to bite.
    ASSERT_FALSE(memo.at(0).kernels.empty());
    EXPECT_FALSE(memo.at(0).kernels[0].run.trace.empty());
    EXPECT_FALSE(memo.at(1).kernels[0].run.thermal.trace.empty());
    expectSweepsEqual(memo, full);
}

TEST(Engine, BatchedReplayBitIdenticalOnAndOff)
{
    // batch_replay changes scheduling and the evaluator (grouped
    // units + matrix kernels vs. the per-scenario memo cache), but
    // every published number must stay byte-identical, at one worker
    // and at several.
    SweepSpec spec = powerAxesSweep();
    SweepResult on1 = runSweep(spec, 1, true, /*with_trace=*/true,
                               /*batch_replay=*/true);
    SweepResult off1 = runSweep(spec, 1, true, /*with_trace=*/true,
                                /*batch_replay=*/false);
    EXPECT_EQ(on1.replayedScenarios(), spec.size() - 2);
    EXPECT_EQ(off1.replayedScenarios(), spec.size() - 2);
    expectSweepsEqual(on1, off1);

    SweepResult on4 = runSweep(spec, 4, true, /*with_trace=*/true,
                               /*batch_replay=*/true);
    SweepResult off4 = runSweep(spec, 4, true, /*with_trace=*/true,
                                /*batch_replay=*/false);
    EXPECT_EQ(on4.replayedScenarios(), spec.size() - 2);
    expectSweepsEqual(on1, on4);
    expectSweepsEqual(on4, off4);
}

TEST(Engine, BatchedReplayNonThermalTracesBitIdentical)
{
    // No cooling axis -> thermal disabled: exercises the batched
    // dynamic/dram trace path rather than the per-block march.
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.operating_points = OperatingPoint::parseList("0.9:1,1:1");
    spec.workloads = {"vectoradd"};
    SweepResult on = runSweep(spec, 1, true, /*with_trace=*/true,
                              /*batch_replay=*/true);
    SweepResult off = runSweep(spec, 1, true, /*with_trace=*/true,
                               /*batch_replay=*/false);
    // 4 scenarios (2 nodes x 2 vdd points) share one timing key.
    EXPECT_EQ(on.replayedScenarios(), 3u);
    ASSERT_FALSE(on.at(0).kernels.empty());
    EXPECT_FALSE(on.at(0).kernels[0].run.trace.empty());
    expectSweepsEqual(on, off);
}

TEST(Engine, FreqScaleScenariosNeverShareSnapshots)
{
    // freq_scale changes timing, so each operating point must get its
    // own snapshot; only the node axis within a point may replay.
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.operating_points = OperatingPoint::parseList("1:0.8,1:1");
    spec.workloads = {"vectoradd"};
    SweepResult memo = runSweep(spec, 1, true);
    SweepResult full = runSweep(spec, 1, false);
    // 4 scenarios, 2 distinct (freq, workload) timing keys -> exactly
    // the 2 node retargets replay.
    EXPECT_EQ(memo.replayedScenarios(), 2u);
    expectSweepsEqual(memo, full);
    // And the two operating points genuinely differ in timing
    // (expansion order is node-major, then operating point).
    EXPECT_NE(memo.at(0).time_s, memo.at(1).time_s);
}

TEST(Engine, ThrottledScenariosFallBackToFullSimulation)
{
    SweepSpec spec;
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.throttle = true;
    spec.configs = {cfg};
    spec.tech_nodes = {40u, 40u}; // identical retargets: memo bait
    spec.coolings = {"constrained"};
    spec.workloads = {"matmul"};

    SweepResult memo = runSweep(spec, 1, true);
    SweepResult full = runSweep(spec, 1, false);
    // The governor's power-to-timing feedback disqualifies every
    // scenario from replay, identical keys or not.
    EXPECT_EQ(memo.replayedScenarios(), 0u);
    expectSweepsEqual(memo, full);
    EXPECT_TRUE(memo.at(0).throttled);
}
