/**
 * @file
 * Tests of the DVFS operating-point subsystem: the V^2*f scaling of
 * Eq. 1 in the tech layer and power model, leakage monotonicity in
 * the supply, exact bit-identity of the identity point (so the golden
 * anchors stay valid), operating-point parsing/validation, the sweep
 * axis, and end-to-end energy behavior at scaled points.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "power/chip_power.hh"
#include "sim/engine.hh"
#include "tech/tech.hh"

using namespace gpusimpow;
using tech::DeviceType;
using tech::TechNode;

// --- Tech-layer operating-point math ---------------------------------

TEST(DvfsTech, IdentityScaleIsBitIdenticalToUnscaledNode)
{
    TechNode a = TechNode::make(40, 1.05, 350.0);
    TechNode b = TechNode::make(40, 1.05, 350.0, 1.0);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_EQ(a.hp.i_sub_per_um, b.hp.i_sub_per_um);
    EXPECT_EQ(a.hp.i_gate_per_um, b.hp.i_gate_per_um);
    EXPECT_EQ(a.lstp.i_sub_per_um, b.lstp.i_sub_per_um);
    EXPECT_EQ(a.lstp.i_gate_per_um, b.lstp.i_gate_per_um);
    EXPECT_EQ(a.switchEnergy(1e-12), b.switchEnergy(1e-12));
    EXPECT_EQ(a.leakage(100.0), b.leakage(100.0));
    EXPECT_EQ(a.gateLeakage(100.0), b.gateLeakage(100.0));
}

TEST(DvfsTech, SwitchEnergyScalesWithVddSquared)
{
    TechNode nom = TechNode::make(40, 1.05, 350.0);
    TechNode low = TechNode::make(40, 1.05, 350.0, 0.8);
    TechNode high = TechNode::make(40, 1.05, 350.0, 1.2);
    EXPECT_NEAR(low.switchEnergy(1e-12) / nom.switchEnergy(1e-12),
                0.8 * 0.8, 1e-12);
    EXPECT_NEAR(high.switchEnergy(1e-12) / nom.switchEnergy(1e-12),
                1.2 * 1.2, 1e-12);
}

TEST(DvfsTech, LeakageIsMonotonicallyIncreasingInVdd)
{
    double prev_sub = 0.0, prev_gate = 0.0;
    for (double s : {0.7, 0.8, 0.9, 1.0, 1.1, 1.2}) {
        TechNode t = TechNode::make(40, 1.05, 350.0, s);
        double sub = t.leakage(100.0, DeviceType::HP);
        double gate = t.gateLeakage(100.0, DeviceType::HP);
        EXPECT_GT(sub, prev_sub) << "vdd_scale " << s;
        EXPECT_GT(gate, prev_gate) << "vdd_scale " << s;
        prev_sub = sub;
        prev_gate = gate;
    }
}

TEST(DvfsTech, SubthresholdLeakageIsSuperlinearInVdd)
{
    // The DIBL exponential must dominate the linear V factor: halving
    // the supply should cut subthreshold leakage by far more than 2x.
    TechNode nom = TechNode::make(40, 1.05, 350.0);
    TechNode low = TechNode::make(40, 1.05, 350.0, 0.8);
    double ratio = low.leakage(100.0) / nom.leakage(100.0);
    EXPECT_LT(ratio, 0.8 * 0.8);
    EXPECT_GT(ratio, 0.0);
}

TEST(DvfsTech, RejectsNonPositiveScale)
{
    EXPECT_THROW(TechNode::make(40, 1.05, 350.0, 0.0), FatalError);
    EXPECT_THROW(TechNode::make(40, 1.05, 350.0, -1.0), FatalError);
}

// --- Operating-point type --------------------------------------------

TEST(DvfsOperatingPoint, ParseSingleValueSetsBothScales)
{
    OperatingPoint op = OperatingPoint::parse("0.9");
    EXPECT_DOUBLE_EQ(op.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(op.freq_scale, 0.9);
}

TEST(DvfsOperatingPoint, ParsePairSetsScalesSeparately)
{
    OperatingPoint op = OperatingPoint::parse(" 0.9:0.8 ");
    EXPECT_DOUBLE_EQ(op.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(op.freq_scale, 0.8);
}

TEST(DvfsOperatingPoint, ParseRejectsMalformedAndOutOfRange)
{
    EXPECT_THROW(OperatingPoint::parse(""), FatalError);
    EXPECT_THROW(OperatingPoint::parse("abc"), FatalError);
    EXPECT_THROW(OperatingPoint::parse("0.9:0.8:0.7"), FatalError);
    EXPECT_THROW(OperatingPoint::parse("0.9:"), FatalError);
    EXPECT_THROW(OperatingPoint::parse(":0.8"), FatalError);
    EXPECT_THROW(OperatingPoint::parse("9"), FatalError);    // typo'd V
    EXPECT_THROW(OperatingPoint::parse("-0.9"), FatalError);
    EXPECT_THROW(OperatingPoint::parse("0.9:-1"), FatalError);
    EXPECT_THROW(OperatingPoint::parse("0"), FatalError);
}

TEST(DvfsOperatingPoint, ParseListDropsEmptyEntries)
{
    auto ops = OperatingPoint::parseList("0.8, 1:1 ,,1.1:1.2,");
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_DOUBLE_EQ(ops[0].vdd_scale, 0.8);
    EXPECT_TRUE(ops[1].isIdentity());
    EXPECT_DOUBLE_EQ(ops[2].freq_scale, 1.2);
    EXPECT_TRUE(OperatingPoint::parseList("").empty());
}

TEST(DvfsOperatingPoint, LabelIsCompact)
{
    EXPECT_EQ((OperatingPoint{1.0, 1.0}).label(), "v1f1");
    EXPECT_EQ((OperatingPoint{0.9, 0.85}).label(), "v0.9f0.85");
}

TEST(DvfsOperatingPoint, FeasibilityFollowsAlphaPowerLaw)
{
    // Nominal supply sustains the nominal clock (with headroom = 0).
    EXPECT_NEAR((OperatingPoint{1.0, 1.0}).maxFreqScale(), 1.0, 1e-12);
    EXPECT_TRUE((OperatingPoint{1.0, 1.0}).isFeasible());
    // fmax is monotonically increasing in V.
    double prev = 0.0;
    for (double v : {0.5, 0.7, 0.9, 1.1, 1.3}) {
        double fmax = OperatingPoint{v, 1.0}.maxFreqScale();
        EXPECT_GT(fmax, prev) << "vdd_scale " << v;
        prev = fmax;
    }
    // Undervolted chips cannot hold the nominal clock...
    EXPECT_FALSE((OperatingPoint{0.8, 1.0}).isFeasible());
    // ...but a matched downscale is fine, and overvolting buys clock.
    EXPECT_TRUE((OperatingPoint{0.8, 0.7}).isFeasible());
    EXPECT_TRUE((OperatingPoint{1.1, 1.05}).isFeasible());
}

TEST(DvfsOperatingPoint, ApplyToScalesClocksAndSupply)
{
    GpuConfig cfg = GpuConfig::gt240();
    double nominal_shader = cfg.clocks.shaderHz();
    OperatingPoint{0.9, 0.8}.applyTo(cfg);
    EXPECT_DOUBLE_EQ(cfg.tech.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(cfg.clocks.freq_scale, 0.8);
    EXPECT_NEAR(cfg.clocks.shaderHz(), nominal_shader * 0.8, 1.0);
    // The DRAM clock is a separate domain and must not move.
    EXPECT_DOUBLE_EQ(cfg.clocks.dram_hz,
                     GpuConfig::gt240().clocks.dram_hz);
}

TEST(DvfsOperatingPoint, SurvivesXmlRoundTrip)
{
    GpuConfig cfg = GpuConfig::gtx580();
    OperatingPoint{0.9, 0.85}.applyTo(cfg);
    GpuConfig back = GpuConfig::fromXml(cfg.toXml());
    EXPECT_DOUBLE_EQ(back.tech.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(back.clocks.freq_scale, 0.85);
    EXPECT_EQ(back.toXml(), cfg.toXml());
}

TEST(DvfsOperatingPoint, XmlValidationRejectsOutOfRangeScales)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.tech.vdd_scale = 5.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg = GpuConfig::gt240();
    cfg.clocks.freq_scale = -0.5;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
}

// --- Power model at scaled operating points --------------------------

TEST(DvfsPower, IdentityPointIsBitIdenticalToNominalModel)
{
    GpuConfig nominal = GpuConfig::gt240();
    GpuConfig identity = GpuConfig::gt240();
    OperatingPoint{1.0, 1.0}.applyTo(identity);

    power::GpuPowerModel a(nominal);
    power::GpuPowerModel b(identity);
    EXPECT_EQ(a.staticPower(), b.staticPower());
    EXPECT_EQ(a.area(), b.area());
    EXPECT_EQ(a.peakDynamicPower(), b.peakDynamicPower());
    EXPECT_EQ(a.techNode().vdd, b.techNode().vdd);
}

TEST(DvfsPower, StaticPowerDropsWithSupply)
{
    GpuConfig low = GpuConfig::gt240();
    OperatingPoint{0.8, 1.0}.applyTo(low);
    power::GpuPowerModel nom(GpuConfig::gt240());
    power::GpuPowerModel scaled(low);
    EXPECT_LT(scaled.staticPower(), nom.staticPower());
    // Area is voltage-independent.
    EXPECT_EQ(scaled.area(), nom.area());
}

TEST(DvfsPower, PeakDynamicScalesRoughlyWithV2F)
{
    GpuConfig low = GpuConfig::gt240();
    OperatingPoint{0.9, 0.8}.applyTo(low);
    power::GpuPowerModel nom(GpuConfig::gt240());
    power::GpuPowerModel scaled(low);
    // Core-domain peak dynamic tracks V^2*f; MC/PCIe terms in the
    // total don't scale, so only bound the ratio from both sides.
    double ratio =
        scaled.peakDynamicPower() / nom.peakDynamicPower();
    EXPECT_LT(ratio, 1.0);
    EXPECT_GT(ratio, 0.9 * 0.9 * 0.8 * 0.9);
}

// --- Sweep axis ------------------------------------------------------

TEST(DvfsSweep, OperatingPointAxisExpandsBetweenNodeAndWorkload)
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.operating_points = {OperatingPoint{0.9, 0.9},
                             OperatingPoint{1.0, 1.0}};
    spec.workloads = {"vectoradd", "matmul"};
    ASSERT_EQ(spec.size(), 8u);

    std::vector<sim::Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 8u);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        EXPECT_EQ(scenarios[i].index, i);

    // config-major, then node, then operating point, then workload.
    EXPECT_EQ(scenarios[0].config.tech.node_nm, 40u);
    EXPECT_DOUBLE_EQ(scenarios[0].op.vdd_scale, 0.9);
    EXPECT_EQ(scenarios[0].workload, "vectoradd");
    EXPECT_EQ(scenarios[1].workload, "matmul");
    EXPECT_TRUE(scenarios[2].op.isIdentity());
    EXPECT_EQ(scenarios[4].config.tech.node_nm, 28u);
    EXPECT_DOUBLE_EQ(scenarios[4].op.vdd_scale, 0.9);
    EXPECT_EQ(scenarios[0].label,
              "GeForce GT240/40nm/v0.9f0.9/vectoradd");
    EXPECT_EQ(scenarios[7].label,
              "GeForce GT240/28nm/v1f1/matmul");

    // The applied configs carry the scales.
    EXPECT_DOUBLE_EQ(scenarios[0].config.tech.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(scenarios[0].config.clocks.freq_scale, 0.9);
}

TEST(DvfsSweep, EmptyAxisKeepsLegacyLabelsAndOrder)
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd"};
    std::vector<sim::Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0].label, "GeForce GT240/40nm/vectoradd");
    EXPECT_TRUE(scenarios[0].op.isIdentity());
}

TEST(DvfsSweep, EmptyAxisKeepsTheConfigsOwnOperatingPoint)
{
    // A base config that already carries a scaled operating point
    // (applied by the caller or loaded from XML) must sweep at that
    // point when no operating_points axis is given — not get reset
    // to the identity.
    GpuConfig cfg = GpuConfig::gt240();
    OperatingPoint{0.9, 0.8}.applyTo(cfg);
    sim::SweepSpec spec;
    spec.configs = {cfg};
    spec.workloads = {"vectoradd"};
    std::vector<sim::Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_DOUBLE_EQ(scenarios[0].config.tech.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(scenarios[0].config.clocks.freq_scale, 0.8);
    EXPECT_DOUBLE_EQ(scenarios[0].op.vdd_scale, 0.9);
    EXPECT_DOUBLE_EQ(scenarios[0].op.freq_scale, 0.8);
}

// --- End-to-end scenario behavior ------------------------------------

TEST(DvfsScenario, IdentityOperatingPointReproducesNominalRunExactly)
{
    sim::SimulationEngine engine;

    sim::Scenario nominal;
    nominal.config = GpuConfig::gt240();
    nominal.workload = "vectoradd";

    sim::Scenario identity = nominal;
    OperatingPoint{1.0, 1.0}.applyTo(identity.config);

    sim::ScenarioResult a = engine.runScenario(nominal);
    sim::ScenarioResult b = engine.runScenario(identity);
    EXPECT_EQ(a.time_s, b.time_s);
    EXPECT_EQ(a.energy_j, b.energy_j);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(a.static_w, b.static_w);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
}

TEST(DvfsScenario, LowerVfPointTradesRuntimeForEnergy)
{
    sim::SimulationEngine engine;

    sim::Scenario nominal;
    nominal.config = GpuConfig::gt240();
    nominal.workload = "blackscholes";

    sim::Scenario low = nominal;
    low.op = OperatingPoint{0.8, 0.7};
    low.op.applyTo(low.config);

    sim::ScenarioResult a = engine.runScenario(nominal);
    sim::ScenarioResult b = engine.runScenario(low);
    ASSERT_TRUE(a.verified);
    ASSERT_TRUE(b.verified);
    // Slower clock -> longer runtime; lower V and f -> less power.
    EXPECT_GT(b.time_s, a.time_s);
    EXPECT_LT(b.avg_power_w, a.avg_power_w);
    EXPECT_LT(b.static_w, a.static_w);
    // Compute-bound at lower V/f: chip energy should not rise for
    // this compute-heavy kernel (DRAM background power can offset
    // part of the saving, so compare average chip power x time).
    EXPECT_LT((b.avg_power_w) * b.time_s / (a.avg_power_w * a.time_s),
              1.15);
}

TEST(DvfsScenario, SweepOverOperatingPointsIsDeterministicAcrossJobs)
{
    // The acceptance-criteria shape: >= 3 operating points x 2 GPUs
    // x 2 workloads, bit-identical for any worker count.
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.operating_points = {OperatingPoint{0.9, 0.85},
                             OperatingPoint{1.0, 1.0},
                             OperatingPoint{1.05, 1.1}};
    spec.workloads = {"vectoradd", "scalarprod"};
    ASSERT_EQ(spec.size(), 12u);

    sim::EngineOptions serial_opt;
    serial_opt.jobs = 1;
    sim::SweepResult serial =
        sim::SimulationEngine(serial_opt).run(spec);

    for (unsigned jobs : {3u, 8u}) {
        sim::EngineOptions opt;
        opt.jobs = jobs;
        sim::SweepResult parallel = sim::SimulationEngine(opt).run(spec);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial.at(i).scenario.label,
                      parallel.at(i).scenario.label);
            EXPECT_EQ(serial.at(i).time_s, parallel.at(i).time_s)
                << serial.at(i).scenario.label << " jobs=" << jobs;
            EXPECT_EQ(serial.at(i).energy_j, parallel.at(i).energy_j)
                << serial.at(i).scenario.label << " jobs=" << jobs;
            EXPECT_TRUE(parallel.at(i).verified);
        }
    }

    // The identity rows must be bit-identical to a sweep without the
    // operating-point axis (golden-anchor safety at the sweep level).
    sim::SweepSpec plain = spec;
    plain.operating_points.clear();
    sim::SweepResult base = sim::SimulationEngine(serial_opt).run(plain);
    // spec rows: [gt240: op0 wl0, op0 wl1, op1(identity) wl0, ...]
    EXPECT_EQ(base.at(0).energy_j, serial.at(2).energy_j);
    EXPECT_EQ(base.at(1).energy_j, serial.at(3).energy_j);
    EXPECT_EQ(base.at(2).energy_j, serial.at(8).energy_j);
    EXPECT_EQ(base.at(3).energy_j, serial.at(9).energy_j);
}
