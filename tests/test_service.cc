/**
 * @file
 * Tests of the sweep service: request serialization round-trip, an
 * in-process server/client job round-trip on an ephemeral port,
 * repeat queries answered from the warm store with zero captures and
 * a byte-identical table, concurrent clients deduplicated onto one
 * capture, and the error/shutdown paths of the wire protocol.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "sim/engine.hh"
#include "sim/request.hh"
#include "sim/session.hh"
#include "store/store.hh"

using namespace gpusimpow;
using service::SweepClient;
using service::SweepServer;
using sim::EngineOptions;
using sim::SweepRequest;
using sim::SweepSession;

namespace {

/** A unique store directory per test, removed on scope exit. */
struct ScopedDir
{
    std::filesystem::path path;

    explicit ScopedDir(const std::string &tag)
    {
        static std::size_t counter = 0;
        path = std::filesystem::temp_directory_path() /
               strformat("gsp-svc-%s-%zu", tag.c_str(), counter++);
        std::filesystem::remove_all(path);
    }

    ~ScopedDir() { std::filesystem::remove_all(path); }
};

/** A server on an ephemeral loopback port, run()ning on its own
 *  thread until the fixture scope ends. */
struct ScopedServer
{
    std::shared_ptr<SweepSession> session;
    SweepServer server;
    std::thread runner;

    explicit ScopedServer(std::shared_ptr<SweepSession> s)
        : session(std::move(s)), server(session, 0),
          runner([this] { server.run(); })
    {
    }

    ~ScopedServer()
    {
        server.stop();
        runner.join();
    }

    uint16_t port() const { return server.port(); }
};

/** One timing-unique workload, two power-only variants. */
SweepRequest
smallRequest()
{
    return SweepRequest()
        .withWorkloads("vectoradd")
        .withNodes("40,28");
}

} // namespace

TEST(Request, SerializeParseRoundTrip)
{
    SweepRequest request = SweepRequest()
                               .withGpus("gtx580")
                               .withWorkloads("vectoradd,matmul")
                               .withNodes("40,28")
                               .withVf("0.9:0.8,1:1")
                               .withCoolings("stock,liquid")
                               .withScale(2)
                               .withVerify(false)
                               .withAmbient(300.0)
                               .withTLimit(360.0)
                               .withThrottle(true);
    request.config_xml = "<gpu>\n  <clusters>2</clusters>\n</gpu>\n";

    SweepRequest parsed = SweepRequest::parse(request.serialize());
    EXPECT_EQ(parsed.gpus, request.gpus);
    EXPECT_EQ(parsed.config_xml, request.config_xml);
    EXPECT_EQ(parsed.workloads, request.workloads);
    EXPECT_EQ(parsed.nodes, request.nodes);
    EXPECT_EQ(parsed.vf, request.vf);
    EXPECT_EQ(parsed.coolings, request.coolings);
    EXPECT_EQ(parsed.scale, request.scale);
    EXPECT_EQ(parsed.verify, request.verify);
    EXPECT_TRUE(parsed.ambient_set);
    EXPECT_EQ(parsed.ambient_k, request.ambient_k);
    EXPECT_TRUE(parsed.t_limit_set);
    EXPECT_EQ(parsed.t_limit_k, request.t_limit_k);
    EXPECT_EQ(parsed.throttle, request.throttle);
    // The round trip is exact, so re-serialization is byte-stable.
    EXPECT_EQ(parsed.serialize(), request.serialize());
}

TEST(Request, ParseRejectsMalformedInput)
{
    EXPECT_THROW(SweepRequest::parse("not a request"), FatalError);
    EXPECT_THROW(SweepRequest::parse(""), FatalError);
    // A truncated request (no end marker) must not parse.
    std::string text = SweepRequest().serialize();
    EXPECT_THROW(SweepRequest::parse(text.substr(0, text.size() / 2)),
                 FatalError);
}

TEST(Request, ToSpecRejectsIncoherentAxes)
{
    EXPECT_THROW(SweepRequest().withWorkloads("").toSpec(),
                 FatalError);
    EXPECT_THROW(SweepRequest().withGpus("no-such-gpu").toSpec(),
                 FatalError);
    // Thermal scalars require a cooling axis to act on.
    EXPECT_THROW(SweepRequest().withAmbient(300.0).toSpec(),
                 FatalError);
    EXPECT_THROW(SweepRequest()
                     .withCoolings("stock")
                     .withAmbient(300.0)
                     .withTLimit(290.0) // below ambient
                     .toSpec(),
                 FatalError);
}

TEST(Service, JobRoundTripStreamsRowsAndTable)
{
    ScopedServer server(
        std::make_shared<SweepSession>(EngineOptions().withJobs(2)));

    std::vector<std::string> rows;
    SweepClient client("127.0.0.1", server.port());
    SweepClient::JobResult job = client.submitJob(
        smallRequest(),
        [&](const std::string &row) { rows.push_back(row); });

    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.rows, 2u);
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_NE(job.table.find("vectoradd"), std::string::npos);
    EXPECT_NE(job.metrics_json.find("gpusimpow-metrics-1"),
              std::string::npos);
    // The served table matches a local run of the same request.
    SweepSession local(EngineOptions().withJobs(2));
    EXPECT_EQ(job.table,
              local.submit(smallRequest().toSpec()).formatTable());
}

TEST(Service, RepeatQueryIsServedFromWarmStoreByteIdentically)
{
    ScopedDir dir("warm");
    ScopedServer server(std::make_shared<SweepSession>(
        EngineOptions().withJobs(2), store::openStore(dir.path)));

    SweepClient first("127.0.0.1", server.port());
    SweepClient::JobResult cold = first.submitJob(smallRequest());
    ASSERT_TRUE(cold.ok) << cold.error;

    SweepClient second("127.0.0.1", server.port());
    SweepClient::JobResult warm = second.submitJob(smallRequest());
    ASSERT_TRUE(warm.ok) << warm.error;

    EXPECT_EQ(warm.table, cold.table);
    // The telemetry document proves the repeat ran capture-free.
    EXPECT_NE(warm.metrics_json.find("\"captured\":0"),
              std::string::npos)
        << warm.metrics_json;
    EXPECT_EQ(server.session->storeHandle()->size(), 1u);
}

TEST(Service, ConcurrentClientsShareOneCapture)
{
    ScopedDir dir("dedupe");
    ScopedServer server(std::make_shared<SweepSession>(
        EngineOptions().withJobs(2), store::openStore(dir.path)));

    SweepClient::JobResult jobs[2];
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&, c] {
            SweepClient client("127.0.0.1", server.port());
            jobs[c] = client.submitJob(smallRequest());
        });
    for (std::thread &t : clients)
        t.join();

    ASSERT_TRUE(jobs[0].ok) << jobs[0].error;
    ASSERT_TRUE(jobs[1].ok) << jobs[1].error;
    EXPECT_EQ(jobs[0].table, jobs[1].table);
    // One snapshot key in the request, so exactly one entry — and
    // one capture — no matter how the clients interleaved.
    EXPECT_EQ(server.session->storeHandle()->size(), 1u);
}

TEST(Service, BadRequestGetsAnErrorFrame)
{
    ScopedServer server(
        std::make_shared<SweepSession>(EngineOptions().withJobs(1)));

    SweepClient client("127.0.0.1", server.port());
    SweepClient::JobResult job =
        client.submitJob(smallRequest().withWorkloads("no-such"));
    EXPECT_FALSE(job.ok);
    EXPECT_NE(job.error.find("no-such"), std::string::npos)
        << job.error;

    // The connection survives an error; the same client can submit
    // a good job afterwards.
    SweepClient::JobResult retry = client.submitJob(smallRequest());
    EXPECT_TRUE(retry.ok) << retry.error;
}

TEST(Service, ShutdownIsAcknowledgedAndStopsTheServer)
{
    auto session =
        std::make_shared<SweepSession>(EngineOptions().withJobs(1));
    SweepServer server(session, 0);
    std::thread runner([&] { server.run(); });

    SweepClient client("127.0.0.1", server.port());
    EXPECT_TRUE(client.shutdownServer());
    runner.join(); // run() returns once the stop flag is set
}
