/**
 * @file
 * Closed-loop thermal subsystem tests: temperature-leakage
 * monotonicity, RC network solutions (linear, steady-state
 * fixed-point, transient), runaway detection, block power/report
 * consistency, golden identity at the pinned default cooling, the
 * DVFS throttling governor, configuration validation of the new
 * thermal parameters, and thermal-state hygiene across recycle().
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "obs/metrics.hh"
#include "power/chip_power.hh"
#include "sim/engine.hh"
#include "tech/tech.hh"
#include "thermal/thermal.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

namespace {

/** A tiny two-die-block network for direct solver checks. */
thermal::BlockSet
tinyBlocks()
{
    thermal::BlockSet set;
    set.names = {"cluster0", "uncore", "dram"};
    set.area_mm2 = {50.0, 10.0, 0.0};
    set.num_clusters = 1;
    set.has_l2 = false;
    return set;
}

ThermalConfig
tinyCooling()
{
    ThermalConfig tc;
    tc.enabled = true;
    tc.r_heatsink_k_per_w = 0.5;
    return tc;
}

sim::ScenarioResult
runScenario(GpuConfig cfg, const std::string &workload)
{
    sim::Scenario s;
    s.config = std::move(cfg);
    s.workload = workload;
    return sim::SimulationEngine().runScenario(s);
}

} // namespace

// ---------------------------------------------------------------- tech

TEST(ThermalTech, TempLeakFactorIsOneAtCharacterizationPoint)
{
    EXPECT_DOUBLE_EQ(tech::tempLeakFactorAt(300.0), 1.0);
    // Doubles every 20 K, the rule of thumb the model states.
    EXPECT_NEAR(tech::tempLeakFactorAt(320.0), 2.0, 1e-12);
    EXPECT_NEAR(tech::tempLeakFactorAt(340.0), 4.0, 1e-12);
}

TEST(ThermalTech, TempLeakFactorIsStrictlyMonotonic)
{
    double prev = 0.0;
    for (double t = 280.0; t <= 420.0; t += 5.0) {
        double f = tech::tempLeakFactorAt(t);
        EXPECT_GT(f, prev) << "at " << t << " K";
        prev = f;
    }
}

TEST(ThermalTech, LeakageIsMonotonicInJunctionTemperature)
{
    double prev = 0.0;
    for (double t : {310.0, 330.0, 350.0, 370.0, 390.0}) {
        tech::TechNode node = tech::TechNode::make(40, -1.0, t);
        double leak = node.leakage(1000.0);
        EXPECT_GT(leak, prev) << "at " << t << " K";
        prev = leak;
        EXPECT_DOUBLE_EQ(node.tempLeakFactor(),
                         tech::tempLeakFactorAt(t));
    }
}

TEST(ThermalTech, MakeRejectsNonPhysicalTemperatures)
{
    EXPECT_THROW(tech::TechNode::make(40, -1.0, 0.0), FatalError);
    EXPECT_THROW(tech::TechNode::make(40, -1.0, -10.0), FatalError);
    EXPECT_THROW(tech::TechNode::make(40, -1.0, 501.0), FatalError);
}

// ------------------------------------------------------------ validation

TEST(ThermalConfigValidation, RejectsNonPhysicalTechTemperature)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.tech.temperature = 0.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg.tech.temperature = -50.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg.tech.temperature = 650.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg.tech.temperature = 350.0;
    EXPECT_NO_THROW(GpuConfig::fromXml(cfg.toXml()));
}

TEST(ThermalConfigValidation, RejectsBadThermalParameters)
{
    GpuConfig cfg = GpuConfig::gt240();
    cfg.thermal.ambient_k = 150.0; // below the plausible range
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);

    cfg = GpuConfig::gt240();
    cfg.thermal.t_limit_k = cfg.thermal.ambient_k - 1.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);

    cfg = GpuConfig::gt240();
    cfg.thermal.cooling_scale = 0.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);

    cfg = GpuConfig::gt240();
    cfg.thermal.r_dram_k_per_w = -1.0;
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);

    cfg = GpuConfig::gt240();
    cfg.thermal.throttle = true; // throttle without the subsystem
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg.thermal.enabled = true;
    EXPECT_NO_THROW(GpuConfig::fromXml(cfg.toXml()));
}

TEST(ThermalConfigValidation, ThermalSectionSurvivesXmlRoundTrip)
{
    GpuConfig a = GpuConfig::gtx580();
    a.thermal.applyCooling("constrained");
    a.thermal.throttle = true;
    a.thermal.ambient_k = 325.0;
    a.thermal.t_limit_k = 355.0;
    GpuConfig b = GpuConfig::fromXml(a.toXml());
    EXPECT_EQ(b.thermal.enabled, true);
    EXPECT_EQ(b.thermal.throttle, true);
    EXPECT_EQ(b.thermal.cooling, "constrained");
    EXPECT_DOUBLE_EQ(b.thermal.cooling_scale,
                     a.thermal.cooling_scale);
    EXPECT_DOUBLE_EQ(b.thermal.ambient_k, 325.0);
    EXPECT_DOUBLE_EQ(b.thermal.t_limit_k, 355.0);
    EXPECT_EQ(a.toXml(), b.toXml());
}

TEST(ThermalConfigValidation, CoolingPresetsAreKnownAndDistinct)
{
    ThermalConfig stock, constrained, liquid;
    stock.applyCooling("stock");
    constrained.applyCooling("constrained");
    liquid.applyCooling("liquid");
    EXPECT_TRUE(stock.enabled);
    EXPECT_LT(liquid.cooling_scale, stock.cooling_scale);
    EXPECT_GT(constrained.cooling_scale, stock.cooling_scale);

    ThermalConfig bad;
    EXPECT_THROW(bad.applyCooling("peltier"), FatalError);
    EXPECT_EQ(ThermalConfig::coolingPresets().size(), 3u);
}

// --------------------------------------------------------------- network

TEST(ThermalNetwork, LinearSolveMatchesHandComputedSeriesPath)
{
    thermal::BlockSet set = tinyBlocks();
    ThermalConfig tc = tinyCooling();
    // Decouple the two die blocks so each is a pure series path:
    // block -> heatsink -> ambient.
    tc.r_lateral_k_per_w = 1e12;
    thermal::ThermalNetwork net(set, tc);

    std::vector<double> temps = net.solveLinear({30.0, 0.0, 4.0});
    // Heatsink carries the total die power: T_hs = amb + P * R_hs.
    double t_hs = tc.ambient_k + 30.0 * 0.5;
    EXPECT_NEAR(temps[3], t_hs, 1e-9);
    // Cluster0 adds its vertical rise: P * r_die / area.
    EXPECT_NEAR(temps[0], t_hs + 30.0 * tc.r_die_k_mm2_per_w / 50.0,
                1e-9);
    // The unpowered uncore floats at the heatsink temperature.
    EXPECT_NEAR(temps[1], t_hs, 1e-9);
    // DRAM has its own board path, untouched by die power.
    EXPECT_NEAR(temps[2], tc.ambient_k + 4.0 * tc.r_dram_k_per_w,
                1e-9);
}

TEST(ThermalNetwork, SteadyStateConvergesOnStableFeedback)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    // Affine leakage feedback with loop gain well below one.
    auto power_at = [](const std::vector<double> &temps) {
        return std::vector<double>{
            20.0 + 0.05 * (temps[0] - 300.0), 2.0, 3.0};
    };
    thermal::SteadyResult s = net.solveSteady(power_at);
    EXPECT_TRUE(s.converged);
    EXPECT_LT(s.iterations, 200u);
    // At the fixed point the solved temps reproduce themselves.
    std::vector<double> check = net.solveLinear(power_at(s.temps_k));
    for (std::size_t i = 0; i < s.temps_k.size(); ++i)
        EXPECT_NEAR(check[i], s.temps_k[i], 1e-3);
    EXPECT_GT(s.maxTemp(), net.ambient());
}

TEST(ThermalNetwork, SteadyStateDetectsThermalRunaway)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    // Leakage that doubles per 10 K with a heavy base: gain >> 1.
    auto power_at = [](const std::vector<double> &temps) {
        return std::vector<double>{
            80.0 * std::pow(2.0, (temps[0] - 300.0) / 10.0), 0.0,
            0.0};
    };
    thermal::SteadyResult s = net.solveSteady(power_at);
    EXPECT_FALSE(s.converged);
    EXPECT_DOUBLE_EQ(s.maxTemp(),
                     thermal::ThermalNetwork::runaway_cap_k);
}

TEST(ThermalNetwork, TransientApproachesSteadyStateOnConstantPower)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    std::vector<double> powers{25.0, 3.0, 4.0};
    std::vector<double> steady = net.solveLinear(powers);

    // Integrate forward in explicit sub-second chunks.
    thermal::ThermalNetwork::State state = net.ambientState();
    for (int i = 0; i < 4000; ++i)
        net.advance(state, powers, 0.25);
    for (std::size_t i = 0; i < state.temps_k.size(); ++i)
        EXPECT_NEAR(state.temps_k[i], steady[i], 0.5) << "node " << i;

    // A span dwarfing every time constant snaps to the same answer.
    thermal::ThermalNetwork::State jump = net.ambientState();
    net.advance(jump, powers, 1e9);
    for (std::size_t i = 0; i < jump.temps_k.size(); ++i)
        EXPECT_NEAR(jump.temps_k[i], steady[i], 1e-6) << "node " << i;
}

TEST(ThermalNetwork, TransientIsMonotonicFromColdStartAndStable)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    EXPECT_GT(net.maxStableDt(), 0.0);
    thermal::ThermalNetwork::State state = net.ambientState();
    std::vector<double> powers{25.0, 3.0, 4.0};
    double prev = state.temps_k[0];
    for (int i = 0; i < 50; ++i) {
        // Steps far above the stability bound must substep, not blow
        // up into oscillation.
        net.advance(state, powers, 100.0 * net.maxStableDt());
        EXPECT_GE(state.temps_k[0], prev - 1e-9);
        EXPECT_LT(state.temps_k[0],
                  thermal::ThermalNetwork::runaway_cap_k);
        prev = state.temps_k[0];
    }
}

// -------------------------------------------------- power/report coupling

TEST(ThermalPower, BlockPowersPartitionTheReportExactly)
{
    for (const GpuConfig &cfg :
         {GpuConfig::gt240(), GpuConfig::gtx580()}) {
        sim::ScenarioResult r = runScenario(cfg, "blackscholes");
        const KernelRun &run = r.kernels.at(0).run;
        power::GpuPowerModel model(cfg);
        std::vector<power::BlockPower> bp =
            model.blockPowers(run.perf.activity);
        thermal::BlockSet set = model.thermalBlocks();
        ASSERT_EQ(bp.size(), set.size());

        double total = 0.0;
        for (const power::BlockPower &b : bp) {
            EXPECT_GE(b.dynamic_w, -1e-12);
            EXPECT_GE(b.sub_leak_w, -1e-12);
            total += b.total();
        }
        double expected = run.report.totalPower() + run.report.dram_w;
        EXPECT_NEAR(total, expected, 1e-9 * expected);
        // The DRAM block carries exactly the off-chip DRAM power.
        EXPECT_NEAR(bp[set.dramIndex()].total(), run.report.dram_w,
                    1e-12);
    }
}

TEST(ThermalPower, ThermalBlockAreasCoverTheDie)
{
    for (const GpuConfig &cfg :
         {GpuConfig::gt240(), GpuConfig::gtx580()}) {
        power::GpuPowerModel model(cfg);
        thermal::BlockSet set = model.thermalBlocks();
        EXPECT_EQ(set.num_clusters, cfg.clusters);
        EXPECT_EQ(set.has_l2, cfg.l2.present);
        EXPECT_EQ(set.size(),
                  cfg.clusters + (cfg.l2.present ? 1 : 0) + 2);
        double die = 0.0;
        for (std::size_t i = 0; i < set.numDie(); ++i)
            die += set.area_mm2[i];
        // Within a few percent of the reported chip area (the NoC is
        // wiring over other blocks, not a separate footprint).
        EXPECT_NEAR(die, model.area(), 0.15 * model.area());
    }
}

TEST(ThermalPower, EvaluateAtNominalTemperatureIsBitIdentical)
{
    GpuConfig cfg = GpuConfig::gtx580();
    sim::ScenarioResult r = runScenario(cfg, "blackscholes");
    const KernelRun &run = r.kernels.at(0).run;
    power::GpuPowerModel model(cfg);
    thermal::BlockSet set = model.thermalBlocks();

    std::vector<double> nominal(set.size(), cfg.tech.temperature);
    power::PowerReport at =
        model.evaluateAt(run.perf.activity, nominal);
    power::PowerReport plain = model.evaluate(run.perf.activity);
    EXPECT_EQ(at.gpu.flatten(), plain.gpu.flatten());
}

TEST(ThermalPower, EvaluateAtScalesLeakageWithBlockTemperature)
{
    GpuConfig cfg = GpuConfig::gt240();
    sim::ScenarioResult r = runScenario(cfg, "matmul");
    const KernelRun &run = r.kernels.at(0).run;
    power::GpuPowerModel model(cfg);
    thermal::BlockSet set = model.thermalBlocks();

    std::vector<double> hot(set.size(), 370.0);
    std::vector<double> cold(set.size(), 330.0);
    power::PowerReport hot_rep =
        model.evaluateAt(run.perf.activity, hot);
    power::PowerReport cold_rep =
        model.evaluateAt(run.perf.activity, cold);
    power::PowerReport nom_rep = model.evaluate(run.perf.activity);

    EXPECT_GT(hot_rep.staticPower(), nom_rep.staticPower());
    EXPECT_LT(cold_rep.staticPower(), nom_rep.staticPower());
    // Dynamic power and DRAM do not follow die temperature.
    EXPECT_DOUBLE_EQ(hot_rep.dynamicPower(), nom_rep.dynamicPower());
    EXPECT_DOUBLE_EQ(hot_rep.dram_w, nom_rep.dram_w);
    // +20 K doubles subthreshold leakage; gate leakage stays, so the
    // static total grows by less than 2x but clearly more than 1.5x.
    EXPECT_GT(hot_rep.staticPower(), 1.5 * nom_rep.staticPower());
    EXPECT_LT(hot_rep.staticPower(), 2.0 * nom_rep.staticPower());
}

// ------------------------------------------------- closed loop / anchors

TEST(ThermalLoop, StockCoolingReproducesNominal350KOnAnchors)
{
    // The pinned default: the steady-state solve on the Table II
    // anchor configs running blackscholes lands at the 350 K the
    // static configuration assumes, closing the loop consistently
    // with every golden anchor.
    for (const GpuConfig &base :
         {GpuConfig::gt240(), GpuConfig::gtx580()}) {
        GpuConfig cfg = base;
        cfg.thermal.applyCooling("stock");
        sim::ScenarioResult r = runScenario(cfg, "blackscholes");
        EXPECT_TRUE(r.thermal);
        EXPECT_TRUE(r.thermal_converged) << base.name;
        const ThermalResult &th = r.kernels.at(0).run.thermal;
        for (std::size_t c = 0; c < cfg.clusters; ++c)
            EXPECT_NEAR(th.block_temps_k[c], 350.0, 5.0)
                << base.name << " cluster " << c;
        EXPECT_NEAR(r.t_max_k, 350.0, 8.0) << base.name;
    }
}

TEST(ThermalLoop, DisabledThermalKeepsLegacyResults)
{
    // Thermal off (the default) must not perturb anything: same
    // numbers as the pre-thermal engine, kernel for kernel.
    GpuConfig cfg = GpuConfig::gt240();
    EXPECT_FALSE(cfg.thermal.enabled);
    sim::ScenarioResult r = runScenario(cfg, "blackscholes");
    EXPECT_FALSE(r.thermal);
    EXPECT_FALSE(r.kernels.at(0).run.thermal.enabled);
    power::GpuPowerModel model(cfg);
    EXPECT_DOUBLE_EQ(r.static_w, model.staticPower());
}

TEST(ThermalLoop, BetterCoolingLowersTemperatureAndLeakageEnergy)
{
    GpuConfig stock = GpuConfig::gtx580();
    stock.thermal.applyCooling("stock");
    GpuConfig liquid = GpuConfig::gtx580();
    liquid.thermal.applyCooling("liquid");

    sim::ScenarioResult rs = runScenario(stock, "matmul");
    sim::ScenarioResult rl = runScenario(liquid, "matmul");
    EXPECT_TRUE(rs.thermal_converged);
    EXPECT_TRUE(rl.thermal_converged);
    // Same clock, same runtime — only the thermal operating point
    // moves, and with it the leakage share of the energy.
    EXPECT_DOUBLE_EQ(rs.time_s, rl.time_s);
    const ThermalResult &ts = rs.kernels.at(0).run.thermal;
    const ThermalResult &tl = rl.kernels.at(0).run.thermal;
    EXPECT_LT(tl.block_temps_k[0], ts.block_temps_k[0]);
    EXPECT_LT(rl.energy_j, rs.energy_j);
}

TEST(ThermalLoop, TransientWaveformTracksTheKernel)
{
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload("matmul", 2);
    auto launches = wl->prepare(sim.gpu());
    ASSERT_FALSE(launches.empty());
    KernelRun run = sim.runKernel(launches[0].prog,
                                  launches[0].launch, true, 2e-6);

    ASSERT_FALSE(run.trace.empty());
    ASSERT_EQ(run.thermal.trace.size(), run.trace.size());
    const ThermalSample &first = run.thermal.trace.front();
    const ThermalSample &last = run.thermal.trace.back();
    // Block nodes plus the heatsink.
    ASSERT_EQ(first.temps_k.size(),
              run.thermal.block_names.size() + 1);
    // The die warms monotonically out of the cold start; one kernel
    // is far shorter than the thermal time constants, so it stays
    // well below the steady-state temperature.
    EXPECT_GT(last.temps_k[0], first.temps_k[0]);
    EXPECT_LT(last.temps_k[0], run.thermal.t_max_k);
    // Transient leakage feedback: the traced static power at the
    // (cold) transient temperatures is below the 350 K figure.
    EXPECT_LT(run.trace.front().static_w,
              sim.powerModel().staticPower());
}

TEST(ThermalLoop, ThermalStateCarriesAcrossKernelsUntilRecycled)
{
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload("matmul", 1);
    auto launches = wl->prepare(sim.gpu());
    KernelRun first = sim.runKernel(launches[0].prog,
                                    launches[0].launch, true, 2e-6);
    KernelRun second = sim.runKernel(launches[0].prog,
                                     launches[0].launch, true, 2e-6);
    // The second kernel starts where the first ended: warmer than
    // ambient, continuing the heating trajectory.
    EXPECT_GT(second.thermal.trace.front().temps_k[0],
              first.thermal.trace.front().temps_k[0]);

    sim.recycle();
    auto launches2 = wl->prepare(sim.gpu());
    KernelRun fresh = sim.runKernel(launches2[0].prog,
                                    launches2[0].launch, true, 2e-6);
    EXPECT_EQ(fresh.thermal.trace.front().temps_k[0],
              first.thermal.trace.front().temps_k[0]);
}

// ------------------------------------------------------------- throttling

TEST(ThermalThrottle, ConstrainedGtx580ThrottlesAndCostsEnergy)
{
    // The acceptance scenario: a sustained compute run on the GTX580
    // under constrained cooling. Unthrottled it runs away; the
    // governor clamps the clock to a converged operating point at
    // the cost of runtime and energy versus the nominal run.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("constrained");

    sim::ScenarioResult runaway = runScenario(cfg, "matmul");
    EXPECT_FALSE(runaway.thermal_converged);
    EXPECT_FALSE(runaway.throttled);
    EXPECT_DOUBLE_EQ(runaway.t_max_k,
                     thermal::ThermalNetwork::runaway_cap_k);

    cfg.thermal.throttle = true;
    sim::ScenarioResult governed = runScenario(cfg, "matmul");
    sim::ScenarioResult nominal =
        runScenario(GpuConfig::gtx580(), "matmul");

    EXPECT_TRUE(governed.throttled);
    EXPECT_TRUE(governed.thermal_converged);
    EXPECT_LT(governed.min_freq_scale, 1.0);
    EXPECT_GT(governed.min_freq_scale,
              Simulator::min_throttle_freq_scale - 1e-12);
    EXPECT_LE(governed.t_max_k, cfg.thermal.t_limit_k + 0.25);
    // The clamp stretches the runtime, and static power keeps
    // integrating over it: strictly more energy than nominal.
    EXPECT_GT(governed.time_s, nominal.time_s);
    EXPECT_GT(governed.energy_j, nominal.energy_j);
    EXPECT_TRUE(governed.verified);
}

TEST(ThermalThrottle, RunawayReportFallsBackToNominalLeakage)
{
    // On runaway no steady state exists; evaluating leakage at the
    // 500 K cap would inflate energy ~180x and poison every sweep
    // comparison. The report must fall back to the nominal junction
    // temperature, with the runaway flagged through converged.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("constrained");
    sim::ScenarioResult r = runScenario(cfg, "matmul");
    ASSERT_FALSE(r.thermal_converged);

    power::GpuPowerModel model(cfg);
    const KernelRun &run = r.kernels.at(0).run;
    EXPECT_DOUBLE_EQ(run.report.staticPower(), model.staticPower());
    sim::ScenarioResult nominal =
        runScenario(GpuConfig::gtx580(), "matmul");
    EXPECT_NEAR(r.energy_j, nominal.energy_j,
                0.05 * nominal.energy_j);
}

TEST(ThermalThrottle, GovernorIgnoresTheClockInvariantDramBlock)
{
    // The DRAM board block has its own supply and clock; a t-limit
    // below its temperature must not drag the core clock to the
    // floor for a block throttling cannot cool. GTX580 vectoradd on
    // a liquid loop: die ~322 K, DRAM ~352 K.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("liquid");
    cfg.thermal.throttle = true;
    cfg.thermal.t_limit_k = 345.0;
    sim::ScenarioResult r = runScenario(cfg, "vectoradd");
    EXPECT_FALSE(r.throttled);
    EXPECT_TRUE(r.thermal_converged);
    EXPECT_DOUBLE_EQ(r.min_freq_scale, 1.0);
    EXPECT_LT(r.t_max_k, 345.0); // die-only, by contract
    // ...while the DRAM block itself does sit above the limit.
    const ThermalResult &th = r.kernels.at(0).run.thermal;
    ASSERT_EQ(th.block_names.back(), "dram");
    EXPECT_GT(th.block_temps_k.back(), 345.0);
    EXPECT_NE(th.hottestBlock(), "dram");
}

TEST(ThermalThrottle, NonRepeatableKernelsThrottleAnalytically)
{
    // mergeSort3 is flagged non-repeatable: the governor may not
    // re-execute it, so it iterates on the analytic rescale instead
    // — and must still land on a *verified* converged clamp, with
    // the stretched trace consistent with the stretched report.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("constrained");
    cfg.thermal.throttle = true;
    sim::Scenario s;
    s.config = cfg;
    s.workload = "mergesort";
    sim::EngineOptions opt;
    opt.with_trace = true;
    opt.sample_interval_s = 2e-6;
    sim::ScenarioResult r =
        sim::SimulationEngine(opt).runScenario(s);

    EXPECT_TRUE(r.throttled);
    EXPECT_TRUE(r.thermal_converged);
    EXPECT_LE(r.t_max_k, cfg.thermal.t_limit_k + 0.25);
    sim::ScenarioResult nominal =
        runScenario(GpuConfig::gtx580(), "mergesort");
    // Clamped, so slower and costlier — but sane, not runaway-scaled.
    EXPECT_GT(r.time_s, nominal.time_s);
    EXPECT_GT(r.energy_j, nominal.energy_j);
    EXPECT_LT(r.energy_j, 10.0 * nominal.energy_j);

    for (const sim::KernelResult &k : r.kernels) {
        if (k.repeatable || !k.run.thermal.throttled)
            continue;
        // The analytically stretched trace must still span the
        // kernel and integrate to the report's energy rates.
        ASSERT_FALSE(k.run.trace.empty());
        EXPECT_NEAR(k.run.trace.back().t1, k.run.perf.time_s,
                    0.05 * k.run.perf.time_s);
        double dyn_j = 0.0;
        for (const PowerSample &ps : k.run.trace)
            dyn_j += ps.dynamic_w * (ps.t1 - ps.t0);
        // mergeSort3 is only a handful of samples long, so the
        // inherent trace-vs-report discretization gap is a few
        // percent; an *unscaled* trace would be off by ~1/f (>30%).
        double rep_dyn_j =
            k.run.report.dynamicPower() * k.run.perf.time_s;
        EXPECT_NEAR(dyn_j, rep_dyn_j, 0.10 * rep_dyn_j);
    }
}

TEST(ThermalThrottle, GovernorHoldsTemperatureAtTheLimit)
{
    // GT240 under constrained cooling sits just over the limit at
    // full clock: the governor's clamp should land the steady
    // temperature at (not far below) the limit.
    GpuConfig cfg = GpuConfig::gt240();
    cfg.thermal.applyCooling("constrained");
    cfg.thermal.throttle = true;
    sim::ScenarioResult r = runScenario(cfg, "matmul");
    EXPECT_TRUE(r.throttled);
    EXPECT_TRUE(r.thermal_converged);
    EXPECT_LE(r.t_max_k, cfg.thermal.t_limit_k + 0.25);
    EXPECT_GT(r.t_max_k, cfg.thermal.t_limit_k - 10.0);
    EXPECT_LT(r.min_freq_scale, 1.0);
}

TEST(ThermalThrottle, StockCoolingDoesNotThrottleTheAnchors)
{
    for (const GpuConfig &base :
         {GpuConfig::gt240(), GpuConfig::gtx580()}) {
        GpuConfig cfg = base;
        cfg.thermal.applyCooling("stock");
        cfg.thermal.throttle = true;
        sim::ScenarioResult r = runScenario(cfg, "blackscholes");
        EXPECT_FALSE(r.throttled) << base.name;
        EXPECT_TRUE(r.thermal_converged) << base.name;
        EXPECT_DOUBLE_EQ(r.min_freq_scale, 1.0) << base.name;
    }
}

TEST(ThermalThrottle, RecycleRestoresClampAndThermalState)
{
    // After a throttled scenario, recycle() must restore the
    // configured clock and discard the thermal history so the next
    // run is bit-identical to a fresh Simulator.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("constrained");
    cfg.thermal.throttle = true;

    sim::Scenario scenario;
    scenario.config = cfg;
    scenario.workload = "matmul";
    sim::SimulationEngine engine;
    sim::ScenarioResult fresh = engine.runScenario(scenario);
    EXPECT_TRUE(fresh.throttled);

    Simulator sim(cfg);
    sim::ScenarioResult first = engine.runScenario(scenario, sim);
    // The clamp is live right after the scenario...
    EXPECT_LT(sim.config().clocks.freq_scale, 1.0);
    sim.recycle();
    // ...and gone after recycling.
    EXPECT_DOUBLE_EQ(sim.config().clocks.freq_scale,
                     cfg.clocks.freq_scale);
    sim::ScenarioResult again = engine.runScenario(scenario, sim);

    EXPECT_EQ(again.time_s, fresh.time_s);
    EXPECT_EQ(again.energy_j, fresh.energy_j);
    EXPECT_EQ(again.t_max_k, fresh.t_max_k);
    EXPECT_EQ(again.min_freq_scale, fresh.min_freq_scale);
    EXPECT_EQ(first.energy_j, fresh.energy_j);
}

// ------------------------------------------------------------ sweep axis

TEST(ThermalSweep, CoolingAxisExpandsBetweenOperatingPointAndWorkload)
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.operating_points = {OperatingPoint{1.0, 1.0},
                             OperatingPoint{0.9, 0.9}};
    spec.coolings = {"stock", "liquid"};
    spec.workloads = {"vectoradd", "matmul"};
    EXPECT_EQ(spec.size(), 8u);

    std::vector<sim::Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 8u);
    EXPECT_EQ(scenarios[0].label,
              "GeForce GT240/40nm/v1f1/stock/vectoradd");
    EXPECT_EQ(scenarios[1].label,
              "GeForce GT240/40nm/v1f1/stock/matmul");
    EXPECT_EQ(scenarios[2].label,
              "GeForce GT240/40nm/v1f1/liquid/vectoradd");
    EXPECT_EQ(scenarios[4].label,
              "GeForce GT240/40nm/v0.9f0.9/stock/vectoradd");
    for (const sim::Scenario &s : scenarios) {
        EXPECT_TRUE(s.config.thermal.enabled);
        EXPECT_EQ(s.index, static_cast<std::size_t>(
                               &s - scenarios.data()));
    }
    EXPECT_DOUBLE_EQ(scenarios[2].config.thermal.cooling_scale, 0.4);
}

TEST(ThermalSweep, EmptyCoolingAxisKeepsLegacyLabelsAndThermalOff)
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd"};
    std::vector<sim::Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0].label, "GeForce GT240/40nm/vectoradd");
    EXPECT_FALSE(scenarios[0].config.thermal.enabled);
}

TEST(ThermalSweep, ThermalSweepIsDeterministicAcrossJobs)
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.coolings = {"stock", "constrained"};
    spec.workloads = {"matmul"};
    for (GpuConfig &cfg : spec.configs)
        cfg.thermal.throttle = true;

    sim::EngineOptions one;
    one.jobs = 1;
    sim::EngineOptions four;
    four.jobs = 4;
    sim::SweepResult a = sim::SimulationEngine(one).run(spec);
    sim::SweepResult b = sim::SimulationEngine(four).run(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).energy_j, b.at(i).energy_j);
        EXPECT_EQ(a.at(i).t_max_k, b.at(i).t_max_k);
        EXPECT_EQ(a.at(i).min_freq_scale, b.at(i).min_freq_scale);
        EXPECT_EQ(a.at(i).throttled, b.at(i).throttled);
    }
    // The constrained GTX580 row in this sweep must demonstrate an
    // actual clamp (the throttling acceptance scenario end to end
    // through the engine).
    EXPECT_TRUE(a.at(3).throttled);
    EXPECT_LT(a.at(3).min_freq_scale, 1.0);
}

// ----------------------------------------------- factored linear solves

TEST(ThermalSolver, FactoredSolveIsBitIdenticalToDenseReference)
{
    // The acceptance bar of the factored fast path: every solution
    // of the cached LU must match the historical from-scratch
    // elimination bit for bit, across network shapes and power
    // vectors — EXPECT_EQ, not EXPECT_NEAR.
    std::vector<std::unique_ptr<thermal::ThermalNetwork>> nets;
    nets.push_back(std::make_unique<thermal::ThermalNetwork>(
        tinyBlocks(), tinyCooling()));
    ThermalConfig decoupled = tinyCooling();
    decoupled.r_lateral_k_per_w = 1e12;
    nets.push_back(std::make_unique<thermal::ThermalNetwork>(
        tinyBlocks(), decoupled));
    for (GpuConfig cfg : {GpuConfig::gt240(), GpuConfig::gtx580()}) {
        cfg.thermal.applyCooling("stock");
        power::GpuPowerModel model(cfg);
        nets.push_back(std::make_unique<thermal::ThermalNetwork>(
            model.thermalBlocks(), cfg.thermal));
    }

    for (const auto &net_ptr : nets) {
        const thermal::ThermalNetwork &net = *net_ptr;
        std::size_t n = net.blocks().size();
        std::vector<std::vector<double>> cases;
        cases.push_back(std::vector<double>(n, 0.0));
        cases.push_back(std::vector<double>(n, 17.25));
        std::vector<double> ramp(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            ramp[i] = 3.7 * static_cast<double>(i) + 0.1;
        cases.push_back(ramp);
        for (const std::vector<double> &powers : cases) {
            std::vector<double> fast = net.solveLinear(powers);
            std::vector<double> ref = net.solveLinearReference(powers);
            ASSERT_EQ(fast.size(), ref.size());
            for (std::size_t i = 0; i < fast.size(); ++i)
                EXPECT_EQ(fast[i], ref[i]) << "node " << i;
        }
    }
}

TEST(ThermalSolver, SolveLinearIntoReusesCallerScratch)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    std::vector<double> out;
    net.solveLinearInto({30.0, 0.0, 4.0}, out);
    ASSERT_EQ(out.size(), net.blocks().size() + 1);
    const double *data = out.data();
    std::vector<double> expect = net.solveLinear({12.0, 8.0, 1.0});
    net.solveLinearInto({12.0, 8.0, 1.0}, out);
    // Same buffer, fresh solution.
    EXPECT_EQ(out.data(), data);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], expect[i]) << "node " << i;
}

TEST(ThermalSolver, WarmStartConvergesToTheSameFixedPoint)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    auto power_at = [](const std::vector<double> &temps) {
        return std::vector<double>{
            20.0 + 0.05 * (temps[0] - 300.0), 2.0, 3.0};
    };
    obs::Counter &warm_ctr = obs::Registry::instance().counter(
        "thermal/steady_warm_starts",
        "steady solves started from a previous solution");
    uint64_t warm_before = warm_ctr.value();

    thermal::SteadyResult cold = net.solveSteady(power_at);
    ASSERT_TRUE(cold.converged);
    EXPECT_EQ(warm_ctr.value(), warm_before);

    thermal::SteadyResult warm =
        net.solveSteady(power_at, &cold.temps_k);
    EXPECT_TRUE(warm.converged);
    EXPECT_EQ(warm_ctr.value(), warm_before + 1);
    // Restarted at the fixed point, the iteration is already inside
    // tolerance: it terminates immediately and lands on the same
    // solution (to within the fixed-point tolerance).
    EXPECT_LE(warm.iterations, 2u);
    EXPECT_LT(warm.iterations, cold.iterations);
    for (std::size_t i = 0; i < cold.temps_k.size(); ++i)
        EXPECT_NEAR(warm.temps_k[i], cold.temps_k[i], 2e-4)
            << "block " << i;

    // A wrong-size warm start is ignored, not trusted.
    std::vector<double> bad(cold.temps_k.size() + 3, 330.0);
    thermal::SteadyResult fallback = net.solveSteady(power_at, &bad);
    EXPECT_TRUE(fallback.converged);
    EXPECT_EQ(fallback.iterations, cold.iterations);
    EXPECT_EQ(warm_ctr.value(), warm_before + 1);
}

TEST(ThermalSolver, ExhaustedSteadySolveWarnsAndCounts)
{
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    // Bistable feedback: power flips with the temperature threshold,
    // so the fixed-point iteration oscillates forever without ever
    // approaching the runaway cap — the silent-exhaustion case the
    // counter now surfaces.
    auto power_at = [](const std::vector<double> &temps) {
        return std::vector<double>{
            temps[0] < 330.0 ? 40.0 : 0.0, 0.0, 0.0};
    };
    obs::Counter &ctr = obs::Registry::instance().counter(
        "thermal/steady_nonconverged",
        "steady solves that exhausted the iteration budget");
    uint64_t before = ctr.value();
    thermal::SteadyResult s = net.solveSteady(power_at);
    EXPECT_FALSE(s.converged);
    EXPECT_EQ(s.iterations, 1000u);
    EXPECT_LT(s.maxTemp(), thermal::ThermalNetwork::runaway_cap_k);
    EXPECT_EQ(ctr.value(), before + 1);
}

// ---------------------------------------------------- exact propagator

TEST(ThermalIntegrator, ConfigSelectsTheIntegrator)
{
    ThermalConfig tc = tinyCooling();
    EXPECT_EQ(thermal::ThermalNetwork(tinyBlocks(), tc).integrator(),
              thermal::ThermalNetwork::Integrator::exact);
    tc.integrator = "euler";
    EXPECT_EQ(thermal::ThermalNetwork(tinyBlocks(), tc).integrator(),
              thermal::ThermalNetwork::Integrator::euler);

    GpuConfig cfg = GpuConfig::gt240();
    cfg.thermal.integrator = "rk4";
    EXPECT_THROW(GpuConfig::fromXml(cfg.toXml()), FatalError);
    cfg.thermal.integrator = "euler";
    EXPECT_NO_THROW(GpuConfig::fromXml(cfg.toXml()));
}

TEST(ThermalIntegrator, ExactPropagatorConvergesToEulerAsStepsShrink)
{
    ThermalConfig exact_tc = tinyCooling();
    ThermalConfig euler_tc = tinyCooling();
    euler_tc.integrator = "euler";
    thermal::ThermalNetwork exact_net(tinyBlocks(), exact_tc);
    thermal::ThermalNetwork euler_net(tinyBlocks(), euler_tc);
    std::vector<double> powers{25.0, 3.0, 4.0};

    // March both integrators over the same 0.5 s span at two step
    // sizes. The discrepancy is Euler's O(dt) truncation error: it
    // must be small at the coarse step and shrink with dt.
    auto discrepancy = [&](double dt) {
        thermal::ThermalNetwork::State a = exact_net.ambientState();
        thermal::ThermalNetwork::State b = euler_net.ambientState();
        int steps = static_cast<int>(0.5 / dt);
        for (int i = 0; i < steps; ++i) {
            exact_net.advance(a, powers, dt);
            euler_net.advance(b, powers, dt);
        }
        double err = 0.0;
        for (std::size_t i = 0; i < a.temps_k.size(); ++i)
            err = std::max(err,
                           std::fabs(a.temps_k[i] - b.temps_k[i]));
        return err;
    };

    double coarse = discrepancy(1e-3);
    double fine = discrepancy(1e-4);
    EXPECT_LT(coarse, 0.2); // K, on a ~20 K rise
    EXPECT_LT(fine, coarse);
    EXPECT_LT(fine, 0.02);
}

TEST(ThermalIntegrator, PropagatorCacheIsConsistentAcrossMixedDts)
{
    // Interleaved sample intervals exercise the per-dt cache in one
    // network; a throwaway network per step rebuilds every
    // propagator from scratch. The trajectories must agree bit for
    // bit — a cache hit must be indistinguishable from a rebuild.
    thermal::ThermalNetwork cached(tinyBlocks(), tinyCooling());
    thermal::ThermalNetwork::State s_cached = cached.ambientState();
    thermal::ThermalNetwork::State s_fresh = cached.ambientState();
    std::vector<double> powers{25.0, 3.0, 4.0};
    const double dts[] = {2e-6, 5e-4, 2e-6, 1e-2, 5e-4,
                          2e-6, 1e-2, 2e-6, 5e-4, 2e-6};
    for (double dt : dts) {
        cached.advance(s_cached, powers, dt);
        thermal::ThermalNetwork fresh(tinyBlocks(), tinyCooling());
        fresh.advance(s_fresh, powers, dt);
        ASSERT_EQ(s_cached.temps_k.size(), s_fresh.temps_k.size());
        for (std::size_t i = 0; i < s_cached.temps_k.size(); ++i)
            EXPECT_EQ(s_cached.temps_k[i], s_fresh.temps_k[i])
                << "node " << i << " after dt " << dt;
    }
}

TEST(ThermalIntegrator, ExactLandsOnSteadyStateForLongSpans)
{
    // The steady-snap shortcut is shared by both integrators, and
    // below it the exact propagator still settles to the linear
    // solution on constant power — no drift from the cached P/Q.
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    std::vector<double> powers{25.0, 3.0, 4.0};
    std::vector<double> steady = net.solveLinear(powers);

    // The heatsink pole is ~75 s; 2000 s is ~27 time constants.
    thermal::ThermalNetwork::State state = net.ambientState();
    for (int i = 0; i < 2000; ++i)
        net.advance(state, powers, 1.0);
    for (std::size_t i = 0; i < state.temps_k.size(); ++i)
        EXPECT_NEAR(state.temps_k[i], steady[i], 1e-6) << "node " << i;
}

TEST(ThermalIntegrator, IntegratorChoiceIsInvisibleWhenThermalOff)
{
    // With the subsystem off no integrator ever runs: the tables
    // must be byte-identical between the two settings.
    GpuConfig exact_cfg = GpuConfig::gt240();
    GpuConfig euler_cfg = GpuConfig::gt240();
    euler_cfg.thermal.integrator = "euler";
    sim::ScenarioResult a = runScenario(exact_cfg, "matmul");
    sim::ScenarioResult b = runScenario(euler_cfg, "matmul");
    EXPECT_EQ(a.energy_j, b.energy_j);
    EXPECT_EQ(a.time_s, b.time_s);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(ThermalIntegrator, GovernedClampsAreDeterministicAcrossWorkers)
{
    // The governed acceptance sweep pinned to the exact integrator:
    // 1 worker vs 8 workers must clamp identically, bit for bit.
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.coolings = {"stock", "constrained"};
    spec.workloads = {"matmul"};
    for (GpuConfig &cfg : spec.configs) {
        cfg.thermal.throttle = true;
        cfg.thermal.integrator = "exact";
    }

    sim::EngineOptions one;
    one.jobs = 1;
    sim::EngineOptions eight;
    eight.jobs = 8;
    sim::SweepResult a = sim::SimulationEngine(one).run(spec);
    sim::SweepResult b = sim::SimulationEngine(eight).run(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).energy_j, b.at(i).energy_j);
        EXPECT_EQ(a.at(i).t_max_k, b.at(i).t_max_k);
        EXPECT_EQ(a.at(i).min_freq_scale, b.at(i).min_freq_scale);
        EXPECT_EQ(a.at(i).throttled, b.at(i).throttled);
    }
    EXPECT_TRUE(a.at(3).throttled);
}

// -------------------------------------------------------- thread safety

TEST(ThermalStress, SharedNetworkServesConcurrentAdvancesAndSolves)
{
    // One const network, many threads with distinct States, mixed
    // dts racing to populate the propagator cache plus concurrent
    // steady solves: the TSan job runs this to prove the cache's
    // locking. Each thread's trajectory must also match a
    // single-threaded replay bit for bit.
    thermal::ThermalNetwork net(tinyBlocks(), tinyCooling());
    const double dts[] = {2e-6, 5e-4, 1e-2, 7e-5, 3e-3};
    std::vector<double> powers{25.0, 3.0, 4.0};
    auto power_at = [](const std::vector<double> &temps) {
        return std::vector<double>{
            20.0 + 0.05 * (temps[0] - 300.0), 2.0, 3.0};
    };

    auto march = [&](unsigned seed,
                     thermal::ThermalNetwork::State &state) {
        for (unsigned i = 0; i < 200; ++i) {
            net.advance(state, powers, dts[(seed + i) % 5]);
            if (i % 40 == 0) {
                thermal::SteadyResult s =
                    net.solveSteady(power_at, &state.temps_k);
                EXPECT_TRUE(s.converged);
            }
        }
    };

    constexpr unsigned n_threads = 8;
    std::vector<thermal::ThermalNetwork::State> states(
        n_threads, net.ambientState());
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < n_threads; ++t)
        threads.emplace_back([&, t] { march(t, states[t]); });
    for (std::thread &th : threads)
        th.join();

    for (unsigned t = 0; t < n_threads; ++t) {
        thermal::ThermalNetwork::State replay = net.ambientState();
        march(t, replay);
        ASSERT_EQ(states[t].temps_k.size(), replay.temps_k.size());
        for (std::size_t i = 0; i < replay.temps_k.size(); ++i)
            EXPECT_EQ(states[t].temps_k[i], replay.temps_k[i])
                << "thread " << t << " node " << i;
    }
}
