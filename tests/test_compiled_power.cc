/**
 * @file
 * Compiled-vs-tree equivalence: the flat CompiledPowerModel is the
 * canonical evaluator, and the hierarchical PowerReport is assembled
 * from its per-component outputs — so flat totals and per-thermal-
 * block splits must be *bit-identical* to what walking the report
 * tree produces. This suite drives randomized activity vectors
 * across both Table II chips, process nodes, DVFS operating points,
 * and per-block temperature vectors (the cooling axis collapses onto
 * block temperatures as far as the power model is concerned), and
 * asserts exact equality everywhere.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.hh"
#include "perf/activity.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"
#include "power/report.hh"
#include "power_tree_reference.hh"

using namespace gpusimpow;
using namespace gpusimpow::power;

namespace {

perf::ChipActivity
randomActivity(const GpuConfig &cfg, SplitMix64 &rng)
{
    perf::ChipActivity act;
    act.cores.resize(cfg.numCores());
    for (perf::CoreActivity &c : act.cores) {
#define X(name) c.name = rng.nextBounded(1u << 22);
        GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    }
#define X(name) act.mem.name = rng.nextBounded(1u << 24);
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    act.cluster_busy_cycles.resize(cfg.clusters);
    for (uint64_t &busy : act.cluster_busy_cycles)
        busy = rng.nextBounded(1u << 22);
    act.shader_cycles = 1u << 21;
    act.gpu_busy_cycles = rng.nextBounded(act.shader_cycles + 1);
    act.blocks_dispatched = rng.nextBounded(4096);
    act.elapsed_s = rng.uniform(1e-5, 5e-3);
    return act;
}

std::vector<double>
randomTemps(std::size_t blocks, SplitMix64 &rng)
{
    std::vector<double> temps(blocks);
    for (double &t : temps)
        t = rng.uniform(310.0, 400.0);
    return temps;
}

/** Full bit-identity check of one (model, activity, temps) case. */
void
expectEquivalent(const GpuConfig &cfg, const GpuPowerModel &model,
                 const perf::ChipActivity &act,
                 const std::vector<double> &temps,
                 const std::string &tag)
{
    SCOPED_TRACE(tag);
    const CompiledPowerModel &cpm = model.compiled();

    CompiledPowerModel::Eval ev;
    PowerReport rep;
    if (temps.empty()) {
        cpm.evaluate(act, ev);
        rep = model.evaluate(act);
    } else {
        cpm.evaluateAt(act, temps, ev);
        rep = model.evaluateAt(act, temps);
    }

    // Flat totals vs recursive tree totals: bit-identical.
    EXPECT_EQ(ev.dynamic_w, rep.dynamicPower());
    EXPECT_EQ(ev.static_w, rep.staticPower());
    EXPECT_EQ(ev.dram_w, rep.dram_w);
    EXPECT_EQ(ev.short_circuit_w, rep.short_circuit_w);
    EXPECT_EQ(ev.elapsed_s, rep.elapsed_s);

    // Flat block split vs the legacy tree walk: bit-identical.
    std::vector<BlockPower> tree_bp =
        testref::treeBlockPowers(cfg, model, rep, act, temps);
    ASSERT_EQ(ev.blocks.size(), tree_bp.size());
    for (std::size_t b = 0; b < tree_bp.size(); ++b) {
        SCOPED_TRACE("block " + std::to_string(b));
        EXPECT_EQ(ev.blocks[b].dynamic_w, tree_bp[b].dynamic_w);
        EXPECT_EQ(ev.blocks[b].sub_leak_w, tree_bp[b].sub_leak_w);
        EXPECT_EQ(ev.blocks[b].fixed_w, tree_bp[b].fixed_w);
    }

    // Per-component node values vs the flat detail arrays.
    for (unsigned i = 0; i < cfg.numCores(); ++i) {
        const PowerNode *core =
            rep.gpu.find("Cores/Core" + std::to_string(i));
        ASSERT_NE(core, nullptr);
        const double *cd = ev.core_dyn.data() +
                           static_cast<std::size_t>(i) *
                               kCoreComponents;
        const double *cs = ev.core_sub.data() +
                           static_cast<std::size_t>(i) *
                               kCoreComponents;
        EXPECT_EQ(core->find("Base Power")->runtime_dynamic_w,
                  cd[kCoreBase]);
        EXPECT_EQ(core->find("WCU")->runtime_dynamic_w, cd[kCoreWcu]);
        EXPECT_EQ(core->find("WCU")->sub_leakage_w, cs[kCoreWcu]);
        EXPECT_EQ(core->find("Register File")->runtime_dynamic_w,
                  cd[kCoreRf]);
        EXPECT_EQ(core->find("Execution Units")->runtime_dynamic_w,
                  cd[kCoreEu]);
        EXPECT_EQ(core->find("LDSTU")->runtime_dynamic_w,
                  cd[kCoreLdst]);
        EXPECT_EQ(core->find("LDSTU")->sub_leakage_w, cs[kCoreLdst]);
        EXPECT_EQ(core->find("Undiff. Core")->sub_leakage_w,
                  cs[kCoreUndiff]);
    }
    EXPECT_EQ(rep.gpu.find("Cores/Cluster Base")->runtime_dynamic_w,
              ev.cluster_base_w);
    EXPECT_EQ(rep.gpu.find("Cores/Global Scheduler")->runtime_dynamic_w,
              ev.sched_w);
    EXPECT_EQ(rep.gpu.find("NoC")->runtime_dynamic_w,
              ev.uncore_dyn[kUncoreNoc]);
    EXPECT_EQ(rep.gpu.find("Memory Controller")->runtime_dynamic_w,
              ev.uncore_dyn[kUncoreMc]);
    EXPECT_EQ(rep.gpu.find("PCIe Controller")->runtime_dynamic_w,
              ev.uncore_dyn[kUncorePcie]);

    // The block split partitions the report's total power. The
    // partition sums in a different association order than the tree,
    // so this one is a (tight) tolerance check, not bit-identity.
    double total = 0.0;
    for (const BlockPower &b : ev.blocks)
        total += b.total();
    double expected = rep.totalPower() + rep.dram_w;
    EXPECT_NEAR(total, expected, 1e-12 * expected);

    // The public nominal-temperature split matches the flat split.
    if (temps.empty()) {
        std::vector<BlockPower> split = model.blockPowers(act);
        ASSERT_EQ(split.size(), ev.blocks.size());
        for (std::size_t b = 0; b < split.size(); ++b) {
            EXPECT_EQ(split[b].dynamic_w, ev.blocks[b].dynamic_w);
            EXPECT_EQ(split[b].sub_leak_w, ev.blocks[b].sub_leak_w);
            EXPECT_EQ(split[b].fixed_w, ev.blocks[b].fixed_w);
        }
    }
}

GpuConfig
configFor(const GpuConfig &base, unsigned node_nm,
          const OperatingPoint &op)
{
    GpuConfig cfg = base;
    if (node_nm != cfg.tech.node_nm) {
        cfg.tech.node_nm = node_nm;
        cfg.tech.vdd = -1.0; // node-nominal supply
    }
    op.applyTo(cfg);
    return cfg;
}

} // namespace

TEST(CompiledPower, RandomizedEquivalenceAcrossChipsNodesOpsTemps)
{
    const std::vector<GpuConfig> chips = {GpuConfig::gt240(),
                                          GpuConfig::gtx580()};
    const std::vector<unsigned> nodes = {40u, 28u};
    const std::vector<OperatingPoint> ops = {
        {1.0, 1.0}, {0.9, 0.8}, {1.05, 1.0}};
    SplitMix64 rng(0xC0DE5EEDULL);

    for (const GpuConfig &base : chips) {
        for (unsigned node : nodes) {
            for (const OperatingPoint &op : ops) {
                GpuConfig cfg = configFor(base, node, op);
                GpuPowerModel model(cfg);
                std::string tag =
                    base.name + "/" + std::to_string(node) + "nm/" +
                    op.label();
                std::size_t blocks =
                    model.thermalBlocks().size();
                for (int rep = 0; rep < 3; ++rep) {
                    perf::ChipActivity act =
                        randomActivity(cfg, rng);
                    expectEquivalent(cfg, model, act, {},
                                     tag + "/nominal");
                    expectEquivalent(cfg, model, act,
                                     randomTemps(blocks, rng),
                                     tag + "/temps");
                }
            }
        }
    }
}

TEST(CompiledPower, IdleAndDegenerateIntervals)
{
    GpuConfig cfg = GpuConfig::gtx580();
    GpuPowerModel model(cfg);

    perf::ChipActivity idle;
    idle.cores.resize(cfg.numCores());
    idle.cluster_busy_cycles.assign(cfg.clusters, 0);
    idle.shader_cycles = 1;
    idle.elapsed_s = 1.0;
    expectEquivalent(cfg, model, idle, {}, "idle");

    // Zero elapsed time and zero cycles take the guard paths.
    perf::ChipActivity degenerate = idle;
    degenerate.elapsed_s = 0.0;
    degenerate.shader_cycles = 0;
    expectEquivalent(cfg, model, degenerate, {}, "degenerate");
}

TEST(CompiledPower, EvalWorkspaceReuseIsIdempotent)
{
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel model(cfg);
    SplitMix64 rng(42);
    perf::ChipActivity a = randomActivity(cfg, rng);
    perf::ChipActivity b = randomActivity(cfg, rng);

    CompiledPowerModel::Eval reused;
    model.compiled().evaluate(a, reused);
    model.compiled().evaluate(b, reused); // overwrite with b
    model.compiled().evaluate(a, reused); // and back to a

    CompiledPowerModel::Eval fresh;
    model.compiled().evaluate(a, fresh);
    EXPECT_EQ(reused.dynamic_w, fresh.dynamic_w);
    EXPECT_EQ(reused.static_w, fresh.static_w);
    EXPECT_EQ(reused.dram_w, fresh.dram_w);
    ASSERT_EQ(reused.blocks.size(), fresh.blocks.size());
    for (std::size_t i = 0; i < fresh.blocks.size(); ++i) {
        EXPECT_EQ(reused.blocks[i].dynamic_w, fresh.blocks[i].dynamic_w);
        EXPECT_EQ(reused.blocks[i].sub_leak_w,
                  fresh.blocks[i].sub_leak_w);
        EXPECT_EQ(reused.blocks[i].fixed_w, fresh.blocks[i].fixed_w);
    }
}

TEST(CompiledPower, NominalTemperatureVectorMatchesPlainEvaluate)
{
    GpuConfig cfg = GpuConfig::gtx580();
    GpuPowerModel model(cfg);
    SplitMix64 rng(7);
    perf::ChipActivity act = randomActivity(cfg, rng);

    std::vector<double> nominal(model.thermalBlocks().size(),
                                cfg.tech.temperature);
    CompiledPowerModel::Eval plain, at_nominal;
    model.compiled().evaluate(act, plain);
    model.compiled().evaluateAt(act, nominal, at_nominal);
    EXPECT_EQ(plain.dynamic_w, at_nominal.dynamic_w);
    EXPECT_EQ(plain.static_w, at_nominal.static_w);
    for (std::size_t i = 0; i < plain.blocks.size(); ++i) {
        EXPECT_EQ(plain.blocks[i].sub_leak_w,
                  at_nominal.blocks[i].sub_leak_w);
    }
}

TEST(CompiledPower, CoefficientRowsMatchCounterLayout)
{
    // The layout contract: coefficient rows are addressed by the
    // X-macro counter indices. A single-counter activity must charge
    // exactly counter * coefficient / elapsed.
    GpuConfig cfg = GpuConfig::gt240();
    GpuPowerModel model(cfg);
    const CoreDynCoefficients &c = model.compiled().coreCoefficients();

    perf::ChipActivity act;
    act.cores.resize(cfg.numCores());
    act.cluster_busy_cycles.assign(cfg.clusters, 0);
    act.shader_cycles = 1000;
    act.elapsed_s = 1e-3;
    act.cores[0].int_lane_ops = 1000000;

    CompiledPowerModel::Eval ev;
    model.compiled().evaluate(act, ev);
    double expected =
        1000000.0 *
        c.eu[perf::CoreCounterIndex::int_lane_ops] / act.elapsed_s;
    EXPECT_EQ(ev.core_dyn[kCoreEu], expected);
    // 40 pJ per INT lane-op at the identity operating point.
    EXPECT_NEAR(c.eu[perf::CoreCounterIndex::int_lane_ops], 40e-12,
                1e-18);
}
