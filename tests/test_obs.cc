/**
 * @file
 * Tests of the observability layer: span-tracer ring semantics
 * (wraparound, drop accounting, concurrent emission), metrics
 * registry arithmetic and snapshot determinism, Chrome-trace JSON
 * well-formedness, the engine's byte-identity contract with tracing
 * on or off at any worker count, sweep telemetry against the
 * engine's asserted counts, and the Logger level's thread-safety
 * (this suite runs in the TSan CI job).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/sweep.hh"

using namespace gpusimpow;
using sim::EngineOptions;
using sim::ScenarioResult;
using sim::SimulationEngine;
using sim::SweepResult;
using sim::SweepSpec;
using sim::SweepTelemetry;

namespace {

/**
 * Minimal JSON validity checker (objects, arrays, strings, numbers,
 * true/false/null) — enough to prove the exporters emit well-formed
 * documents without pulling in a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _s(text) {}

    bool valid()
    {
        skipWs();
        return value() && (skipWs(), _pos == _s.size());
    }

  private:
    bool value()
    {
        if (_pos >= _s.size())
            return false;
        switch (_s[_pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++_pos; // '{'
        skipWs();
        if (peek() == '}') { ++_pos; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++_pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++_pos; continue; }
            if (peek() == '}') { ++_pos; return true; }
            return false;
        }
    }

    bool array()
    {
        ++_pos; // '['
        skipWs();
        if (peek() == ']') { ++_pos; return true; }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++_pos; continue; }
            if (peek() == ']') { ++_pos; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++_pos;
        while (_pos < _s.size() && _s[_pos] != '"') {
            if (_s[_pos] == '\\') {
                if (_pos + 1 >= _s.size())
                    return false;
                ++_pos;
            }
            ++_pos;
        }
        if (_pos >= _s.size())
            return false;
        ++_pos; // closing quote
        return true;
    }

    bool number()
    {
        std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' || _s[_pos] == 'E' ||
                _s[_pos] == '+' || _s[_pos] == '-'))
            ++_pos;
        return _pos > start;
    }

    bool literal(const char *word)
    {
        std::string w(word);
        if (_s.compare(_pos, w.size(), w) != 0)
            return false;
        _pos += w.size();
        return true;
    }

    char peek() const { return _pos < _s.size() ? _s[_pos] : '\0'; }

    void skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\n' ||
                _s[_pos] == '\t' || _s[_pos] == '\r'))
            ++_pos;
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

/** Quiesce the tracer and start a fresh enabled window. */
void
resetTracer(std::size_t capacity = 1u << 12)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(false);
    tracer.clear();
    tracer.setCapacity(capacity);
    tracer.setEnabled(true);
}

/** Small sweep with a power-only axis so replay groups form: 1
 *  config x 2 nodes x 2 workloads = 4 scenarios, 2 timing-unique. */
SweepSpec
memoSweep()
{
    SweepSpec spec;
    GpuConfig small = GpuConfig::gt240();
    small.clusters = 2;
    spec.configs = {small};
    spec.tech_nodes = {40u, 28u};
    spec.workloads = {"vectoradd", "matmul"};
    return spec;
}

SweepResult
runWithJobs(const SweepSpec &spec, unsigned jobs)
{
    EngineOptions opt;
    opt.jobs = jobs;
    return SimulationEngine(opt).run(spec);
}

/** Bitwise comparison of every measured column of two tables. */
void
expectBitIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.formatTable(), b.formatTable());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const ScenarioResult &ra = a.at(i);
        const ScenarioResult &rb = b.at(i);
        EXPECT_EQ(ra.time_s, rb.time_s) << ra.scenario.label;
        EXPECT_EQ(ra.energy_j, rb.energy_j) << ra.scenario.label;
        EXPECT_EQ(ra.avg_power_w, rb.avg_power_w) << ra.scenario.label;
        EXPECT_EQ(ra.t_max_k, rb.t_max_k) << ra.scenario.label;
        EXPECT_EQ(ra.verified, rb.verified) << ra.scenario.label;
    }
}

} // namespace

TEST(Tracer, DisabledSpansRecordNothing)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(false);
    tracer.clear();
    {
        GSP_TRACE_SPAN("test/disabled");
        GSP_TRACE_SPAN("test/disabled_too");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(Tracer, RecordsSpansAndFoldsWallTimeIntoRegistry)
{
    resetTracer();
    obs::Tracer &tracer = obs::Tracer::instance();
    uint64_t span_ns_before =
        obs::Registry::instance().snapshot().counter(
            "span/test/unit_ns");
    {
        GSP_TRACE_SPAN("test/unit");
    }
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.eventCount(), 1u);
    // Span end folded the duration into span/<name>_ns.
    EXPECT_GE(obs::Registry::instance().snapshot().counter(
                  "span/test/unit_ns"),
              span_ns_before);
    tracer.clear();
}

TEST(Tracer, RingWrapsKeepingNewestAndCountsDrops)
{
    resetTracer(4);
    obs::Tracer &tracer = obs::Tracer::instance();
    for (int i = 0; i < 10; ++i) {
        GSP_TRACE_SPAN("test/wrap");
    }
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedEvents(), 6u);
    std::string json = tracer.exportChromeTrace();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    tracer.clear();
}

TEST(Tracer, ClearResetsThreadBuffers)
{
    resetTracer();
    obs::Tracer &tracer = obs::Tracer::instance();
    {
        GSP_TRACE_SPAN("test/before_clear");
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    // The thread re-registers transparently after a clear.
    {
        GSP_TRACE_SPAN("test/after_clear");
    }
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.clear();
}

TEST(Tracer, ConcurrentEmissionFromEightThreads)
{
    constexpr unsigned n_threads = 8;
    constexpr int spans_per_thread = 500;
    resetTracer(1u << 12);
    obs::Tracer &tracer = obs::Tracer::instance();

    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) {
        pool.emplace_back([t]() {
            obs::Tracer::instance().labelThread(
                "emitter-" + std::to_string(t));
            for (int i = 0; i < spans_per_thread; ++i) {
                GSP_TRACE_SPAN("test/concurrent");
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    tracer.setEnabled(false);
    EXPECT_EQ(tracer.eventCount(), n_threads * spans_per_thread);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
    std::string json = tracer.exportChromeTrace();
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("emitter-0"), std::string::npos);
    EXPECT_NE(json.find("emitter-7"), std::string::npos);
    tracer.clear();
}

TEST(Tracer, ChromeTraceShapeIsPerfettoLoadable)
{
    resetTracer();
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.labelThread("main-test");
    {
        GSP_TRACE_SPAN("test/outer");
        GSP_TRACE_SPAN("test/inner");
    }
    tracer.setEnabled(false);
    std::string json = tracer.exportChromeTrace();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test/outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test/inner\""), std::string::npos);
    EXPECT_NE(json.find("main-test"), std::string::npos);
    tracer.clear();
}

TEST(Metrics, CounterGaugeHistogramBasics)
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &c = reg.counter("test/counter", "test counter");
    uint64_t base = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), base + 42);
    // Same name returns the same instrument.
    EXPECT_EQ(&reg.counter("test/counter"), &c);

    obs::Gauge &g = reg.gauge("test/gauge", "test gauge");
    g.set(-7);
    EXPECT_EQ(g.value(), -7);

    obs::Histogram &h = reg.histogram("test/hist", "test histogram");
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1004u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);  // zeros
    EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
    EXPECT_EQ(h.bucket(2), 1u);  // [2, 4)
    EXPECT_EQ(h.bucket(10), 1u); // [512, 1024)
}

TEST(Metrics, SnapshotIsDeterministicAndSorted)
{
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("test/det_b").add(2);
    reg.counter("test/det_a").add(1);

    obs::MetricsSnapshot s1 = reg.snapshot();
    obs::MetricsSnapshot s2 = reg.snapshot();
    ASSERT_EQ(s1.counters.size(), s2.counters.size());
    for (std::size_t i = 0; i < s1.counters.size(); ++i) {
        EXPECT_EQ(s1.counters[i].first, s2.counters[i].first);
        EXPECT_EQ(s1.counters[i].second, s2.counters[i].second);
    }
    // Name-sorted capture order.
    for (std::size_t i = 1; i < s1.counters.size(); ++i)
        EXPECT_LT(s1.counters[i - 1].first, s1.counters[i].first);
    EXPECT_EQ(s1.toJson(), s2.toJson());
    EXPECT_TRUE(JsonChecker(s1.toJson()).valid()) << s1.toJson();
}

TEST(Metrics, DeltaFromSubtractsCountersAndHistograms)
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &c = reg.counter("test/delta_counter");
    obs::Histogram &h = reg.histogram("test/delta_hist");

    obs::MetricsSnapshot before = reg.snapshot();
    c.add(5);
    h.record(16);
    h.record(17);
    obs::MetricsSnapshot delta = reg.snapshot().deltaFrom(before);

    EXPECT_EQ(delta.counter("test/delta_counter"), 5u);
    EXPECT_EQ(delta.counter("test/absent"), 0u);
    bool found = false;
    for (const auto &hv : delta.histograms) {
        if (hv.name != "test/delta_hist")
            continue;
        found = true;
        EXPECT_EQ(hv.count, 2u);
        EXPECT_EQ(hv.sum, 33u);
    }
    EXPECT_TRUE(found);
}

TEST(Engine, ByteIdenticalWithTracingOnAndOff)
{
    SweepSpec spec = memoSweep();
    obs::Tracer &tracer = obs::Tracer::instance();

    for (unsigned jobs : {1u, 8u}) {
        tracer.setEnabled(false);
        tracer.clear();
        SweepResult off = runWithJobs(spec, jobs);
        resetTracer();
        SweepResult on = runWithJobs(spec, jobs);
        tracer.setEnabled(false);
        tracer.clear();
        // Spans observe, they never steer: results are bitwise equal
        // with tracing on or off at any worker count.
        expectBitIdentical(off, on);
    }
}

TEST(Engine, TelemetryMatchesEngineCounts)
{
    SweepSpec spec = memoSweep(); // 4 scenarios, 2 timing-unique
    SweepResult result = runWithJobs(spec, 2);
    const SweepTelemetry &tel = result.telemetry();

    EXPECT_EQ(tel.scenarios, result.size());
    EXPECT_EQ(tel.replayed, result.replayedScenarios());
    EXPECT_EQ(tel.scenarios, 4u);
    EXPECT_EQ(tel.captured, 2u);
    EXPECT_EQ(tel.replayed, 2u);
    EXPECT_EQ(tel.governed, 0u);
    EXPECT_EQ(tel.workers, 2u);
    EXPECT_GT(tel.wall_s, 0.0);

    // The registry delta agrees with the engine's asserted counts
    // (this test runs its engine alone, so the window is clean).
    EXPECT_EQ(tel.metrics.counter("engine/scenarios"), tel.scenarios);
    EXPECT_EQ(tel.metrics.counter("engine/scenarios_captured"),
              tel.captured);
    EXPECT_EQ(tel.metrics.counter("engine/scenarios_replayed"),
              tel.replayed);
    EXPECT_EQ(tel.metrics.counter("engine/batch_groups"), 2u);

    std::string json = tel.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"schema\":\"gpusimpow-metrics-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sweep\":{\"scenarios\":4,\"captured\":2,"
                        "\"replayed\":2,\"governed\":0"),
              std::string::npos);
}

TEST(Engine, TelemetryDefaultsForHandBuiltTables)
{
    SweepResult table(3);
    EXPECT_EQ(table.telemetry().scenarios, 0u);
    EXPECT_EQ(table.telemetry().replayed, 0u);
    EXPECT_TRUE(JsonChecker(table.telemetry().toJson()).valid());
}

TEST(Logger, LevelIsSafeUnderConcurrentSetAndEmit)
{
    Logger &logger = Logger::instance();
    LogLevel entry = logger.level();

    // Toggle between Quiet and Warn while other threads emit Debug
    // messages: Debug is filtered at both levels, so the test is
    // silent — but the old non-atomic level made this a data race
    // (caught by the TSan job this suite runs in).
    std::atomic<bool> stop{false};
    std::thread toggler([&]() {
        for (int i = 0; i < 2000; ++i)
            logger.setLevel(i % 2 ? LogLevel::Warn : LogLevel::Quiet);
        stop.store(true);
    });
    std::vector<std::thread> emitters;
    for (int t = 0; t < 3; ++t) {
        emitters.emplace_back([&]() {
            while (!stop.load())
                logger.emit(LogLevel::Debug, "test", "concurrent");
        });
    }
    toggler.join();
    for (std::thread &t : emitters)
        t.join();

    logger.setLevel(entry);
    SUCCEED();
}
