/**
 * @file
 * Unit tests for the mini ISA representation and the kernel builder
 * (labels, branch patching, guard plumbing, disassembly).
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "perf/isa.hh"
#include "perf/kernel.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

TEST(Operand, Constructors)
{
    EXPECT_EQ(Operand::reg(5).kind, OperandKind::Reg);
    EXPECT_EQ(Operand::reg(5).value, 5u);
    EXPECT_EQ(Operand::imm(7).kind, OperandKind::Imm);
    EXPECT_EQ(Operand::none().kind, OperandKind::None);
    EXPECT_EQ(Operand::special(SpecialReg::TidX).kind,
              OperandKind::Special);
}

TEST(Operand, FloatImmediateRoundTrips)
{
    Operand o = Operand::immf(3.25f);
    float back;
    static_assert(sizeof(back) == sizeof(o.value));
    std::memcpy(&back, &o.value, 4);
    EXPECT_EQ(back, 3.25f);
}

TEST(Instruction, UnitClassMapping)
{
    Instruction i;
    i.op = Op::IADD;
    EXPECT_EQ(i.unitClass(), UnitClass::Int);
    i.op = Op::FFMA;
    EXPECT_EQ(i.unitClass(), UnitClass::Fp);
    i.op = Op::RSQRT;
    EXPECT_EQ(i.unitClass(), UnitClass::Sfu);
    i.op = Op::LDG;
    EXPECT_EQ(i.unitClass(), UnitClass::Mem);
    i.op = Op::BAR;
    EXPECT_EQ(i.unitClass(), UnitClass::Ctrl);
    i.op = Op::SETP;
    EXPECT_EQ(i.unitClass(), UnitClass::Int);
}

TEST(Instruction, RegSourceCount)
{
    Instruction i;
    i.op = Op::FFMA;
    i.src_a = Operand::reg(1);
    i.src_b = Operand::imm(2);
    i.src_c = Operand::reg(3);
    EXPECT_EQ(i.regSources(), 2u);
    i.dst = Operand::reg(0);
    EXPECT_TRUE(i.writesReg());
}

TEST(KernelBuilder, EmitsAndFinishes)
{
    KernelBuilder b("k", 8);
    b.iadd(0, Operand::imm(1), Operand::imm(2));
    KernelProgram p = b.finish();
    ASSERT_EQ(p.code.size(), 2u);   // + implicit EXIT
    EXPECT_EQ(p.code[0].op, Op::IADD);
    EXPECT_EQ(p.code[1].op, Op::EXIT);
    EXPECT_EQ(p.regs_per_thread, 8u);
}

TEST(KernelBuilder, NoDuplicateExit)
{
    KernelBuilder b("k", 8);
    b.exit();
    KernelProgram p = b.finish();
    EXPECT_EQ(p.code.size(), 1u);
}

TEST(KernelBuilder, BranchPatching)
{
    KernelBuilder b("k", 8);
    auto target = b.newLabel();
    auto reconv = b.newLabel();
    b.setp(0, Cmp::EQ, CmpType::I32, Operand::reg(0),
           Operand::imm(0));
    b.braIf(0, false, target, reconv);
    b.iadd(1, Operand::imm(1), Operand::imm(1));
    b.bind(target);
    b.bind(reconv);
    b.exit();
    KernelProgram p = b.finish();
    EXPECT_EQ(p.code[1].op, Op::BRA);
    EXPECT_EQ(p.code[1].target, 3u);
    EXPECT_EQ(p.code[1].reconv, 3u);
}

TEST(KernelBuilder, BackwardBranch)
{
    KernelBuilder b("k", 8);
    auto top = b.newBoundLabel();
    b.iadd(0, Operand::reg(0), Operand::imm(1));
    b.jump(top);
    KernelProgram p = b.finish();
    EXPECT_EQ(p.code[1].target, 0u);
    EXPECT_EQ(p.code[1].guard, -1);   // unconditional
}

TEST(KernelBuilder, GuardAppliesToNextInstructionOnly)
{
    KernelBuilder b("k", 8);
    b.pred(2, true).iadd(0, Operand::imm(1), Operand::imm(1));
    b.iadd(1, Operand::imm(1), Operand::imm(1));
    KernelProgram p = b.finish();
    EXPECT_EQ(p.code[0].guard, 2);
    EXPECT_TRUE(p.code[0].guard_negated);
    EXPECT_EQ(p.code[1].guard, -1);
}

TEST(KernelBuilder, MemoryOffsets)
{
    KernelBuilder b("k", 8);
    b.ldg(0, Operand::reg(1), -8);
    b.sts(Operand::reg(2), Operand::reg(3), 16);
    KernelProgram p = b.finish();
    EXPECT_EQ(p.code[0].mem_offset, -8);
    EXPECT_EQ(p.code[1].mem_offset, 16);
}

TEST(KernelBuilder, DisassemblyContainsMnemonics)
{
    KernelBuilder b("k", 8);
    b.ffma(0, Operand::reg(1), Operand::reg(2), Operand::reg(3));
    std::string d = b.finish().disassemble();
    EXPECT_NE(d.find("ffma"), std::string::npos);
    EXPECT_NE(d.find("exit"), std::string::npos);
}

TEST(KernelBuilder, RegisterBudgetEnforced)
{
    EXPECT_THROW(
        { KernelBuilder b("k", 0); },
        FatalError);
}

TEST(KernelBuilder, OpNameCoversEveryOpcode)
{
    // Spot-check the mnemonic table; "?" means a missing entry.
    for (uint8_t o = 0; o <= static_cast<uint8_t>(Op::EXIT); ++o)
        EXPECT_STRNE(opName(static_cast<Op>(o)), "?");
}
