/**
 * @file
 * Unit and property tests for the circuit layer (CACTI-like arrays,
 * CAMs, DFF storage, crossbars, clock network, random logic).
 */

#include <gtest/gtest.h>

#include "circuit/array.hh"
#include "circuit/interconnect.hh"
#include "circuit/logic.hh"
#include "tech/tech.hh"

using namespace gpusimpow;
using namespace gpusimpow::circuit;

namespace {

tech::TechNode
node40()
{
    return tech::TechNode::make(40, 1.05, 350.0);
}

} // namespace

TEST(SramModel, EnergyAndAreaPositive)
{
    SramParams p;
    p.entries = 256;
    p.bits_per_entry = 128;
    SramArray a(p, node40());
    EXPECT_GT(a.readEnergy(), 0.0);
    EXPECT_GT(a.writeEnergy(), 0.0);
    EXPECT_GT(a.area(), 0.0);
    EXPECT_GT(a.leakage(), 0.0);
}

TEST(SramModel, WriteCostsMoreThanRead)
{
    // Writes swing bitlines full rail; reads use a reduced swing.
    SramParams p;
    p.entries = 512;
    p.bits_per_entry = 64;
    SramArray a(p, node40());
    EXPECT_GT(a.writeEnergy(), a.readEnergy());
}

TEST(SramModel, EnergyPlausibleAtFortyNm)
{
    // A 16 KB array reading a 128-bit row should be single-digit
    // picojoules at 40 nm (CACTI ballpark).
    SramParams p;
    p.entries = 1024;
    p.bits_per_entry = 128;
    SramArray a(p, node40());
    EXPECT_GT(a.readEnergy(), 0.1e-12);
    EXPECT_LT(a.readEnergy(), 50e-12);
}

TEST(SramModel, ExtraPortsGrowArea)
{
    SramParams p1;
    p1.entries = 256;
    p1.bits_per_entry = 64;
    SramParams p2 = p1;
    p2.read_ports = 3;
    p2.write_ports = 1;
    EXPECT_GT(SramArray(p2, node40()).area(),
              1.8 * SramArray(p1, node40()).area());
}

TEST(SramModel, LstpDeviceLeaksLess)
{
    SramParams hp;
    hp.entries = 1024;
    hp.bits_per_entry = 128;
    SramParams lstp = hp;
    lstp.device = tech::DeviceType::LSTP;
    EXPECT_LT(SramArray(lstp, node40()).leakage(),
              0.1 * SramArray(hp, node40()).leakage());
}

/** Property sweep: monotonicity in array size. */
class SramSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(SramSweep, BiggerArraysCostMore)
{
    auto [entries, bits] = GetParam();
    tech::TechNode t = node40();
    SramParams small;
    small.entries = entries;
    small.bits_per_entry = bits;
    SramParams taller = small;
    taller.entries = entries * 2;
    SramParams wider = small;
    wider.bits_per_entry = bits * 2;

    SramArray s(small, t);
    SramArray tall(taller, t);
    SramArray wide(wider, t);
    EXPECT_GT(tall.area(), s.area());
    EXPECT_GT(wide.area(), s.area());
    EXPECT_GT(tall.leakage(), s.leakage());
    EXPECT_GT(wide.leakage(), s.leakage());
    EXPECT_GE(tall.readEnergy(), s.readEnergy());
    EXPECT_GT(wide.readEnergy(), s.readEnergy());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SramSweep,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                       ::testing::Values(32u, 128u, 512u)));

TEST(CamModel, SearchCostsMoreThanEquivalentRead)
{
    tech::TechNode t = node40();
    CamParams cp;
    cp.entries = 64;
    cp.tag_bits = 8;
    cp.data_bits = 64;
    CamArray cam(cp, t);
    SramParams sp;
    sp.entries = 64;
    sp.bits_per_entry = 64;
    SramArray ram(sp, t);
    // A search touches every entry; a RAM read touches one row.
    EXPECT_GT(cam.searchEnergy(), ram.readEnergy());
}

TEST(CamModel, MoreEntriesCostMore)
{
    tech::TechNode t = node40();
    CamParams a;
    a.entries = 32;
    a.tag_bits = 8;
    CamParams b = a;
    b.entries = 128;
    EXPECT_GT(CamArray(b, t).searchEnergy(),
              CamArray(a, t).searchEnergy());
    EXPECT_GT(CamArray(b, t).area(), CamArray(a, t).area());
}

TEST(DffModel, LinearInBits)
{
    tech::TechNode t = node40();
    DffStorage a(1000, t);
    DffStorage b(2000, t);
    EXPECT_NEAR(b.writeEnergy() / a.writeEnergy(), 2.0, 1e-9);
    EXPECT_NEAR(b.leakage() / a.leakage(), 2.0, 1e-9);
    EXPECT_NEAR(b.clockCap() / a.clockCap(), 2.0, 1e-9);
}

TEST(CrossbarModel, GrowsWithPortsAndWidth)
{
    tech::TechNode t = node40();
    Crossbar small(4, 4, 32, t);
    Crossbar wide(4, 4, 128, t);
    Crossbar many(16, 16, 32, t);
    EXPECT_GT(wide.transferEnergy(), small.transferEnergy());
    EXPECT_GT(many.area(), small.area());
    EXPECT_GT(many.transferEnergy(), small.transferEnergy());
}

TEST(ClockModel, PowerLinearInFrequency)
{
    tech::TechNode t = node40();
    ClockNetwork clk(1e-6, 1e-12, t);
    EXPECT_NEAR(clk.power(1e9) / clk.power(5e8), 2.0, 1e-9);
    EXPECT_GT(clk.totalCap(), 1e-12);   // at least the load itself
}

TEST(PriorityEncoderModel, GrowsWithInputs)
{
    tech::TechNode t = node40();
    PriorityEncoder small(8, t);
    PriorityEncoder big(64, t);
    EXPECT_GT(big.arbitrationEnergy(), small.arbitrationEnergy());
    EXPECT_GT(big.area(), small.area());
}

TEST(DecoderModel, Sane)
{
    tech::TechNode t = node40();
    InstructionDecoder d(8, 64, t);
    EXPECT_GT(d.decodeEnergy(), 0.0);
    EXPECT_LT(d.decodeEnergy(), 1e-10);
    EXPECT_GT(d.area(), 0.0);
}

TEST(AdderModel, WiderAddersCostMore)
{
    tech::TechNode t = node40();
    Adder a16(16, t);
    Adder a32(32, t);
    EXPECT_GT(a32.addEnergy(), a16.addEnergy());
    EXPECT_GT(a32.area(), a16.area());
}

TEST(RouterModel, FlitEnergyAndLeakagePositive)
{
    tech::TechNode t = node40();
    Router r(8, 256, 8, 2e-3, t);
    EXPECT_GT(r.flitEnergy(), 0.0);
    EXPECT_GT(r.linkEnergy(), 0.0);
    EXPECT_GT(r.leakage(), 0.0);
    // Longer links cost more energy.
    Router far(8, 256, 8, 4e-3, t);
    EXPECT_GT(far.linkEnergy(), r.linkEnergy());
}
