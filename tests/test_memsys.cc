/**
 * @file
 * Chip-level memory-system tests: L2 behaviour, DRAM interleaving,
 * latency ordering, and counter reset semantics.
 */

#include <gtest/gtest.h>

#include "perf/memsys.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

TEST(MemSys, MissSlowerThanSecondAccessWithL2)
{
    GpuConfig cfg = GpuConfig::gtx580();
    MemorySystem ms(cfg);
    uint64_t t_miss = ms.access(0x1000, false, 0);
    // Much later, same line: L2 hit, shorter round trip.
    uint64_t start = 1000000;
    uint64_t t_hit = ms.access(0x1000, false, start);
    EXPECT_LT(t_hit - start, t_miss);
    EXPECT_EQ(ms.activity().l2_reads, 2u);
    EXPECT_EQ(ms.activity().l2_misses, 1u);
}

TEST(MemSys, NoL2MeansEveryAccessReachesDram)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    ms.access(0x1000, false, 0);
    ms.access(0x1000, false, 100000);
    ms.updateDramCounters();
    EXPECT_EQ(ms.activity().l2_reads, 0u);
    EXPECT_EQ(ms.activity().mc_requests, 2u);
    EXPECT_GT(ms.activity().dram_read_bursts, 0u);
}

TEST(MemSys, LinesInterleaveAcrossChannels)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    // Touch consecutive lines; they spread over all 4 channels, so
    // per-channel row activates stay low.
    for (unsigned i = 0; i < 8; ++i)
        ms.access(static_cast<uint64_t>(i) * 128, false, i);
    ms.updateDramCounters();
    // 8 lines over 4 channels: 2 lines each, same row per channel.
    EXPECT_LE(ms.activity().dram_activates, 4u);
}

TEST(MemSys, WritesCountSeparately)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    ms.access(0, true, 0);
    ms.updateDramCounters();
    EXPECT_GT(ms.activity().dram_write_bursts, 0u);
    EXPECT_EQ(ms.activity().dram_read_bursts, 0u);
}

TEST(MemSys, FlitsCountRequestAndResponse)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    ms.access(0, false, 0);
    uint64_t read_flits = ms.activity().noc_flits;
    EXPECT_GT(read_flits, 1u);   // header + data on the response
}

TEST(MemSys, ResetClearsCountersAndTiming)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    uint64_t t1 = ms.access(0x2000, false, 0);
    ms.resetCounters();
    EXPECT_EQ(ms.activity().mc_requests, 0u);
    // After the reset the same access at cycle 0 takes the same time
    // (no stale bank/bus next-free state).
    uint64_t t2 = ms.access(0x2000, false, 0);
    EXPECT_EQ(t1, t2);
}

TEST(MemSys, BandwidthSaturationQueues)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    // Flood one channel (same line stride x channels) at t=0.
    uint64_t last = 0;
    for (unsigned i = 0; i < 32; ++i) {
        uint64_t addr = static_cast<uint64_t>(i) * 128 *
                        cfg.dram.channels;   // all to channel 0
        last = std::max(last, ms.access(addr, false, 0));
    }
    MemorySystem ms2(cfg);
    uint64_t single = ms2.access(0, false, 0);
    // 32 serialized requests take much longer than one.
    EXPECT_GT(last, single + 30);
}

TEST(MemSys, DramActivityRowOpenFraction)
{
    GpuConfig cfg = GpuConfig::gt240();
    MemorySystem ms(cfg);
    for (unsigned i = 0; i < 64; ++i)
        ms.access(static_cast<uint64_t>(i) * 128, false, i * 4);
    dram::DramActivity a = ms.dramActivity(1e-6);
    EXPECT_GT(a.row_open_frac, 0.0);
    EXPECT_LE(a.row_open_frac, 1.0);
    EXPECT_GT(a.read_bursts, 0u);
}
