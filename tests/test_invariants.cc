/**
 * @file
 * Invariant-violation tests: the panic() discipline (internal bugs
 * abort; user errors throw FatalError) and the microbenchmark
 * generators' structural guarantees.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "perf/activity.hh"
#include "perf/cache.hh"
#include "perf/memory.hh"
#include "stats/stats.hh"
#include "workloads/microbench.hh"

using namespace gpusimpow;

TEST(PanicDiscipline, SharedMemoryBoundsAbort)
{
    perf::SharedMemory smem(256);
    EXPECT_DEATH(smem.store32(256, 1), "bad shared store");
    EXPECT_DEATH(smem.load32(1024), "bad shared load");
    EXPECT_DEATH(smem.load32(2), "bad shared load");   // unaligned
}

TEST(PanicDiscipline, ConstantMemoryOverflowAborts)
{
    perf::ConstantMemory cmem;
    uint32_t v = 0;
    EXPECT_DEATH(cmem.write(65536 - 2, &v, 4), "overflow");
}

TEST(PanicDiscipline, UnalignedGlobalAccessAborts)
{
    perf::GlobalMemory gmem;
    EXPECT_DEATH(gmem.load32(2), "unaligned");
    EXPECT_DEATH(gmem.store32(5, 1), "unaligned");
}

TEST(PanicDiscipline, NonPowerOfTwoCacheSetsAbort)
{
    // 3 sets: not a power of two.
    EXPECT_DEATH(perf::CacheModel({3 * 64 * 2, 64, 2, false}),
                 "power of two");
}

TEST(PanicDiscipline, BadDistributionAborts)
{
    EXPECT_DEATH(stats::Distribution("d", "d", 5, 5, 4), "non-empty");
    EXPECT_DEATH(stats::Distribution("d", "d", 0, 9, 0), "bucket");
}

TEST(PanicDiscipline, MismatchedActivityDiffAborts)
{
    perf::ChipActivity a;
    a.cores.resize(4);
    perf::ChipActivity b;
    b.cores.resize(2);
    EXPECT_DEATH(a.diff(b), "different GPUs");
}

TEST(Microbench, LaneGuardStructure)
{
    perf::KernelProgram p =
        workloads::makeIntMicrobench(10, 31, 0x1000);
    // Body instructions are guarded; loop control is not.
    unsigned guarded = 0;
    unsigned unguarded_int = 0;
    for (const auto &inst : p.code) {
        if (inst.unitClass() == perf::UnitClass::Int) {
            if (inst.guard >= 0)
                ++guarded;
            else
                ++unguarded_int;
        }
    }
    EXPECT_EQ(guarded, workloads::int_body_ops_per_iter);
    EXPECT_GT(unguarded_int, 0u);   // counter updates etc.
}

TEST(Microbench, FpVariantUsesFpUnits)
{
    perf::KernelProgram p =
        workloads::makeFpMicrobench(10, 31, 0x1000);
    unsigned fp = 0;
    for (const auto &inst : p.code) {
        if (inst.unitClass() == perf::UnitClass::Fp && inst.guard >= 0)
            ++fp;
    }
    EXPECT_EQ(fp, workloads::fp_body_ops_per_iter);
}

TEST(Microbench, BadLaneCountIsCaught)
{
    EXPECT_DEATH(workloads::makeIntMicrobench(10, 0, 0x1000),
                 "enabled lanes");
    EXPECT_DEATH(workloads::makeIntMicrobench(10, 33, 0x1000),
                 "enabled lanes");
}
