/**
 * @file
 * Top-level Simulator facade tests and end-to-end validation-flow
 * integration (simulate -> trace -> testbed -> error bands).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "measure/validation.hh"
#include "sim/simulator.hh"
#include "workloads/microbench.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

TEST(SimulatorFacade, RunsAndReports)
{
    Simulator sim(GpuConfig::gt240());
    auto wl = workloads::makeWorkload("vectoradd");
    auto seq = wl->prepare(sim.gpu());
    KernelRun run = sim.runKernel(seq[0].prog, seq[0].launch);
    EXPECT_GT(run.perf.cycles, 0u);
    EXPECT_GT(run.perf.instructions, 0u);
    EXPECT_NEAR(run.report.staticPower(), 17.9, 0.3);
    EXPECT_GT(run.report.dynamicPower(), 1.0);
    EXPECT_GT(run.report.dram_w, 0.1);
    EXPECT_TRUE(run.trace.empty());
    EXPECT_TRUE(wl->verify(sim.gpu()));
}

TEST(SimulatorFacade, TraceCoversKernelDuration)
{
    Simulator sim(GpuConfig::gt240());
    uint32_t sink = sim.gpu().allocator().alloc(1 << 20);
    perf::KernelProgram prog =
        workloads::makeOccupancyKernel(500, sink);
    perf::LaunchConfig lc;
    lc.grid = {12, 1};
    lc.block = {256, 1};
    KernelRun run = sim.runKernel(prog, lc, true, 10e-6);
    ASSERT_FALSE(run.trace.empty());
    EXPECT_NEAR(run.trace.front().t0, 0.0, 1e-9);
    EXPECT_NEAR(run.trace.back().t1, run.perf.time_s, 11e-6);
    for (const PowerSample &s : run.trace) {
        EXPECT_GT(s.total(), run.report.staticPower());
        EXPECT_NEAR(s.static_w, run.report.staticPower(), 1e-6);
    }
}

TEST(SimulatorFacade, MemcpyRoundTrip)
{
    Simulator sim(GpuConfig::gt240());
    std::vector<uint32_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint32_t>(i * 17);
    uint32_t addr = sim.gpu().allocator().alloc(4000);
    sim.gpu().memcpyToDevice(addr, data.data(), 4000);
    std::vector<uint32_t> back(1000);
    sim.gpu().memcpyToHost(back.data(), addr, 4000);
    EXPECT_EQ(back, data);
}

TEST(EndToEnd, ValidationErrorWithinBand)
{
    // The full Fig. 6 path for one kernel: the simulator's estimate
    // must land within a plausible band of the virtual hardware.
    GpuConfig cfg = GpuConfig::gt240();
    Simulator sim(cfg);
    measure::ValidationHarness harness(
        cfg, sim.powerModel().staticPower(), 0x5EED);
    auto wl = workloads::makeWorkload("vectoradd");
    auto seq = wl->prepare(sim.gpu());
    KernelRun run = sim.runKernel(seq[0].prog, seq[0].launch, true,
                                  20e-6);
    auto v = harness.validate(seq[0].label, run, true);
    EXPECT_GT(v.measTotal(), 15.0);
    EXPECT_LT(std::fabs(v.relError()), 0.35);
    EXPECT_GT(v.repeats, 1u);   // short kernel gets repeated
}

TEST(EndToEnd, XmlConfiguredGpuRuns)
{
    // The paper's XML interface end to end: serialize a preset,
    // tweak it, load it back, and simulate.
    GpuConfig base = GpuConfig::gt240();
    std::string xml = base.toXml();
    GpuConfig cfg = GpuConfig::fromXml(xml);
    cfg.clusters = 2;
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload("vectoradd");
    auto seq = wl->prepare(sim.gpu());
    KernelRun run = sim.runKernel(seq[0].prog, seq[0].launch);
    EXPECT_TRUE(wl->verify(sim.gpu()));
    EXPECT_GT(run.perf.cycles, 0u);
}

TEST(EndToEnd, EnergyPerOpMethodologyRecoversConstants)
{
    // Condensed SectionIII-D check at the model level (no testbed):
    // the differential 31-vs-1 lane methodology applied directly to
    // the simulator's reports recovers the configured 40 pJ/op.
    GpuConfig cfg = GpuConfig::gt240();
    Simulator sim(cfg);
    uint32_t sink = sim.gpu().allocator().alloc(1 << 20);
    perf::LaunchConfig lc;
    lc.grid = {cfg.numCores(), 1};
    lc.block = {512, 1};
    const unsigned iters = 300;

    auto run31 = sim.runKernel(
        workloads::makeIntMicrobench(iters, 31, sink), lc);
    auto run1 = sim.runKernel(
        workloads::makeIntMicrobench(iters, 1, sink), lc);
    // Identical timing by construction.
    EXPECT_NEAR(static_cast<double>(run31.perf.cycles),
                static_cast<double>(run1.perf.cycles),
                0.01 * run31.perf.cycles);
    double de = (run31.report.dynamicPower() -
                 run1.report.dynamicPower()) * run31.perf.time_s;
    double warp_insts = static_cast<double>(iters) *
                        workloads::int_body_ops_per_iter * (512 / 32) *
                        cfg.numCores();
    double pj = de / (warp_insts * 30.0) * 1e12;
    EXPECT_NEAR(pj, 40.0, 4.0);
}
