/**
 * @file
 * Power-trace integrity tests: the sampled waveform must cover the
 * whole kernel exactly — first sample starts at t=0, samples are
 * contiguous and strictly positive in length, the final partial
 * interval is emitted, no zero-length sample appears when the kernel
 * ends exactly on a sampling boundary — and integrating the trace
 * over time must reproduce the whole-kernel report's energy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

namespace {

/** Run one workload's first kernel with tracing at the given period. */
KernelRun
tracedRun(const GpuConfig &cfg, const std::string &workload,
          double sample_interval_s)
{
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload(workload, 1);
    auto launches = wl->prepare(sim.gpu());
    EXPECT_FALSE(launches.empty());
    const auto &kl = launches.front();
    return sim.runKernel(kl.prog, kl.launch, true, sample_interval_s);
}

/** Structural invariants every trace must satisfy. */
void
expectFullCoverage(const KernelRun &run)
{
    ASSERT_FALSE(run.trace.empty());
    EXPECT_DOUBLE_EQ(run.trace.front().t0, 0.0);
    for (std::size_t i = 0; i < run.trace.size(); ++i) {
        const PowerSample &s = run.trace[i];
        EXPECT_LT(s.t0, s.t1) << "zero-length sample " << i;
        if (i > 0) {
            EXPECT_DOUBLE_EQ(run.trace[i - 1].t1, s.t0)
                << "gap/overlap before sample " << i;
        }
    }
    EXPECT_DOUBLE_EQ(run.trace.back().t1, run.perf.time_s)
        << "trace does not reach the end of the kernel";
}

/** Integrate total card power over the waveform, J. */
double
traceEnergy(const KernelRun &run)
{
    double e = 0.0;
    for (const PowerSample &s : run.trace)
        e += s.total() * (s.t1 - s.t0);
    return e;
}

} // namespace

TEST(Trace, CoversWholeKernelWithFinalPartialInterval)
{
    // 2 us against a tens-of-us kernel: many full intervals plus
    // (almost surely) a partial tail.
    KernelRun run = tracedRun(GpuConfig::gt240(), "matmul", 2e-6);
    EXPECT_GT(run.trace.size(), 3u);
    expectFullCoverage(run);
}

TEST(Trace, SingleSampleWhenKernelShorterThanInterval)
{
    KernelRun run = tracedRun(GpuConfig::gt240(), "vectoradd", 1.0);
    EXPECT_EQ(run.trace.size(), 1u);
    expectFullCoverage(run);
}

TEST(Trace, NoZeroLengthSampleOnExactBoundary)
{
    // Learn the kernel length, then sample with exactly that period:
    // the in-loop sample fires on the final cycle and the tail flush
    // must not emit a second, zero-length sample.
    GpuConfig cfg = GpuConfig::gt240();
    KernelRun probe = tracedRun(cfg, "vectoradd", 1.0);
    uint64_t cycles = probe.perf.cycles;
    ASSERT_GT(cycles, 0u);
    double interval =
        (static_cast<double>(cycles) + 0.5) / cfg.clocks.shaderHz();

    KernelRun run = tracedRun(cfg, "vectoradd", interval);
    EXPECT_EQ(run.trace.size(), 1u);
    expectFullCoverage(run);
}

TEST(Trace, IntegralMatchesWholeKernelEnergy)
{
    for (const char *wl : {"vectoradd", "matmul"}) {
        KernelRun run = tracedRun(GpuConfig::gt240(), wl, 2e-6);
        expectFullCoverage(run);
        double whole =
            (run.report.totalPower() + run.report.dram_w) *
            run.perf.time_s;
        double integrated = traceEnergy(run);
        EXPECT_NEAR(integrated, whole, 0.005 * whole)
            << wl << ": trace integral drifted from the whole-kernel "
            << "energy";
    }
}

TEST(Trace, IntegralMatchesOnFermiConfigWithL2)
{
    KernelRun run = tracedRun(GpuConfig::gtx580(), "blackscholes",
                              2e-6);
    expectFullCoverage(run);
    double whole = (run.report.totalPower() + run.report.dram_w) *
                   run.perf.time_s;
    EXPECT_NEAR(traceEnergy(run), whole, 0.005 * whole);
}
