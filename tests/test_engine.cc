/**
 * @file
 * Tests of the sweep stack behind SweepSession — the public entry
 * point — plus the low-level SimulationEngine contracts it builds on:
 * sweep expansion order, determinism across worker counts, the
 * empty-sweep edge case, exception propagation out of worker threads,
 * option validation, and the thread-safety of the SweepResult table.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "sim/engine.hh"
#include "sim/session.hh"
#include "sim/sweep.hh"

using namespace gpusimpow;
using sim::EngineOptions;
using sim::Scenario;
using sim::ScenarioResult;
using sim::SimulationEngine;
using sim::SweepResult;
using sim::SweepSession;
using sim::SweepSpec;

namespace {

/** Small, fast sweep: 2 configs x 2 nodes x 2 workloads. */
SweepSpec
smallSweep()
{
    SweepSpec spec;
    GpuConfig small = GpuConfig::gt240();
    small.clusters = 2;
    spec.configs = {GpuConfig::gt240(), small};
    spec.tech_nodes = {40u, 28u};
    spec.workloads = {"vectoradd", "matmul"};
    return spec;
}

/** Sweeps go through the public entry point, as every front end
 *  (CLI, service) does. */
SweepResult
runWithJobs(const SweepSpec &spec, unsigned jobs)
{
    return SweepSession(EngineOptions().withJobs(jobs)).submit(spec);
}

} // namespace

TEST(SweepSpec, ExpansionOrderIsConfigMajorThenNodeThenWorkload)
{
    SweepSpec spec = smallSweep();
    std::vector<Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 8u);
    ASSERT_EQ(spec.size(), scenarios.size());

    // Indices are sequential in expansion order.
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        EXPECT_EQ(scenarios[i].index, i);

    // config-major, then node, then workload.
    EXPECT_EQ(scenarios[0].config.clusters, 4u);
    EXPECT_EQ(scenarios[0].config.tech.node_nm, 40u);
    EXPECT_EQ(scenarios[0].workload, "vectoradd");
    EXPECT_EQ(scenarios[1].workload, "matmul");
    EXPECT_EQ(scenarios[2].config.tech.node_nm, 28u);
    EXPECT_EQ(scenarios[4].config.clusters, 2u);
    EXPECT_EQ(scenarios[7].config.clusters, 2u);
    EXPECT_EQ(scenarios[7].config.tech.node_nm, 28u);
    EXPECT_EQ(scenarios[7].workload, "matmul");
}

TEST(SweepSpec, EmptyNodeListKeepsConfiguredNode)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gtx580()};
    spec.workloads = {"vectoradd"};
    std::vector<Scenario> scenarios = spec.expand();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0].config.tech.node_nm,
              GpuConfig::gtx580().tech.node_nm);
}

TEST(Engine, EmptySweepReturnsEmptyResult)
{
    SweepSpec spec; // no configs, no workloads
    SweepResult result = runWithJobs(spec, 4);
    EXPECT_EQ(result.size(), 0u);
    EXPECT_TRUE(result.empty());
    EXPECT_EQ(result.rows().size(), 0u);
    EXPECT_DOUBLE_EQ(result.totalSimulatedTime(), 0.0);
}

TEST(Engine, ConfigsWithoutWorkloadsIsEmpty)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    SweepResult result = runWithJobs(spec, 2);
    EXPECT_TRUE(result.empty());
}

TEST(Engine, DeterministicAcrossWorkerCounts)
{
    SweepSpec spec = smallSweep();
    SweepResult serial = runWithJobs(spec, 1);
    SweepResult parallel = runWithJobs(spec, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const ScenarioResult &a = serial.at(i);
        const ScenarioResult &b = parallel.at(i);
        // Rows correspond to the same scenario...
        EXPECT_EQ(a.scenario.index, i);
        EXPECT_EQ(b.scenario.index, i);
        EXPECT_EQ(a.scenario.label, b.scenario.label);
        // ...and every measured quantity is bit-identical.
        EXPECT_EQ(a.time_s, b.time_s) << a.scenario.label;
        EXPECT_EQ(a.energy_j, b.energy_j) << a.scenario.label;
        EXPECT_EQ(a.avg_power_w, b.avg_power_w) << a.scenario.label;
        EXPECT_EQ(a.static_w, b.static_w) << a.scenario.label;
        EXPECT_EQ(a.area_mm2, b.area_mm2) << a.scenario.label;
        EXPECT_TRUE(a.verified);
        EXPECT_TRUE(b.verified);
        ASSERT_EQ(a.kernels.size(), b.kernels.size());
        for (std::size_t k = 0; k < a.kernels.size(); ++k) {
            EXPECT_EQ(a.kernels[k].label, b.kernels[k].label);
            EXPECT_EQ(a.kernels[k].run.perf.cycles,
                      b.kernels[k].run.perf.cycles);
        }
    }
}

TEST(Engine, RowsMatchSingleScenarioRuns)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd", "matmul"};
    SweepResult sweep = runWithJobs(spec, 4);

    SimulationEngine engine;
    std::vector<Scenario> scenarios = spec.expand();
    ASSERT_EQ(sweep.size(), scenarios.size());
    for (const Scenario &s : scenarios) {
        ScenarioResult solo = engine.runScenario(s);
        const ScenarioResult &row = sweep.at(s.index);
        EXPECT_EQ(solo.time_s, row.time_s) << s.label;
        EXPECT_EQ(solo.energy_j, row.energy_j) << s.label;
    }
}

TEST(Engine, WorkerExceptionPropagatesToCaller)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    // The bad workload is surrounded by good ones; the engine must
    // finish the good scenarios and still report the failure.
    spec.workloads = {"vectoradd", "no-such-workload", "matmul"};
    EXPECT_THROW(runWithJobs(spec, 4), FatalError);
    EXPECT_THROW(runWithJobs(spec, 1), FatalError);
}

TEST(Engine, LowestIndexExceptionWinsRegardlessOfJobs)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"bogus-first", "vectoradd", "bogus-last"};
    for (unsigned jobs : {1u, 3u, 8u}) {
        try {
            runWithJobs(spec, jobs);
            FAIL() << "expected FatalError at jobs=" << jobs;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("bogus-first"),
                      std::string::npos)
                << "jobs=" << jobs << ": got '" << e.what() << "'";
        }
    }
}

TEST(Engine, JobsZeroResolvesToHardwareConcurrency)
{
    EngineOptions opt;
    opt.jobs = 0;
    SimulationEngine engine(opt);
    EXPECT_GE(engine.jobs(), 1u);

    opt.jobs = 3;
    EXPECT_EQ(SimulationEngine(opt).jobs(), 3u);
    // The session reports the same resolution it hands the engine.
    EXPECT_EQ(SweepSession(EngineOptions().withJobs(3)).jobs(), 3u);
    EXPECT_GE(SweepSession(EngineOptions().withJobs(0)).jobs(), 1u);
}

TEST(Engine, OptionsValidateRejectsIncoherentCombinations)
{
    EXPECT_NO_THROW(EngineOptions().validate());

    EngineOptions too_many;
    too_many.jobs = EngineOptions::max_jobs + 1;
    EXPECT_THROW(too_many.validate(), FatalError);
    EXPECT_THROW(SimulationEngine{too_many}, FatalError);

    EngineOptions bad_interval = EngineOptions().withTrace(true);
    bad_interval.sample_interval_s = 0.0;
    EXPECT_THROW(bad_interval.validate(), FatalError);

    // The snapshot hooks feed on memoization; without it they could
    // never fire, so the combination is rejected, not ignored.
    EngineOptions hooked = EngineOptions().withMemoize(false);
    hooked.snapshot_source = [](const Scenario &) { return nullptr; };
    EXPECT_THROW(hooked.validate(), FatalError);
    EXPECT_THROW(SimulationEngine{hooked}, FatalError);

    // Named setters chain and leave the result coherent.
    EngineOptions chained = EngineOptions()
                                .withJobs(4)
                                .withReuseSimulators(false)
                                .withBatchReplay(false)
                                .withTrace(true, 1e-5);
    EXPECT_NO_THROW(chained.validate());
    EXPECT_EQ(chained.jobs, 4u);
    EXPECT_FALSE(chained.reuse_simulators);
    EXPECT_FALSE(chained.batch_replay);
    EXPECT_TRUE(chained.with_trace);
    EXPECT_EQ(chained.sample_interval_s, 1e-5);
}

TEST(Engine, ProgressCallbackSeesEveryScenarioExactlyOnce)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd", "matmul", "blackscholes"};

    std::vector<int> seen(spec.size(), 0);
    std::size_t max_done = 0;
    SweepSession session(EngineOptions().withJobs(4));
    session.submit(spec, [&](const ScenarioResult &r,
                             std::size_t done, std::size_t total) {
        // The engine serializes progress callbacks, so plain writes
        // are safe here.
        ASSERT_LT(r.scenario.index, seen.size());
        seen[r.scenario.index]++;
        EXPECT_EQ(total, seen.size());
        EXPECT_GE(done, 1u);
        EXPECT_LE(done, total);
        if (done > max_done)
            max_done = done;
    });
    for (int count : seen)
        EXPECT_EQ(count, 1);
    EXPECT_EQ(max_done, seen.size());
}

TEST(SweepResult, SetIsThreadSafeAndSlotsStayOrdered)
{
    constexpr std::size_t kSlots = 64;
    SweepResult table(kSlots);
    std::atomic<std::size_t> cursor{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&]() {
            for (;;) {
                std::size_t i = cursor.fetch_add(1);
                if (i >= kSlots)
                    return;
                ScenarioResult r;
                r.scenario.index = i;
                r.time_s = static_cast<double>(i);
                table.set(std::move(r));
            }
        });
    }
    for (std::thread &t : writers)
        t.join();

    ASSERT_EQ(table.size(), kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        EXPECT_EQ(table.at(i).scenario.index, i);
        EXPECT_DOUBLE_EQ(table.at(i).time_s, static_cast<double>(i));
    }
}

TEST(Engine, SimulatorReuseIsBitIdenticalToRebuildPerScenario)
{
    // Workload-only sweep: every scenario shares one fingerprint, so
    // the reuse path recycles one Simulator per worker. Results must
    // be indistinguishable from rebuilding per scenario.
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd", "matmul", "blackscholes",
                      "scalarprod"};

    EngineOptions reuse_opt;
    reuse_opt.jobs = 2;
    reuse_opt.reuse_simulators = true;
    EngineOptions rebuild_opt = reuse_opt;
    rebuild_opt.reuse_simulators = false;

    SweepResult reused = SimulationEngine(reuse_opt).run(spec);
    SweepResult rebuilt = SimulationEngine(rebuild_opt).run(spec);
    ASSERT_EQ(reused.size(), rebuilt.size());
    for (std::size_t i = 0; i < reused.size(); ++i) {
        const ScenarioResult &a = reused.at(i);
        const ScenarioResult &b = rebuilt.at(i);
        EXPECT_EQ(a.time_s, b.time_s) << a.scenario.label;
        EXPECT_EQ(a.energy_j, b.energy_j) << a.scenario.label;
        EXPECT_EQ(a.avg_power_w, b.avg_power_w) << a.scenario.label;
        EXPECT_EQ(a.static_w, b.static_w) << a.scenario.label;
        EXPECT_TRUE(a.verified) << a.scenario.label;
        EXPECT_TRUE(b.verified) << b.scenario.label;
    }
}

TEST(Engine, SimulatorReuseIsBitIdenticalWithThermalAndThrottling)
{
    // Thermal state (carried transient temperatures, a live
    // throttling clamp) is exactly the kind of hidden per-Simulator
    // state that could leak across recycled scenarios. A reuse sweep
    // over throttling scenarios must stay bit-identical to
    // rebuilding per scenario.
    SweepSpec spec;
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.throttle = true;
    spec.configs = {cfg};
    spec.coolings = {"constrained"};
    spec.workloads = {"matmul", "vectoradd", "matmul"};

    EngineOptions reuse_opt;
    reuse_opt.jobs = 1; // one worker recycles through all three
    reuse_opt.reuse_simulators = true;
    EngineOptions rebuild_opt = reuse_opt;
    rebuild_opt.reuse_simulators = false;

    SweepResult reused = SimulationEngine(reuse_opt).run(spec);
    SweepResult rebuilt = SimulationEngine(rebuild_opt).run(spec);
    ASSERT_EQ(reused.size(), rebuilt.size());
    bool any_throttled = false;
    for (std::size_t i = 0; i < reused.size(); ++i) {
        const ScenarioResult &a = reused.at(i);
        const ScenarioResult &b = rebuilt.at(i);
        EXPECT_EQ(a.time_s, b.time_s) << a.scenario.label;
        EXPECT_EQ(a.energy_j, b.energy_j) << a.scenario.label;
        EXPECT_EQ(a.t_max_k, b.t_max_k) << a.scenario.label;
        EXPECT_EQ(a.min_freq_scale, b.min_freq_scale)
            << a.scenario.label;
        EXPECT_EQ(a.throttled, b.throttled) << a.scenario.label;
        any_throttled |= a.throttled;
    }
    // The sweep must actually exercise the clamp for the hygiene
    // check to mean anything.
    EXPECT_TRUE(any_throttled);
}

TEST(Engine, ReuseRecoversAfterAFailedScenario)
{
    // The failing scenario sits between two good ones that share its
    // fingerprint; the worker must drop its cached Simulator on the
    // error and still produce a bit-identical result for the scenario
    // after the failure. run() rethrows and discards its table, so
    // the post-failure result is captured through the progress hook.
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd", "no-such-workload", "matmul"};

    std::vector<ScenarioResult> completed;
    EngineOptions opt;
    opt.jobs = 1; // one worker sees all three in order
    opt.reuse_simulators = true;
    opt.progress = [&](const ScenarioResult &r, std::size_t,
                       std::size_t) { completed.push_back(r); };
    EXPECT_THROW(SimulationEngine(opt).run(spec), FatalError);

    ASSERT_EQ(completed.size(), 2u);
    Scenario matmul = spec.expand()[2];
    ScenarioResult fresh = SimulationEngine().runScenario(matmul);
    EXPECT_EQ(completed[1].scenario.label, matmul.label);
    EXPECT_EQ(completed[1].time_s, fresh.time_s);
    EXPECT_EQ(completed[1].energy_j, fresh.energy_j);
    EXPECT_TRUE(completed[1].verified);
}

TEST(Engine, RecycleCleansADirtiedSimulator)
{
    // Recycling must erase every trace of previous device activity —
    // including junk a misbehaving workload left in global memory —
    // so a recycled Simulator is indistinguishable from a fresh one.
    Scenario scenario;
    scenario.config = GpuConfig::gt240();
    scenario.workload = "matmul";

    SimulationEngine engine;
    ScenarioResult fresh = engine.runScenario(scenario);

    Simulator sim(scenario.config);
    ScenarioResult first = engine.runScenario(scenario, sim);
    EXPECT_EQ(first.energy_j, fresh.energy_j);
    // Dirty the device: junk data and a bumped allocator cursor.
    std::vector<uint32_t> junk(4096, 0xdeadbeefu);
    sim.gpu().allocator().alloc(1 << 20);
    sim.gpu().memcpyToDevice(0x2000, junk.data(),
                             junk.size() * sizeof(junk[0]));
    sim.recycle();
    ScenarioResult again = engine.runScenario(scenario, sim);
    EXPECT_EQ(again.time_s, fresh.time_s);
    EXPECT_EQ(again.energy_j, fresh.energy_j);
    EXPECT_EQ(again.avg_power_w, fresh.avg_power_w);
    EXPECT_TRUE(again.verified);
}

TEST(SweepResult, FormatTableListsRowsInExpansionOrder)
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.workloads = {"vectoradd", "matmul"};
    SweepResult result = runWithJobs(spec, 2);
    std::string table = result.formatTable();
    std::size_t first = table.find("vectoradd");
    std::size_t second = table.find("matmul");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}
