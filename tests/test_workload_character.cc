/**
 * @file
 * Workload characterization tests: SectionIV-C claims the benchmarks
 * "span ... an equally wide variety of algorithmic (and thus,
 * dynamic power) characteristics". These tests pin down that each
 * kernel actually exercises the structure it is meant to stress —
 * blackscholes the SFUs, matmul/scalarprod the SMEM, bfs the
 * divergence stack, kmeans2 the atomics, heartwall the constant
 * cache, mergesort the barriers, vectoradd the coalescer — so a
 * regression that flattens the workload mix is caught.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

namespace {

/** Owning benchmark for each Fig. 6 kernel label. */
const char *
workloadOf(const std::string &label)
{
    static const std::map<std::string, const char *> map = {
        {"backprop1", "backprop"},   {"backprop2", "backprop"},
        {"bfs1", "bfs"},             {"bfs2", "bfs"},
        {"BlackScholes", "blackscholes"},
        {"heartwall", "heartwall"},  {"hotspot", "hotspot"},
        {"kmeans1", "kmeans"},       {"kmeans2", "kmeans"},
        {"matrixMul", "matmul"},     {"mergeSort1", "mergesort"},
        {"mergeSort2", "mergesort"}, {"mergeSort3", "mergesort"},
        {"mergeSort4", "mergesort"}, {"needle1", "needle"},
        {"needle2", "needle"},       {"pathfinder", "pathfinder"},
        {"scalarProd", "scalarprod"},
        {"vectorAdd", "vectoradd"},
    };
    auto it = map.find(label);
    if (it == map.end())
        fatal("unknown kernel label ", label);
    return it->second;
}

/** Lazily simulate one benchmark and cache per-label activity. */
class WorkloadCharacter : public ::testing::Test
{
  protected:
    static const CoreActivity &
    activity(const std::string &label)
    {
        static std::map<std::string, CoreActivity> cache;
        static std::set<std::string> simulated;
        std::string wl_name = workloadOf(label);
        if (!simulated.count(wl_name)) {
            Simulator sim(GpuConfig::gt240());
            auto wl = workloads::makeWorkload(wl_name);
            auto seq = wl->prepare(sim.gpu());
            for (const auto &kl : seq) {
                KernelRun run = sim.runKernel(kl.prog, kl.launch);
                CoreActivity total;
                for (const auto &c : run.perf.activity.cores)
                    total += c;
                cache[kl.label] += total;
            }
            EXPECT_TRUE(wl->verify(sim.gpu())) << wl_name;
            simulated.insert(wl_name);
        }
        return cache.at(label);
    }

    static double
    ratio(const std::string &label, uint64_t CoreActivity::*num,
          uint64_t CoreActivity::*den)
    {
        const CoreActivity &a = activity(label);
        uint64_t d = a.*den;
        return d == 0 ? 0.0
                      : static_cast<double>(a.*num) /
                            static_cast<double>(d);
    }
};

} // namespace

TEST_F(WorkloadCharacter, BlackScholesIsSfuAndFpHeavy)
{
    const CoreActivity &a = activity("BlackScholes");
    EXPECT_GT(a.sfu_warp_insts, 0u);
    // FP dominates INT (pricing math vs addressing).
    EXPECT_GT(a.fp_lane_ops, a.int_lane_ops);
    // SFU share is far above the benchmark norm.
    double sfu_share = ratio("BlackScholes",
                             &CoreActivity::sfu_warp_insts,
                             &CoreActivity::issued_insts);
    EXPECT_GT(sfu_share, 0.03);
}

TEST_F(WorkloadCharacter, VectorAddIsPerfectlyCoalesced)
{
    double txn_per_lookup =
        ratio("vectorAdd", &CoreActivity::coalescer_transactions,
              &CoreActivity::coalescer_lookups);
    // 256-thread warps over contiguous floats: ~1 transaction per
    // warp access.
    EXPECT_LT(txn_per_lookup, 1.1);
}

TEST_F(WorkloadCharacter, BfsIsDivergentAndUncoalesced)
{
    const CoreActivity &a = activity("bfs1");
    EXPECT_GT(a.divergent_branches, 100u);
    double txn_per_lookup =
        ratio("bfs1", &CoreActivity::coalescer_transactions,
              &CoreActivity::coalescer_lookups);
    // Neighbor chasing scatters across lines.
    EXPECT_GT(txn_per_lookup, 1.5);
}

TEST_F(WorkloadCharacter, MatmulStagesThroughSharedMemory)
{
    const CoreActivity &a = activity("matrixMul");
    EXPECT_GT(a.smem_accesses, a.coalescer_transactions * 4);
    EXPECT_GT(a.barriers, 0u);
}

TEST_F(WorkloadCharacter, Kmeans2UsesAtomics)
{
    // Atomic RMW shows up as both loads and stores on the same
    // addresses: global stores with no ST instructions in excess.
    const CoreActivity &a = activity("kmeans2");
    EXPECT_GT(a.global_loads + a.global_stores, 0u);
    // kmeans2 performs 5 atomics per point; mem instructions
    // dominate its SFU/FP work.
    EXPECT_GT(a.mem_warp_insts, a.sfu_warp_insts);
}

TEST_F(WorkloadCharacter, HeartwallHitsTheConstantCache)
{
    const CoreActivity &a = activity("heartwall");
    EXPECT_GT(a.const_reads, 1000u);
    // The 25-entry template fits: after warmup everything hits.
    EXPECT_LT(static_cast<double>(a.const_misses),
              0.01 * static_cast<double>(a.const_reads));
}

TEST_F(WorkloadCharacter, MergeSort1IsBarrierBound)
{
    double bars_per_inst =
        ratio("mergeSort1", &CoreActivity::barriers,
              &CoreActivity::issued_insts);
    // One barrier per odd-even phase.
    EXPECT_GT(bars_per_inst, 0.01);
}

TEST_F(WorkloadCharacter, NeedleDivergesInsideTiles)
{
    const CoreActivity &a = activity("needle1");
    EXPECT_GT(a.divergent_branches, 50u);
    EXPECT_GT(a.barriers, 100u);
    EXPECT_GT(a.smem_accesses, 1000u);
}

TEST_F(WorkloadCharacter, ScalarProdReducesInSharedMemory)
{
    const CoreActivity &a = activity("scalarProd");
    EXPECT_GT(a.smem_accesses, 0u);
    EXPECT_GT(a.barriers, 0u);
    EXPECT_GT(a.fp_lane_ops, 0u);
}

TEST_F(WorkloadCharacter, PathfinderMixesSmemAndGlobal)
{
    const CoreActivity &a = activity("pathfinder");
    EXPECT_GT(a.smem_accesses, 0u);
    EXPECT_GT(a.global_loads, 0u);
    EXPECT_GT(a.int_lane_ops, a.fp_lane_ops);   // integer DP
}

TEST_F(WorkloadCharacter, HotspotIsFpStencil)
{
    const CoreActivity &a = activity("hotspot");
    EXPECT_GT(a.fp_lane_ops, 0u);
    EXPECT_GT(a.global_loads, 0u);
    // Clamped edges use predicated selects, not divergence.
    EXPECT_LT(a.divergent_branches, 100u);
}

TEST_F(WorkloadCharacter, DynamicRangeAcrossKernelsIsWide)
{
    // The power-relevant activity mix must differ widely across a
    // representative subset (the paper's "wide variety").
    auto fp_share = [&](const std::string &label) {
        const CoreActivity &a = activity(label);
        return static_cast<double>(a.fp_lane_ops) /
               (static_cast<double>(a.fp_lane_ops) +
                static_cast<double>(a.int_lane_ops) + 1.0);
    };
    EXPECT_LT(fp_share("mergeSort1"), 0.05);    // pure integer
    EXPECT_GT(fp_share("BlackScholes"), 0.5);   // FP dominated
}
