/**
 * @file
 * Tests of the persistent snapshot store and the SweepSession built
 * on top of it: round-trip persistence across reopen, the durability
 * contract (torn and truncated entries are skipped, never fatal),
 * eviction, and the session-level guarantees — warm-store replays
 * with zero captures, byte-identical tables, and the in-flight dedupe
 * that keeps two concurrent jobs from capturing the same scenario.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "sim/engine.hh"
#include "sim/session.hh"
#include "sim/snapshot.hh"
#include "sim/sweep.hh"
#include "store/store.hh"

using namespace gpusimpow;
using sim::EngineOptions;
using sim::SweepResult;
using sim::SweepSession;
using sim::SweepSpec;
using store::StoreOptions;
using store::SweepStore;

namespace {

/** A unique store directory per test, removed on scope exit. */
struct ScopedDir
{
    std::filesystem::path path;

    explicit ScopedDir(const std::string &tag)
    {
        static std::size_t counter = 0;
        path = std::filesystem::temp_directory_path() /
               strformat("gsp-test-%s-%zu", tag.c_str(), counter++);
        std::filesystem::remove_all(path);
    }

    ~ScopedDir() { std::filesystem::remove_all(path); }
};

/** A small synthetic snapshot — enough structure to make a payload
 *  whose round trip is meaningful, cheap enough for tight loops. */
ActivitySnapshot
makeSnapshot(const std::string &workload, unsigned scale)
{
    ActivitySnapshot snap;
    snap.workload = workload;
    snap.scale = scale;
    snap.verified = true;
    KernelSnapshot k;
    k.label = workload + "_kernel";
    k.perf.cycles = 1234 + scale;
    k.perf.instructions = 5678;
    k.perf.time_s = 0.25;
    snap.kernels.push_back(std::move(k));
    return snap;
}

/** The one .entry file in a store directory; fails the test when the
 *  count differs. */
std::filesystem::path
onlyEntryFile(const std::filesystem::path &dir)
{
    std::vector<std::filesystem::path> entries;
    for (const auto &de : std::filesystem::directory_iterator(dir))
        if (de.path().extension() == ".entry")
            entries.push_back(de.path());
    EXPECT_EQ(entries.size(), 1u);
    return entries.empty() ? std::filesystem::path() : entries.front();
}

/** Power-only sweep over one workload: one snapshot key, several
 *  replayable variants. */
SweepSpec
powerOnlySweep()
{
    SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u};
    spec.workloads = {"vectoradd"};
    return spec;
}

} // namespace

TEST(Store, PutFetchRoundTripSurvivesReopen)
{
    ScopedDir dir("roundtrip");
    ActivitySnapshot snap = makeSnapshot("vectoradd", 3);
    const std::string key = "vectoradd#node=40";
    {
        SweepStore store(dir.path);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_FALSE(store.contains(key));
        EXPECT_EQ(store.fetch(key), nullptr);
        ASSERT_TRUE(store.put(key, snap));
        EXPECT_TRUE(store.contains(key));
        EXPECT_EQ(store.size(), 1u);
        auto fetched = store.fetch(key);
        ASSERT_NE(fetched, nullptr);
        EXPECT_EQ(fetched->serialize(), snap.serialize());
    }
    // A second process opening the same directory sees the entry.
    SweepStore reopened(dir.path);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.corruptAtOpen(), 0u);
    auto fetched = reopened.fetch(key);
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(fetched->serialize(), snap.serialize());
    EXPECT_EQ(fetched->workload, "vectoradd");
    EXPECT_EQ(fetched->scale, 3u);
}

TEST(Store, PutReplacesPreviousEntryForKey)
{
    ScopedDir dir("replace");
    SweepStore store(dir.path);
    const std::string key = "k";
    ASSERT_TRUE(store.put(key, makeSnapshot("vectoradd", 1)));
    ASSERT_TRUE(store.put(key, makeSnapshot("vectoradd", 9)));
    EXPECT_EQ(store.size(), 1u);
    auto fetched = store.fetch(key);
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(fetched->scale, 9u);
}

TEST(Store, TruncatedEntryIsSkippedAtOpenNeverFatal)
{
    ScopedDir dir("torn");
    const std::string good_key = "good";
    {
        SweepStore store(dir.path);
        ASSERT_TRUE(store.put("doomed", makeSnapshot("matmul", 2)));
        std::filesystem::path victim = onlyEntryFile(dir.path);
        ASSERT_TRUE(store.put(good_key, makeSnapshot("vectoradd", 1)));
        // Tear the first entry mid-payload, as a crash between write
        // and rename never could but a disk error still can.
        std::error_code ec;
        std::filesystem::resize_file(
            victim, std::filesystem::file_size(victim) / 2, ec);
        ASSERT_FALSE(ec);
    }
    SweepStore reopened(dir.path);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.corruptAtOpen(), 1u);
    EXPECT_FALSE(reopened.contains("doomed"));
    ASSERT_NE(reopened.fetch(good_key), nullptr);
}

TEST(Store, GarbageEntryAndStrayTempFileAreTolerated)
{
    ScopedDir dir("garbage");
    {
        SweepStore store(dir.path);
        ASSERT_TRUE(store.put("good", makeSnapshot("vectoradd", 1)));
    }
    // A crash mid-put leaves a temp file; a corrupted file system
    // leaves arbitrary bytes under the .entry suffix. Neither may
    // break loading.
    {
        std::ofstream tmp(dir.path / "crashed.put-0.tmp");
        tmp << "partial entry the crash never renamed";
    }
    {
        std::ofstream bad(dir.path / "ebadbadbadbadbad.entry");
        bad << "not a store entry at all\n";
    }
    SweepStore reopened(dir.path);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.corruptAtOpen(), 1u);
    ASSERT_NE(reopened.fetch("good"), nullptr);
}

TEST(Store, ChecksumMismatchDropsEntryAtFetch)
{
    ScopedDir dir("tamper");
    SweepStore store(dir.path);
    ASSERT_TRUE(store.put("k", makeSnapshot("vectoradd", 1)));
    std::filesystem::path entry = onlyEntryFile(dir.path);
    // Corrupt the payload after the store indexed it: flip bytes in
    // the middle of the file, keeping the framing lengths intact.
    {
        std::fstream f(entry, std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(
            std::filesystem::file_size(entry) / 2));
        f << "XXXX";
    }
    EXPECT_EQ(store.fetch("k"), nullptr);
    // The poisoned entry is dropped from the index, not retried.
    EXPECT_FALSE(store.contains("k"));
    EXPECT_EQ(store.size(), 0u);
}

TEST(Store, EvictionDropsOldestInsertionFirst)
{
    ScopedDir dir("evict");
    StoreOptions options;
    options.max_entries = 2;
    SweepStore store(dir.path, options);
    ASSERT_TRUE(store.put("a", makeSnapshot("vectoradd", 1)));
    ASSERT_TRUE(store.put("b", makeSnapshot("vectoradd", 2)));
    ASSERT_TRUE(store.put("c", makeSnapshot("vectoradd", 3)));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_FALSE(store.contains("a"));
    EXPECT_TRUE(store.contains("b"));
    EXPECT_TRUE(store.contains("c"));
    // The evicted entry's file is gone too, not just unindexed.
    std::size_t entry_files = 0;
    for (const auto &de :
         std::filesystem::directory_iterator(dir.path))
        if (de.path().extension() == ".entry")
            ++entry_files;
    EXPECT_EQ(entry_files, 2u);
}

TEST(Store, ManifestIsAdvisoryAndRegenerated)
{
    ScopedDir dir("manifest");
    {
        SweepStore store(dir.path);
        ASSERT_TRUE(store.put("k", makeSnapshot("vectoradd", 1)));
    }
    std::filesystem::path manifest = dir.path / "manifest";
    ASSERT_TRUE(std::filesystem::exists(manifest));
    {
        std::ifstream in(manifest);
        std::string first_line;
        std::getline(in, first_line);
        EXPECT_EQ(first_line, SweepStore::manifest_magic);
    }
    // The manifest is advisory: deleting it must not lose entries.
    std::filesystem::remove(manifest);
    SweepStore reopened(dir.path);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(std::filesystem::exists(manifest));
}

TEST(Session, WarmStoreRepeatSweepCapturesNothing)
{
    ScopedDir dir("warm");
    SweepSpec spec = powerOnlySweep();

    std::string cold_table;
    {
        SweepSession session(EngineOptions().withJobs(2),
                             store::openStore(dir.path));
        SweepResult cold = session.submit(spec);
        EXPECT_EQ(cold.telemetry().captured, 1u);
        EXPECT_EQ(cold.telemetry().replayed, 1u);
        cold_table = cold.formatTable();
    }
    // A new session (a new process, as far as the store can tell)
    // must answer the identical sweep entirely from disk.
    SweepSession warm(EngineOptions().withJobs(2),
                      store::openStore(dir.path));
    SweepResult result = warm.submit(spec);
    EXPECT_EQ(result.telemetry().captured, 0u);
    EXPECT_EQ(result.telemetry().replayed, 2u);
    EXPECT_EQ(result.formatTable(), cold_table);
}

TEST(Session, StoreServedTableIsByteIdenticalToFreshRun)
{
    ScopedDir dir("identity");
    SweepSpec spec = powerOnlySweep();

    // Reference: no store, no memoization — every scenario simulated.
    SweepSession fresh(EngineOptions().withJobs(1).withMemoize(false));
    std::string fresh_table = fresh.submit(spec).formatTable();

    SweepSession writer(EngineOptions().withJobs(1),
                        store::openStore(dir.path));
    EXPECT_EQ(writer.submit(spec).formatTable(), fresh_table);

    SweepSession reader(EngineOptions().withJobs(1),
                        store::openStore(dir.path));
    SweepResult served = reader.submit(spec);
    EXPECT_EQ(served.telemetry().captured, 0u);
    EXPECT_EQ(served.formatTable(), fresh_table);
}

TEST(Session, ConcurrentIdenticalJobsCaptureOnce)
{
    ScopedDir dir("dedupe");
    SweepSpec spec = powerOnlySweep(); // one snapshot key

    auto session = std::make_shared<SweepSession>(
        EngineOptions().withJobs(2), store::openStore(dir.path));

    // Two clients race the same sweep through one session. The
    // in-flight dedupe must elect exactly one capturer; the other
    // job blocks on the claim and replays.
    SweepResult results[2];
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&, c] {
            results[c] = session->submit(spec);
        });
    for (std::thread &t : clients)
        t.join();

    std::size_t captured = results[0].telemetry().captured +
                           results[1].telemetry().captured;
    std::size_t replayed = results[0].telemetry().replayed +
                           results[1].telemetry().replayed;
    EXPECT_EQ(captured, 1u); // one key, one capture across both jobs
    EXPECT_EQ(replayed, 2 * spec.size() - 1);
    EXPECT_EQ(results[0].formatTable(), results[1].formatTable());
    EXPECT_EQ(session->storeHandle()->size(), 1u);
}

TEST(Session, DedupeWorksWithoutAStore)
{
    SweepSpec spec = powerOnlySweep();
    auto session =
        std::make_shared<SweepSession>(EngineOptions().withJobs(2));

    SweepResult results[2];
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&, c] {
            results[c] = session->submit(spec);
        });
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(results[0].telemetry().captured +
                  results[1].telemetry().captured,
              1u);
    EXPECT_EQ(results[0].formatTable(), results[1].formatTable());
}

TEST(Session, RejectsIncoherentOptions)
{
    // The session owns the snapshot hooks.
    EngineOptions hooked;
    hooked.memoize = true;
    hooked.snapshot_source = [](const sim::Scenario &) {
        return nullptr;
    };
    EXPECT_THROW(SweepSession{hooked}, FatalError);

    // A store without memoization could never be consulted.
    ScopedDir dir("reject");
    EXPECT_THROW(SweepSession(EngineOptions().withMemoize(false),
                              store::openStore(dir.path)),
                 FatalError);
}

TEST(Session, StoreKeySeparatesTraceVariants)
{
    SweepSession plain{EngineOptions()};
    SweepSession traced(EngineOptions().withTrace(true, 1e-5));

    sim::Scenario scenario;
    scenario.config = GpuConfig::gt240();
    scenario.workload = "vectoradd";
    EXPECT_NE(plain.storeKey(scenario), traced.storeKey(scenario));

    // Same options, same scenario -> same content address.
    SweepSession plain2{EngineOptions()};
    EXPECT_EQ(plain.storeKey(scenario), plain2.storeKey(scenario));
}
