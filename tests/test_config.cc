/**
 * @file
 * Unit tests for the GPU configuration schema: Table II preset
 * values, XML round-tripping, sparse overrides, and validation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/gpu_config.hh"

using namespace gpusimpow;

TEST(GpuConfig, Gt240MatchesTableII)
{
    GpuConfig c = GpuConfig::gt240();
    EXPECT_EQ(c.numCores(), 12u);
    EXPECT_EQ(c.core.max_threads, 768u);
    EXPECT_EQ(c.core.fp_lanes, 8u);
    EXPECT_NEAR(c.clocks.uncore_hz, 550e6, 1.0);
    EXPECT_NEAR(c.clocks.shader_to_uncore, 2.47, 1e-9);
    EXPECT_EQ(c.core.maxWarps(), 24u);
    EXPECT_FALSE(c.core.scoreboard);
    EXPECT_FALSE(c.l2.present);
    EXPECT_EQ(c.tech.node_nm, 40u);
}

TEST(GpuConfig, Gtx580MatchesTableII)
{
    GpuConfig c = GpuConfig::gtx580();
    EXPECT_EQ(c.numCores(), 16u);
    EXPECT_EQ(c.core.max_threads, 1536u);
    EXPECT_EQ(c.core.fp_lanes, 32u);
    EXPECT_NEAR(c.clocks.uncore_hz, 882e6, 1.0);
    EXPECT_NEAR(c.clocks.shader_to_uncore, 2.0, 1e-9);
    EXPECT_EQ(c.core.maxWarps(), 48u);
    EXPECT_TRUE(c.core.scoreboard);
    EXPECT_TRUE(c.l2.present);
    EXPECT_EQ(c.l2.total_bytes, 768u * 1024u);
}

TEST(GpuConfig, EmpiricalConstantsMatchPaper)
{
    GpuConfig c = GpuConfig::gt240();
    EXPECT_NEAR(c.calib.int_op_pj, 40.0, 1e-9);    // SectionIII-D
    EXPECT_NEAR(c.calib.fp_op_pj, 75.0, 1e-9);
    EXPECT_NEAR(c.calib.global_sched_w, 3.34, 1e-9);
    EXPECT_NEAR(c.calib.cluster_base_w, 0.692, 1e-9);
    EXPECT_NEAR(c.calib.core_base_dyn_w, 0.199, 1e-9);  // Table V
    EXPECT_NEAR(c.calib.undiff_core_static_w, 0.886, 1e-9);
}

TEST(GpuConfig, ShaderClockDerivedFromRatio)
{
    GpuConfig c = GpuConfig::gt240();
    EXPECT_NEAR(c.clocks.shaderHz(), 550e6 * 2.47, 1.0);
}

TEST(GpuConfig, XmlRoundTripPreservesEveryField)
{
    GpuConfig a = GpuConfig::gtx580();
    a.core.sagu_count = 2;
    a.calib.sfu_op_pj = 123.5;
    a.dram.idd4r = 0.321;
    GpuConfig b = GpuConfig::fromXml(a.toXml());
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.numCores(), a.numCores());
    EXPECT_EQ(b.core.sagu_count, 2u);
    EXPECT_NEAR(b.calib.sfu_op_pj, 123.5, 1e-9);
    EXPECT_NEAR(b.dram.idd4r, 0.321, 1e-9);
    EXPECT_EQ(b.core.scoreboard, a.core.scoreboard);
    EXPECT_EQ(b.l2.total_bytes, a.l2.total_bytes);
    EXPECT_EQ(b.core.sched_policy, a.core.sched_policy);
    // Round-trip twice: serialization must be stable.
    EXPECT_EQ(b.toXml(), GpuConfig::fromXml(b.toXml()).toXml());
}

TEST(GpuConfig, SparseXmlKeepsDefaults)
{
    GpuConfig c = GpuConfig::fromXml(
        "<gpusimpow><core><param name=\"int_lanes\" value=\"16\"/>"
        "<param name=\"fp_lanes\" value=\"16\"/></core></gpusimpow>");
    EXPECT_EQ(c.core.int_lanes, 16u);
    EXPECT_EQ(c.core.warp_size, 32u);         // default kept
    EXPECT_EQ(c.clusters, 4u);                // default kept
}

TEST(GpuConfig, RejectsWrongRootElement)
{
    EXPECT_THROW(GpuConfig::fromXml("<mcpat/>"), FatalError);
}

TEST(GpuConfig, ValidationCatchesBadGeometry)
{
    GpuConfig c = GpuConfig::gt240();
    c.core.max_threads = 100;   // not a warp multiple
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.core.smem_bytes = c.core.smem_l1_bytes + 1;
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.dram.channels = 0;
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.core.sched_policy = "magic";
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);
}

TEST(GpuConfig, ValidationCatchesNonPhysicalTemperature)
{
    // A temperature of 0 K (or below, or far above any silicon
    // rating) would silently feed pow(2, dT/20) garbage into every
    // leakage figure; validate() must reject it loudly instead.
    GpuConfig c = GpuConfig::gt240();
    c.tech.temperature = 0.0;
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.tech.temperature = -273.0;
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.tech.temperature = 500.1;
    EXPECT_THROW(GpuConfig::fromXml(c.toXml()), FatalError);

    c = GpuConfig::gt240();
    c.tech.temperature = 400.0; // hot but representable
    EXPECT_NO_THROW(GpuConfig::fromXml(c.toXml()));
}

TEST(GpuConfig, LOneDSplitDerived)
{
    GpuConfig c = GpuConfig::gtx580();
    EXPECT_EQ(c.core.lOneDBytes(), 65536u - 49152u);
    GpuConfig d = GpuConfig::gt240();
    EXPECT_EQ(d.core.lOneDBytes(), 0u);
}

TEST(GpuConfig, FromXmlFileReportsMissingFile)
{
    EXPECT_THROW(GpuConfig::fromXmlFile("/nonexistent/file.xml"),
                 FatalError);
}
