/**
 * @file
 * Measurement-testbed tests: DAQ quantization, signal-chain error
 * bounds (the paper's +-3.2 %), trace recording, kernel windowing,
 * both static-power estimators, and the virtual hardware's
 * calibrated behaviour.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "measure/signal_chain.hh"
#include "measure/testbed.hh"
#include "measure/validation.hh"
#include "measure/virtual_hw.hh"
#include "power/chip_power.hh"

using namespace gpusimpow;
using namespace gpusimpow::measure;

TEST(Quantize, RoundsToLsbAndClamps)
{
    double lsb = 10.0 / 65536.0;
    EXPECT_NEAR(quantize(1.0, 5.0, 16), 1.0, lsb);
    EXPECT_NEAR(quantize(7.0, 5.0, 16), 5.0, 1e-12);
    EXPECT_NEAR(quantize(-7.0, 5.0, 16), -5.0, 1e-12);
    EXPECT_EQ(quantize(0.0, 5.0, 16), 0.0);
}

TEST(RailChannelTest, MeasurementWithinDatasheetBounds)
{
    // Over many boards (seeds), measured V and I stay within the
    // combined gain-error bounds of divider/AD8210/DAQ.
    ChainSpec spec;
    RailSpec rail{"12V", 12.0, 0.020, 1.0};
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        SplitMix64 rng(seed);
        RailChannel ch(rail, spec, rng);
        double v = ch.measureVoltage(12.0);
        EXPECT_NEAR(v, 12.0, 12.0 * 0.018 + 0.01) << "seed " << seed;
        double i = ch.measureCurrent(3.0);
        // AD8210 offset of 1 mV -> 1e-3/(20*0.02) = 2.5 mA extra.
        EXPECT_NEAR(i, 3.0, 3.0 * 0.006 + 0.004) << "seed " << seed;
    }
}

TEST(RailChannelTest, PowerErrorBoundNearPaperValue)
{
    ChainSpec spec;
    RailSpec rail{"12V", 12.0, 0.020, 1.0};
    SplitMix64 rng(5);
    RailChannel ch(rail, spec, rng);
    // Divider 1.7 % + AD8210 0.5 % + 2x DAQ gain: ~2.2 % worst case
    // per rail (the paper quotes +-3.2 % including margins).
    EXPECT_NEAR(ch.powerErrorBound(), 0.022, 0.002);
}

TEST(TestbedTest, RailSetsMatchCards)
{
    Testbed gt240(GpuConfig::gt240(), 1);
    EXPECT_EQ(gt240.channels().size(), 2u);   // slot rails only
    Testbed gtx580(GpuConfig::gtx580(), 1);
    EXPECT_EQ(gtx580.channels().size(), 4u);  // + 2 aux cables
    // Aux cables use 10 mOhm shunts (SectionIV-A).
    EXPECT_NEAR(gtx580.channels()[2].rail().sense_ohm, 0.010, 1e-12);
    // Rail shares sum to one.
    double share = 0.0;
    for (const auto &ch : gtx580.channels())
        share += ch.rail().share;
    EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(TestbedTest, RecordsAtDaqRate)
{
    Testbed tb(GpuConfig::gt240(), 2);
    Trace t = tb.record([](double) { return 30.0; }, 10e-3);
    EXPECT_NEAR(static_cast<double>(t.samples.size()), 312.0, 2.0);
    // Steady 30 W measured within chain accuracy.
    double avg = Testbed::analyze(t, 0.0, 10e-3).avg_power_w;
    EXPECT_NEAR(avg, 30.0, 30.0 * 0.035);
}

TEST(TestbedTest, WindowSelectsKernelPhase)
{
    Testbed tb(GpuConfig::gt240(), 3);
    auto power = [](double t) { return t < 5e-3 ? 20.0 : 40.0; };
    Trace trace = tb.record(power, 10e-3);
    double lo = Testbed::analyze(trace, 0.0, 5e-3).avg_power_w;
    double hi = Testbed::analyze(trace, 5e-3, 10e-3).avg_power_w;
    EXPECT_NEAR(lo, 20.0, 1.5);
    EXPECT_NEAR(hi, 40.0, 2.5);
}

TEST(TestbedTest, SupplyFilterSmearsSteps)
{
    Testbed tb(GpuConfig::gt240(), 4);
    auto power = [](double t) { return t < 5e-3 ? 20.0 : 40.0; };
    Trace sharp = tb.record(power, 10e-3, 0.0);
    Trace filtered = tb.record(power, 10e-3, 1e-3);
    // Right after the step the filtered trace lags.
    double sharp_after =
        Testbed::analyze(sharp, 5.1e-3, 6e-3).avg_power_w;
    double filt_after =
        Testbed::analyze(filtered, 5.1e-3, 6e-3).avg_power_w;
    EXPECT_GT(sharp_after, filt_after + 3.0);
}

TEST(Estimators, FrequencyExtrapolationIsExactOnLinearModel)
{
    // P(f) = 10 + 20*(f/f0): P(1.0)=30, P(0.8)=26 -> S=10.
    EXPECT_NEAR(extrapolateStatic(30.0, 26.0, 0.8), 10.0, 1e-9);
}

TEST(Estimators, IdleRatioMethod)
{
    EXPECT_NEAR(idleRatioStatic(90.0, 0.9026), 81.234, 1e-3);
}

TEST(VirtualHw, StaticTruthBelowModel)
{
    GpuConfig cfg = GpuConfig::gt240();
    power::GpuPowerModel model(cfg);
    VirtualHardware hw(cfg, model.staticPower(), 1);
    EXPECT_NEAR(hw.trueStaticPower(), 17.6, 0.2);   // paper real
    EXPECT_LT(hw.trueStaticPower(), model.staticPower());
}

TEST(VirtualHw, Gt240SignStructure)
{
    GpuConfig cfg = GpuConfig::gt240();
    VirtualHardware hw(cfg, 17.9, 0x5EED);
    // The simulator overestimates every GT240 kernel except
    // BlackScholes and scalarProd (SectionV-A).
    EXPECT_GT(hw.kernelDynamicFactor("BlackScholes"), 1.0);
    EXPECT_GT(hw.kernelDynamicFactor("scalarProd"), 1.0);
    for (const char *k : {"vectorAdd", "matrixMul", "hotspot", "bfs1",
                          "kmeans1", "mergeSort1", "needle1"}) {
        EXPECT_LT(hw.kernelDynamicFactor(k), 1.0) << k;
    }
}

TEST(VirtualHw, MicrobenchFactorsAreUnity)
{
    GpuConfig cfg = GpuConfig::gt240();
    VirtualHardware hw(cfg, 17.9, 0x5EED);
    EXPECT_DOUBLE_EQ(hw.kernelDynamicFactor("microInt"), 1.0);
    EXPECT_DOUBLE_EQ(hw.kernelDynamicFactor("microFp"), 1.0);
    EXPECT_DOUBLE_EQ(hw.kernelDynamicFactor("occupancy"), 1.0);
}

TEST(VirtualHw, FactorsDeterministicPerKernel)
{
    GpuConfig cfg = GpuConfig::gt240();
    VirtualHardware a(cfg, 17.9, 7);
    VirtualHardware b(cfg, 17.9, 7);
    EXPECT_DOUBLE_EQ(a.kernelDynamicFactor("hotspot"),
                     b.kernelDynamicFactor("hotspot"));
    EXPECT_NE(a.kernelDynamicFactor("hotspot"),
              a.kernelDynamicFactor("bfs1"));
}

TEST(VirtualHw, IdleStatesMatchPaper)
{
    GpuConfig cfg = GpuConfig::gt240();
    power::GpuPowerModel model(cfg);
    VirtualHardware hw(cfg, model.staticPower(), 1);
    // Gated idle ~15 W; between kernels ~19.5 W (SectionV-A).
    EXPECT_NEAR(hw.idlePower(), 15.0, 1.5);
    EXPECT_NEAR(hw.preKernelPower(), 19.5, 1.5);
    EXPECT_LT(hw.idlePower(), hw.preKernelPower());

    GpuConfig cfg580 = GpuConfig::gtx580();
    power::GpuPowerModel model580(cfg580);
    VirtualHardware hw580(cfg580, model580.staticPower(), 1);
    EXPECT_NEAR(hw580.preKernelPower(), 90.0, 4.0);
}

TEST(Validation, StaticEstimatesMatchPaperMethodology)
{
    GpuConfig gt240 = GpuConfig::gt240();
    power::GpuPowerModel m240(gt240);
    ValidationHarness h240(gt240, m240.staticPower(), 0x5EED);
    // Frequency extrapolation lands near the true 17.6 W.
    EXPECT_NEAR(h240.measuredStatic(), 17.6, 0.8);

    GpuConfig gtx580 = GpuConfig::gtx580();
    power::GpuPowerModel m580(gtx580);
    ValidationHarness h580(gtx580, m580.staticPower(), 0x5EED);
    // Idle-ratio method lands near the paper's ~80 W estimate.
    EXPECT_NEAR(h580.measuredStatic(), 80.0, 3.0);
}

TEST(Validation, TracePowerSumsRails)
{
    Trace t;
    t.samples.push_back({0.0, {12.0, 3.3}, {2.0, 1.0}});
    EXPECT_NEAR(t.powerAt(0), 12.0 * 2.0 + 3.3 * 1.0, 1e-12);
}
