/**
 * @file
 * Unit tests for the XML configuration parser.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/xml.hh"

using namespace gpusimpow;

TEST(Xml, ParsesSimpleDocument)
{
    auto root = xml::parse("<gpu><core n=\"12\"/></gpu>");
    EXPECT_EQ(root->name, "gpu");
    ASSERT_EQ(root->children.size(), 1u);
    EXPECT_EQ(root->children[0]->name, "core");
    EXPECT_EQ(root->children[0]->attribute("n"), "12");
}

TEST(Xml, ParsesDeclarationAndComments)
{
    auto root = xml::parse(
        "<?xml version=\"1.0\"?>\n"
        "<!-- top comment -->\n"
        "<a><!-- inner --><b/></a>\n"
        "<!-- trailing -->");
    EXPECT_EQ(root->name, "a");
    ASSERT_EQ(root->children.size(), 1u);
}

TEST(Xml, ParsesTextContent)
{
    auto root = xml::parse("<a>  hello world  </a>");
    EXPECT_EQ(root->text, "hello world");
}

TEST(Xml, DecodesEntities)
{
    auto root = xml::parse("<a v=\"&lt;&amp;&gt;&quot;&apos;\"/>");
    EXPECT_EQ(root->attribute("v"), "<&>\"'");
}

TEST(Xml, SingleQuotedAttributes)
{
    auto root = xml::parse("<a v='x y'/>");
    EXPECT_EQ(root->attribute("v"), "x y");
}

TEST(Xml, NestedChildrenInOrder)
{
    auto root = xml::parse("<r><a/><b/><a/></r>");
    ASSERT_EQ(root->children.size(), 3u);
    EXPECT_EQ(root->children[0]->name, "a");
    EXPECT_EQ(root->children[1]->name, "b");
    EXPECT_EQ(root->childrenNamed("a").size(), 2u);
    EXPECT_NE(root->child("b"), nullptr);
    EXPECT_EQ(root->child("c"), nullptr);
}

TEST(Xml, RejectsMismatchedTags)
{
    EXPECT_THROW(xml::parse("<a><b></a></b>"), FatalError);
}

TEST(Xml, RejectsUnterminatedElement)
{
    EXPECT_THROW(xml::parse("<a><b>"), FatalError);
}

TEST(Xml, RejectsTrailingContent)
{
    EXPECT_THROW(xml::parse("<a/><b/>"), FatalError);
}

TEST(Xml, RejectsUnknownEntity)
{
    EXPECT_THROW(xml::parse("<a v=\"&bogus;\"/>"), FatalError);
}

TEST(Xml, RejectsUnquotedAttribute)
{
    EXPECT_THROW(xml::parse("<a v=12/>"), FatalError);
}

TEST(Xml, MissingAttributeIsFatalButOrGivesDefault)
{
    auto root = xml::parse("<a x=\"1\"/>");
    EXPECT_TRUE(root->hasAttribute("x"));
    EXPECT_FALSE(root->hasAttribute("y"));
    EXPECT_EQ(root->attributeOr("y", "dflt"), "dflt");
    EXPECT_THROW(root->attribute("y"), FatalError);
}

TEST(Xml, RoundTripsThroughToString)
{
    auto root = xml::parse(
        "<cfg name=\"a&amp;b\"><x v=\"1\"/><y>text</y></cfg>");
    auto again = xml::parse(root->toString());
    EXPECT_EQ(again->name, "cfg");
    EXPECT_EQ(again->attribute("name"), "a&b");
    EXPECT_EQ(again->child("y")->text, "text");
}

TEST(Xml, EscapeCoversAllFive)
{
    EXPECT_EQ(xml::escape("<&>\"'"),
              "&lt;&amp;&gt;&quot;&apos;");
}

TEST(Xml, ErrorsIncludeLineNumbers)
{
    try {
        xml::parse("<a>\n<b>\n</c>\n</a>");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}
