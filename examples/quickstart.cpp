/**
 * @file
 * Quickstart: configure a GT240, run a vectoradd kernel, print the
 * power and area report. This is the minimal end-to-end GPUSimPow
 * flow of Fig. 1: GPU configuration + GPGPU code in, power & area
 * results out.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    Logger::instance().setLevel(LogLevel::Inform);
    try {
        // 1. Pick a GPU configuration (Table II preset or XML file).
        GpuConfig cfg = GpuConfig::gt240();
        std::printf("Simulating %s (%s)\n\n", cfg.name.c_str(),
                    cfg.chip.c_str());

        Simulator sim(cfg);

        // 2. Prepare a workload: upload inputs, build the kernel.
        auto wl = workloads::makeWorkload("vectoradd");
        auto launches = wl->prepare(sim.gpu());

        // 3. Run each kernel and evaluate power.
        for (const auto &kl : launches) {
            KernelRun run = sim.runKernel(kl.prog, kl.launch);
            std::printf("kernel %-14s %8lu cycles  %8.3f us  "
                        "%6.2f W dynamic  %6.2f W total\n",
                        kl.label.c_str(),
                        static_cast<unsigned long>(run.perf.cycles),
                        run.perf.time_s * 1e6,
                        run.report.dynamicPower(),
                        run.report.totalPower());
            std::printf("\nComponent breakdown:\n%s\n",
                        run.report.format().c_str());
        }

        // 4. Check functional correctness against the host reference.
        std::printf("verification: %s\n",
                    wl->verify(sim.gpu()) ? "PASS" : "FAIL");

        // 5. Architectural queries (Table IV style).
        std::printf("static power: %.2f W, area: %.1f mm2\n",
                    sim.powerModel().staticPower(),
                    sim.powerModel().area());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
