/**
 * @file
 * Programmer-facing example (SectionI: "GPGPU programmers gain an
 * effective way to investigate their GPGPU codes ... to optimize
 * power consumption from a software perspective"): three
 * implementations of the same reduction-style computation with
 * different memory behaviour, compared on runtime, power, and — the
 * number a battery- or bill-conscious programmer cares about —
 * energy per kernel.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"

using namespace gpusimpow;
using namespace gpusimpow::perf;

namespace {

Operand R(unsigned r) { return Operand::reg(r); }
Operand I(uint32_t v) { return Operand::imm(v); }

constexpr unsigned n_elems = 65536;
constexpr uint32_t in_addr = 0x100000;
constexpr uint32_t out_addr = 0x800000;

/**
 * Variant A ("naive"): each thread strides by 1 element through its
 * own contiguous chunk — adjacent threads are 256 B apart, so every
 * warp load splits into many transactions.
 */
KernelProgram
chunkedSum()
{
    const unsigned per_thread = 16;
    KernelBuilder b("sum_chunked", 12);
    b.imad(0, Operand::special(SpecialReg::CtaIdX),
           Operand::special(SpecialReg::NTidX),
           Operand::special(SpecialReg::TidX));
    b.imul(1, R(0), I(per_thread * 4));
    b.iadd(1, R(1), I(in_addr));
    b.mov(2, I(0));
    b.mov(3, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(3), I(per_thread));
    b.braIf(0, false, done, done);
    b.ldg(4, R(1));
    b.iadd(2, R(2), R(4));
    b.iadd(1, R(1), I(4));
    b.iadd(3, R(3), I(1));
    b.jump(loop);
    b.bind(done);
    b.imad(5, R(0), I(4), I(out_addr));
    b.stg(R(5), R(2));
    b.exit();
    return b.finish();
}

/**
 * Variant B ("coalesced"): threads stride by the grid width, so a
 * warp always touches one contiguous 128-byte segment.
 */
KernelProgram
coalescedSum(unsigned total_threads)
{
    const unsigned per_thread = 16;
    KernelBuilder b("sum_coalesced", 12);
    b.imad(0, Operand::special(SpecialReg::CtaIdX),
           Operand::special(SpecialReg::NTidX),
           Operand::special(SpecialReg::TidX));
    b.imad(1, R(0), I(4), I(in_addr));
    b.mov(2, I(0));
    b.mov(3, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(3), I(per_thread));
    b.braIf(0, false, done, done);
    b.ldg(4, R(1));
    b.iadd(2, R(2), R(4));
    b.iadd(1, R(1), I(total_threads * 4));
    b.iadd(3, R(3), I(1));
    b.jump(loop);
    b.bind(done);
    b.imad(5, R(0), I(4), I(out_addr));
    b.stg(R(5), R(2));
    b.exit();
    return b.finish();
}

/**
 * Variant C ("smem"): coalesced loads staged through shared memory
 * with a per-block tree reduction — fewer global stores, more SMEM
 * and barrier activity.
 */
KernelProgram
smemSum(unsigned total_threads)
{
    const unsigned per_thread = 16;
    const unsigned threads = 256;
    KernelBuilder b("sum_smem", 12, threads * 4);
    b.imad(0, Operand::special(SpecialReg::CtaIdX),
           Operand::special(SpecialReg::NTidX),
           Operand::special(SpecialReg::TidX));
    b.imad(1, R(0), I(4), I(in_addr));
    b.mov(2, I(0));
    b.mov(3, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(3), I(per_thread));
    b.braIf(0, false, done, done);
    b.ldg(4, R(1));
    b.iadd(2, R(2), R(4));
    b.iadd(1, R(1), I(total_threads * 4));
    b.iadd(3, R(3), I(1));
    b.jump(loop);
    b.bind(done);
    b.mov(6, Operand::special(SpecialReg::TidX));
    b.imul(7, R(6), I(4));
    b.sts(R(7), R(2));
    b.bar();
    for (unsigned stride = threads / 2; stride > 0; stride /= 2) {
        auto skip = b.newLabel();
        b.setp(1, Cmp::GE, CmpType::U32, R(6), I(stride));
        b.braIf(1, false, skip, skip);
        b.lds(8, R(7));
        b.lds(9, R(7), static_cast<int32_t>(stride * 4));
        b.iadd(8, R(8), R(9));
        b.sts(R(7), R(8));
        b.bind(skip);
        b.bar();
    }
    auto no_store = b.newLabel();
    b.setp(2, Cmp::NE, CmpType::U32, R(6), I(0));
    b.braIf(2, false, no_store, no_store);
    b.lds(8, I(0));
    b.imad(5, Operand::special(SpecialReg::CtaIdX), I(4), I(out_addr));
    b.stg(R(5), R(8));
    b.bind(no_store);
    b.exit();
    return b.finish();
}

} // namespace

int
main()
{
    try {
        GpuConfig cfg = GpuConfig::gt240();
        Simulator sim(cfg);

        std::vector<uint32_t> data(n_elems);
        uint64_t want = 0;
        for (unsigned i = 0; i < n_elems; ++i) {
            data[i] = i * 2654435761u;
            want += data[i];
        }
        sim.gpu().memcpyToDevice(in_addr, data.data(), n_elems * 4);

        const unsigned total_threads = n_elems / 16;
        LaunchConfig lc;
        lc.grid = {total_threads / 256, 1};
        lc.block = {256, 1};

        struct Variant
        {
            const char *name;
            KernelProgram prog;
            bool per_block_output;
        };
        Variant variants[] = {
            {"chunked (uncoalesced)", chunkedSum(), false},
            {"coalesced", coalescedSum(total_threads), false},
            {"coalesced + smem tree", smemSum(total_threads), true},
        };

        std::printf("=== Energy impact of memory-access optimization "
                    "(%s, %u-element reduction) ===\n",
                    cfg.name.c_str(), n_elems);
        std::printf("%-24s %10s %10s %10s %12s\n", "variant",
                    "time[us]", "power[W]", "energy[mJ]", "txn/warp-ld");

        for (Variant &v : variants) {
            KernelRun run = sim.runKernel(v.prog, lc);
            // Check the result: sum all partials on the host.
            unsigned outputs =
                v.per_block_output ? lc.grid.count() : total_threads;
            std::vector<uint32_t> partial(outputs);
            sim.gpu().memcpyToHost(partial.data(), out_addr,
                                   outputs * 4);
            uint64_t got = 0;
            for (uint32_t p : partial)
                got += p;
            if ((got & 0xffffffffu) != (want & 0xffffffffu))
                fatal("wrong sum from variant ", v.name);

            uint64_t lookups = 0;
            uint64_t txns = 0;
            for (const auto &c : run.perf.activity.cores) {
                lookups += c.coalescer_lookups;
                txns += c.coalescer_transactions;
            }
            double power = run.report.totalPower() + run.report.dram_w;
            std::printf("%-24s %10.1f %10.2f %10.3f %12.2f\n", v.name,
                        run.perf.time_s * 1e6, power,
                        power * run.perf.time_s * 1e3,
                        static_cast<double>(txns) / lookups);
        }
        std::printf("\nCoalescing cuts memory transactions per warp "
                    "load and with them runtime and energy; the SMEM "
                    "tree trades global stores for cheap SMEM traffic."
                    "\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
