/**
 * @file
 * Cooling-solution design study: for every workload, find the
 * *cheapest* cooling solution (largest heatsink-to-ambient
 * resistance, i.e. the smallest/cheapest cooler) that still avoids
 * thermal throttling at the full core clock — steady-state junction
 * temperatures converged and below the throttle limit.
 *
 * This inverts the usual simulation question: instead of "how hot
 * does this cooler run", it answers "how much cooler do I have to
 * buy for this workload", per workload, by bisecting the cooling
 * scale of the thermal subsystem.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "sim/engine.hh"
#include "thermal/thermal.hh"

using namespace gpusimpow;

namespace {

/** True when the workload runs unthrottled at this cooling scale. */
bool
coolEnough(const GpuConfig &base, const std::string &workload,
           double cooling_scale)
{
    sim::Scenario s;
    s.config = base;
    s.config.thermal.enabled = true;
    s.config.thermal.cooling_scale = cooling_scale;
    s.config.thermal.throttle = false;
    s.workload = workload;
    s.verify = false; // temperature question only; skip the re-run
    sim::ScenarioResult r = sim::SimulationEngine().runScenario(s);
    return r.thermal_converged &&
           r.t_max_k <= s.config.thermal.t_limit_k;
}

void
designCard(const char *card, const GpuConfig &base)
{
    const std::vector<std::string> workloads = {
        "vectoradd", "scalarprod", "matmul", "blackscholes"};
    // Search window: 0.2x (a big liquid loop) to 4x (a bare plate).
    constexpr double scale_lo = 0.2, scale_hi = 4.0;

    std::printf("=== %s (t_limit %.0f K, ambient %.0f K) ===\n", card,
                base.thermal.t_limit_k, base.thermal.ambient_k);
    std::printf("%-14s %13s %13s %s\n", "workload", "max scale",
                "R_hs [K/W]", "cheapest preset that fits");
    for (const std::string &wl : workloads) {
        if (!coolEnough(base, wl, scale_lo)) {
            std::printf("%-14s %13s %13s %s\n", wl.c_str(), "-", "-",
                        "no cooling in range avoids throttling");
            continue;
        }
        double lo = scale_lo, hi = scale_hi;
        if (coolEnough(base, wl, scale_hi)) {
            lo = scale_hi;
        } else {
            for (int i = 0; i < 24; ++i) {
                double mid = 0.5 * (lo + hi);
                (coolEnough(base, wl, mid) ? lo : hi) = mid;
            }
        }

        // Translate the scale into the effective resistance and the
        // cheapest named preset still inside the budget.
        sim::Scenario probe;
        probe.config = base;
        probe.workload = wl;
        probe.verify = false;
        double area =
            sim::SimulationEngine().runScenario(probe).area_mm2;
        double r_hs = thermal::stockHeatsinkResistance(area) * lo;
        const char *preset = "(none fits)";
        double best = -1.0;
        for (const std::string &name :
             ThermalConfig::coolingPresets()) {
            ThermalConfig tc;
            tc.applyCooling(name);
            if (tc.cooling_scale <= lo && tc.cooling_scale > best) {
                best = tc.cooling_scale;
                preset = name == "stock"        ? "stock"
                         : name == "constrained" ? "constrained"
                                                 : "liquid";
            }
        }
        std::printf("%-14s %13.3f %13.3f %s\n", wl.c_str(), lo, r_hs,
                    preset);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    try {
        designCard("GeForce GT240", GpuConfig::gt240());
        designCard("GeForce GTX580", GpuConfig::gtx580());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "thermal_design: %s\n", e.what());
        return 1;
    }
}
