/**
 * @file
 * Architect-facing example (SectionIII-A: "architects can evaluate
 * design choices early from a power perspective"): explore a slice
 * of the GPU design space — core count x process node — under a
 * fixed workload, reporting performance, power, energy, and
 * energy-delay product for every point.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Design-space exploration: GT240-class "
                    "architecture, matmul workload ===\n");
        std::printf("%8s %6s %6s %10s %10s %10s %12s\n", "node",
                    "cores", "Vdd", "time[us]", "power[W]",
                    "energy[mJ]", "EDP[uJ*s]");

        for (unsigned node : {40u, 28u}) {
            for (unsigned clusters : {2u, 4u, 6u}) {
                GpuConfig cfg = GpuConfig::gt240();
                cfg.clusters = clusters;
                cfg.tech.node_nm = node;
                cfg.tech.vdd = -1.0;   // node-nominal supply

                Simulator sim(cfg);
                auto wl = workloads::makeWorkload("matmul");
                auto seq = wl->prepare(sim.gpu());
                KernelRun run =
                    sim.runKernel(seq[0].prog, seq[0].launch);
                if (!wl->verify(sim.gpu()))
                    fatal("matmul verification failed");

                double power =
                    run.report.totalPower() + run.report.dram_w;
                double energy = power * run.perf.time_s;
                double edp = energy * run.perf.time_s;
                std::printf("%5u nm %6u %6.2f %10.1f %10.2f %10.3f "
                            "%12.4f\n",
                            node, cfg.numCores(),
                            sim.powerModel().techNode().vdd,
                            run.perf.time_s * 1e6, power,
                            energy * 1e3, edp * 1e9);
            }
        }
        std::printf("\nReading the table: more cores buy runtime at "
                    "higher power; the smaller node cuts both, but "
                    "leakage limits the static floor.\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
