/**
 * @file
 * Architect-facing example (SectionIII-A: "architects can evaluate
 * design choices early from a power perspective"): explore a slice
 * of the GPU design space — core count x process node — under a
 * fixed workload, reporting performance, power, energy, and
 * energy-delay product for every point.
 *
 * The exploration runs as one SweepSpec on the batch simulation
 * engine: the engine expands the cartesian product, simulates every
 * point on a worker pool, and returns the results in deterministic
 * order, so the printed table is identical no matter how many worker
 * threads the host machine offers.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Design-space exploration: GT240-class "
                    "architecture, matmul workload ===\n");

        sim::SweepSpec spec;
        for (unsigned clusters : {2u, 4u, 6u}) {
            GpuConfig cfg = GpuConfig::gt240();
            cfg.clusters = clusters;
            spec.configs.push_back(cfg);
        }
        spec.tech_nodes = {40u, 28u};
        spec.workloads = {"matmul"};

        sim::SimulationEngine engine;
        sim::SweepResult result = engine.run(spec);

        std::printf("(%zu design points on %u worker threads)\n\n",
                    result.size(), engine.jobs());
        std::printf("%8s %6s %6s %10s %10s %10s %12s\n", "node",
                    "cores", "Vdd", "time[us]", "power[W]",
                    "energy[mJ]", "EDP[uJ*s]");

        // Rows are config-major; print node-major like the paper's
        // design-space tables (all core counts per node together).
        for (unsigned node : spec.tech_nodes) {
            for (const sim::ScenarioResult &r : result.rows()) {
                if (r.scenario.config.tech.node_nm != node)
                    continue;
                if (!r.verified)
                    fatal("matmul verification failed for ",
                          r.scenario.label);
                std::printf("%5u nm %6u %6.2f %10.1f %10.2f %10.3f "
                            "%12.4f\n",
                            r.scenario.config.tech.node_nm,
                            r.scenario.config.numCores(), r.vdd,
                            r.time_s * 1e6, r.avg_power_w,
                            r.energy_j * 1e3, r.edp() * 1e9);
            }
        }
        std::printf("\nReading the table: more cores buy runtime at "
                    "higher power; the smaller node cuts both, but "
                    "leakage limits the static floor.\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
