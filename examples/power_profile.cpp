/**
 * @file
 * Power-profiling example (the paper's SectionV-B use case): run any
 * benchmark kernel on either evaluated GPU and print the full
 * hierarchical power profile — overall chip, per top-level component,
 * and per core-internal component with percentages, exactly the kind
 * of breakdown Table V shows for blackscholes.
 *
 * Usage: power_profile [workload] [gt240|gtx580]
 */

#include <cstdio>
#include <cstring>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main(int argc, char **argv)
{
    try {
        std::string wl_name = argc > 1 ? argv[1] : "blackscholes";
        std::string gpu_name = argc > 2 ? argv[2] : "gt240";
        GpuConfig cfg = gpu_name == "gtx580" ? GpuConfig::gtx580()
                                             : GpuConfig::gt240();

        Simulator sim(cfg);
        auto wl = workloads::makeWorkload(wl_name);
        auto launches = wl->prepare(sim.gpu());

        for (const auto &kl : launches) {
            KernelRun run = sim.runKernel(kl.prog, kl.launch);
            double total = run.report.totalPower();
            std::printf("== %s on %s: %.2f W total (%.2f W static, "
                        "%.2f W dynamic, %.2f W DRAM) over %.0f us ==\n",
                        kl.label.c_str(), cfg.name.c_str(), total,
                        run.report.staticPower(),
                        run.report.dynamicPower(), run.report.dram_w,
                        run.perf.time_s * 1e6);

            // Top level with percentages (Table V upper half).
            for (const char *path :
                 {"Cores", "NoC", "Memory Controller",
                  "PCIe Controller"}) {
                const power::PowerNode *n = run.report.gpu.find(path);
                double p = n->totalStatic() + n->totalDynamic();
                std::printf("  %-20s %7.3f W  (%4.1f%%)\n", path, p,
                            p / total * 100.0);
            }
            // Core internals (Table V lower half).
            const power::PowerNode *core =
                run.report.gpu.find("Cores/Core0");
            double core_total =
                core->totalStatic() + core->totalDynamic();
            std::printf("  one core: %.3f W\n", core_total);
            for (const auto &child : core->children) {
                double p = child.totalStatic() + child.totalDynamic();
                std::printf("    %-20s %7.3f W  (%4.1f%%)\n",
                            child.name.c_str(), p,
                            p / core_total * 100.0);
            }
        }
        std::printf("verification: %s\n",
                    wl->verify(sim.gpu()) ? "PASS" : "FAIL");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
