/**
 * @file
 * Energy-optimization example: sweep a DVFS ladder (paired
 * voltage/frequency operating points) for several workloads on the
 * GT240 and report, per workload, the operating point that minimizes
 * energy and the one that minimizes energy-delay product — the
 * textbook use of a V^2*f power model (paper Eq. 1).
 *
 * Compute-bound kernels keep scaling with the core clock, so their
 * minimum-energy point sits low on the ladder; memory-bound kernels
 * stop gaining runtime from higher clocks while dynamic power keeps
 * rising, which pushes their optimum lower still. Because DRAM
 * background power keeps integrating over a longer runtime, the
 * whole-card optimum can sit above the chip-only optimum.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Minimum-energy DVFS operating point per "
                    "workload (GeForce GT240) ===\n");

        // A realistic ladder: supply tracks frequency sublinearly,
        // and every rung respects the alpha-power feasibility law
        // (clock <= OperatingPoint::maxFreqScale() at its supply).
        std::vector<OperatingPoint> ladder = {
            {0.80, 0.60}, {0.85, 0.70}, {0.90, 0.80}, {0.95, 0.90},
            {1.00, 1.00}, {1.05, 1.04}, {1.10, 1.09},
        };
        for (const OperatingPoint &op : ladder)
            if (!op.isFeasible())
                fatal("ladder point ", op.label(),
                      " exceeds the feasible clock at its supply");

        sim::SweepSpec spec;
        spec.configs = {GpuConfig::gt240()};
        spec.operating_points = ladder;
        spec.workloads = {"vectoradd", "scalarprod", "matmul",
                          "blackscholes"};

        sim::SimulationEngine engine;
        sim::SweepResult result = engine.run(spec);
        std::printf("(%zu scenarios on %u worker threads)\n\n",
                    result.size(), engine.jobs());

        std::printf("%-14s %-12s %10s %11s   %-12s %12s\n", "workload",
                    "minE point", "time[us]", "energy[mJ]",
                    "minEDP point", "EDP[uJ*s]");
        for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
            const sim::ScenarioResult *best_e = nullptr;
            const sim::ScenarioResult *best_edp = nullptr;
            for (std::size_t p = 0; p < ladder.size(); ++p) {
                const sim::ScenarioResult &r =
                    result.at(p * spec.workloads.size() + w);
                if (!r.verified)
                    fatal("verification failed for ",
                          r.scenario.label);
                if (!best_e || r.energy_j < best_e->energy_j)
                    best_e = &r;
                if (!best_edp || r.edp() < best_edp->edp())
                    best_edp = &r;
            }
            std::printf("%-14s %-12s %10.1f %11.3f   %-12s %12.4f\n",
                        spec.workloads[w].c_str(),
                        best_e->scenario.op.label().c_str(),
                        best_e->time_s * 1e6, best_e->energy_j * 1e3,
                        best_edp->scenario.op.label().c_str(),
                        best_edp->edp() * 1e9);
        }

        std::printf("\nFull ladder (energy per point):\n");
        std::fputs(result.formatTable().c_str(), stdout);
        std::printf("\nReading the table: energy bottoms out where "
                    "the dynamic V^2*f saving still outruns the "
                    "static+DRAM energy growth from the longer "
                    "runtime; EDP favors a higher point than pure "
                    "energy.\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
