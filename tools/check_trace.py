#!/usr/bin/env python3
"""Validate the observability artifacts a sweep emits.

Checks the Chrome trace JSON written by ``--trace-out`` and the
metrics JSON written by ``--metrics-json`` against the contracts
documented in docs/observability.md:

Trace (``--trace FILE``):
  * top level is ``{"displayTimeUnit": ..., "traceEvents": [...]}``;
  * every event is an ``X`` (complete) or ``M`` (metadata) event with
    the required fields; ``ts``/``dur`` are non-negative numbers;
  * per thread, spans nest properly: sorted by (start, -duration),
    each span lies entirely inside the enclosing open span. The ring
    stores spans in *completion* order, so per-thread *end* times must
    be monotonically non-decreasing in file order;
  * every named thread (``M``/``thread_name``) is unique per tid.

Metrics (``--metrics FILE``):
  * schema is ``gpusimpow-metrics-1``;
  * the full ``engine/*`` counter set is present (the engine registers
    every instrument up front, so even unused paths report zeros);
  * ``--expect name=value`` asserts an exact counter value;
  * ``--expect-min name=value`` asserts a counter is at least value;
  * ``--require-counter NAME`` asserts a counter is present. Unlike
    the engine set, subsystem counters (e.g. ``thermal/*``) register
    on first use, so only runs that exercise the subsystem assert
    them;
  * ``--require-span NAME`` (with --trace) asserts at least one span.

Exit status 0 = all checks pass, 1 = any violation (each printed).
"""

from __future__ import annotations

import argparse
import json
import sys

# Counters the engine registers unconditionally at the top of every
# sweep; their absence means the producer and this checker drifted.
REQUIRED_ENGINE_COUNTERS = (
    "engine/batch_groups",
    "engine/scenarios",
    "engine/scenarios_captured",
    "engine/scenarios_governed",
    "engine/scenarios_replayed",
    "engine/simulator_builds",
    "engine/simulator_recycles",
    "engine/snapshot_cache_hit",
    "engine/snapshot_cache_insert_race",
    "engine/snapshot_cache_miss",
    "engine/worker_busy_ns",
    "engine/worker_idle_ns",
)


class Checker:
    def __init__(self):
        self.errors = []

    def fail(self, message):
        self.errors.append(message)

    def require(self, cond, message):
        if not cond:
            self.fail(message)
        return cond


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_trace(doc, chk, require_spans):
    if not chk.require(isinstance(doc, dict), "trace: top level not an object"):
        return
    events = doc.get("traceEvents")
    if not chk.require(isinstance(events, list),
                       "trace: missing traceEvents array"):
        return
    chk.require("displayTimeUnit" in doc, "trace: missing displayTimeUnit")

    spans_by_tid = {}
    names_by_tid = {}
    last_end_by_tid = {}
    span_names = set()
    for i, ev in enumerate(events):
        where = "trace: event %d" % i
        if not chk.require(isinstance(ev, dict), where + ": not an object"):
            continue
        ph = ev.get("ph")
        if ph == "M":
            chk.require(ev.get("name") == "thread_name",
                        where + ": unknown metadata event %r" % ev.get("name"))
            tid = ev.get("tid")
            label = ev.get("args", {}).get("name")
            chk.require(isinstance(label, str) and label,
                        where + ": thread_name without a label")
            chk.require(tid not in names_by_tid,
                        where + ": duplicate thread_name for tid %r" % tid)
            names_by_tid[tid] = label
            continue
        if not chk.require(ph == "X",
                           where + ": unexpected phase %r" % ph):
            continue
        for field in ("name", "pid", "tid", "ts", "dur"):
            if not chk.require(field in ev, where + ": missing %r" % field):
                break
        else:
            name, tid = ev["name"], ev["tid"]
            ts, dur = ev["ts"], ev["dur"]
            ok = chk.require(_is_number(ts) and ts >= 0,
                             where + ": bad ts %r" % ts)
            ok = chk.require(_is_number(dur) and dur >= 0,
                             where + ": bad dur %r" % dur) and ok
            if not ok:
                continue
            span_names.add(name)
            end = ts + dur
            # Ring order is span *completion* order: per-thread end
            # times must never go backwards in file order.
            prev_end = last_end_by_tid.get(tid)
            if prev_end is not None:
                chk.require(end >= prev_end,
                            where + ": tid %r end time %s precedes the "
                            "previous span's end %s (ring order broken)"
                            % (tid, end, prev_end))
            last_end_by_tid[tid] = end
            spans_by_tid.setdefault(tid, []).append((ts, end, name, i))

    # Proper nesting per thread: sweep spans sorted by (start, -dur)
    # with a stack of open end-times; every span must close before the
    # span that encloses it does.
    for tid, spans in sorted(spans_by_tid.items(), key=lambda kv: str(kv[0])):
        stack = []
        for ts, end, name, i in sorted(spans,
                                       key=lambda s: (s[0], -(s[1] - s[0]))):
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0]:
                chk.fail("trace: event %d (%s) on tid %r overlaps the "
                         "enclosing span %s without nesting inside it"
                         % (i, name, tid, stack[-1][1]))
            stack.append((end, name))

    for required in require_spans:
        chk.require(required in span_names,
                    "trace: no span named %r (saw: %s)"
                    % (required, ", ".join(sorted(span_names)) or "none"))


def check_metrics(doc, chk, expectations, min_expectations,
                  require_counters):
    if not chk.require(isinstance(doc, dict),
                       "metrics: top level not an object"):
        return
    chk.require(doc.get("schema") == "gpusimpow-metrics-1",
                "metrics: bad schema %r" % doc.get("schema"))
    counters = doc.get("counters")
    if not chk.require(isinstance(counters, dict),
                       "metrics: missing counters object"):
        return
    for section in ("gauges", "histograms"):
        chk.require(isinstance(doc.get(section), dict),
                    "metrics: missing %s object" % section)
    for name in REQUIRED_ENGINE_COUNTERS:
        chk.require(name in counters,
                    "metrics: required counter %r missing" % name)
    for name in require_counters:
        chk.require(name in counters,
                    "metrics: required counter %r missing" % name)
    for name, value in counters.items():
        chk.require(_is_number(value) and value >= 0,
                    "metrics: counter %r has bad value %r" % (name, value))
    for name, expected in expectations:
        if not chk.require(name in counters,
                           "metrics: expected counter %r absent" % name):
            continue
        chk.require(counters[name] == expected,
                    "metrics: %s = %s, expected %s"
                    % (name, counters[name], expected))
    for name, minimum in min_expectations:
        if not chk.require(name in counters,
                           "metrics: expected counter %r absent" % name):
            continue
        chk.require(counters[name] >= minimum,
                    "metrics: %s = %s, expected at least %s"
                    % (name, counters[name], minimum))


def _load_json(path, what, chk):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        chk.fail("%s: cannot load %s: %s" % (what, path, exc))
        return None


def main(argv):
    parser = argparse.ArgumentParser(
        description="validate gpusimpow trace/metrics artifacts")
    parser.add_argument("--trace", help="Chrome trace JSON (--trace-out)")
    parser.add_argument("--metrics", help="metrics JSON (--metrics-json)")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="assert an exact counter value "
                             "(repeatable; requires --metrics)")
    parser.add_argument("--expect-min", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="assert a counter value of at least VALUE "
                             "(repeatable; requires --metrics)")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="assert a counter is present "
                             "(repeatable; requires --metrics)")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="assert the trace contains a span "
                             "(repeatable; requires --trace)")
    args = parser.parse_args(argv)

    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    def parse_value_args(items, flag):
        parsed = []
        for item in items:
            name, sep, value = item.partition("=")
            if not sep:
                parser.error("%s takes NAME=VALUE, got %r" % (flag, item))
            try:
                parsed.append((name, int(value)))
            except ValueError:
                parser.error("%s value must be an integer: %r"
                             % (flag, item))
        return parsed

    expectations = parse_value_args(args.expect, "--expect")
    min_expectations = parse_value_args(args.expect_min, "--expect-min")
    if ((expectations or min_expectations or args.require_counter)
            and not args.metrics):
        parser.error("counter assertions require --metrics")
    if args.require_span and not args.trace:
        parser.error("--require-span requires --trace")

    chk = Checker()
    if args.trace:
        doc = _load_json(args.trace, "trace", chk)
        if doc is not None:
            check_trace(doc, chk, args.require_span)
    if args.metrics:
        doc = _load_json(args.metrics, "metrics", chk)
        if doc is not None:
            check_metrics(doc, chk, expectations, min_expectations,
                          args.require_counter)

    for err in chk.errors:
        print(err)
    if chk.errors:
        print("check_trace: %d violation(s)" % len(chk.errors),
              file=sys.stderr)
        return 1
    checked = [w for w, p in (("trace", args.trace),
                              ("metrics", args.metrics)) if p]
    print("check_trace: %s ok" % " + ".join(checked))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
