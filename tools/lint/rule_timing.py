"""Single-clock discipline for wall-time measurement.

All engine wall-time comes from ``obs::monotonicNs()`` (src/obs/) so
spans, telemetry and progress displays share one epoch and one clock —
a raw ``std::chrono::steady_clock`` read elsewhere produces timestamps
that cannot be correlated with the trace. This rule flags raw
``std::chrono::steady_clock`` uses outside the sanctioned homes:

  * src/obs/ owns the clock (monotonicNs() is the one wrapper);
  * bench/ times with raw chrono on purpose — the harness must not
    depend on the observability layer it measures.

Escape hatch for a deliberate raw read (e.g. a test exercising clock
behaviour itself): `// lint: timing-ok(<reason>)` above the line.
"""

from __future__ import annotations

import re

from lint_common import Finding, line_of_offset

RULE = "timing-clock"
KIND = "timing-ok"

_CLOCK_RE = re.compile(r"\bstd\s*::\s*chrono\s*::\s*steady_clock\b")

# Directories where raw steady_clock reads are the sanctioned idiom.
_EXEMPT_PREFIXES = ("src/obs/", "bench/")


def check(files):
    findings = []
    for path, sf in sorted(files.items()):
        if path.startswith(_EXEMPT_PREFIXES):
            continue
        for m in _CLOCK_RE.finditer(sf.code):
            line = line_of_offset(sf.code, m.start())
            if sf.annotated(KIND, line):
                continue
            findings.append(Finding(
                path, line, RULE,
                "raw std::chrono::steady_clock read; use "
                "obs::monotonicNs() so timestamps share the trace "
                "epoch, or annotate with lint: timing-ok(reason)"))
    return findings
