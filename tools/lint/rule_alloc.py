"""Ownership discipline: no naked allocation outside src/common.

Everything above the common layer manages memory through containers
and smart pointers (make_unique/make_shared); a raw `new` or a
C allocation call is either a leak waiting to happen or a hidden
ownership transfer the reader cannot see. src/common may need raw
allocation for low-level utilities; everywhere else requires

    // lint: alloc-ok(<reason>)

above the allocation to pass.
"""

from __future__ import annotations

import re

from lint_common import Finding, line_of_offset

RULE = "naked-alloc"
KIND = "alloc-ok"

EXEMPT_PREFIX = "src/common/"

_NEW_ANY_RE = re.compile(r"\bnew\b")
_C_ALLOC_RE = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")


def check(files):
    findings = []
    for path, sf in sorted(files.items()):
        if not path.startswith("src/") or path.startswith(EXEMPT_PREFIX):
            continue
        for m in _NEW_ANY_RE.finditer(sf.code):
            line = line_of_offset(sf.code, m.start())
            if sf.annotated(KIND, line):
                continue
            findings.append(Finding(
                path, line, RULE,
                "naked `new` outside src/common; use make_unique/"
                "make_shared or a container, or annotate "
                "`lint: alloc-ok(<reason>)`"))
        for m in _C_ALLOC_RE.finditer(sf.code):
            line = line_of_offset(sf.code, m.start())
            if sf.annotated(KIND, line):
                continue
            findings.append(Finding(
                path, line, RULE,
                "C allocation call %s() outside src/common; RAII "
                "owns memory in this tree, or annotate "
                "`lint: alloc-ok(<reason>)`" % m.group(1)))
    return findings
