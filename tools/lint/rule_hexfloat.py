"""Hex-float discipline at serialization boundaries.

Bit-identical snapshot replay depends on doubles round-tripping
exactly through the text serializations: writers must use the C99
hex-float form (strformat("%a", v) + readDoubleToken), never decimal
formatting, which rounds. This rule scans the bodies of serializer
functions (any function whose name contains `serialize`) in src/ and
flags decimal float formatting:

  * %e / %f / %g conversions in format strings (hex %a is fine);
  * std::to_string (decimal, locale-independent but rounding);
  * std::setprecision / std::fixed / std::scientific stream state.

Escape hatch for a serializer that intentionally writes approximate
decimal text: `// lint: float-text-ok(<reason>)` above the line.
"""

from __future__ import annotations

import re

from lint_common import Finding, line_of_offset, matching_brace

RULE = "hexfloat-serialization"
KIND = "float-text-ok"

_FN_RE = re.compile(r"\b(\w*serialize\w*)\s*\(", re.IGNORECASE)
# A decimal float conversion inside a literal: % flags width .prec [efg]
_DECIMAL_FMT_RE = re.compile(r"%[-+ #0]*[\d*]*(?:\.[\d*]+)?[hlL]*[efgEFG]\b")
_BAD_CALL_RES = [
    (re.compile(r"\bstd\s*::\s*to_string\s*\("),
     "std::to_string rounds to decimal; write doubles with "
     "strformat(\"%a\", v)"),
    (re.compile(r"\bsetprecision\s*\("),
     "setprecision implies decimal formatting; serialize doubles as "
     "hex floats"),
    (re.compile(r"\bstd\s*::\s*(fixed|scientific)\b"),
     "decimal stream formatting in a serializer; use hex floats"),
]


def _serializer_bodies(sf):
    """(name, body_start_offset, body_text_raw, body_text_code)."""
    bodies = []
    for m in _FN_RE.finditer(sf.code):
        # Definition = parameter list followed by `{` before any `;`.
        open_paren = sf.code.find("(", m.start())
        depth = 0
        i = open_paren
        while i < len(sf.code):
            if sf.code[i] == "(":
                depth += 1
            elif sf.code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(sf.code) and sf.code[j] not in "{;":
            j += 1
        if j >= len(sf.code) or sf.code[j] != "{":
            continue
        close = matching_brace(sf.code, j)
        if close < 0:
            continue
        bodies.append((m.group(1), j, sf.raw[j:close], sf.code[j:close]))
    return bodies


def check(files):
    findings = []
    for path, sf in sorted(files.items()):
        if not path.startswith("src/"):
            continue
        for name, start, raw_body, code_body in _serializer_bodies(sf):
            base = line_of_offset(sf.code, start)

            def _report(offset_in_body, message, in_raw):
                text = raw_body if in_raw else code_body
                line = base + text.count("\n", 0, offset_in_body)
                if not sf.annotated(KIND, line):
                    findings.append(Finding(
                        path, line, RULE,
                        "in %s(): %s" % (name, message)))

            # Format strings live inside literals: scan the raw body
            # but skip its comments by masking them out first.
            masked = _mask_comments(raw_body)
            for fm in _DECIMAL_FMT_RE.finditer(masked):
                _report(fm.start(),
                        "decimal float conversion '%s' in a "
                        "serializer format string; use %%a so the "
                        "value round-trips bit-exactly"
                        % fm.group(0), True)
            for rex, msg in _BAD_CALL_RES:
                for cm in rex.finditer(code_body):
                    _report(cm.start(), msg, False)
    return findings


def _mask_comments(text):
    """Blank // and /* */ comments, keep strings (format specifiers)."""
    out = []
    i, n = 0, len(text)
    in_line = in_block = in_str = False
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if in_line:
            out.append(c if c == "\n" else " ")
            if c == "\n":
                in_line = False
            i += 1
        elif in_block:
            if c == "*" and nxt == "/":
                out.append("  ")
                in_block = False
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif in_str:
            out.append(c)
            if c == "\\" and nxt:
                out.append(nxt)
                i += 2
            else:
                if c == '"':
                    in_str = False
                i += 1
        else:
            if c == "/" and nxt == "/":
                in_line = True
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                in_block = True
                out.append("  ")
                i += 2
            else:
                if c == '"':
                    in_str = True
                out.append(c)
                i += 1
    return "".join(out)
