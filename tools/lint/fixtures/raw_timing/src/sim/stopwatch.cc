#include <chrono>

namespace gpusimpow {

// Raw clock read in engine code: must be flagged.
uint64_t
wallNow()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// Annotation without a reason does not bless the read.
// lint: timing-ok()
uint64_t
wallNowUnjustified()
{
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

} // namespace gpusimpow
