#include <chrono>

// bench/ is exempt: the harness times with raw chrono on purpose.
int
main()
{
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::steady_clock::now();
    return t1 < t0;
}
