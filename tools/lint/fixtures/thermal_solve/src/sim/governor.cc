#include <vector>

namespace gpusimpow {

// Dense reference solve in engine code: must be flagged.
std::vector<double>
steadyProbe(const std::vector<double> &powers)
{
    return net.solveLinearReference(powers);
}

// A home-grown eliminator named after the oracle: also flagged.
void
solveDense(std::vector<double> &a, std::vector<double> &b)
{
    (void)a;
    (void)b;
}

// Annotation without a reason does not bless the call.
// lint: thermal-solve-ok()
std::vector<double>
steadyProbeUnjustified(const std::vector<double> &powers)
{
    return net.solveLinearReference(powers);
}

// Factored production solve: fine anywhere.
std::vector<double>
steadyFast(const std::vector<double> &powers)
{
    return net.solveLinear(powers);
}

} // namespace gpusimpow
