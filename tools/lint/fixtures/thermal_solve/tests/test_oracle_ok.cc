#include <vector>

namespace gpusimpow {

// tests/ may call the reference oracle freely: this is exactly what
// it is exposed for (bit-identity proofs against the factored path).
std::vector<double>
oracle(const std::vector<double> &powers)
{
    return net.solveLinearReference(powers);
}

} // namespace gpusimpow
