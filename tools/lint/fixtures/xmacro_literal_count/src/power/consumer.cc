// Fixture: coefficient-row consumer with a hard-coded counter count.
double f(const double *values, const double *coeff)
{
    return dotCountersRow(values, coeff, 46);
}
