// Fixture: hand-enumerated counter index beside a correct X-macro.
#define GSP_CORE_ACTIVITY_FIELDS(X)                                     \
    X(cycles_resident)                                                  \
    X(decodes)                                                          \
    X(writebacks)

struct CoreCounterIndex
{
    enum : unsigned {
        cycles_resident,
        decodes,
        writebacks,
    };
};
