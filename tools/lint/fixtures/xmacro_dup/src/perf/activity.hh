// Fixture: duplicate counter in the X-macro field list.
#define GSP_CORE_ACTIVITY_FIELDS(X)                                     \
    X(cycles_resident)                                                  \
    X(decodes)                                                          \
    X(cycles_resident)                                                  \
    X(writebacks)
