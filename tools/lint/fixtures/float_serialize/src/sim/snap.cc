// Fixture: serializer writing doubles as rounded decimal text.
#include <ostream>
#include <string>

void
serializeSample(std::ostream &out, double t0, double t1)
{
    out << strformat("%g", t0) << '\n';
    out << std::to_string(t1) << '\n';
}
