// Fixture: serializer that does not embed the field-count constants.
#include <ostream>

void
ChipActivity::serialize(std::ostream &out) const
{
    out << "chip-activity " << cores.size() << '\n';
}
