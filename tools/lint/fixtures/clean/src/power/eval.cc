// Fixture: coefficient-row consumer using the layout constants.
double f(const double *values, const double *coeff)
{
    return dotCountersRow(values, coeff, core_activity_fields);
}
