// Fixture: justified unordered container, lookup-only; smart-pointer
// ownership; an annotated raw allocation.
#include <memory>
#include <string>
#include <unordered_map>

struct Snapshot { double value = 0.0; };

double lookup(const std::string &key)
{
    // lint: unordered-ok(find/emplace only, never iterated; results
    // are addressed by key, so hash order is unobservable)
    std::unordered_map<std::string, Snapshot> cache;
    auto it = cache.find(key);
    return it == cache.end() ? 0.0 : it->second.value;
}

std::unique_ptr<Snapshot> makeSnapshot()
{
    return std::make_unique<Snapshot>();
}

void *alignedScratch()
{
    // lint: alloc-ok(page-aligned DMA scratch handed to the driver,
    // freed by releaseScratch below)
    return std::malloc(4096);
}
