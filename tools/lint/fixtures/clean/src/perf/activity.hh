// Fixture: the happy path of every contract rule.
#define GSP_CORE_ACTIVITY_FIELDS(X)                                     \
    X(cycles_resident)                                                  \
    X(decodes)                                                          \
    X(writebacks)

#define GSP_MEM_ACTIVITY_FIELDS(X)                                      \
    X(l2_reads)                                                         \
    X(l2_misses)

constexpr unsigned core_activity_fields =
#define X(name) 1 +
    GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    0;

constexpr unsigned mem_activity_fields =
#define X(name) 1 +
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    0;

struct CoreCounterIndex
{
    enum : unsigned {
#define X(name) name,
        GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    };
};

struct MemCounterIndex
{
    enum : unsigned {
#define X(name) name,
        GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    };
};
