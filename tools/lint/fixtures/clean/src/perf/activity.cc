// Fixture: serializer embedding the schema counts, hex-float doubles.
#include <ostream>

void
ChipActivity::serialize(std::ostream &out) const
{
    out << "chip-activity " << core_activity_fields << ' '
        << mem_activity_fields << '\n';
    out << "totals " << strformat("%a", elapsed_s) << '\n';
    // lint: float-text-ok(human-readable echo, never parsed back)
    out << "# approx " << strformat("%.1f W", total_w) << '\n';
}
