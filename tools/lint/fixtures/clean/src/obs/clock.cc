#include <chrono>

namespace gpusimpow {
namespace obs {

// src/obs/ owns the clock: raw steady_clock reads are sanctioned here.
uint64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace obs
} // namespace gpusimpow
