#include <chrono>

// A deliberate raw read with a justification is accepted anywhere.
// lint: timing-ok(this test compares the raw clock against the wrapper)
static uint64_t
rawClockNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

int
main()
{
    return rawClockNs() == 0;
}
