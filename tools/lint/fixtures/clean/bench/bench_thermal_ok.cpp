#include <vector>

namespace gpusimpow {

// A benchmark's pre-factorization replica with a justified
// annotation: the sanctioned escape hatch.
// lint: thermal-solve-ok(pre-PR cost replica for the speedup gate)
std::vector<double>
preFactorReplica(const std::vector<double> &powers)
{
    return net.solveLinearReference(powers);
}

// Factored production solve needs no blessing.
std::vector<double>
fastPath(const std::vector<double> &powers)
{
    return net.solveLinear(powers);
}

} // namespace gpusimpow
