// Fixture: unannotated unordered container in a result path, plus
// two hash-ordered iterations over it.
#include <string>
#include <unordered_map>

double sumAll()
{
    std::unordered_map<std::string, double> totals;
    totals.emplace("a", 1.0);
    double sum = 0.0;
    for (const auto &kv : totals)
        sum += kv.second;
    for (auto it = totals.begin(); it != totals.end(); ++it)
        sum += it->second;
    return sum;
}
