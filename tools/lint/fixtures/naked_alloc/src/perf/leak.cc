// Fixture: raw allocations outside src/common.
#include <cstdlib>

struct Page { unsigned char bytes[4096]; };

Page *grabPage()
{
    void *scratch = std::malloc(64);
    (void)scratch;
    return new Page();
}
