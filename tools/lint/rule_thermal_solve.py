"""Factored-solve discipline for the thermal linear system.

The thermal network's conductance matrix is constant for a network's
lifetime, so ThermalNetwork factors it once (partial-pivoted LU in
the constructor) and every production solve is an O(n^2) substitution
through ``solveLinear``/``solveLinearInto`` — bit-identical to dense
elimination by construction. A from-scratch dense elimination outside
the solver re-pays the O(n^3) factorization per call and, worse,
forks the arithmetic the bit-identity contract is proven against.
This rule flags the dense-elimination escape hatches outside their
sanctioned homes:

  * ``solveDense`` — the file-local reference eliminator inside
    src/thermal/thermal.cc (nothing else may grow one);
  * ``solveLinearReference`` — its public face, exposed only so tests
    and benchmarks can prove the factored path bit-identical and
    price the pre-factorization cost.

Sanctioned homes: src/thermal/ owns both; tests/ may call the
reference oracle freely (that is what it is for).

Escape hatch for a deliberate use elsewhere (e.g. a benchmark's
pre-factorization replica): `// lint: thermal-solve-ok(<reason>)`
above the line.
"""

from __future__ import annotations

import re

from lint_common import Finding, line_of_offset

RULE = "thermal-solve"
KIND = "thermal-solve-ok"

_DENSE_RE = re.compile(r"\b(solveDense|solveLinearReference)\b")

# Directories where dense elimination is the sanctioned idiom.
_EXEMPT_PREFIXES = ("src/thermal/", "tests/")


def check(files):
    findings = []
    for path, sf in sorted(files.items()):
        if path.startswith(_EXEMPT_PREFIXES):
            continue
        for m in _DENSE_RE.finditer(sf.code):
            line = line_of_offset(sf.code, m.start())
            if sf.annotated(KIND, line):
                continue
            findings.append(Finding(
                path, line, RULE,
                "dense thermal elimination (%s) outside src/thermal; "
                "solve through the factored ThermalNetwork::"
                "solveLinear, or annotate with lint: "
                "thermal-solve-ok(reason)" % m.group(1)))
    return findings
