#!/usr/bin/env python3
"""Project-contract linter: enforce repo invariants no generic tool can.

Rules (see the rule_*.py modules for the full rationale):

  xmacro-contract         single-source X-macro counter layout
  unordered-order         no hash-ordered iteration in result paths
  hexfloat-serialization  doubles cross text boundaries as hex floats
  naked-alloc             no raw new/malloc outside src/common
  timing-clock            wall-time comes from obs::monotonicNs()
  thermal-solve           dense thermal elimination stays in src/thermal

Usage:
  check_contracts.py [--root DIR]   lint the tree (default: repo root)
  check_contracts.py --self-test    run the fixture suite

Exit status 0 = clean, 1 = findings (or a failed self-test).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lint_common import SourceFile  # noqa: E402
import rule_alloc  # noqa: E402
import rule_hexfloat  # noqa: E402
import rule_thermal_solve  # noqa: E402
import rule_timing  # noqa: E402
import rule_unordered  # noqa: E402
import rule_xmacro  # noqa: E402

RULES = (rule_xmacro, rule_unordered, rule_hexfloat, rule_alloc,
         rule_timing, rule_thermal_solve)

SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = (".cc", ".hh", ".cpp", ".hpp", ".h")


def load_tree(root):
    files = {}
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if not name.endswith(SOURCE_SUFFIXES):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as fh:
                    files[rel] = SourceFile(rel, fh.read())
    return files


def run_rules(files):
    findings = []
    for rule in RULES:
        findings.extend(rule.check(files))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------- self-test
#
# Each fixture case is a miniature repo tree under fixtures/<case>/;
# the table says which rules must fire (and how often). The clean case
# exercises every rule's happy path and must produce zero findings.

SELF_TESTS = {
    "xmacro_dup": {"xmacro-contract": 1},
    "xmacro_index_drift": {"xmacro-contract": 1},
    "xmacro_literal_count": {"xmacro-contract": 1},
    "xmacro_schema": {"xmacro-contract": 2},
    "unordered_iter": {"unordered-order": 3},
    "float_serialize": {"hexfloat-serialization": 2},
    "naked_alloc": {"naked-alloc": 2},
    "raw_timing": {"timing-clock": 2},
    "thermal_solve": {"thermal-solve": 3},
    "clean": {},
}


def self_test():
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
    failures = 0
    for case, expected in sorted(SELF_TESTS.items()):
        root = os.path.join(fixtures, case)
        if not os.path.isdir(root):
            print("FAIL %-22s fixture directory missing" % case)
            failures += 1
            continue
        findings = run_rules(load_tree(root))
        got = {}
        for f in findings:
            got[f.rule] = got.get(f.rule, 0) + 1
        if got == expected:
            print("ok   %-22s %s" % (case, got or "clean"))
        else:
            failures += 1
            print("FAIL %-22s expected %s, got %s"
                  % (case, expected or "clean", got or "clean"))
            for f in findings:
                print("       " + str(f))
    if failures:
        print("self-test: %d fixture case(s) FAILED" % failures)
        return 1
    print("self-test: all %d fixture cases passed" % len(SELF_TESTS))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="gpusimpow project-contract linter")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo root "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite instead of "
                             "linting a tree")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    files = load_tree(root)
    if not files:
        print("check_contracts: no sources found under %s" % root,
              file=sys.stderr)
        return 1
    findings = run_rules(files)
    for f in findings:
        print(f)
    if findings:
        print("check_contracts: %d finding(s) in %d files"
              % (len(findings), len({f.path for f in findings})),
              file=sys.stderr)
        return 1
    print("check_contracts: %d files clean" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
