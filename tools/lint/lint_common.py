"""Shared infrastructure of the project-contract linter.

The rules enforce repo-specific invariants that generic tools
(clang-tidy, compiler warnings) cannot express: the X-macro counter
layout contract, deterministic iteration in result-producing paths,
hex-float serialization of doubles, and ownership discipline outside
src/common. Each rule module exposes

    check(files: dict[str, SourceFile]) -> list[Finding]

where the dict is keyed on the repo-relative POSIX path.

Annotation syntax (searched in the raw text, i.e. inside comments):

    // lint: unordered-ok(<reason>)
    // lint: float-text-ok(<reason>)
    // lint: alloc-ok(<reason>)

An annotation blesses findings of its kind on the same line or on the
few lines that follow it (ANNOTATION_REACH), so it can sit right above
the declaration / loop / call it justifies. A reason is mandatory —
an empty pair of parentheses does not count.
"""

from __future__ import annotations

import dataclasses
import re

# How many lines below an annotation it still applies to.
ANNOTATION_REACH = 6

# The reason may continue onto following comment lines, so accept an
# unclosed parenthesis: everything after `(` up to `)` or end-of-line
# counts as the (first line of the) reason.
_ANNOTATION_RE = re.compile(r"lint:\s*([a-z-]+-ok)\s*\(([^)]*)")


@dataclasses.dataclass
class Finding:
    """One contract violation."""

    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class SourceFile:
    """A source file plus its comment/string-stripped shadow.

    ``raw_lines`` keep annotations and string literals; ``code`` has
    comments and string/char literals replaced by spaces (newlines
    preserved) so regexes cannot match into prose; ``code_nostr``
    additionally blanks string literal *contents* are already blanked
    in ``code`` — use ``raw`` when a rule must inspect format strings.
    """

    def __init__(self, path, text):
        self.path = path
        self.raw = text
        self.raw_lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        self._annotations = self._collect_annotations()

    def _collect_annotations(self):
        anns = {}
        for i, line in enumerate(self.raw_lines, start=1):
            for m in _ANNOTATION_RE.finditer(line):
                kind, reason = m.group(1), m.group(2).strip()
                anns.setdefault(kind, []).append((i, bool(reason)))
        return anns

    def annotated(self, kind, line):
        """True if a `lint: <kind>(reason)` annotation covers `line`."""
        for ann_line, has_reason in self._annotations.get(kind, []):
            if has_reason and ann_line <= line <= ann_line + ANNOTATION_REACH:
                return True
        return False

    def annotation_without_reason(self, kind, line):
        for ann_line, has_reason in self._annotations.get(kind, []):
            if (not has_reason
                    and ann_line <= line <= ann_line + ANNOTATION_REACH):
                return ann_line
        return None


def strip_comments_and_strings(text):
    """Replace comments and string/char literal contents with spaces.

    Line structure is preserved so offsets keep mapping to the same
    line numbers. Quotes themselves are kept (so "x" becomes "...")
    to keep expressions syntactically balanced for brace matching.
    """
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                state = STRING
                out.append(c)
                i += 1
            elif c == "'":
                state = CHAR
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(c)
                i += 1
            elif c == "\n":  # unterminated; be forgiving
                state = NORMAL
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def line_of_offset(text, offset):
    """1-based line number of a character offset."""
    return text.count("\n", 0, offset) + 1


def matching_paren(text, open_pos):
    """Offset of the `)` matching the `(` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def matching_brace(text, open_pos):
    """Offset of the `}` matching the `{` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level_args(argtext):
    """Split a call's argument text on top-level commas."""
    args = []
    depth = 0
    cur = []
    for ch in argtext:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return args
