"""Deterministic iteration in result-producing paths.

Sweep results, power numbers, and serialized snapshots must be
bit-identical across runs and worker counts. Hash-ordered iteration is
the classic way to lose that: the paths that produce results
(RESULT_DIRS) may not iterate over std::unordered_map/set, and even
declaring one there requires an explicit justification:

    // lint: unordered-ok(<why hash order cannot reach results>)

above the declaration. Iterating (range-for or .begin()) needs its own
annotation at the loop — a blessed declaration does not bless a later
iteration.
"""

from __future__ import annotations

import re

from lint_common import Finding, line_of_offset

RULE = "unordered-order"
KIND = "unordered-ok"

# Repo-relative directories whose outputs reach results/serialization.
RESULT_DIRS = ("src/sim/", "src/power/", "src/perf/")

_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set)\s*<")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _in_scope(path):
    return any(path.startswith(d) for d in RESULT_DIRS)


def _declared_names(sf):
    """Variable names declared with an unordered type, with lines."""
    names = []
    for m in _DECL_RE.finditer(sf.code):
        # Walk past the template argument list to the declarator.
        i = sf.code.find("<", m.start())
        depth = 0
        while i < len(sf.code):
            if sf.code[i] == "<":
                depth += 1
            elif sf.code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = sf.code[i + 1:i + 200]
        ident = _IDENT_RE.search(tail)
        name = ident.group(0) if ident else None
        names.append((name, line_of_offset(sf.code, m.start())))
    return names


def check(files):
    findings = []
    for path, sf in sorted(files.items()):
        if not _in_scope(path):
            continue
        decls = _declared_names(sf)
        for name, line in decls:
            if sf.annotated(KIND, line):
                continue
            ann = sf.annotation_without_reason(KIND, line)
            what = ("unordered-ok annotation at line %d has no reason"
                    % ann) if ann else (
                        "std::unordered_{map,set} declared in a "
                        "result-producing path without a "
                        "`lint: unordered-ok(<reason>)` annotation")
            findings.append(Finding(
                path, line, RULE,
                what + "; use std::map / a sorted snapshot, or "
                "justify why hash order cannot leak into results"))

        names = {n for n, _ in decls if n}
        if not names:
            continue
        name_alt = "|".join(re.escape(n) for n in sorted(names))
        # Range-for over a declared unordered container (optionally
        # through *, &, or const auto bindings on the left side).
        iter_res = [
            re.compile(r"for\s*\([^;()]*:\s*\*?\s*(?:this->)?(%s)\b"
                       % name_alt),
            re.compile(r"\b(%s)\s*\.\s*c?begin\s*\(" % name_alt),
        ]
        iter_sites = {}  # line -> container name (dedupe begin/end)
        for rex in iter_res:
            for m in rex.finditer(sf.code):
                line = line_of_offset(sf.code, m.start())
                if not sf.annotated(KIND, line):
                    iter_sites.setdefault(line, m.group(1))
        for line, name in sorted(iter_sites.items()):
            findings.append(Finding(
                path, line, RULE,
                "iteration over unordered container '%s' in a "
                "result-producing path; hash order is not "
                "deterministic — sort first, switch to std::map, "
                "or annotate `lint: unordered-ok(<reason>)` at "
                "the loop" % name))
    return findings
