/**
 * @file
 * Reproduces Table I: the benchmark inventory (name, kernel count,
 * description, origin), generated from the live workload registry —
 * kernel counts are derived from the actual launch sequences.
 */

#include <cstdio>
#include <exception>
#include <set>

#include "common/logging.hh"
#include "perf/gpu.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Table I: GPGPU benchmarks used for "
                    "evaluation ===\n");
        std::printf("%-14s %8s  %-40s %s\n", "Name", "#Kernels",
                    "Description", "Origin");
        perf::Gpu gpu(GpuConfig::gt240());
        for (auto &wl : workloads::makeAllWorkloads()) {
            auto seq = wl->prepare(gpu);
            std::set<std::string> labels;
            for (const auto &kl : seq)
                labels.insert(kl.label);
            std::printf("%-14s %8zu  %-40s %s\n", wl->name().c_str(),
                        labels.size(), wl->description().c_str(),
                        wl->origin().c_str());
        }
        std::printf("\n(needle appears in Fig. 6 of the paper but not "
                    "in its Table I; it is included here.)\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
