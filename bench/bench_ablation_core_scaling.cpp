/**
 * @file
 * Ablation: core-count scaling. SectionIII-A: "GPUSimPow is able to
 * coherently simulate an architecture with a varied number of
 * cores." Sweeps the cluster count of a GT240-class chip on matmul
 * and reports runtime, power, and energy.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Ablation: core count scaling (GT240-class, "
                    "matmul 128x128) ===\n");
        std::printf("%6s %6s %10s %10s %12s %12s\n", "cores",
                    "clusters", "cycles", "time[us]", "total[W]",
                    "energy[mJ]");
        for (unsigned clusters : {1u, 2u, 4u, 6u}) {
            GpuConfig cfg = GpuConfig::gt240();
            cfg.clusters = clusters;
            // Base power constants are per cluster/core and transfer.
            Simulator sim(cfg);
            auto wl = workloads::makeWorkload("matmul", 2);
            auto seq = wl->prepare(sim.gpu());
            KernelRun run = sim.runKernel(seq[0].prog, seq[0].launch);
            if (!wl->verify(sim.gpu()))
                fatal("matmul verification failed");
            double total = run.report.totalPower() + run.report.dram_w;
            std::printf("%6u %6u %10lu %10.1f %12.2f %12.3f\n",
                        cfg.numCores(), clusters,
                        static_cast<unsigned long>(run.perf.cycles),
                        run.perf.time_s * 1e6, total,
                        total * run.perf.time_s * 1e3);
        }
        std::printf("\n(matmul at this size turns memory-bound: beyond "
                    "~6 cores runtime stops improving while power keeps "
                    "rising, so the energy-optimal core count is small "
                    "-- exactly the kind of trade-off the paper builds "
                    "GPUSimPow to expose)\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
