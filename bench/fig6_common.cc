#include "bench/fig6_common.hh"

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "measure/validation.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace gpusimpow {
namespace bench {

int
runFigure6(const GpuConfig &cfg, const char *figure_name,
           double paper_avg_err, double paper_dyn_err)
{
    std::printf("=== Figure %s: simulated vs measured power, %s ===\n",
                figure_name, cfg.name.c_str());

    Simulator sim(cfg);
    measure::ValidationHarness harness(
        cfg, sim.powerModel().staticPower(), 0x5EED);

    // Run every kernel of every benchmark; kernels executed several
    // times during a benchmark (bfs levels, needle diagonals...) are
    // averaged per label, as the paper does (SectionV-A).
    struct Agg
    {
        measure::KernelValidation sum;
        unsigned n = 0;
    };
    std::map<std::string, Agg> per_label;

    for (auto &wl : workloads::makeAllWorkloads()) {
        auto seq = wl->prepare(sim.gpu());
        for (const auto &kl : seq) {
            KernelRun run =
                sim.runKernel(kl.prog, kl.launch, true, 20e-6);
            measure::KernelValidation v =
                harness.validate(kl.label, run, kl.repeatable);
            Agg &agg = per_label[kl.label];
            if (agg.n == 0) {
                agg.sum = v;
            } else {
                agg.sum.sim_static_w += v.sim_static_w;
                agg.sum.sim_dynamic_w += v.sim_dynamic_w;
                agg.sum.sim_dram_w += v.sim_dram_w;
                agg.sum.meas_static_w += v.meas_static_w;
                agg.sum.meas_dynamic_w += v.meas_dynamic_w;
                agg.sum.kernel_s += v.kernel_s;
            }
            ++agg.n;
        }
        if (!wl->verify(sim.gpu()))
            fatal("workload ", wl->name(), " failed verification");
    }

    std::printf("%-14s %9s %9s | %9s %9s | %9s %9s | %7s\n", "kernel",
                "simStat", "simDyn", "measStat", "measDyn", "simTot",
                "measTot", "relErr");
    double sum_abs_err = 0.0;
    double sum_abs_dyn_err = 0.0;
    double max_err = 0.0;
    std::string max_err_kernel;
    unsigned n = 0;

    for (const std::string &label : workloads::figure6KernelOrder()) {
        auto it = per_label.find(label);
        GSP_ASSERT(it != per_label.end(), "kernel ", label,
                   " missing from the run");
        measure::KernelValidation v = it->second.sum;
        double scale = 1.0 / it->second.n;
        v.sim_static_w *= scale;
        v.sim_dynamic_w *= scale;
        v.sim_dram_w *= scale;
        v.meas_static_w *= scale;
        v.meas_dynamic_w *= scale;

        double err = v.relError();
        sum_abs_err += std::fabs(err);
        double dyn_err =
            ((v.sim_dynamic_w + v.sim_dram_w) - v.meas_dynamic_w) /
            v.meas_dynamic_w;
        sum_abs_dyn_err += std::fabs(dyn_err);
        if (std::fabs(err) > std::fabs(max_err)) {
            max_err = err;
            max_err_kernel = label;
        }
        ++n;
        std::printf("%-14s %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f "
                    "| %+6.1f%%\n",
                    label.c_str(), v.sim_static_w,
                    v.sim_dynamic_w + v.sim_dram_w, v.meas_static_w,
                    v.meas_dynamic_w, v.simTotal(), v.measTotal(),
                    err * 100.0);
    }

    std::printf("\naverage relative error (total power): %.1f%% "
                "(paper: %.1f%%)\n",
                sum_abs_err / n * 100.0, paper_avg_err * 100.0);
    std::printf("average relative error (dynamic only): %.1f%% "
                "(paper: %.1f%%)\n",
                sum_abs_dyn_err / n * 100.0, paper_dyn_err * 100.0);
    std::printf("maximum relative error: %+.1f%% (%s)\n",
                max_err * 100.0, max_err_kernel.c_str());
    std::printf("measurement chain error bound: +-%.1f%%\n\n",
                harness.testbed().errorBound() * 100.0);
    return 0;
}

} // namespace bench
} // namespace gpusimpow
