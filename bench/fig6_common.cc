#include "bench/fig6_common.hh"

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "measure/validation.hh"
#include "power/chip_power.hh"
#include "sim/engine.hh"
#include "workloads/workload.hh"

namespace gpusimpow {
namespace bench {

int
runFigure6(const GpuConfig &cfg, const char *figure_name,
           double paper_avg_err, double paper_dyn_err)
{
    std::printf("=== Figure %s: simulated vs measured power, %s ===\n",
                figure_name, cfg.name.c_str());

    measure::ValidationHarness harness(
        cfg, power::GpuPowerModel(cfg).staticPower(), 0x5EED);

    // The Fig. 6 campaign is one sweep: this card x every Table I
    // benchmark, traced for the measurement testbed. The engine
    // verifies each workload and hands back the kernel runs in
    // deterministic order. Each benchmark now runs on a fresh card
    // (cold caches, allocator reset) instead of inheriting state from
    // the previous one — matching the paper's per-benchmark
    // measurement runs; a few kernels shift by ~0.02 W versus the
    // shared-instance implementation this replaced.
    sim::SweepSpec spec;
    spec.configs = {cfg};
    spec.workloads = workloads::listWorkloadNames();
    sim::EngineOptions eopt;
    eopt.with_trace = true;
    eopt.sample_interval_s = 20e-6;
    sim::SimulationEngine engine(eopt);
    sim::SweepResult result = engine.run(spec);

    // Validate every kernel; kernels executed several times during a
    // benchmark (bfs levels, needle diagonals...) are averaged per
    // label, as the paper does (SectionV-A).
    struct Agg
    {
        measure::KernelValidation sum;
        unsigned n = 0;
    };
    std::map<std::string, Agg> per_label;

    for (const sim::ScenarioResult &row : result.rows()) {
        if (!row.verified)
            fatal("workload ", row.scenario.workload,
                  " failed verification");
        for (const sim::KernelResult &kr : row.kernels) {
            measure::KernelValidation v =
                harness.validate(kr.label, kr.run, kr.repeatable);
            Agg &agg = per_label[kr.label];
            if (agg.n == 0) {
                agg.sum = v;
            } else {
                agg.sum.sim_static_w += v.sim_static_w;
                agg.sum.sim_dynamic_w += v.sim_dynamic_w;
                agg.sum.sim_dram_w += v.sim_dram_w;
                agg.sum.meas_static_w += v.meas_static_w;
                agg.sum.meas_dynamic_w += v.meas_dynamic_w;
                agg.sum.kernel_s += v.kernel_s;
            }
            ++agg.n;
        }
    }

    std::printf("%-14s %9s %9s | %9s %9s | %9s %9s | %7s\n", "kernel",
                "simStat", "simDyn", "measStat", "measDyn", "simTot",
                "measTot", "relErr");
    double sum_abs_err = 0.0;
    double sum_abs_dyn_err = 0.0;
    double max_err = 0.0;
    std::string max_err_kernel;
    unsigned n = 0;

    for (const std::string &label : workloads::figure6KernelOrder()) {
        auto it = per_label.find(label);
        GSP_ASSERT(it != per_label.end(), "kernel ", label,
                   " missing from the run");
        measure::KernelValidation v = it->second.sum;
        double scale = 1.0 / it->second.n;
        v.sim_static_w *= scale;
        v.sim_dynamic_w *= scale;
        v.sim_dram_w *= scale;
        v.meas_static_w *= scale;
        v.meas_dynamic_w *= scale;

        double err = v.relError();
        sum_abs_err += std::fabs(err);
        double dyn_err =
            ((v.sim_dynamic_w + v.sim_dram_w) - v.meas_dynamic_w) /
            v.meas_dynamic_w;
        sum_abs_dyn_err += std::fabs(dyn_err);
        if (std::fabs(err) > std::fabs(max_err)) {
            max_err = err;
            max_err_kernel = label;
        }
        ++n;
        std::printf("%-14s %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f "
                    "| %+6.1f%%\n",
                    label.c_str(), v.sim_static_w,
                    v.sim_dynamic_w + v.sim_dram_w, v.meas_static_w,
                    v.meas_dynamic_w, v.simTotal(), v.measTotal(),
                    err * 100.0);
    }

    std::printf("\naverage relative error (total power): %.1f%% "
                "(paper: %.1f%%)\n",
                sum_abs_err / n * 100.0, paper_avg_err * 100.0);
    std::printf("average relative error (dynamic only): %.1f%% "
                "(paper: %.1f%%)\n",
                sum_abs_dyn_err / n * 100.0, paper_dyn_err * 100.0);
    std::printf("maximum relative error: %+.1f%% (%s)\n",
                max_err * 100.0, max_err_kernel.c_str());
    std::printf("measurement chain error bound: +-%.1f%%\n\n",
                harness.testbed().errorBound() * 100.0);
    return 0;
}

} // namespace bench
} // namespace gpusimpow
