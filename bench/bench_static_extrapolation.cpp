/**
 * @file
 * Reproduces the static-power estimation methodology of
 * SectionIV-B and the card idle states discussed in SectionV-A:
 *  - GT240: run a steady workload at stock and at 80 % clock and
 *    extrapolate linearly to 0 Hz (no dynamic power at 0 Hz per
 *    Eq. 1) -> ~17.6 W;
 *  - GTX580: the driver cannot change clocks, so multiply the
 *    between-kernels power (90 W) by the static/idle ratio found on
 *    the GT240 -> ~80 W;
 *  - idle states: GT240 ~15 W power-gated, 19.5 W around kernels
 *    (~90 % of which is static).
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "measure/validation.hh"
#include "power/chip_power.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== SectionIV-B: hardware static power "
                    "estimation ===\n\n");

        // --- GT240: frequency extrapolation ---
        GpuConfig gt240 = GpuConfig::gt240();
        power::GpuPowerModel model240(gt240);
        measure::ValidationHarness h240(gt240, model240.staticPower(),
                                        0x5EED);
        double est240 = h240.measuredStatic();
        std::printf("GT240  frequency-extrapolation estimate: %6.2f W "
                    "(true virtual-card static: %.2f W, paper real: "
                    "17.6 W)\n",
                    est240, h240.hardware().trueStaticPower());
        std::printf("GT240  idle (power gated): %6.2f W (paper: "
                    "~15 W)\n",
                    h240.hardware().idlePower());
        double pre240 = h240.hardware().preKernelPower();
        std::printf("GT240  around kernels:     %6.2f W (paper: "
                    "19.5 W), static share %.0f%% (paper: ~90%%)\n\n",
                    pre240,
                    h240.hardware().trueStaticPower() / pre240 * 100.0);

        // --- GTX580: idle-ratio method ---
        GpuConfig gtx580 = GpuConfig::gtx580();
        power::GpuPowerModel model580(gtx580);
        measure::ValidationHarness h580(gtx580, model580.staticPower(),
                                        0x5EED);
        double est580 = h580.measuredStatic();
        std::printf("GTX580 around kernels:     %6.2f W (paper: "
                    "90 W)\n",
                    h580.hardware().preKernelPower());
        std::printf("GTX580 idle-ratio estimate: %5.2f W "
                    "(true virtual-card static: %.2f W, paper "
                    "estimate: 80 W)\n",
                    est580, h580.hardware().trueStaticPower());
        std::printf("\nsimulated static power: GT240 %.1f W, GTX580 "
                    "%.1f W (Table IV)\n",
                    model240.staticPower(), model580.staticPower());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
