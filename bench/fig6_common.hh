/**
 * @file
 * Shared implementation of the Fig. 6 experiments: run all 19
 * benchmark kernels on one card, validate each against the virtual
 * hardware through the measurement testbed, and print the bar data
 * (simulated/measured static and dynamic power per kernel) plus the
 * aggregate error statistics the paper reports.
 */

#ifndef GPUSIMPOW_BENCH_FIG6_COMMON_HH
#define GPUSIMPOW_BENCH_FIG6_COMMON_HH

#include "config/gpu_config.hh"

namespace gpusimpow {
namespace bench {

/**
 * Run the full Fig. 6 experiment for one card.
 * @param cfg GPU preset
 * @param figure_name "6a" or "6b"
 * @param paper_avg_err the paper's average relative error (0.117 or
 *        0.108) printed for comparison
 * @param paper_dyn_err the paper's dynamic-only average error
 * @return 0 on success
 */
int runFigure6(const GpuConfig &cfg, const char *figure_name,
               double paper_avg_err, double paper_dyn_err);

} // namespace bench
} // namespace gpusimpow

#endif // GPUSIMPOW_BENCH_FIG6_COMMON_HH
