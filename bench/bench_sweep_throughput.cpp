/**
 * @file
 * Scaling benchmark of the batch simulation engine: runs the Table II
 * configuration sweep (GT240 + GTX580 presets x a balanced workload
 * set, 16 scenarios) with 1, 2, 4, and 8 worker threads, reports
 * wall-clock time, throughput, and speedup relative to one worker,
 * and cross-checks that every worker count produced bit-identical
 * energy results — the determinism contract of the engine.
 *
 * Scenarios are embarrassingly parallel (each worker owns a private
 * Simulator), so on a machine with >= 8 hardware threads the speedup
 * at 8 workers approaches 8x, bounded by the longest single scenario.
 */

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

namespace {

sim::SweepSpec
table2Sweep()
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.workloads = {"heartwall", "bfs",       "hotspot",
                      "scalarprod", "needle",   "vectoradd",
                      "matmul",     "blackscholes"};
    return spec;
}

double
runOnce(const sim::SweepSpec &spec, unsigned jobs,
        std::vector<double> &energies_out,
        bool reuse_simulators = true)
{
    sim::EngineOptions opt;
    opt.jobs = jobs;
    opt.reuse_simulators = reuse_simulators;
    sim::SimulationEngine engine(opt);
    auto t0 = std::chrono::steady_clock::now();
    sim::SweepResult result = engine.run(spec);
    auto t1 = std::chrono::steady_clock::now();

    energies_out.clear();
    for (const sim::ScenarioResult &r : result.rows()) {
        if (!r.verified)
            fatal("verification failed for ", r.scenario.label);
        energies_out.push_back(r.energy_j);
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    try {
        sim::SweepSpec spec = table2Sweep();
        std::size_t n = spec.size();
        std::printf("=== Sweep throughput: Table II config sweep "
                    "(%zu scenarios) ===\n", n);
        std::printf("hardware threads: %u\n\n",
                    std::thread::hardware_concurrency());

        // Warm-up: page in code and data once, outside the timing.
        std::vector<double> reference;
        runOnce(spec, 1, reference);

        std::printf("%6s %12s %16s %9s\n", "jobs", "wall[s]",
                    "scenarios/s", "speedup");
        double base_s = 0.0;
        double speedup_at_8 = 0.0;
        for (unsigned jobs : {1u, 2u, 4u, 8u}) {
            std::vector<double> energies;
            double wall_s = runOnce(spec, jobs, energies);
            if (energies != reference)
                fatal("nondeterministic sweep results at jobs=", jobs);
            if (jobs == 1)
                base_s = wall_s;
            double speedup = base_s / wall_s;
            if (jobs == 8)
                speedup_at_8 = speedup;
            std::printf("%6u %12.3f %16.2f %8.2fx\n", jobs, wall_s,
                        n / wall_s, speedup);
        }
        std::printf("\nspeedup at --jobs 8 over --jobs 1: %.2fx "
                    "(results bit-identical at every worker count)\n",
                    speedup_at_8);

        // --- Simulator reuse on workload-only sweeps ---
        // All scenarios of one config share a fingerprint, so the
        // engine recycles each worker's Simulator instead of
        // rebuilding GPU + power model per scenario. The per-scenario
        // setup saving is measured in isolation (kernel simulation
        // time would otherwise drown it), then a real workload-only
        // sweep cross-checks that both modes are bit-identical.
        constexpr int kSetupIters = 500;
        GpuConfig setup_cfg = GpuConfig::gtx580();
        auto s0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kSetupIters; ++i)
            Simulator rebuild_sim(setup_cfg);
        auto s1 = std::chrono::steady_clock::now();
        Simulator recycled(setup_cfg);
        for (int i = 0; i < kSetupIters; ++i)
            recycled.recycle();
        auto s2 = std::chrono::steady_clock::now();
        double rebuild_us = std::chrono::duration<double>(s1 - s0)
                                .count() * 1e6 / kSetupIters;
        double recycle_us = std::chrono::duration<double>(s2 - s1)
                                .count() * 1e6 / kSetupIters;
        std::printf("\n=== Simulator reuse: per-scenario setup cost "
                    "(GTX580, %d iterations) ===\n", kSetupIters);
        std::printf("%12s %14s\n", "mode", "setup[us]");
        std::printf("%12s %14.1f\n", "rebuild", rebuild_us);
        std::printf("%12s %14.1f\n", "recycle", recycle_us);
        std::printf("recycling skips %.1f%% of per-scenario setup "
                    "(%.1f us each)\n",
                    (1.0 - recycle_us / rebuild_us) * 100.0,
                    rebuild_us - recycle_us);

        sim::SweepSpec wl_spec;
        wl_spec.configs = {GpuConfig::gt240()};
        wl_spec.workloads = {"vectoradd", "scalarprod", "matmul",
                             "blackscholes"};
        std::vector<double> reuse_e, rebuild_e;
        double reuse_s = runOnce(wl_spec, 2, reuse_e, true);
        double rebuild_s = runOnce(wl_spec, 2, rebuild_e, false);
        if (reuse_e != rebuild_e)
            fatal("simulator reuse changed sweep results");
        std::printf("workload-only sweep (%zu scenarios): reuse "
                    "%.3f s vs rebuild %.3f s, results "
                    "bit-identical\n", wl_spec.size(), reuse_s,
                    rebuild_s);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
