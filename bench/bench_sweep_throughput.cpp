/**
 * @file
 * Scaling benchmark of the batch simulation engine: runs the Table II
 * configuration sweep (GT240 + GTX580 presets x a balanced workload
 * set, 16 scenarios) with 1, 2, 4, and 8 worker threads, reports
 * wall-clock time, throughput, and speedup relative to one worker,
 * and cross-checks that every worker count produced bit-identical
 * energy results — the determinism contract of the engine.
 *
 * Scenarios are embarrassingly parallel (each worker owns a private
 * Simulator), so on a machine with >= 8 hardware threads the speedup
 * at 8 workers approaches 8x, bounded by the longest single scenario.
 */

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

namespace {

sim::SweepSpec
table2Sweep()
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.workloads = {"heartwall", "bfs",       "hotspot",
                      "scalarprod", "needle",   "vectoradd",
                      "matmul",     "blackscholes"};
    return spec;
}

double
runOnce(const sim::SweepSpec &spec, unsigned jobs,
        std::vector<double> &energies_out)
{
    sim::EngineOptions opt;
    opt.jobs = jobs;
    sim::SimulationEngine engine(opt);
    auto t0 = std::chrono::steady_clock::now();
    sim::SweepResult result = engine.run(spec);
    auto t1 = std::chrono::steady_clock::now();

    energies_out.clear();
    for (const sim::ScenarioResult &r : result.rows()) {
        if (!r.verified)
            fatal("verification failed for ", r.scenario.label);
        energies_out.push_back(r.energy_j);
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    try {
        sim::SweepSpec spec = table2Sweep();
        std::size_t n = spec.size();
        std::printf("=== Sweep throughput: Table II config sweep "
                    "(%zu scenarios) ===\n", n);
        std::printf("hardware threads: %u\n\n",
                    std::thread::hardware_concurrency());

        // Warm-up: page in code and data once, outside the timing.
        std::vector<double> reference;
        runOnce(spec, 1, reference);

        std::printf("%6s %12s %16s %9s\n", "jobs", "wall[s]",
                    "scenarios/s", "speedup");
        double base_s = 0.0;
        double speedup_at_8 = 0.0;
        for (unsigned jobs : {1u, 2u, 4u, 8u}) {
            std::vector<double> energies;
            double wall_s = runOnce(spec, jobs, energies);
            if (energies != reference)
                fatal("nondeterministic sweep results at jobs=", jobs);
            if (jobs == 1)
                base_s = wall_s;
            double speedup = base_s / wall_s;
            if (jobs == 8)
                speedup_at_8 = speedup;
            std::printf("%6u %12.3f %16.2f %8.2fx\n", jobs, wall_s,
                        n / wall_s, speedup);
        }
        std::printf("\nspeedup at --jobs 8 over --jobs 1: %.2fx "
                    "(results bit-identical at every worker count)\n",
                    speedup_at_8);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
