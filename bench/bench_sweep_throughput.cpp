/**
 * @file
 * Scaling and memoization benchmarks of the batch simulation engine.
 *
 * Section 1 runs the Table II configuration sweep (GT240 + GTX580
 * presets x a balanced workload set, 16 scenarios) with 1, 2, 4, and
 * 8 worker threads, reports wall-clock time, throughput, and speedup
 * relative to one worker, and cross-checks that every worker count
 * produced bit-identical energy results — the determinism contract
 * of the engine.
 *
 * Section 2 isolates the per-scenario setup cost the simulator-reuse
 * path avoids (rebuild vs recycle).
 *
 * Section 3 measures the two-phase memoization on its home turf: a
 * process-node x vdd_scale x cooling sweep, where every scenario of a
 * workload shares one timing fingerprint, so the memoized engine runs
 * timing once per workload and replays the power phase everywhere
 * else. Results must stay bit-identical to the --no-memo path.
 *
 * Section 4 extends that across process lifetimes: the same sweep
 * against a persistent store, cold (captures written to disk) and
 * warm (a fresh session replays everything from disk, zero timing
 * captures), cross-checked bit-identical.
 *
 * With --benchmark_format=json the measurements are emitted to
 * stdout as Google-Benchmark-style JSON (human-readable output moves
 * to stderr), which is what the CI benchmark-regression gate
 * consumes; see bench/check_bench_regression.py.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "sim/engine.hh"
#include "sim/session.hh"
#include "store/store.hh"

using namespace gpusimpow;

namespace {

/** One emitted measurement: benchmark name -> named metric values. */
struct BenchRecord
{
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
};

std::vector<BenchRecord> g_records;

void
record(const std::string &name,
       std::vector<std::pair<std::string, double>> metrics)
{
    g_records.push_back({name, std::move(metrics)});
}

void
printJson()
{
    std::printf("{\n");
    std::printf("  \"context\": {\"hardware_threads\": %u},\n",
                std::thread::hardware_concurrency());
    std::printf("  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < g_records.size(); ++i) {
        const BenchRecord &r = g_records[i];
        std::printf("    {\"name\": \"%s\"", r.name.c_str());
        for (const auto &m : r.metrics)
            std::printf(", \"%s\": %.17g", m.first.c_str(), m.second);
        std::printf("}%s\n", i + 1 < g_records.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

sim::SweepSpec
table2Sweep()
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240(), GpuConfig::gtx580()};
    spec.workloads = {"heartwall", "bfs",       "hotspot",
                      "scalarprod", "needle",   "vectoradd",
                      "matmul",     "blackscholes"};
    return spec;
}

/** The memoization showcase: every axis here is power-only, so the
 *  36 scenarios collapse onto 2 timing fingerprints (one per
 *  workload). vdd-only operating points keep freq_scale at 1. */
sim::SweepSpec
powerAxesSweep()
{
    sim::SweepSpec spec;
    spec.configs = {GpuConfig::gt240()};
    spec.tech_nodes = {40u, 28u, 20u};
    spec.operating_points =
        OperatingPoint::parseList("0.85:1,0.95:1,1:1");
    spec.coolings = {"stock", "liquid"};
    spec.workloads = {"vectoradd", "matmul"};
    return spec;
}

double
runOnce(const sim::SweepSpec &spec, unsigned jobs,
        std::vector<double> &energies_out,
        bool reuse_simulators = true, bool memoize = true,
        std::size_t *replayed_out = nullptr,
        store::StoreHandle store = nullptr,
        std::size_t *captured_out = nullptr)
{
    // Sweeps go through the public SweepSession entry point, same as
    // the CLI and the service; a fresh session per run keeps the
    // in-memory snapshot cache from bleeding between measurements.
    sim::SweepSession session(sim::EngineOptions()
                                  .withJobs(jobs)
                                  .withReuseSimulators(
                                      reuse_simulators)
                                  .withMemoize(memoize),
                              std::move(store));
    auto t0 = std::chrono::steady_clock::now();
    sim::SweepResult result = session.submit(spec);
    auto t1 = std::chrono::steady_clock::now();

    energies_out.clear();
    for (const sim::ScenarioResult &r : result.rows()) {
        if (!r.verified)
            fatal("verification failed for ", r.scenario.label);
        energies_out.push_back(r.energy_j);
    }
    if (replayed_out)
        *replayed_out = result.replayedScenarios();
    if (captured_out)
        *captured_out = result.telemetry().captured;
    return std::chrono::duration<double>(t1 - t0).count();
}

int
runBench(FILE *out)
{
    // --- 1: worker scaling on the Table II sweep ---
    sim::SweepSpec spec = table2Sweep();
    std::size_t n = spec.size();
    std::fprintf(out,
                 "=== Sweep throughput: Table II config sweep "
                 "(%zu scenarios) ===\n", n);
    std::fprintf(out, "hardware threads: %u\n\n",
                 std::thread::hardware_concurrency());

    // Warm-up: page in code and data once, outside the timing.
    std::vector<double> reference;
    runOnce(spec, 1, reference);

    std::fprintf(out, "%6s %12s %16s %9s\n", "jobs", "wall[s]",
                 "scenarios/s", "speedup");
    double base_s = 0.0;
    double speedup_at_8 = 0.0;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        std::vector<double> energies;
        double wall_s = runOnce(spec, jobs, energies);
        if (energies != reference)
            fatal("nondeterministic sweep results at jobs=", jobs);
        if (jobs == 1)
            base_s = wall_s;
        double speedup = base_s / wall_s;
        if (jobs == 8)
            speedup_at_8 = speedup;
        std::fprintf(out, "%6u %12.3f %16.2f %8.2fx\n", jobs, wall_s,
                     n / wall_s, speedup);
        record(strformat("sweep_table2/jobs:%u", jobs),
               {{"wall_s", wall_s}, {"scenarios_per_s", n / wall_s}});
    }
    std::fprintf(out,
                 "\nspeedup at --jobs 8 over --jobs 1: %.2fx "
                 "(results bit-identical at every worker count)\n",
                 speedup_at_8);

    // --- 2: Simulator reuse on workload-only sweeps ---
    // All scenarios of one config share a fingerprint, so the
    // engine recycles each worker's Simulator instead of
    // rebuilding GPU + power model per scenario. The per-scenario
    // setup saving is measured in isolation (kernel simulation
    // time would otherwise drown it), then a real workload-only
    // sweep cross-checks that both modes are bit-identical.
    constexpr int kSetupIters = 500;
    GpuConfig setup_cfg = GpuConfig::gtx580();
    auto s0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSetupIters; ++i)
        Simulator rebuild_sim(setup_cfg);
    auto s1 = std::chrono::steady_clock::now();
    Simulator recycled(setup_cfg);
    for (int i = 0; i < kSetupIters; ++i)
        recycled.recycle();
    auto s2 = std::chrono::steady_clock::now();
    double rebuild_us = std::chrono::duration<double>(s1 - s0)
                            .count() * 1e6 / kSetupIters;
    double recycle_us = std::chrono::duration<double>(s2 - s1)
                            .count() * 1e6 / kSetupIters;
    std::fprintf(out,
                 "\n=== Simulator reuse: per-scenario setup cost "
                 "(GTX580, %d iterations) ===\n", kSetupIters);
    std::fprintf(out, "%12s %14s\n", "mode", "setup[us]");
    std::fprintf(out, "%12s %14.1f\n", "rebuild", rebuild_us);
    std::fprintf(out, "%12s %14.1f\n", "recycle", recycle_us);
    std::fprintf(out,
                 "recycling skips %.1f%% of per-scenario setup "
                 "(%.1f us each)\n",
                 (1.0 - recycle_us / rebuild_us) * 100.0,
                 rebuild_us - recycle_us);
    record("simulator_setup",
           {{"rebuild_us", rebuild_us}, {"recycle_us", recycle_us}});

    sim::SweepSpec wl_spec;
    wl_spec.configs = {GpuConfig::gt240()};
    wl_spec.workloads = {"vectoradd", "scalarprod", "matmul",
                         "blackscholes"};
    std::vector<double> reuse_e, rebuild_e;
    // Memoization off: this section isolates the reuse knob.
    double reuse_s = runOnce(wl_spec, 2, reuse_e, true, false);
    double rebuild_s = runOnce(wl_spec, 2, rebuild_e, false, false);
    if (reuse_e != rebuild_e)
        fatal("simulator reuse changed sweep results");
    std::fprintf(out,
                 "workload-only sweep (%zu scenarios): reuse "
                 "%.3f s vs rebuild %.3f s, results "
                 "bit-identical\n", wl_spec.size(), reuse_s,
                 rebuild_s);

    // --- 3: two-phase memoization on power-only axes ---
    sim::SweepSpec memo_spec = powerAxesSweep();
    std::size_t memo_n = memo_spec.size();
    std::fprintf(out,
                 "\n=== Two-phase memoization: node x vdd x cooling "
                 "sweep (%zu scenarios, %zu timing-unique) ===\n",
                 memo_n, memo_spec.workloads.size());
    std::vector<double> memo_e, full_e;
    std::size_t replayed = 0;
    // Serial workers: the cross-worker cache then memoizes every
    // possible scenario, making the measured ratio the architecture's
    // (deterministic) upper bound instead of a race-dependent draw.
    double memo_s = runOnce(memo_spec, 1, memo_e, true, true,
                            &replayed);
    double full_s = runOnce(memo_spec, 1, full_e, true, false);
    if (memo_e != full_e)
        fatal("memoized sweep results differ from full simulation");
    double speedup = full_s / memo_s;
    std::fprintf(out, "%10s %12s %16s %10s\n", "mode", "wall[s]",
                 "scenarios/s", "replayed");
    std::fprintf(out, "%10s %12.3f %16.2f %7zu/%zu\n", "memoized",
                 memo_s, memo_n / memo_s, replayed, memo_n);
    std::fprintf(out, "%10s %12.3f %16.2f %10s\n", "no-memo",
                 full_s, memo_n / full_s, "-");
    std::fprintf(out,
                 "memoized scenario throughput: %.2fx the --no-memo "
                 "path (results bit-identical)\n", speedup);
    record("memo_sweep/replay", {{"wall_s", memo_s},
                                 {"scenarios_per_s", memo_n / memo_s},
                                 {"replayed",
                                  static_cast<double>(replayed)}});
    record("memo_sweep/full", {{"wall_s", full_s},
                               {"scenarios_per_s", memo_n / full_s}});
    record("memo_sweep/speedup", {{"speedup", speedup}});

    // --- 4: persistent store: cold capture vs warm replay ---
    // The same power-axes sweep against an on-disk store. The cold
    // run captures and persists; the warm run is a fresh session (a
    // new process, as far as the store can tell) answering entirely
    // from disk — zero timing captures, bit-identical results.
    std::filesystem::path store_dir =
        std::filesystem::temp_directory_path() / "gsp-bench-store";
    std::filesystem::remove_all(store_dir);
    std::vector<double> cold_e, warm_e;
    std::size_t cold_captured = 0, warm_captured = 0;
    double cold_s = runOnce(memo_spec, 1, cold_e, true, true, nullptr,
                            store::openStore(store_dir),
                            &cold_captured);
    double warm_s = runOnce(memo_spec, 1, warm_e, true, true, nullptr,
                            store::openStore(store_dir),
                            &warm_captured);
    std::filesystem::remove_all(store_dir);
    if (warm_e != cold_e)
        fatal("store-served sweep results differ from the cold run");
    if (warm_captured != 0)
        fatal("warm store still captured ", warm_captured,
              " scenario(s)");
    std::fprintf(out,
                 "\n=== Persistent store: warm replay across "
                 "sessions (%zu scenarios) ===\n", memo_n);
    std::fprintf(out, "%6s %12s %16s %10s\n", "run", "wall[s]",
                 "scenarios/s", "captured");
    std::fprintf(out, "%6s %12.3f %16.2f %10zu\n", "cold", cold_s,
                 memo_n / cold_s, cold_captured);
    std::fprintf(out, "%6s %12.3f %16.2f %10zu\n", "warm", warm_s,
                 memo_n / warm_s, warm_captured);
    std::fprintf(out,
                 "warm-store scenario throughput: %.2fx the cold run "
                 "(results bit-identical, zero captures)\n",
                 cold_s / warm_s);
    record("store_sweep/cold", {{"wall_s", cold_s},
                                {"scenarios_per_s", memo_n / cold_s}});
    record("store_sweep/warm", {{"wall_s", warm_s},
                                {"scenarios_per_s", memo_n / warm_s}});
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--benchmark_format=json") == 0) {
            json = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_sweep_throughput "
                         "[--benchmark_format=json]\n");
            return 1;
        }
    }
    try {
        int rc = runBench(json ? stderr : stdout);
        if (rc == 0 && json)
            printJson();
        return rc;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
