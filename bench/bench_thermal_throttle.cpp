/**
 * @file
 * Thermal-throttling characterization: contrasts a sustained compute
 * workload against a bursty memory-bound one on both Table II cards,
 * across cooling solutions, with and without the DVFS throttling
 * governor. Shows the paper's compounding story end to end: under
 * constrained cooling the leakage-temperature loop runs away unless
 * the governor clamps the clock — and the clamp itself costs energy,
 * because static power keeps integrating over the stretched runtime.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

namespace {

struct Case
{
    const char *kind;
    const char *workload;
    unsigned scale;
};

void
runCard(const char *card, const GpuConfig &base)
{
    // Sustained: back-to-back dense compute. Bursty: one short
    // memory-bound burst (mostly DRAM and base power).
    const Case cases[] = {
        {"sustained", "matmul", 2},
        {"bursty", "vectoradd", 1},
    };
    const char *coolings[] = {"stock", "constrained"};

    std::printf("=== %s ===\n", card);
    std::printf("%-10s %-12s %-12s %-9s %9s %7s %7s %11s %11s\n",
                "kind", "workload", "cooling", "governor", "Tmax[K]",
                "conv", "fclk", "time[us]", "energy[mJ]");
    for (const Case &c : cases) {
        // Nominal reference: thermal loop off, the static 350 K
        // config constant.
        sim::Scenario nominal;
        nominal.config = base;
        nominal.workload = c.workload;
        nominal.scale = c.scale;
        sim::ScenarioResult ref =
            sim::SimulationEngine().runScenario(nominal);
        std::printf("%-10s %-12s %-12s %-9s %9s %7s %7s %11.1f "
                    "%11.3f\n",
                    c.kind, c.workload, "(none)", "off", "350.0*",
                    "-", "1.000", ref.time_s * 1e6,
                    ref.energy_j * 1e3);

        for (const char *cooling : coolings) {
            for (bool governor : {false, true}) {
                sim::Scenario s = nominal;
                s.config.thermal.applyCooling(cooling);
                s.config.thermal.throttle = governor;
                sim::ScenarioResult r =
                    sim::SimulationEngine().runScenario(s);
                std::printf(
                    "%-10s %-12s %-12s %-9s %9.1f %7s %7.3f %11.1f "
                    "%11.3f%s\n",
                    c.kind, c.workload, cooling,
                    governor ? "on" : "off", r.t_max_k,
                    r.thermal_converged ? "yes" : "NO",
                    r.min_freq_scale, r.time_s * 1e6,
                    r.energy_j * 1e3,
                    r.throttled ? "  <- throttled" : "");
            }
        }
    }
    std::printf("(* junction temperature fixed by configuration)\n\n");
}

} // namespace

int
main()
{
    try {
        runCard("GeForce GT240", GpuConfig::gt240());
        runCard("GeForce GTX580", GpuConfig::gtx580());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_thermal_throttle: %s\n", e.what());
        return 1;
    }
}
