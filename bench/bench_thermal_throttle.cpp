/**
 * @file
 * Thermal-throttling characterization plus the thermal fast-path
 * regression metrics.
 *
 * Default mode prints the characterization tables: a sustained
 * compute workload against a bursty memory-bound one on both Table
 * II cards, across cooling solutions, with and without the DVFS
 * throttling governor — the paper's compounding story end to end
 * (under constrained cooling the leakage-temperature loop runs away
 * unless the governor clamps the clock, and the clamp itself costs
 * energy).
 *
 * With --benchmark_format=json the bench instead measures the two
 * thermal hot phases this PR accelerated, new path against a replica
 * of the pre-factorization scalar path, and emits the measurements
 * as Google-Benchmark-style JSON for the CI gate (see
 * bench/check_bench_regression.py and bench/baseline.json):
 *
 *  - traced thermal replay (thermal_replay/traced): the per-kernel
 *    work of replaying a traced thermal scenario stream across a
 *    grid of power-only sweep variants — per-sample power rows, the
 *    transient march, and the whole-kernel steady solve, per
 *    variant. Reference: per-variant scalar evaluation + forward-
 *    Euler march + cold fixed point re-eliminating the dense system
 *    per iteration (solveLinearReference) — the pre-PR sweep replay
 *    loop. Fast: one BatchedPowerEvaluator pass shared by all
 *    variants per kernel + exact-propagator march + warm-started
 *    factored steady solves. Timing capture and the whole-kernel
 *    report are identical on both sides of the production pipeline
 *    and excluded.
 *
 *  - governed decision phase (thermal_replay/governed): the
 *    throttling governor's bisection math per governed scenario (up
 *    to 4 rounds x 40 probes, one steady solve each). Reference:
 *    every probe cold, dense elimination per iteration. Fast:
 *    warm-started factored solves. Both run the same replica of the
 *    runThermal round structure, so the resulting clamps must agree.
 *
 * The factored linear solves are checked bit-identical to the dense
 * reference and the per-interval rows bit-identical to the scalar
 * evaluator before any speedup is reported (fatal otherwise).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <vector>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "power/batched.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "thermal/thermal.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;
using power::BlockPower;

namespace {

/** Minimum measured wall time per path, s. */
constexpr double min_measure_s = 0.4;
/** Kernel replays per scenario stream in the traced metric: the
 *  warm-start regime of a multi-kernel scenario (the steady-state
 *  warm start resets with the stream, like recycle() does). */
constexpr unsigned stream_kernels = 16;
/** Replicas of the governor constants in src/sim/simulator.cc. */
constexpr int max_governor_rounds = 4;
constexpr int governor_bisect_steps = 40;
constexpr double governor_slack_k = 0.25;
constexpr double governor_backoff = 0.9;
constexpr double min_throttle_freq_scale = 0.25;

struct Case
{
    const char *kind;
    const char *workload;
    unsigned scale;
};

void
runCard(const char *card, const GpuConfig &base)
{
    // Sustained: back-to-back dense compute. Bursty: one short
    // memory-bound burst (mostly DRAM and base power).
    const Case cases[] = {
        {"sustained", "matmul", 2},
        {"bursty", "vectoradd", 1},
    };
    const char *coolings[] = {"stock", "constrained"};

    std::printf("=== %s ===\n", card);
    std::printf("%-10s %-12s %-12s %-9s %9s %7s %7s %11s %11s\n",
                "kind", "workload", "cooling", "governor", "Tmax[K]",
                "conv", "fclk", "time[us]", "energy[mJ]");
    for (const Case &c : cases) {
        // Nominal reference: thermal loop off, the static 350 K
        // config constant.
        sim::Scenario nominal;
        nominal.config = base;
        nominal.workload = c.workload;
        nominal.scale = c.scale;
        sim::ScenarioResult ref =
            sim::SimulationEngine().runScenario(nominal);
        std::printf("%-10s %-12s %-12s %-9s %9s %7s %7s %11.1f "
                    "%11.3f\n",
                    c.kind, c.workload, "(none)", "off", "350.0*",
                    "-", "1.000", ref.time_s * 1e6,
                    ref.energy_j * 1e3);

        for (const char *cooling : coolings) {
            for (bool governor : {false, true}) {
                sim::Scenario s = nominal;
                s.config.thermal.applyCooling(cooling);
                s.config.thermal.throttle = governor;
                sim::ScenarioResult r =
                    sim::SimulationEngine().runScenario(s);
                std::printf(
                    "%-10s %-12s %-12s %-9s %9.1f %7s %7.3f %11.1f "
                    "%11.3f%s\n",
                    c.kind, c.workload, cooling,
                    governor ? "on" : "off", r.t_max_k,
                    r.thermal_converged ? "yes" : "NO",
                    r.min_freq_scale, r.time_s * 1e6,
                    r.energy_j * 1e3,
                    r.throttled ? "  <- throttled" : "");
            }
        }
    }
    std::printf("(* junction temperature fixed by configuration)\n\n");
}

// ------------------------------------------------ fast-path metrics

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Repeat fn until min_measure_s elapses (after one warm-up call);
 *  returns reps per second. */
template <typename Fn>
double
measureRate(Fn &&fn)
{
    fn();
    double t0 = now();
    std::size_t reps = 0;
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = now() - t0;
    } while (elapsed < min_measure_s);
    return static_cast<double>(reps) / elapsed;
}

/** Pre-PR steady solve: cold start at ambient, a from-scratch dense
 *  elimination (solveLinearReference) every fixed-point iteration —
 *  the exact historical cost structure, via the kept oracle. */
thermal::SteadyResult
coldDenseSteady(const thermal::ThermalNetwork &net,
                const power::GpuPowerModel &model,
                const std::vector<BlockPower> &bp, double freq_ratio)
{
    thermal::SteadyResult result;
    result.temps_k.assign(bp.size(), net.ambient());
    result.heatsink_k = net.ambient();
    bool capped = false;
    for (unsigned iter = 0; iter < 1000; ++iter) {
        std::vector<double> powers(bp.size(), 0.0);
        for (std::size_t i = 0; i < bp.size(); ++i)
            powers[i] = bp[i].dynamic_w * freq_ratio +
                        bp[i].sub_leak_w *
                            model.subLeakScaleAt(result.temps_k[i]) +
                        bp[i].fixed_w;
        // lint: thermal-solve-ok(pre-PR cost replica: the reference
        // side of the speedup gate must pay dense elimination)
        std::vector<double> nodes = net.solveLinearReference(powers);
        capped = false;
        double delta = 0.0;
        constexpr double cap = thermal::ThermalNetwork::runaway_cap_k;
        for (std::size_t i = 0; i < bp.size(); ++i) {
            double t = nodes[i];
            if (t > cap) {
                t = cap;
                capped = true;
            }
            delta = std::max(delta, std::fabs(t - result.temps_k[i]));
            result.temps_k[i] = t;
        }
        result.heatsink_k = std::min(nodes.back(), cap);
        result.iterations = iter + 1;
        if (delta < 1e-4) {
            result.converged = !capped;
            return result;
        }
    }
    result.converged = false;
    return result;
}

/** New-path steady solve through the factored network, warm-started
 *  from (and refreshing) warm — the Simulator::solveSteady flow. */
thermal::SteadyResult
warmFactoredSteady(const thermal::ThermalNetwork &net,
                   const power::GpuPowerModel &model,
                   const std::vector<BlockPower> &bp,
                   double freq_ratio, std::vector<double> &warm)
{
    thermal::SteadyResult s = net.solveSteady(
        [&](const std::vector<double> &temps) {
            std::vector<double> powers(bp.size(), 0.0);
            for (std::size_t i = 0; i < bp.size(); ++i)
                powers[i] =
                    bp[i].dynamic_w * freq_ratio +
                    bp[i].sub_leak_w * model.subLeakScaleAt(temps[i]) +
                    bp[i].fixed_w;
            return powers;
        },
        warm.empty() ? nullptr : &warm);
    if (s.converged)
        warm = s.temps_k;
    return s;
}

/** Hottest die block (the governor's criterion; DRAM excluded). */
double
dieMax(const thermal::BlockSet &blocks,
       const thermal::SteadyResult &s)
{
    double t = 0.0;
    for (std::size_t i = 0; i < blocks.dramIndex(); ++i)
        t = std::max(t, s.temps_k[i]);
    return t;
}

struct GovernedOutcome
{
    double freq_scale = 1.0;
    bool throttled = false;
    thermal::SteadyResult steady;
};

/**
 * Replica of Simulator::runThermal's governor rounds on a measured
 * power split (analytic rescale, no re-timing): bisect the largest
 * clock whose modeled steady state respects the limit, verify, back
 * off, repeat. steadyFn(bp, freq_ratio) is the only difference
 * between the reference and the fast path, so the resulting clamps
 * must agree.
 */
template <typename SteadyFn>
GovernedOutcome
governPhase(const thermal::BlockSet &blocks,
            std::vector<BlockPower> bp, double limit_k,
            SteadyFn &&steadyFn)
{
    GovernedOutcome out;
    auto within = [&](const thermal::SteadyResult &s, double slack) {
        return s.converged && dieMax(blocks, s) <= limit_k + slack;
    };
    out.steady = steadyFn(bp, 1.0);
    if (within(out.steady, 0.0))
        return out;
    double f_meas = 1.0;
    for (int round = 0; round < max_governor_rounds; ++round) {
        double lo = min_throttle_freq_scale;
        double hi = f_meas;
        double f_new = lo;
        if (within(steadyFn(bp, lo / f_meas), 0.0)) {
            for (int it = 0; it < governor_bisect_steps; ++it) {
                double mid = 0.5 * (lo + hi);
                if (within(steadyFn(bp, mid / f_meas), 0.0))
                    lo = mid;
                else
                    hi = mid;
            }
            f_new = lo;
        }
        out.throttled = true;
        if (round > 0)
            f_new = std::max(min_throttle_freq_scale,
                             f_new * governor_backoff);
        if (f_new >= f_meas * (1.0 - 1e-9)) {
            out.steady = steadyFn(bp, 1.0);
            break;
        }
        // Analytic re-measure at the clamped clock: dynamic power
        // follows the clock, the rest of the split stands.
        for (BlockPower &b : bp)
            b.dynamic_w *= f_new / f_meas;
        f_meas = f_new;
        out.steady = steadyFn(bp, 1.0);
        if (within(out.steady, governor_slack_k))
            break;
    }
    out.freq_scale = f_meas;
    return out;
}

/** One power-only sweep variant of the traced scenario: its own
 *  power model (process node x supply scale), block decomposition,
 *  networks, and whole-kernel power split. */
struct TracedVariant
{
    std::unique_ptr<power::GpuPowerModel> model;
    thermal::BlockSet blocks;
    std::unique_ptr<thermal::ThermalNetwork> exact_net;
    std::unique_ptr<thermal::ThermalNetwork> euler_net;
    std::vector<BlockPower> bp;
};

int
runMetrics(FILE *out)
{
    // ---- Traced scenario: GTX580 blackscholes under the stock
    // cooler at the default 20 us sampling period, replayed across a
    // Table-II-style grid of power-only variants (process node x
    // supply scale — same timing fingerprint, so one capture serves
    // them all).
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");
    Simulator sim(cfg);
    auto wl = workloads::makeWorkload("blackscholes", 8);
    auto launches = wl->prepare(sim.gpu());
    GSP_ASSERT(!launches.empty(), "workload produced no kernels");
    KernelSnapshot snap = sim.capturePerf(
        launches[0].prog, launches[0].launch, true, 20e-6);
    const std::size_t n_intervals = snap.samples.size();
    GSP_ASSERT(n_intervals >= 2, "expected a traced kernel, got ",
               n_intervals, " intervals");

    // Per-node supply ranges chosen inside the thermally stable
    // envelope: above these, stock cooling cannot arrest the
    // leakage-temperature loop for this workload (a real sweep would
    // report those cells as runaway, not replay their traces).
    const std::pair<unsigned, double> grid[] = {
        {40u, 0.85}, {40u, 0.9}, {40u, 0.95}, {40u, 1.0},
        {28u, 0.8},  {28u, 0.85}, {28u, 0.9}, {28u, 0.95},
    };
    std::vector<TracedVariant> variants;
    for (const auto &[node, vdd] : grid) {
        {
            GpuConfig vcfg = GpuConfig::gtx580();
            vcfg.thermal.applyCooling("stock");
            if (node != vcfg.tech.node_nm) {
                vcfg.tech.node_nm = node;
                vcfg.tech.vdd = -1.0; // node-nominal supply
            }
            OperatingPoint op;
            op.vdd_scale = vdd;
            op.applyTo(vcfg);
            TracedVariant v;
            v.model = std::make_unique<power::GpuPowerModel>(vcfg);
            v.blocks = v.model->thermalBlocks();
            v.exact_net = std::make_unique<thermal::ThermalNetwork>(
                v.blocks, vcfg.thermal);
            ThermalConfig euler_tc = vcfg.thermal;
            euler_tc.integrator = "euler";
            v.euler_net = std::make_unique<thermal::ThermalNetwork>(
                v.blocks, euler_tc);
            v.bp = v.model->blockPowers(snap.perf.activity);
            variants.push_back(std::move(v));
        }
    }
    const std::size_t n_variants = variants.size();
    const std::size_t n_blocks = variants[0].blocks.size();

    // ---- Bit-identity gates before any speedup is reported.
    for (const TracedVariant &v : variants) {
        std::vector<double> powers(n_blocks, 0.0);
        for (std::size_t i = 0; i < n_blocks; ++i)
            powers[i] = v.bp[i].total();
        for (double scale : {0.0, 0.25, 1.0, 3.5}) {
            std::vector<double> scaled = powers;
            for (double &p : scaled)
                p *= scale;
            std::vector<double> fast =
                v.exact_net->solveLinear(scaled);
            // lint: thermal-solve-ok(bit-identity gate against the
            // dense oracle before any speedup is reported)
            std::vector<double> ref =
                v.exact_net->solveLinearReference(scaled);
            for (std::size_t i = 0; i < fast.size(); ++i)
                if (fast[i] != ref[i])
                    fatal("factored solve diverged from the dense "
                          "reference at node ", i);
        }
    }
    std::vector<const perf::ChipActivity *> acts;
    for (const ActivitySample &a : snap.samples)
        acts.push_back(&a.delta);
    std::vector<const power::CompiledPowerModel *> cpms;
    for (const TracedVariant &v : variants)
        cpms.push_back(&v.model->compiled());
    power::BatchedPowerEvaluator evaluator(cpms);
    power::BatchedPowerEvaluator::Workspace ws;
    std::vector<power::BatchedKernelPower> rows;
    evaluator.evaluate(acts, true, ws, rows);
    {
        power::CompiledPowerModel::Eval ev;
        for (std::size_t v = 0; v < n_variants; ++v) {
            for (std::size_t i = 0; i < n_intervals; ++i) {
                cpms[v]->evaluate(snap.samples[i].delta, ev);
                if (rows[v].dynamic_w[i] != ev.dynamic_w ||
                    rows[v].dram_w[i] != ev.dram_w)
                    fatal("batched rows diverged from the scalar "
                          "evaluator at variant ", v, " interval ",
                          i);
                for (std::size_t b = 0; b < n_blocks; ++b)
                    if (rows[v].block_dynamic_w[i * n_blocks + b] !=
                        ev.blocks[b].dynamic_w)
                        fatal("batched block rows diverged at "
                              "variant ", v, " interval ", i,
                              " block ", b);
            }
        }
    }

    std::fprintf(out,
                 "=== Traced thermal sweep replay: pre-PR scalar "
                 "path vs factored fast path (GTX580 blackscholes, "
                 "%zu variants x %zu intervals x %u-kernel stream) "
                 "===\n",
                 n_variants, n_intervals, stream_kernels);

    // Reference stream: per variant, scalar per-interval evaluation,
    // Euler march, cold dense steady solve per kernel — the pre-PR
    // sweep replay loop (its Euler march is the new allocation-free
    // one, so the reference is if anything conservative).
    std::vector<double> block_powers(n_blocks, 0.0);
    std::vector<double> ref_check(n_variants, 0.0);
    double ref_rate = measureRate([&] {
        power::CompiledPowerModel::Eval ev;
        ref_check.assign(n_variants, 0.0);
        for (std::size_t vi = 0; vi < n_variants; ++vi) {
            const TracedVariant &v = variants[vi];
            const power::CompiledPowerModel &cpm = *cpms[vi];
            thermal::ThermalNetwork::State st =
                v.euler_net->ambientState();
            for (unsigned k = 0; k < stream_kernels; ++k) {
                for (const ActivitySample &a : snap.samples) {
                    cpm.evaluate(a.delta, ev);
                    for (std::size_t i = 0; i < n_blocks; ++i) {
                        double leak =
                            ev.blocks[i].sub_leak_w *
                            cpm.subLeakScaleAt(st.temps_k[i]);
                        block_powers[i] = ev.blocks[i].dynamic_w +
                                          leak +
                                          ev.blocks[i].fixed_w;
                    }
                    v.euler_net->advance(st, block_powers,
                                         a.t1 - a.t0);
                    ref_check[vi] += ev.dynamic_w + ev.dram_w;
                }
                thermal::SteadyResult s = coldDenseSteady(
                    *v.euler_net, *v.model, v.bp, 1.0);
                GSP_ASSERT(s.converged, "reference steady diverged");
            }
        }
    });

    // Fast stream: one batched pass shared by every variant per
    // kernel, exact propagator march, warm-started factored steady
    // solves (warm resets with the stream, as recycle() does between
    // scenarios).
    std::vector<std::vector<double>> warm(n_variants);
    std::vector<thermal::ThermalNetwork::State> states(n_variants);
    std::vector<double> fast_check(n_variants, 0.0);
    std::vector<double> fast_tmax(n_variants, 0.0);
    double fast_rate = measureRate([&] {
        fast_check.assign(n_variants, 0.0);
        for (std::size_t vi = 0; vi < n_variants; ++vi) {
            states[vi] = variants[vi].exact_net->ambientState();
            warm[vi].clear();
        }
        for (unsigned k = 0; k < stream_kernels; ++k) {
            evaluator.evaluate(acts, true, ws, rows);
            for (std::size_t vi = 0; vi < n_variants; ++vi) {
                const TracedVariant &v = variants[vi];
                const power::BatchedKernelPower &r = rows[vi];
                thermal::ThermalNetwork::State &st = states[vi];
                for (std::size_t si = 0; si < n_intervals; ++si) {
                    const ActivitySample &a = snap.samples[si];
                    for (std::size_t i = 0; i < n_blocks; ++i) {
                        double fixed =
                            i == v.blocks.dramIndex()
                                ? r.dram_w[si]
                                : r.static_blocks[i].fixed_w;
                        double leak =
                            r.static_blocks[i].sub_leak_w *
                            cpms[vi]->subLeakScaleAt(st.temps_k[i]);
                        block_powers[i] =
                            r.block_dynamic_w[si * n_blocks + i] +
                            leak + fixed;
                    }
                    v.exact_net->advance(st, block_powers,
                                         a.t1 - a.t0);
                    fast_check[vi] += r.dynamic_w[si] + r.dram_w[si];
                }
                thermal::SteadyResult s = warmFactoredSteady(
                    *v.exact_net, *v.model, v.bp, 1.0, warm[vi]);
                GSP_ASSERT(s.converged, "fast steady diverged");
                fast_tmax[vi] = dieMax(v.blocks, s);
            }
        }
    });
    for (std::size_t vi = 0; vi < n_variants; ++vi) {
        // Same rows consumed on both sides, bitwise.
        if (ref_check[vi] != fast_check[vi])
            fatal("traced replay power totals diverged between "
                  "paths at variant ", vi);
        // And the steady solutions agree to the fixed-point
        // tolerance.
        thermal::SteadyResult ref_steady = coldDenseSteady(
            *variants[vi].euler_net, *variants[vi].model,
            variants[vi].bp, 1.0);
        if (std::fabs(dieMax(variants[vi].blocks, ref_steady) -
                      fast_tmax[vi]) > 1e-2)
            fatal("steady solutions diverged between paths at "
                  "variant ", vi);
    }

    double traced_per_s = fast_rate *
                          static_cast<double>(n_variants) *
                          stream_kernels *
                          static_cast<double>(n_intervals);
    double traced_speedup = fast_rate / ref_rate;
    std::fprintf(out, "%10s %22s\n", "path", "sweep-streams/s");
    std::fprintf(out, "%10s %22.1f\n", "scalar", ref_rate);
    std::fprintf(out, "%10s %22.1f\n", "factored", fast_rate);
    std::fprintf(out,
                 "factored path: %.1fx the scalar path (%.0f traced "
                 "thermal variant-intervals/s; rows bit-identical)\n",
                 traced_speedup, traced_per_s);

    // ---- Governed decision phase: GTX580 matmul under constrained
    // cooling (the acceptance scenario — it must clamp).
    GpuConfig gcfg = GpuConfig::gtx580();
    gcfg.thermal.applyCooling("constrained");
    gcfg.thermal.throttle = true;
    Simulator gsim(gcfg);
    auto gwl = workloads::makeWorkload("matmul", 1);
    auto glaunches = gwl->prepare(gsim.gpu());
    KernelSnapshot gsnap =
        gsim.capturePerf(glaunches[0].prog, glaunches[0].launch);
    const power::GpuPowerModel &gmodel = gsim.powerModel();
    thermal::BlockSet gblocks = gmodel.thermalBlocks();
    std::vector<BlockPower> gbp =
        gmodel.blockPowers(gsnap.perf.activity);
    thermal::ThermalNetwork gnet(gblocks, gcfg.thermal);
    const double limit_k = gcfg.thermal.t_limit_k;

    std::fprintf(out,
                 "\n=== Governed decision phase: cold dense solves "
                 "vs warm factored solves (GTX580 matmul, "
                 "constrained) ===\n");

    GovernedOutcome ref_gov;
    double gov_ref_rate = measureRate([&] {
        ref_gov = governPhase(
            gblocks, gbp, limit_k,
            [&](const std::vector<BlockPower> &b, double ratio) {
                return coldDenseSteady(gnet, gmodel, b, ratio);
            });
    });
    GovernedOutcome fast_gov;
    std::vector<double> gov_warm;
    double gov_fast_rate = measureRate([&] {
        gov_warm.clear();
        fast_gov = governPhase(
            gblocks, gbp, limit_k,
            [&](const std::vector<BlockPower> &b, double ratio) {
                return warmFactoredSteady(gnet, gmodel, b, ratio,
                                          gov_warm);
            });
    });
    if (!ref_gov.throttled || !fast_gov.throttled)
        fatal("governed scenario did not throttle");
    // The warm start changes iteration counts, not the fixed points:
    // both paths must land on the same clamp (bisect resolution).
    if (std::fabs(ref_gov.freq_scale - fast_gov.freq_scale) > 1e-3)
        fatal("governor clamps diverged: ref ", ref_gov.freq_scale,
              " vs fast ", fast_gov.freq_scale);

    double gov_speedup = gov_fast_rate / gov_ref_rate;
    std::fprintf(out, "%10s %18s %12s\n", "path", "scenarios/s",
                 "clamp");
    std::fprintf(out, "%10s %18.1f %12.4f\n", "cold", gov_ref_rate,
                 ref_gov.freq_scale);
    std::fprintf(out, "%10s %18.1f %12.4f\n", "warm", gov_fast_rate,
                 fast_gov.freq_scale);
    std::fprintf(out,
                 "warm factored path: %.1fx the cold dense path "
                 "(identical clamp)\n", gov_speedup);

    std::printf("{\n  \"benchmarks\": [\n");
    std::printf("    {\"name\": \"thermal_replay/traced\", "
                "\"intervals_per_s\": %.17g},\n", traced_per_s);
    std::printf("    {\"name\": \"thermal_replay/traced_speedup\", "
                "\"speedup\": %.17g},\n", traced_speedup);
    std::printf("    {\"name\": \"thermal_replay/governed\", "
                "\"scenarios_per_s\": %.17g},\n", gov_fast_rate);
    std::printf("    {\"name\": \"thermal_replay/governed_speedup\", "
                "\"speedup\": %.17g}\n", gov_speedup);
    std::printf("  ]\n}\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--benchmark_format=json") == 0) {
            json = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_thermal_throttle "
                         "[--benchmark_format=json]\n");
            return 1;
        }
    }
    try {
        if (json)
            return runMetrics(stderr);
        runCard("GeForce GT240", GpuConfig::gt240());
        runCard("GeForce GTX580", GpuConfig::gtx580());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_thermal_throttle: %s\n", e.what());
        return 1;
    }
}
