/**
 * @file
 * Google-benchmark microbenchmarks of the framework itself:
 * simulation throughput (shader cycles/second), power-model
 * evaluation rate, and circuit-model construction cost. These guard
 * against performance regressions of the simulator.
 */

#include <benchmark/benchmark.h>

#include "circuit/array.hh"
#include "power/chip_power.hh"
#include "sim/simulator.hh"
#include "workloads/microbench.hh"

using namespace gpusimpow;

namespace {

void
BM_SimulateOccupancyKernel(benchmark::State &state)
{
    Simulator sim(GpuConfig::gt240());
    uint32_t sink = sim.gpu().allocator().alloc(64 * 1024);
    perf::KernelProgram prog = workloads::makeOccupancyKernel(
        static_cast<unsigned>(state.range(0)), sink);
    perf::LaunchConfig lc;
    lc.grid = {12, 1};
    lc.block = {256, 1};
    uint64_t cycles = 0;
    for (auto _ : state) {
        KernelRun run = sim.runKernel(prog, lc);
        cycles += run.perf.cycles;
        benchmark::DoNotOptimize(run.perf.cycles);
    }
    state.counters["shader_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateOccupancyKernel)->Arg(200)->Arg(1000);

void
BM_PowerModelEvaluate(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig::gt240();
    power::GpuPowerModel model(cfg);
    perf::ChipActivity act;
    act.cores.resize(cfg.numCores());
    for (auto &c : act.cores) {
        c.cycles_resident = 1000000;
        c.int_lane_ops = 32000000;
        c.fp_lane_ops = 16000000;
        c.rf_bank_reads = 24000000;
    }
    act.cluster_busy_cycles.assign(cfg.clusters, 1000000);
    act.gpu_busy_cycles = 1000000;
    act.shader_cycles = 1000000;
    act.elapsed_s = 1e-3;
    for (auto _ : state) {
        power::PowerReport rep = model.evaluate(act);
        benchmark::DoNotOptimize(rep.gpu.totalDynamic());
    }
}
BENCHMARK(BM_PowerModelEvaluate);

void
BM_SramArrayModel(benchmark::State &state)
{
    tech::TechNode t = tech::TechNode::make(40, 1.05, 350.0);
    circuit::SramParams p;
    p.entries = static_cast<unsigned>(state.range(0));
    p.bits_per_entry = 128;
    for (auto _ : state) {
        circuit::SramArray array(p, t);
        benchmark::DoNotOptimize(array.readEnergy());
    }
}
BENCHMARK(BM_SramArrayModel)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
