/**
 * @file
 * Reproduces Table V of the paper: the blackscholes power breakdown
 * on the GT240, at GPU level (Cores / NoC / MC / PCIe) and at core
 * level (Base / WCU / RF / EU / LDSTU / Undiff). Prints simulated
 * values next to the paper's, with percentages computed the same way
 * (share of overall static+dynamic).
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

namespace {

struct Row
{
    const char *name;
    double sim_static;
    double sim_dynamic;
    double paper_static;
    double paper_dynamic;
};

void
printRows(const char *title, const Row *rows, int n, double sim_total,
          double paper_total)
{
    std::printf("%s\n", title);
    std::printf("  %-20s %23s %23s\n", "", "--- simulated ---",
                "---- paper ----");
    std::printf("  %-20s %8s %8s %6s %8s %8s %6s\n", "component",
                "stat[W]", "dyn[W]", "pct", "stat[W]", "dyn[W]", "pct");
    for (int i = 0; i < n; ++i) {
        const Row &r = rows[i];
        double sim_pct =
            (r.sim_static + r.sim_dynamic) / sim_total * 100.0;
        double paper_pct =
            (r.paper_static + r.paper_dynamic) / paper_total * 100.0;
        std::printf("  %-20s %8.3f %8.3f %5.1f%% %8.3f %8.3f %5.1f%%\n",
                    r.name, r.sim_static, r.sim_dynamic, sim_pct,
                    r.paper_static, r.paper_dynamic, paper_pct);
    }
}

} // namespace

int
main()
{
    try {
        Simulator sim(GpuConfig::gt240());
        auto wl = workloads::makeWorkload("blackscholes");
        auto launches = wl->prepare(sim.gpu());
        GSP_ASSERT(launches.size() == 1, "blackscholes has one kernel");
        KernelRun run =
            sim.runKernel(launches[0].prog, launches[0].launch);
        if (!wl->verify(sim.gpu()))
            fatal("blackscholes verification failed");

        const power::PowerNode &gpu = run.report.gpu;
        auto stat = [&](const char *path) {
            const power::PowerNode *n = gpu.find(path);
            return n ? n->totalStatic() : 0.0;
        };
        auto dyn = [&](const char *path) {
            const power::PowerNode *n = gpu.find(path);
            return n ? n->totalDynamic() : 0.0;
        };

        std::printf("=== Table V: blackscholes power breakdown on "
                    "GT240 ===\n");
        std::printf("(kernel: %lu cycles, %.2f us; DRAM excluded from "
                    "the table as in the paper: simulated %.2f W, "
                    "paper 4.3 W)\n\n",
                    static_cast<unsigned long>(run.perf.cycles),
                    run.perf.time_s * 1e6, run.report.dram_w);

        double sim_stat = run.report.staticPower();
        double sim_dyn = run.report.dynamicPower();
        double sim_total = sim_stat + sim_dyn;
        double paper_total = 17.934 + 19.207;

        Row gpu_rows[] = {
            {"Overall", sim_stat, sim_dyn, 17.934, 19.207},
            {"Cores", stat("Cores"), dyn("Cores"), 15.393, 15.132},
            {"NoC", stat("NoC"), dyn("NoC"), 1.484, 1.229},
            {"Memory Controller", stat("Memory Controller"),
             dyn("Memory Controller"), 0.497, 1.753},
            {"PCIe Controller", stat("PCIe Controller"),
             dyn("PCIe Controller"), 0.539, 0.992},
        };
        printRows("GPU level:", gpu_rows, 5, sim_total, paper_total);

        // Core level: paper overall 1.283 / 1.031 per core.
        double core_stat = stat("Cores/Core0");
        double core_dyn = dyn("Cores/Core0");
        double sim_core_total = core_stat + core_dyn;
        double paper_core_total = 1.283 + 1.031;
        Row core_rows[] = {
            {"Overall", core_stat, core_dyn, 1.283, 1.031},
            {"Base Power", stat("Cores/Core0/Base Power"),
             dyn("Cores/Core0/Base Power"), 0.0, 0.199},
            {"WCU", stat("Cores/Core0/WCU"), dyn("Cores/Core0/WCU"),
             0.042, 0.089},
            {"Register File", stat("Cores/Core0/Register File"),
             dyn("Cores/Core0/Register File"), 0.112, 0.173},
            {"Execution Units", stat("Cores/Core0/Execution Units"),
             dyn("Cores/Core0/Execution Units"), 0.0096, 0.556},
            {"LDSTU", stat("Cores/Core0/LDSTU"),
             dyn("Cores/Core0/LDSTU"), 0.234, 0.014},
            {"Undiff. Core", stat("Cores/Core0/Undiff. Core"),
             dyn("Cores/Core0/Undiff. Core"), 0.886, 0.0},
        };
        std::printf("\n");
        printRows("Core level (Core0):", core_rows, 7, sim_core_total,
                  paper_core_total);

        std::printf("\nCluster base (all clusters): %.3f W, "
                    "global scheduler: %.3f W\n",
                    dyn("Cores/Cluster Base"),
                    dyn("Cores/Global Scheduler"));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
