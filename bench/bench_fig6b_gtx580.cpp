/**
 * @file
 * Figure 6b: simulated vs measured total power for all 19 benchmark
 * kernels on the GTX580 (paper: 10.8 % average relative error,
 * 20.9 % dynamic-only, 25.2 % maximum at scalarProd).
 */

#include <cstdio>
#include <exception>

#include "bench/fig6_common.hh"
#include "common/logging.hh"

int
main()
{
    try {
        return gpusimpow::bench::runFigure6(
            gpusimpow::GpuConfig::gtx580(), "6b", 0.108, 0.209);
    } catch (const gpusimpow::FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
