/**
 * @file
 * Per-interval power-evaluation throughput: the compiled flat
 * evaluator (power/compiled.hh) against the legacy tree path that
 * built a hierarchical PowerReport per interval and walked it with
 * string-path lookups for the thermal block split. The workload is a
 * traced thermal run (GTX580, blackscholes, stock cooling): its
 * sampled activity deltas are exactly what the transient thermal
 * loop evaluates per interval, thousands of times per kernel.
 *
 * Both paths must agree bit-for-bit on chip totals and block splits
 * (the bench fatals otherwise), so the speedup is measured on proven-
 * equivalent work.
 *
 * With --benchmark_format=json the measurements are emitted to
 * stdout as Google-Benchmark-style JSON (human output moves to
 * stderr) for the CI regression gate; see
 * bench/check_bench_regression.py and bench/baseline.json
 * (the power_eval metrics, acceptance floor: compiled >= 5x tree).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "perf/activity.hh"
#include "power/batched.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"
#include "sim/simulator.hh"
#include "tests/power_tree_reference.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;
using power::BlockPower;
using power::CompiledPowerModel;
using power::GpuPowerModel;
using power::PowerReport;

namespace {

/** Trace sampling period: fine-grained, the regime the motivation
 *  papers call out as dominated by per-sample model cost. */
constexpr double sample_interval_s = 0.5e-6;
/** Minimum measured wall time per path, s. */
constexpr double min_measure_s = 0.4;

struct PathResult
{
    double intervals_per_s = 0.0;
    double dynamic_sum = 0.0;
    std::vector<BlockPower> last_blocks;
};

template <typename EvalFn>
PathResult
measure(const std::vector<ActivitySample> &samples, EvalFn &&eval)
{
    // Warm-up pass (also produces the cross-check values).
    PathResult out;
    out.dynamic_sum = 0.0;
    for (const ActivitySample &a : samples)
        out.dynamic_sum += eval(a, &out.last_blocks);

    auto t0 = std::chrono::steady_clock::now();
    std::size_t evaluated = 0;
    double elapsed = 0.0;
    do {
        for (const ActivitySample &a : samples)
            eval(a, nullptr);
        evaluated += samples.size();
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < min_measure_s);
    out.intervals_per_s = evaluated / elapsed;
    return out;
}

int
runBench(FILE *out, bool json)
{
    // Traced thermal scenario: GTX580 running blackscholes (scale 8,
    // ~100 sampling intervals) under the stock cooler.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");
    Simulator sim(cfg);
    auto workload = workloads::makeWorkload("blackscholes", 8);
    auto launches = workload->prepare(sim.gpu());
    GSP_ASSERT(!launches.empty(), "workload produced no kernels");

    std::vector<ActivitySample> samples;
    for (const workloads::KernelLaunch &kl : launches) {
        KernelSnapshot snap = sim.capturePerf(
            kl.prog, kl.launch, true, sample_interval_s);
        samples.insert(samples.end(), snap.samples.begin(),
                       snap.samples.end());
    }
    GSP_ASSERT(samples.size() >= 50,
               "expected a fine-grained trace, got ",
               samples.size(), " intervals");

    const GpuPowerModel &model = sim.powerModel();
    const CompiledPowerModel &cpm = model.compiled();

    std::fprintf(out,
                 "=== Per-interval power evaluation: tree vs "
                 "compiled (GTX580 blackscholes, thermal trace, "
                 "%zu intervals) ===\n", samples.size());

    // Legacy tree path: build the report, walk it for the split
    // (power::testref::treeBlockPowers, the same reference the
    // bit-identity suite checks against).
    PathResult tree = measure(
        samples, [&](const ActivitySample &a,
                     std::vector<BlockPower> *blocks_out) {
            PowerReport rep = model.evaluate(a.delta);
            std::vector<BlockPower> bp =
                power::testref::treeBlockPowers(cfg, model, rep,
                                                a.delta);
            if (blocks_out)
                *blocks_out = bp;
            return rep.dynamicPower();
        });

    // Compiled path: dot products into a reused workspace.
    CompiledPowerModel::Eval ev;
    PathResult compiled = measure(
        samples, [&](const ActivitySample &a,
                     std::vector<BlockPower> *blocks_out) {
            cpm.evaluate(a.delta, ev);
            if (blocks_out)
                *blocks_out = ev.blocks;
            return ev.dynamic_w;
        });

    // The two paths must agree bit-for-bit before a speedup means
    // anything.
    if (tree.dynamic_sum != compiled.dynamic_sum)
        fatal("tree and compiled chip totals diverged");
    GSP_ASSERT(tree.last_blocks.size() == compiled.last_blocks.size(),
               "block split sizes diverged");
    for (std::size_t b = 0; b < tree.last_blocks.size(); ++b) {
        if (tree.last_blocks[b].dynamic_w !=
                compiled.last_blocks[b].dynamic_w ||
            tree.last_blocks[b].sub_leak_w !=
                compiled.last_blocks[b].sub_leak_w ||
            tree.last_blocks[b].fixed_w !=
                compiled.last_blocks[b].fixed_w)
            fatal("tree and compiled block splits diverged at block ",
                  b);
    }

    double speedup = compiled.intervals_per_s / tree.intervals_per_s;
    std::fprintf(out, "%10s %18s\n", "path", "intervals/s");
    std::fprintf(out, "%10s %18.0f\n", "tree", tree.intervals_per_s);
    std::fprintf(out, "%10s %18.0f\n", "compiled",
                 compiled.intervals_per_s);
    std::fprintf(out,
                 "compiled path: %.1fx the tree path "
                 "(results bit-identical)\n", speedup);

    // === Multi-variant replay: batched matrix path vs per-variant
    // scalar loop ===
    //
    // A memoized sweep replays this trace once per power-only
    // variant of the timing fingerprint. Model the Table II grid:
    // process nodes x supply scales at the captured frequency.
    const std::vector<unsigned> nodes = {40u, 28u};
    const std::vector<double> vdds = {0.85, 0.9, 0.95, 1.0, 1.05,
                                      1.1, 1.15, 1.2};
    std::vector<std::unique_ptr<GpuPowerModel>> variant_models;
    for (unsigned node : nodes) {
        for (double v : vdds) {
            GpuConfig vcfg = GpuConfig::gtx580();
            if (node != vcfg.tech.node_nm) {
                vcfg.tech.node_nm = node;
                vcfg.tech.vdd = -1.0; // node-nominal supply
            }
            OperatingPoint op;
            op.vdd_scale = v;
            op.applyTo(vcfg);
            variant_models.push_back(
                std::make_unique<GpuPowerModel>(vcfg));
        }
    }
    std::vector<const CompiledPowerModel *> variants;
    for (const auto &m : variant_models)
        variants.push_back(&m->compiled());
    const std::size_t n_variants = variants.size();

    std::fprintf(out,
                 "\n=== Multi-variant replay: scalar loop vs batched "
                 "matrix path (%zu variants x %zu intervals) ===\n",
                 n_variants, samples.size());

    // Per-variant dynamic+DRAM energy over the trace: the cross-check
    // value. Both paths accumulate it in identical order (intervals
    // innermost, one variant at a time), so equality is bitwise.
    auto measureMulti = [&](auto &&evalAll) {
        PathResult r;
        std::vector<double> energies = evalAll(); // warm-up + check
        r.dynamic_sum = 0.0;
        for (double e : energies)
            r.dynamic_sum += e;
        auto t0 = std::chrono::steady_clock::now();
        std::size_t evaluated = 0;
        double elapsed = 0.0;
        do {
            evalAll();
            evaluated += n_variants * samples.size();
            elapsed = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        } while (elapsed < min_measure_s);
        r.intervals_per_s = evaluated / elapsed;
        return r;
    };

    std::vector<double> scalar_energy, batched_energy;
    PathResult scalar_multi = measureMulti([&]() {
        scalar_energy.assign(n_variants, 0.0);
        CompiledPowerModel::Eval sev;
        for (std::size_t v = 0; v < n_variants; ++v) {
            for (const ActivitySample &a : samples) {
                variants[v]->evaluate(a.delta, sev);
                scalar_energy[v] +=
                    (sev.dynamic_w + sev.dram_w) * (a.t1 - a.t0);
            }
        }
        return scalar_energy;
    });

    std::vector<const perf::ChipActivity *> acts;
    for (const ActivitySample &a : samples)
        acts.push_back(&a.delta);
    power::BatchedPowerEvaluator evaluator(variants);
    power::BatchedPowerEvaluator::Workspace ws;
    std::vector<power::BatchedKernelPower> rows;
    PathResult batched = measureMulti([&]() {
        batched_energy.assign(n_variants, 0.0);
        evaluator.evaluate(acts, false, ws, rows);
        for (std::size_t v = 0; v < n_variants; ++v) {
            for (std::size_t i = 0; i < samples.size(); ++i) {
                batched_energy[v] +=
                    (rows[v].dynamic_w[i] + rows[v].dram_w[i]) *
                    (samples[i].t1 - samples[i].t0);
            }
        }
        return batched_energy;
    });

    // Bit-identical per-variant energies or the speedup is fiction.
    for (std::size_t v = 0; v < n_variants; ++v) {
        if (scalar_energy[v] != batched_energy[v])
            fatal("scalar and batched energy totals diverged at "
                  "variant ", v);
    }

    double batched_speedup =
        batched.intervals_per_s / scalar_multi.intervals_per_s;
    std::fprintf(out, "%10s %26s\n", "path", "variant-intervals/s");
    std::fprintf(out, "%10s %26.0f\n", "scalar",
                 scalar_multi.intervals_per_s);
    std::fprintf(out, "%10s %26.0f\n", "batched",
                 batched.intervals_per_s);
    std::fprintf(out,
                 "batched path: %.1fx the scalar loop "
                 "(energy totals bit-identical)\n", batched_speedup);

    if (json) {
        std::printf("{\n  \"benchmarks\": [\n");
        std::printf("    {\"name\": \"power_eval/tree\", "
                    "\"intervals_per_s\": %.17g},\n",
                    tree.intervals_per_s);
        std::printf("    {\"name\": \"power_eval/compiled\", "
                    "\"intervals_per_s\": %.17g},\n",
                    compiled.intervals_per_s);
        std::printf("    {\"name\": \"power_eval/speedup\", "
                    "\"speedup\": %.17g},\n", speedup);
        std::printf("    {\"name\": \"power_eval/batched\", "
                    "\"variant_intervals_per_s\": %.17g},\n",
                    batched.intervals_per_s);
        std::printf("    {\"name\": \"power_eval/batched_speedup\", "
                    "\"speedup\": %.17g}\n", batched_speedup);
        std::printf("  ]\n}\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--benchmark_format=json") == 0) {
            json = true;
        } else {
            std::fprintf(stderr, "usage: bench_power_eval "
                                 "[--benchmark_format=json]\n");
            return 1;
        }
    }
    try {
        return runBench(json ? stderr : stdout, json);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
