/**
 * @file
 * Per-interval power-evaluation throughput: the compiled flat
 * evaluator (power/compiled.hh) against the legacy tree path that
 * built a hierarchical PowerReport per interval and walked it with
 * string-path lookups for the thermal block split. The workload is a
 * traced thermal run (GTX580, blackscholes, stock cooling): its
 * sampled activity deltas are exactly what the transient thermal
 * loop evaluates per interval, thousands of times per kernel.
 *
 * Both paths must agree bit-for-bit on chip totals and block splits
 * (the bench fatals otherwise), so the speedup is measured on proven-
 * equivalent work.
 *
 * With --benchmark_format=json the measurements are emitted to
 * stdout as Google-Benchmark-style JSON (human output moves to
 * stderr) for the CI regression gate; see
 * bench/check_bench_regression.py and bench/baseline.json
 * (power_eval/* metrics, acceptance floor: compiled >= 5x tree).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "perf/activity.hh"
#include "power/chip_power.hh"
#include "power/compiled.hh"
#include "sim/simulator.hh"
#include "tests/power_tree_reference.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;
using power::BlockPower;
using power::CompiledPowerModel;
using power::GpuPowerModel;
using power::PowerReport;

namespace {

/** Trace sampling period: fine-grained, the regime the motivation
 *  papers call out as dominated by per-sample model cost. */
constexpr double sample_interval_s = 0.5e-6;
/** Minimum measured wall time per path, s. */
constexpr double min_measure_s = 0.4;

struct PathResult
{
    double intervals_per_s = 0.0;
    double dynamic_sum = 0.0;
    std::vector<BlockPower> last_blocks;
};

template <typename EvalFn>
PathResult
measure(const std::vector<ActivitySample> &samples, EvalFn &&eval)
{
    // Warm-up pass (also produces the cross-check values).
    PathResult out;
    out.dynamic_sum = 0.0;
    for (const ActivitySample &a : samples)
        out.dynamic_sum += eval(a, &out.last_blocks);

    auto t0 = std::chrono::steady_clock::now();
    std::size_t evaluated = 0;
    double elapsed = 0.0;
    do {
        for (const ActivitySample &a : samples)
            eval(a, nullptr);
        evaluated += samples.size();
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < min_measure_s);
    out.intervals_per_s = evaluated / elapsed;
    return out;
}

int
runBench(FILE *out, bool json)
{
    // Traced thermal scenario: GTX580 running blackscholes (scale 8,
    // ~100 sampling intervals) under the stock cooler.
    GpuConfig cfg = GpuConfig::gtx580();
    cfg.thermal.applyCooling("stock");
    Simulator sim(cfg);
    auto workload = workloads::makeWorkload("blackscholes", 8);
    auto launches = workload->prepare(sim.gpu());
    GSP_ASSERT(!launches.empty(), "workload produced no kernels");

    std::vector<ActivitySample> samples;
    for (const workloads::KernelLaunch &kl : launches) {
        KernelSnapshot snap = sim.capturePerf(
            kl.prog, kl.launch, true, sample_interval_s);
        samples.insert(samples.end(), snap.samples.begin(),
                       snap.samples.end());
    }
    GSP_ASSERT(samples.size() >= 50,
               "expected a fine-grained trace, got ",
               samples.size(), " intervals");

    const GpuPowerModel &model = sim.powerModel();
    const CompiledPowerModel &cpm = model.compiled();

    std::fprintf(out,
                 "=== Per-interval power evaluation: tree vs "
                 "compiled (GTX580 blackscholes, thermal trace, "
                 "%zu intervals) ===\n", samples.size());

    // Legacy tree path: build the report, walk it for the split
    // (power::testref::treeBlockPowers, the same reference the
    // bit-identity suite checks against).
    PathResult tree = measure(
        samples, [&](const ActivitySample &a,
                     std::vector<BlockPower> *blocks_out) {
            PowerReport rep = model.evaluate(a.delta);
            std::vector<BlockPower> bp =
                power::testref::treeBlockPowers(cfg, model, rep,
                                                a.delta);
            if (blocks_out)
                *blocks_out = bp;
            return rep.dynamicPower();
        });

    // Compiled path: dot products into a reused workspace.
    CompiledPowerModel::Eval ev;
    PathResult compiled = measure(
        samples, [&](const ActivitySample &a,
                     std::vector<BlockPower> *blocks_out) {
            cpm.evaluate(a.delta, ev);
            if (blocks_out)
                *blocks_out = ev.blocks;
            return ev.dynamic_w;
        });

    // The two paths must agree bit-for-bit before a speedup means
    // anything.
    if (tree.dynamic_sum != compiled.dynamic_sum)
        fatal("tree and compiled chip totals diverged");
    GSP_ASSERT(tree.last_blocks.size() == compiled.last_blocks.size(),
               "block split sizes diverged");
    for (std::size_t b = 0; b < tree.last_blocks.size(); ++b) {
        if (tree.last_blocks[b].dynamic_w !=
                compiled.last_blocks[b].dynamic_w ||
            tree.last_blocks[b].sub_leak_w !=
                compiled.last_blocks[b].sub_leak_w ||
            tree.last_blocks[b].fixed_w !=
                compiled.last_blocks[b].fixed_w)
            fatal("tree and compiled block splits diverged at block ",
                  b);
    }

    double speedup = compiled.intervals_per_s / tree.intervals_per_s;
    std::fprintf(out, "%10s %18s\n", "path", "intervals/s");
    std::fprintf(out, "%10s %18.0f\n", "tree", tree.intervals_per_s);
    std::fprintf(out, "%10s %18.0f\n", "compiled",
                 compiled.intervals_per_s);
    std::fprintf(out,
                 "compiled path: %.1fx the tree path "
                 "(results bit-identical)\n", speedup);

    if (json) {
        std::printf("{\n  \"benchmarks\": [\n");
        std::printf("    {\"name\": \"power_eval/tree\", "
                    "\"intervals_per_s\": %.17g},\n",
                    tree.intervals_per_s);
        std::printf("    {\"name\": \"power_eval/compiled\", "
                    "\"intervals_per_s\": %.17g},\n",
                    compiled.intervals_per_s);
        std::printf("    {\"name\": \"power_eval/speedup\", "
                    "\"speedup\": %.17g}\n", speedup);
        std::printf("  ]\n}\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--benchmark_format=json") == 0) {
            json = true;
        } else {
            std::fprintf(stderr, "usage: bench_power_eval "
                                 "[--benchmark_format=json]\n");
            return 1;
        }
    }
    try {
        return runBench(json ? stderr : stdout, json);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
