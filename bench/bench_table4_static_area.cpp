/**
 * @file
 * Reproduces Table IV of the paper: simulated static power and chip
 * area for the GT240 and GTX580, next to the paper's simulated and
 * real values. The "real" column for our run comes from the virtual
 * measurement testbed's static-power estimation (frequency
 * extrapolation on the GT240, idle-ratio method on the GTX580), as
 * in SectionIV-B of the paper.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "power/chip_power.hh"

using namespace gpusimpow;

int
main()
{
    try {
        struct Target
        {
            GpuConfig cfg;
            double paper_sim_static;
            double paper_real_static;
            double paper_sim_area;
            double paper_real_area;
        };
        Target targets[] = {
            {GpuConfig::gt240(), 17.9, 17.6, 105.0, 133.0},
            {GpuConfig::gtx580(), 81.5, 80.0, 306.0, 520.0},
        };

        std::printf("=== Table IV: static power and area ===\n");
        std::printf("%-10s %18s %18s\n", "", "Static [W]", "Area [mm2]");
        std::printf("%-10s %9s %8s %9s %8s\n", "GPU", "sim", "paper",
                    "sim", "paper");
        for (const auto &t : targets) {
            power::GpuPowerModel model(t.cfg);
            std::printf("%-10s %9.1f %8.1f %9.0f %8.0f   "
                        "(paper real: %.1f W, %.0f mm2)\n",
                        t.cfg.name.c_str(), model.staticPower(),
                        t.paper_sim_static, model.area(),
                        t.paper_sim_area, t.paper_real_static,
                        t.paper_real_area);
        }
        std::printf("\nPeak dynamic power: GT240 %.1f W, GTX580 %.1f W\n",
                    power::GpuPowerModel(GpuConfig::gt240())
                        .peakDynamicPower(),
                    power::GpuPowerModel(GpuConfig::gtx580())
                        .peakDynamicPower());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
