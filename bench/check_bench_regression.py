#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares benchmark-result JSON files (Google-Benchmark format, or the
compatible format bench_sweep_throughput emits) against the committed
bench/baseline.json and fails when any gated metric regresses past
its tolerance.

Baseline format:

    {
      "tolerance": 0.15,
      "metrics": {
        "<benchmark name>:<metric>": {
          "baseline": <number>,
          "higher_is_better": true|false,
          "tolerance": <optional per-metric override>
        }
      }
    }

Throughput-style metrics ("higher_is_better": true) fail when the
current value drops below baseline * (1 - tolerance); latency-style
metrics fail when it rises above baseline * (1 + tolerance).

Baselines for absolute times/throughputs are deliberately slack
(CI runner hardware varies); they catch order-of-magnitude
regressions. Ratio metrics (memo_sweep/speedup) are close to
machine-independent and carry tight baselines — the 15% default
tolerance is the contract the ISSUE's CI satellite names.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
        BENCH_sweep.json [BENCH_sim.json ...]
"""

import argparse
import json
import sys


def collect_metrics(paths):
    """Flatten every numeric field of every benchmark entry into a
    "name:metric" -> value map."""
    metrics = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for entry in data.get("benchmarks", []):
            name = entry.get("name")
            if not name:
                continue
            for key, value in entry.items():
                if key == "name":
                    continue
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    metrics[f"{name}:{key}"] = float(value)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("current", nargs="+",
                        help="benchmark result JSON files")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    default_tol = float(baseline.get("tolerance", 0.15))
    gated = baseline.get("metrics", {})
    if not gated:
        print("error: baseline defines no gated metrics",
              file=sys.stderr)
        return 2

    current = collect_metrics(args.current)

    failures = []
    width = max(len(k) for k in gated)
    print(f"{'metric':<{width}} {'baseline':>14} {'current':>14} "
          f"{'bound':>14}  verdict")
    for key in sorted(gated):
        spec = gated[key]
        base = float(spec["baseline"])
        higher = bool(spec.get("higher_is_better", True))
        tol = float(spec.get("tolerance", default_tol))
        value = current.get(key)
        if value is None:
            failures.append(f"{key}: missing from current results")
            print(f"{key:<{width}} {base:>14.4g} {'MISSING':>14}")
            continue
        bound = base * (1 - tol) if higher else base * (1 + tol)
        ok = value >= bound if higher else value <= bound
        verdict = "ok" if ok else "REGRESSION"
        print(f"{key:<{width}} {base:>14.4g} {value:>14.4g} "
              f"{bound:>14.4g}  {verdict}")
        if not ok:
            direction = "below" if higher else "above"
            failures.append(
                f"{key}: {value:.4g} is {direction} the "
                f"{tol:.0%}-tolerance bound {bound:.4g} "
                f"(baseline {base:.4g})")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed "
          f"({len(gated)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
