#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares benchmark-result JSON files (Google-Benchmark format, or the
compatible format bench_sweep_throughput emits) against the committed
bench/baseline.json and fails when any gated metric regresses past
its tolerance.

Baseline format:

    {
      "tolerance": 0.15,
      "metrics": {
        "<benchmark name>:<metric>": {
          "baseline": <number>,
          "higher_is_better": true|false,
          "tolerance": <optional per-metric override>
        }
      }
    }

Throughput-style metrics ("higher_is_better": true) fail when the
current value drops below baseline * (1 - tolerance); latency-style
metrics fail when it rises above baseline * (1 + tolerance).

Baselines for absolute times/throughputs are deliberately slack
(CI runner hardware varies); they catch order-of-magnitude
regressions. Ratio metrics (memo_sweep/speedup) are close to
machine-independent and carry tight baselines — the 15% default
tolerance is the contract the ISSUE's CI satellite names.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
        BENCH_sweep.json [BENCH_sim.json ...]
    check_bench_regression.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile


def collect_metrics(paths):
    """Flatten every numeric field of every benchmark entry into a
    "name:metric" -> value map."""
    metrics = {}
    for path in paths:
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"error: cannot read benchmark results {path}: {exc}")
        if not isinstance(data, dict):
            raise SystemExit(
                f"error: {path} is not a benchmark-result object")
        for entry in data.get("benchmarks", []):
            if not isinstance(entry, dict):
                continue
            name = entry.get("name")
            if not name:
                continue
            for key, value in entry.items():
                if key == "name":
                    continue
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    metrics[f"{name}:{key}"] = float(value)
    return metrics


def check(baseline_path, current_paths):
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    default_tol = float(baseline.get("tolerance", 0.15))
    gated = baseline.get("metrics", {})
    if not gated:
        print("error: baseline defines no gated metrics",
              file=sys.stderr)
        return 2

    current = collect_metrics(current_paths)

    failures = []
    width = max(len(k) for k in gated)
    print(f"{'metric':<{width}} {'baseline':>14} {'current':>14} "
          f"{'bound':>14}  verdict")
    for key in sorted(gated):
        spec = gated[key]
        if not isinstance(spec, dict) or "baseline" not in spec:
            print(f"error: baseline entry '{key}' has no 'baseline' "
                  f"value — fix bench/baseline.json", file=sys.stderr)
            return 2
        try:
            base = float(spec["baseline"])
        except (TypeError, ValueError):
            print(f"error: baseline entry '{key}' has a non-numeric "
                  f"'baseline' value {spec['baseline']!r}",
                  file=sys.stderr)
            return 2
        higher = bool(spec.get("higher_is_better", True))
        tol = float(spec.get("tolerance", default_tol))
        value = current.get(key)
        if value is None:
            # A gated metric the measured JSON never produced is a
            # hard failure (the benchmark was renamed, skipped, or
            # crashed) — report it clearly instead of crashing.
            failures.append(f"{key}: missing from current results "
                            "(benchmark renamed, skipped, or failed?)")
            print(f"{key:<{width}} {base:>14.4g} {'-':>14} "
                  f"{'-':>14}  MISSING")
            continue
        bound = base * (1 - tol) if higher else base * (1 + tol)
        ok = value >= bound if higher else value <= bound
        verdict = "ok" if ok else "REGRESSION"
        print(f"{key:<{width}} {base:>14.4g} {value:>14.4g} "
              f"{bound:>14.4g}  {verdict}")
        if not ok:
            direction = "below" if higher else "above"
            failures.append(
                f"{key}: {value:.4g} is {direction} the "
                f"{tol:.0%}-tolerance bound {bound:.4g} "
                f"(baseline {base:.4g})")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed "
          f"({len(gated)} metrics)")
    return 0


def self_test():
    """Exercise the gate's own failure handling: every scenario must
    produce a clean verdict and exit code, never a traceback."""

    def run_case(name, baseline_obj, current_obj, expected_rc):
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            current_path = os.path.join(tmp, "current.json")
            with open(baseline_path, "w") as bf:
                json.dump(baseline_obj, bf)
            with open(current_path, "w") as cf:
                json.dump(current_obj, cf)
            rc = check(baseline_path, [current_path])
        status = "ok" if rc == expected_rc else "FAILED"
        print(f"self-test [{name}]: rc={rc} "
              f"(expected {expected_rc}) ... {status}",
              file=sys.stderr)
        return rc == expected_rc

    good_baseline = {
        "tolerance": 0.15,
        "metrics": {"bench/x:metric": {"baseline": 10.0,
                                       "higher_is_better": True}},
    }
    passing = {"benchmarks": [{"name": "bench/x", "metric": 11.0}]}
    regressed = {"benchmarks": [{"name": "bench/x", "metric": 1.0}]}
    missing = {"benchmarks": [{"name": "bench/y", "metric": 11.0}]}
    malformed_baseline = {
        "metrics": {"bench/x:metric": {"higher_is_better": True}}}
    nonnumeric_baseline = {
        "metrics": {"bench/x:metric": {"baseline": "fast",
                                       "higher_is_better": True}}}
    # The batched-replay gate as committed: the speedup ratio carries
    # the acceptance floor, the absolute throughput is slack. Both
    # metrics come from one bench_power_eval JSON.
    batched_baseline = {
        "tolerance": 0.15,
        "metrics": {
            "power_eval/batched:variant_intervals_per_s": {
                "baseline": 600000.0, "higher_is_better": True},
            "power_eval/batched_speedup:speedup": {
                "baseline": 3.6, "higher_is_better": True},
        },
    }
    batched_ok = {"benchmarks": [
        {"name": "power_eval/batched",
         "variant_intervals_per_s": 2.7e6},
        {"name": "power_eval/batched_speedup", "speedup": 3.8},
    ]}
    batched_slow = {"benchmarks": [
        {"name": "power_eval/batched",
         "variant_intervals_per_s": 2.7e6},
        {"name": "power_eval/batched_speedup", "speedup": 2.4},
    ]}

    ok = True
    ok &= run_case("pass", good_baseline, passing, 0)
    ok &= run_case("regression", good_baseline, regressed, 1)
    ok &= run_case("metric missing from measured JSON",
                   good_baseline, missing, 1)
    ok &= run_case("baseline entry without 'baseline' value",
                   malformed_baseline, passing, 2)
    ok &= run_case("baseline entry with a non-numeric 'baseline'",
                   nonnumeric_baseline, passing, 2)
    ok &= run_case("empty baseline", {"metrics": {}}, passing, 2)
    ok &= run_case("batched replay gate passes",
                   batched_baseline, batched_ok, 0)
    ok &= run_case("batched speedup below the 3x floor",
                   batched_baseline, batched_slow, 1)
    if not ok:
        print("self-test FAILED", file=sys.stderr)
        return 1
    print("self-test passed (8 scenarios)", file=sys.stderr)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed baseline JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own error-handling tests")
    parser.add_argument("current", nargs="*",
                        help="benchmark result JSON files")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and at least one result file are "
                     "required (or use --self-test)")
    return check(args.baseline, args.current)


if __name__ == "__main__":
    sys.exit(main())
