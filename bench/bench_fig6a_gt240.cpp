/**
 * @file
 * Figure 6a: simulated vs measured total power for all 19 benchmark
 * kernels on the GT240 (paper: 11.7 % average relative error, 28.3 %
 * dynamic-only, 35.4 % maximum at mergeSort3).
 */

#include <cstdio>
#include <exception>

#include "bench/fig6_common.hh"
#include "common/logging.hh"

int
main()
{
    try {
        return gpusimpow::bench::runFigure6(
            gpusimpow::GpuConfig::gt240(), "6a", 0.117, 0.283);
    } catch (const gpusimpow::FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
