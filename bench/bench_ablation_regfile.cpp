/**
 * @file
 * Ablation: register-file organization [19]. The modeled RF is
 * built from single-ported banks with operand collectors; this bench
 * sweeps the bank count and compares against a hypothetical truly
 * multi-ported RF, quantifying the area-density argument of the
 * patent the paper cites.
 */

#include <cstdio>
#include <exception>

#include "circuit/array.hh"
#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "power/chip_power.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Ablation: register file organization "
                    "(GT240-class, 16384 x 32-bit) ===\n\n");

        // Circuit-level comparison: banked single-ported vs
        // multi-ported monolithic.
        tech::TechNode t = tech::TechNode::make(40, 1.05, 350.0);
        std::printf("%-34s %10s %12s %12s\n", "organization",
                    "area[mm2]", "read[pJ]", "leak[mW]");
        for (unsigned banks : {4u, 8u, 16u, 32u}) {
            circuit::SramParams p;
            p.entries = 16384 * 32 / (banks * 128);
            p.bits_per_entry = 128;
            p.rw_ports = 1;
            circuit::SramArray bank(p, t);
            std::printf("%2u single-ported banks %12s %10.3f %12.2f "
                        "%12.2f\n",
                        banks, "", bank.area() * 1e6 * banks,
                        bank.readEnergy() * 1e12,
                        bank.leakage() * 1e3 * banks);
        }
        {
            // Hypothetical 3R/1W monolithic multiported RF.
            circuit::SramParams p;
            p.entries = 16384 * 32 / 128;
            p.bits_per_entry = 128;
            p.read_ports = 3;
            p.write_ports = 1;
            circuit::SramArray mono(p, t);
            std::printf("%-34s %10.3f %12.2f %12.2f\n",
                        "monolithic 3R/1W (hypothetical)",
                        mono.area() * 1e6, mono.readEnergy() * 1e12,
                        mono.leakage() * 1e3);
        }

        // System-level: collector count sweep on blackscholes.
        std::printf("\ncollector sweep (blackscholes, GT240): \n");
        std::printf("%12s %10s %12s\n", "collectors", "cycles",
                    "RF power[W]");
        for (unsigned collectors : {2u, 4u, 8u}) {
            GpuConfig cfg = GpuConfig::gt240();
            cfg.core.operand_collectors = collectors;
            Simulator sim(cfg);
            auto wl = workloads::makeWorkload("blackscholes");
            auto seq = wl->prepare(sim.gpu());
            KernelRun run = sim.runKernel(seq[0].prog, seq[0].launch);
            const power::PowerNode *rf =
                run.report.gpu.find("Cores/Core0/Register File");
            GSP_ASSERT(rf != nullptr, "missing RF node");
            std::printf("%12u %10lu %12.3f\n", collectors,
                        static_cast<unsigned long>(run.perf.cycles),
                        rf->totalDynamic() + rf->totalStatic());
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
