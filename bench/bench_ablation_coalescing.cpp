/**
 * @file
 * Ablation: memory-access coalescing [24] on vs off. With the
 * coalescer bypassed, every active lane issues its own line-sized
 * transaction; the bench quantifies the cost in transactions, DRAM
 * traffic, runtime, power, and energy on a memory-bound kernel.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Ablation: access coalescing on/off (GT240, "
                    "vectorAdd) ===\n");
        std::printf("%-10s %10s %12s %10s %10s %10s\n", "coalescing",
                    "cycles", "transactions", "time[us]", "power[W]",
                    "energy[mJ]");
        for (bool on : {true, false}) {
            GpuConfig cfg = GpuConfig::gt240();
            cfg.core.coalescing = on;
            Simulator sim(cfg);
            auto wl = workloads::makeWorkload("vectoradd");
            auto seq = wl->prepare(sim.gpu());
            KernelRun run =
                sim.runKernel(seq[0].prog, seq[0].launch);
            if (!wl->verify(sim.gpu()))
                fatal("vectoradd verification failed");
            uint64_t txn = 0;
            for (const auto &c : run.perf.activity.cores)
                txn += c.coalescer_transactions;
            double total_w =
                run.report.totalPower() + run.report.dram_w;
            std::printf("%-10s %10lu %12lu %10.1f %10.2f %10.3f\n",
                        on ? "on" : "off",
                        static_cast<unsigned long>(run.perf.cycles),
                        static_cast<unsigned long>(txn),
                        run.perf.time_s * 1e6, total_w,
                        total_w * run.perf.time_s * 1e3);
        }
        std::printf("\n(disabling the coalescer multiplies memory "
                    "transactions and stretches runtime; energy per "
                    "kernel rises accordingly)\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
