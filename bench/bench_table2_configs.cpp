/**
 * @file
 * Reproduces Table II (key features of the evaluated GPUs) from the
 * configuration presets, runs both presets against a common workload
 * set on the batch simulation engine to contrast their measured
 * behavior, and prints the Table III equivalent of this
 * reproduction's software environment.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

int
main()
{
    try {
        GpuConfig a = GpuConfig::gt240();
        GpuConfig b = GpuConfig::gtx580();

        std::printf("=== Table II: key features of the evaluated "
                    "GPUs ===\n");
        std::printf("%-22s %14s %14s\n", "Feature", "GT240", "GTX580");
        std::printf("%-22s %14u %14u\n", "#Cores", a.numCores(),
                    b.numCores());
        std::printf("%-22s %14u %14u\n", "#Threads per core",
                    a.core.max_threads, b.core.max_threads);
        std::printf("%-22s %14u %14u\n", "#FUs per core",
                    a.core.fp_lanes, b.core.fp_lanes);
        std::printf("%-22s %11.0f MHz %11.0f MHz\n", "Uncore clock",
                    a.clocks.uncore_hz / 1e6, b.clocks.uncore_hz / 1e6);
        std::printf("%-22s %13.2fx %13.2fx\n", "Shader-to-Uncore",
                    a.clocks.shader_to_uncore,
                    b.clocks.shader_to_uncore);
        std::printf("%-22s %14u %14u\n", "#Warps in-flight",
                    a.core.maxWarps(), b.core.maxWarps());
        std::printf("%-22s %14s %14s\n", "Scoreboard",
                    a.core.scoreboard ? "yes" : "no",
                    b.core.scoreboard ? "yes" : "no");
        std::printf("%-22s %14s %11u KB\n", "L2-$ size",
                    a.l2.present ? "?" : "none",
                    b.l2.total_bytes / 1024);
        std::printf("%-22s %12u nm %12u nm\n", "Process node",
                    a.tech.node_nm, b.tech.node_nm);

        // Measured contrast: both Table II presets through the batch
        // engine under a small common workload set (a subset of the
        // sweep bench_sweep_throughput times for scaling).
        sim::SweepSpec spec;
        spec.configs = {a, b};
        spec.workloads = {"vectoradd", "scalarprod", "matmul",
                          "blackscholes"};
        sim::SimulationEngine engine;
        sim::SweepResult result = engine.run(spec);

        std::printf("\n=== Measured on the simulation engine "
                    "(%u workers) ===\n", engine.jobs());
        std::fputs(result.formatTable().c_str(), stdout);

        std::printf("\n=== Table III equivalent: reproduction "
                    "environment ===\n");
        std::printf("%-22s %s\n", "Feature", "Simulation");
        std::printf("%-22s %s\n", "Performance simulator",
                    "gpusimpow::perf (from scratch, GPGPU-Sim-class)");
        std::printf("%-22s %s\n", "Power model",
                    "gpusimpow::power (McPAT/CACTI-class analytic + "
                    "empirical)");
        std::printf("%-22s %s\n", "Hardware",
                    "virtual cards + simulated DAQ testbed "
                    "(see DESIGN.md section2)");
        std::printf("%-22s %s\n", "Language", "C++20");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
