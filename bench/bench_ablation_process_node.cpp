/**
 * @file
 * Ablation: ITRS process-node scaling (the stated reason the paper
 * builds on McPAT: "we can use the ITRS roadmap scaling techniques").
 * Projects the GT240 architecture across 65..28 nm and reports
 * static power, area, and peak dynamic power.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "power/chip_power.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Ablation: process-node scaling of the GT240 "
                    "architecture ===\n");
        std::printf("%6s %8s %12s %12s %12s\n", "node", "Vdd",
                    "static[W]", "area[mm2]", "peak dyn[W]");
        for (unsigned node : {65u, 45u, 40u, 32u, 28u}) {
            GpuConfig cfg = GpuConfig::gt240();
            cfg.tech.node_nm = node;
            cfg.tech.vdd = -1.0;   // nominal Vdd of the node
            // Use nominal Vdd from the tech table.
            power::GpuPowerModel model(cfg);
            std::printf("%4u nm %8.2f %12.2f %12.1f %12.1f\n", node,
                        model.techNode().vdd, model.staticPower(),
                        model.area(), model.peakDynamicPower());
        }
        std::printf("\n(cell area scales with F^2; HP leakage per "
                    "micron rises toward smaller nodes, so static "
                    "power does not shrink with area)\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
