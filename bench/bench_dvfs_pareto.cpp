/**
 * @file
 * DVFS Pareto-front bench: sweeps a two-dimensional V/f grid on the
 * GT240 and GTX580 (aggregating a small workload mix per operating
 * point) and emits the energy-versus-runtime Pareto front of each
 * card — the frontier a DVFS governor would pick operating points
 * from. Points off the front are dominated: some other operating
 * point is faster AND cheaper in energy.
 *
 * The grid intentionally includes mismatched pairs (high V at low f,
 * low V at high f). Low-V/high-f corners are electrically infeasible
 * — the alpha-power delay law (OperatingPoint::maxFreqScale) caps the
 * clock a supply can sustain — and are excluded from the front;
 * high-V/low-f corners are textbook-dominated and must never appear
 * on it, which doubles as a sanity check of the operating-point
 * model.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <vector>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace gpusimpow;

namespace {

struct PointSummary
{
    OperatingPoint op;
    double time_s = 0.0;
    double energy_j = 0.0;
    bool pareto = false;
};

/** Aggregate one card's sweep rows into per-operating-point totals. */
std::vector<PointSummary>
summarize(const sim::SweepResult &result,
          const std::vector<OperatingPoint> &ops,
          std::size_t workloads_per_op)
{
    std::vector<PointSummary> points(ops.size());
    for (std::size_t p = 0; p < ops.size(); ++p) {
        points[p].op = ops[p];
        for (std::size_t w = 0; w < workloads_per_op; ++w) {
            const sim::ScenarioResult &r =
                result.at(p * workloads_per_op + w);
            if (!r.verified)
                fatal("verification failed for ", r.scenario.label);
            points[p].time_s += r.time_s;
            points[p].energy_j += r.energy_j;
        }
    }
    // Pareto membership among feasible points: no other feasible
    // point is strictly better on one axis and at least as good on
    // the other.
    for (PointSummary &a : points) {
        a.pareto = a.op.isFeasible() &&
                   std::none_of(
                       points.begin(), points.end(),
                       [&](const PointSummary &b) {
                           if (!b.op.isFeasible())
                               return false;
                           return (b.time_s < a.time_s &&
                                   b.energy_j <= a.energy_j) ||
                                  (b.time_s <= a.time_s &&
                                   b.energy_j < a.energy_j);
                       });
    }
    return points;
}

void
printCard(const char *name, const std::vector<PointSummary> &points)
{
    std::printf("--- %s ---\n", name);
    std::printf("%-12s %12s %12s %10s  %s\n", "point", "time[us]",
                "energy[mJ]", "EDP[uJ*s]", "front");
    for (const PointSummary &p : points) {
        std::printf("%-12s %12.1f %12.3f %10.4f  %s\n",
                    p.op.label().c_str(), p.time_s * 1e6,
                    p.energy_j * 1e3, p.energy_j * p.time_s * 1e9,
                    p.pareto ? "PARETO"
                             : (p.op.isFeasible() ? "-"
                                                  : "infeasible"));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    try {
        // V rows x f columns, plus the nominal point. Includes
        // dominated corners on purpose (e.g. 1.1:0.7).
        std::vector<OperatingPoint> grid;
        for (double v : {0.8, 0.9, 1.0, 1.1})
            for (double f : {0.7, 0.85, 1.0, 1.09})
                grid.push_back({v, f});

        std::vector<std::string> workloads = {"vectoradd",
                                              "blackscholes"};

        std::printf("=== DVFS energy/runtime Pareto front (%zu-point "
                    "V/f grid, %zu workloads) ===\n\n", grid.size(),
                    workloads.size());

        auto t0 = std::chrono::steady_clock::now();
        for (const char *gpu : {"gt240", "gtx580"}) {
            sim::SweepSpec spec;
            spec.configs = {std::string(gpu) == "gt240"
                                ? GpuConfig::gt240()
                                : GpuConfig::gtx580()};
            spec.operating_points = grid;
            spec.workloads = workloads;
            sim::SimulationEngine engine;
            sim::SweepResult result = engine.run(spec);
            printCard(spec.configs[0].name.c_str(),
                      summarize(result, grid, workloads.size()));
        }
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::printf("simulated %zu scenarios in %.2f s\n",
                    2 * grid.size() * workloads.size(), wall);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
