/**
 * @file
 * Ablation: warp issue scheduling. The modeled hardware uses the
 * rotating-priority (round-robin) scheduler of [16]; the paper's
 * conclusion lists scheduler studies (two-level scheduling [32]) as
 * target research. This bench compares round-robin against
 * greedy-then-oldest on a latency-sensitive and a compute-bound
 * kernel.
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

int
main()
{
    try {
        std::printf("=== Ablation: warp scheduler policy (GT240) "
                    "===\n");
        std::printf("%-14s %-8s %10s %10s %12s\n", "kernel", "policy",
                    "cycles", "time[us]", "total[W]");
        for (const char *wl_name : {"vectoradd", "blackscholes"}) {
            for (const char *policy : {"rr", "gto"}) {
                GpuConfig cfg = GpuConfig::gt240();
                cfg.core.sched_policy = policy;
                Simulator sim(cfg);
                auto wl = workloads::makeWorkload(wl_name);
                auto seq = wl->prepare(sim.gpu());
                KernelRun run =
                    sim.runKernel(seq[0].prog, seq[0].launch);
                if (!wl->verify(sim.gpu()))
                    fatal(wl_name, " verification failed");
                std::printf("%-14s %-8s %10lu %10.1f %12.2f\n",
                            wl_name, policy,
                            static_cast<unsigned long>(run.perf.cycles),
                            run.perf.time_s * 1e6,
                            run.report.totalPower() +
                                run.report.dram_w);
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
