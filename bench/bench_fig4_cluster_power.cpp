/**
 * @file
 * Reproduces Fig. 4 of the paper: the same kernel run 12 times with
 * 1..12 thread blocks on the GT240 (12 cores in 4 clusters). The
 * measured card power rises in a staircase: the first block turns on
 * the global scheduler (+3.34 W) plus a cluster and a core; blocks
 * 2-4 each light up a previously idle cluster (+0.692 W plus a
 * core); blocks 5-12 only add cores. The bench prints the per-phase
 * measured power, the step deltas, and an ASCII rendition of the
 * waveform.
 */

#include <cmath>
#include <cstdio>
#include <exception>
#include <vector>

#include "common/logging.hh"
#include "measure/testbed.hh"
#include "measure/virtual_hw.hh"
#include "sim/simulator.hh"
#include "workloads/microbench.hh"

using namespace gpusimpow;

int
main()
{
    try {
        GpuConfig cfg = GpuConfig::gt240();
        Simulator sim(cfg);
        measure::VirtualHardware hw(cfg, sim.powerModel().staticPower(),
                                    0x5EED);
        measure::Testbed testbed(cfg, 0x5EED);

        uint32_t sink = sim.gpu().allocator().alloc(64 * 1024);
        perf::KernelProgram prog =
            workloads::makeOccupancyKernel(4000, sink);

        std::printf("=== Figure 4: power vs thread blocks (GT240, "
                    "12 cores in 4 clusters) ===\n");
        std::printf("%-8s %10s %12s %10s\n", "blocks", "kernel[us]",
                    "power[W]", "step[W]");

        std::vector<double> levels;
        double gap_power = hw.preKernelPower();
        for (unsigned blocks = 1; blocks <= cfg.numCores(); ++blocks) {
            perf::LaunchConfig lc;
            lc.grid = {blocks, 1};
            lc.block = {256, 1};
            KernelRun run = sim.runKernel(prog, lc, true, 20e-6);
            // Average modeled dynamic power over the kernel.
            double dyn = run.report.dynamicPower();
            double dram = run.report.dram_w;
            double level = hw.cardPower("occupancy", dyn, dram);
            // Measure through the testbed (steady phase).
            measure::Trace trace = testbed.record(
                [&](double t) { return t < 1e-3 ? gap_power : level; },
                11e-3, hw.supplyTau());
            double meas =
                measure::Testbed::analyze(trace, 3e-3, 11e-3).avg_power_w;
            double step = levels.empty() ? meas - gap_power
                                         : meas - levels.back();
            levels.push_back(meas);
            std::printf("%-8u %10.1f %12.2f %+9.3f\n", blocks,
                        run.perf.time_s * 1e6, meas, step);
        }

        // The paper's annotated quantities.
        double first_step = levels[0] - gap_power;
        double cluster_step = ((levels[1] - levels[0]) +
                               (levels[2] - levels[1]) +
                               (levels[3] - levels[2])) / 3.0;
        double core_step = (levels[11] - levels[3]) / 8.0;
        std::printf("\nfirst-block step: %.2f W (paper: 3.34 W global "
                    "scheduler + cluster + core)\n", first_step);
        std::printf("cluster activation step (blocks 2-4 avg): %.3f W "
                    "above the core step (paper: 0.692 W)\n",
                    cluster_step - core_step);
        std::printf("per-core step (blocks 5-12 avg): %.3f W\n",
                    core_step);

        // ASCII waveform, one column per 0.25 s of the paper's x
        // axis equivalent: render the 12 levels between idle rails.
        std::printf("\nwaveform (each phase, '#' = measured level):\n");
        double lo = gap_power - 1.0;
        double hi = levels.back() + 1.0;
        for (int row = 9; row >= 0; --row) {
            double level_at_row = lo + (hi - lo) * (row + 0.5) / 10.0;
            std::printf("%6.1fW |", level_at_row);
            for (double l : levels) {
                std::printf("%c%c%c", ' ',
                            l >= level_at_row ? '#' : ' ', ' ');
            }
            std::printf("\n");
        }
        std::printf("        +");
        for (size_t i = 0; i < levels.size(); ++i)
            std::printf("---");
        std::printf("\n         ");
        for (size_t i = 1; i <= levels.size(); ++i)
            std::printf("%2zu ", i);
        std::printf(" blocks\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
