/**
 * @file
 * Reproduces the SectionIII-D microbenchmark experiment: estimate
 * the energy per INT and per FP instruction by running the LFSR /
 * Mandelbrot loops with 31 and 1 enabled lanes per warp (identical
 * execution time), measuring both through the testbed, and dividing
 * the energy difference by instructions x cores x lanes-enabled
 * delta. The paper measures ~40 pJ (INT) and ~75 pJ (FP); NVIDIA
 * reports 50 pJ per FP instruction [28].
 */

#include <cstdio>
#include <exception>

#include "common/logging.hh"
#include "measure/testbed.hh"
#include "measure/virtual_hw.hh"
#include "sim/simulator.hh"
#include "workloads/microbench.hh"

using namespace gpusimpow;

namespace {

double
measureVariant(Simulator &sim, measure::VirtualHardware &hw,
               measure::Testbed &testbed, const perf::KernelProgram &prog,
               const perf::LaunchConfig &lc, double &out_time_s)
{
    KernelRun run = sim.runKernel(prog, lc);
    out_time_s = run.perf.time_s;
    double level = hw.cardPower(prog.name, run.report.dynamicPower(),
                                run.report.dram_w);
    double gap = hw.preKernelPower();
    measure::Trace trace = testbed.record(
        [&](double t) { return t < 1e-3 ? gap : level; }, 11e-3,
        hw.supplyTau());
    return measure::Testbed::analyze(trace, 3e-3, 11e-3).avg_power_w;
}

} // namespace

int
main()
{
    try {
        GpuConfig cfg = GpuConfig::gt240();
        Simulator sim(cfg);
        measure::VirtualHardware hw(cfg, sim.powerModel().staticPower(),
                                    0x5EED);
        measure::Testbed testbed(cfg, 0x5EED);
        uint32_t sink = sim.gpu().allocator().alloc(64 * 1024);

        // SectionIII-D setup: one block per core, 512 threads/block.
        perf::LaunchConfig lc;
        lc.grid = {cfg.numCores(), 1};
        lc.block = {512, 1};
        const unsigned iterations = 2000;
        const unsigned warps_per_block = 512 / cfg.core.warp_size;

        std::printf("=== SectionIII-D: energy per operation "
                    "(differential lane enabling) ===\n");

        struct Variant
        {
            const char *name;
            bool is_fp;
            double paper_pj;
            unsigned body_ops;
        };
        Variant variants[] = {
            {"INT (LFSR loop)", false, 40.0,
             workloads::int_body_ops_per_iter},
            {"FP (Mandelbrot loop)", true, 75.0,
             workloads::fp_body_ops_per_iter},
        };

        for (const Variant &v : variants) {
            double t31 = 0.0;
            double t1 = 0.0;
            perf::KernelProgram p31 =
                v.is_fp ? workloads::makeFpMicrobench(iterations, 31, sink)
                        : workloads::makeIntMicrobench(iterations, 31,
                                                       sink);
            perf::KernelProgram p1 =
                v.is_fp ? workloads::makeFpMicrobench(iterations, 1, sink)
                        : workloads::makeIntMicrobench(iterations, 1,
                                                       sink);
            double pow31 =
                measureVariant(sim, hw, testbed, p31, lc, t31);
            double pow1 = measureVariant(sim, hw, testbed, p1, lc, t1);

            // Both variants must take the same time (the guard only
            // disables lanes, not instructions).
            double time_skew = std::abs(t31 - t1) / t31;
            // Energy difference over the kernel duration.
            double delta_e = (pow31 - pow1) * t31;
            // Executed body warp-instructions across the chip.
            double warp_insts = static_cast<double>(iterations) *
                                v.body_ops * warps_per_block *
                                cfg.numCores();
            double delta_lanes = 31.0 - 1.0;
            double pj_per_op =
                delta_e / (warp_insts * delta_lanes) * 1e12;

            std::printf("%-22s 31-lane %7.2f W, 1-lane %7.2f W, "
                        "time skew %.2f%%\n",
                        v.name, pow31, pow1, time_skew * 100.0);
            std::printf("%-22s => %.1f pJ/op (paper: ~%.0f pJ%s)\n\n",
                        "", pj_per_op, v.paper_pj,
                        v.is_fp ? "; NVIDIA reports 50 pJ [28]" : "");
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
