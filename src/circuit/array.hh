/**
 * @file
 * Memory-array circuit models: the analytic tier the paper borrows
 * from CACTI 6.5 via McPAT. SramArray models RAM structures (register
 * file banks, caches, SMEM, the Warp Status Table); CamArray models
 * content-addressed structures (scoreboard lookup, instruction-buffer
 * warp tags); DffStorage models small wide buffers that CACTI cannot
 * represent — exactly the coalescer pending-request table / input
 * queue case called out in SectionIII-C4 of the paper ("we compute
 * the total amount of bits ... and model the required storage using
 * D-FlipFlops").
 */

#ifndef GPUSIMPOW_CIRCUIT_ARRAY_HH
#define GPUSIMPOW_CIRCUIT_ARRAY_HH

#include "tech/tech.hh"

namespace gpusimpow {
namespace circuit {

/** Area/energy/leakage summary every circuit primitive exposes. */
struct CircuitNumbers
{
    /** Silicon area, m^2. */
    double area_m2 = 0.0;
    /** Energy of one read access, J. */
    double read_energy_j = 0.0;
    /** Energy of one write access, J. */
    double write_energy_j = 0.0;
    /** Subthreshold leakage power, W. */
    double leakage_w = 0.0;
    /** Gate leakage power, W. */
    double gate_leak_w = 0.0;
};

/** Geometry of an SRAM array. */
struct SramParams
{
    /** Number of addressable entries. */
    unsigned entries = 1;
    /** Bits per entry. */
    unsigned bits_per_entry = 32;
    /** Exclusive read ports. */
    unsigned read_ports = 1;
    /** Exclusive write ports. */
    unsigned write_ports = 1;
    /** Shared read/write ports. */
    unsigned rw_ports = 0;
    /** Internal banks (sub-arrays accessed independently). */
    unsigned banks = 1;
    /** Device flavor (HP for core-clock arrays, LSTP for big SRAM). */
    tech::DeviceType device = tech::DeviceType::HP;
};

/**
 * Analytic SRAM array model (CACTI-lite). The decomposition mirrors
 * CACTI: decoder, wordline, bitlines with reduced-swing reads,
 * sense amplifiers, and output drivers, plus an H-tree routing
 * overhead factor for large arrays.
 */
class SramArray
{
  public:
    /**
     * @param p array geometry
     * @param t technology node
     */
    SramArray(const SramParams &p, const tech::TechNode &t);

    /** Computed circuit numbers. */
    const CircuitNumbers &numbers() const { return _numbers; }
    /** Area in m^2. */
    double area() const { return _numbers.area_m2; }
    /** Energy of a read access, J. */
    double readEnergy() const { return _numbers.read_energy_j; }
    /** Energy of a write access, J. */
    double writeEnergy() const { return _numbers.write_energy_j; }
    /** Total leakage power, W. */
    double leakage() const
    {
        return _numbers.leakage_w + _numbers.gate_leak_w;
    }
    /** Total transistor storage bits. */
    double bits() const { return _bits; }

  private:
    CircuitNumbers _numbers;
    double _bits = 0.0;
};

/** Geometry of a CAM array. */
struct CamParams
{
    /** Number of entries. */
    unsigned entries = 1;
    /** Tag bits compared per search. */
    unsigned tag_bits = 8;
    /** Payload bits read out on a match. */
    unsigned data_bits = 32;
    /** Search ports. */
    unsigned search_ports = 1;
};

/**
 * Content-addressable memory model: a search broadcasts the tag on
 * matchlines (all entries switch), a hit reads the payload like a
 * small SRAM.
 */
class CamArray
{
  public:
    CamArray(const CamParams &p, const tech::TechNode &t);

    const CircuitNumbers &numbers() const { return _numbers; }
    /** Energy of one associative search, J. */
    double searchEnergy() const { return _numbers.read_energy_j; }
    /** Energy of one entry update, J. */
    double writeEnergy() const { return _numbers.write_energy_j; }
    double area() const { return _numbers.area_m2; }
    double leakage() const
    {
        return _numbers.leakage_w + _numbers.gate_leak_w;
    }

  private:
    CircuitNumbers _numbers;
};

/**
 * Flip-flop-based storage for wide shallow buffers (coalescer
 * pending-request table, queues between pipeline stages).
 */
class DffStorage
{
  public:
    /**
     * @param bits total storage bits
     * @param t technology node
     */
    DffStorage(double bits, const tech::TechNode &t);

    const CircuitNumbers &numbers() const { return _numbers; }
    double area() const { return _numbers.area_m2; }
    /** Energy to write (toggle) the full buffer width once, J. */
    double writeEnergy() const { return _numbers.write_energy_j; }
    /** Energy to read the buffer (mux-out), J. */
    double readEnergy() const { return _numbers.read_energy_j; }
    double leakage() const
    {
        return _numbers.leakage_w + _numbers.gate_leak_w;
    }
    /** Capacitance presented to the clock network, F. */
    double clockCap() const { return _clock_cap; }

  private:
    CircuitNumbers _numbers;
    double _clock_cap = 0.0;
};

} // namespace circuit
} // namespace gpusimpow

#endif // GPUSIMPOW_CIRCUIT_ARRAY_HH
