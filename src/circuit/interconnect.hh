/**
 * @file
 * On-chip interconnect circuit models: crossbars (register-file
 * operand distribution, SMEM/L1 address+data networks of Fig. 3),
 * the clock distribution network, and NoC routers/links reused for
 * the chip-level network the paper inherits from McPAT.
 */

#ifndef GPUSIMPOW_CIRCUIT_INTERCONNECT_HH
#define GPUSIMPOW_CIRCUIT_INTERCONNECT_HH

#include "circuit/array.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace circuit {

/**
 * Matrix crossbar: n_in input ports to n_out output ports, each
 * `bits` wide. Area grows with the wire grid; a transfer charges one
 * full input wire track and one output track.
 */
class Crossbar
{
  public:
    /**
     * @param n_in input ports
     * @param n_out output ports
     * @param bits datapath width per port
     * @param t technology node
     */
    Crossbar(unsigned n_in, unsigned n_out, unsigned bits,
             const tech::TechNode &t);

    const CircuitNumbers &numbers() const { return _numbers; }
    double area() const { return _numbers.area_m2; }
    /** Energy of transferring one `bits`-wide word, J. */
    double transferEnergy() const { return _numbers.read_energy_j; }
    double leakage() const
    {
        return _numbers.leakage_w + _numbers.gate_leak_w;
    }

  private:
    CircuitNumbers _numbers;
};

/**
 * H-tree clock distribution over a given area driving a given load
 * capacitance. Power = C_total * Vdd^2 * f, modulated by the gated
 * fraction at runtime (handled by the power layer).
 */
class ClockNetwork
{
  public:
    /**
     * @param area_m2 region the tree spans
     * @param load_cap_farad total clocked-element capacitance
     * @param t technology node
     */
    ClockNetwork(double area_m2, double load_cap_farad,
                 const tech::TechNode &t);

    /** Total switched capacitance per clock edge pair, F. */
    double totalCap() const { return _total_cap; }
    /** Dynamic power at frequency f with no gating, W. */
    double power(double f_hz) const;
    /** Buffer leakage power, W. */
    double leakage() const { return _leakage_w; }

  private:
    double _total_cap = 0.0;
    double _leakage_w = 0.0;
    double _vdd = 1.0;
};

/**
 * One NoC router: per-port input buffers, a switch crossbar, and a
 * round-robin allocator; plus point-to-point links of configurable
 * length. Used for the chip-level network connecting cores to L2/MC
 * (paper SectionIII-C: "For NoC, MC, and PCIeC, we re-used the highly
 * configurable models already present in McPAT").
 */
class Router
{
  public:
    /**
     * @param ports in/out port count
     * @param flit_bits link/flit width
     * @param buffer_flits buffer depth per input port
     * @param link_length_m average link length to the next hop
     * @param t technology node
     */
    Router(unsigned ports, unsigned flit_bits, unsigned buffer_flits,
           double link_length_m, const tech::TechNode &t);

    double area() const { return _area_m2; }
    /** Energy for one flit traversing buffer+switch+allocator, J. */
    double flitEnergy() const { return _flit_energy_j; }
    /** Energy for one flit on the outgoing link, J. */
    double linkEnergy() const { return _link_energy_j; }
    double leakage() const { return _leakage_w; }

  private:
    double _area_m2 = 0.0;
    double _flit_energy_j = 0.0;
    double _link_energy_j = 0.0;
    double _leakage_w = 0.0;
};

} // namespace circuit
} // namespace gpusimpow

#endif // GPUSIMPOW_CIRCUIT_INTERCONNECT_HH
