#include "circuit/array.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace circuit {

namespace {

// Width (in um) of the transistors in one 6T cell's pass gates and
// pull-downs, expressed as multiples of the minimum width.
constexpr double pass_width_mult = 1.0;
constexpr double cell_leak_width_mult = 2.0;

// Reads are sensed at a reduced bitline swing.
constexpr double read_swing_frac = 0.25;

// Fixed overhead of decoders, sense amps, drivers, and H-tree
// routing, applied multiplicatively to the core array energies.
// Calibrated so a 16KB array reads ~32B for O(10 pJ) at 40 nm, in
// line with CACTI 6.5 results for comparable arrays.
constexpr double periphery_energy_overhead = 2.2;
constexpr double periphery_area_overhead = 1.35;
constexpr double periphery_leak_overhead = 1.25;

} // namespace

SramArray::SramArray(const SramParams &p, const tech::TechNode &t)
{
    GSP_ASSERT(p.entries > 0 && p.bits_per_entry > 0,
               "SRAM array must have entries and width");
    unsigned total_ports = p.read_ports + p.write_ports + p.rw_ports;
    GSP_ASSERT(total_ports > 0, "SRAM array needs at least one port");

    _bits = static_cast<double>(p.entries) * p.bits_per_entry;

    // Aspect: split entries over banks; a bank is organised as close
    // to square as the entry width permits.
    double entries_per_bank =
        std::ceil(static_cast<double>(p.entries) / p.banks);
    double rows = entries_per_bank;
    double cols = static_cast<double>(p.bits_per_entry);
    // Fold very tall banks (CACTI's Ndwl-style degree of freedom).
    while (rows > 4.0 * cols && rows >= 2.0) {
        rows = std::ceil(rows / 2.0);
        cols *= 2.0;
    }

    // Cell geometry. Every port beyond the first adds a wordline and
    // a bitline pair: ~70% of the base cell footprint each.
    double port_factor = 1.0 + 0.7 * (total_ports - 1);
    double cell_area = t.sramCellArea() * port_factor;
    double cell_w = std::sqrt(cell_area * 2.0);  // cells are ~2:1
    double cell_h = cell_area / cell_w;

    double w_pass_um = pass_width_mult * t.w_min_m * 1e6;
    const tech::Device &dev =
        p.device == tech::DeviceType::HP ? t.hp : t.lstp;

    // Wordline: gate cap of two pass transistors per cell plus wire.
    double c_wordline = cols * (2.0 * dev.c_gate_per_um * w_pass_um) +
                        cols * cell_w * t.c_wire_per_m;
    // One bitline column: drain cap per cell plus wire.
    double c_bitline = rows * (dev.c_diff_per_um * w_pass_um) +
                       rows * cell_h * t.c_wire_per_m;

    // Read: wordline full swing + all columns swing partially.
    double e_read_core = c_wordline * t.vdd * t.vdd +
                         cols * c_bitline * t.vdd *
                             (t.vdd * read_swing_frac);
    // Write: wordline + full-swing bitline pairs.
    double e_write_core = c_wordline * t.vdd * t.vdd +
                          cols * c_bitline * t.vdd * t.vdd;

    _numbers.read_energy_j = e_read_core * periphery_energy_overhead;
    _numbers.write_energy_j = e_write_core * periphery_energy_overhead;

    _numbers.area_m2 = _bits * cell_area * periphery_area_overhead;

    double leak_width_um =
        _bits * cell_leak_width_mult * (t.w_min_m * 1e6);
    _numbers.leakage_w =
        t.leakage(leak_width_um, p.device) * periphery_leak_overhead;
    _numbers.gate_leak_w = t.gateLeakage(leak_width_um, p.device);
}

CamArray::CamArray(const CamParams &p, const tech::TechNode &t)
{
    GSP_ASSERT(p.entries > 0 && p.tag_bits > 0,
               "CAM must have entries and a tag");

    // A search drives the tag bits across every entry: each CAM cell
    // presents two comparison-gate caps, and all matchlines
    // precharge/discharge.
    double w_um = t.w_min_m * 1e6;
    double c_per_cell = 2.0 * t.hp.c_gate_per_um * w_um +
                        t.hp.c_diff_per_um * w_um;
    double c_search = static_cast<double>(p.entries) * p.tag_bits *
                      c_per_cell;
    double c_matchlines = static_cast<double>(p.entries) *
                          (p.tag_bits * t.hp.c_diff_per_um * w_um);

    _numbers.read_energy_j =
        (c_search + c_matchlines) * t.vdd * t.vdd *
        periphery_energy_overhead;

    // Payload readout behaves like a tiny SRAM row read.
    SramParams data;
    data.entries = p.entries;
    data.bits_per_entry = p.data_bits > 0 ? p.data_bits : 1;
    SramArray payload(data, t);
    _numbers.read_energy_j += payload.readEnergy();
    _numbers.write_energy_j =
        payload.writeEnergy() +
        p.tag_bits * c_per_cell * t.vdd * t.vdd;

    // CAM cells are ~2x the area of 6T RAM cells (9T-10T designs).
    double cam_bits = static_cast<double>(p.entries) * p.tag_bits;
    _numbers.area_m2 = cam_bits * 2.0 * t.sramCellArea() *
                           periphery_area_overhead +
                       payload.area();
    double leak_width_um = cam_bits * 3.0 * w_um;
    _numbers.leakage_w = t.leakage(leak_width_um) + payload.numbers().leakage_w;
    _numbers.gate_leak_w =
        t.gateLeakage(leak_width_um) + payload.numbers().gate_leak_w;

    // Scale search energy with port count (wider drivers).
    if (p.search_ports > 1) {
        _numbers.read_energy_j *= p.search_ports;
        _numbers.area_m2 *= 1.0 + 0.5 * (p.search_ports - 1);
    }
}

DffStorage::DffStorage(double bits, const tech::TechNode &t)
{
    GSP_ASSERT(bits >= 0.0, "negative bit count");

    // One D-flip-flop: ~24 transistors, ~20 F^2 x 24 of area, input
    // cap of a couple of gates, clock pin cap of two gates.
    double w_um = t.w_min_m * 1e6;
    double c_in_per_ff = 2.0 * t.hp.c_gate_per_um * w_um;
    double c_internal_per_ff = 6.0 * t.hp.c_gate_per_um * w_um;
    double c_clk_per_ff = 2.0 * t.hp.c_gate_per_um * w_um;

    // Writing toggles ~50% of bits on average (alpha folded in here).
    _numbers.write_energy_j =
        bits * 0.5 * (c_in_per_ff + c_internal_per_ff) * t.vdd * t.vdd;
    // Reading muxes the stored bits out.
    _numbers.read_energy_j =
        bits * 0.5 * c_in_per_ff * t.vdd * t.vdd;

    double ff_area = 24.0 * 20.0 * t.feature_m * t.feature_m;
    _numbers.area_m2 = bits * ff_area;

    double leak_width_um = bits * 6.0 * w_um;
    _numbers.leakage_w = t.leakage(leak_width_um);
    _numbers.gate_leak_w = t.gateLeakage(leak_width_um);

    _clock_cap = bits * c_clk_per_ff;
}

} // namespace circuit
} // namespace gpusimpow
