/**
 * @file
 * Random-logic circuit models: the power-optimized parallel
 * priority-look-ahead encoder of Kun et al. [16] that the paper uses
 * for the rotating-priority (round-robin) warp schedulers, a
 * McPAT-style instruction decoder, and ripple/prefix adders for the
 * analytic part of the AGU model.
 */

#ifndef GPUSIMPOW_CIRCUIT_LOGIC_HH
#define GPUSIMPOW_CIRCUIT_LOGIC_HH

#include "circuit/array.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace circuit {

/**
 * Rotating-priority encoder: a ring of inverters (priority masking),
 * a wide parallel priority-look-ahead encoder, and a phase counter,
 * following the circuit plan of [16] as described in SectionIII-C1.
 */
class PriorityEncoder
{
  public:
    /**
     * @param inputs number of request lines (in-flight warps)
     * @param t technology node
     */
    PriorityEncoder(unsigned inputs, const tech::TechNode &t);

    double area() const { return _area_m2; }
    /** Energy of one arbitration, J. */
    double arbitrationEnergy() const { return _energy_j; }
    double leakage() const { return _leakage_w; }
    /** Clock load of the phase counter, F. */
    double clockCap() const { return _clock_cap; }

  private:
    double _area_m2 = 0.0;
    double _energy_j = 0.0;
    double _leakage_w = 0.0;
    double _clock_cap = 0.0;
};

/**
 * Instruction decoder modeled as in McPAT: a predecoder and a
 * PLA-like decode stage whose cost scales with opcode space and
 * instruction width.
 */
class InstructionDecoder
{
  public:
    /**
     * @param opcode_bits opcode field width
     * @param instr_bits total instruction width
     * @param t technology node
     */
    InstructionDecoder(unsigned opcode_bits, unsigned instr_bits,
                       const tech::TechNode &t);

    double area() const { return _area_m2; }
    /** Energy of decoding one instruction, J. */
    double decodeEnergy() const { return _energy_j; }
    double leakage() const { return _leakage_w; }

  private:
    double _area_m2 = 0.0;
    double _energy_j = 0.0;
    double _leakage_w = 0.0;
};

/**
 * Prefix adder, the datapath core of a sub-AGU [22]. The empirical
 * per-address energy of the paper's AGU model lives in the power
 * layer; this circuit provides area and leakage.
 */
class Adder
{
  public:
    /**
     * @param bits operand width
     * @param t technology node
     */
    Adder(unsigned bits, const tech::TechNode &t);

    double area() const { return _area_m2; }
    /** Energy of one addition, J. */
    double addEnergy() const { return _energy_j; }
    double leakage() const { return _leakage_w; }

  private:
    double _area_m2 = 0.0;
    double _energy_j = 0.0;
    double _leakage_w = 0.0;
};

} // namespace circuit
} // namespace gpusimpow

#endif // GPUSIMPOW_CIRCUIT_LOGIC_HH
