#include "circuit/interconnect.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace circuit {

Crossbar::Crossbar(unsigned n_in, unsigned n_out, unsigned bits,
                   const tech::TechNode &t)
{
    GSP_ASSERT(n_in > 0 && n_out > 0 && bits > 0, "degenerate crossbar");

    // Wire-grid footprint: input tracks run horizontally, output
    // tracks vertically, one track per bit per port.
    double track = t.wire_pitch_m;
    double width = static_cast<double>(n_out) * bits * track;
    double height = static_cast<double>(n_in) * bits * track;
    _numbers.area_m2 = width * height;

    // A transfer drives `bits` input wires of length `width` and
    // `bits` output wires of length `height`, plus the pass-gate
    // drain caps at each crosspoint on the driven tracks.
    double w_um = t.w_min_m * 1e6;
    double c_crosspoint = t.hp.c_diff_per_um * w_um * 2.0;
    double c_in_wire = width * t.c_wire_per_m + n_out * c_crosspoint;
    double c_out_wire = height * t.c_wire_per_m + n_in * c_crosspoint;
    _numbers.read_energy_j =
        bits * (c_in_wire + c_out_wire) * t.vdd * t.vdd * 0.5;
    _numbers.write_energy_j = _numbers.read_energy_j;

    // Crosspoint pass gates leak.
    double leak_width_um =
        static_cast<double>(n_in) * n_out * bits * 0.5 * w_um;
    _numbers.leakage_w = t.leakage(leak_width_um);
    _numbers.gate_leak_w = t.gateLeakage(leak_width_um);
}

ClockNetwork::ClockNetwork(double area_m2, double load_cap_farad,
                           const tech::TechNode &t)
{
    GSP_ASSERT(area_m2 >= 0.0 && load_cap_farad >= 0.0,
               "negative clock network inputs");
    _vdd = t.vdd;

    // H-tree total wire length over a square region of side s:
    // sum over levels of segments ~ 3*s for a 4-level tree.
    double side = std::sqrt(area_m2);
    double wire_len = 3.0 * side;
    double c_wire = wire_len * t.c_wire_per_m;

    // Repeater buffers add ~40% of the driven capacitance.
    double c_buffers = 0.4 * (c_wire + load_cap_farad);
    _total_cap = c_wire + c_buffers + load_cap_farad;

    // Buffer leakage: total buffer width proportional to buffer cap.
    double buf_width_um = c_buffers / t.hp.c_gate_per_um;
    _leakage_w = t.leakage(buf_width_um);
}

double
ClockNetwork::power(double f_hz) const
{
    // The clock switches twice per cycle; the conventional C*V^2*f
    // form with alpha=1 absorbs that into C here.
    return _total_cap * _vdd * _vdd * f_hz;
}

Router::Router(unsigned ports, unsigned flit_bits, unsigned buffer_flits,
               double link_length_m, const tech::TechNode &t)
{
    GSP_ASSERT(ports > 0 && flit_bits > 0, "degenerate router");

    // Input buffers: one SRAM per port.
    SramParams bp;
    bp.entries = buffer_flits > 0 ? buffer_flits : 1;
    bp.bits_per_entry = flit_bits;
    SramArray buffer(bp, t);

    // Switch crossbar.
    Crossbar xbar(ports, ports, flit_bits, t);

    // Allocator: round-robin arbiter per output port, roughly
    // ports^2 grant gates.
    double w_um = t.w_min_m * 1e6;
    double c_arbiter = static_cast<double>(ports) * ports * 4.0 *
                       t.hp.c_gate_per_um * w_um;
    double e_arbiter = c_arbiter * t.vdd * t.vdd * 0.2;

    _flit_energy_j = buffer.readEnergy() + buffer.writeEnergy() +
                     xbar.transferEnergy() + e_arbiter;

    _link_energy_j = flit_bits * link_length_m * t.c_wire_per_m *
                     t.vdd * t.vdd * 0.5;

    _area_m2 = ports * buffer.area() + xbar.area();
    double arb_width_um = static_cast<double>(ports) * ports * 8.0 * w_um;
    _leakage_w = ports * buffer.leakage() + xbar.leakage() +
                 t.leakage(arb_width_um);
    // Link repeaters leak as well.
    double link_buf_width_um =
        flit_bits * link_length_m * 1e3 * 2.0 * w_um;
    _leakage_w += t.leakage(link_buf_width_um);
}

} // namespace circuit
} // namespace gpusimpow
