#include "circuit/logic.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace gpusimpow {
namespace circuit {

namespace {

/** Area of one minimum-size logic gate (4 transistors + routing). */
double
gateArea(const tech::TechNode &t)
{
    return 40.0 * t.feature_m * t.feature_m * 4.0;
}

/** Input capacitance of a 2x minimum gate. */
double
gateCap(const tech::TechNode &t)
{
    return 2.0 * t.hp.c_gate_per_um * (t.w_min_m * 1e6);
}

} // namespace

PriorityEncoder::PriorityEncoder(unsigned inputs, const tech::TechNode &t)
{
    GSP_ASSERT(inputs > 0, "priority encoder needs inputs");

    // Per [16]: log-depth look-ahead structure, ~n*log2(n) gates,
    // plus n masking inverters and a log2(n)-bit phase counter.
    double n = static_cast<double>(inputs);
    double log_n = inputs > 1 ? std::ceil(std::log2(n)) : 1.0;
    double gates = n * log_n + 2.0 * n + 8.0 * log_n;

    double c_gate = gateCap(t);
    // ~20% of gates toggle per arbitration in a look-ahead encoder.
    _energy_j = gates * c_gate * t.vdd * t.vdd * 0.2;
    _area_m2 = gates * gateArea(t);

    double width_um = gates * 4.0 * (t.w_min_m * 1e6) * 0.5;
    _leakage_w = t.leakage(width_um) + t.gateLeakage(width_um);

    _clock_cap = log_n * 2.0 * c_gate;  // phase counter flops
}

InstructionDecoder::InstructionDecoder(unsigned opcode_bits,
                                       unsigned instr_bits,
                                       const tech::TechNode &t)
{
    GSP_ASSERT(opcode_bits > 0 && instr_bits >= opcode_bits,
               "bad decoder widths");

    // Predecode: one gate per instruction bit. Decode: PLA with
    // 2^opcode product terms is too pessimistic; McPAT uses a
    // NAND-NOR structure ~ opcode_bits * 2^(opcode_bits/2).
    double predecode_gates = static_cast<double>(instr_bits) * 2.0;
    double pla_terms = std::pow(2.0, opcode_bits / 2.0) * opcode_bits;
    double gates = predecode_gates + pla_terms;

    double c_gate = gateCap(t);
    _energy_j = gates * c_gate * t.vdd * t.vdd * 0.3;
    _area_m2 = gates * gateArea(t);
    double width_um = gates * 4.0 * (t.w_min_m * 1e6) * 0.5;
    _leakage_w = t.leakage(width_um) + t.gateLeakage(width_um);
}

Adder::Adder(unsigned bits, const tech::TechNode &t)
{
    GSP_ASSERT(bits > 0, "adder needs a width");

    // Kogge-Stone-ish prefix adder: bits*log2(bits) prefix cells +
    // bits sum cells; a cell is ~3 gates.
    double b = static_cast<double>(bits);
    double log_b = bits > 1 ? std::ceil(std::log2(b)) : 1.0;
    double gates = 3.0 * (b * log_b + b);

    double c_gate = gateCap(t);
    _energy_j = gates * c_gate * t.vdd * t.vdd * 0.4;
    _area_m2 = gates * gateArea(t);
    double width_um = gates * 4.0 * (t.w_min_m * 1e6) * 0.5;
    _leakage_w = t.leakage(width_um) + t.gateLeakage(width_um);
}

} // namespace circuit
} // namespace gpusimpow
