/**
 * @file
 * Wire protocol of the sweep service: a length-prefixed line
 * protocol, symmetric in both directions. One frame is
 *
 *     <type> <nbytes>\n
 *     <nbytes payload bytes>\n
 *
 * where <type> is a short lowercase word. The length prefix makes
 * framing independent of payload content (requests embed XML,
 * metrics embed JSON), and the trailing newline keeps a captured
 * conversation readable with a pager.
 *
 * Conversation: a client sends `job` (payload: the serialized
 * SweepRequest); the server streams one `row` per finished scenario
 * (payload: a human-readable progress line, completion order), then
 * `table` (the full formatted result table, deterministic expansion
 * order), `metrics` (the job's SweepTelemetry JSON — the same
 * document `--metrics-json` writes), and `done`. A job that fails
 * server-side yields `error` (payload: the fatal message) instead.
 * `shutdown` asks the server to stop accepting and drain; it is
 * acknowledged with `done`.
 */

#ifndef GPUSIMPOW_SERVICE_PROTOCOL_HH
#define GPUSIMPOW_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <string>

namespace gpusimpow {
namespace service {

/** One protocol frame. */
struct Frame
{
    std::string type;
    std::string payload;
};

/** Frame types (the protocol's full vocabulary). */
namespace frame {
inline constexpr const char *job = "job";
inline constexpr const char *row = "row";
inline constexpr const char *table = "table";
inline constexpr const char *metrics = "metrics";
inline constexpr const char *done = "done";
inline constexpr const char *error = "error";
inline constexpr const char *shutdown = "shutdown";
} // namespace frame

/** Upper bound on one frame's payload; a peer announcing more is
 *  malformed (or hostile) and the connection is dropped. */
constexpr std::size_t max_payload_bytes = 256u << 20;

/** FrameReader::read error string for an idle receive timeout (the
 *  socket's SO_RCVTIMEO expired between frames): the connection is
 *  intact and read() may simply be called again — how the server
 *  stays responsive to stop() while a client sits idle. */
inline constexpr const char *err_timeout = "timeout";

/**
 * Buffered frame reader over one socket. Not thread-safe; one reader
 * per connection side.
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : _fd(fd) {}

    /**
     * Read the next frame. Returns false on clean EOF at a frame
     * boundary or on error (`err` empty vs. the failure reason —
     * mid-frame EOF is an error, not a clean close).
     */
    bool read(Frame &out, std::string &err);

  private:
    int _fd;
    std::string _buf;
};

/** Write one frame (handles short writes); false on socket error. */
bool writeFrame(int fd, const std::string &type,
                const std::string &payload);

} // namespace service
} // namespace gpusimpow

#endif // GPUSIMPOW_SERVICE_PROTOCOL_HH
