#include "service/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "service/protocol.hh"

namespace gpusimpow {
namespace service {

SweepClient::SweepClient(const std::string &host, uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    int gai = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (gai != 0)
        fatal("submit: cannot resolve '", host,
              "': ", ::gai_strerror(gai));
    sockaddr_in addr =
        *reinterpret_cast<const sockaddr_in *>(res->ai_addr);
    ::freeaddrinfo(res);
    addr.sin_port = htons(port);

    _fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_fd < 0)
        fatal("submit: socket(): ", std::strerror(errno));
    if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(_fd);
        _fd = -1;
        fatal("submit: cannot connect to ", host, ":", port, ": ",
              std::strerror(saved));
    }
}

SweepClient::~SweepClient()
{
    if (_fd >= 0)
        ::close(_fd);
}

SweepClient::JobResult
SweepClient::submitJob(
    const sim::SweepRequest &request,
    const std::function<void(const std::string &)> &on_row)
{
    JobResult job;
    if (!writeFrame(_fd, frame::job, request.serialize())) {
        job.error = "failed to send the job frame";
        return job;
    }
    FrameReader reader(_fd);
    for (;;) {
        Frame in;
        std::string err;
        if (!reader.read(in, err)) {
            job.error = err.empty()
                            ? "server closed the connection"
                            : err;
            return job;
        }
        if (in.type == frame::row) {
            ++job.rows;
            if (on_row)
                on_row(in.payload);
        } else if (in.type == frame::table) {
            job.table = in.payload;
        } else if (in.type == frame::metrics) {
            job.metrics_json = in.payload;
        } else if (in.type == frame::done) {
            job.ok = true;
            return job;
        } else if (in.type == frame::error) {
            job.error = in.payload;
            return job;
        } else {
            job.error = "unexpected frame '" + in.type + "'";
            return job;
        }
    }
}

bool
SweepClient::shutdownServer()
{
    if (!writeFrame(_fd, frame::shutdown, ""))
        return false;
    FrameReader reader(_fd);
    Frame in;
    std::string err;
    return reader.read(in, err) && in.type == frame::done;
}

} // namespace service
} // namespace gpusimpow
