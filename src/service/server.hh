/**
 * @file
 * The long-running sweep server: accepts client connections on a TCP
 * port, executes submitted sweep jobs on one shared SweepSession,
 * and streams per-scenario results back as they finish. Because all
 * jobs share the session, identical scenarios across concurrent
 * clients are captured exactly once (the session's in-flight dedupe)
 * and repeat queries are answered from the persistent store in
 * O(lookup) — no timing simulation at all.
 *
 * Wire protocol: see service/protocol.hh and docs/sweep_service.md.
 */

#ifndef GPUSIMPOW_SERVICE_SERVER_HH
#define GPUSIMPOW_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/session.hh"

namespace gpusimpow {
namespace service {

/** One listening sweep service over a shared SweepSession. */
class SweepServer
{
  public:
    /**
     * Bind and listen on 127.0.0.1:port (port 0 = ephemeral, for
     * tests — read the resolved port()). fatal() when the socket
     * cannot be bound.
     */
    SweepServer(std::shared_ptr<sim::SweepSession> session,
                uint16_t port);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** The bound port (resolves an ephemeral request). */
    uint16_t port() const { return _port; }

    /**
     * Accept-and-serve until stop() is called or a client sends a
     * `shutdown` frame. Each connection is handled on its own
     * thread; run() joins them all before returning, so the store
     * and session are quiescent afterwards.
     */
    void run();

    /** Ask run() to wind down (thread-safe, idempotent). */
    void stop() { _stop.store(true); }

  private:
    void handleClient(int fd);

    std::shared_ptr<sim::SweepSession> _session;
    int _listen_fd = -1;
    uint16_t _port = 0;
    std::atomic<bool> _stop{false};
    std::mutex _threads_mutex;
    std::vector<std::thread> _threads;
};

} // namespace service
} // namespace gpusimpow

#endif // GPUSIMPOW_SERVICE_SERVER_HH
