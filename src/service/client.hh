/**
 * @file
 * Client side of the sweep service protocol: connect, submit a
 * SweepRequest, consume the streamed per-scenario rows, and collect
 * the final table and metrics documents — exactly what the server
 * sent, byte for byte, so a client-side result table diffs clean
 * against a locally computed one.
 */

#ifndef GPUSIMPOW_SERVICE_CLIENT_HH
#define GPUSIMPOW_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/request.hh"

namespace gpusimpow {
namespace service {

/** One client connection to a sweep server. */
class SweepClient
{
  public:
    /** Connect to host:port; fatal() when the server is unreachable. */
    SweepClient(const std::string &host, uint16_t port);
    ~SweepClient();

    SweepClient(const SweepClient &) = delete;
    SweepClient &operator=(const SweepClient &) = delete;

    /** Everything a finished job sent back. */
    struct JobResult
    {
        /** False when the server answered with an error frame (or
         *  the connection broke); `error` carries the reason. */
        bool ok = false;
        std::string error;
        /** The formatted result table, byte-identical to the
         *  server's SweepResult::formatTable(). */
        std::string table;
        /** The job's telemetry JSON (`--metrics-json` document). */
        std::string metrics_json;
        /** Streamed rows in completion order. */
        std::size_t rows = 0;
    };

    /**
     * Submit one job and block until `done`/`error`. `on_row` (when
     * set) observes each streamed progress line as it arrives.
     */
    JobResult
    submitJob(const sim::SweepRequest &request,
              const std::function<void(const std::string &)> &on_row =
                  {});

    /** Ask the server to stop accepting and drain; waits for the
     *  acknowledging `done`. */
    bool shutdownServer();

  private:
    int _fd = -1;
};

} // namespace service
} // namespace gpusimpow

#endif // GPUSIMPOW_SERVICE_CLIENT_HH
