#include "service/protocol.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/types.h>

#include "common/strutil.hh"

namespace gpusimpow {
namespace service {

namespace {

/**
 * recv() once into the buffer; 1 on data, 0 on EOF, -1 on error,
 * -2 on an SO_RCVTIMEO expiry when the caller opted out of retrying
 * it (EINTR always retried). Mid-frame the caller keeps retrying —
 * the peer is actively sending — but between frames a timeout must
 * surface so the server can poll its stop flag.
 */
int
fill(int fd, std::string &buf, bool retry_timeout)
{
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            return 1;
        }
        if (n == 0)
            return 0;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (retry_timeout)
                continue;
            return -2;
        }
        return -1;
    }
}

} // namespace

bool
FrameReader::read(Frame &out, std::string &err)
{
    err.clear();
    // Header line first. A receive timeout with nothing buffered is
    // the only resumable failure (err_timeout): the buffer is
    // untouched, so the caller may just call read() again.
    std::size_t nl;
    while ((nl = _buf.find('\n')) == std::string::npos) {
        if (_buf.size() > 256) {
            err = "oversized frame header";
            return false;
        }
        int r = fill(_fd, _buf, /*retry_timeout=*/!_buf.empty());
        if (r == -2) {
            err = err_timeout;
            return false;
        }
        if (r < 0) {
            err = std::strerror(errno);
            return false;
        }
        if (r == 0) {
            if (!_buf.empty())
                err = "connection closed mid-frame";
            return false; // clean EOF at a frame boundary
        }
    }
    std::string header = _buf.substr(0, nl);
    std::istringstream hs(header);
    std::string type;
    std::size_t nbytes = 0;
    if (!(hs >> type >> nbytes) || type.empty()) {
        err = "malformed frame header '" + header + "'";
        return false;
    }
    if (nbytes > max_payload_bytes) {
        err = strformat("frame payload of %zu bytes exceeds the %zu "
                        "byte cap",
                        nbytes, max_payload_bytes);
        return false;
    }
    _buf.erase(0, nl + 1);

    // Then exactly nbytes payload plus the trailing newline.
    while (_buf.size() < nbytes + 1) {
        int r = fill(_fd, _buf, /*retry_timeout=*/true);
        if (r < 0) {
            err = std::strerror(errno);
            return false;
        }
        if (r == 0) {
            err = "connection closed mid-frame";
            return false;
        }
    }
    if (_buf[nbytes] != '\n') {
        err = "frame payload not newline-terminated";
        return false;
    }
    out.type = type;
    out.payload = _buf.substr(0, nbytes);
    _buf.erase(0, nbytes + 1);
    return true;
}

bool
writeFrame(int fd, const std::string &type, const std::string &payload)
{
    std::string wire = strformat("%s %zu\n", type.c_str(),
                                 payload.size());
    wire += payload;
    wire += '\n';
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace service
} // namespace gpusimpow
