#include "service/server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/protocol.hh"
#include "sim/request.hh"

namespace gpusimpow {
namespace service {

namespace {

/** The service's instrument set, registered once. */
struct ServiceMetrics
{
    obs::Counter &connections;
    obs::Counter &jobs;
    obs::Counter &rows;
    obs::Counter &errors;

    static ServiceMetrics &instance()
    {
        obs::Registry &reg = obs::Registry::instance();
        static ServiceMetrics m{
            reg.counter("service/connections",
                        "client connections accepted"),
            reg.counter("service/jobs", "sweep jobs executed"),
            reg.counter("service/rows", "per-scenario rows streamed"),
            reg.counter("service/errors",
                        "jobs answered with an error frame"),
        };
        return m;
    }
};

/** The streamed `row` payload: a human-readable progress line; the
 *  `table` frame is the authoritative result. */
std::string
formatRow(const sim::ScenarioResult &r, std::size_t done,
          std::size_t total)
{
    return strformat("%zu/%zu %s: %.3f ms, %.3f mJ%s", done, total,
                     r.scenario.label.c_str(), r.time_s * 1e3,
                     r.energy_j * 1e3,
                     r.verified ? "" : " [VERIFY FAIL]");
}

} // namespace

SweepServer::SweepServer(std::shared_ptr<sim::SweepSession> session,
                         uint16_t port)
    : _session(std::move(session))
{
    _listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listen_fd < 0)
        fatal("serve: socket(): ", std::strerror(errno));
    int one = 1;
    ::setsockopt(_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(_listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("serve: cannot bind 127.0.0.1:", port, ": ",
              std::strerror(errno));
    if (::listen(_listen_fd, 16) < 0)
        fatal("serve: listen(): ", std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(_listen_fd,
                      reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        fatal("serve: getsockname(): ", std::strerror(errno));
    _port = ntohs(addr.sin_port);
}

SweepServer::~SweepServer()
{
    if (_listen_fd >= 0)
        ::close(_listen_fd);
}

void
SweepServer::run()
{
    inform("serve: listening on 127.0.0.1:", _port);
    while (!_stop.load()) {
        pollfd pfd{_listen_fd, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll(): ", std::strerror(errno));
            break;
        }
        if (r == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(_listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno != EINTR)
                warn("serve: accept(): ", std::strerror(errno));
            continue;
        }
        // An idle-receive timeout keeps the handler loop checking
        // the stop flag while a client holds its connection open.
        timeval tv{0, 200000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ServiceMetrics::instance().connections.add(1);
        std::lock_guard<std::mutex> lock(_threads_mutex);
        _threads.emplace_back(
            [this, fd] {
                obs::Tracer::instance().labelThread(
                    strformat("client-%d", fd));
                handleClient(fd);
                ::close(fd);
            });
    }
    // Drain: in-flight jobs finish and their results are persisted
    // before run() returns, so the caller can close the store.
    std::lock_guard<std::mutex> lock(_threads_mutex);
    for (std::thread &t : _threads)
        t.join();
    _threads.clear();
}

void
SweepServer::handleClient(int fd)
{
    ServiceMetrics &m = ServiceMetrics::instance();
    FrameReader reader(fd);
    while (!_stop.load()) {
        Frame in;
        std::string err;
        if (!reader.read(in, err)) {
            if (err == err_timeout)
                continue; // idle; poll the stop flag again
            if (!err.empty())
                warn("serve: dropping client: ", err);
            return;
        }
        if (in.type == frame::shutdown) {
            writeFrame(fd, frame::done, "");
            inform("serve: shutdown requested by client");
            stop();
            return;
        }
        if (in.type != frame::job) {
            writeFrame(fd, frame::error,
                       "unexpected frame '" + in.type + "'");
            return;
        }

        GSP_TRACE_SPAN("service/job");
        try {
            sim::SweepRequest request =
                sim::SweepRequest::parse(in.payload);
            sim::SweepSpec spec = request.toSpec();
            // writeFrame failures are remembered, not fatal: the job
            // must run to completion either way so the session's
            // claims resolve and the store still warms up.
            bool peer_ok = true;
            sim::SweepResult result = _session->submit(
                spec, [&](const sim::ScenarioResult &r,
                          std::size_t done, std::size_t total) {
                    if (peer_ok &&
                        !writeFrame(fd, frame::row,
                                    formatRow(r, done, total)))
                        peer_ok = false;
                    m.rows.add(1);
                });
            m.jobs.add(1);
            peer_ok = peer_ok &&
                      writeFrame(fd, frame::table,
                                 result.formatTable());
            peer_ok = peer_ok &&
                      writeFrame(fd, frame::metrics,
                                 result.telemetry().toJson());
            peer_ok = peer_ok && writeFrame(fd, frame::done, "");
            if (!peer_ok) {
                warn("serve: client vanished mid-job");
                return;
            }
        } catch (const FatalError &e) {
            m.errors.add(1);
            writeFrame(fd, frame::error, e.what());
        } catch (const std::exception &e) {
            m.errors.add(1);
            writeFrame(fd, frame::error, e.what());
        }
    }
}

} // namespace service
} // namespace gpusimpow
