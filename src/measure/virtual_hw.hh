/**
 * @file
 * The virtual hardware under test. The paper validates GPUSimPow
 * against two physical cards (GT240, GTX580); this reproduction has
 * no silicon, so the cards are replaced by a deterministic
 * ground-truth power emulator whose behaviour is calibrated to the
 * paper's measured values (SectionIV/V): true static power slightly
 * below the model estimate, per-kernel dynamic deviations with the
 * paper's sign structure (the simulator overestimates nearly every
 * GT240 kernel except BlackScholes and scalarProd), distinct idle /
 * between-kernel power states (15 W gated and 19.5 W for the GT240,
 * 90 W for the GTX580), and a supply-filter time constant that
 * smears sub-millisecond kernels (the mergeSort3 artifact).
 *
 * See DESIGN.md section2 for why this substitution preserves the
 * validation code path.
 */

#ifndef GPUSIMPOW_MEASURE_VIRTUAL_HW_HH
#define GPUSIMPOW_MEASURE_VIRTUAL_HW_HH

#include <string>

#include "config/gpu_config.hh"
#include "power/report.hh"

namespace gpusimpow {
namespace measure {

/** Deterministic ground-truth power behaviour of one card. */
class VirtualHardware
{
  public:
    /**
     * @param cfg the card being emulated
     * @param model_static_w the power model's static estimate (the
     *        hardware truth deviates from it by a fixed factor)
     * @param seed board-level seed (tolerance draws)
     */
    VirtualHardware(const GpuConfig &cfg, double model_static_w,
                    uint64_t seed);

    /** True chip static power, W (0.983x the model on these cards). */
    double trueStaticPower() const { return _true_static_w; }

    /**
     * Hidden multiplicative deviation between the model's dynamic
     * estimate and the card's true dynamic power for one kernel.
     */
    double kernelDynamicFactor(const std::string &kernel_label) const;

    /**
     * Instantaneous true card power while a kernel interval with the
     * given modeled dynamic/DRAM power executes, W.
     */
    double cardPower(const std::string &kernel_label, double model_dyn_w,
                     double model_dram_w, double clock_scale = 1.0) const;

    /** Power in the between-kernels state (19.5 W / 90 W). */
    double preKernelPower() const;

    /** Deep-idle (power-gated) card power (~15 W on the GT240). */
    double idlePower() const;

    /** Supply-filter time constant of the card input, s. */
    double supplyTau() const { return 60e-6; }

    const GpuConfig &config() const { return _cfg; }

  private:
    GpuConfig _cfg;
    double _true_static_w;
    double _dram_idle_w;
    bool _is_tesla_class;   // GT240-like (no scoreboard / no L2)
    uint64_t _seed;
};

} // namespace measure
} // namespace gpusimpow

#endif // GPUSIMPOW_MEASURE_VIRTUAL_HW_HH
