/**
 * @file
 * The analog measurement chain of the paper's testbed (SectionIV-A):
 * 20 mOhm sense resistors on the PCIe-slot 12 V / 3.3 V rails (on a
 * riser card) and 10 mOhm resistors in the external PCIe power
 * cables, AD8210 current-shunt monitors (gain 20 V/V, +-0.5 % gain
 * error, +-1 mV output offset), 1 %-resistor voltage dividers
 * (+-1.7 % gain accuracy, no offset), and an NI USB-6210 DAQ
 * sampling at 31.2 kHz (+-0.0085 % gain, 0.1 mV offset, 16-bit over
 * +-5 V). Each instance draws its tolerance errors deterministically
 * from a seed, so a given "physical" testbed build has fixed,
 * reproducible systematic errors — exactly like real hardware.
 */

#ifndef GPUSIMPOW_MEASURE_SIGNAL_CHAIN_HH
#define GPUSIMPOW_MEASURE_SIGNAL_CHAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"

namespace gpusimpow {
namespace measure {

/** Datasheet limits of the chain components. */
struct ChainSpec
{
    /** AD8210 fixed gain, V/V. */
    double ad8210_gain = 20.0;
    /** AD8210 gain tolerance (fraction). */
    double ad8210_gain_tol = 0.005;
    /** AD8210 output offset bound, V. */
    double ad8210_offset_tol = 1e-3;
    /** Divider gain tolerance (fraction; built from 1% resistors). */
    double divider_gain_tol = 0.017;
    /** DAQ gain tolerance (fraction). */
    double daq_gain_tol = 0.000085;
    /** DAQ offset bound, V. */
    double daq_offset_tol = 1e-4;
    /** DAQ full-scale range, V. */
    double daq_range = 5.0;
    /** DAQ resolution, bits. */
    unsigned daq_bits = 16;
    /** DAQ sample rate, Hz (per channel as configured). */
    double sample_rate_hz = 31200.0;
};

/** One monitored supply rail. */
struct RailSpec
{
    /** Rail name ("12V-slot", "3.3V-slot", "12V-aux0", ...). */
    std::string name;
    /** Nominal rail voltage, V. */
    double nominal_v = 12.0;
    /** Sense resistor, ohm (20 mOhm slot, 10 mOhm cables). */
    double sense_ohm = 0.020;
    /** Fraction of card power carried by this rail. */
    double share = 1.0;
};

/** 16-bit quantizer of the DAQ input range. */
double quantize(double v, double range, unsigned bits);

/**
 * The signal path for one rail: a voltage channel through the
 * resistive divider and a current channel through the shunt+AD8210,
 * both sampled by the DAQ. Gain/offset errors are drawn once at
 * construction (a physical board's fixed errors).
 */
class RailChannel
{
  public:
    /**
     * @param rail rail description
     * @param spec chain component limits
     * @param rng seeded error source (advanced per drawn value)
     */
    RailChannel(const RailSpec &rail, const ChainSpec &spec,
                SplitMix64 &rng);

    /** Measured voltage for a true rail voltage, V. */
    double measureVoltage(double v_true) const;

    /** Measured current for a true rail current, A. */
    double measureCurrent(double i_true) const;

    /** Worst-case fractional power error of this channel pair. */
    double powerErrorBound() const;

    const RailSpec &rail() const { return _rail; }

  private:
    RailSpec _rail;
    ChainSpec _spec;
    double _divider_ratio;    // scales nominal into 0..5 V
    double _divider_gain_err; // multiplicative
    double _shunt_gain_err;   // multiplicative (AD8210)
    double _shunt_offset_v;   // at AD8210 output
    double _daq_gain_err;
    double _daq_offset_v;
};

/** One DAQ sample of every rail (V, I pairs). */
struct RailSample
{
    double time_s = 0.0;
    std::vector<double> volts;
    std::vector<double> amps;
};

/** A recorded trace: per-rail samples at the DAQ rate. */
struct Trace
{
    std::vector<RailSample> samples;
    double sample_rate_hz = 31200.0;

    /** Total measured card power at sample i, W. */
    double powerAt(size_t i) const;
};

} // namespace measure
} // namespace gpusimpow

#endif // GPUSIMPOW_MEASURE_SIGNAL_CHAIN_HH
