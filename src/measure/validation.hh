/**
 * @file
 * The end-to-end validation experiment of SectionV: run a kernel on
 * the simulator, replay the resulting power waveform on the virtual
 * hardware through the measurement testbed (with kernel repetition
 * for sub-500 us kernels, as the paper does), estimate hardware
 * static power with the paper's methodology, and report simulated
 * vs measured static/dynamic/total power per kernel — the data
 * behind Fig. 6a/6b.
 */

#ifndef GPUSIMPOW_MEASURE_VALIDATION_HH
#define GPUSIMPOW_MEASURE_VALIDATION_HH

#include <string>

#include "measure/testbed.hh"
#include "measure/virtual_hw.hh"
#include "sim/simulator.hh"

namespace gpusimpow {
namespace measure {

/** Per-kernel validation record (one bar pair of Fig. 6). */
struct KernelValidation
{
    std::string label;
    /** Simulated static chip power, W. */
    double sim_static_w = 0.0;
    /** Simulated dynamic chip power, W. */
    double sim_dynamic_w = 0.0;
    /** Simulated DRAM power, W. */
    double sim_dram_w = 0.0;
    /** Hardware static power estimate (SectionIV-B method), W. */
    double meas_static_w = 0.0;
    /** Measured dynamic power (total minus static estimate), W. */
    double meas_dynamic_w = 0.0;
    /** Kernel duration, s; and repeats used for measurement. */
    double kernel_s = 0.0;
    unsigned repeats = 1;

    double simTotal() const
    {
        return sim_static_w + sim_dynamic_w + sim_dram_w;
    }
    double measTotal() const { return meas_static_w + meas_dynamic_w; }
    /** Signed relative error of the simulator vs the measurement. */
    double relError() const
    {
        return (simTotal() - measTotal()) / measTotal();
    }
};

/** Runs the paper's validation methodology against one card. */
class ValidationHarness
{
  public:
    /**
     * @param cfg card under test
     * @param model_static_w the power model's static power (used to
     *        derive the virtual card's hidden ground truth)
     * @param seed board seed
     */
    ValidationHarness(const GpuConfig &cfg, double model_static_w,
                      uint64_t seed);

    /**
     * Hardware static power estimate: frequency extrapolation on
     * cards with clock control (Tesla-class), idle-ratio method
     * otherwise (the paper's GTX580 path). Computed once and cached.
     */
    double measuredStatic();

    /**
     * Validate one kernel (already simulated).
     * @param label Fig. 6 bar name
     * @param run the simulator result, traced (runKernel with
     *        with_trace = true)
     * @param repeatable false for kernels that process data in
     *        place and cannot be re-run (the mergeSort3 artifact)
     */
    KernelValidation validate(const std::string &label,
                              const KernelRun &run, bool repeatable);

    /** The virtual card (for tests and the Fig. 4 bench). */
    const VirtualHardware &hardware() const { return _hw; }
    /** The testbed (for error-bound queries). */
    const Testbed &testbed() const { return _testbed; }

  private:
    GpuConfig _cfg;
    VirtualHardware _hw;
    Testbed _testbed;
    double _meas_static_w = -1.0;

    /** Record + window-average one steady phase. */
    double measureSteady(const std::string &label, double model_dyn_w,
                         double model_dram_w, double clock_scale);
};

} // namespace measure
} // namespace gpusimpow

#endif // GPUSIMPOW_MEASURE_VALIDATION_HH
