/**
 * @file
 * The complete measurement testbed of SectionIV-A: the rail set of
 * the card under test (slot rails through the riser card's 20 mOhm
 * shunts, external PCIe cables through 10 mOhm shunts for cards that
 * have aux connectors), the per-rail signal chains, the DAQ-rate
 * trace recorder (including the card's input-filter time constant),
 * the kernel-window analysis tool driven by profiler timestamps, and
 * the two static-power estimation methods of SectionIV-B.
 */

#ifndef GPUSIMPOW_MEASURE_TESTBED_HH
#define GPUSIMPOW_MEASURE_TESTBED_HH

#include <functional>
#include <vector>

#include "config/gpu_config.hh"
#include "measure/signal_chain.hh"

namespace gpusimpow {
namespace measure {

/** Result of analyzing one kernel window of a trace. */
struct KernelMeasurement
{
    /** Average card power over the window, W. */
    double avg_power_w = 0.0;
    /** Energy consumed over the window, J. */
    double energy_j = 0.0;
    /** Window duration, s. */
    double duration_s = 0.0;
    /** DAQ samples inside the window. */
    unsigned samples = 0;
};

/** The instrumented riser + DAQ setup for one card. */
class Testbed
{
  public:
    /**
     * @param cfg card under test (determines the rail set)
     * @param seed physical-board tolerance seed
     */
    Testbed(const GpuConfig &cfg, uint64_t seed);

    /** The monitored rails (2 slot rails; +2 cables on big cards). */
    const std::vector<RailChannel> &channels() const { return _channels; }

    /**
     * Record a trace of a power waveform at the DAQ rate.
     * @param true_power_w card input power as a function of time
     * @param duration_s recording length
     * @param supply_tau_s card input-filter time constant (smears
     *        fast transients; 0 disables)
     */
    Trace record(const std::function<double(double)> &true_power_w,
                 double duration_s, double supply_tau_s = 0.0) const;

    /**
     * Average power / energy over a kernel window identified by
     * profiler timestamps (the paper's measurement tool).
     */
    static KernelMeasurement analyze(const Trace &trace, double start_s,
                                     double end_s);

    /** Worst-case fractional power error of the chain (~3.2 %). */
    double errorBound() const;

  private:
    GpuConfig _cfg;
    ChainSpec _spec;
    std::vector<RailChannel> _channels;
    mutable SplitMix64 _noise;
};

/**
 * Static power by frequency extrapolation (SectionIV-B): measure
 * the same kernel at stock clock and at `scale` x stock, extrapolate
 * linearly to 0 Hz.
 * @param p_stock_w average power at stock frequency
 * @param p_scaled_w average power at the reduced frequency
 * @param scale frequency ratio (the paper uses 0.8)
 */
double extrapolateStatic(double p_stock_w, double p_scaled_w,
                         double scale);

/**
 * Static power by the idle-ratio method the paper uses for the
 * GTX580 (clock changes unsupported by the driver): multiply the
 * between-kernels idle power by the static/idle ratio observed on
 * the GT240.
 */
double idleRatioStatic(double pre_kernel_power_w,
                       double reference_ratio);

} // namespace measure
} // namespace gpusimpow

#endif // GPUSIMPOW_MEASURE_TESTBED_HH
