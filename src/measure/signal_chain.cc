#include "measure/signal_chain.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace measure {

double
quantize(double v, double range, unsigned bits)
{
    double lsb = 2.0 * range / static_cast<double>(1u << bits);
    double clamped = v > range ? range : (v < -range ? -range : v);
    return std::round(clamped / lsb) * lsb;
}

RailChannel::RailChannel(const RailSpec &rail, const ChainSpec &spec,
                         SplitMix64 &rng)
    : _rail(rail), _spec(spec)
{
    // Scale the nominal rail voltage into ~80 % of the DAQ range.
    _divider_ratio = (0.8 * spec.daq_range) / rail.nominal_v;
    // Fixed (per physical board) tolerance draws, uniform within the
    // datasheet bounds.
    _divider_gain_err = 1.0 + rng.uniform(-spec.divider_gain_tol,
                                          spec.divider_gain_tol);
    _shunt_gain_err = 1.0 + rng.uniform(-spec.ad8210_gain_tol,
                                        spec.ad8210_gain_tol);
    _shunt_offset_v = rng.uniform(-spec.ad8210_offset_tol,
                                  spec.ad8210_offset_tol);
    _daq_gain_err = 1.0 + rng.uniform(-spec.daq_gain_tol,
                                      spec.daq_gain_tol);
    _daq_offset_v = rng.uniform(-spec.daq_offset_tol,
                                spec.daq_offset_tol);
}

double
RailChannel::measureVoltage(double v_true) const
{
    double at_daq = v_true * _divider_ratio * _divider_gain_err;
    double read = quantize(at_daq * _daq_gain_err + _daq_offset_v,
                           _spec.daq_range, _spec.daq_bits);
    // The tool divides by the *nominal* divider ratio — it cannot
    // know the board's actual gain error; that is what makes the
    // +-1.7 % systematic error of the paper appear.
    return read / _divider_ratio;
}

double
RailChannel::measureCurrent(double i_true) const
{
    double v_shunt = i_true * _rail.sense_ohm;
    double at_daq = v_shunt * _spec.ad8210_gain * _shunt_gain_err +
                    _shunt_offset_v;
    double read = quantize(at_daq * _daq_gain_err + _daq_offset_v,
                           _spec.daq_range, _spec.daq_bits);
    return read / (_spec.ad8210_gain * _rail.sense_ohm);
}

double
RailChannel::powerErrorBound() const
{
    // Voltage path: divider +- DAQ gains; current path: AD8210 +-
    // DAQ gains. Power multiplies both (SectionIV-A arrives at
    // +-3.2 % the same way).
    double v_err = _spec.divider_gain_tol + _spec.daq_gain_tol;
    double i_err = _spec.ad8210_gain_tol + _spec.daq_gain_tol;
    return v_err + i_err;
}

double
Trace::powerAt(size_t i) const
{
    GSP_ASSERT(i < samples.size(), "trace sample out of range");
    const RailSample &s = samples[i];
    double p = 0.0;
    for (size_t r = 0; r < s.volts.size(); ++r)
        p += s.volts[r] * s.amps[r];
    return p;
}

} // namespace measure
} // namespace gpusimpow
