#include "measure/virtual_hw.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dram/gddr5.hh"

namespace gpusimpow {
namespace measure {

namespace {

// Ratio of true hardware static power to the model estimate,
// calibrated so GT240 17.9 -> 17.6 W and GTX580 81.5 -> 80 W
// (Table IV real rows).
constexpr double static_truth_ratio = 0.983;

// Between-kernels power over true static power. On the GT240 the
// paper observes 19.5 W around kernels with ~90 % of it static.
constexpr double pre_kernel_ratio_gt240 = 1.011;
constexpr double pre_kernel_ratio_fermi = 1.081;

// Deep-idle (power-gated) power over true static.
constexpr double gated_idle_ratio = 0.756;

} // namespace

VirtualHardware::VirtualHardware(const GpuConfig &cfg,
                                 double model_static_w, uint64_t seed)
    : _cfg(cfg), _seed(seed)
{
    _true_static_w = model_static_w * static_truth_ratio;
    _is_tesla_class = !cfg.l2.present;
    dram::Gddr5Power dram_power(cfg.dram, cfg.clocks.dram_hz);
    _dram_idle_w = dram_power.idlePower();
}

double
VirtualHardware::kernelDynamicFactor(const std::string &label) const
{
    // Per-(card, kernel) deterministic deviation: the silicon's true
    // per-component energies differ from the model's, and each
    // kernel exercises a different component mix.
    // The model's execution-unit constants were fitted on exactly
    // these microbenchmarks (SectionIII-D), so model and hardware
    // coincide there by construction.
    if (label.rfind("micro", 0) == 0 || label == "occupancy" ||
        label == "staticRef") {
        return 1.0;
    }

    std::string key = _cfg.chip + ":" + label;
    SplitMix64 rng(hashString(key.c_str()) ^ _seed);
    double g = rng.nextGaussian();

    if (_is_tesla_class) {
        // SectionV-A: on the GT240 the simulator overestimates every
        // kernel except BlackScholes and scalarProd.
        if (label == "BlackScholes" || label == "scalarProd")
            return 1.04 + 0.06 * std::fabs(g);
        double f = 0.80 + 0.11 * g;
        return std::clamp(f, 0.62, 0.97);
    }
    // Fermi-class card: mostly overestimates, a couple of
    // underestimates; scalarProd is the worst offender (25.2 %).
    if (label == "scalarProd") {
        double f = 0.55 + 0.02 * g;
        return std::clamp(f, 0.52, 0.59);
    }
    double f = 0.89 + 0.08 * g;
    return std::clamp(f, 0.72, 1.10);
}

double
VirtualHardware::cardPower(const std::string &label, double model_dyn_w,
                           double model_dram_w,
                           double clock_scale) const
{
    double dyn = kernelDynamicFactor(label) * model_dyn_w * clock_scale;
    // DRAM truth tracks the model closely (datasheet-derived).
    double dram = 0.95 * model_dram_w;
    return _true_static_w + dyn + dram;
}

double
VirtualHardware::preKernelPower() const
{
    double ratio = _is_tesla_class ? pre_kernel_ratio_gt240
                                   : pre_kernel_ratio_fermi;
    return _true_static_w * ratio + _dram_idle_w;
}

double
VirtualHardware::idlePower() const
{
    return _true_static_w * gated_idle_ratio + _dram_idle_w;
}

} // namespace measure
} // namespace gpusimpow
