#include "measure/testbed.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace measure {

Testbed::Testbed(const GpuConfig &cfg, uint64_t seed)
    : _cfg(cfg), _noise(seed ^ 0x7e57bed)
{
    SplitMix64 rng(seed);
    // Slot rails through the riser card (20 mOhm shunts). The split
    // between rails is a card-design property.
    bool has_aux = !cfg.l2.present ? false : true;
    if (!has_aux) {
        _channels.emplace_back(
            RailSpec{"12V-slot", 12.0, 0.020, 0.82}, _spec, rng);
        _channels.emplace_back(
            RailSpec{"3.3V-slot", 3.3, 0.020, 0.18}, _spec, rng);
    } else {
        // High-end card: two external PCIe power cables carry most
        // of the load (10 mOhm shunts in the cables, SectionIV-A).
        _channels.emplace_back(
            RailSpec{"12V-slot", 12.0, 0.020, 0.24}, _spec, rng);
        _channels.emplace_back(
            RailSpec{"3.3V-slot", 3.3, 0.020, 0.05}, _spec, rng);
        _channels.emplace_back(
            RailSpec{"12V-aux0", 12.0, 0.010, 0.36}, _spec, rng);
        _channels.emplace_back(
            RailSpec{"12V-aux1", 12.0, 0.010, 0.35}, _spec, rng);
    }
}

Trace
Testbed::record(const std::function<double(double)> &true_power_w,
                double duration_s, double supply_tau_s) const
{
    GSP_ASSERT(duration_s > 0.0, "empty recording");
    Trace trace;
    trace.sample_rate_hz = _spec.sample_rate_hz;
    auto n = static_cast<size_t>(duration_s * _spec.sample_rate_hz);
    trace.samples.reserve(n);

    double dt = 1.0 / _spec.sample_rate_hz;
    double filtered = true_power_w(0.0);
    double alpha =
        supply_tau_s > 0.0 ? 1.0 - std::exp(-dt / supply_tau_s) : 1.0;

    for (size_t i = 0; i < n; ++i) {
        double t = static_cast<double>(i) * dt;
        // Input filter of the card (bulk capacitance at the VRM).
        filtered += alpha * (true_power_w(t) - filtered);
        // Small wideband supply noise.
        double noisy = filtered * (1.0 + 0.002 * _noise.nextGaussian());

        RailSample s;
        s.time_s = t;
        for (const RailChannel &ch : _channels) {
            double p_rail = noisy * ch.rail().share;
            double v_true =
                ch.rail().nominal_v * (1.0 + 0.004 * _noise.nextGaussian());
            double i_true = p_rail / v_true;
            s.volts.push_back(ch.measureVoltage(v_true));
            s.amps.push_back(ch.measureCurrent(i_true));
        }
        trace.samples.push_back(std::move(s));
    }
    return trace;
}

KernelMeasurement
Testbed::analyze(const Trace &trace, double start_s, double end_s)
{
    GSP_ASSERT(end_s > start_s, "empty kernel window");
    KernelMeasurement m;
    m.duration_s = end_s - start_s;
    double sum = 0.0;
    for (size_t i = 0; i < trace.samples.size(); ++i) {
        double t = trace.samples[i].time_s;
        if (t < start_s || t >= end_s)
            continue;
        sum += trace.powerAt(i);
        ++m.samples;
    }
    if (m.samples > 0) {
        m.avg_power_w = sum / m.samples;
    } else {
        // Window shorter than a DAQ period: fall back to the sample
        // nearest the window center (what an operator would read).
        double center = 0.5 * (start_s + end_s);
        size_t idx = std::min(
            trace.samples.size() - 1,
            static_cast<size_t>(center * trace.sample_rate_hz));
        m.avg_power_w = trace.powerAt(idx);
    }
    m.energy_j = m.avg_power_w * m.duration_s;
    return m;
}

double
Testbed::errorBound() const
{
    double worst = 0.0;
    for (const RailChannel &ch : _channels)
        worst = std::max(worst, ch.powerErrorBound());
    return worst;
}

double
extrapolateStatic(double p_stock_w, double p_scaled_w, double scale)
{
    GSP_ASSERT(scale > 0.0 && scale < 1.0, "bad frequency scale");
    // P(f) = S + k*f  =>  S = (P(s*f) - s*P(f)) / (1 - s).
    return (p_scaled_w - scale * p_stock_w) / (1.0 - scale);
}

double
idleRatioStatic(double pre_kernel_power_w, double reference_ratio)
{
    return pre_kernel_power_w * reference_ratio;
}

} // namespace measure
} // namespace gpusimpow
