#include "measure/validation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace measure {

namespace {

// Static/idle ratio observed on the reference (GT240-class) card,
// reused for cards whose driver cannot change clocks (SectionIV-B).
constexpr double reference_idle_ratio = 0.9026;

// Kernels shorter than this are executed 100 times back to back
// (SectionIV-C).
constexpr double repeat_threshold_s = 500e-6;
constexpr unsigned repeat_count = 100;

// Lead-in/out of the recording around the kernel window.
constexpr double lead_s = 2e-3;
constexpr double tail_s = 1e-3;

} // namespace

ValidationHarness::ValidationHarness(const GpuConfig &cfg,
                                     double model_static_w,
                                     uint64_t seed)
    : _cfg(cfg), _hw(cfg, model_static_w, seed), _testbed(cfg, seed)
{
}

double
ValidationHarness::measureSteady(const std::string &label,
                                 double model_dyn_w,
                                 double model_dram_w,
                                 double clock_scale)
{
    double level = _hw.cardPower(label, model_dyn_w, model_dram_w,
                                 clock_scale);
    Trace trace = _testbed.record(
        [&](double t) {
            return t < 1e-3 ? _hw.preKernelPower() : level;
        },
        21e-3, _hw.supplyTau());
    return Testbed::analyze(trace, 5e-3, 21e-3).avg_power_w;
}

double
ValidationHarness::measuredStatic()
{
    if (_meas_static_w >= 0.0)
        return _meas_static_w;

    if (!_cfg.l2.present) {
        // Tesla-class: the driver allows clock changes. Run a steady
        // reference workload at stock and at 80 % clock and
        // extrapolate to 0 Hz. Dynamic power scales with frequency;
        // static does not.
        const double ref_dyn_w = 11.0;
        const double ref_dram_w = 2.5;
        double p_stock =
            measureSteady("staticRef", ref_dyn_w, ref_dram_w, 1.0);
        double p_scaled =
            measureSteady("staticRef", ref_dyn_w, ref_dram_w, 0.8);
        // The card-level measurement includes the DRAM devices;
        // subtract their (clock-independent) contribution the same
        // way the paper's methodology implicitly does by probing the
        // GPU rails.
        double static_est = extrapolateStatic(p_stock, p_scaled, 0.8);
        double dram_truth = 0.95 * ref_dram_w;
        _meas_static_w = static_est - dram_truth;
    } else {
        // Fermi-class: no clock control; idle-ratio method.
        Trace trace = _testbed.record(
            [&](double t) {
                (void)t;
                return _hw.preKernelPower();
            },
            20e-3, _hw.supplyTau());
        double idle = Testbed::analyze(trace, 1e-3, 20e-3).avg_power_w;
        _meas_static_w = idleRatioStatic(idle, reference_idle_ratio);
    }
    return _meas_static_w;
}

KernelValidation
ValidationHarness::validate(const std::string &label,
                            const KernelRun &run, bool repeatable)
{
    GSP_ASSERT(!run.trace.empty(),
               "validation needs a traced simulation (with_trace)");

    KernelValidation v;
    v.label = label;
    v.sim_static_w = run.report.staticPower();
    v.sim_dynamic_w = run.report.dynamicPower();
    v.sim_dram_w = run.report.dram_w;
    v.kernel_s = run.perf.time_s;

    v.repeats = 1;
    if (repeatable && v.kernel_s < repeat_threshold_s) {
        // The paper re-runs short kernels 100 times; our scaled-down
        // data sets make kernels shorter still, so repeat until the
        // window is long against the supply filter and the DAQ rate.
        double min_window_s = 8e-3;
        auto needed = static_cast<unsigned>(min_window_s / v.kernel_s);
        v.repeats = std::max(repeat_count, needed);
    }

    // Precompute the per-sample modeled dynamic/DRAM waveform.
    const auto &trace = run.trace;
    double kernel_dur = v.kernel_s;
    double window_s = kernel_dur * v.repeats;

    auto card_power = [&](double t) -> double {
        if (t < lead_s || t >= lead_s + window_s)
            return _hw.preKernelPower();
        double phase = std::fmod(t - lead_s, kernel_dur);
        // Locate the simulator sample containing this phase.
        size_t lo = 0;
        size_t hi = trace.size();
        while (lo + 1 < hi) {
            size_t mid = (lo + hi) / 2;
            if (trace[mid].t0 <= phase)
                lo = mid;
            else
                hi = mid;
        }
        const PowerSample &s = trace[lo];
        return _hw.cardPower(label, s.dynamic_w, s.dram_w);
    };

    double duration = lead_s + window_s + tail_s;
    Trace recorded =
        _testbed.record(card_power, duration, _hw.supplyTau());
    // The profiler clock and the DAQ clock are not synchronized; the
    // kernel window lands ~1.5 sample periods early relative to the
    // waveform. Irrelevant for long windows, it biases very short
    // non-repeatable kernels low — the paper's mergeSort3 artifact.
    double misalign = 1.5 / recorded.sample_rate_hz;
    KernelMeasurement m = Testbed::analyze(
        recorded, lead_s - misalign, lead_s + window_s - misalign);

    v.meas_static_w = measuredStatic();
    v.meas_dynamic_w = m.avg_power_w - v.meas_static_w;
    return v;
}

} // namespace measure
} // namespace gpusimpow
