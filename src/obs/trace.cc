#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

#include "common/strutil.hh"
#include "obs/metrics.hh"

namespace gpusimpow {
namespace obs {

std::atomic<bool> Tracer::_enabled{false};

uint64_t
monotonicNs()
{
    // The epoch is the first call in the process; everything obs
    // reports is a difference of these values, so the absolute origin
    // is irrelevant as long as it never moves.
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

namespace {

/** Thread-local handle into the tracer, invalidated by clear(). */
struct ThreadSlot
{
    uint64_t generation = 0;
    void *buffer = nullptr;
};

thread_local ThreadSlot t_slot;

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
    _enabled.store(on, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _buffers.clear();
    // Threads notice the new generation and re-register; their stale
    // pointers are never dereferenced (quiescence contract).
    _generation.fetch_add(1, std::memory_order_release);
}

void
Tracer::setCapacity(std::size_t events_per_thread)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _capacity = std::max<std::size_t>(1, events_per_thread);
}

Tracer::ThreadBuffer *
Tracer::registerThread()
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<unsigned>(_buffers.size()) + 1;
    buffer->slots.resize(_capacity);
    _buffers.push_back(std::move(buffer));
    t_slot.generation = _generation.load(std::memory_order_acquire);
    t_slot.buffer = _buffers.back().get();
    return _buffers.back().get();
}

Tracer::ThreadBuffer *
Tracer::threadBuffer()
{
    if (t_slot.buffer &&
        t_slot.generation == _generation.load(std::memory_order_acquire))
        return static_cast<ThreadBuffer *>(t_slot.buffer);
    return registerThread();
}

void
Tracer::labelThread(const std::string &label)
{
    if (!enabled())
        return;
    ThreadBuffer *tb = threadBuffer();
    std::lock_guard<std::mutex> lock(_mutex);
    tb->label = label;
}

void
Tracer::record(const char *name, uint64_t t0_ns, uint64_t dur_ns)
{
    if (!enabled())
        return; // disabled between span begin and end
    ThreadBuffer *tb = threadBuffer();
    uint64_t head = tb->head.load(std::memory_order_relaxed);
    SpanEvent &slot = tb->slots[head % tb->slots.size()];
    slot.name = name;
    slot.t0_ns = t0_ns;
    slot.dur_ns = dur_ns;
    // Release: the slot write happens-before a reader that acquires
    // the advanced head (the quiescent exporter).
    tb->head.store(head + 1, std::memory_order_release);
    // Per-phase wall-time totals survive ring wraparound.
    Registry::instance().addSpanTime(name, dur_ns);
}

std::size_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t dropped = 0;
    for (const auto &tb : _buffers) {
        uint64_t head = tb->head.load(std::memory_order_acquire);
        if (head > tb->slots.size())
            dropped += head - tb->slots.size();
    }
    return dropped;
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t count = 0;
    for (const auto &tb : _buffers)
        count += static_cast<std::size_t>(
            std::min<uint64_t>(tb->head.load(std::memory_order_acquire),
                               tb->slots.size()));
    return count;
}

std::string
Tracer::exportChromeTrace() const
{
    std::ostringstream out;
    writeChromeTrace(out);
    return out.str();
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };
    for (const auto &tb : _buffers) {
        std::string label = tb->label.empty()
                                ? strformat("thread-%u", tb->tid)
                                : tb->label;
        sep();
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tb->tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(label) << "\"}}";
        uint64_t head = tb->head.load(std::memory_order_acquire);
        uint64_t kept = std::min<uint64_t>(head, tb->slots.size());
        // Oldest surviving event first: ring order is completion
        // order, so per-track *end* times are monotonic.
        for (uint64_t i = head - kept; i < head; ++i) {
            const SpanEvent &e = tb->slots[i % tb->slots.size()];
            sep();
            // ts/dur are microseconds; print the exact nanosecond
            // remainder as the fractional part.
            out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tb->tid
                << ",\"cat\":\"gpusimpow\",\"name\":\""
                << jsonEscape(e.name) << "\",\"ts\":"
                << e.t0_ns / 1000 << "." << strformat("%03u",
                       static_cast<unsigned>(e.t0_ns % 1000))
                << ",\"dur\":" << e.dur_ns / 1000 << "."
                << strformat("%03u",
                             static_cast<unsigned>(e.dur_ns % 1000))
                << "}";
        }
    }
    out << "\n]}\n";
}

} // namespace obs
} // namespace gpusimpow
