#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/strutil.hh"

namespace gpusimpow {
namespace obs {

void
Histogram::record(uint64_t value)
{
    // Bucket 0 holds zeros; bucket b holds [2^(b-1), 2^b).
    std::size_t b = 0;
    while (b + 1 < num_buckets && (uint64_t{1} << b) <= value)
        ++b;
    _buckets[b].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = _min.load(std::memory_order_relaxed);
    while (value < seen &&
           !_min.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
    seen = _max.load(std::memory_order_relaxed);
    while (value > seen &&
           !_max.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

uint64_t
Histogram::min() const
{
    uint64_t v = _min.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _counters.try_emplace(name, name, desc).first->second;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _gauges.try_emplace(name, name, desc).first->second;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _histograms.try_emplace(name, name, desc).first->second;
}

void
Registry::addSpanTime(const char *span_name, uint64_t dur_ns)
{
    counter(std::string("span/") + span_name + "_ns",
            "wall time inside this span")
        .add(dur_ns);
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(_mutex);
    snap.counters.reserve(_counters.size());
    for (const auto &kv : _counters)
        snap.counters.emplace_back(kv.first, kv.second.value());
    snap.gauges.reserve(_gauges.size());
    for (const auto &kv : _gauges)
        snap.gauges.emplace_back(kv.first, kv.second.value());
    snap.histograms.reserve(_histograms.size());
    for (const auto &kv : _histograms) {
        MetricsSnapshot::HistValue h;
        h.name = kv.first;
        h.count = kv.second.count();
        h.sum = kv.second.sum();
        h.min = kv.second.min();
        h.max = kv.second.max();
        for (unsigned b = 0; b < Histogram::num_buckets; ++b) {
            uint64_t n = kv.second.bucket(b);
            if (n)
                h.buckets.emplace_back(b, n);
        }
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    // counters is name-sorted (std::map iteration order at capture).
    auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const auto &kv, const std::string &n) { return kv.first < n; });
    return it != counters.end() && it->first == name ? it->second : 0;
}

MetricsSnapshot
MetricsSnapshot::deltaFrom(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot delta = *this;
    for (auto &kv : delta.counters) {
        uint64_t before = earlier.counter(kv.first);
        kv.second = kv.second >= before ? kv.second - before : 0;
    }
    // Gauges are instantaneous readings: keep the current value.
    for (auto &h : delta.histograms) {
        auto it = std::lower_bound(
            earlier.histograms.begin(), earlier.histograms.end(), h.name,
            [](const HistValue &hv, const std::string &n) {
                return hv.name < n;
            });
        if (it == earlier.histograms.end() || it->name != h.name)
            continue;
        h.count = h.count >= it->count ? h.count - it->count : 0;
        h.sum = h.sum >= it->sum ? h.sum - it->sum : 0;
        // min/max keep the current reading (no meaningful delta).
        for (auto &bucket : h.buckets) {
            for (const auto &prev : it->buckets)
                if (prev.first == bucket.first) {
                    bucket.second = bucket.second >= prev.second
                                        ? bucket.second - prev.second
                                        : 0;
                    break;
                }
        }
        h.buckets.erase(
            std::remove_if(h.buckets.begin(), h.buckets.end(),
                           [](const auto &b) { return b.second == 0; }),
            h.buckets.end());
    }
    return delta;
}

std::string
MetricsSnapshot::jsonBody() const
{
    std::ostringstream out;
    out << "\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i)
        out << (i ? "," : "") << "\n  \"" << jsonEscape(counters[i].first)
            << "\":" << counters[i].second;
    out << "\n},\n\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i)
        out << (i ? "," : "") << "\n  \"" << jsonEscape(gauges[i].first)
            << "\":" << gauges[i].second;
    out << "\n},\n\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistValue &h = histograms[i];
        out << (i ? "," : "") << "\n  \"" << jsonEscape(h.name)
            << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
            << ",\"min\":" << h.min << ",\"max\":" << h.max
            << ",\"buckets\":{";
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            out << (b ? "," : "") << "\"" << h.buckets[b].first
                << "\":" << h.buckets[b].second;
        out << "}}";
    }
    out << "\n}";
    return out.str();
}

std::string
MetricsSnapshot::toJson() const
{
    return "{\n\"schema\":\"gpusimpow-metrics-1\",\n" + jsonBody() +
           "\n}\n";
}

} // namespace obs
} // namespace gpusimpow
