/**
 * @file
 * Metrics registry of the observability layer: process-wide named
 * counters, gauges, and histograms in the `stats::` idiom (named
 * instruments with descriptions, grouped dumps), but thread-safe by
 * construction — engine workers bump them concurrently, so every
 * value is a relaxed atomic.
 *
 * Instruments are created on first use and live for the process;
 * callers cache the returned reference, so the hot path is one
 * relaxed atomic add with no lookup. Snapshots capture every
 * instrument in deterministic (name-sorted) order, subtract cleanly
 * (`deltaFrom`) so concurrent consumers can meter their own window,
 * and render to JSON for `--metrics-json`.
 *
 * Metric names are `layer/what[_unit]` — see docs/observability.md
 * for the registry of names the engine and simulator populate.
 */

#ifndef GPUSIMPOW_OBS_METRICS_HH
#define GPUSIMPOW_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gpusimpow {
namespace obs {

/** A named monotonically increasing event counter (thread-safe). */
class Counter
{
  public:
    Counter(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    /** Add n events (relaxed: counts, not synchronization). */
    void add(uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::atomic<uint64_t> _value{0};
};

/** A named instantaneous value (thread-safe; last writer wins). */
class Gauge
{
  public:
    Gauge(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    void set(int64_t v) { _value.store(v, std::memory_order_relaxed); }
    int64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::atomic<int64_t> _value{0};
};

/**
 * A thread-safe histogram over non-negative integer samples with
 * power-of-two buckets: bucket b counts samples in [2^(b-1), 2^b)
 * (bucket 0 counts zeros), so one fixed layout covers batch-group
 * sizes and nanosecond latencies alike. Tracks count/sum/min/max
 * exactly; the buckets bound the distribution shape.
 */
class Histogram
{
  public:
    /** Buckets: zeros, then 63 power-of-two ranges. */
    static constexpr std::size_t num_buckets = 64;

    Histogram(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    /** Record one sample (relaxed atomics throughout). */
    void record(uint64_t value);

    uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }
    uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }
    /** Smallest recorded sample (0 when empty). */
    uint64_t min() const;
    /** Largest recorded sample (0 when empty). */
    uint64_t max() const
    {
        return _max.load(std::memory_order_relaxed);
    }
    uint64_t bucket(std::size_t b) const
    {
        return _buckets[b].load(std::memory_order_relaxed);
    }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::atomic<uint64_t> _count{0};
    std::atomic<uint64_t> _sum{0};
    std::atomic<uint64_t> _min{UINT64_MAX};
    std::atomic<uint64_t> _max{0};
    std::array<std::atomic<uint64_t>, num_buckets> _buckets{};
};

/**
 * Deterministic capture of the registry: every instrument's value in
 * name-sorted order. Plain data — safe to copy, diff, and serialize
 * after the run that produced it.
 */
struct MetricsSnapshot
{
    struct HistValue
    {
        std::string name;
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0;
        uint64_t max = 0;
        /** Non-empty buckets as (bucket index, count). */
        std::vector<std::pair<unsigned, uint64_t>> buckets;
    };

    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistValue> histograms;

    /** Counter value by name; 0 when absent. */
    uint64_t counter(const std::string &name) const;

    /**
     * This snapshot minus an earlier one: counters and histogram
     * totals subtract (instruments born between the two keep their
     * full value); gauges and histogram min/max keep the current
     * reading, which has no meaningful difference.
     */
    MetricsSnapshot deltaFrom(const MetricsSnapshot &earlier) const;

    /** `"counters":{...},"gauges":{...},"histograms":{...}` — the
     *  body shared by toJson() and SweepTelemetry::toJson(). */
    std::string jsonBody() const;

    /** Standalone metrics JSON document. */
    std::string toJson() const;
};

/** The process-wide instrument registry. */
class Registry
{
  public:
    static Registry &instance();

    /** Create-or-fetch; the reference stays valid for the process.
     *  The description is set on first creation. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Gauge &gauge(const std::string &name, const std::string &desc = "");
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** Fold a finished span into `span/<name>_ns` (called by the
     *  tracer; the per-phase wall-time totals of the metrics dump). */
    void addSpanTime(const char *span_name, uint64_t dur_ns);

    /** Capture every instrument, name-sorted. */
    MetricsSnapshot snapshot() const;

  private:
    Registry() = default;

    mutable std::mutex _mutex;
    // std::map: node-based (stable references across inserts) and
    // name-ordered, so snapshots are deterministic by construction.
    std::map<std::string, Counter> _counters;
    std::map<std::string, Gauge> _gauges;
    std::map<std::string, Histogram> _histograms;
};

} // namespace obs
} // namespace gpusimpow

#endif // GPUSIMPOW_OBS_METRICS_HH
