/**
 * @file
 * Span tracer of the observability layer: per-thread ring-buffered
 * begin/end events behind RAII macros, exported as Chrome
 * `trace_event` JSON (load the file in Perfetto / chrome://tracing,
 * one track per thread).
 *
 * The contract that lets spans live on simulation paths:
 *
 *  - **Zero-cost-when-off.** `GSP_TRACE_SPAN("engine/replay")`
 *    expands to one relaxed atomic load of the global enabled flag;
 *    with tracing off no clock is read, no buffer is touched, and no
 *    allocation happens. Results are byte-identical with tracing on
 *    or off at any worker count — spans observe, they never steer.
 *  - **Wait-free emission.** Each thread owns a fixed-capacity ring
 *    buffer; recording a span is two monotonic clock reads plus one
 *    slot write. When a ring wraps, the oldest spans are overwritten
 *    and counted as dropped — tracing never blocks or grows.
 *  - **Quiescent export.** exportChromeTrace()/clear()/setCapacity()
 *    expect no spans in flight (call them after the engine's worker
 *    pool has joined); concurrent *emission* from any number of
 *    threads is always safe.
 *
 * Span names must be string literals (or otherwise outlive the
 * tracer): the ring stores the pointer, not a copy. On span end the
 * duration is also folded into the metrics registry under
 * `span/<name>_ns`, giving per-phase wall-time totals even when the
 * ring has wrapped.
 */

#ifndef GPUSIMPOW_OBS_TRACE_HH
#define GPUSIMPOW_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gpusimpow {
namespace obs {

/**
 * Monotonic nanoseconds since the first call in this process — the
 * one sanctioned wall-clock source outside bench/. Everything that
 * times simulator execution (spans, worker busy/idle accounting, the
 * CLI progress ETA) goes through this, which is what lets the
 * `timing-clock` lint rule ban raw steady_clock reads elsewhere.
 */
uint64_t monotonicNs();

/** One completed span (Chrome "X" complete event). */
struct SpanEvent
{
    /** Static span name (the macro's string literal). */
    const char *name = nullptr;
    /** Begin, ns on the monotonicNs() timeline. */
    uint64_t t0_ns = 0;
    /** Duration, ns. */
    uint64_t dur_ns = 0;
};

/** Process-wide span tracer. */
class Tracer
{
  public:
    /** The singleton tracer. */
    static Tracer &instance();

    /** The macro's gate: one relaxed atomic load. */
    static bool enabled()
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Turn span recording on/off (off by default). */
    void setEnabled(bool on);

    /**
     * Drop every recorded span and thread registration. Quiescent
     * only: no spans may be in flight on other threads.
     */
    void clear();

    /**
     * Ring capacity (events) for threads that register *after* the
     * call; existing rings keep their size. Quiescent only.
     */
    void setCapacity(std::size_t events_per_thread);

    /** Label the calling thread's trace track ("worker-3"). No-op
     *  while tracing is disabled. */
    void labelThread(const std::string &label);

    /** Record one completed span on the calling thread's ring.
     *  Dropped (cheaply) when tracing is disabled. */
    void record(const char *name, uint64_t t0_ns, uint64_t dur_ns);

    /** Spans overwritten by ring wraparound since the last clear(). */
    std::size_t droppedEvents() const;

    /** Spans currently held across all rings. */
    std::size_t eventCount() const;

    /** Chrome trace_event JSON ("X" events + thread_name metadata,
     *  ts/dur in microseconds). Perfetto-loadable. Quiescent only. */
    std::string exportChromeTrace() const;

    /** exportChromeTrace() straight into a stream. */
    void writeChromeTrace(std::ostream &out) const;

  private:
    Tracer() = default;

    /** One thread's ring. Slot writes happen-before the head store
     *  (release), so a quiescent reader sees complete events. */
    struct ThreadBuffer
    {
        std::string label;
        unsigned tid = 0;
        std::vector<SpanEvent> slots;
        std::atomic<uint64_t> head{0};
    };

    ThreadBuffer *registerThread();
    ThreadBuffer *threadBuffer();

    static std::atomic<bool> _enabled;

    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<ThreadBuffer>> _buffers;
    std::size_t _capacity = 1u << 16;
    /** Bumped by clear() so threads drop their cached buffer. */
    std::atomic<uint64_t> _generation{1};
};

/**
 * RAII span: constructed with nullptr (tracing off) it does nothing
 * at all; otherwise it stamps the clock and records itself on
 * destruction. Use through GSP_TRACE_SPAN.
 */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name)
        : _name(name), _t0_ns(name ? monotonicNs() : 0)
    {}
    ~SpanGuard()
    {
        if (_name)
            Tracer::instance().record(_name, _t0_ns,
                                      monotonicNs() - _t0_ns);
    }
    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    const char *_name;
    uint64_t _t0_ns;
};

#define GSP_OBS_CONCAT2(a, b) a##b
#define GSP_OBS_CONCAT(a, b) GSP_OBS_CONCAT2(a, b)

/**
 * Trace the enclosing scope as one span. `name` must be a string
 * literal ("layer/what", see docs/observability.md for the
 * taxonomy). Exactly one relaxed atomic load when tracing is off.
 */
#define GSP_TRACE_SPAN(name)                                            \
    ::gpusimpow::obs::SpanGuard GSP_OBS_CONCAT(gsp_trace_span_,         \
                                               __LINE__)(               \
        ::gpusimpow::obs::Tracer::enabled() ? (name) : nullptr)

} // namespace obs
} // namespace gpusimpow

#endif // GPUSIMPOW_OBS_TRACE_HH
