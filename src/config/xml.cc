#include "config/xml.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace gpusimpow {
namespace xml {

namespace {

/** Recursive-descent parser over a raw document string. */
class Parser
{
  public:
    explicit Parser(const std::string &content) : _content(content) {}

    std::unique_ptr<Node>
    parseDocument()
    {
        skipProlog();
        auto root = parseElement();
        skipMisc();
        if (_pos != _content.size())
            fail("trailing content after root element");
        return root;
    }

  private:
    const std::string &_content;
    size_t _pos = 0;
    int _line = 1;

    [[noreturn]] void
    fail(const std::string &what)
    {
        fatal("XML parse error at line ", _line, ": ", what);
    }

    bool atEnd() const { return _pos >= _content.size(); }

    char
    peek() const
    {
        return atEnd() ? '\0' : _content[_pos];
    }

    char
    get()
    {
        if (atEnd())
            fail("unexpected end of document");
        char c = _content[_pos++];
        if (c == '\n')
            ++_line;
        return c;
    }

    bool
    consume(const std::string &token)
    {
        if (_content.compare(_pos, token.size(), token) != 0)
            return false;
        for (size_t i = 0; i < token.size(); ++i)
            get();
        return true;
    }

    void
    skipWhitespace()
    {
        while (!atEnd() &&
               std::isspace(static_cast<unsigned char>(peek()))) {
            get();
        }
    }

    void
    skipComment()
    {
        // Caller consumed "<!--".
        while (!consume("-->"))
            get();
    }

    /** Skip the XML declaration, comments, and whitespace. */
    void
    skipProlog()
    {
        skipWhitespace();
        if (consume("<?xml")) {
            while (!consume("?>"))
                get();
        }
        skipMisc();
    }

    void
    skipMisc()
    {
        while (true) {
            skipWhitespace();
            if (consume("<!--")) {
                skipComment();
            } else {
                break;
            }
        }
    }

    static bool
    isNameChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '-' || c == '.' || c == ':';
    }

    std::string
    parseName()
    {
        std::string name;
        while (!atEnd() && isNameChar(peek()))
            name.push_back(get());
        if (name.empty())
            fail("expected a name");
        return name;
    }

    std::string
    decodeEntities(const std::string &raw)
    {
        std::string out;
        for (size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] != '&') {
                out.push_back(raw[i]);
                continue;
            }
            size_t semi = raw.find(';', i);
            if (semi == std::string::npos)
                fail("unterminated entity reference");
            std::string entity = raw.substr(i + 1, semi - i - 1);
            if (entity == "amp")
                out.push_back('&');
            else if (entity == "lt")
                out.push_back('<');
            else if (entity == "gt")
                out.push_back('>');
            else if (entity == "quot")
                out.push_back('"');
            else if (entity == "apos")
                out.push_back('\'');
            else
                fail("unknown entity '&" + entity + ";'");
            i = semi;
        }
        return out;
    }

    void
    parseAttributes(Node &node)
    {
        while (true) {
            skipWhitespace();
            if (peek() == '>' || peek() == '/' || peek() == '?')
                return;
            std::string key = parseName();
            skipWhitespace();
            if (get() != '=')
                fail("expected '=' after attribute name '" + key + "'");
            skipWhitespace();
            char quote = get();
            if (quote != '"' && quote != '\'')
                fail("attribute value must be quoted");
            std::string value;
            while (peek() != quote)
                value.push_back(get());
            get(); // closing quote
            node.attributes[key] = decodeEntities(value);
        }
    }

    std::unique_ptr<Node>
    parseElement()
    {
        if (get() != '<')
            fail("expected '<'");
        auto node = std::make_unique<Node>();
        node->name = parseName();
        parseAttributes(*node);
        skipWhitespace();
        if (consume("/>"))
            return node;
        if (get() != '>')
            fail("expected '>' to close start tag <" + node->name + ">");
        parseContent(*node);
        return node;
    }

    void
    parseContent(Node &node)
    {
        std::string text;
        while (true) {
            if (atEnd())
                fail("unterminated element <" + node.name + ">");
            if (peek() == '<') {
                if (consume("<!--")) {
                    skipComment();
                    continue;
                }
                if (_content.compare(_pos, 2, "</") == 0) {
                    consume("</");
                    std::string closing = parseName();
                    if (closing != node.name) {
                        fail("mismatched close tag </" + closing +
                             "> for <" + node.name + ">");
                    }
                    skipWhitespace();
                    if (get() != '>')
                        fail("expected '>' in close tag");
                    node.text = trim(decodeEntities(text));
                    return;
                }
                node.children.push_back(parseElement());
            } else {
                text.push_back(get());
            }
        }
    }
};

void
indentInto(std::ostringstream &oss, int indent)
{
    for (int i = 0; i < indent; ++i)
        oss << "  ";
}

} // namespace

const Node *
Node::child(const std::string &tag) const
{
    for (const auto &c : children) {
        if (c->name == tag)
            return c.get();
    }
    return nullptr;
}

std::vector<const Node *>
Node::childrenNamed(const std::string &tag) const
{
    std::vector<const Node *> out;
    for (const auto &c : children) {
        if (c->name == tag)
            out.push_back(c.get());
    }
    return out;
}

bool
Node::hasAttribute(const std::string &key) const
{
    return attributes.find(key) != attributes.end();
}

const std::string &
Node::attribute(const std::string &key) const
{
    auto it = attributes.find(key);
    if (it == attributes.end())
        fatal("element <", name, "> is missing attribute '", key, "'");
    return it->second;
}

std::string
Node::attributeOr(const std::string &key, const std::string &dflt) const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? dflt : it->second;
}

std::string
Node::toString(int indent) const
{
    std::ostringstream oss;
    indentInto(oss, indent);
    oss << "<" << name;
    for (const auto &[key, value] : attributes)
        oss << " " << key << "=\"" << escape(value) << "\"";
    if (children.empty() && text.empty()) {
        oss << "/>\n";
        return oss.str();
    }
    oss << ">";
    if (!text.empty())
        oss << escape(text);
    if (!children.empty()) {
        oss << "\n";
        for (const auto &c : children)
            oss << c->toString(indent + 1);
        indentInto(oss, indent);
    }
    oss << "</" << name << ">\n";
    return oss.str();
}

std::unique_ptr<Node>
parse(const std::string &content)
{
    Parser parser(content);
    return parser.parseDocument();
}

std::unique_ptr<Node>
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open XML file '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parse(oss.str());
}

std::string
escape(const std::string &raw)
{
    std::string out;
    for (char c : raw) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

} // namespace xml
} // namespace gpusimpow
