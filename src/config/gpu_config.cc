#include "config/gpu_config.hh"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "config/xml.hh"

namespace gpusimpow {

namespace {

/**
 * Single-definition parameter binder: the schema below is declared
 * once in describe() and drives both XML loading and XML saving, so
 * the two can never drift apart. Parameters absent from a loaded
 * document keep their in-struct defaults, which keeps user files
 * sparse.
 */
class ParamIo
{
  public:
    enum class Mode { Load, Save };

    ParamIo(Mode mode, const xml::Node *root, std::ostringstream *out)
        : _mode(mode), _out(out)
    {
        if (root)
            _stack.push_back(root);
    }

    /** Enter a named section element for the duration of body(). */
    void
    section(const std::string &name, const std::function<void()> &body)
    {
        if (_mode == Mode::Save) {
            indent();
            (*_out) << "<" << name << ">\n";
            ++_depth;
            body();
            --_depth;
            indent();
            (*_out) << "</" << name << ">\n";
        } else {
            const xml::Node *parent = _stack.back();
            const xml::Node *node = parent ? parent->child(name) : nullptr;
            _stack.push_back(node);
            body();
            _stack.pop_back();
        }
    }

    void
    param(const std::string &name, unsigned &v)
    {
        if (_mode == Mode::Save) {
            write(name, std::to_string(v));
        } else if (const std::string *s = find(name)) {
            long parsed = parseLong(*s, "param " + name);
            if (parsed < 0)
                fatal("parameter '", name, "' must be non-negative");
            v = static_cast<unsigned>(parsed);
        }
    }

    void
    param(const std::string &name, double &v)
    {
        if (_mode == Mode::Save) {
            // Shortest representation that reparses to the same bits:
            // keeps files readable while making toXml() a faithful
            // fingerprint (the engine's Simulator-reuse key) and the
            // save/load round trip exact.
            std::string s = strformat("%.12g", v);
            if (std::strtod(s.c_str(), nullptr) != v)
                s = strformat("%.17g", v);
            write(name, s);
        } else if (const std::string *s = find(name)) {
            v = parseDouble(*s, "param " + name);
        }
    }

    void
    param(const std::string &name, bool &v)
    {
        if (_mode == Mode::Save) {
            write(name, v ? "true" : "false");
        } else if (const std::string *s = find(name)) {
            v = parseBool(*s, "param " + name);
        }
    }

    void
    param(const std::string &name, std::string &v)
    {
        if (_mode == Mode::Save) {
            write(name, v);
        } else if (const std::string *s = find(name)) {
            v = *s;
        }
    }

  private:
    Mode _mode;
    std::ostringstream *_out = nullptr;
    std::vector<const xml::Node *> _stack;
    int _depth = 1;

    void
    indent()
    {
        for (int i = 0; i < _depth; ++i)
            (*_out) << "  ";
    }

    void
    write(const std::string &name, const std::string &value)
    {
        indent();
        (*_out) << "<param name=\"" << name << "\" value=\""
                << xml::escape(value) << "\"/>\n";
    }

    /** Look up a <param name=.../> in the current section, or null. */
    const std::string *
    find(const std::string &name)
    {
        const xml::Node *section = _stack.back();
        if (!section)
            return nullptr;
        for (const auto &child : section->children) {
            if (child->name == "param" &&
                child->attributeOr("name", "") == name) {
                return &child->attribute("value");
            }
        }
        return nullptr;
    }
};

/** The full configuration schema, declared exactly once. */
void
describe(GpuConfig &cfg, ParamIo &io)
{
    io.param("name", cfg.name);
    io.param("chip", cfg.chip);
    io.param("clusters", cfg.clusters);
    io.param("cores_per_cluster", cfg.cores_per_cluster);

    io.section("clocks", [&] {
        io.param("uncore_hz", cfg.clocks.uncore_hz);
        io.param("shader_to_uncore", cfg.clocks.shader_to_uncore);
        io.param("dram_hz", cfg.clocks.dram_hz);
        io.param("freq_scale", cfg.clocks.freq_scale);
    });

    io.section("core", [&] {
        auto &c = cfg.core;
        io.param("max_threads", c.max_threads);
        io.param("warp_size", c.warp_size);
        io.param("max_blocks", c.max_blocks);
        io.param("int_lanes", c.int_lanes);
        io.param("fp_lanes", c.fp_lanes);
        io.param("sfu_units", c.sfu_units);
        io.param("scoreboard", c.scoreboard);
        io.param("scoreboard_entries", c.scoreboard_entries);
        io.param("issue_width", c.issue_width);
        io.param("regfile_regs", c.regfile_regs);
        io.param("regfile_banks", c.regfile_banks);
        io.param("operand_collectors", c.operand_collectors);
        io.param("ibuffer_slots", c.ibuffer_slots);
        io.param("icache_bytes", c.icache_bytes);
        io.param("icache_assoc", c.icache_assoc);
        io.param("smem_l1_bytes", c.smem_l1_bytes);
        io.param("smem_bytes", c.smem_bytes);
        io.param("smem_banks", c.smem_banks);
        io.param("l1d_assoc", c.l1d_assoc);
        io.param("line_bytes", c.line_bytes);
        io.param("const_cache_bytes", c.const_cache_bytes);
        io.param("const_cache_assoc", c.const_cache_assoc);
        io.param("sagu_count", c.sagu_count);
        io.param("coalescing", c.coalescing);
        io.param("sched_policy", c.sched_policy);
        io.param("coalescer_entries", c.coalescer_entries);
        io.param("coalescer_queue", c.coalescer_queue);
        io.param("max_pending_mem", c.max_pending_mem);
        io.param("int_latency", c.int_latency);
        io.param("fp_latency", c.fp_latency);
        io.param("sfu_latency", c.sfu_latency);
        io.param("smem_latency", c.smem_latency);
        io.param("l1_latency", c.l1_latency);
    });

    io.section("l2", [&] {
        io.param("present", cfg.l2.present);
        io.param("total_bytes", cfg.l2.total_bytes);
        io.param("slices", cfg.l2.slices);
        io.param("assoc", cfg.l2.assoc);
        io.param("line_bytes", cfg.l2.line_bytes);
        io.param("latency", cfg.l2.latency);
    });

    io.section("noc", [&] {
        io.param("link_bits", cfg.noc.link_bits);
        io.param("latency", cfg.noc.latency);
    });

    io.section("dram", [&] {
        auto &d = cfg.dram;
        io.param("channels", d.channels);
        io.param("channel_bits", d.channel_bits);
        io.param("chips", d.chips);
        io.param("banks", d.banks);
        io.param("row_bytes", d.row_bytes);
        io.param("burst_length", d.burst_length);
        io.param("latency", d.latency);
        io.param("t_rc", d.t_rc);
        io.param("vdd", d.vdd);
        io.param("idd2n", d.idd2n);
        io.param("idd3n", d.idd3n);
        io.param("idd0", d.idd0);
        io.param("idd4r", d.idd4r);
        io.param("idd4w", d.idd4w);
        io.param("idd5", d.idd5);
        io.param("t_refi", d.t_refi);
        io.param("t_rfc", d.t_rfc);
        io.param("term_pj_per_bit", d.term_pj_per_bit);
    });

    io.section("pcie", [&] {
        io.param("lanes", cfg.pcie.lanes);
        io.param("gbps_per_lane", cfg.pcie.gbps_per_lane);
    });

    io.section("tech", [&] {
        io.param("node_nm", cfg.tech.node_nm);
        io.param("vdd", cfg.tech.vdd);
        io.param("vdd_scale", cfg.tech.vdd_scale);
        io.param("temperature", cfg.tech.temperature);
    });

    io.section("thermal", [&] {
        auto &t = cfg.thermal;
        io.param("enabled", t.enabled);
        io.param("throttle", t.throttle);
        io.param("cooling", t.cooling);
        io.param("ambient_k", t.ambient_k);
        io.param("t_limit_k", t.t_limit_k);
        io.param("r_heatsink_k_per_w", t.r_heatsink_k_per_w);
        io.param("cooling_scale", t.cooling_scale);
        io.param("c_heatsink_j_per_k", t.c_heatsink_j_per_k);
        io.param("r_die_k_mm2_per_w", t.r_die_k_mm2_per_w);
        io.param("c_die_j_per_k_mm2", t.c_die_j_per_k_mm2);
        io.param("r_lateral_k_per_w", t.r_lateral_k_per_w);
        io.param("r_dram_k_per_w", t.r_dram_k_per_w);
        io.param("c_dram_j_per_k", t.c_dram_j_per_k);
        io.param("integrator", t.integrator);
    });

    io.section("power_calib", [&] {
        auto &p = cfg.calib;
        io.param("int_op_pj", p.int_op_pj);
        io.param("fp_op_pj", p.fp_op_pj);
        io.param("sfu_op_pj", p.sfu_op_pj);
        io.param("agu_addr_pj", p.agu_addr_pj);
        io.param("global_sched_w", p.global_sched_w);
        io.param("cluster_base_w", p.cluster_base_w);
        io.param("core_base_dyn_w", p.core_base_dyn_w);
        io.param("undiff_core_static_w", p.undiff_core_static_w);
        io.param("undiff_core_area_mm2", p.undiff_core_area_mm2);
        io.param("short_circuit_frac", p.short_circuit_frac);
    });
}

/** Basic cross-field sanity checks; fatal() on user errors. */
void
validate(const GpuConfig &cfg)
{
    const auto &c = cfg.core;
    if (cfg.clusters == 0 || cfg.cores_per_cluster == 0)
        fatal("GPU must have at least one cluster and core");
    if (c.warp_size == 0 || c.max_threads % c.warp_size != 0)
        fatal("max_threads must be a positive multiple of warp_size");
    if (c.int_lanes == 0 || c.fp_lanes == 0 || c.sfu_units == 0)
        fatal("execution unit counts must be positive");
    if (c.warp_size % 8 != 0)
        fatal("warp_size must be a multiple of the 8-address SAGU width");
    if (c.smem_bytes > c.smem_l1_bytes)
        fatal("smem_bytes cannot exceed the unified smem_l1_bytes");
    if (cfg.l2.present && cfg.l2.total_bytes == 0)
        fatal("an L2 cache marked present needs a non-zero size");
    if (cfg.dram.channels == 0)
        fatal("at least one DRAM channel is required");
    if (cfg.clocks.uncore_hz <= 0 || cfg.clocks.shader_to_uncore <= 0)
        fatal("clock rates must be positive");
    if (cfg.core.sched_policy != "rr" && cfg.core.sched_policy != "gto")
        fatal("unknown sched_policy '", cfg.core.sched_policy,
              "' (expected rr or gto)");
    // A non-physical junction temperature would silently feed
    // pow(2, dT/20) garbage into every leakage number.
    if (!(cfg.tech.temperature > 0.0 && cfg.tech.temperature <= 500.0))
        fatal("tech temperature ", cfg.tech.temperature,
              " K out of range (0, 500]");
    const auto &th = cfg.thermal;
    if (!(th.ambient_k > 200.0 && th.ambient_k < 400.0))
        fatal("thermal ambient_k ", th.ambient_k,
              " K out of range (200, 400)");
    if (!(th.t_limit_k > th.ambient_k && th.t_limit_k <= 500.0))
        fatal("thermal t_limit_k ", th.t_limit_k,
              " K must lie in (ambient_k, 500]");
    if (th.cooling_scale <= 0.0)
        fatal("thermal cooling_scale must be positive, got ",
              th.cooling_scale);
    if (th.r_die_k_mm2_per_w <= 0.0 || th.r_lateral_k_per_w <= 0.0 ||
        th.r_dram_k_per_w <= 0.0)
        fatal("thermal resistances must be positive");
    if (th.c_heatsink_j_per_k <= 0.0 || th.c_die_j_per_k_mm2 <= 0.0 ||
        th.c_dram_j_per_k <= 0.0)
        fatal("thermal capacitances must be positive");
    if (th.throttle && !th.enabled)
        fatal("thermal throttling requires the thermal subsystem "
              "(thermal enabled)");
    if (th.integrator != "exact" && th.integrator != "euler")
        fatal("unknown thermal integrator '", th.integrator,
              "' (expected exact or euler)");
    cfg.operatingPoint().validate();
}

} // namespace

void
ThermalConfig::applyCooling(const std::string &name)
{
    // Presets scale the auto-sized stock cooler: a constrained
    // (cheap, passive-ish) solution resists more and stores less; a
    // liquid loop resists less and stores much more.
    if (name == "stock") {
        cooling_scale = 1.0;
        c_heatsink_j_per_k = 150.0;
    } else if (name == "constrained") {
        cooling_scale = 1.2;
        c_heatsink_j_per_k = 60.0;
    } else if (name == "liquid") {
        cooling_scale = 0.4;
        c_heatsink_j_per_k = 800.0;
    } else {
        fatal("unknown cooling preset '", name,
              "' (expected stock, constrained, or liquid)");
    }
    cooling = name;
    enabled = true;
}

std::vector<std::string>
ThermalConfig::coolingPresets()
{
    return {"stock", "constrained", "liquid"};
}

std::string
OperatingPoint::label() const
{
    return strformat("v%.4gf%.4g", vdd_scale, freq_scale);
}

double
OperatingPoint::maxFreqScale() const
{
    // Alpha-power MOSFET delay model (Sakurai-Newton): critical-path
    // speed ~ (V - Vt)^alpha / V with alpha ~ 1.3 for short-channel
    // devices and Vt ~ 35% of the nominal supply.
    constexpr double vt = 0.35, alpha = 1.3;
    if (vdd_scale <= vt)
        return 0.0;
    double speed = std::pow(vdd_scale - vt, alpha) / vdd_scale;
    double nominal = std::pow(1.0 - vt, alpha);
    return speed / nominal;
}

void
OperatingPoint::validate() const
{
    // Wide enough for any realistic DVFS ladder; tight enough to
    // catch typos ("9" for "0.9") and sign errors.
    constexpr double lo = 0.25, hi = 2.0;
    if (!(vdd_scale >= lo && vdd_scale <= hi))
        fatal("vdd_scale ", vdd_scale, " out of range [", lo, ", ", hi,
              "]");
    if (!(freq_scale >= lo && freq_scale <= hi))
        fatal("freq_scale ", freq_scale, " out of range [", lo, ", ",
              hi, "]");
}

void
OperatingPoint::applyTo(GpuConfig &cfg) const
{
    validate();
    cfg.tech.vdd_scale = vdd_scale;
    cfg.clocks.freq_scale = freq_scale;
}

OperatingPoint
OperatingPoint::parse(const std::string &spec)
{
    std::vector<std::string> parts = split(trim(spec), ':');
    if (parts.size() > 2 || parts[0].empty() ||
        (parts.size() == 2 && parts[1].empty()))
        fatal("malformed operating point '", spec,
              "' (expected V or V:F, e.g. 0.9 or 0.9:0.8)");
    OperatingPoint op;
    op.vdd_scale = parseDouble(parts[0], "operating point vdd scale");
    op.freq_scale = parts.size() == 2
                        ? parseDouble(parts[1],
                                      "operating point freq scale")
                        : op.vdd_scale;
    op.validate();
    return op;
}

std::vector<OperatingPoint>
OperatingPoint::parseList(const std::string &csv)
{
    std::vector<OperatingPoint> ops;
    for (const std::string &entry : split(csv, ','))
        if (!trim(entry).empty())
            ops.push_back(parse(entry));
    return ops;
}

std::string
GpuConfig::toXml() const
{
    std::ostringstream oss;
    oss << "<?xml version=\"1.0\"?>\n<gpusimpow>\n";
    ParamIo io(ParamIo::Mode::Save, nullptr, &oss);
    // describe() only writes through the reference in Save mode.
    describe(const_cast<GpuConfig &>(*this), io);
    oss << "</gpusimpow>\n";
    return oss.str();
}

GpuConfig
GpuConfig::fromXml(const std::string &text)
{
    auto root = xml::parse(text);
    if (root->name != "gpusimpow")
        fatal("configuration root element must be <gpusimpow>, got <",
              root->name, ">");
    GpuConfig cfg;
    ParamIo io(ParamIo::Mode::Load, root.get(), nullptr);
    describe(cfg, io);
    validate(cfg);
    return cfg;
}

GpuConfig
GpuConfig::fromXmlFile(const std::string &path)
{
    auto root = xml::parseFile(path);
    if (root->name != "gpusimpow")
        fatal("configuration root element must be <gpusimpow>, got <",
              root->name, ">");
    GpuConfig cfg;
    ParamIo io(ParamIo::Mode::Load, root.get(), nullptr);
    describe(cfg, io);
    validate(cfg);
    return cfg;
}

GpuConfig
GpuConfig::gt240()
{
    // Table II, GT240 column: 12 cores in 4 clusters, 768 threads and
    // 8 FUs per core, 550 MHz uncore at a 2.47x shader ratio, 24
    // in-flight warps, no scoreboard (barrel execution), no L2, 40 nm.
    GpuConfig cfg;
    cfg.name = "GeForce GT240";
    cfg.chip = "GT215";
    cfg.clusters = 4;
    cfg.cores_per_cluster = 3;

    cfg.clocks.uncore_hz = 550e6;
    cfg.clocks.shader_to_uncore = 2.47;
    cfg.clocks.dram_hz = 850e6;

    cfg.core.max_threads = 768;
    cfg.core.warp_size = 32;
    cfg.core.max_blocks = 8;
    cfg.core.int_lanes = 8;
    cfg.core.fp_lanes = 8;
    cfg.core.sfu_units = 2;
    cfg.core.scoreboard = false;
    cfg.core.regfile_regs = 16384;
    cfg.core.regfile_banks = 16;
    cfg.core.operand_collectors = 4;
    cfg.core.smem_l1_bytes = 16384;
    cfg.core.smem_bytes = 16384;  // Tesla-class: all SMEM, no L1D
    cfg.core.smem_banks = 16;
    cfg.core.sagu_count = 4;

    cfg.l2.present = false;
    cfg.l2.total_bytes = 0;

    cfg.dram.channels = 4;
    cfg.dram.channel_bits = 32;
    cfg.dram.chips = 8;
    cfg.dram.latency = 110;

    cfg.tech.node_nm = 40;
    cfg.tech.vdd = 1.05;

    // SectionIII-D / Table V empirical constants (measured on this
    // very card in the paper).
    cfg.calib.int_op_pj = 40.0;
    cfg.calib.fp_op_pj = 75.0;
    cfg.calib.global_sched_w = 3.34;
    cfg.calib.cluster_base_w = 0.692;
    cfg.calib.core_base_dyn_w = 0.199;
    cfg.calib.undiff_core_static_w = 0.886;
    cfg.calib.undiff_core_area_mm2 = 6.35;
    return cfg;
}

GpuConfig
GpuConfig::gtx580()
{
    // Table II, GTX580 column: 16 cores in 4 clusters, 1536 threads
    // and 32 FUs per core, 882 MHz uncore at 2x shader ratio, 48
    // in-flight warps, scoreboard, 768 KB L2, 40 nm.
    GpuConfig cfg;
    cfg.name = "GeForce GTX580";
    cfg.chip = "GF110";
    cfg.clusters = 4;
    cfg.cores_per_cluster = 4;

    cfg.clocks.uncore_hz = 882e6;
    cfg.clocks.shader_to_uncore = 2.0;
    cfg.clocks.dram_hz = 1002e6;

    cfg.core.max_threads = 1536;
    cfg.core.warp_size = 32;
    cfg.core.max_blocks = 8;
    cfg.core.int_lanes = 32;
    cfg.core.fp_lanes = 32;
    cfg.core.sfu_units = 4;
    cfg.core.scoreboard = true;
    cfg.core.scoreboard_entries = 4;
    cfg.core.issue_width = 2;
    cfg.core.regfile_regs = 32768;
    cfg.core.regfile_banks = 16;
    cfg.core.operand_collectors = 8;
    cfg.core.smem_l1_bytes = 65536;
    cfg.core.smem_bytes = 49152;  // 48 KB SMEM / 16 KB L1D split
    cfg.core.smem_banks = 32;
    cfg.core.sagu_count = 4;
    cfg.core.max_pending_mem = 128;

    cfg.l2.present = true;
    cfg.l2.total_bytes = 768 * 1024;
    cfg.l2.slices = 6;
    cfg.l2.assoc = 8;

    cfg.noc.link_bits = 512;

    cfg.dram.channels = 6;
    cfg.dram.channel_bits = 64;
    cfg.dram.chips = 12;
    cfg.dram.latency = 90;

    cfg.tech.node_nm = 40;
    cfg.tech.vdd = 1.00;

    // The empirical EU energies were derived on the GT240 and, as the
    // paper notes in SectionV-A, transfer well to the GTX580. Base
    // power scales with the much larger front-end/fixed-function area.
    cfg.calib.int_op_pj = 40.0;
    cfg.calib.fp_op_pj = 75.0;
    cfg.calib.sfu_op_pj = 400.0;
    cfg.calib.global_sched_w = 7.1;
    cfg.calib.cluster_base_w = 1.45;
    cfg.calib.core_base_dyn_w = 0.62;
    cfg.calib.undiff_core_static_w = 3.78;
    cfg.calib.undiff_core_area_mm2 = 12.9;
    return cfg;
}

} // namespace gpusimpow
