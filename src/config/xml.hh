/**
 * @file
 * A dependency-free parser for the XML subset GPUSimPow uses as its
 * configuration interface (the paper, SectionIII-A: "the key
 * parameters of the simulated architecture are supplied using a
 * simple XML-based interface").
 *
 * Supported: the XML declaration, comments, nested elements,
 * attributes (single or double quoted), character data, self-closing
 * tags, and the five predefined entities. Not supported (and not
 * needed for configuration files): DTDs, namespaces, CDATA sections,
 * processing instructions beyond the declaration.
 */

#ifndef GPUSIMPOW_CONFIG_XML_HH
#define GPUSIMPOW_CONFIG_XML_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gpusimpow {
namespace xml {

/** One element node of a parsed XML document. */
class Node
{
  public:
    /** Tag name of this element. */
    std::string name;
    /** Attribute key/value pairs, document order not preserved. */
    std::map<std::string, std::string> attributes;
    /** Concatenated character data directly inside this element. */
    std::string text;
    /** Child elements in document order. */
    std::vector<std::unique_ptr<Node>> children;

    /** First child with the given tag, or nullptr. */
    const Node *child(const std::string &tag) const;

    /** All children with the given tag. */
    std::vector<const Node *> childrenNamed(const std::string &tag) const;

    /** True if an attribute with this key exists. */
    bool hasAttribute(const std::string &key) const;

    /**
     * Attribute value; fatal() if missing.
     * @param key attribute name
     */
    const std::string &attribute(const std::string &key) const;

    /** Attribute value or a default when the key is absent. */
    std::string attributeOr(const std::string &key,
                            const std::string &dflt) const;

    /** Serialize this subtree as indented XML. */
    std::string toString(int indent = 0) const;
};

/**
 * Parse an XML document from a string.
 * @param content full document text
 * @return root element
 *
 * Reports malformed input via fatal() with a line number.
 */
std::unique_ptr<Node> parse(const std::string &content);

/** Parse an XML document from a file; fatal() if unreadable. */
std::unique_ptr<Node> parseFile(const std::string &path);

/** Escape the five predefined entities for serialization. */
std::string escape(const std::string &raw);

} // namespace xml
} // namespace gpusimpow

#endif // GPUSIMPOW_CONFIG_XML_HH
