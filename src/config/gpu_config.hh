/**
 * @file
 * GPU architecture configuration schema. One GpuConfig fully
 * describes a simulated GPU: chip organization (clusters, cores,
 * per-core structures of Fig. 2/3 of the paper), clocks, caches, NoC,
 * memory controllers, GDDR5 devices, PCIe, process technology, and
 * the empirically-derived power-calibration constants of the paper's
 * SectionIII-D.
 *
 * Configurations are supplied either programmatically (presets
 * gt240() / gtx580(), Table II of the paper) or through the simple
 * XML interface (loadXml()/toXml()).
 */

#ifndef GPUSIMPOW_CONFIG_GPU_CONFIG_HH
#define GPUSIMPOW_CONFIG_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpusimpow {

namespace xml { class Node; }

struct GpuConfig;

/**
 * One DVFS operating point of the core power domain: a relative
 * supply scale and a relative clock scale against the configuration's
 * nominal V/f pair. The paper's Eq. 1 (P_dyn = alpha*C*V^2*f plus
 * short-circuit power) makes both natural sweep dimensions; the
 * identity point {1, 1} reproduces the nominal configuration
 * bit-exactly. The memory (GDDR5/MC PHY) and PCIe domains run from
 * separate supplies and are not scaled.
 */
struct OperatingPoint
{
    /** Core supply relative to the configured Vdd. */
    double vdd_scale = 1.0;
    /** Shader/uncore clock relative to the configured clocks. */
    double freq_scale = 1.0;

    /** True for the nominal {1, 1} point. */
    bool isIdentity() const
    {
        return vdd_scale == 1.0 && freq_scale == 1.0;
    }

    /** Compact tag for scenario labels, e.g. "v0.9f0.8". */
    std::string label() const;

    /**
     * Highest frequency scale the scaled supply can sustain, per the
     * alpha-power delay law fmax(V) ~ (V - Vt)^alpha / V normalized
     * to 1 at the nominal supply. The simulator will happily run
     * infeasible points (useful for what-if studies); governors and
     * Pareto tools use this to mask them.
     */
    double maxFreqScale() const;

    /** True when freq_scale is achievable at this vdd_scale. */
    bool isFeasible() const
    {
        return freq_scale <= maxFreqScale() * (1.0 + 1e-9);
    }

    /** fatal() unless both scales are within the supported range. */
    void validate() const;

    /** Scale the config's core V/f domain to this point. */
    void applyTo(GpuConfig &cfg) const;

    /**
     * Parse one point from "V[:F]" ("0.9" means V=F=0.9, "0.9:0.8"
     * sets them separately); fatal() on malformed or out-of-range
     * input.
     */
    static OperatingPoint parse(const std::string &spec);

    /** Parse a comma-separated list of points (empty entries dropped). */
    static std::vector<OperatingPoint> parseList(const std::string &csv);
};

/** Clock domains of the modeled card (paper Table II). */
struct ClockConfig
{
    /** Uncore (NoC, L2, MC front-end) clock in Hz. */
    double uncore_hz = 550e6;
    /** Ratio of shader (core) clock to uncore clock. */
    double shader_to_uncore = 2.47;
    /** GDDR command clock in Hz (data rate is 4x for GDDR5). */
    double dram_hz = 850e6;
    /** DVFS scale applied to the core clock domain (uncore+shader);
     *  the DRAM clock is a separate domain and stays unscaled. */
    double freq_scale = 1.0;

    /** Effective uncore clock at the current operating point, Hz. */
    double uncoreHz() const { return uncore_hz * freq_scale; }

    /** Shader-domain clock in Hz. */
    double shaderHz() const
    {
        return uncore_hz * freq_scale * shader_to_uncore;
    }
};

/** Per-core (streaming multiprocessor) structure sizes. */
struct CoreConfig
{
    /** Maximum resident threads per core. */
    unsigned max_threads = 768;
    /** Threads per warp (SIMT width). */
    unsigned warp_size = 32;
    /** Maximum concurrently resident thread blocks per core. */
    unsigned max_blocks = 8;
    /** Integer SIMD lanes per core. */
    unsigned int_lanes = 8;
    /** Floating-point SIMD lanes per core. */
    unsigned fp_lanes = 8;
    /** Special function units per core (sin/cos/rcp/sqrt...). */
    unsigned sfu_units = 2;
    /** True if dependences are tracked with a scoreboard [18];
     *  false models a blocking barrel-processing core. */
    bool scoreboard = false;
    /** Destination registers tracked per warp by the scoreboard. */
    unsigned scoreboard_entries = 4;
    /** Warp instructions issued per cycle (warp schedulers). */
    unsigned issue_width = 1;

    /** Architectural 32-bit registers in the register file. */
    unsigned regfile_regs = 16384;
    /** Single-ported register file banks [19]. */
    unsigned regfile_banks = 16;
    /** Operand collector units (two-ported, four-entry). */
    unsigned operand_collectors = 4;

    /** Instruction buffer slots per warp (associativity). */
    unsigned ibuffer_slots = 2;
    /** Instruction cache capacity in bytes. */
    unsigned icache_bytes = 8192;
    /** Instruction cache associativity. */
    unsigned icache_assoc = 4;

    /** Unified SMEM/L1 physical memory in bytes (paper III-C4). */
    unsigned smem_l1_bytes = 16384;
    /** Bytes of the unified memory configured as shared memory. */
    unsigned smem_bytes = 16384;
    /** Shared memory banks (conflict checker granularity [25]). */
    unsigned smem_banks = 16;
    /** L1D associativity (ignored when l1dBytes() == 0). */
    unsigned l1d_assoc = 4;
    /** L1D line size in bytes (also the coalescing granularity). */
    unsigned line_bytes = 128;

    /** Per-core constant cache capacity in bytes. */
    unsigned const_cache_bytes = 8192;
    /** Constant cache associativity. */
    unsigned const_cache_assoc = 4;

    /** Parallel sub-AGUs; each generates 8 addresses/cycle [22]. */
    unsigned sagu_count = 4;
    /** False bypasses the coalescer: one memory transaction per
     *  active lane (ablation knob, see DESIGN.md section5). */
    bool coalescing = true;
    /** Warp issue policy: "rr" (rotating priority, the modeled
     *  hardware [16]) or "gto" (greedy-then-oldest, ablation). */
    std::string sched_policy = "rr";
    /** Coalescer pending-request-table entries [24]. */
    unsigned coalescer_entries = 8;
    /** Coalescer input/output queue entries. */
    unsigned coalescer_queue = 8;
    /** Outstanding global-memory transactions per core (MSHR-like). */
    unsigned max_pending_mem = 64;

    /** INT pipeline latency, shader cycles. */
    unsigned int_latency = 10;
    /** FP pipeline latency, shader cycles. */
    unsigned fp_latency = 10;
    /** SFU latency, shader cycles. */
    unsigned sfu_latency = 20;
    /** Shared-memory access latency, shader cycles. */
    unsigned smem_latency = 24;
    /** L1 / constant-cache hit latency, shader cycles. */
    unsigned l1_latency = 30;

    /** Maximum in-flight warps per core. */
    unsigned maxWarps() const { return max_threads / warp_size; }
    /** L1 data portion of the unified SMEM/L1 memory. */
    unsigned lOneDBytes() const
    {
        return smem_l1_bytes > smem_bytes ? smem_l1_bytes - smem_bytes : 0;
    }
};

/** Shared L2 cache (absent on Tesla-class parts, Table II). */
struct L2Config
{
    /** True if the chip has a unified L2. */
    bool present = false;
    /** Total capacity in bytes across all slices. */
    unsigned total_bytes = 0;
    /** Number of slices (one per memory channel). */
    unsigned slices = 1;
    /** Associativity. */
    unsigned assoc = 8;
    /** Line size in bytes. */
    unsigned line_bytes = 128;
    /** Access latency in uncore cycles. */
    unsigned latency = 40;
};

/** Network-on-chip connecting cores to L2/MC (crossbar model). */
struct NocConfig
{
    /** Link width in bits. */
    unsigned link_bits = 256;
    /** Per-hop latency in uncore cycles. */
    unsigned latency = 8;
};

/** GDDR5 device and channel configuration. */
struct DramConfig
{
    /** Independent memory channels (MC instances). */
    unsigned channels = 4;
    /** Data bus width per channel in bits. */
    unsigned channel_bits = 32;
    /** DRAM devices (chips) on the card. */
    unsigned chips = 8;
    /** Banks per chip. */
    unsigned banks = 16;
    /** Row (page) size per bank in bytes. */
    unsigned row_bytes = 2048;
    /** Burst length in data-clock edges (GDDR5: 8). */
    unsigned burst_length = 8;
    /** Access latency added to an L2/MC miss, uncore cycles. */
    unsigned latency = 100;
    /** tRC in DRAM command-clock cycles (row cycle time). */
    unsigned t_rc = 40;

    /** Supply voltage of the DRAM devices. */
    double vdd = 1.5;
    /** Background (standby, banks precharged) current per chip, A. */
    double idd2n = 0.140;
    /** Active-standby current per chip (row open), A. */
    double idd3n = 0.175;
    /** Activate/precharge current pulse per chip, A. */
    double idd0 = 0.210;
    /** Read burst incremental current per chip, A. */
    double idd4r = 0.500;
    /** Write burst incremental current per chip, A. */
    double idd4w = 0.460;
    /** Refresh burst current per chip, A. */
    double idd5 = 0.300;
    /** Refresh interval tREFI in seconds. */
    double t_refi = 3.9e-6;
    /** Refresh duration tRFC in seconds. */
    double t_rfc = 90e-9;
    /** Output-driver / ODT termination energy per bit, J. */
    double term_pj_per_bit = 5.5;
};

/** PCI Express interface controller. */
struct PcieConfig
{
    /** Lane count. */
    unsigned lanes = 16;
    /** Per-lane line rate, bit/s (Gen2: 5 GT/s). */
    double gbps_per_lane = 5.0;
};

/** Process-technology selection (feeds the tech layer). */
struct TechConfig
{
    /** Feature size in nanometers (e.g. 40). */
    unsigned node_nm = 40;
    /** Core supply voltage (<= 0 selects the node-nominal supply). */
    double vdd = 1.05;
    /** DVFS scale applied to the resolved core supply. */
    double vdd_scale = 1.0;
    /** Nominal junction temperature in Kelvin used for leakage when
     *  the closed-loop thermal solve is disabled. */
    double temperature = 350.0;
};

/**
 * Closed-loop thermal subsystem configuration (src/thermal/): the RC
 * network's cooling solution, the ambient boundary, and the DVFS
 * thermal-throttling policy. Disabled by default, which keeps the
 * junction temperature at the static TechConfig constant and every
 * golden anchor bit-exact.
 */
struct ThermalConfig
{
    /** Run the thermal solvers (temperature becomes an output). */
    bool enabled = false;
    /** Clamp freq_scale when a block exceeds t_limit_k. */
    bool throttle = false;
    /** Cooling preset label ("stock", "constrained", "liquid"). */
    std::string cooling = "stock";
    /** Ambient (case air) temperature at the card inlet, K. */
    double ambient_k = 318.0;
    /** Junction temperature limit for the throttling policy, K
     *  (85 C, a typical GPU throttle point). */
    double t_limit_k = 358.0;
    /** Heatsink-to-ambient resistance, K/W; <= 0 auto-sizes the
     *  cooler to the die area (stock law x cooling_scale). */
    double r_heatsink_k_per_w = 0.0;
    /** Multiplier on the auto-sized heatsink resistance; the cooling
     *  preset's knob (cheap cooler > 1, premium < 1). */
    double cooling_scale = 1.0;
    /** Heatsink (fins + heatpipes) heat capacity, J/K. */
    double c_heatsink_j_per_k = 150.0;
    /** Area-specific junction-to-heatsink resistance, K*mm^2/W. */
    double r_die_k_mm2_per_w = 8.0;
    /** Die + package heat capacity per area, J/(K*mm^2). */
    double c_die_j_per_k_mm2 = 2e-3;
    /** Lateral spreading resistance between die neighbors, K/W. */
    double r_lateral_k_per_w = 4.0;
    /** DRAM-devices-to-ambient resistance, K/W (board path). */
    double r_dram_k_per_w = 5.0;
    /** DRAM devices + board copper heat capacity, J/K. */
    double c_dram_j_per_k = 3.0;
    /** Transient integration scheme: "exact" (cached LTI propagator,
     *  the default) or "euler" (historical forward-Euler substepping,
     *  kept for validation). Steady-state solves are unaffected. */
    std::string integrator = "exact";

    /**
     * Apply a named cooling preset (sets cooling, cooling_scale, and
     * the heatsink capacity) and enable the subsystem; fatal() on an
     * unknown name.
     */
    void applyCooling(const std::string &name);

    /** Names applyCooling() accepts. */
    static std::vector<std::string> coolingPresets();
};

/**
 * Empirical power-calibration constants (paper SectionIII-D):
 * energies per executed instruction measured with the differential
 * lane-enabling microbenchmark, plus the "base power" values for
 * global scheduler and core clusters derived from Fig. 4, and the
 * undifferentiated-core residual of Table V.
 */
struct PowerCalibConfig
{
    /** Energy per integer instruction per lane, pJ (measured ~40). */
    double int_op_pj = 40.0;
    /** Energy per FP instruction per lane, pJ (measured ~75). */
    double fp_op_pj = 75.0;
    /** Energy per SFU operation, pJ (Caro et al. [21], scaled). */
    double sfu_op_pj = 400.0;
    /** Energy per AGU-generated address, pJ. */
    double agu_addr_pj = 6.0;
    /** Global work-distribution engine power when active, W. */
    double global_sched_w = 3.34;
    /** Additional power when a cluster has >=1 active core, W. */
    double cluster_base_w = 0.692;
    /** Per-core dynamic base power while executing, W. */
    double core_base_dyn_w = 0.199;
    /** Per-core undifferentiated static power, W (Table V). */
    double undiff_core_static_w = 0.886;
    /** Per-core undifferentiated area (ROPs, video, texture), mm^2. */
    double undiff_core_area_mm2 = 4.5;
    /** Fraction of dynamic power added as short-circuit power. */
    double short_circuit_frac = 0.10;
};

/** Complete description of one simulated GPU card. */
struct GpuConfig
{
    /** Marketing name of the card (e.g. "GeForce GT240"). */
    std::string name = "GeForce GT240";
    /** Chip codename (e.g. "GT215"). */
    std::string chip = "GT215";

    /** Core clusters (TPC/GPC) on the chip. */
    unsigned clusters = 4;
    /** SIMT cores per cluster. */
    unsigned cores_per_cluster = 3;

    ClockConfig clocks;
    CoreConfig core;
    L2Config l2;
    NocConfig noc;
    DramConfig dram;
    PcieConfig pcie;
    TechConfig tech;
    ThermalConfig thermal;
    PowerCalibConfig calib;

    /** Total SIMT cores on the chip. */
    unsigned numCores() const { return clusters * cores_per_cluster; }

    /** The DVFS operating point currently applied to this config. */
    OperatingPoint operatingPoint() const
    {
        return {tech.vdd_scale, clocks.freq_scale};
    }

    /** Serialize to the XML configuration format. */
    std::string toXml() const;

    /** Parse a configuration from XML text; fatal() on schema errors. */
    static GpuConfig fromXml(const std::string &text);

    /** Parse a configuration from an XML file. */
    static GpuConfig fromXmlFile(const std::string &path);

    /** Preset: NVIDIA GeForce GT240 (GT215, Tesla-class), Table II. */
    static GpuConfig gt240();

    /** Preset: NVIDIA GeForce GTX580 (GF110, Fermi-class), Table II. */
    static GpuConfig gtx580();
};

} // namespace gpusimpow

#endif // GPUSIMPOW_CONFIG_GPU_CONFIG_HH
