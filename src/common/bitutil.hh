/**
 * @file
 * Bit-manipulation helpers used by caches, coalescers, and register
 * bank hashing.
 */

#ifndef GPUSIMPOW_COMMON_BITUTIL_HH
#define GPUSIMPOW_COMMON_BITUTIL_HH

#include <cstdint>

namespace gpusimpow {

/** True if v is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round v up to the next multiple of align (align > 0). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return ((v + align - 1) / align) * align;
}

/** Ceiling division. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Number of set bits. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

} // namespace gpusimpow

#endif // GPUSIMPOW_COMMON_BITUTIL_HH
