/**
 * @file
 * Logging and error-reporting facilities in the style of gem5's
 * base/logging.hh: inform() for status, warn() for suspicious but
 * non-fatal conditions, fatal() for user errors that terminate the
 * simulation cleanly, and panic() for internal invariant violations.
 */

#ifndef GPUSIMPOW_COMMON_LOGGING_HH
#define GPUSIMPOW_COMMON_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gpusimpow {

/**
 * Exception thrown by fatal(). Carrying the message in an exception
 * (rather than calling exit() directly) lets unit tests assert on
 * fatal conditions; top-level tools catch it and exit(1).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/**
 * Process-wide logging configuration. Tests lower the level to Quiet
 * to keep ctest output readable; tools raise it to Debug.
 */
class Logger
{
  public:
    /** Return the singleton logger. */
    static Logger &instance();

    /** Set the maximum level that will be emitted. Safe to call
     *  while other threads emit (relaxed atomic: the level is a
     *  filter knob, not a synchronization point). */
    void setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Current maximum emitted level. */
    LogLevel level() const
    {
        return _level.load(std::memory_order_relaxed);
    }

    /** Emit one message at the given level to stderr. */
    void emit(LogLevel level, const std::string &tag,
              const std::string &message);

  private:
    std::atomic<LogLevel> _level{LogLevel::Warn};
};

namespace detail {

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void fatalExit(const std::string &message);
[[noreturn]] void panicAbort(const std::string &message);
[[noreturn]] void panicAbortAt(const char *file, int line,
                               const std::string &message);

} // namespace detail

/** Informative status message; users should not worry about it. */
template <typename... Args>
void
inform(Args &&...args)
{
    Logger::instance().emit(LogLevel::Inform, "info",
                            detail::concat(std::forward<Args>(args)...));
}

/** Something may be modeled imperfectly but simulation can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::instance().emit(LogLevel::Warn, "warn",
                            detail::concat(std::forward<Args>(args)...));
}

/**
 * The simulation cannot continue due to a user-side problem (bad
 * configuration, invalid arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/**
 * An internal invariant was violated: a simulator bug, never the
 * user's fault. Aborts so a core dump / debugger can take over.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concat(std::forward<Args>(args)...));
}

/** panic() with the callsite's file:line prepended — preferred over
 *  a direct panic() call so crash reports name the failing check. */
#define GSP_PANIC(...)                                                  \
    ::gpusimpow::detail::panicAbortAt(                                  \
        __FILE__, __LINE__,                                             \
        ::gpusimpow::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds; the message carries the
 *  callsite's file:line. */
#define GSP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gpusimpow::detail::panicAbortAt(                          \
                __FILE__, __LINE__,                                     \
                ::gpusimpow::detail::concat(                            \
                    "assertion '" #cond "' failed: ",                   \
                    ##__VA_ARGS__));                                    \
        }                                                               \
    } while (0)

/**
 * Debug-only assertion for hot-path bounds/finiteness checks:
 * identical to GSP_ASSERT in Debug builds, compiled out entirely
 * (condition not evaluated) under NDEBUG so Release benchmarks and
 * the bench/baseline.json gates are unaffected.
 */
#ifdef NDEBUG
#define GSP_DCHECK(cond, ...)                                           \
    do {                                                                \
        (void)sizeof(cond);                                             \
    } while (0)
#else
#define GSP_DCHECK(cond, ...) GSP_ASSERT(cond, ##__VA_ARGS__)
#endif

} // namespace gpusimpow

#endif // GPUSIMPOW_COMMON_LOGGING_HH
