#include "common/logging.hh"

#include <exception>
#include <iostream>

namespace gpusimpow {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, const std::string &tag,
             const std::string &message)
{
    if (static_cast<int>(level) >
        static_cast<int>(_level.load(std::memory_order_relaxed)))
        return;
    std::cerr << "[gpusimpow:" << tag << "] " << message << "\n";
}

namespace detail {

/**
 * Exception carrying a fatal() message. Thrown instead of exit() so
 * unit tests can assert on fatal conditions; the top-level tools catch
 * it and exit(1).
 */
void
fatalExit(const std::string &message)
{
    throw FatalError(message);
}

void
panicAbort(const std::string &message)
{
    std::cerr << "[gpusimpow:panic] " << message << std::endl;
    std::abort();
}

void
panicAbortAt(const char *file, int line, const std::string &message)
{
    std::cerr << "[gpusimpow:panic] " << file << ":" << line << ": "
              << message << std::endl;
    std::abort();
}

} // namespace detail
} // namespace gpusimpow
