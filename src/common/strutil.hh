/**
 * @file
 * Small string helpers shared across the code base (trimming, token
 * splitting, numeric parsing with error reporting, printf-style
 * formatting into std::string).
 */

#ifndef GPUSIMPOW_COMMON_STRUTIL_HH
#define GPUSIMPOW_COMMON_STRUTIL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpusimpow {

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** Split on a single-character delimiter; empty tokens preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** True if s begins with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Parse a decimal integer; fatal() with context on failure. */
long parseLong(const std::string &s, const std::string &context);

/**
 * Parse a non-negative integer within [min, max]; fatal() with
 * context on failure. Negative input is rejected with a range
 * message instead of wrapping through an unsigned cast.
 */
unsigned parseUnsigned(const std::string &s, const std::string &context,
                       unsigned min = 0, unsigned max = 4294967295u);

/** Parse a floating-point number; fatal() with context on failure. */
double parseDouble(const std::string &s, const std::string &context);

/** Parse "true"/"false"/"1"/"0"; fatal() with context on failure. */
bool parseBool(const std::string &s, const std::string &context);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Escape a string for embedding inside a JSON string literal
 *  (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

// Stream-token parsing for the stable text serializations (activity
// records, scenario snapshots): whitespace-delimited tokens, fatal()
// with context on truncation or malformed values.

/** Read one token; fatal() with context at end of input. */
std::string readToken(std::istream &in, const std::string &context);

/** Read a literal keyword token; fatal() on mismatch. */
void expectToken(std::istream &in, const std::string &keyword);

/** Read an unsigned 64-bit decimal token; fatal() with context. */
uint64_t readU64Token(std::istream &in, const std::string &context);

/** Read a decimal token destined for a 32-bit unsigned field;
 *  fatal() with a range message instead of silently truncating
 *  values above 2^32-1 through a narrowing cast. */
uint32_t readU32Token(std::istream &in, const std::string &context);

/** Read a 0/1 boolean flag token; any other value is malformed. */
bool readFlagToken(std::istream &in, const std::string &context);

/**
 * Read a floating-point token; fatal() with context. Accepts C99 hex
 * floats, so values written with strformat("%a", v) round-trip
 * bit-exactly — the foundation of bit-identical snapshot replay.
 */
double readDoubleToken(std::istream &in, const std::string &context);

} // namespace gpusimpow

#endif // GPUSIMPOW_COMMON_STRUTIL_HH
