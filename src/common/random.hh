/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic
 * element of the simulator (workload data, measurement noise, hidden
 * hardware calibration) derives from SplitMix64/xoshiro-style streams
 * seeded explicitly, so all experiments are bit-reproducible.
 */

#ifndef GPUSIMPOW_COMMON_RANDOM_HH
#define GPUSIMPOW_COMMON_RANDOM_HH

#include <cstdint>

namespace gpusimpow {

/**
 * SplitMix64 generator. Small state, excellent for seeding and for
 * per-entity derived streams (hash a name, get a stream).
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

    /**
     * Standard-normal deviate via Box-Muller (one value per call; the
     * pair's second member is discarded to keep state-advance simple).
     */
    double
    nextGaussian()
    {
        double u1 = nextDouble();
        double u2 = nextDouble();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        constexpr double two_pi = 6.283185307179586;
        return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
               __builtin_cos(two_pi * u2);
    }

  private:
    uint64_t _state;
};

/** FNV-1a hash of a string; used to derive per-name random streams. */
inline uint64_t
hashString(const char *s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace gpusimpow

#endif // GPUSIMPOW_COMMON_RANDOM_HH
