/**
 * @file
 * Physical-unit helpers. All internal quantities use SI base units
 * (seconds, hertz, watts, joules, farads, volts, amperes, meters);
 * these constants and conversion helpers keep call sites readable and
 * make unit errors greppable.
 */

#ifndef GPUSIMPOW_COMMON_UNITS_HH
#define GPUSIMPOW_COMMON_UNITS_HH

namespace gpusimpow {
namespace units {

// Scale prefixes.
constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;

/** Convert MHz to Hz. */
constexpr double MHz(double v) { return v * mega; }
/** Convert GHz to Hz. */
constexpr double GHz(double v) { return v * giga; }
/** Convert nanoseconds to seconds. */
constexpr double ns(double v) { return v * nano; }
/** Convert microseconds to seconds. */
constexpr double us(double v) { return v * micro; }
/** Convert milliseconds to seconds. */
constexpr double ms(double v) { return v * milli; }
/** Convert picojoules to joules. */
constexpr double pJ(double v) { return v * pico; }
/** Convert nanojoules to joules. */
constexpr double nJ(double v) { return v * nano; }
/** Convert milliwatts to watts. */
constexpr double mW(double v) { return v * milli; }
/** Convert millimeters^2 to m^2. */
constexpr double mm2(double v) { return v * 1e-6; }
/** Convert square meters to mm^2 (for reporting). */
constexpr double toMm2(double v) { return v * 1e6; }
/** Convert joules to picojoules (for reporting). */
constexpr double toPJ(double v) { return v / pico; }
/** Convert nanometers to meters. */
constexpr double nm(double v) { return v * nano; }
/** Convert micrometers to meters. */
constexpr double um(double v) { return v * micro; }
/** Convert femtofarads to farads. */
constexpr double fF(double v) { return v * femto; }
/** Convert picofarads to farads. */
constexpr double pF(double v) { return v * pico; }
/** Convert milliohms to ohms. */
constexpr double mOhm(double v) { return v * milli; }
/** Convert millivolts to volts. */
constexpr double mV(double v) { return v * milli; }
/** Convert milliamperes to amperes. */
constexpr double mA(double v) { return v * milli; }

} // namespace units
} // namespace gpusimpow

#endif // GPUSIMPOW_COMMON_UNITS_HH
