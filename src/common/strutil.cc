#include "common/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <istream>

#include "common/logging.hh"

namespace gpusimpow {

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == delim) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

long
parseLong(const std::string &s, const std::string &context)
{
    char *end = nullptr;
    std::string t = trim(s);
    errno = 0;
    long v = std::strtol(t.c_str(), &end, 0);
    if (t.empty() || end == nullptr || *end != '\0')
        fatal("cannot parse integer '", s, "' (", context, ")");
    if (errno == ERANGE)
        fatal("integer '", s, "' overflows (", context, ")");
    return v;
}

unsigned
parseUnsigned(const std::string &s, const std::string &context,
              unsigned min, unsigned max)
{
    long v = parseLong(s, context);
    // Compare in unsigned long: wide enough for any unsigned bound
    // even on LLP64/ILP32 platforms where long is 32 bits.
    if (v < 0 || static_cast<unsigned long>(v) < min ||
        static_cast<unsigned long>(v) > max)
        fatal("value ", v, " out of range [", min, ", ", max, "] (",
              context, ")");
    return static_cast<unsigned>(v);
}

double
parseDouble(const std::string &s, const std::string &context)
{
    char *end = nullptr;
    std::string t = trim(s);
    double v = std::strtod(t.c_str(), &end);
    if (t.empty() || end == nullptr || *end != '\0')
        fatal("cannot parse number '", s, "' (", context, ")");
    return v;
}

bool
parseBool(const std::string &s, const std::string &context)
{
    std::string t = trim(s);
    if (t == "true" || t == "1")
        return true;
    if (t == "false" || t == "0")
        return false;
    fatal("cannot parse boolean '", s, "' (", context, ")");
}

std::string
readToken(std::istream &in, const std::string &context)
{
    std::string tok;
    if (!(in >> tok))
        fatal("truncated record: expected ", context);
    return tok;
}

void
expectToken(std::istream &in, const std::string &keyword)
{
    std::string tok = readToken(in, "'" + keyword + "'");
    if (tok != keyword)
        fatal("malformed record: expected '", keyword, "', got '", tok,
              "'");
}

uint64_t
readU64Token(std::istream &in, const std::string &context)
{
    std::string tok = readToken(in, context);
    // strtoull silently wraps negative input ("-1" becomes 2^64-1);
    // that is exactly the unsigned-wrap bug class the CLI parsers
    // reject, so refuse anything but plain digits up front.
    if (tok.empty() || tok.find_first_not_of("0123456789") !=
                           std::string::npos)
        fatal("malformed record: bad ", context, " '", tok, "'");
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE)
        fatal("malformed record: bad ", context, " '", tok, "'");
    return v;
}

uint32_t
readU32Token(std::istream &in, const std::string &context)
{
    uint64_t v = readU64Token(in, context);
    if (v > UINT32_MAX)
        fatal("malformed record: ", context, " ", v,
              " exceeds the 32-bit range");
    return static_cast<uint32_t>(v);
}

bool
readFlagToken(std::istream &in, const std::string &context)
{
    uint64_t v = readU64Token(in, context);
    if (v > 1)
        fatal("malformed record: ", context, " must be 0 or 1, got ",
              v);
    return v != 0;
}

double
readDoubleToken(std::istream &in, const std::string &context)
{
    std::string tok = readToken(in, context);
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0')
        fatal("malformed record: bad ", context, " '", tok, "'");
    return v;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

} // namespace gpusimpow
