#include "dram/gddr5.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpusimpow {
namespace dram {

DramActivity &
DramActivity::operator+=(const DramActivity &o)
{
    activates += o.activates;
    read_bursts += o.read_bursts;
    write_bursts += o.write_bursts;
    // Weight the open fraction by interval length.
    double total = elapsed_s + o.elapsed_s;
    if (total > 0.0) {
        row_open_frac = (row_open_frac * elapsed_s +
                         o.row_open_frac * o.elapsed_s) / total;
    }
    elapsed_s = total;
    return *this;
}

Gddr5Power::Gddr5Power(const DramConfig &cfg, double dram_hz)
    : _cfg(cfg), _dram_hz(dram_hz)
{
    GSP_ASSERT(dram_hz > 0.0, "DRAM clock must be positive");
}

DramPowerBreakdown
Gddr5Power::compute(const DramActivity &activity) const
{
    DramPowerBreakdown out;
    const double chips = static_cast<double>(_cfg.chips);
    const double vdd = _cfg.vdd;

    // Background: precharged standby (IDD2N) blended with active
    // standby (IDD3N) by the row-open fraction (Micron methodology).
    double idd_bg = _cfg.idd2n +
                    (_cfg.idd3n - _cfg.idd2n) * activity.row_open_frac;
    out.background = chips * idd_bg * vdd;

    // Refresh: extra current during tRFC every tREFI.
    out.refresh = chips * (_cfg.idd5 - _cfg.idd2n) * vdd *
                  (_cfg.t_rfc / _cfg.t_refi);

    if (activity.elapsed_s <= 0.0)
        return out;

    // Activate: each ACT/PRE pair costs (IDD0-IDD3N)*VDD for tRC.
    double t_rc_s = static_cast<double>(_cfg.t_rc) / _dram_hz;
    double e_act = (_cfg.idd0 - _cfg.idd3n) * vdd * t_rc_s;
    out.activate = static_cast<double>(activity.activates) * e_act /
                   activity.elapsed_s;

    // Read/write: incremental burst current for the burst duration.
    // One burst moves burst_length beats on the channel; the data
    // clock runs at 4x the command clock for GDDR5.
    double burst_s = static_cast<double>(_cfg.burst_length) /
                     (4.0 * _dram_hz);
    // The burst current is per chip, but only the chips on this
    // channel burst; spread over all chips it averages out, so use
    // the per-channel chip share directly.
    double chips_per_channel = chips / static_cast<double>(_cfg.channels);
    double e_rd = (_cfg.idd4r - _cfg.idd3n) * vdd * burst_s *
                  chips_per_channel;
    double e_wr = (_cfg.idd4w - _cfg.idd3n) * vdd * burst_s *
                  chips_per_channel;
    out.read_write =
        (static_cast<double>(activity.read_bursts) * e_rd +
         static_cast<double>(activity.write_bursts) * e_wr) /
        activity.elapsed_s;

    // Termination: per-bit I/O energy on every transferred bit.
    double bits_per_burst = static_cast<double>(_cfg.burst_length) *
                            _cfg.channel_bits;
    double total_bits =
        static_cast<double>(activity.read_bursts + activity.write_bursts) *
        bits_per_burst;
    out.termination = total_bits * _cfg.term_pj_per_bit * 1e-12 /
                      activity.elapsed_s;

    return out;
}

double
Gddr5Power::idlePower() const
{
    DramActivity idle;
    idle.row_open_frac = 0.0;
    idle.elapsed_s = 1.0;
    DramPowerBreakdown b = compute(idle);
    return b.background + b.refresh;
}

DramChannel::DramChannel(const DramConfig &cfg) : _cfg(cfg)
{
    GSP_ASSERT(cfg.banks > 0, "channel needs banks");
    _banks.resize(cfg.banks);
    // GDDR5 transfers burst_length beats at 4 beats per command
    // cycle.
    _burst_cycles = std::max(1u, cfg.burst_length / 4);
}

uint64_t
DramChannel::access(uint64_t addr, bool write, uint64_t now_cycles)
{
    uint64_t row_addr = addr / _cfg.row_bytes;
    unsigned bank_idx = static_cast<unsigned>(row_addr % _cfg.banks);
    int64_t row = static_cast<int64_t>(row_addr / _cfg.banks);
    Bank &bank = _banks[bank_idx];

    uint64_t t = std::max(now_cycles, bank.next_free);

    if (bank.open_row != row) {
        // Precharge (if a row was open) then activate the new row.
        if (bank.open_row >= 0)
            t += _t_rp;
        t += _t_rcd;
        bank.open_row = row;
        ++_activates;
    } else {
        ++_row_hits;
    }

    // Column access; data bus is shared across banks.
    uint64_t data_start = std::max(t + _t_cas, _bus_next_free);
    uint64_t data_end = data_start + _burst_cycles;
    _bus_next_free = data_end;
    bank.next_free = t + _burst_cycles;

    _bus_busy_cycles += _burst_cycles;
    if (write)
        ++_write_bursts;
    else
        ++_read_bursts;

    return data_end;
}

void
DramChannel::resetCounters()
{
    _activates = 0;
    _row_hits = 0;
    _read_bursts = 0;
    _write_bursts = 0;
    _bus_busy_cycles = 0;
}

void
DramChannel::resetTiming()
{
    for (Bank &bank : _banks) {
        bank.next_free = 0;
        bank.open_row = -1;
    }
    _bus_next_free = 0;
}

} // namespace dram
} // namespace gpusimpow
