/**
 * @file
 * GDDR5 graphics-DRAM model: a per-channel bank-state timing machine
 * used by the performance simulator's memory controllers, and the
 * power model of the paper's SectionIII-C5 — "The power consumed by
 * typical DDR or GDDR chips can be divided into background, activate,
 * read/write, termination, and refresh power" — computed with the
 * Micron methodology from datasheet-style IDD currents.
 */

#ifndef GPUSIMPOW_DRAM_GDDR5_HH
#define GPUSIMPOW_DRAM_GDDR5_HH

#include <cstdint>
#include <vector>

#include "config/gpu_config.hh"

namespace gpusimpow {
namespace dram {

/** Activity of the whole DRAM subsystem over an interval. */
struct DramActivity
{
    /** Row activations (ACT/PRE pairs) across all channels. */
    uint64_t activates = 0;
    /** Read bursts (one burst = burst_length beats). */
    uint64_t read_bursts = 0;
    /** Write bursts. */
    uint64_t write_bursts = 0;
    /** Fraction of time at least one row is open, 0..1. */
    double row_open_frac = 0.0;
    /** Interval length in seconds. */
    double elapsed_s = 0.0;

    DramActivity &operator+=(const DramActivity &o);
};

/** Per-component DRAM power (W), the decomposition of [26]. */
struct DramPowerBreakdown
{
    double background = 0.0;
    double activate = 0.0;
    double read_write = 0.0;
    double termination = 0.0;
    double refresh = 0.0;

    /** Sum of all components, W. */
    double total() const
    {
        return background + activate + read_write + termination + refresh;
    }
};

/**
 * DRAM power calculator for the full set of devices on the card.
 * Stateless; give it an activity record and it returns watts.
 */
class Gddr5Power
{
  public:
    /**
     * @param cfg device and channel configuration
     * @param dram_hz command-clock frequency
     */
    Gddr5Power(const DramConfig &cfg, double dram_hz);

    /** Power breakdown for an activity interval. */
    DramPowerBreakdown compute(const DramActivity &activity) const;

    /** Background + refresh power of the idle device array, W. */
    double idlePower() const;

  private:
    DramConfig _cfg;
    double _dram_hz;
};

/**
 * Timing model of one GDDR5 channel: banks with open-row tracking, a
 * shared data bus, and fixed tRP/tRCD/tCAS command timing. The
 * memory controller calls access() in DRAM command-clock cycles and
 * receives the completion time; activity counters feed Gddr5Power.
 */
class DramChannel
{
  public:
    /**
     * @param cfg device configuration (banks, row size, timing)
     */
    explicit DramChannel(const DramConfig &cfg);

    /**
     * Issue one burst-sized access.
     * @param addr channel-local byte address
     * @param write true for a write burst
     * @param now_cycles current time in DRAM command cycles
     * @return completion time in DRAM command cycles
     */
    uint64_t access(uint64_t addr, bool write, uint64_t now_cycles);

    /** Row activations so far. */
    uint64_t activates() const { return _activates; }
    /** Row-buffer hits so far. */
    uint64_t rowHits() const { return _row_hits; }
    /** Read bursts so far. */
    uint64_t readBursts() const { return _read_bursts; }
    /** Write bursts so far. */
    uint64_t writeBursts() const { return _write_bursts; }
    /** Cycles the data bus was transferring. */
    uint64_t busBusyCycles() const { return _bus_busy_cycles; }
    /** Last cycle at which any bank is busy. */
    uint64_t lastBusyCycle() const { return _bus_next_free; }

    /** Reset activity counters (bank state is kept). */
    void resetCounters();

    /**
     * Reset the timing state (bank/bus next-free times and open
     * rows). Must be called when the controller's clock restarts
     * from zero, i.e. between kernels.
     */
    void resetTiming();

  private:
    struct Bank
    {
        int64_t open_row = -1;
        uint64_t next_free = 0;
    };

    DramConfig _cfg;
    std::vector<Bank> _banks;
    uint64_t _bus_next_free = 0;

    uint64_t _activates = 0;
    uint64_t _row_hits = 0;
    uint64_t _read_bursts = 0;
    uint64_t _write_bursts = 0;
    uint64_t _bus_busy_cycles = 0;

    // Command timing in command-clock cycles.
    unsigned _t_rcd = 12;
    unsigned _t_rp = 12;
    unsigned _t_cas = 12;
    unsigned _burst_cycles = 2;
};

} // namespace dram
} // namespace gpusimpow

#endif // GPUSIMPOW_DRAM_GDDR5_HH
