#include "stats/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace gpusimpow {
namespace stats {

Distribution::Distribution(std::string name, std::string desc, int64_t min,
                           int64_t max, unsigned num_buckets)
    : _name(std::move(name)), _desc(std::move(desc)), _min(min), _max(max),
      _buckets(num_buckets, 0)
{
    GSP_ASSERT(max > min, "distribution range must be non-empty");
    GSP_ASSERT(num_buckets > 0, "distribution needs at least one bucket");
}

void
Distribution::sample(int64_t value)
{
    int64_t clamped = value < _min ? _min : (value > _max ? _max : value);
    auto span = static_cast<double>(_max - _min + 1);
    auto idx = static_cast<size_t>(
        static_cast<double>(clamped - _min) / span *
        static_cast<double>(_buckets.size()));
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
    ++_count;
    _sum += static_cast<double>(value);
}

double
Distribution::mean() const
{
    return _count == 0 ? 0.0 : _sum / static_cast<double>(_count);
}

void
Distribution::reset()
{
    for (auto &b : _buckets)
        b = 0;
    _count = 0;
    _sum = 0.0;
}

Counter &
Group::counter(const std::string &name, const std::string &desc)
{
    auto it = _counters.find(name);
    if (it == _counters.end())
        it = _counters.emplace(name, Counter(name, desc)).first;
    return it->second;
}

Distribution &
Group::distribution(const std::string &name, const std::string &desc,
                    int64_t min, int64_t max, unsigned buckets)
{
    auto it = _distributions.find(name);
    if (it == _distributions.end()) {
        it = _distributions
                 .emplace(name, Distribution(name, desc, min, max, buckets))
                 .first;
    }
    return it->second;
}

uint64_t
Group::get(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second.value();
}

void
Group::reset()
{
    for (auto &[name, c] : _counters)
        c.reset();
    for (auto &[name, d] : _distributions)
        d.reset();
}

std::string
Group::format() const
{
    std::ostringstream oss;
    for (const auto &[name, c] : _counters) {
        oss << _name << "." << name << " " << c.value() << " # "
            << c.desc() << "\n";
    }
    for (const auto &[name, d] : _distributions) {
        oss << _name << "." << name << ".count " << d.count() << "\n";
        oss << _name << "." << name << ".mean " << d.mean() << "\n";
    }
    return oss.str();
}

} // namespace stats
} // namespace gpusimpow
