/**
 * @file
 * Lightweight statistics package in the spirit of gem5's stats: named
 * scalar counters and distributions collected into groups, with a
 * plain-text formatter. The cycle-level simulator registers one group
 * per hardware structure; the power model consumes the counters as
 * activity information (the alpha factors of Eq. 1 in the paper).
 */

#ifndef GPUSIMPOW_STATS_STATS_HH
#define GPUSIMPOW_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpusimpow {
namespace stats {

/** A named monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    /** Increment by n events. */
    void inc(uint64_t n = 1) { _value += n; }
    /** Current count. */
    uint64_t value() const { return _value; }
    /** Reset to zero (between kernels / sampling intervals). */
    void reset() { _value = 0; }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    uint64_t _value = 0;
};

/**
 * A bucketed histogram over a fixed integer range; out-of-range
 * samples are clamped into the first/last bucket.
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * @param name stat name
     * @param desc human-readable description
     * @param min lowest tracked sample value
     * @param max highest tracked sample value
     * @param num_buckets bucket count over [min, max]
     */
    Distribution(std::string name, std::string desc, int64_t min,
                 int64_t max, unsigned num_buckets);

    /** Record one sample. */
    void sample(int64_t value);

    /** Number of recorded samples. */
    uint64_t count() const { return _count; }
    /** Arithmetic mean of recorded samples. */
    double mean() const;
    /** Bucket contents for reporting. */
    const std::vector<uint64_t> &buckets() const { return _buckets; }
    /** Reset all buckets. */
    void reset();

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::string _desc;
    int64_t _min = 0;
    int64_t _max = 1;
    std::vector<uint64_t> _buckets;
    uint64_t _count = 0;
    double _sum = 0.0;
};

/**
 * A group of stats owned by one simulated structure. Groups register
 * counters/distributions by name and can be dumped or reset together.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    /** Create (or fetch) a counter in this group. */
    Counter &counter(const std::string &name, const std::string &desc);

    /** Create (or fetch) a distribution in this group. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc, int64_t min,
                               int64_t max, unsigned buckets);

    /** Value of a counter, or 0 when it was never created. */
    uint64_t get(const std::string &name) const;

    /** Reset every stat in the group. */
    void reset();

    /** Render "group.stat value # desc" lines. */
    std::string format() const;

    const std::string &name() const { return _name; }
    const std::map<std::string, Counter> &counters() const
    {
        return _counters;
    }

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
    std::map<std::string, Distribution> _distributions;
};

} // namespace stats
} // namespace gpusimpow

#endif // GPUSIMPOW_STATS_STATS_HH
