#include "perf/gpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

namespace {

/** Hard cap against runaway kernels (simulator bug guard). */
constexpr uint64_t max_shader_cycles = 2000000000ull;

} // namespace

Gpu::Gpu(const GpuConfig &cfg)
    : _cfg(cfg), _memsys(cfg)
{
    // Cores hold a reference to the configuration: it must be this
    // object's copy, never the constructor argument (which may be a
    // temporary).
    for (unsigned c = 0; c < _cfg.numCores(); ++c) {
        _cores.push_back(std::make_unique<Core>(_cfg, c, _memsys, _gmem,
                                                _cmem));
    }
    _cluster_busy.assign(_cfg.clusters, 0);
}

void
Gpu::memcpyToDevice(uint32_t dst, const void *src, size_t bytes)
{
    _gmem.write(dst, src, bytes);
    _pcie_bytes += bytes;
}

void
Gpu::memcpyToHost(void *dst, uint32_t src, size_t bytes)
{
    _gmem.read(src, dst, bytes);
    _pcie_bytes += bytes;
}

void
Gpu::resetDeviceState()
{
    for (const auto &core : _cores)
        GSP_ASSERT(!core->busy(), "resetDeviceState with a busy core");
    _gmem.reset();
    _cmem.reset();
    _alloc.reset();
    _pcie_bytes = 0;
    _pcie_baseline = 0;
    _blocks_dispatched = 0;
    _gpu_busy = 0;
    _cluster_busy.assign(_cfg.clusters, 0);
}

void
Gpu::setFreqScale(double freq_scale)
{
    GSP_ASSERT(freq_scale > 0.0, "freq_scale must be positive");
    for (const auto &core : _cores)
        GSP_ASSERT(!core->busy(), "setFreqScale with a busy core");
    _cfg.clocks.freq_scale = freq_scale;
    _memsys.setClocks(_cfg.clocks);
}

int
Gpu::pickCoreForBlock() const
{
    // Hardware policy observed in Fig. 4: prefer an idle core in the
    // least-loaded cluster, so clusters light up one by one before
    // any core receives a second block.
    int best = -1;
    unsigned best_core_load = ~0u;
    unsigned best_cluster_load = ~0u;

    std::vector<unsigned> cluster_load(_cfg.clusters, 0);
    for (unsigned c = 0; c < _cores.size(); ++c)
        cluster_load[clusterOf(c)] += _cores[c]->residentBlocks();

    for (unsigned c = 0; c < _cores.size(); ++c) {
        if (!_cores[c]->canAcceptBlock())
            continue;
        unsigned core_load = _cores[c]->residentBlocks();
        unsigned cl_load = cluster_load[clusterOf(c)];
        if (core_load < best_core_load ||
            (core_load == best_core_load && cl_load < best_cluster_load)) {
            best = static_cast<int>(c);
            best_core_load = core_load;
            best_cluster_load = cl_load;
        }
    }
    return best;
}

ChipActivity
Gpu::snapshot(uint64_t cycle) const
{
    ChipActivity act;
    act.cores.reserve(_cores.size());
    for (const auto &core : _cores)
        act.cores.push_back(core->activity());
    act.mem = _memsys.activity();
    act.mem.pcie_bytes = _pcie_bytes - _pcie_baseline;
    act.cluster_busy_cycles = _cluster_busy;
    act.gpu_busy_cycles = _gpu_busy;
    act.blocks_dispatched = _blocks_dispatched;
    act.shader_cycles = cycle;
    act.elapsed_s = static_cast<double>(cycle) / _cfg.clocks.shaderHz();
    return act;
}

RunResult
Gpu::run(const KernelProgram &prog, const LaunchConfig &launch,
         const SampleFn &sampler, double sample_interval_s)
{
    GSP_ASSERT(launch.grid.count() > 0, "empty grid");

    for (auto &core : _cores) {
        core->resetForKernel();
        core->setKernel(&prog, &launch);
    }
    _memsys.resetCounters();
    _memsys.flushCaches();
    _pcie_baseline = _pcie_bytes;
    _cluster_busy.assign(_cfg.clusters, 0);
    _gpu_busy = 0;
    _blocks_dispatched = 0;

    // Linearized block queue (x-major, matching CUDA launch order).
    std::vector<std::pair<unsigned, unsigned>> pending;
    pending.reserve(launch.grid.count());
    for (unsigned y = 0; y < launch.grid.y; ++y)
        for (unsigned x = 0; x < launch.grid.x; ++x)
            pending.emplace_back(x, y);
    size_t next_block = 0;

    uint64_t sample_cycles = 0;
    if (sampler && sample_interval_s > 0.0) {
        sample_cycles = static_cast<uint64_t>(
            sample_interval_s * _cfg.clocks.shaderHz());
        if (sample_cycles == 0)
            sample_cycles = 1;
    }
    ChipActivity prev = snapshot(0);

    uint64_t cycle = 0;
    while (true) {
        // Global scheduler: place as many blocks as fit this cycle.
        while (next_block < pending.size()) {
            int core = pickCoreForBlock();
            if (core < 0)
                break;
            _cores[core]->launchBlock(pending[next_block].first,
                                      pending[next_block].second);
            ++next_block;
            ++_blocks_dispatched;
        }

        bool any_busy = false;
        for (unsigned cl = 0; cl < _cfg.clusters; ++cl) {
            bool cl_busy = false;
            for (unsigned i = 0; i < _cfg.cores_per_cluster; ++i) {
                Core &core = *_cores[cl * _cfg.cores_per_cluster + i];
                if (core.busy()) {
                    cl_busy = true;
                    core.step(cycle);
                }
            }
            if (cl_busy) {
                ++_cluster_busy[cl];
                any_busy = true;
            }
        }
        if (any_busy || next_block < pending.size())
            ++_gpu_busy;

        ++cycle;

        if (sample_cycles && cycle % sample_cycles == 0) {
            _memsys.updateDramCounters();
            ChipActivity now = snapshot(cycle);
            ChipActivity delta = now.diff(prev);
            double t1 = now.elapsed_s;
            sampler(delta, prev.elapsed_s, t1);
            prev = std::move(now);
        }

        if (!any_busy && next_block >= pending.size())
            break;
        if (cycle > max_shader_cycles)
            GSP_PANIC("kernel ", prog.name, " exceeded ",
                      max_shader_cycles, " shader cycles — livelock?");
    }

    _memsys.updateDramCounters();
    ChipActivity final_act = snapshot(cycle);
    if (sample_cycles) {
        // Flush the tail interval.
        ChipActivity delta = final_act.diff(prev);
        if (delta.shader_cycles > 0)
            sampler(delta, prev.elapsed_s, final_act.elapsed_s);
    }

    RunResult result;
    result.cycles = cycle;
    result.time_s = final_act.elapsed_s;
    result.activity = final_act;
    for (const auto &c : final_act.cores)
        result.instructions += c.issued_insts;
    return result;
}

} // namespace perf
} // namespace gpusimpow
