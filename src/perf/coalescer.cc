#include "perf/coalescer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

unsigned
coalesce(const std::vector<uint32_t> &addrs, unsigned segment_bytes,
         std::vector<uint32_t> &out)
{
    GSP_ASSERT(segment_bytes > 0, "zero coalescing granularity");
    out.clear();
    for (uint32_t a : addrs)
        out.push_back(a / segment_bytes * segment_bytes);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return static_cast<unsigned>(out.size());
}

BankConflictInfo
analyzeSmemAccess(const std::vector<uint32_t> &addrs, unsigned banks,
                  unsigned word_bytes)
{
    GSP_ASSERT(banks > 0 && word_bytes > 0, "bad SMEM geometry");
    BankConflictInfo info;
    if (addrs.empty())
        return info;

    // Distinct words, then count words per bank.
    std::vector<uint32_t> words;
    words.reserve(addrs.size());
    for (uint32_t a : addrs)
        words.push_back(a / word_bytes);
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    info.distinct_words = static_cast<unsigned>(words.size());

    std::vector<unsigned> per_bank(banks, 0);
    unsigned worst = 1;
    for (uint32_t w : words) {
        unsigned bank = static_cast<unsigned>(w % banks);
        ++per_bank[bank];
        worst = std::max(worst, per_bank[bank]);
    }
    info.serialization = worst;
    return info;
}

unsigned
distinctAddresses(const std::vector<uint32_t> &addrs)
{
    std::vector<uint32_t> tmp(addrs);
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    return static_cast<unsigned>(tmp.size());
}

} // namespace perf
} // namespace gpusimpow
