/**
 * @file
 * One SIMT core (streaming multiprocessor): the warp control unit of
 * Fig. 2 (warp status table, round-robin fetch and issue schedulers,
 * I-cache, instruction buffer, scoreboard, per-warp reconvergence
 * stacks), the banked register file with operand collectors, the
 * INT/FP/SFU SIMD pipelines, and the load/store unit of Fig. 3
 * (AGU, coalescer, SMEM/L1 with bank-conflict serialization,
 * constant cache).
 *
 * Execution is functional-at-issue: when a warp instruction issues,
 * its lanes compute real values, so addresses and branch outcomes
 * are exact; timing is modeled with pipeline next-free times and a
 * completion event heap.
 */

#ifndef GPUSIMPOW_PERF_CORE_HH
#define GPUSIMPOW_PERF_CORE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "config/gpu_config.hh"
#include "perf/activity.hh"
#include "perf/cache.hh"
#include "perf/kernel.hh"
#include "perf/memory.hh"
#include "perf/memsys.hh"

namespace gpusimpow {
namespace perf {

/** One token of the per-warp reconvergence stack [17]. */
struct StackEntry
{
    /** PC where this mask reconverges with its sibling. */
    uint32_t reconv_pc;
    /** Current execution PC for this mask. */
    uint32_t exec_pc;
    /** Threads (within the warp) executing this path. */
    uint64_t mask;
};

/** A SIMT core. Owned and stepped by Gpu. */
class Core
{
  public:
    /**
     * @param cfg full GPU configuration
     * @param core_id index of this core on the chip
     * @param memsys shared chip-level memory system
     * @param gmem functional global memory
     * @param cmem functional constant memory
     */
    Core(const GpuConfig &cfg, unsigned core_id, MemorySystem &memsys,
         GlobalMemory &gmem, ConstantMemory &cmem);

    /** Bind the kernel for subsequent block launches. */
    void setKernel(const KernelProgram *prog, const LaunchConfig *launch);

    /** True if a further block fits the core's resources. */
    bool canAcceptBlock() const;

    /**
     * Launch one thread block onto this core.
     * @param cta_x block x index
     * @param cta_y block y index
     */
    void launchBlock(unsigned cta_x, unsigned cta_y);

    /** Advance one shader cycle. */
    void step(uint64_t cycle);

    /** True if any block is resident. */
    bool busy() const { return _resident_blocks > 0; }

    /** Blocks currently resident. */
    unsigned residentBlocks() const { return _resident_blocks; }

    /** Blocks finished since the last call (and reset the count). */
    unsigned collectFinishedBlocks();

    /** Activity counters (cumulative). */
    const CoreActivity &activity() const { return _act; }

    /** Reset between kernels: drop caches and counters. */
    void resetForKernel();

  private:
    /** Resident thread block context. */
    struct Block
    {
        bool valid = false;
        unsigned cta_x = 0;
        unsigned cta_y = 0;
        unsigned threads = 0;
        unsigned live_warps = 0;
        unsigned at_barrier = 0;
        std::vector<uint32_t> regs;    // threads x regs_per_thread
        std::vector<uint8_t> preds;    // threads x 1 (bit per pred)
        std::unique_ptr<SharedMemory> smem;
    };

    /** Warp execution context (one WST entry). */
    struct Warp
    {
        bool valid = false;
        unsigned block_slot = 0;
        unsigned warp_in_block = 0;
        unsigned base_thread = 0;      // first thread id within block
        std::vector<StackEntry> stack;
        unsigned ibuffer = 0;          // decoded instructions ready
        uint64_t fetch_ready = 0;      // icache-miss stall
        bool inflight = false;         // barrel mode: op outstanding
        bool waiting_mem = false;
        bool at_barrier = false;
        uint64_t pending_reg_mask = 0; // scoreboard: regs 0..63
        unsigned pending_count = 0;    // scoreboard entries used
    };

    /** Completion event (writeback). */
    struct Completion
    {
        uint64_t when;
        uint32_t warp;
        int16_t dst_reg;           // -1: none
        uint8_t kind;              // 0 alu, 1 mem
        bool operator>(const Completion &o) const { return when > o.when; }
    };

    const GpuConfig &_cfg;
    unsigned _core_id;
    MemorySystem &_memsys;
    GlobalMemory &_gmem;
    ConstantMemory &_cmem;

    const KernelProgram *_prog = nullptr;
    const LaunchConfig *_launch = nullptr;
    unsigned _warps_per_block = 0;

    std::vector<Block> _blocks;
    std::vector<Warp> _warps;
    unsigned _resident_blocks = 0;
    unsigned _finished_blocks = 0;

    CacheModel _icache;
    std::unique_ptr<CacheModel> _l1d;   // null when not configured
    CacheModel _const_cache;

    // Pipeline next-free times (shader cycles).
    uint64_t _int_free = 0;
    uint64_t _fp_free = 0;
    uint64_t _sfu_free = 0;
    uint64_t _mem_free = 0;

    unsigned _fetch_rr = 0;   // round-robin pointers
    unsigned _issue_rr = 0;

    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> _completions;

    CoreActivity _act;

    // Scratch buffers reused across cycles (no hot-path allocation).
    std::vector<uint32_t> _addr_scratch;
    std::vector<uint32_t> _seg_scratch;

    // --- stage helpers ---
    void drainCompletions(uint64_t cycle);
    void fetchStage(uint64_t cycle);
    void issueStage(uint64_t cycle);
    bool tryIssue(unsigned warp_idx, uint64_t cycle);
    void executeInstruction(Warp &warp, const Instruction &inst,
                            uint64_t exec_mask, uint64_t cycle);
    uint64_t executeMemory(Warp &warp, const Instruction &inst,
                           uint64_t exec_mask, uint64_t cycle);
    void executeBranch(Warp &warp, const Instruction &inst,
                       uint64_t exec_mask);
    void threadExit(Warp &warp, uint64_t exit_mask);
    void releaseBarrierIfReady(unsigned block_slot);
    void finishWarpIfDone(unsigned warp_idx);

    // --- functional helpers ---
    uint32_t readOperand(const Block &blk, unsigned tid,
                         const Warp &warp, const Operand &op) const;
    uint32_t &threadReg(Block &blk, unsigned tid, unsigned reg);
    bool readPred(const Block &blk, unsigned tid, unsigned p) const;
    void writePred(Block &blk, unsigned tid, unsigned p, bool v);
    bool guardPasses(const Block &blk, unsigned tid,
                     const Instruction &inst) const;

    unsigned rfAccessesPerOperand(uint64_t mask) const;
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_CORE_HH
