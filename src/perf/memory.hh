/**
 * @file
 * Functional memory spaces: sparse paged global memory (the GDDR5
 * address space), the 64 KB constant segment, and per-block shared
 * memory. These carry real data so kernels compute real results —
 * addresses, divergence, and cache behaviour in the timing model are
 * all driven by actual values, as in GPGPU-Sim's functional core.
 */

#ifndef GPUSIMPOW_PERF_MEMORY_HH
#define GPUSIMPOW_PERF_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace gpusimpow {
namespace perf {

/** Sparse paged 32-bit global address space. */
class GlobalMemory
{
  public:
    /** Read a 32-bit word; unwritten memory reads as zero. */
    uint32_t load32(uint32_t addr) const;

    /** Write a 32-bit word. */
    void store32(uint32_t addr, uint32_t value);

    /** Read a float. */
    float loadF32(uint32_t addr) const;

    /** Write a float. */
    void storeF32(uint32_t addr, float value);

    /** Bulk upload (host-to-device copy). */
    void write(uint32_t addr, const void *data, size_t bytes);

    /** Bulk download (device-to-host copy). */
    void read(uint32_t addr, void *data, size_t bytes) const;

    /** Number of allocated pages (for tests). */
    size_t pageCount() const { return _pages.size(); }

    /** Drop all pages: memory reads as zero again. */
    void reset() { _pages.clear(); }

  private:
    static constexpr uint32_t page_bits = 16;  // 64 KB pages
    static constexpr uint32_t page_size = 1u << page_bits;

    // lint: unordered-ok(addressed by page key only, never iterated;
    // reads/writes go through load/store/read/write, so hash order is
    // unobservable to kernels and verification)
    std::unordered_map<uint32_t, std::vector<uint8_t>> _pages;

    std::vector<uint8_t> &page(uint32_t addr);
    const std::vector<uint8_t> *pageIfPresent(uint32_t addr) const;
};

/** Simple bump allocator over the global address space. */
class GlobalAllocator
{
  public:
    /** Allocations start at a non-zero base to keep 0 as "null". */
    explicit GlobalAllocator(uint32_t base = 0x1000)
        : _base(base), _next(base)
    {}

    /** Allocate `bytes` rounded up to 256-byte alignment. */
    uint32_t alloc(uint32_t bytes);

    /** Forget all allocations; next alloc() starts at the base again. */
    void reset() { _next = _base; }

  private:
    uint32_t _base;
    uint32_t _next;
};

/** The cached constant segment (64 KB). */
class ConstantMemory
{
  public:
    ConstantMemory() : _data(65536, 0) {}

    uint32_t load32(uint32_t addr) const;
    void write(uint32_t addr, const void *data, size_t bytes);

    /** Zero the whole segment. */
    void reset() { std::fill(_data.begin(), _data.end(), 0); }

  private:
    std::vector<uint8_t> _data;
};

/** Per-block shared memory. */
class SharedMemory
{
  public:
    explicit SharedMemory(uint32_t bytes) : _data(bytes, 0) {}

    uint32_t load32(uint32_t addr) const;
    void store32(uint32_t addr, uint32_t value);
    uint32_t size() const { return static_cast<uint32_t>(_data.size()); }

  private:
    std::vector<uint8_t> _data;
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_MEMORY_HH
