#include "perf/isa.hh"

#include <cstring>
#include <sstream>

namespace gpusimpow {
namespace perf {

Operand
Operand::immf(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return {OperandKind::Imm, bits};
}

UnitClass
Instruction::unitClass() const
{
    switch (op) {
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FFMA:
      case Op::FMIN:
      case Op::FMAX:
      case Op::I2F:
      case Op::F2I:
        return UnitClass::Fp;
      case Op::RCP:
      case Op::RSQRT:
      case Op::SQRT:
      case Op::SIN:
      case Op::COS:
      case Op::EX2:
      case Op::LG2:
        return UnitClass::Sfu;
      case Op::LDG:
      case Op::STG:
      case Op::LDS:
      case Op::STS:
      case Op::LDC:
      case Op::ATOMG_ADD:
        return UnitClass::Mem;
      case Op::BRA:
      case Op::BAR:
      case Op::EXIT:
      case Op::NOP:
        return UnitClass::Ctrl;
      default:
        return UnitClass::Int;
    }
}

unsigned
Instruction::regSources() const
{
    unsigned n = 0;
    if (src_a.kind == OperandKind::Reg)
        ++n;
    if (src_b.kind == OperandKind::Reg)
        ++n;
    if (src_c.kind == OperandKind::Reg)
        ++n;
    return n;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::NOP: return "nop";
      case Op::MOV: return "mov";
      case Op::IADD: return "iadd";
      case Op::ISUB: return "isub";
      case Op::IMUL: return "imul";
      case Op::IMAD: return "imad";
      case Op::ISHL: return "ishl";
      case Op::ISHR: return "ishr";
      case Op::IAND: return "iand";
      case Op::IOR: return "ior";
      case Op::IXOR: return "ixor";
      case Op::IMIN: return "imin";
      case Op::IMAX: return "imax";
      case Op::FADD: return "fadd";
      case Op::FSUB: return "fsub";
      case Op::FMUL: return "fmul";
      case Op::FFMA: return "ffma";
      case Op::FMIN: return "fmin";
      case Op::FMAX: return "fmax";
      case Op::I2F: return "i2f";
      case Op::F2I: return "f2i";
      case Op::RCP: return "rcp";
      case Op::RSQRT: return "rsqrt";
      case Op::SQRT: return "sqrt";
      case Op::SIN: return "sin";
      case Op::COS: return "cos";
      case Op::EX2: return "ex2";
      case Op::LG2: return "lg2";
      case Op::SETP: return "setp";
      case Op::SELP: return "selp";
      case Op::LDG: return "ldg";
      case Op::STG: return "stg";
      case Op::LDS: return "lds";
      case Op::STS: return "sts";
      case Op::LDC: return "ldc";
      case Op::ATOMG_ADD: return "atomg.add";
      case Op::BRA: return "bra";
      case Op::BAR: return "bar";
      case Op::EXIT: return "exit";
    }
    return "?";
}

namespace {

void
appendOperand(std::ostringstream &oss, const Operand &o)
{
    switch (o.kind) {
      case OperandKind::None:
        break;
      case OperandKind::Reg:
        oss << " r" << o.value;
        break;
      case OperandKind::Imm:
        oss << " #" << o.value;
        break;
      case OperandKind::Special:
        oss << " %sr" << o.value;
        break;
    }
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    if (guard >= 0) {
        oss << "@" << (guard_negated ? "!" : "") << "p"
            << static_cast<int>(guard) << " ";
    }
    oss << opName(op);
    appendOperand(oss, dst);
    appendOperand(oss, src_a);
    appendOperand(oss, src_b);
    appendOperand(oss, src_c);
    if (op == Op::BRA)
        oss << " ->" << target << " (reconv " << reconv << ")";
    if (op == Op::SETP)
        oss << " p" << static_cast<int>(aux);
    if (unitClass() == UnitClass::Mem)
        oss << " [+" << mem_offset << "]";
    return oss.str();
}

} // namespace perf
} // namespace gpusimpow
