/**
 * @file
 * The mini SIMT instruction set executed by the performance
 * simulator. It stands in for PTX/SASS in the original GPGPU-Sim
 * flow: enough arithmetic, special-function, memory, predication,
 * branch, and synchronization instructions to express the paper's 19
 * benchmark kernels with realistic instruction mixes, divergence
 * behaviour, and memory-access patterns.
 *
 * Instructions are warp-issued; predication and branching operate on
 * per-thread lane masks exactly like the modeled hardware.
 */

#ifndef GPUSIMPOW_PERF_ISA_HH
#define GPUSIMPOW_PERF_ISA_HH

#include <cstdint>
#include <string>

namespace gpusimpow {
namespace perf {

/** Opcodes of the mini SIMT ISA. */
enum class Op : uint8_t {
    NOP,
    // Integer ALU.
    MOV,    ///< dst = srcA
    IADD,   ///< dst = srcA + srcB
    ISUB,   ///< dst = srcA - srcB
    IMUL,   ///< dst = srcA * srcB (low 32 bits)
    IMAD,   ///< dst = srcA * srcB + srcC
    ISHL,   ///< dst = srcA << srcB
    ISHR,   ///< dst = srcA >> srcB (logical)
    IAND,   ///< dst = srcA & srcB
    IOR,    ///< dst = srcA | srcB
    IXOR,   ///< dst = srcA ^ srcB
    IMIN,   ///< dst = min(signed srcA, srcB)
    IMAX,   ///< dst = max(signed srcA, srcB)
    // Floating point (32-bit).
    FADD,   ///< dst = srcA + srcB
    FSUB,   ///< dst = srcA - srcB
    FMUL,   ///< dst = srcA * srcB
    FFMA,   ///< dst = srcA * srcB + srcC
    FMIN,   ///< dst = fminf(srcA, srcB)
    FMAX,   ///< dst = fmaxf(srcA, srcB)
    I2F,    ///< dst = float(int(srcA))
    F2I,    ///< dst = int(float(srcA))
    // Special function unit (transcendentals, SectionIII-C3).
    RCP,    ///< dst = 1/srcA
    RSQRT,  ///< dst = 1/sqrt(srcA)
    SQRT,   ///< dst = sqrt(srcA)
    SIN,    ///< dst = sin(srcA)
    COS,    ///< dst = cos(srcA)
    EX2,    ///< dst = 2^srcA
    LG2,    ///< dst = log2(srcA)
    // Predicates and select.
    SETP,   ///< pred[aux] = cmp(srcA, srcB); cmp kind in `cmp`
    SELP,   ///< dst = pred[aux] ? srcA : srcB
    // Memory.
    LDG,    ///< dst = global[srcA + imm]
    STG,    ///< global[srcA + imm] = srcB
    LDS,    ///< dst = shared[srcA + imm]
    STS,    ///< shared[srcA + imm] = srcB
    LDC,    ///< dst = constant[srcA + imm]
    ATOMG_ADD, ///< dst = old global[srcA + imm]; global += srcB
    // Control.
    BRA,    ///< branch to `target` (guarded); reconverge at `reconv`
    BAR,    ///< block-wide barrier
    EXIT,   ///< thread terminates
};

/** Comparison kinds for SETP. */
enum class Cmp : uint8_t { EQ, NE, LT, LE, GT, GE };

/** Operand data interpretation for SETP comparisons. */
enum class CmpType : uint8_t { I32, U32, F32 };

/** Kinds of instruction operand. */
enum class OperandKind : uint8_t { None, Reg, Imm, Special };

/** Special (read-only, per-thread) register identifiers. */
enum class SpecialReg : uint8_t {
    TidX, TidY, NTidX, NTidY, CtaIdX, CtaIdY, NCtaIdX, NCtaIdY, LaneId,
    WarpId,
};

/** One instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    /** Register index, immediate bits, or SpecialReg value. */
    uint32_t value = 0;

    static Operand none() { return {}; }
    static Operand reg(unsigned r)
    {
        return {OperandKind::Reg, r};
    }
    static Operand imm(uint32_t v)
    {
        return {OperandKind::Imm, v};
    }
    static Operand immf(float v);
    static Operand special(SpecialReg s)
    {
        return {OperandKind::Special, static_cast<uint32_t>(s)};
    }
};

/** Functional-unit class an opcode issues to. */
enum class UnitClass : uint8_t { Int, Fp, Sfu, Mem, Ctrl };

/** One decoded instruction of the mini ISA. */
struct Instruction
{
    Op op = Op::NOP;
    /** Destination register (Reg kind) or none. */
    Operand dst;
    Operand src_a;
    Operand src_b;
    Operand src_c;
    /** SETP/SELP predicate index, 0..3. */
    uint8_t aux = 0;
    /** Comparison kind for SETP. */
    Cmp cmp = Cmp::EQ;
    /** Comparison operand type for SETP. */
    CmpType cmp_type = CmpType::I32;
    /** Byte offset added to the address register for memory ops. */
    int32_t mem_offset = 0;
    /** Branch target instruction index (BRA). */
    uint32_t target = 0;
    /** Reconvergence point instruction index (BRA). */
    uint32_t reconv = 0;
    /** Guard predicate index, or -1 when unguarded. */
    int8_t guard = -1;
    /** If true the guard is taken when the predicate is false. */
    bool guard_negated = false;

    /** Functional-unit class this opcode issues to. */
    UnitClass unitClass() const;

    /** Count of register source operands (for RF access stats). */
    unsigned regSources() const;

    /** True if the instruction writes a destination register. */
    bool writesReg() const { return dst.kind == OperandKind::Reg; }

    /** Disassembly for debugging and tests. */
    std::string toString() const;
};

/** Human-readable opcode mnemonic. */
const char *opName(Op op);

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_ISA_HH
