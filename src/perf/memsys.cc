#include "perf/memsys.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

MemorySystem::MemorySystem(const GpuConfig &cfg) : _cfg(cfg)
{
    _uncore_per_shader = 1.0 / cfg.clocks.shader_to_uncore;
    // DVFS scales the core clock domain but not the DRAM clock, so
    // the relative DRAM service rate shifts with the operating point
    // (memory-bound kernels stop speeding up with the core clock).
    _dram_per_uncore = cfg.clocks.dram_hz / cfg.clocks.uncoreHz();
    _line_bytes = cfg.l2.present ? cfg.l2.line_bytes : cfg.core.line_bytes;
    _burst_bytes = cfg.dram.channel_bits / 8 * cfg.dram.burst_length;
    _flits_per_line =
        std::max(1u, _line_bytes * 8 / std::max(1u, cfg.noc.link_bits));

    if (cfg.l2.present) {
        CacheParams p;
        p.size_bytes = cfg.l2.total_bytes / cfg.l2.slices;
        p.line_bytes = cfg.l2.line_bytes;
        p.assoc = cfg.l2.assoc;
        p.allocate_on_write = true;
        for (unsigned i = 0; i < cfg.l2.slices; ++i)
            _l2_slices.emplace_back(p);
    }
    for (unsigned i = 0; i < cfg.dram.channels; ++i)
        _channels.emplace_back(cfg.dram);
}

void
MemorySystem::setClocks(const ClockConfig &clocks)
{
    _cfg.clocks = clocks;
    _uncore_per_shader = 1.0 / clocks.shader_to_uncore;
    _dram_per_uncore = clocks.dram_hz / clocks.uncoreHz();
}

uint64_t
MemorySystem::toUncore(uint64_t shader_cycle) const
{
    return static_cast<uint64_t>(
        static_cast<double>(shader_cycle) * _uncore_per_shader);
}

uint64_t
MemorySystem::toShader(uint64_t uncore_cycle) const
{
    return static_cast<uint64_t>(std::ceil(
        static_cast<double>(uncore_cycle) * _cfg.clocks.shader_to_uncore));
}

uint64_t
MemorySystem::dramService(uint64_t addr, bool write, uint64_t uncore_now)
{
    unsigned channel = static_cast<unsigned>(
        (addr / _line_bytes) % _cfg.dram.channels);
    // Channel-local address: strip the interleave bits.
    uint64_t local = addr / _line_bytes / _cfg.dram.channels * _line_bytes +
                     addr % _line_bytes;
    uint64_t dram_now = static_cast<uint64_t>(
        static_cast<double>(uncore_now) * _dram_per_uncore);

    // A line moves as several sequential bursts (same row).
    unsigned bursts = std::max(1u, _line_bytes / _burst_bytes);
    uint64_t done = dram_now;
    for (unsigned b = 0; b < bursts; ++b) {
        done = _channels[channel].access(local + b * _burst_bytes, write,
                                         dram_now);
    }
    ++_activity.mc_requests;
    return static_cast<uint64_t>(std::ceil(
        static_cast<double>(done) / _dram_per_uncore));
}

uint64_t
MemorySystem::access(uint64_t addr, bool write, uint64_t shader_cycle)
{
    uint64_t now = toUncore(shader_cycle);

    // Request network: header flit plus payload for writes.
    unsigned req_flits = 1 + (write ? _flits_per_line : 0);
    _activity.noc_flits += req_flits;
    _noc_req_free = std::max(_noc_req_free, now) + req_flits;
    uint64_t t = std::max(now + _cfg.noc.latency, _noc_req_free);

    if (!_l2_slices.empty()) {
        unsigned slice = static_cast<unsigned>(
            (addr / _cfg.l2.line_bytes) % _l2_slices.size());
        bool hit = _l2_slices[slice].access(addr, write);
        if (write)
            ++_activity.l2_writes;
        else
            ++_activity.l2_reads;
        t += _cfg.l2.latency;
        if (!hit) {
            ++_activity.l2_misses;
            t = dramService(addr, write, t) + _cfg.dram.latency;
        }
    } else {
        // No L2 (Tesla-class): straight to the memory controller.
        t = dramService(addr, write, t) + _cfg.dram.latency;
    }

    // Response network: header plus payload for reads.
    unsigned resp_flits = 1 + (write ? 0 : _flits_per_line);
    _activity.noc_flits += resp_flits;
    _noc_resp_free = std::max(_noc_resp_free, t) + resp_flits;
    uint64_t done = std::max(t + _cfg.noc.latency, _noc_resp_free);

    return toShader(done);
}

void
MemorySystem::flushCaches()
{
    for (auto &slice : _l2_slices)
        slice.flush();
}

dram::DramActivity
MemorySystem::dramActivity(double elapsed_s) const
{
    dram::DramActivity a;
    uint64_t bus_busy = 0;
    for (const auto &ch : _channels) {
        a.activates += ch.activates();
        a.read_bursts += ch.readBursts();
        a.write_bursts += ch.writeBursts();
        bus_busy += ch.busBusyCycles();
    }
    a.elapsed_s = elapsed_s;
    if (elapsed_s > 0.0) {
        double total_cycles =
            elapsed_s * _cfg.clocks.dram_hz * _cfg.dram.channels;
        double util = static_cast<double>(bus_busy) / total_cycles;
        // Rows stay open between bursts; the open fraction saturates
        // well before the bus does.
        a.row_open_frac = std::min(1.0, 4.0 * util);
    }
    return a;
}

void
MemorySystem::updateDramCounters()
{
    uint64_t act = 0, rd = 0, wr = 0, bus = 0;
    for (const auto &ch : _channels) {
        act += ch.activates();
        rd += ch.readBursts();
        wr += ch.writeBursts();
        bus += ch.busBusyCycles();
    }
    _activity.dram_activates = act;
    _activity.dram_read_bursts = rd;
    _activity.dram_write_bursts = wr;
    _activity.dram_bus_cycles = bus;
}

void
MemorySystem::resetCounters()
{
    _activity = MemActivity{};
    for (auto &ch : _channels) {
        ch.resetCounters();
        // The simulated clock restarts at zero for every kernel; the
        // absolute next-free times must restart with it.
        ch.resetTiming();
    }
    _noc_req_free = 0;
    _noc_resp_free = 0;
}

} // namespace perf
} // namespace gpusimpow
