#include "perf/kernel.hh"

#include <sstream>

#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

std::string
KernelProgram::disassemble() const
{
    std::ostringstream oss;
    oss << ".kernel " << name << " regs=" << regs_per_thread
        << " smem=" << smem_bytes << "\n";
    for (size_t i = 0; i < code.size(); ++i)
        oss << i << ": " << code[i].toString() << "\n";
    return oss.str();
}

KernelBuilder::KernelBuilder(std::string name, unsigned regs_per_thread,
                             unsigned smem_bytes)
{
    // User-facing input: report misuse as fatal(), not panic().
    if (regs_per_thread < 1 || regs_per_thread > 64) {
        fatal("kernel '", name, "': regs_per_thread must be 1..64, got ",
              regs_per_thread);
    }
    _prog.name = std::move(name);
    _prog.regs_per_thread = regs_per_thread;
    _prog.smem_bytes = smem_bytes;
}

KernelBuilder::Label
KernelBuilder::newLabel()
{
    _labels.push_back(-1);
    return static_cast<Label>(_labels.size() - 1);
}

void
KernelBuilder::bind(Label l)
{
    GSP_ASSERT(l < _labels.size(), "unknown label");
    GSP_ASSERT(_labels[l] < 0, "label bound twice");
    _labels[l] = static_cast<int64_t>(_prog.code.size());
}

KernelBuilder::Label
KernelBuilder::newBoundLabel()
{
    Label l = newLabel();
    bind(l);
    return l;
}

KernelBuilder &
KernelBuilder::pred(unsigned p, bool negated)
{
    GSP_ASSERT(p < 4, "predicate index out of range");
    _next_guard = static_cast<int8_t>(p);
    _next_guard_negated = negated;
    return *this;
}

Instruction &
KernelBuilder::emit(Instruction inst)
{
    inst.guard = _next_guard;
    inst.guard_negated = _next_guard_negated;
    _next_guard = -1;
    _next_guard_negated = false;
    _prog.code.push_back(inst);
    return _prog.code.back();
}

void
KernelBuilder::emit3(Op op, unsigned dst, Operand a, Operand b, Operand c)
{
    Instruction inst;
    inst.op = op;
    inst.dst = Operand::reg(dst);
    inst.src_a = a;
    inst.src_b = b;
    inst.src_c = c;
    emit(inst);
}

void
KernelBuilder::setp(unsigned p, Cmp cmp, CmpType type, Operand a,
                    Operand b)
{
    GSP_ASSERT(p < 4, "predicate index out of range");
    Instruction inst;
    inst.op = Op::SETP;
    inst.aux = static_cast<uint8_t>(p);
    inst.cmp = cmp;
    inst.cmp_type = type;
    inst.src_a = a;
    inst.src_b = b;
    emit(inst);
}

void
KernelBuilder::selp(unsigned dst, unsigned p, Operand a, Operand b)
{
    GSP_ASSERT(p < 4, "predicate index out of range");
    Instruction inst;
    inst.op = Op::SELP;
    inst.dst = Operand::reg(dst);
    inst.aux = static_cast<uint8_t>(p);
    inst.src_a = a;
    inst.src_b = b;
    emit(inst);
}

void
KernelBuilder::ldg(unsigned dst, Operand addr, int32_t offset)
{
    Instruction inst;
    inst.op = Op::LDG;
    inst.dst = Operand::reg(dst);
    inst.src_a = addr;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::stg(Operand addr, Operand value, int32_t offset)
{
    Instruction inst;
    inst.op = Op::STG;
    inst.src_a = addr;
    inst.src_b = value;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::lds(unsigned dst, Operand addr, int32_t offset)
{
    Instruction inst;
    inst.op = Op::LDS;
    inst.dst = Operand::reg(dst);
    inst.src_a = addr;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::sts(Operand addr, Operand value, int32_t offset)
{
    Instruction inst;
    inst.op = Op::STS;
    inst.src_a = addr;
    inst.src_b = value;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::ldc(unsigned dst, Operand addr, int32_t offset)
{
    Instruction inst;
    inst.op = Op::LDC;
    inst.dst = Operand::reg(dst);
    inst.src_a = addr;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::atomgAdd(unsigned dst, Operand addr, Operand value,
                        int32_t offset)
{
    Instruction inst;
    inst.op = Op::ATOMG_ADD;
    inst.dst = Operand::reg(dst);
    inst.src_a = addr;
    inst.src_b = value;
    inst.mem_offset = offset;
    emit(inst);
}

void
KernelBuilder::braIf(unsigned p, bool negated, Label target, Label reconv)
{
    GSP_ASSERT(p < 4, "predicate index out of range");
    Instruction inst;
    inst.op = Op::BRA;
    inst.guard = static_cast<int8_t>(p);
    inst.guard_negated = negated;
    uint32_t pc = static_cast<uint32_t>(_prog.code.size());
    _target_patches.emplace_back(pc, target);
    _reconv_patches.emplace_back(pc, reconv);
    // Bypass emit()'s guard plumbing: BRA's guard is the branch
    // condition itself, set above.
    _prog.code.push_back(inst);
}

void
KernelBuilder::jump(Label target)
{
    Instruction inst;
    inst.op = Op::BRA;
    inst.guard = -1;  // unconditional: all active threads take it
    uint32_t pc = static_cast<uint32_t>(_prog.code.size());
    _target_patches.emplace_back(pc, target);
    // Reconvergence of a uniform jump is the target itself; no
    // divergence can occur, the field is never used.
    _prog.code.push_back(inst);
}

void
KernelBuilder::bar()
{
    Instruction inst;
    inst.op = Op::BAR;
    emit(inst);
}

void
KernelBuilder::exit()
{
    Instruction inst;
    inst.op = Op::EXIT;
    emit(inst);
}

KernelProgram
KernelBuilder::finish()
{
    if (_prog.code.empty() || _prog.code.back().op != Op::EXIT) {
        Instruction inst;
        inst.op = Op::EXIT;
        _prog.code.push_back(inst);
    }
    for (auto [pc, label] : _target_patches) {
        GSP_ASSERT(label < _labels.size() && _labels[label] >= 0,
                   "unbound branch target label in ", _prog.name);
        _prog.code[pc].target = static_cast<uint32_t>(_labels[label]);
    }
    for (auto [pc, label] : _reconv_patches) {
        GSP_ASSERT(label < _labels.size() && _labels[label] >= 0,
                   "unbound reconvergence label in ", _prog.name);
        _prog.code[pc].reconv = static_cast<uint32_t>(_labels[label]);
    }
    return std::move(_prog);
}

} // namespace perf
} // namespace gpusimpow
