#include "perf/core.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "perf/coalescer.hh"

namespace gpusimpow {
namespace perf {

namespace {

constexpr uint32_t no_reconv = 0xffffffffu;
constexpr unsigned icache_miss_latency = 200;
constexpr unsigned const_miss_latency = 200;

float
asFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, 4);
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, 4);
    return bits;
}

} // namespace

Core::Core(const GpuConfig &cfg, unsigned core_id, MemorySystem &memsys,
           GlobalMemory &gmem, ConstantMemory &cmem)
    : _cfg(cfg), _core_id(core_id), _memsys(memsys), _gmem(gmem),
      _cmem(cmem),
      _icache({cfg.core.icache_bytes, 64, cfg.core.icache_assoc, false}),
      _const_cache({cfg.core.const_cache_bytes, 64,
                    cfg.core.const_cache_assoc, false})
{
    GSP_ASSERT(cfg.core.warp_size <= 64,
               "warp size above 64 not representable in lane masks");
    _blocks.resize(cfg.core.max_blocks);
    _warps.resize(cfg.core.maxWarps());
    if (cfg.core.lOneDBytes() > 0) {
        _l1d = std::make_unique<CacheModel>(CacheParams{
            cfg.core.lOneDBytes(), cfg.core.line_bytes, cfg.core.l1d_assoc,
            false});
    }
    _addr_scratch.reserve(cfg.core.warp_size);
    _seg_scratch.reserve(cfg.core.warp_size);
}

void
Core::setKernel(const KernelProgram *prog, const LaunchConfig *launch)
{
    GSP_ASSERT(!busy(), "kernel switch on a busy core");
    _prog = prog;
    _launch = launch;
    unsigned threads = launch->block.count();
    GSP_ASSERT(threads > 0 && threads <= _cfg.core.max_threads,
               "block of ", threads, " threads does not fit core");
    _warps_per_block = divCeil(threads, _cfg.core.warp_size);
}

bool
Core::canAcceptBlock() const
{
    if (!_prog)
        return false;
    unsigned threads = _launch->block.count();

    unsigned used_blocks = 0;
    unsigned used_threads = 0;
    unsigned used_warps = 0;
    for (const auto &b : _blocks) {
        if (b.valid) {
            ++used_blocks;
            used_threads += b.threads;
        }
    }
    for (const auto &w : _warps) {
        if (w.valid)
            ++used_warps;
    }

    if (used_blocks >= _cfg.core.max_blocks)
        return false;
    if (used_threads + threads > _cfg.core.max_threads)
        return false;
    if (used_warps + _warps_per_block > _cfg.core.maxWarps())
        return false;
    unsigned reg_need = (used_threads + threads) * _prog->regs_per_thread;
    if (reg_need > _cfg.core.regfile_regs)
        return false;
    unsigned smem_need = (used_blocks + 1) * _prog->smem_bytes;
    if (smem_need > _cfg.core.smem_bytes)
        return false;
    return true;
}

void
Core::launchBlock(unsigned cta_x, unsigned cta_y)
{
    GSP_ASSERT(canAcceptBlock(), "launchBlock without capacity");
    unsigned threads = _launch->block.count();

    unsigned block_slot = 0;
    while (_blocks[block_slot].valid)
        ++block_slot;

    Block &blk = _blocks[block_slot];
    blk.valid = true;
    blk.cta_x = cta_x;
    blk.cta_y = cta_y;
    blk.threads = threads;
    blk.live_warps = _warps_per_block;
    blk.at_barrier = 0;
    blk.regs.assign(static_cast<size_t>(threads) * _prog->regs_per_thread,
                    0);
    blk.preds.assign(threads, 0);
    blk.smem = _prog->smem_bytes > 0
                   ? std::make_unique<SharedMemory>(_prog->smem_bytes)
                   : nullptr;

    unsigned assigned = 0;
    for (unsigned w = 0; w < _warps.size() && assigned < _warps_per_block;
         ++w) {
        if (_warps[w].valid)
            continue;
        Warp &warp = _warps[w];
        warp = Warp{};
        warp.valid = true;
        warp.block_slot = block_slot;
        warp.warp_in_block = assigned;
        warp.base_thread = assigned * _cfg.core.warp_size;
        unsigned lanes = std::min(_cfg.core.warp_size,
                                  threads - warp.base_thread);
        uint64_t mask = lanes >= 64 ? ~0ull : ((1ull << lanes) - 1);
        warp.stack.push_back({no_reconv, 0, mask});
        ++assigned;
        ++_act.wst_writes;   // WST entry initialization
    }
    GSP_ASSERT(assigned == _warps_per_block, "warp slot accounting broke");
    ++_resident_blocks;
}

unsigned
Core::collectFinishedBlocks()
{
    unsigned n = _finished_blocks;
    _finished_blocks = 0;
    return n;
}

void
Core::resetForKernel()
{
    GSP_ASSERT(!busy(), "resetForKernel on a busy core");
    _icache.flush();
    if (_l1d)
        _l1d->flush();
    _const_cache.flush();
    while (!_completions.empty())
        _completions.pop();
    _int_free = _fp_free = _sfu_free = _mem_free = 0;
    _fetch_rr = _issue_rr = 0;
    for (auto &w : _warps)
        w = Warp{};
    for (auto &b : _blocks)
        b = Block{};
    _act = CoreActivity{};
}

void
Core::step(uint64_t cycle)
{
    if (!busy())
        return;
    ++_act.cycles_resident;
    drainCompletions(cycle);
    issueStage(cycle);
    fetchStage(cycle);
}

void
Core::drainCompletions(uint64_t cycle)
{
    while (!_completions.empty() && _completions.top().when <= cycle) {
        Completion c = _completions.top();
        _completions.pop();
        Warp &warp = _warps[c.warp];
        if (!warp.valid) {
            // Block already retired (e.g. store ack after exit).
            continue;
        }
        warp.inflight = false;
        if (c.kind == 1)
            warp.waiting_mem = false;
        if (c.dst_reg >= 0) {
            warp.pending_reg_mask &= ~(1ull << c.dst_reg);
            if (warp.pending_count > 0)
                --warp.pending_count;
            ++_act.scoreboard_writes;  // release update
        }
        ++_act.writebacks;
    }
}

void
Core::fetchStage(uint64_t cycle)
{
    unsigned n = static_cast<unsigned>(_warps.size());
    ++_act.fetch_arbitrations;
    for (unsigned i = 0; i < n; ++i) {
        unsigned w = (_fetch_rr + i) % n;
        Warp &warp = _warps[w];
        if (!warp.valid || warp.stack.empty())
            continue;
        if (warp.ibuffer >= _cfg.core.ibuffer_slots)
            continue;
        if (warp.fetch_ready > cycle || warp.at_barrier ||
            warp.waiting_mem) {
            continue;
        }
        ++_act.wst_reads;
        ++_act.icache_reads;
        uint64_t fetch_pc = warp.stack.back().exec_pc + warp.ibuffer;
        bool hit = _icache.access(fetch_pc * 8, false);
        if (!hit) {
            ++_act.icache_misses;
            warp.fetch_ready = cycle + icache_miss_latency;
        } else {
            ++_act.decodes;
            ++_act.ibuffer_writes;
            ++warp.ibuffer;
        }
        _fetch_rr = (w + 1) % n;
        return;
    }
}

void
Core::issueStage(uint64_t cycle)
{
    unsigned n = static_cast<unsigned>(_warps.size());
    unsigned issued = 0;
    ++_act.issue_arbitrations;
    bool greedy = _cfg.core.sched_policy == "gto";
    for (unsigned i = 0; i < n && issued < _cfg.core.issue_width; ++i) {
        unsigned w = (_issue_rr + i) % n;
        if (tryIssue(w, cycle)) {
            ++issued;
            // Rotating priority moves past the winner; greedy-then-
            // oldest keeps issuing the same warp until it stalls.
            _issue_rr = greedy ? w : (w + 1) % n;
        }
    }
}

bool
Core::tryIssue(unsigned warp_idx, uint64_t cycle)
{
    Warp &warp = _warps[warp_idx];
    if (!warp.valid || warp.stack.empty() || warp.ibuffer == 0)
        return false;
    if (warp.at_barrier || warp.waiting_mem)
        return false;
    if (!_cfg.core.scoreboard && warp.inflight)
        return false;

    StackEntry &tos = warp.stack.back();
    const Instruction &inst = _prog->code[tos.exec_pc];

    if (_cfg.core.scoreboard) {
        ++_act.scoreboard_checks;
        uint64_t use_mask = 0;
        if (inst.dst.kind == OperandKind::Reg)
            use_mask |= 1ull << (inst.dst.value & 63);
        for (const Operand *op : {&inst.src_a, &inst.src_b, &inst.src_c}) {
            if (op->kind == OperandKind::Reg)
                use_mask |= 1ull << (op->value & 63);
        }
        if (warp.pending_reg_mask & use_mask)
            return false;
        if (inst.writesReg() &&
            warp.pending_count >= _cfg.core.scoreboard_entries) {
            return false;
        }
    }

    UnitClass uc = inst.unitClass();
    switch (uc) {
      case UnitClass::Int:
        if (_int_free > cycle)
            return false;
        break;
      case UnitClass::Fp:
        if (_fp_free > cycle)
            return false;
        break;
      case UnitClass::Sfu:
        if (_sfu_free > cycle)
            return false;
        break;
      case UnitClass::Mem:
        if (_mem_free > cycle)
            return false;
        break;
      case UnitClass::Ctrl:
        break;
    }

    // --- Issue accepted. ---
    --warp.ibuffer;
    ++_act.ibuffer_reads;
    ++_act.reconv_reads;
    ++_act.wst_writes;
    ++_act.issued_insts;

    Block &blk = _blocks[warp.block_slot];

    // Guard evaluation: threads whose predicate allows execution.
    uint64_t exec_mask = 0;
    for (unsigned lane = 0; lane < _cfg.core.warp_size; ++lane) {
        if (!(tos.mask >> lane & 1))
            continue;
        unsigned tid = warp.base_thread + lane;
        if (guardPasses(blk, tid, inst))
            exec_mask |= 1ull << lane;
    }
    unsigned active = popCount(tos.mask);
    unsigned enabled = popCount(exec_mask);

    // Register file traffic (operand collectors, banks, crossbar).
    unsigned srcs = inst.regSources();
    unsigned per_op = rfAccessesPerOperand(tos.mask);
    _act.rf_bank_reads += srcs * per_op;
    _act.collector_writes += srcs;
    _act.rf_xbar_transfers += srcs;
    if (srcs > 0)
        ++_act.collector_reads;
    if (inst.writesReg())
        _act.rf_bank_writes += per_op;

    const unsigned warp_size = _cfg.core.warp_size;

    switch (uc) {
      case UnitClass::Ctrl: {
        ++_act.ctrl_warp_insts;
        if (inst.op == Op::BRA) {
            ++_act.branches;
            executeBranch(warp, inst, exec_mask);
        } else if (inst.op == Op::BAR) {
            ++_act.barriers;
            warp.at_barrier = true;
            ++blk.at_barrier;
            tos.exec_pc += 1;
            warp.ibuffer = 0;
            releaseBarrierIfReady(warp.block_slot);
        } else if (inst.op == Op::EXIT) {
            threadExit(warp, tos.mask);
        } else {  // NOP
            tos.exec_pc += 1;
        }
        // Reconvergence check after sequential advance.
        while (!warp.stack.empty() &&
               warp.stack.back().exec_pc == warp.stack.back().reconv_pc) {
            warp.stack.pop_back();
            ++_act.reconv_pops;
            warp.ibuffer = 0;
        }
        finishWarpIfDone(warp_idx);
        return true;
      }
      case UnitClass::Int: {
        ++_act.int_warp_insts;
        _act.int_lane_ops += enabled;
        unsigned initiation = divCeil(warp_size, _cfg.core.int_lanes);
        _int_free = cycle + initiation;
        executeInstruction(warp, inst, exec_mask, cycle);
        Completion c{cycle + _cfg.core.int_latency + initiation,
                     warp_idx, -1, 0};
        if (_cfg.core.scoreboard && inst.writesReg()) {
            c.dst_reg = static_cast<int16_t>(inst.dst.value & 63);
            warp.pending_reg_mask |= 1ull << c.dst_reg;
            ++warp.pending_count;
            ++_act.scoreboard_writes;
        }
        warp.inflight = true;
        _completions.push(c);
        break;
      }
      case UnitClass::Fp: {
        ++_act.fp_warp_insts;
        _act.fp_lane_ops += enabled;
        unsigned initiation = divCeil(warp_size, _cfg.core.fp_lanes);
        _fp_free = cycle + initiation;
        executeInstruction(warp, inst, exec_mask, cycle);
        Completion c{cycle + _cfg.core.fp_latency + initiation,
                     warp_idx, -1, 0};
        if (_cfg.core.scoreboard && inst.writesReg()) {
            c.dst_reg = static_cast<int16_t>(inst.dst.value & 63);
            warp.pending_reg_mask |= 1ull << c.dst_reg;
            ++warp.pending_count;
            ++_act.scoreboard_writes;
        }
        warp.inflight = true;
        _completions.push(c);
        break;
      }
      case UnitClass::Sfu: {
        ++_act.sfu_warp_insts;
        _act.sfu_lane_ops += enabled;
        unsigned initiation = divCeil(warp_size, _cfg.core.sfu_units);
        _sfu_free = cycle + initiation;
        executeInstruction(warp, inst, exec_mask, cycle);
        Completion c{cycle + _cfg.core.sfu_latency + initiation,
                     warp_idx, -1, 0};
        if (_cfg.core.scoreboard && inst.writesReg()) {
            c.dst_reg = static_cast<int16_t>(inst.dst.value & 63);
            warp.pending_reg_mask |= 1ull << c.dst_reg;
            ++warp.pending_count;
            ++_act.scoreboard_writes;
        }
        warp.inflight = true;
        _completions.push(c);
        break;
      }
      case UnitClass::Mem: {
        ++_act.mem_warp_insts;
        uint64_t done = executeMemory(warp, inst, exec_mask, cycle);
        bool is_load = inst.op == Op::LDG || inst.op == Op::LDS ||
                       inst.op == Op::STS || inst.op == Op::LDC ||
                       inst.op == Op::ATOMG_ADD;
        // STS completes like LDS (SMEM round trip); STG is
        // fire-and-forget through the store path.
        Completion c{done, warp_idx, -1, uint8_t(is_load ? 1 : 0)};
        if (_cfg.core.scoreboard && inst.writesReg()) {
            c.dst_reg = static_cast<int16_t>(inst.dst.value & 63);
            warp.pending_reg_mask |= 1ull << c.dst_reg;
            ++warp.pending_count;
            ++_act.scoreboard_writes;
        }
        if (is_load && (inst.op == Op::LDG || inst.op == Op::ATOMG_ADD))
            warp.waiting_mem = true;
        warp.inflight = true;
        _completions.push(c);
        break;
      }
    }

    // Sequential PC advance + reconvergence pop for non-control ops.
    StackEntry &tos2 = warp.stack.back();
    tos2.exec_pc += 1;
    while (!warp.stack.empty() &&
           warp.stack.back().exec_pc == warp.stack.back().reconv_pc) {
        warp.stack.pop_back();
        ++_act.reconv_pops;
        warp.ibuffer = 0;
    }
    (void)active;
    return true;
}

void
Core::executeBranch(Warp &warp, const Instruction &inst,
                    uint64_t exec_mask)
{
    StackEntry &tos = warp.stack.back();
    uint64_t mask = tos.mask;
    uint64_t taken = exec_mask;          // guard==condition for BRA
    uint64_t not_taken = mask & ~taken;

    if (taken == 0) {
        tos.exec_pc += 1;
        return;   // fully not-taken: fall through, keep ibuffer
    }
    if (not_taken == 0) {
        tos.exec_pc = inst.target;
        warp.ibuffer = 0;
        return;   // fully taken
    }

    // Divergence: the current entry becomes the reconvergence token;
    // both paths are pushed and the taken path executes first [17].
    ++_act.divergent_branches;
    uint32_t fall_pc = tos.exec_pc + 1;
    tos.exec_pc = inst.reconv;
    warp.stack.push_back({inst.reconv, fall_pc, not_taken});
    warp.stack.push_back({inst.reconv, inst.target, taken});
    _act.reconv_pushes += 2;
    warp.ibuffer = 0;
}

void
Core::threadExit(Warp &warp, uint64_t exit_mask)
{
    for (auto &entry : warp.stack)
        entry.mask &= ~exit_mask;
    while (!warp.stack.empty() && warp.stack.back().mask == 0) {
        warp.stack.pop_back();
        ++_act.reconv_pops;
    }
    warp.ibuffer = 0;
}

void
Core::releaseBarrierIfReady(unsigned block_slot)
{
    Block &blk = _blocks[block_slot];
    if (blk.live_warps == 0 || blk.at_barrier < blk.live_warps)
        return;
    blk.at_barrier = 0;
    for (auto &w : _warps) {
        if (w.valid && w.block_slot == block_slot)
            w.at_barrier = false;
    }
}

void
Core::finishWarpIfDone(unsigned warp_idx)
{
    Warp &warp = _warps[warp_idx];
    if (!warp.valid || !warp.stack.empty())
        return;
    unsigned block_slot = warp.block_slot;
    warp.valid = false;
    Block &blk = _blocks[block_slot];
    GSP_ASSERT(blk.live_warps > 0, "warp accounting broke");
    --blk.live_warps;
    if (blk.live_warps > 0) {
        // A barrier may now be releasable with fewer participants.
        releaseBarrierIfReady(block_slot);
        return;
    }
    blk = Block{};
    GSP_ASSERT(_resident_blocks > 0, "block accounting broke");
    --_resident_blocks;
    ++_finished_blocks;
}

uint64_t
Core::executeMemory(Warp &warp, const Instruction &inst,
                    uint64_t exec_mask, uint64_t cycle)
{
    Block &blk = _blocks[warp.block_slot];
    const unsigned warp_size = _cfg.core.warp_size;

    // AGU: one address per enabled lane, 8 addresses per SAGU/cycle.
    _addr_scratch.clear();
    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (!(exec_mask >> lane & 1))
            continue;
        unsigned tid = warp.base_thread + lane;
        uint32_t base = readOperand(blk, tid, warp, inst.src_a);
        _addr_scratch.push_back(
            base + static_cast<uint32_t>(inst.mem_offset));
    }
    unsigned enabled = static_cast<unsigned>(_addr_scratch.size());
    _act.agu_addrs += enabled;
    unsigned agu_cycles = std::max(
        1u, static_cast<unsigned>(
                divCeil(enabled, 8 * _cfg.core.sagu_count)));

    if (enabled == 0) {
        _mem_free = cycle + 1;
        return cycle + 1;
    }

    switch (inst.op) {
      case Op::LDS:
      case Op::STS: {
        bool is_store = inst.op == Op::STS;
        GSP_ASSERT(blk.smem != nullptr, "SMEM access without smem_bytes");
        BankConflictInfo info = analyzeSmemAccess(
            _addr_scratch, _cfg.core.smem_banks);
        _act.smem_accesses += info.distinct_words;
        _act.smem_conflict_cycles += info.serialization - 1;
        // Functional.
        unsigned idx = 0;
        for (unsigned lane = 0; lane < warp_size; ++lane) {
            if (!(exec_mask >> lane & 1))
                continue;
            unsigned tid = warp.base_thread + lane;
            uint32_t addr = _addr_scratch[idx++];
            if (is_store) {
                blk.smem->store32(
                    addr, readOperand(blk, tid, warp, inst.src_b));
            } else {
                threadReg(blk, tid, inst.dst.value) =
                    blk.smem->load32(addr);
            }
        }
        _mem_free = cycle + agu_cycles + info.serialization;
        return cycle + _cfg.core.smem_latency + info.serialization;
      }
      case Op::LDC: {
        unsigned d = distinctAddresses(_addr_scratch);
        _act.const_reads += d;
        unsigned miss_extra = 0;
        // Tag-check one access per distinct address.
        for (unsigned i = 0; i < d; ++i) {
            if (!_const_cache.access(_addr_scratch[i], false)) {
                ++_act.const_misses;
                miss_extra = const_miss_latency;
            }
        }
        unsigned idx = 0;
        for (unsigned lane = 0; lane < warp_size; ++lane) {
            if (!(exec_mask >> lane & 1))
                continue;
            unsigned tid = warp.base_thread + lane;
            threadReg(blk, tid, inst.dst.value) =
                _cmem.load32(_addr_scratch[idx++]);
        }
        _mem_free = cycle + agu_cycles + d;
        return cycle + _cfg.core.l1_latency + d + miss_extra;
      }
      case Op::LDG:
      case Op::STG:
      case Op::ATOMG_ADD: {
        bool is_store = inst.op == Op::STG;
        bool is_atomic = inst.op == Op::ATOMG_ADD;

        // Functional first (atomics serialize in lane order).
        unsigned idx = 0;
        for (unsigned lane = 0; lane < warp_size; ++lane) {
            if (!(exec_mask >> lane & 1))
                continue;
            unsigned tid = warp.base_thread + lane;
            uint32_t addr = _addr_scratch[idx++];
            if (is_store) {
                _gmem.store32(addr,
                              readOperand(blk, tid, warp, inst.src_b));
            } else if (is_atomic) {
                uint32_t old = _gmem.load32(addr);
                threadReg(blk, tid, inst.dst.value) = old;
                _gmem.store32(
                    addr,
                    old + readOperand(blk, tid, warp, inst.src_b));
            } else {
                threadReg(blk, tid, inst.dst.value) =
                    _gmem.load32(addr);
            }
        }

        // Coalescing [24].
        ++_act.coalescer_lookups;
        unsigned n_seg;
        if (_cfg.core.coalescing) {
            n_seg = coalesce(_addr_scratch, _cfg.core.line_bytes,
                             _seg_scratch);
        } else {
            // Ablation: one line-sized transaction per active lane.
            _seg_scratch.clear();
            for (uint32_t a : _addr_scratch) {
                _seg_scratch.push_back(
                    a / _cfg.core.line_bytes * _cfg.core.line_bytes);
            }
            n_seg = static_cast<unsigned>(_seg_scratch.size());
        }
        _act.coalescer_transactions += n_seg;
        if (is_store)
            ++_act.global_stores;
        else
            ++_act.global_loads;

        uint64_t t_done = cycle + 1;
        for (unsigned s = 0; s < n_seg; ++s) {
            uint64_t seg = _seg_scratch[s];
            uint64_t t_seg = 0;
            bool to_mem = true;
            if (_l1d && !is_atomic) {
                if (is_store) {
                    // Write-through, no allocate.
                    ++_act.l1_writes;
                    _l1d->access(seg, true);
                } else {
                    ++_act.l1_reads;
                    if (_l1d->access(seg, false)) {
                        // Line read out of the unified SMEM/L1
                        // array: one access per 128-bit row.
                        _act.smem_accesses += _cfg.core.line_bytes / 16;
                        t_seg = cycle + _cfg.core.l1_latency;
                        to_mem = false;
                        t_done = std::max(t_done, t_seg);
                        continue;
                    }
                    ++_act.l1_misses;
                }
            }
            if (to_mem) {
                t_seg = _memsys.access(seg, is_store, cycle + s);
                if (is_atomic) {
                    // Read-modify-write: the write burst follows.
                    t_seg = _memsys.access(seg, true, t_seg);
                }
                t_done = std::max(t_done, t_seg);
            }
        }
        _mem_free = cycle + agu_cycles + n_seg;
        if (is_store) {
            // Fire-and-forget: the warp only waits for the LDST
            // unit's own occupancy, not the DRAM round trip.
            return cycle + agu_cycles + n_seg + 1;
        }
        return t_done;
      }
      default:
        GSP_PANIC("executeMemory on non-memory opcode");
    }
}

void
Core::executeInstruction(Warp &warp, const Instruction &inst,
                         uint64_t exec_mask, uint64_t cycle)
{
    (void)cycle;
    Block &blk = _blocks[warp.block_slot];
    const unsigned warp_size = _cfg.core.warp_size;

    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (!(exec_mask >> lane & 1))
            continue;
        unsigned tid = warp.base_thread + lane;
        uint32_t a = readOperand(blk, tid, warp, inst.src_a);
        uint32_t b = readOperand(blk, tid, warp, inst.src_b);
        uint32_t c = readOperand(blk, tid, warp, inst.src_c);
        uint32_t result = 0;
        bool write_result = inst.writesReg();

        switch (inst.op) {
          case Op::MOV: result = a; break;
          case Op::IADD: result = a + b; break;
          case Op::ISUB: result = a - b; break;
          case Op::IMUL:
            result = static_cast<uint32_t>(
                static_cast<uint64_t>(a) * b);
            break;
          case Op::IMAD:
            result = static_cast<uint32_t>(
                static_cast<uint64_t>(a) * b + c);
            break;
          case Op::ISHL: result = a << (b & 31); break;
          case Op::ISHR: result = a >> (b & 31); break;
          case Op::IAND: result = a & b; break;
          case Op::IOR: result = a | b; break;
          case Op::IXOR: result = a ^ b; break;
          case Op::IMIN:
            result = static_cast<uint32_t>(
                std::min(static_cast<int32_t>(a),
                         static_cast<int32_t>(b)));
            break;
          case Op::IMAX:
            result = static_cast<uint32_t>(
                std::max(static_cast<int32_t>(a),
                         static_cast<int32_t>(b)));
            break;
          case Op::FADD: result = asBits(asFloat(a) + asFloat(b)); break;
          case Op::FSUB: result = asBits(asFloat(a) - asFloat(b)); break;
          case Op::FMUL: result = asBits(asFloat(a) * asFloat(b)); break;
          case Op::FFMA:
            result = asBits(asFloat(a) * asFloat(b) + asFloat(c));
            break;
          case Op::FMIN:
            result = asBits(std::min(asFloat(a), asFloat(b)));
            break;
          case Op::FMAX:
            result = asBits(std::max(asFloat(a), asFloat(b)));
            break;
          case Op::I2F:
            result = asBits(static_cast<float>(static_cast<int32_t>(a)));
            break;
          case Op::F2I:
            result = static_cast<uint32_t>(
                static_cast<int32_t>(asFloat(a)));
            break;
          case Op::RCP: result = asBits(1.0f / asFloat(a)); break;
          case Op::RSQRT:
            result = asBits(1.0f / std::sqrt(asFloat(a)));
            break;
          case Op::SQRT: result = asBits(std::sqrt(asFloat(a))); break;
          case Op::SIN: result = asBits(std::sin(asFloat(a))); break;
          case Op::COS: result = asBits(std::cos(asFloat(a))); break;
          case Op::EX2: result = asBits(std::exp2(asFloat(a))); break;
          case Op::LG2: result = asBits(std::log2(asFloat(a))); break;
          case Op::SETP: {
            bool r = false;
            switch (inst.cmp_type) {
              case CmpType::I32: {
                int32_t x = static_cast<int32_t>(a);
                int32_t y = static_cast<int32_t>(b);
                switch (inst.cmp) {
                  case Cmp::EQ: r = x == y; break;
                  case Cmp::NE: r = x != y; break;
                  case Cmp::LT: r = x < y; break;
                  case Cmp::LE: r = x <= y; break;
                  case Cmp::GT: r = x > y; break;
                  case Cmp::GE: r = x >= y; break;
                }
                break;
              }
              case CmpType::U32: {
                switch (inst.cmp) {
                  case Cmp::EQ: r = a == b; break;
                  case Cmp::NE: r = a != b; break;
                  case Cmp::LT: r = a < b; break;
                  case Cmp::LE: r = a <= b; break;
                  case Cmp::GT: r = a > b; break;
                  case Cmp::GE: r = a >= b; break;
                }
                break;
              }
              case CmpType::F32: {
                float x = asFloat(a);
                float y = asFloat(b);
                switch (inst.cmp) {
                  case Cmp::EQ: r = x == y; break;
                  case Cmp::NE: r = x != y; break;
                  case Cmp::LT: r = x < y; break;
                  case Cmp::LE: r = x <= y; break;
                  case Cmp::GT: r = x > y; break;
                  case Cmp::GE: r = x >= y; break;
                }
                break;
              }
            }
            writePred(blk, tid, inst.aux, r);
            write_result = false;
            break;
          }
          case Op::SELP:
            result = readPred(blk, tid, inst.aux) ? a : b;
            break;
          case Op::NOP:
            write_result = false;
            break;
          default:
            GSP_PANIC("executeInstruction on unexpected opcode ",
                      opName(inst.op));
        }
        if (write_result)
            threadReg(blk, tid, inst.dst.value) = result;
    }
}

uint32_t
Core::readOperand(const Block &blk, unsigned tid, const Warp &warp,
                  const Operand &op) const
{
    switch (op.kind) {
      case OperandKind::None:
        return 0;
      case OperandKind::Imm:
        return op.value;
      case OperandKind::Reg:
        return blk.regs[static_cast<size_t>(tid) *
                            _prog->regs_per_thread +
                        op.value];
      case OperandKind::Special: {
        const Dim3 &ntid = _launch->block;
        const Dim3 &nctaid = _launch->grid;
        switch (static_cast<SpecialReg>(op.value)) {
          case SpecialReg::TidX: return tid % ntid.x;
          case SpecialReg::TidY: return tid / ntid.x;
          case SpecialReg::NTidX: return ntid.x;
          case SpecialReg::NTidY: return ntid.y;
          case SpecialReg::CtaIdX: return blk.cta_x;
          case SpecialReg::CtaIdY: return blk.cta_y;
          case SpecialReg::NCtaIdX: return nctaid.x;
          case SpecialReg::NCtaIdY: return nctaid.y;
          case SpecialReg::LaneId: return tid % _cfg.core.warp_size;
          case SpecialReg::WarpId: return warp.warp_in_block;
        }
        return 0;
      }
    }
    return 0;
}

uint32_t &
Core::threadReg(Block &blk, unsigned tid, unsigned reg)
{
    GSP_ASSERT(reg < _prog->regs_per_thread, "register ", reg,
               " out of budget in ", _prog->name);
    return blk.regs[static_cast<size_t>(tid) * _prog->regs_per_thread +
                    reg];
}

bool
Core::readPred(const Block &blk, unsigned tid, unsigned p) const
{
    return (blk.preds[tid] >> p) & 1;
}

void
Core::writePred(Block &blk, unsigned tid, unsigned p, bool v)
{
    if (v)
        blk.preds[tid] |= static_cast<uint8_t>(1u << p);
    else
        blk.preds[tid] &= static_cast<uint8_t>(~(1u << p));
}

bool
Core::guardPasses(const Block &blk, unsigned tid,
                  const Instruction &inst) const
{
    if (inst.guard < 0)
        return true;
    bool p = readPred(blk, tid, static_cast<unsigned>(inst.guard));
    return inst.guard_negated ? !p : p;
}

unsigned
Core::rfAccessesPerOperand(uint64_t mask) const
{
    // A bank access reads a 128-bit row: four lanes' 32-bit operands.
    return std::max(1u, static_cast<unsigned>(divCeil(popCount(mask), 4)));
}

} // namespace perf
} // namespace gpusimpow
