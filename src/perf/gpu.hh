/**
 * @file
 * The full simulated GPU: cores grouped into clusters (TPCs/GPCs),
 * the global work-distribution engine, the shared memory system, and
 * the kernel run loop. The block scheduler reproduces the placement
 * behaviour the paper measures in Fig. 4: blocks go first to
 * unoccupied clusters, then to unoccupied cores, then stack up per
 * core — which is exactly what makes cluster power show up as
 * staircase steps.
 */

#ifndef GPUSIMPOW_PERF_GPU_HH
#define GPUSIMPOW_PERF_GPU_HH

#include <functional>
#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "perf/activity.hh"
#include "perf/core.hh"
#include "perf/kernel.hh"
#include "perf/memory.hh"
#include "perf/memsys.hh"

namespace gpusimpow {
namespace perf {

/** Result of one kernel execution. */
struct RunResult
{
    /** Shader cycles from launch to completion of the last block. */
    uint64_t cycles = 0;
    /** Kernel duration in simulated seconds. */
    double time_s = 0.0;
    /** Cumulative activity over the whole kernel. */
    ChipActivity activity;
    /** Per-kernel instruction count (all cores). */
    uint64_t instructions = 0;
};

/** A whole GPU card (chip + GDDR5 + host interface). */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig &cfg);

    /** Functional global memory (device memory). */
    GlobalMemory &globalMem() { return _gmem; }
    /** Functional constant memory. */
    ConstantMemory &constMem() { return _cmem; }
    /** Bump allocator over global memory. */
    GlobalAllocator &allocator() { return _alloc; }

    /** Copy host data to device (counts PCIe traffic). */
    void memcpyToDevice(uint32_t dst, const void *src, size_t bytes);
    /** Copy device data to host (counts PCIe traffic). */
    void memcpyToHost(void *dst, uint32_t src, size_t bytes);

    /**
     * Reset all device-visible state (global/constant memory,
     * allocator, PCIe counters) to the just-constructed state so a
     * fresh workload sees an indistinguishable GPU. Only legal
     * between kernels (no core may be busy). Used by the engine to
     * recycle a Simulator across scenarios that share a
     * configuration.
     */
    void resetDeviceState();

    /**
     * Callback invoked every sampling interval with the activity
     * delta of that interval and its [t0, t1) bounds in seconds.
     */
    using SampleFn =
        std::function<void(const ChipActivity &, double, double)>;

    /**
     * Run a kernel to completion.
     * @param prog kernel program
     * @param launch grid/block geometry
     * @param sampler optional per-interval activity callback
     * @param sample_interval_s sampling period (0 = no sampling)
     */
    RunResult run(const KernelProgram &prog, const LaunchConfig &launch,
                  const SampleFn &sampler = nullptr,
                  double sample_interval_s = 0.0);

    /** The configuration this GPU was built from. */
    const GpuConfig &config() const { return _cfg; }

    /**
     * Retarget the core clock domain (shader + uncore) to a new DVFS
     * frequency scale without losing device state — the hook the
     * thermal throttling governor clamps through. Only legal between
     * kernels.
     */
    void setFreqScale(double freq_scale);

  private:
    GpuConfig _cfg;
    GlobalMemory _gmem;
    ConstantMemory _cmem;
    GlobalAllocator _alloc;
    MemorySystem _memsys;
    std::vector<std::unique_ptr<Core>> _cores;

    // Persistent across kernels (for cumulative card statistics).
    uint64_t _pcie_bytes = 0;
    // Host copies before the current kernel are excluded from its
    // activity window (the paper measures kernel windows only).
    uint64_t _pcie_baseline = 0;

    // Run-local scheduler state.
    std::vector<uint64_t> _cluster_busy;
    uint64_t _gpu_busy = 0;
    uint64_t _blocks_dispatched = 0;

    unsigned clusterOf(unsigned core_id) const
    {
        return core_id / _cfg.cores_per_cluster;
    }

    /** Pick the core the hardware scheduler would use, or -1. */
    int pickCoreForBlock() const;

    ChipActivity snapshot(uint64_t cycle) const;
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_GPU_HH
