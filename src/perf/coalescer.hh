/**
 * @file
 * Access-coalescing and conflict-serialization logic of the
 * load/store unit (Fig. 3): the global-memory coalescer modeled
 * after the NVIDIA patent [24] (merge the per-thread addresses of a
 * warp into as few line-sized transactions as possible), the shared
 * memory bank-conflict checker [25], and the constant-memory
 * address-equality check of SectionIII-C4.
 */

#ifndef GPUSIMPOW_PERF_COALESCER_HH
#define GPUSIMPOW_PERF_COALESCER_HH

#include <cstdint>
#include <vector>

namespace gpusimpow {
namespace perf {

/**
 * Merge per-lane byte addresses into unique aligned segments.
 * @param addrs active lanes' byte addresses
 * @param segment_bytes coalescing granularity (cache line)
 * @param out unique segment base addresses (sorted)
 * @return number of memory transactions generated
 */
unsigned coalesce(const std::vector<uint32_t> &addrs,
                  unsigned segment_bytes, std::vector<uint32_t> &out);

/** Result of the shared-memory bank-conflict check. */
struct BankConflictInfo
{
    /** Distinct words actually read/written. */
    unsigned distinct_words = 0;
    /** Serialization factor: cycles needed = max per-bank load. */
    unsigned serialization = 1;
};

/**
 * Analyze one warp's shared-memory access [25]. Accesses to the
 * same word by multiple lanes broadcast (no conflict); distinct
 * words in the same bank serialize.
 * @param addrs active lanes' byte addresses
 * @param banks number of SMEM banks
 * @param word_bytes bank interleave granularity (4 bytes)
 */
BankConflictInfo analyzeSmemAccess(const std::vector<uint32_t> &addrs,
                                   unsigned banks,
                                   unsigned word_bytes = 4);

/**
 * Constant-memory address-equality check: the number of serialized
 * constant-cache accesses equals the number of distinct addresses
 * (all-equal addresses broadcast in a single access).
 */
unsigned distinctAddresses(const std::vector<uint32_t> &addrs);

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_COALESCER_HH
