#include "perf/memory.hh"

#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

std::vector<uint8_t> &
GlobalMemory::page(uint32_t addr)
{
    uint32_t key = addr >> page_bits;
    auto it = _pages.find(key);
    if (it == _pages.end())
        it = _pages.emplace(key, std::vector<uint8_t>(page_size, 0)).first;
    return it->second;
}

const std::vector<uint8_t> *
GlobalMemory::pageIfPresent(uint32_t addr) const
{
    auto it = _pages.find(addr >> page_bits);
    return it == _pages.end() ? nullptr : &it->second;
}

uint32_t
GlobalMemory::load32(uint32_t addr) const
{
    GSP_ASSERT(addr % 4 == 0, "unaligned global load at ", addr);
    const std::vector<uint8_t> *p = pageIfPresent(addr);
    if (!p)
        return 0;
    uint32_t v;
    std::memcpy(&v, p->data() + (addr & (page_size - 1)), 4);
    return v;
}

void
GlobalMemory::store32(uint32_t addr, uint32_t value)
{
    GSP_ASSERT(addr % 4 == 0, "unaligned global store at ", addr);
    std::memcpy(page(addr).data() + (addr & (page_size - 1)), &value, 4);
}

float
GlobalMemory::loadF32(uint32_t addr) const
{
    uint32_t bits = load32(addr);
    float f;
    std::memcpy(&f, &bits, 4);
    return f;
}

void
GlobalMemory::storeF32(uint32_t addr, float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, 4);
    store32(addr, bits);
}

void
GlobalMemory::write(uint32_t addr, const void *data, size_t bytes)
{
    const uint8_t *src = static_cast<const uint8_t *>(data);
    while (bytes > 0) {
        uint32_t in_page = addr & (page_size - 1);
        size_t chunk = page_size - in_page;
        if (chunk > bytes)
            chunk = bytes;
        std::memcpy(page(addr).data() + in_page, src, chunk);
        addr += static_cast<uint32_t>(chunk);
        src += chunk;
        bytes -= chunk;
    }
}

void
GlobalMemory::read(uint32_t addr, void *data, size_t bytes) const
{
    uint8_t *dst = static_cast<uint8_t *>(data);
    while (bytes > 0) {
        uint32_t in_page = addr & (page_size - 1);
        size_t chunk = page_size - in_page;
        if (chunk > bytes)
            chunk = bytes;
        const std::vector<uint8_t> *p = pageIfPresent(addr);
        if (p)
            std::memcpy(dst, p->data() + in_page, chunk);
        else
            std::memset(dst, 0, chunk);
        addr += static_cast<uint32_t>(chunk);
        dst += chunk;
        bytes -= chunk;
    }
}

uint32_t
GlobalAllocator::alloc(uint32_t bytes)
{
    uint32_t addr = _next;
    uint32_t aligned = (bytes + 255u) & ~255u;
    GSP_ASSERT(_next + aligned > _next, "global address space exhausted");
    _next += aligned;
    return addr;
}

uint32_t
ConstantMemory::load32(uint32_t addr) const
{
    GSP_ASSERT(addr % 4 == 0 && addr + 4 <= _data.size(),
               "bad constant access at ", addr);
    uint32_t v;
    std::memcpy(&v, _data.data() + addr, 4);
    return v;
}

void
ConstantMemory::write(uint32_t addr, const void *data, size_t bytes)
{
    GSP_ASSERT(addr + bytes <= _data.size(), "constant segment overflow");
    std::memcpy(_data.data() + addr, data, bytes);
}

uint32_t
SharedMemory::load32(uint32_t addr) const
{
    GSP_ASSERT(addr % 4 == 0 && addr + 4 <= _data.size(),
               "bad shared load at ", addr, " (size ", _data.size(), ")");
    uint32_t v;
    std::memcpy(&v, _data.data() + addr, 4);
    return v;
}

void
SharedMemory::store32(uint32_t addr, uint32_t value)
{
    GSP_ASSERT(addr % 4 == 0 && addr + 4 <= _data.size(),
               "bad shared store at ", addr, " (size ", _data.size(), ")");
    std::memcpy(_data.data() + addr, &value, 4);
}

} // namespace perf
} // namespace gpusimpow
