#include "perf/activity.hh"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define GSP_HAVE_AVX2_DISPATCH 1
#endif

namespace gpusimpow {
namespace perf {

namespace {

#ifdef GSP_HAVE_AVX2_DISPATCH
/**
 * AVX2 sparse quad-dot: one 4-wide vector register per partial-sum
 * chain, lane j carrying coefficient row j. Explicit separate mul
 * and add intrinsics (never fma) make each lane's arithmetic the
 * exact IEEE operation sequence of the portable kernel — and hence
 * of the scalar dotCountersRow — so the packed results are
 * bit-identical across every path (the batched replay contract).
 * Compiled with a target attribute and selected at runtime, so the
 * binary itself stays baseline x86-64. The trailing division is
 * IEEE-correctly-rounded per lane, identical to four scalar divides.
 */
__attribute__((target("avx2"))) void
dotCountersSparseQuadAvx2(const double *values, const int32_t *idx,
                          const double *coeff,
                          const unsigned counts[4], double divisor,
                          double *out4)
{
    __m256d acc[4];
    std::size_t off = 0;
    for (unsigned chain = 0; chain < 4; ++chain) {
        __m256d s = _mm256_setzero_pd();
        for (unsigned i = 0; i < counts[chain]; ++i, ++off)
            s = _mm256_add_pd(
                s, _mm256_mul_pd(
                       _mm256_loadu_pd(coeff + off * 4),
                       _mm256_broadcast_sd(values + idx[off])));
        acc[chain] = s;
    }
    __m256d res = _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]),
                                _mm256_add_pd(acc[2], acc[3]));
    res = _mm256_div_pd(res, _mm256_broadcast_sd(&divisor));
    _mm256_storeu_pd(out4, res);
}
#endif // GSP_HAVE_AVX2_DISPATCH

DotCountersSparseQuadFn
resolveSparseQuadKernel()
{
#ifdef GSP_HAVE_AVX2_DISPATCH
    if (__builtin_cpu_supports("avx2"))
        return dotCountersSparseQuadAvx2;
#endif
    return dotCountersSparseQuadPortable;
}

} // namespace

DotCountersSparseQuadFn
dotCountersSparseQuadKernel()
{
    static const DotCountersSparseQuadFn fn = resolveSparseQuadKernel();
    return fn;
}

CoreActivity &
CoreActivity::operator+=(const CoreActivity &o)
{
#define X(name) name += o.name;
    GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    return *this;
}

CoreActivity
CoreActivity::operator-(const CoreActivity &o) const
{
    CoreActivity r;
#define X(name) r.name = name - o.name;
    GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    return r;
}

MemActivity &
MemActivity::operator+=(const MemActivity &o)
{
#define X(name) name += o.name;
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    return *this;
}

MemActivity
MemActivity::operator-(const MemActivity &o) const
{
    MemActivity r;
#define X(name) r.name = name - o.name;
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    return r;
}

ChipActivity
ChipActivity::diff(const ChipActivity &prev) const
{
    GSP_ASSERT(cores.size() == prev.cores.size(),
               "activity snapshots of different GPUs");
    ChipActivity r;
    r.cores.resize(cores.size());
    for (size_t i = 0; i < cores.size(); ++i)
        r.cores[i] = cores[i] - prev.cores[i];
    r.mem = mem - prev.mem;
    r.cluster_busy_cycles.resize(cluster_busy_cycles.size());
    for (size_t i = 0; i < cluster_busy_cycles.size(); ++i) {
        r.cluster_busy_cycles[i] =
            cluster_busy_cycles[i] - prev.cluster_busy_cycles[i];
    }
    r.gpu_busy_cycles = gpu_busy_cycles - prev.gpu_busy_cycles;
    r.blocks_dispatched = blocks_dispatched - prev.blocks_dispatched;
    r.shader_cycles = shader_cycles - prev.shader_cycles;
    r.elapsed_s = elapsed_s - prev.elapsed_s;
    return r;
}

void
ChipActivity::serialize(std::ostream &out) const
{
    out << "chip-activity " << cores.size() << ' '
        << cluster_busy_cycles.size() << ' ' << core_activity_fields
        << ' ' << mem_activity_fields << '\n';
    for (const CoreActivity &c : cores) {
        out << "core";
        c.forEach([&](const char *, uint64_t v) { out << ' ' << v; });
        out << '\n';
    }
    out << "mem";
    mem.forEach([&](const char *, uint64_t v) { out << ' ' << v; });
    out << '\n';
    out << "clusters";
    for (uint64_t v : cluster_busy_cycles)
        out << ' ' << v;
    out << '\n';
    out << "totals " << gpu_busy_cycles << ' ' << blocks_dispatched
        << ' ' << shader_cycles << ' ' << strformat("%a", elapsed_s)
        << '\n';
}

ChipActivity
ChipActivity::parse(std::istream &in)
{
    // Counts size containers, so a corrupted record must fail with
    // the malformed-record fatal(), not an uncaught length_error /
    // bad_alloc out of resize(). No real GPU is within orders of
    // magnitude of this bound.
    constexpr uint64_t max_count = 1u << 20;
    expectToken(in, "chip-activity");
    uint64_t n_cores = readU64Token(in, "core count");
    uint64_t n_clusters = readU64Token(in, "cluster count");
    uint64_t n_core_fields = readU64Token(in, "core field count");
    uint64_t n_mem_fields = readU64Token(in, "mem field count");
    if (n_cores > max_count || n_clusters > max_count)
        fatal("malformed activity record: implausible core/cluster "
              "count ", n_cores, "/", n_clusters);
    if (n_core_fields != core_activity_fields ||
        n_mem_fields != mem_activity_fields)
        fatal("activity record schema mismatch: record has ",
              n_core_fields, "/", n_mem_fields,
              " core/mem counters, this build expects ",
              core_activity_fields, "/", mem_activity_fields);

    ChipActivity act;
    act.cores.resize(n_cores);
    for (CoreActivity &c : act.cores) {
        expectToken(in, "core");
#define X(name) c.name = readU64Token(in, #name);
        GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    }
    expectToken(in, "mem");
#define X(name) act.mem.name = readU64Token(in, #name);
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    expectToken(in, "clusters");
    act.cluster_busy_cycles.resize(n_clusters);
    for (uint64_t &v : act.cluster_busy_cycles)
        v = readU64Token(in, "cluster busy cycles");
    expectToken(in, "totals");
    act.gpu_busy_cycles = readU64Token(in, "gpu_busy_cycles");
    act.blocks_dispatched = readU64Token(in, "blocks_dispatched");
    act.shader_cycles = readU64Token(in, "shader_cycles");
    act.elapsed_s = readDoubleToken(in, "elapsed_s");
    // A duration: NaN/Inf or negative values are corruption, and
    // they would silently poison every downstream rate division.
    if (!std::isfinite(act.elapsed_s) || act.elapsed_s < 0.0)
        fatal("malformed activity record: elapsed_s ", act.elapsed_s,
              " is not a finite non-negative duration");
    return act;
}

void
ActivityMatrix::append(const ChipActivity &act)
{
    if (n_intervals == 0 && core.empty())
        n_cores = static_cast<unsigned>(act.cores.size());
    GSP_ASSERT(act.cores.size() == n_cores,
               "activity records of different GPUs in one matrix");
    std::size_t core_base = core.size();
    core.resize(core_base + std::size_t(n_cores) * core_activity_fields);
    double *row = core.data() + core_base;
    for (const CoreActivity &c : act.cores) {
        countersToRow(c, row);
        row += core_activity_fields;
    }
    std::size_t mem_base = mem.size();
    mem.resize(mem_base + mem_activity_fields);
    countersToRow(act.mem, mem.data() + mem_base);
    ++n_intervals;
}

std::string
ChipActivity::format() const
{
    std::ostringstream oss;
    oss << "shader_cycles " << shader_cycles << "\n";
    oss << "elapsed_s " << elapsed_s << "\n";
    oss << "blocks_dispatched " << blocks_dispatched << "\n";
    oss << "gpu_busy_cycles " << gpu_busy_cycles << "\n";
    for (size_t i = 0; i < cluster_busy_cycles.size(); ++i) {
        oss << "cluster" << i << ".busy_cycles "
            << cluster_busy_cycles[i] << "\n";
    }
    CoreActivity total;
    for (const auto &c : cores)
        total += c;
    total.forEach([&](const char *name, uint64_t v) {
        oss << "cores." << name << " " << v << "\n";
    });
    mem.forEach([&](const char *name, uint64_t v) {
        oss << "mem." << name << " " << v << "\n";
    });
    return oss.str();
}

} // namespace perf
} // namespace gpusimpow
