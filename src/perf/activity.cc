#include "perf/activity.hh"

#include <sstream>

#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

CoreActivity &
CoreActivity::operator+=(const CoreActivity &o)
{
#define X(name) name += o.name;
    GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    return *this;
}

CoreActivity
CoreActivity::operator-(const CoreActivity &o) const
{
    CoreActivity r;
#define X(name) r.name = name - o.name;
    GSP_CORE_ACTIVITY_FIELDS(X)
#undef X
    return r;
}

MemActivity &
MemActivity::operator+=(const MemActivity &o)
{
#define X(name) name += o.name;
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    return *this;
}

MemActivity
MemActivity::operator-(const MemActivity &o) const
{
    MemActivity r;
#define X(name) r.name = name - o.name;
    GSP_MEM_ACTIVITY_FIELDS(X)
#undef X
    return r;
}

ChipActivity
ChipActivity::diff(const ChipActivity &prev) const
{
    GSP_ASSERT(cores.size() == prev.cores.size(),
               "activity snapshots of different GPUs");
    ChipActivity r;
    r.cores.resize(cores.size());
    for (size_t i = 0; i < cores.size(); ++i)
        r.cores[i] = cores[i] - prev.cores[i];
    r.mem = mem - prev.mem;
    r.cluster_busy_cycles.resize(cluster_busy_cycles.size());
    for (size_t i = 0; i < cluster_busy_cycles.size(); ++i) {
        r.cluster_busy_cycles[i] =
            cluster_busy_cycles[i] - prev.cluster_busy_cycles[i];
    }
    r.gpu_busy_cycles = gpu_busy_cycles - prev.gpu_busy_cycles;
    r.blocks_dispatched = blocks_dispatched - prev.blocks_dispatched;
    r.shader_cycles = shader_cycles - prev.shader_cycles;
    r.elapsed_s = elapsed_s - prev.elapsed_s;
    return r;
}

std::string
ChipActivity::format() const
{
    std::ostringstream oss;
    oss << "shader_cycles " << shader_cycles << "\n";
    oss << "elapsed_s " << elapsed_s << "\n";
    oss << "blocks_dispatched " << blocks_dispatched << "\n";
    oss << "gpu_busy_cycles " << gpu_busy_cycles << "\n";
    for (size_t i = 0; i < cluster_busy_cycles.size(); ++i) {
        oss << "cluster" << i << ".busy_cycles "
            << cluster_busy_cycles[i] << "\n";
    }
    CoreActivity total;
    for (const auto &c : cores)
        total += c;
    total.forEach([&](const char *name, uint64_t v) {
        oss << "cores." << name << " " << v << "\n";
    });
    mem.forEach([&](const char *name, uint64_t v) {
        oss << "mem." << name << " " << v << "\n";
    });
    return oss.str();
}

} // namespace perf
} // namespace gpusimpow
