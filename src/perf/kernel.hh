/**
 * @file
 * Kernel representation and a small assembler-style builder API. A
 * KernelProgram is the unit the simulator launches (the paper's
 * "GPGPU kernel"); workloads construct programs with KernelBuilder,
 * which handles labels, branch patching, and reconvergence-point
 * bookkeeping for the stack-based divergence mechanism.
 */

#ifndef GPUSIMPOW_PERF_KERNEL_HH
#define GPUSIMPOW_PERF_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perf/isa.hh"

namespace gpusimpow {
namespace perf {

/** Grid/block dimensions (z unused by the current workloads). */
struct Dim3
{
    unsigned x = 1;
    unsigned y = 1;

    unsigned count() const { return x * y; }
};

/** Launch geometry for one kernel invocation. */
struct LaunchConfig
{
    /** Blocks in the grid. */
    Dim3 grid;
    /** Threads per block. */
    Dim3 block;
};

/** A complete kernel: code plus per-thread/per-block resource needs. */
struct KernelProgram
{
    /** Kernel name (used in reports and benchmarks). */
    std::string name;
    /** Instruction stream; PCs are indices into this vector. */
    std::vector<Instruction> code;
    /** Architectural registers needed per thread. */
    unsigned regs_per_thread = 8;
    /** Shared memory per block, bytes. */
    unsigned smem_bytes = 0;

    /** Disassembly of the whole program. */
    std::string disassemble() const;
};

/**
 * Assembler-style builder. Typical use:
 * @code
 * KernelBuilder b("saxpy", 8);
 * auto loop = b.newLabel();
 * b.iadd(0, Operand::special(SpecialReg::TidX), Operand::imm(0));
 * b.bind(loop);
 * ...
 * b.braIf(0, false, loop, b.newBoundLabel());
 * b.exit();
 * auto prog = b.finish();
 * @endcode
 */
class KernelBuilder
{
  public:
    /** Opaque label handle. */
    using Label = uint32_t;

    /**
     * @param name kernel name
     * @param regs_per_thread register budget per thread
     * @param smem_bytes shared memory per block
     */
    KernelBuilder(std::string name, unsigned regs_per_thread,
                  unsigned smem_bytes = 0);

    /** Allocate an unbound label. */
    Label newLabel();

    /** Bind a label to the next emitted instruction. */
    void bind(Label l);

    /** Allocate a label bound to the next emitted instruction. */
    Label newBoundLabel();

    /**
     * Guard the next emitted instruction with predicate p.
     * @param p predicate index 0..3
     * @param negated execute when the predicate is false
     */
    KernelBuilder &pred(unsigned p, bool negated = false);

    // --- Integer ---
    void mov(unsigned dst, Operand a) { emit3(Op::MOV, dst, a, {}, {}); }
    void iadd(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IADD, dst, a, b, {});
    }
    void isub(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::ISUB, dst, a, b, {});
    }
    void imul(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IMUL, dst, a, b, {});
    }
    void imad(unsigned dst, Operand a, Operand b, Operand c)
    {
        emit3(Op::IMAD, dst, a, b, c);
    }
    void ishl(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::ISHL, dst, a, b, {});
    }
    void ishr(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::ISHR, dst, a, b, {});
    }
    void iand(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IAND, dst, a, b, {});
    }
    void ior(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IOR, dst, a, b, {});
    }
    void ixor(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IXOR, dst, a, b, {});
    }
    void imin(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IMIN, dst, a, b, {});
    }
    void imax(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::IMAX, dst, a, b, {});
    }

    // --- Floating point ---
    void fadd(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::FADD, dst, a, b, {});
    }
    void fsub(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::FSUB, dst, a, b, {});
    }
    void fmul(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::FMUL, dst, a, b, {});
    }
    void ffma(unsigned dst, Operand a, Operand b, Operand c)
    {
        emit3(Op::FFMA, dst, a, b, c);
    }
    void fmin(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::FMIN, dst, a, b, {});
    }
    void fmax(unsigned dst, Operand a, Operand b)
    {
        emit3(Op::FMAX, dst, a, b, {});
    }
    void i2f(unsigned dst, Operand a) { emit3(Op::I2F, dst, a, {}, {}); }
    void f2i(unsigned dst, Operand a) { emit3(Op::F2I, dst, a, {}, {}); }

    // --- SFU ---
    void rcp(unsigned dst, Operand a) { emit3(Op::RCP, dst, a, {}, {}); }
    void rsqrt(unsigned dst, Operand a)
    {
        emit3(Op::RSQRT, dst, a, {}, {});
    }
    void fsqrt(unsigned dst, Operand a)
    {
        emit3(Op::SQRT, dst, a, {}, {});
    }
    void fsin(unsigned dst, Operand a) { emit3(Op::SIN, dst, a, {}, {}); }
    void fcos(unsigned dst, Operand a) { emit3(Op::COS, dst, a, {}, {}); }
    void ex2(unsigned dst, Operand a) { emit3(Op::EX2, dst, a, {}, {}); }
    void lg2(unsigned dst, Operand a) { emit3(Op::LG2, dst, a, {}, {}); }

    // --- Predicates ---
    /** pred[p] = cmp(a, b) with the given comparison and type. */
    void setp(unsigned p, Cmp cmp, CmpType type, Operand a, Operand b);
    /** dst = pred[p] ? a : b. */
    void selp(unsigned dst, unsigned p, Operand a, Operand b);

    // --- Memory ---
    void ldg(unsigned dst, Operand addr, int32_t offset = 0);
    void stg(Operand addr, Operand value, int32_t offset = 0);
    void lds(unsigned dst, Operand addr, int32_t offset = 0);
    void sts(Operand addr, Operand value, int32_t offset = 0);
    void ldc(unsigned dst, Operand addr, int32_t offset = 0);
    void atomgAdd(unsigned dst, Operand addr, Operand value,
                  int32_t offset = 0);

    // --- Control ---
    /**
     * Conditional branch on predicate p (negated if `negated`),
     * reconverging at `reconv`.
     */
    void braIf(unsigned p, bool negated, Label target, Label reconv);
    /** Unconditional jump (no divergence possible). */
    void jump(Label target);
    void bar();
    void exit();

    /** Patch labels and return the finished program. */
    KernelProgram finish();

  private:
    KernelProgram _prog;
    std::vector<int64_t> _labels;       // label -> pc or -1
    std::vector<std::pair<uint32_t, Label>> _target_patches;
    std::vector<std::pair<uint32_t, Label>> _reconv_patches;
    int8_t _next_guard = -1;
    bool _next_guard_negated = false;

    Instruction &emit(Instruction inst);
    void emit3(Op op, unsigned dst, Operand a, Operand b, Operand c);
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_KERNEL_HH
