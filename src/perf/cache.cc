#include "perf/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace gpusimpow {
namespace perf {

CacheModel::CacheModel(const CacheParams &p) : _p(p)
{
    GSP_ASSERT(p.line_bytes > 0 && p.assoc > 0, "bad cache geometry");
    GSP_ASSERT(p.size_bytes >= p.line_bytes * p.assoc,
               "cache smaller than one set");
    _sets = p.size_bytes / (p.line_bytes * p.assoc);
    GSP_ASSERT(isPow2(_sets), "cache set count must be a power of two");
    _lines.resize(static_cast<size_t>(_sets) * p.assoc);
}

CacheModel::Line *
CacheModel::findLine(uint64_t addr, uint64_t &set_base, uint64_t &tag)
{
    uint64_t line_addr = addr / _p.line_bytes;
    uint64_t set = line_addr & (_sets - 1);
    tag = line_addr >> floorLog2(_sets);
    set_base = set * _p.assoc;
    for (unsigned w = 0; w < _p.assoc; ++w) {
        Line &line = _lines[set_base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

bool
CacheModel::access(uint64_t addr, bool write)
{
    ++_accesses;
    ++_tick;
    uint64_t set_base = 0;
    uint64_t tag = 0;
    if (Line *line = findLine(addr, set_base, tag)) {
        line->lru = _tick;
        return true;
    }
    ++_misses;
    if (write && !_p.allocate_on_write)
        return false;
    // Fill into the LRU way.
    Line *victim = &_lines[set_base];
    for (unsigned w = 1; w < _p.assoc; ++w) {
        Line &cand = _lines[set_base + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (cand.lru < victim->lru)
            victim = &cand;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _tick;
    return false;
}

void
CacheModel::flush()
{
    for (auto &line : _lines)
        line.valid = false;
}

} // namespace perf
} // namespace gpusimpow
