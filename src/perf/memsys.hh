/**
 * @file
 * The chip-level memory system behind the cores' L1s: NoC transit,
 * shared L2 slices (when configured, Table II), memory controllers,
 * and GDDR5 channels. Requests carry real addresses; queueing shows
 * up through the DRAM bank/bus state and per-resource next-free
 * times, so bandwidth saturation and row locality are modeled
 * without a full discrete-event uncore.
 */

#ifndef GPUSIMPOW_PERF_MEMSYS_HH
#define GPUSIMPOW_PERF_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "config/gpu_config.hh"
#include "dram/gddr5.hh"
#include "perf/activity.hh"
#include "perf/cache.hh"

namespace gpusimpow {
namespace perf {

/** Chip-level memory system shared by all cores. */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Issue one line-sized transaction from a core's LDST unit.
     * @param addr byte address (line aligned by the caller)
     * @param write true for stores
     * @param shader_cycle issue time in shader cycles
     * @return completion time in shader cycles (data back at core)
     */
    uint64_t access(uint64_t addr, bool write, uint64_t shader_cycle);

    /** Uncore activity counters (flits, L2, MC, DRAM). */
    const MemActivity &activity() const { return _activity; }

    /** Invalidate L2 state between kernels. */
    void flushCaches();

    /**
     * Re-derive the cached clock-domain ratios after a core-clock
     * change (DVFS thermal throttling). The DRAM clock is its own
     * domain, so only the DRAM-per-uncore ratio moves. Only legal
     * between kernels.
     */
    void setClocks(const ClockConfig &clocks);

    /** DRAM power-model activity for an interval ending now. */
    dram::DramActivity dramActivity(double elapsed_s) const;

    /** Copy the cumulative DRAM channel counters into activity(). */
    void updateDramCounters();

    /** Reset interval counters (keeps cache/bank state). */
    void resetCounters();

  private:
    GpuConfig _cfg;
    double _uncore_per_shader;   // uncore cycles per shader cycle
    double _dram_per_uncore;     // dram cycles per uncore cycle
    unsigned _line_bytes;
    unsigned _burst_bytes;       // bytes moved per DRAM burst
    unsigned _flits_per_line;

    std::vector<CacheModel> _l2_slices;
    std::vector<dram::DramChannel> _channels;
    /** NoC request/response serialization points (next-free). */
    uint64_t _noc_req_free = 0;
    uint64_t _noc_resp_free = 0;

    MemActivity _activity;

    uint64_t toUncore(uint64_t shader_cycle) const;
    uint64_t toShader(uint64_t uncore_cycle) const;

    /** Service a line at DRAM; returns uncore completion cycle. */
    uint64_t dramService(uint64_t addr, bool write, uint64_t uncore_now);
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_MEMSYS_HH
