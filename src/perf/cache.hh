/**
 * @file
 * Set-associative cache timing/occupancy model with true LRU,
 * shared by the I-cache, L1D, constant caches, and L2 slices. Tags
 * only — data correctness is handled by the functional memories.
 */

#ifndef GPUSIMPOW_PERF_CACHE_HH
#define GPUSIMPOW_PERF_CACHE_HH

#include <cstdint>
#include <vector>

namespace gpusimpow {
namespace perf {

/** Cache geometry. */
struct CacheParams
{
    /** Total capacity in bytes. */
    unsigned size_bytes = 16384;
    /** Line size in bytes. */
    unsigned line_bytes = 128;
    /** Ways per set. */
    unsigned assoc = 4;
    /** Allocate lines on write misses (false = write-around). */
    bool allocate_on_write = false;
};

/** LRU set-associative tag array. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheParams &p);

    /**
     * Perform one access.
     * @param addr byte address
     * @param write true for a store
     * @return true on hit
     */
    bool access(uint64_t addr, bool write);

    /** Invalidate all lines (between kernels). */
    void flush();

    /** Accesses so far. */
    uint64_t accesses() const { return _accesses; }
    /** Misses so far. */
    uint64_t misses() const { return _misses; }
    /** Number of sets (for tests). */
    unsigned numSets() const { return _sets; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lru = 0;
    };

    CacheParams _p;
    unsigned _sets;
    std::vector<Line> _lines;   // sets x assoc
    uint64_t _tick = 0;
    uint64_t _accesses = 0;
    uint64_t _misses = 0;

    Line *findLine(uint64_t addr, uint64_t &set_base, uint64_t &tag);
};

} // namespace perf
} // namespace gpusimpow

#endif // GPUSIMPOW_PERF_CACHE_HH
