#include "thermal/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpusimpow {
namespace thermal {

namespace {

/**
 * Stock-cooler area law constants (see stockHeatsinkResistance).
 * Calibrated against the golden-anchor blackscholes runs: GT240
 * (105.1 mm^2, ~39 W on-die) and GTX580 (305.5 mm^2, ~143.6 W
 * on-die) both settle within a couple of kelvin of the nominal 350 K
 * junction temperature at the default 318 K case-ambient.
 */
constexpr double stock_hs_k = 252.0;
constexpr double stock_hs_area_exp = 1.25;

/** Vertical-path sizing floor: a zero-area block would otherwise be
 *  thermally disconnected from the heatsink (singular matrix). */
constexpr double min_block_area_mm2 = 0.5;

/** Steady-state fixed-point controls. */
constexpr double steady_tol_k = 1e-4;
constexpr unsigned steady_max_iterations = 1000;

/** Transient substep cap; longer spans snap to the steady solution
 *  (they exceed every time constant by orders of magnitude). Shared
 *  by both integrators so switching them never changes which spans
 *  snap. */
constexpr unsigned max_substeps = 50000;

/** Propagator cache bound: distinct dts come from trace sampling
 *  (one or two per kernel) plus per-kernel whole-span marches, so
 *  the cache stays tiny in practice; the bound only stops a
 *  pathological caller from growing it without limit. */
constexpr std::size_t max_cached_propagators = 64;

/** Scaling-and-squaring target: halve the step until the scaled
 *  ||M*h|| is at most this, where the Taylor series converges in a
 *  handful of terms with no cancellation. */
constexpr double expm_norm_target = 0.5;

/**
 * Solve the dense symmetric-positive system A*x = b in place with
 * Gaussian elimination + partial pivoting. n is tiny (block count +
 * heatsink, typically <= 10), so O(n^3) is irrelevant. This is the
 * historical one-shot solver the cached factorization replicates —
 * kept as the bit-identity oracle behind solveLinearReference().
 */
std::vector<double>
solveDense(std::vector<double> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    GSP_ASSERT(a.size() == n * n, "thermal matrix shape mismatch");
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::fabs(a[row * n + col]) >
                std::fabs(a[pivot * n + col]))
                pivot = row;
        if (pivot != col) {
            for (std::size_t k = 0; k < n; ++k)
                std::swap(a[col * n + k], a[pivot * n + k]);
            std::swap(b[col], b[pivot]);
        }
        double diag = a[col * n + col];
        GSP_ASSERT(std::fabs(diag) > 1e-30,
                   "singular thermal network (isolated node?)");
        for (std::size_t row = col + 1; row < n; ++row) {
            double f = a[row * n + col] / diag;
            if (f == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double sum = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            sum -= a[row * n + k] * x[k];
        x[row] = sum / a[row * n + row];
    }
    return x;
}

/** Infinity norm of a dense row-major n x n matrix. */
double
infNorm(const std::vector<double> &m, std::size_t n)
{
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            row += std::fabs(m[i * n + j]);
        norm = std::max(norm, row);
    }
    return norm;
}

/** out = a * b for dense row-major n x n matrices. */
void
matMul(const std::vector<double> &a, const std::vector<double> &b,
       std::size_t n, std::vector<double> &out)
{
    out.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k) {
            double aik = a[i * n + k];
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < n; ++j)
                out[i * n + j] += aik * b[k * n + j];
        }
}

} // namespace

double
stockHeatsinkResistance(double die_area_mm2)
{
    GSP_ASSERT(die_area_mm2 > 0.0, "die area must be positive");
    return stock_hs_k / std::pow(die_area_mm2, stock_hs_area_exp);
}

double
SteadyResult::maxTemp() const
{
    double t = 0.0;
    for (double v : temps_k)
        t = std::max(t, v);
    return t;
}

std::size_t
SteadyResult::hottestBlock() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < temps_k.size(); ++i)
        if (temps_k[i] > temps_k[best])
            best = i;
    return best;
}

ThermalNetwork::ThermalNetwork(const BlockSet &blocks,
                               const ThermalConfig &tc)
    : _blocks(blocks), _ambient_k(tc.ambient_k)
{
    GSP_ASSERT(blocks.size() >= 2, "thermal network needs >= 2 blocks");
    GSP_ASSERT(blocks.names.size() == blocks.area_mm2.size(),
               "block names/areas mismatch");
    const std::size_t num_blocks = blocks.size();
    const std::size_t hs = num_blocks; // heatsink node index
    _n = num_blocks + 1;
    _g.assign(_n * _n, 0.0);
    _g_amb.assign(_n, 0.0);
    _c.assign(_n, 0.0);

    double die_area = 0.0;
    for (std::size_t i = 0; i < blocks.numDie(); ++i)
        die_area += std::max(blocks.area_mm2[i], min_block_area_mm2);

    // Vertical path of every die block through TIM/spreader to the
    // heatsink, sized by block area; lateral spreading couples die
    // neighbors in layout order.
    for (std::size_t i = 0; i < blocks.numDie(); ++i) {
        double area = std::max(blocks.area_mm2[i], min_block_area_mm2);
        setConductance(i, hs, area / tc.r_die_k_mm2_per_w);
        _c[i] = area * tc.c_die_j_per_k_mm2;
        if (i + 1 < blocks.numDie())
            setConductance(i, i + 1, 1.0 / tc.r_lateral_k_per_w);
    }

    // The DRAM devices sit on the board with their own (airflow)
    // path to ambient — no coupling into the die heatsink.
    std::size_t dram = blocks.dramIndex();
    _g_amb[dram] = 1.0 / tc.r_dram_k_per_w;
    _c[dram] = tc.c_dram_j_per_k;

    // Heatsink to ambient: explicit resistance, or the stock area
    // law scaled by the cooling preset.
    double r_hs = tc.r_heatsink_k_per_w > 0.0
                      ? tc.r_heatsink_k_per_w
                      : stockHeatsinkResistance(die_area) *
                            tc.cooling_scale;
    GSP_ASSERT(r_hs > 0.0, "heatsink resistance must be positive");
    _g_amb[hs] = 1.0 / r_hs;
    _c[hs] = tc.c_heatsink_j_per_k;

    _integrator = tc.integrator == "euler" ? Integrator::euler
                                           : Integrator::exact;

    // Forward Euler is stable below 2*C/G per node; keep a 2x
    // margin. The network is immutable, so compute it once here.
    double dt = 1e30;
    for (std::size_t i = 0; i < _n; ++i) {
        double g = _g_amb[i];
        for (std::size_t j = 0; j < _n; ++j)
            if (j != i)
                g += conductance(i, j);
        if (g > 0.0 && _c[i] > 0.0)
            dt = std::min(dt, _c[i] / g);
    }
    _max_stable_dt = 0.5 * dt;

    factorize();
}

void
ThermalNetwork::setConductance(std::size_t a, std::size_t b, double g)
{
    _g[a * _n + b] = g;
    _g[b * _n + a] = g;
}

void
ThermalNetwork::factorize()
{
    // Assemble A exactly as the historical per-solve path did:
    // diag(sum of conductances) - offdiagonal conductances, with the
    // ambient boundary conductance folded into the diagonal. The
    // accumulation order matters — the factorization must reproduce
    // solveDense bit for bit.
    _a_sys.assign(_n * _n, 0.0);
    for (std::size_t i = 0; i < _n; ++i) {
        double diag = _g_amb[i];
        for (std::size_t j = 0; j < _n; ++j) {
            if (i == j)
                continue;
            double g = conductance(i, j);
            diag += g;
            _a_sys[i * _n + j] = -g;
        }
        _a_sys[i * _n + i] = diag;
    }

    // Partial-pivoted LU in solveDense's exact elimination order:
    // same pivot choice, same full-row swaps, same subtraction range
    // (k >= col), same f == 0 skip. Row swaps carry the already
    // stored multipliers with them, which is exactly what makes the
    // packed layout's forward substitution replay the historical
    // interleaved b-updates bit for bit (swaps are exact, so
    // commuting them past earlier eliminations only relabels rows).
    _lu = _a_sys;
    _pivot.assign(_n, 0);
    const std::size_t n = _n;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::fabs(_lu[row * n + col]) >
                std::fabs(_lu[pivot * n + col]))
                pivot = row;
        _pivot[col] = pivot;
        if (pivot != col)
            for (std::size_t k = 0; k < n; ++k)
                std::swap(_lu[col * n + k], _lu[pivot * n + k]);
        double diag = _lu[col * n + col];
        GSP_ASSERT(std::fabs(diag) > 1e-30,
                   "singular thermal network (isolated node?)");
        for (std::size_t row = col + 1; row < n; ++row) {
            double f = _lu[row * n + col] / diag;
            if (f == 0.0) {
                _lu[row * n + col] = 0.0;
                continue;
            }
            for (std::size_t k = col; k < n; ++k)
                _lu[row * n + k] -= f * _lu[col * n + k];
            // The eliminated entry is never read again as matrix
            // data; store the multiplier there (packed LU).
            _lu[row * n + col] = f;
        }
    }
}

void
ThermalNetwork::assembleRhs(const std::vector<double> &powers_w,
                            std::vector<double> &b) const
{
    b.resize(_n);
    for (std::size_t i = 0; i < _n; ++i)
        b[i] = (i < powers_w.size() ? powers_w[i] : 0.0) +
               _g_amb[i] * _ambient_k;
}

void
ThermalNetwork::solveLinearInto(const std::vector<double> &powers_w,
                                std::vector<double> &nodes_out) const
{
    GSP_ASSERT(powers_w.size() == _blocks.size(),
               "power vector does not match block set");
    assembleRhs(powers_w, nodes_out);
    const std::size_t n = _n;
    std::vector<double> &b = nodes_out;
    // Row permutation + forward substitution with the stored
    // multipliers: the same axpy sequence the historical interleaved
    // elimination applied to b, element for element.
    for (std::size_t col = 0; col < n; ++col) {
        if (_pivot[col] != col)
            std::swap(b[col], b[_pivot[col]]);
        for (std::size_t row = col + 1; row < n; ++row) {
            double f = _lu[row * n + col];
            if (f == 0.0)
                continue;
            b[row] -= f * b[col];
        }
    }
    // Back substitution against U, in place (x[row] only reads
    // b[row] and already-computed x[k > row]).
    for (std::size_t row = n; row-- > 0;) {
        double sum = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            sum -= _lu[row * n + k] * b[k];
        b[row] = sum / _lu[row * n + row];
    }
}

std::vector<double>
ThermalNetwork::solveLinear(const std::vector<double> &powers_w) const
{
    std::vector<double> nodes;
    solveLinearInto(powers_w, nodes);
    return nodes;
}

std::vector<double>
ThermalNetwork::solveLinearReference(
    const std::vector<double> &powers_w) const
{
    GSP_ASSERT(powers_w.size() == _blocks.size(),
               "power vector does not match block set");
    std::vector<double> b;
    assembleRhs(powers_w, b);
    return solveDense(_a_sys, std::move(b));
}

SteadyResult
ThermalNetwork::solveSteady(
    const std::function<
        std::vector<double>(const std::vector<double> &)> &power_at,
    const std::vector<double> *warm_start_k) const
{
    GSP_TRACE_SPAN("thermal/steady");
    static obs::Counter &c_solves = obs::Registry::instance().counter(
        "thermal/steady_solves", "steady-state network solves");
    static obs::Counter &c_iters = obs::Registry::instance().counter(
        "thermal/steady_iterations",
        "fixed-point iterations across steady solves");
    static obs::Counter &c_warm = obs::Registry::instance().counter(
        "thermal/steady_warm_starts",
        "steady solves started from a previous solution");
    static obs::Counter &c_nonconv =
        obs::Registry::instance().counter(
            "thermal/steady_nonconverged",
            "steady solves that exhausted the iteration budget");
    static obs::Histogram &h_iters =
        obs::Registry::instance().histogram(
            "thermal/steady_iterations_per_solve",
            "fixed-point iterations per steady solve");
    c_solves.add(1);

    SteadyResult result;
    if (warm_start_k && warm_start_k->size() == _blocks.size()) {
        result.temps_k = *warm_start_k;
        c_warm.add(1);
    } else {
        result.temps_k.assign(_blocks.size(), _ambient_k);
    }
    result.heatsink_k = _ambient_k;

    bool capped = false;
    std::vector<double> nodes;
    for (unsigned iter = 0; iter < steady_max_iterations; ++iter) {
        c_iters.add(1);
        std::vector<double> powers = power_at(result.temps_k);
        solveLinearInto(powers, nodes);
        capped = false;
        double delta = 0.0;
        for (std::size_t i = 0; i < _blocks.size(); ++i) {
            double t = nodes[i];
            if (t > runaway_cap_k) {
                t = runaway_cap_k;
                capped = true;
            }
            delta = std::max(delta, std::fabs(t - result.temps_k[i]));
            result.temps_k[i] = t;
        }
        result.heatsink_k = std::min(nodes[_n - 1], runaway_cap_k);
        result.iterations = iter + 1;
        if (delta < steady_tol_k) {
            // A fixed point pinned at the cap is thermal runaway,
            // not convergence.
            result.converged = !capped;
            h_iters.record(result.iterations);
            return result;
        }
    }
    result.converged = false;
    c_nonconv.add(1);
    h_iters.record(result.iterations);
    warn("thermal steady solve did not converge after ",
         steady_max_iterations,
         " fixed-point iterations (hottest block ",
         result.maxTemp(), " K)");
    return result;
}

ThermalNetwork::State
ThermalNetwork::ambientState() const
{
    State s;
    s.temps_k.assign(_n, _ambient_k);
    s.initialized = true;
    return s;
}

const ThermalNetwork::Propagator &
ThermalNetwork::propagatorFor(double dt_s) const
{
    std::lock_guard<std::mutex> lock(_prop_mutex);
    for (const auto &p : _propagators)
        if (p->dt_s == dt_s)
            return *p;
    if (_propagators.size() >= max_cached_propagators)
        _propagators.clear();

    const std::size_t n = _n;
    // dT/dt = M*T + C^-1*u with M = -C^-1*A: the LTI system whose
    // exact discrete update we precompute.
    std::vector<double> m(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        GSP_ASSERT(_c[i] > 0.0,
                   "thermal node without heat capacity");
        for (std::size_t j = 0; j < n; ++j)
            m[i * n + j] = -_a_sys[i * n + j] / _c[i];
    }

    // Scaling and squaring: halve the step until ||M*h|| is small,
    // Taylor-sum S(h) = integral of e^(M*s) ds over [0, h], then
    // double the step back up with P(2h) = P(h)^2 and
    // Q(2h) = P(h)*Q(h) + Q(h).
    unsigned squarings = 0;
    double scaled_norm = infNorm(m, n) * dt_s;
    while (scaled_norm > expm_norm_target && squarings < 64) {
        scaled_norm *= 0.5;
        ++squarings;
    }
    double h = std::ldexp(dt_s, -static_cast<int>(squarings));

    // S = sum_k M^k * h^(k+1) / (k+1)!  (term recurrence
    // T_k = M*T_(k-1) * h/(k+1), T_0 = h*I).
    std::vector<double> term(n * n, 0.0), s_mat(n * n, 0.0);
    std::vector<double> tmp(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        term[i * n + i] = h;
    s_mat = term;
    for (unsigned k = 1; k < 64; ++k) {
        matMul(m, term, n, tmp);
        double scale = h / static_cast<double>(k + 1);
        for (double &v : tmp)
            v *= scale;
        term.swap(tmp);
        double tn = infNorm(term, n);
        for (std::size_t i = 0; i < n * n; ++i)
            s_mat[i] += term[i];
        if (tn <= infNorm(s_mat, n) * 1e-18)
            break;
    }

    auto prop = std::make_unique<Propagator>();
    prop->dt_s = dt_s;
    // P = I + M*S; Q = S*C^-1 (column scaling).
    matMul(m, s_mat, n, prop->p);
    for (std::size_t i = 0; i < n; ++i)
        prop->p[i * n + i] += 1.0;
    prop->q.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            prop->q[i * n + j] = s_mat[i * n + j] / _c[j];

    for (unsigned sq = 0; sq < squarings; ++sq) {
        // Q first: it needs the un-squared P.
        matMul(prop->p, prop->q, n, tmp);
        for (std::size_t i = 0; i < n * n; ++i)
            prop->q[i] = tmp[i] + prop->q[i];
        matMul(prop->p, prop->p, n, tmp);
        prop->p.swap(tmp);
    }

    _propagators.push_back(std::move(prop));
    return *_propagators.back();
}

void
ThermalNetwork::advanceExact(State &state,
                             const std::vector<double> &powers_w,
                             double dt_s) const
{
    const Propagator &prop = propagatorFor(dt_s);
    const std::size_t n = _n;
    assembleRhs(powers_w, state.scratch2);
    state.scratch.resize(n);
    const std::vector<double> &t = state.temps_k;
    const std::vector<double> &u = state.scratch2;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        const double *prow = prop.p.data() + i * n;
        const double *qrow = prop.q.data() + i * n;
        for (std::size_t j = 0; j < n; ++j)
            acc += prow[j] * t[j] + qrow[j] * u[j];
        state.scratch[i] = std::min(acc, runaway_cap_k);
    }
    state.temps_k.swap(state.scratch);
}

void
ThermalNetwork::advanceEuler(State &state,
                             const std::vector<double> &powers_w,
                             double dt_s) const
{
    double steps_needed = dt_s / _max_stable_dt;
    unsigned steps =
        std::max(1u, static_cast<unsigned>(std::ceil(steps_needed)));
    double h = dt_s / steps;
    state.scratch.resize(_n);
    std::vector<double> &next = state.scratch;
    for (unsigned s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i < _n; ++i) {
            double flow =
                (i < powers_w.size() ? powers_w[i] : 0.0) +
                _g_amb[i] * (_ambient_k - state.temps_k[i]);
            for (std::size_t j = 0; j < _n; ++j)
                if (j != i)
                    flow += conductance(i, j) *
                            (state.temps_k[j] - state.temps_k[i]);
            next[i] = std::min(state.temps_k[i] + h * flow / _c[i],
                               runaway_cap_k);
        }
        state.temps_k.swap(next);
    }
}

void
ThermalNetwork::advance(State &state,
                        const std::vector<double> &powers_w,
                        double dt_s) const
{
    GSP_ASSERT(powers_w.size() == _blocks.size(),
               "power vector does not match block set");
    if (!state.initialized)
        state = ambientState();
    GSP_ASSERT(state.temps_k.size() == _n,
               "thermal state does not match network");
    if (dt_s <= 0.0)
        return;

    if (dt_s / _max_stable_dt > static_cast<double>(max_substeps)) {
        // The span dwarfs every time constant: the trajectory has
        // long since settled at the fixed-power steady solution.
        // (Shared by both integrators — it also keeps the exact
        // path's squaring count bounded.)
        solveLinearInto(powers_w, state.scratch);
        for (std::size_t i = 0; i < _n; ++i)
            state.temps_k[i] =
                std::min(state.scratch[i], runaway_cap_k);
        return;
    }

    if (_integrator == Integrator::exact)
        advanceExact(state, powers_w, dt_s);
    else
        advanceEuler(state, powers_w, dt_s);
}

} // namespace thermal
} // namespace gpusimpow
