#include "thermal/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "config/gpu_config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpusimpow {
namespace thermal {

namespace {

/**
 * Stock-cooler area law constants (see stockHeatsinkResistance).
 * Calibrated against the golden-anchor blackscholes runs: GT240
 * (105.1 mm^2, ~39 W on-die) and GTX580 (305.5 mm^2, ~143.6 W
 * on-die) both settle within a couple of kelvin of the nominal 350 K
 * junction temperature at the default 318 K case-ambient.
 */
constexpr double stock_hs_k = 252.0;
constexpr double stock_hs_area_exp = 1.25;

/** Vertical-path sizing floor: a zero-area block would otherwise be
 *  thermally disconnected from the heatsink (singular matrix). */
constexpr double min_block_area_mm2 = 0.5;

/** Steady-state fixed-point controls. */
constexpr double steady_tol_k = 1e-4;
constexpr unsigned steady_max_iterations = 1000;

/** Transient substep cap; longer spans snap to the steady solution
 *  (they exceed every time constant by orders of magnitude). */
constexpr unsigned max_substeps = 50000;

/**
 * Solve the dense symmetric-positive system A*x = b in place with
 * Gaussian elimination + partial pivoting. n is tiny (block count +
 * heatsink, typically <= 10), so O(n^3) is irrelevant.
 */
std::vector<double>
solveDense(std::vector<double> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    GSP_ASSERT(a.size() == n * n, "thermal matrix shape mismatch");
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::fabs(a[row * n + col]) >
                std::fabs(a[pivot * n + col]))
                pivot = row;
        if (pivot != col) {
            for (std::size_t k = 0; k < n; ++k)
                std::swap(a[col * n + k], a[pivot * n + k]);
            std::swap(b[col], b[pivot]);
        }
        double diag = a[col * n + col];
        GSP_ASSERT(std::fabs(diag) > 1e-30,
                   "singular thermal network (isolated node?)");
        for (std::size_t row = col + 1; row < n; ++row) {
            double f = a[row * n + col] / diag;
            if (f == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double sum = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            sum -= a[row * n + k] * x[k];
        x[row] = sum / a[row * n + row];
    }
    return x;
}

} // namespace

double
stockHeatsinkResistance(double die_area_mm2)
{
    GSP_ASSERT(die_area_mm2 > 0.0, "die area must be positive");
    return stock_hs_k / std::pow(die_area_mm2, stock_hs_area_exp);
}

double
SteadyResult::maxTemp() const
{
    double t = 0.0;
    for (double v : temps_k)
        t = std::max(t, v);
    return t;
}

std::size_t
SteadyResult::hottestBlock() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < temps_k.size(); ++i)
        if (temps_k[i] > temps_k[best])
            best = i;
    return best;
}

ThermalNetwork::ThermalNetwork(const BlockSet &blocks,
                               const ThermalConfig &tc)
    : _blocks(blocks), _ambient_k(tc.ambient_k)
{
    GSP_ASSERT(blocks.size() >= 2, "thermal network needs >= 2 blocks");
    GSP_ASSERT(blocks.names.size() == blocks.area_mm2.size(),
               "block names/areas mismatch");
    const std::size_t num_blocks = blocks.size();
    const std::size_t hs = num_blocks; // heatsink node index
    _n = num_blocks + 1;
    _g.assign(_n * _n, 0.0);
    _g_amb.assign(_n, 0.0);
    _c.assign(_n, 0.0);

    double die_area = 0.0;
    for (std::size_t i = 0; i < blocks.numDie(); ++i)
        die_area += std::max(blocks.area_mm2[i], min_block_area_mm2);

    // Vertical path of every die block through TIM/spreader to the
    // heatsink, sized by block area; lateral spreading couples die
    // neighbors in layout order.
    for (std::size_t i = 0; i < blocks.numDie(); ++i) {
        double area = std::max(blocks.area_mm2[i], min_block_area_mm2);
        setConductance(i, hs, area / tc.r_die_k_mm2_per_w);
        _c[i] = area * tc.c_die_j_per_k_mm2;
        if (i + 1 < blocks.numDie())
            setConductance(i, i + 1, 1.0 / tc.r_lateral_k_per_w);
    }

    // The DRAM devices sit on the board with their own (airflow)
    // path to ambient — no coupling into the die heatsink.
    std::size_t dram = blocks.dramIndex();
    _g_amb[dram] = 1.0 / tc.r_dram_k_per_w;
    _c[dram] = tc.c_dram_j_per_k;

    // Heatsink to ambient: explicit resistance, or the stock area
    // law scaled by the cooling preset.
    double r_hs = tc.r_heatsink_k_per_w > 0.0
                      ? tc.r_heatsink_k_per_w
                      : stockHeatsinkResistance(die_area) *
                            tc.cooling_scale;
    GSP_ASSERT(r_hs > 0.0, "heatsink resistance must be positive");
    _g_amb[hs] = 1.0 / r_hs;
    _c[hs] = tc.c_heatsink_j_per_k;
}

void
ThermalNetwork::setConductance(std::size_t a, std::size_t b, double g)
{
    _g[a * _n + b] = g;
    _g[b * _n + a] = g;
}

std::vector<double>
ThermalNetwork::solveLinear(const std::vector<double> &powers_w) const
{
    GSP_ASSERT(powers_w.size() == _blocks.size(),
               "power vector does not match block set");
    // A = diag(sum of conductances) - offdiagonal conductances;
    // b = injected power + ambient boundary current.
    std::vector<double> a(_n * _n, 0.0);
    std::vector<double> b(_n, 0.0);
    for (std::size_t i = 0; i < _n; ++i) {
        double diag = _g_amb[i];
        for (std::size_t j = 0; j < _n; ++j) {
            if (i == j)
                continue;
            double g = conductance(i, j);
            diag += g;
            a[i * _n + j] = -g;
        }
        a[i * _n + i] = diag;
        b[i] = (i < powers_w.size() ? powers_w[i] : 0.0) +
               _g_amb[i] * _ambient_k;
    }
    return solveDense(std::move(a), std::move(b));
}

SteadyResult
ThermalNetwork::solveSteady(
    const std::function<
        std::vector<double>(const std::vector<double> &)> &power_at)
    const
{
    GSP_TRACE_SPAN("thermal/steady");
    static obs::Counter &c_solves = obs::Registry::instance().counter(
        "thermal/steady_solves", "steady-state network solves");
    static obs::Counter &c_iters = obs::Registry::instance().counter(
        "thermal/steady_iterations",
        "fixed-point iterations across steady solves");
    c_solves.add(1);

    SteadyResult result;
    result.temps_k.assign(_blocks.size(), _ambient_k);
    result.heatsink_k = _ambient_k;

    bool capped = false;
    for (unsigned iter = 0; iter < steady_max_iterations; ++iter) {
        c_iters.add(1);
        std::vector<double> powers = power_at(result.temps_k);
        std::vector<double> nodes = solveLinear(powers);
        capped = false;
        double delta = 0.0;
        for (std::size_t i = 0; i < _blocks.size(); ++i) {
            double t = nodes[i];
            if (t > runaway_cap_k) {
                t = runaway_cap_k;
                capped = true;
            }
            delta = std::max(delta, std::fabs(t - result.temps_k[i]));
            result.temps_k[i] = t;
        }
        result.heatsink_k = std::min(nodes[_n - 1], runaway_cap_k);
        result.iterations = iter + 1;
        if (delta < steady_tol_k) {
            // A fixed point pinned at the cap is thermal runaway,
            // not convergence.
            result.converged = !capped;
            return result;
        }
    }
    result.converged = false;
    return result;
}

ThermalNetwork::State
ThermalNetwork::ambientState() const
{
    State s;
    s.temps_k.assign(_n, _ambient_k);
    s.initialized = true;
    return s;
}

double
ThermalNetwork::maxStableDt() const
{
    // Forward Euler is stable below 2*C/G per node; keep a 2x margin.
    double dt = 1e30;
    for (std::size_t i = 0; i < _n; ++i) {
        double g = _g_amb[i];
        for (std::size_t j = 0; j < _n; ++j)
            if (j != i)
                g += conductance(i, j);
        if (g > 0.0 && _c[i] > 0.0)
            dt = std::min(dt, _c[i] / g);
    }
    return 0.5 * dt;
}

void
ThermalNetwork::advance(State &state,
                        const std::vector<double> &powers_w,
                        double dt_s) const
{
    GSP_ASSERT(powers_w.size() == _blocks.size(),
               "power vector does not match block set");
    if (!state.initialized)
        state = ambientState();
    GSP_ASSERT(state.temps_k.size() == _n,
               "thermal state does not match network");
    if (dt_s <= 0.0)
        return;

    double dt_max = maxStableDt();
    double steps_needed = dt_s / dt_max;
    if (steps_needed > static_cast<double>(max_substeps)) {
        // The span dwarfs every time constant: the trajectory has
        // long since settled at the fixed-power steady solution.
        std::vector<double> nodes = solveLinear(powers_w);
        for (std::size_t i = 0; i < _n; ++i)
            state.temps_k[i] = std::min(nodes[i], runaway_cap_k);
        return;
    }

    unsigned steps =
        std::max(1u, static_cast<unsigned>(std::ceil(steps_needed)));
    double h = dt_s / steps;
    std::vector<double> next(_n, 0.0);
    for (unsigned s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i < _n; ++i) {
            double flow =
                (i < powers_w.size() ? powers_w[i] : 0.0) +
                _g_amb[i] * (_ambient_k - state.temps_k[i]);
            for (std::size_t j = 0; j < _n; ++j)
                if (j != i)
                    flow += conductance(i, j) *
                            (state.temps_k[j] - state.temps_k[i]);
            next[i] = std::min(state.temps_k[i] + h * flow / _c[i],
                               runaway_cap_k);
        }
        state.temps_k.swap(next);
    }
}

} // namespace thermal
} // namespace gpusimpow
