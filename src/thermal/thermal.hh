/**
 * @file
 * Closed-loop thermal subsystem: a compact RC thermal network in the
 * HotSpot tradition. The die is partitioned into coarse blocks (one
 * per core cluster, plus the shared L2 and the uncore controllers),
 * each coupled vertically through the package to a lumped heatsink
 * node and laterally to its die neighbors; the external GDDR5 devices
 * form a separate board-level block with their own path to ambient.
 *
 * Two solvers close the power-temperature loop:
 *  - solveSteady(): fixed-point iteration power -> temperature ->
 *    (tempLeakFactor-scaled) leakage -> power for whole-kernel
 *    reports, with thermal-runaway detection;
 *  - advance(): a transient forward integrator driven by the sampled
 *    power waveform, producing a per-block temperature waveform.
 *
 * Temperature becomes a simulated *output* instead of the static
 * config constant, which is what lets leakage-temperature compounding
 * and DVFS thermal throttling be studied at all.
 */

#ifndef GPUSIMPOW_THERMAL_THERMAL_HH
#define GPUSIMPOW_THERMAL_THERMAL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace gpusimpow {

struct ThermalConfig;

namespace thermal {

/**
 * The coarse block decomposition shared by the power and thermal
 * layers: block powers, areas, and temperatures are always vectors in
 * this fixed order:
 *
 *   [cluster0 .. clusterN-1] [l2 (only when present)] [uncore] [dram]
 *
 * The die blocks (everything before dram) sit under the heatsink; the
 * DRAM devices are off-package with their own path to ambient.
 */
struct BlockSet
{
    /** Display names, e.g. "cluster0", "l2", "uncore", "dram". */
    std::vector<std::string> names;
    /** Die area per block, mm^2 (the dram entry is board-level and
     *  unused by the vertical-resistance sizing). */
    std::vector<double> area_mm2;
    /** Core clusters in the decomposition. */
    std::size_t num_clusters = 0;
    /** True when a shared-L2 block is present. */
    bool has_l2 = false;

    std::size_t size() const { return names.size(); }
    /** Die blocks (all but the off-package dram block). */
    std::size_t numDie() const { return size() - 1; }
    std::size_t l2Index() const { return num_clusters; }
    std::size_t uncoreIndex() const
    {
        return num_clusters + (has_l2 ? 1 : 0);
    }
    std::size_t dramIndex() const { return uncoreIndex() + 1; }
};

/** Outcome of a steady-state (fixed-point) solve. */
struct SteadyResult
{
    /** Solved block temperatures, K (BlockSet order). */
    std::vector<double> temps_k;
    /** Heatsink node temperature, K. */
    double heatsink_k = 0.0;
    /** Fixed-point iterations performed. */
    unsigned iterations = 0;
    /**
     * False when the leakage-temperature loop diverged (thermal
     * runaway): temperatures are then clamped at runaway_cap_k and
     * the reported power is a lower bound on the physical disaster.
     */
    bool converged = false;

    /** Hottest block temperature, K. */
    double maxTemp() const;
    /** Index of the hottest block. */
    std::size_t hottestBlock() const;
};

/**
 * The RC network itself. Node order: die blocks, the dram block, and
 * one lumped heatsink node; ambient is a fixed-temperature boundary.
 * Construction is cheap (a handful of conductances); solving is a
 * dense Gaussian elimination over <= ~20 nodes.
 */
class ThermalNetwork
{
  public:
    /**
     * @param blocks die/board decomposition (names + areas)
     * @param tc cooling parameters; tc.r_heatsink_k_per_w <= 0
     *        auto-sizes the heatsink to the die area (stock area
     *        law x tc.cooling_scale)
     */
    ThermalNetwork(const BlockSet &blocks, const ThermalConfig &tc);

    const BlockSet &blocks() const { return _blocks; }
    /** Ambient (boundary) temperature, K. */
    double ambient() const { return _ambient_k; }
    /** Effective heatsink-to-ambient resistance in use, K/W. */
    double heatsinkResistance() const { return 1.0 / _g_amb.back(); }

    /**
     * Temperatures for one fixed power assignment (no leakage
     * feedback): solve G*T = P with the ambient boundary folded in.
     * @param powers_w heat per block, W (BlockSet order)
     * @return node temperatures: blocks then heatsink (size()+1)
     */
    std::vector<double>
    solveLinear(const std::vector<double> &powers_w) const;

    /**
     * Closed-loop steady state: iterate temperature -> power until
     * the hottest block moves < tol_k between iterations.
     * @param power_at callback mapping block temperatures (BlockSet
     *        order) to block powers, W — this is where the caller
     *        applies tempLeakFactor to the leakage share
     */
    SteadyResult
    solveSteady(const std::function<std::vector<double>(
                    const std::vector<double> &)> &power_at) const;

    /** Transient node state: block temperatures plus heatsink, K. */
    struct State
    {
        std::vector<double> temps_k; // blocks then heatsink
        bool initialized = false;
    };

    /** Every node at ambient (cold start). */
    State ambientState() const;

    /**
     * Integrate the network forward by dt_s under constant block
     * powers, substepping internally for forward-Euler stability.
     * Spans much longer than the slowest time constant snap to the
     * fixed-power steady solution instead of wasting substeps.
     */
    void advance(State &state, const std::vector<double> &powers_w,
                 double dt_s) const;

    /** Largest externally meaningful Euler step, s. */
    double maxStableDt() const;

    /** Temperatures above this clamp as diverged (thermal runaway). */
    static constexpr double runaway_cap_k = 500.0;

  private:
    BlockSet _blocks;
    double _ambient_k;
    std::size_t _n; // block nodes + heatsink
    /** Symmetric node-to-node conductances, W/K (dense, row-major). */
    std::vector<double> _g;
    /** Per-node conductance to the ambient boundary, W/K. */
    std::vector<double> _g_amb;
    /** Per-node heat capacitance, J/K. */
    std::vector<double> _c;

    double conductance(std::size_t a, std::size_t b) const
    {
        return _g[a * _n + b];
    }
    void setConductance(std::size_t a, std::size_t b, double g);
};

/**
 * Stock-cooler area law: heatsink-to-ambient resistance of the
 * cooler a card of this die size ships with, K/W. Larger dies ship
 * disproportionately beefier coolers (vapor chambers, more heatpipes),
 * hence the superlinear area exponent. Calibrated so the steady-state
 * solve lands at the nominal 350 K junction temperature on both
 * Table II anchor configurations running blackscholes.
 */
double stockHeatsinkResistance(double die_area_mm2);

} // namespace thermal
} // namespace gpusimpow

#endif // GPUSIMPOW_THERMAL_THERMAL_HH
