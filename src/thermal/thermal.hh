/**
 * @file
 * Closed-loop thermal subsystem: a compact RC thermal network in the
 * HotSpot tradition. The die is partitioned into coarse blocks (one
 * per core cluster, plus the shared L2 and the uncore controllers),
 * each coupled vertically through the package to a lumped heatsink
 * node and laterally to its die neighbors; the external GDDR5 devices
 * form a separate board-level block with their own path to ambient.
 *
 * Two solvers close the power-temperature loop:
 *  - solveSteady(): fixed-point iteration power -> temperature ->
 *    (tempLeakFactor-scaled) leakage -> power for whole-kernel
 *    reports, with thermal-runaway detection;
 *  - advance(): a transient integrator driven by the sampled power
 *    waveform, producing a per-block temperature waveform.
 *
 * The conductance system is constant for the life of a network, so
 * the constructor factors it once (partial-pivoted LU, performing the
 * elimination in the exact order the historical one-shot dense solve
 * used, so every solution stays bit-identical) and every linear solve
 * afterwards is an O(n^2) substitution. Transients integrate either
 * with the historical forward-Euler substepping or — the default —
 * with an exact LTI propagator per distinct time step (the RC network
 * under piecewise-constant power is linear time-invariant, so
 * T' = P*T + Q*u is exact for any dt), cached keyed on dt.
 *
 * Temperature becomes a simulated *output* instead of the static
 * config constant, which is what lets leakage-temperature compounding
 * and DVFS thermal throttling be studied at all.
 */

#ifndef GPUSIMPOW_THERMAL_THERMAL_HH
#define GPUSIMPOW_THERMAL_THERMAL_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gpusimpow {

struct ThermalConfig;

namespace thermal {

/**
 * The coarse block decomposition shared by the power and thermal
 * layers: block powers, areas, and temperatures are always vectors in
 * this fixed order:
 *
 *   [cluster0 .. clusterN-1] [l2 (only when present)] [uncore] [dram]
 *
 * The die blocks (everything before dram) sit under the heatsink; the
 * DRAM devices are off-package with their own path to ambient.
 */
struct BlockSet
{
    /** Display names, e.g. "cluster0", "l2", "uncore", "dram". */
    std::vector<std::string> names;
    /** Die area per block, mm^2 (the dram entry is board-level and
     *  unused by the vertical-resistance sizing). */
    std::vector<double> area_mm2;
    /** Core clusters in the decomposition. */
    std::size_t num_clusters = 0;
    /** True when a shared-L2 block is present. */
    bool has_l2 = false;

    std::size_t size() const { return names.size(); }
    /** Die blocks (all but the off-package dram block). */
    std::size_t numDie() const { return size() - 1; }
    std::size_t l2Index() const { return num_clusters; }
    std::size_t uncoreIndex() const
    {
        return num_clusters + (has_l2 ? 1 : 0);
    }
    std::size_t dramIndex() const { return uncoreIndex() + 1; }
};

/** Outcome of a steady-state (fixed-point) solve. */
struct SteadyResult
{
    /** Solved block temperatures, K (BlockSet order). */
    std::vector<double> temps_k;
    /** Heatsink node temperature, K. */
    double heatsink_k = 0.0;
    /** Fixed-point iterations performed. */
    unsigned iterations = 0;
    /**
     * False when the leakage-temperature loop diverged (thermal
     * runaway): temperatures are then clamped at runaway_cap_k and
     * the reported power is a lower bound on the physical disaster.
     */
    bool converged = false;

    /** Hottest block temperature, K. */
    double maxTemp() const;
    /** Index of the hottest block. */
    std::size_t hottestBlock() const;
};

/**
 * The RC network itself. Node order: die blocks, the dram block, and
 * one lumped heatsink node; ambient is a fixed-temperature boundary.
 * Construction assembles and LU-factors the conductance system (a
 * handful of conductances, <= ~20 nodes); each solve afterwards is an
 * O(n^2) substitution against the cached factorization.
 *
 * Const methods are safe to call concurrently from multiple threads
 * (distinct State objects per thread for advance()): the factored
 * system is immutable after construction and the per-dt propagator
 * cache is mutex-guarded.
 */
class ThermalNetwork
{
  public:
    /** Transient integration scheme (ThermalConfig::integrator). */
    enum class Integrator
    {
        /** Historical forward-Euler substepping (validation). */
        euler,
        /** Exact LTI propagator per distinct dt (default). */
        exact,
    };

    /**
     * @param blocks die/board decomposition (names + areas)
     * @param tc cooling parameters; tc.r_heatsink_k_per_w <= 0
     *        auto-sizes the heatsink to the die area (stock area
     *        law x tc.cooling_scale)
     */
    ThermalNetwork(const BlockSet &blocks, const ThermalConfig &tc);

    const BlockSet &blocks() const { return _blocks; }
    /** Ambient (boundary) temperature, K. */
    double ambient() const { return _ambient_k; }
    /** Effective heatsink-to-ambient resistance in use, K/W. */
    double heatsinkResistance() const { return 1.0 / _g_amb.back(); }
    /** Transient integration scheme in use. */
    Integrator integrator() const { return _integrator; }

    /**
     * Temperatures for one fixed power assignment (no leakage
     * feedback): solve G*T = P with the ambient boundary folded in.
     * @param powers_w heat per block, W (BlockSet order)
     * @return node temperatures: blocks then heatsink (size()+1)
     */
    std::vector<double>
    solveLinear(const std::vector<double> &powers_w) const;

    /**
     * Allocation-free solveLinear() into caller-owned scratch:
     * nodes_out is resized to size()+1 once and reused afterwards.
     * Bit-identical to solveLinear() (it is the implementation).
     */
    void solveLinearInto(const std::vector<double> &powers_w,
                         std::vector<double> &nodes_out) const;

    /**
     * Bit-identity oracle: the historical one-shot path — assemble
     * the dense system and eliminate it from scratch with partial
     * pivoting, exactly as every solve did before the factorization
     * was hoisted to construction. Kept (only) so tests and benches
     * can prove solveLinear() bit-identical to it and measure the
     * factored path against it; not a production entry point.
     */
    std::vector<double>
    solveLinearReference(const std::vector<double> &powers_w) const;

    /**
     * Closed-loop steady state: iterate temperature -> power until
     * the hottest block moves < tol_k between iterations.
     * @param power_at callback mapping block temperatures (BlockSet
     *        order) to block powers, W — this is where the caller
     *        applies tempLeakFactor to the leakage share
     * @param warm_start_k optional block temperatures (BlockSet
     *        order) to start the fixed-point iteration from — the
     *        previous solution when the caller solves a sequence of
     *        nearby operating points (governor bisection, kernels of
     *        one scenario). Ignored (cold start at ambient) when
     *        null or of the wrong size; the iteration converges to
     *        the same fixed point within tolerance either way.
     */
    SteadyResult
    solveSteady(const std::function<std::vector<double>(
                    const std::vector<double> &)> &power_at,
                const std::vector<double> *warm_start_k = nullptr)
        const;

    /** Transient node state: block temperatures plus heatsink, K. */
    struct State
    {
        std::vector<double> temps_k; // blocks then heatsink
        bool initialized = false;
        /** advance() scratch (next temperatures / propagator input),
         *  kept here so concurrent advances on distinct States never
         *  share a buffer and nothing allocates per call. */
        std::vector<double> scratch;
        std::vector<double> scratch2;
    };

    /** Every node at ambient (cold start). */
    State ambientState() const;

    /**
     * Integrate the network forward by dt_s under constant block
     * powers. With the exact integrator this is two cached mat-vecs
     * regardless of dt; with Euler it substeps internally for
     * stability. Spans much longer than the slowest time constant
     * snap to the fixed-power steady solution instead.
     */
    void advance(State &state, const std::vector<double> &powers_w,
                 double dt_s) const;

    /** Largest externally meaningful Euler step, s (precomputed at
     *  construction). */
    double maxStableDt() const { return _max_stable_dt; }

    /** Temperatures above this clamp as diverged (thermal runaway). */
    static constexpr double runaway_cap_k = 500.0;

  private:
    BlockSet _blocks;
    double _ambient_k;
    std::size_t _n; // block nodes + heatsink
    /** Symmetric node-to-node conductances, W/K (dense, row-major). */
    std::vector<double> _g;
    /** Per-node conductance to the ambient boundary, W/K. */
    std::vector<double> _g_amb;
    /** Per-node heat capacitance, J/K. */
    std::vector<double> _c;

    /** Assembled system matrix A (row-major): diag(sum of
     *  conductances) - offdiagonals, the ambient boundary folded into
     *  the diagonal. Kept unfactored for the propagator builds. */
    std::vector<double> _a_sys;
    /** Packed LU of _a_sys: U on and above the diagonal, the
     *  elimination multipliers below it (final row order). */
    std::vector<double> _lu;
    /** Partial-pivot row chosen at each elimination column. */
    std::vector<std::size_t> _pivot;
    /** Hoisted maxStableDt() (the network is immutable). */
    double _max_stable_dt = 0.0;
    Integrator _integrator = Integrator::exact;

    /** Discrete exact update for one dt: T' = P*T + Q*u, with u the
     *  same right-hand side the linear solve uses (block powers plus
     *  the ambient boundary current). */
    struct Propagator
    {
        double dt_s = 0.0;
        std::vector<double> p; // n x n
        std::vector<double> q; // n x n
    };
    /** Per-dt propagator cache. Guarded by _prop_mutex: the network
     *  is logically const while simulator threads advance through
     *  it, so the lazily built propagators must synchronize. Entries
     *  are pointer-stable (unique_ptr) so a reference outlives the
     *  lock. */
    mutable std::mutex _prop_mutex;
    mutable std::vector<std::unique_ptr<Propagator>> _propagators;

    double conductance(std::size_t a, std::size_t b) const
    {
        return _g[a * _n + b];
    }
    void setConductance(std::size_t a, std::size_t b, double g);
    /** Assemble _a_sys and factor it into _lu/_pivot (constructor
     *  tail, once the conductances are final). */
    void factorize();
    /** b[i] = powers + ambient boundary current (the shared RHS of
     *  the linear solve and the exact propagator). */
    void assembleRhs(const std::vector<double> &powers_w,
                     std::vector<double> &b) const;
    const Propagator &propagatorFor(double dt_s) const;
    void advanceEuler(State &state,
                      const std::vector<double> &powers_w,
                      double dt_s) const;
    void advanceExact(State &state,
                      const std::vector<double> &powers_w,
                      double dt_s) const;
};

/**
 * Stock-cooler area law: heatsink-to-ambient resistance of the
 * cooler a card of this die size ships with, K/W. Larger dies ship
 * disproportionately beefier coolers (vapor chambers, more heatpipes),
 * hence the superlinear area exponent. Calibrated so the steady-state
 * solve lands at the nominal 350 K junction temperature on both
 * Table II anchor configurations running blackscholes.
 */
double stockHeatsinkResistance(double die_area_mm2);

} // namespace thermal
} // namespace gpusimpow

#endif // GPUSIMPOW_THERMAL_THERMAL_HH
