/**
 * @file
 * Hierarchical power/area reports: the "Power & Area Results" output
 * of Fig. 1. A report is a tree of components (GPU -> cores -> WCU /
 * register file / execution units / LDSTU ...) with area, leakage,
 * peak dynamic, and runtime dynamic power per node, supporting the
 * arbitrary-depth power profiles of SectionV-B (Table V).
 */

#ifndef GPUSIMPOW_POWER_REPORT_HH
#define GPUSIMPOW_POWER_REPORT_HH

#include <string>
#include <vector>

namespace gpusimpow {
namespace power {

/** One component node of a power report. */
struct PowerNode
{
    /** Component name ("Register File", "NoC", ...). */
    std::string name;
    /** Silicon area, mm^2 (own, excluding children). */
    double area_mm2 = 0.0;
    /** Subthreshold leakage, W (own). */
    double sub_leakage_w = 0.0;
    /** Gate leakage, W (own). */
    double gate_leakage_w = 0.0;
    /** Peak dynamic power, W (own). */
    double peak_dynamic_w = 0.0;
    /** Runtime dynamic power over the evaluated interval, W (own). */
    double runtime_dynamic_w = 0.0;
    /** Sub-components. */
    std::vector<PowerNode> children;

    /** Add and return a child node. */
    PowerNode &child(const std::string &child_name);

    /** Find a descendant by path ("Cores/Core/WCU"), or nullptr. */
    const PowerNode *find(const std::string &path) const;

    /** Total static power (sub + gate leakage), including children. */
    double totalStatic() const;
    /** Total subthreshold leakage only, including children. */
    double totalSubLeakage() const;
    /** Total gate leakage only, including children. */
    double totalGateLeakage() const;
    /**
     * Multiply the subthreshold leakage of this node and every
     * descendant by factor — how the thermal subsystem rescales a
     * report subtree from the nominal junction temperature to a
     * solved block temperature (gate leakage is only weakly
     * temperature dependent and stays put).
     */
    void scaleSubLeakage(double factor);
    /** Total runtime dynamic power, including children. */
    double totalDynamic() const;
    /** Total area, including children. */
    double totalArea() const;
    /** Total peak dynamic power, including children. */
    double totalPeak() const;

    /** Render an indented table like Table V of the paper. */
    std::string format(int indent = 0) const;

    /**
     * Flatten the tree into "path field value" lines (one metric per
     * line, '/'-joined paths, %.9g values) — the stable serialization
     * used by the golden-anchor regression tests.
     */
    std::string flatten(const std::string &prefix = "") const;
};

/** A full evaluation result. */
struct PowerReport
{
    /** Root of the component tree (the GPU chip). */
    PowerNode gpu;
    /** Off-chip GDDR5 DRAM power, W (reported separately, as the
     *  paper does: "this table does not include the power consumed
     *  by the external DRAM"). */
    double dram_w = 0.0;
    /** Short-circuit power share contained in the dynamic numbers
     *  (second term of Eq. 1), W. Informational. */
    double short_circuit_w = 0.0;
    /** Interval the runtime numbers integrate over, s. */
    double elapsed_s = 0.0;

    /** Chip static power, W. */
    double staticPower() const { return gpu.totalStatic(); }
    /** Chip runtime dynamic power, W. */
    double dynamicPower() const { return gpu.totalDynamic(); }
    /** Chip total runtime power, W. */
    double totalPower() const { return staticPower() + dynamicPower(); }
    /** Chip area, mm^2. */
    double area() const { return gpu.totalArea(); }

    /** Render the whole report. */
    std::string format() const;
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_REPORT_HH
