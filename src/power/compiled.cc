#include "power/compiled.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace gpusimpow {
namespace power {

CompiledPowerModel::CompiledPowerModel(const CompiledModelInputs &in)
{
    GSP_TRACE_SPAN("power/compile");
    GSP_ASSERT(in.cfg && in.tech && in.core && in.dram,
               "compiled power model needs a fully populated input set");
    const GpuConfig &cfg = *in.cfg;

    _n_cores = cfg.numCores();
    _clusters = cfg.clusters;
    _cores_per_cluster = cfg.cores_per_cluster;
    _l2_present = cfg.l2.present;
    _base_power_scale = in.base_power_scale;
    _core_base_dyn_w = cfg.calib.core_base_dyn_w;
    _cluster_base_w = cfg.calib.cluster_base_w;
    _global_sched_w = cfg.calib.global_sched_w;
    _short_circuit_frac = cfg.calib.short_circuit_frac;
    _nominal_leak_factor = tech::tempLeakFactorAt(in.tech->temperature);
    _dram_hz = cfg.clocks.dram_hz;
    _dram_channels = cfg.dram.channels;
    _dram = in.dram;
    _blocks = in.blocks;
    _l2_block = _l2_present ? _blocks.l2Index() : 0;
    _uncore_block = _blocks.uncoreIndex();

    // --- dynamic-energy rows ---
    in.core->dynCoefficients(_core_coeff);

    using M = perf::MemCounterIndex;
    _mem_coeff[kUncoreNoc][M::noc_flits] = in.noc_flit_energy_j;
    _mem_coeff[kUncoreMc][M::mc_requests] = in.mc_request_energy_j;
    double bits_per_burst = static_cast<double>(cfg.dram.burst_length) *
                            cfg.dram.channel_bits;
    _mem_coeff[kUncoreMc][M::dram_read_bursts] =
        bits_per_burst * in.mc_bit_energy_j;
    _mem_coeff[kUncoreMc][M::dram_write_bursts] =
        bits_per_burst * in.mc_bit_energy_j;
    _mem_coeff[kUncorePcie][M::pcie_bytes] = in.pcie_byte_energy_j;
    _uncore_busy_w = {in.noc_busy_w, in.mc_busy_w, in.pcie_active_w};

    // --- static vectors ---
    _core_statics[kCoreWcu] = in.core->wcuStatics();
    _core_statics[kCoreRf] = in.core->rfStatics();
    _core_statics[kCoreEu] = in.core->euStatics();
    _core_statics[kCoreLdst] = in.core->ldstStatics();
    ComponentStatics undiff;
    // The lumped residual was measured at nominal supply; leakage
    // power tracks roughly V^2 over DVFS-sized supply excursions.
    undiff.sub_leakage_w = cfg.calib.undiff_core_static_w *
                           (cfg.tech.vdd_scale * cfg.tech.vdd_scale);
    undiff.area_mm2 = cfg.calib.undiff_core_area_mm2;
    _core_statics[kCoreUndiff] = undiff;

    if (_l2_present) {
        // The paper's LDSTU "encapsulates ... the L2 caches"; the
        // shared L2 is spread across the cores' LDSTUs in the report
        // but keeps its own thermal block, so its share stays a
        // separate compiled component.
        _l2_share.area_mm2 = in.l2.area_mm2 / _n_cores;
        _l2_share.sub_leakage_w = in.l2.sub_leakage_w / _n_cores;
        _l2_share.gate_leakage_w = in.l2.gate_leakage_w / _n_cores;
        _l2_share.peak_dynamic_w = in.l2.peak_dynamic_w / _n_cores;
        _l2_share_coeff[M::l2_reads] =
            in.l2_access_energy_j / _n_cores;
        _l2_share_coeff[M::l2_writes] =
            in.l2_access_energy_j / _n_cores;
    }

    _uncore_statics = {in.noc, in.mc, in.pcie};

    // LDSTU report-node constants with the folded L2 share.
    _ldst_node_area =
        _core_statics[kCoreLdst].area_mm2 + _l2_share.area_mm2;
    _ldst_node_gate = _core_statics[kCoreLdst].gate_leakage_w +
                      _l2_share.gate_leakage_w;
    _ldst_node_peak = _core_statics[kCoreLdst].peak_dynamic_w +
                      _l2_share.peak_dynamic_w;

    // Per-core gate-leakage total in PowerNode::totalGateLeakage()
    // traversal order (Base, WCU, RF, EU, LDSTU incl. L2 share,
    // Undiff) — gate leakage is temperature-invariant, so this is a
    // model constant.
    double gate = 0.0;
    gate += 0.0; // Base Power
    gate += _core_statics[kCoreWcu].gate_leakage_w;
    gate += _core_statics[kCoreRf].gate_leakage_w;
    gate += _core_statics[kCoreEu].gate_leakage_w;
    gate += _ldst_node_gate;
    gate += 0.0; // Undiff. Core
    _core_gate_total = gate;
}

void
CompiledPowerModel::evaluate(const perf::ChipActivity &act,
                             Eval &out) const
{
    evaluateImpl(act, nullptr, out);
}

void
CompiledPowerModel::evaluateAt(const perf::ChipActivity &act,
                               const std::vector<double> &block_temps_k,
                               Eval &out) const
{
    evaluateImpl(act, &block_temps_k, out);
}

void
CompiledPowerModel::evaluateImpl(const perf::ChipActivity &act,
                                 const std::vector<double> *temps,
                                 Eval &out) const
{
    GSP_ASSERT(act.cores.size() == _n_cores,
               "activity record does not match configuration");

    GSP_DCHECK(std::isfinite(act.elapsed_s),
               "non-finite interval duration ", act.elapsed_s);
    double elapsed = act.elapsed_s > 0.0 ? act.elapsed_s : 1.0;
    out.elapsed_s = elapsed;
    double cycles = act.shader_cycles > 0
                        ? static_cast<double>(act.shader_cycles)
                        : 1.0;
    double gpu_busy_frac =
        std::min(1.0, static_cast<double>(act.gpu_busy_cycles) / cycles);

    // Workspace (re)initialization: the vectors never shrink, so a
    // reused Eval performs no allocation. The per-core detail arrays
    // are fully overwritten by the loop below and only resized here.
    out.blocks.assign(_blocks.size(), BlockPower{});
    out.core_dyn.resize(static_cast<std::size_t>(_n_cores) *
                        kCoreComponents);
    out.core_sub.resize(static_cast<std::size_t>(_n_cores) *
                        kCoreComponents);
    out.sub_scale.assign(_blocks.size(), 1.0);
    if (temps && !temps->empty()) {
        GSP_ASSERT(temps->size() == _blocks.size(),
                   "temperature vector does not match block set");
        for (std::size_t b = 0; b < _blocks.size(); ++b)
            out.sub_scale[b] = subLeakScaleAt((*temps)[b]);
    }
    double r_l2 = _l2_present ? out.sub_scale[_l2_block] : 1.0;
    double r_uncore = out.sub_scale[_uncore_block];

    double mem_counters[perf::mem_activity_fields];
    perf::countersToArray(act.mem, mem_counters);

    // Folded per-core L2 shares at the L2 block's temperature (the
    // share is reported under each LDSTU but heats the L2 block).
    double l2_dyn_share =
        _l2_present
            ? perf::dotCountersRow(mem_counters,
                                   _l2_share_coeff.data(),
                                   perf::mem_activity_fields) /
                  elapsed
            : 0.0;
    double l2_sub_share = _l2_share.sub_leakage_w * r_l2;
    double l2_gate_share = _l2_share.gate_leakage_w;

    // --- cores: four dot products each, accumulated in the exact
    // traversal order of the report tree so the flat totals are
    // bit-identical to an assembled PowerReport ---
    double cores_dyn = 0.0;    // "Cores" subtree dynamic total
    double chip_static = 0.0;  // totalStatic() traversal order
    double analytic_dyn = 0.0; // short-circuit base (Eq. 1 share)
    double *cd = out.core_dyn.data();
    double *cs = out.core_sub.data();
    double counters[perf::core_activity_fields];
    for (unsigned i = 0; i < _n_cores; ++i) {
        const perf::CoreActivity &a = act.cores[i];
        double rc = out.sub_scale[coreBlock(i)];
        double resident_frac = std::min(
            1.0, static_cast<double>(a.cycles_resident) / cycles);
        double base =
            _core_base_dyn_w * _base_power_scale * resident_frac;
        perf::countersToArray(a, counters);
        double wcu = perf::dotCountersRow(counters,
                                          _core_coeff.wcu.data(),
                                          perf::core_activity_fields) /
                     elapsed;
        double rf = perf::dotCountersRow(counters,
                                         _core_coeff.rf.data(),
                                         perf::core_activity_fields) /
                    elapsed;
        double eu = perf::dotCountersRow(counters,
                                         _core_coeff.eu.data(),
                                         perf::core_activity_fields) /
                    elapsed;
        double ldst =
            perf::dotCountersRow(counters, _core_coeff.ldst.data(),
                                 perf::core_activity_fields) /
                elapsed +
            l2_dyn_share;
        cd[kCoreBase] = base;
        cd[kCoreWcu] = wcu;
        cd[kCoreRf] = rf;
        cd[kCoreEu] = eu;
        cd[kCoreLdst] = ldst;
        cd[kCoreUndiff] = 0.0;

        // Thermal leakage feedback as a scale of the static vector.
        double wcu_s = _core_statics[kCoreWcu].sub_leakage_w * rc;
        double rf_s = _core_statics[kCoreRf].sub_leakage_w * rc;
        double eu_s = _core_statics[kCoreEu].sub_leakage_w * rc;
        double ldst_s =
            _core_statics[kCoreLdst].sub_leakage_w * rc + l2_sub_share;
        double undiff_s =
            _core_statics[kCoreUndiff].sub_leakage_w * rc;
        cs[kCoreBase] = 0.0;
        cs[kCoreWcu] = wcu_s;
        cs[kCoreRf] = rf_s;
        cs[kCoreEu] = eu_s;
        cs[kCoreLdst] = ldst_s;
        cs[kCoreUndiff] = undiff_s;

        // Per-core totals in PowerNode traversal order.
        double core_dyn_total = 0.0;
        core_dyn_total += base;
        core_dyn_total += wcu;
        core_dyn_total += rf;
        core_dyn_total += eu;
        core_dyn_total += ldst;
        core_dyn_total += 0.0; // Undiff. Core

        double core_sub_total = 0.0;
        core_sub_total += 0.0; // Base Power
        core_sub_total += wcu_s;
        core_sub_total += rf_s;
        core_sub_total += eu_s;
        core_sub_total += ldst_s;
        core_sub_total += undiff_s;

        double core_static_total = 0.0;
        core_static_total += 0.0; // Base Power
        core_static_total +=
            wcu_s + _core_statics[kCoreWcu].gate_leakage_w;
        core_static_total +=
            rf_s + _core_statics[kCoreRf].gate_leakage_w;
        core_static_total +=
            eu_s + _core_statics[kCoreEu].gate_leakage_w;
        core_static_total += ldst_s + _ldst_node_gate;
        core_static_total += undiff_s + 0.0;

        // Analytic components feeding the short-circuit share
        // (second term of Eq. 1): WCU, RF, LDSTU.
        analytic_dyn += wcu;
        analytic_dyn += rf;
        analytic_dyn += ldst;

        // Block split: the core's power lands on its cluster block,
        // with the folded L2 shares moved back to the L2 block.
        BlockPower &cluster = out.blocks[coreBlock(i)];
        cluster.dynamic_w += core_dyn_total - l2_dyn_share;
        cluster.sub_leak_w += core_sub_total - l2_sub_share;
        cluster.fixed_w += _core_gate_total - l2_gate_share;

        cores_dyn += core_dyn_total;
        chip_static += core_static_total;
        cd += kCoreComponents;
        cs += kCoreComponents;
    }

    // Cluster activation and the global work-distribution engine
    // (SectionIII-D / Fig. 4 staircase) — the report's two extra
    // children under "Cores".
    double cluster_base_total = 0.0;
    for (uint64_t busy : act.cluster_busy_cycles) {
        cluster_base_total +=
            _cluster_base_w * _base_power_scale *
            std::min(1.0, static_cast<double>(busy) / cycles);
    }
    double sched_w = _global_sched_w * _base_power_scale * gpu_busy_frac;
    out.cluster_base_w = cluster_base_total;
    out.sched_w = sched_w;
    cores_dyn += cluster_base_total;
    cores_dyn += sched_w;

    // --- uncore: one busy-fraction term + one dot product each ---
    double noc_dyn =
        _uncore_busy_w[kUncoreNoc] * gpu_busy_frac +
        perf::dotCountersRow(mem_counters,
                             _mem_coeff[kUncoreNoc].data(),
                             perf::mem_activity_fields) /
            elapsed;
    analytic_dyn += noc_dyn;
    double mc_dyn =
        _uncore_busy_w[kUncoreMc] * gpu_busy_frac +
        perf::dotCountersRow(mem_counters, _mem_coeff[kUncoreMc].data(),
                             perf::mem_activity_fields) /
            elapsed;
    analytic_dyn += mc_dyn;
    double pcie_dyn =
        _uncore_busy_w[kUncorePcie] * gpu_busy_frac +
        perf::dotCountersRow(mem_counters,
                             _mem_coeff[kUncorePcie].data(),
                             perf::mem_activity_fields) /
            elapsed;
    out.uncore_dyn = {noc_dyn, mc_dyn, pcie_dyn};
    out.uncore_sub = {
        _uncore_statics[kUncoreNoc].sub_leakage_w * r_uncore,
        _uncore_statics[kUncoreMc].sub_leakage_w * r_uncore,
        _uncore_statics[kUncorePcie].sub_leakage_w * r_uncore};

    out.short_circuit_w = _short_circuit_frac /
                          (1.0 + _short_circuit_frac) * analytic_dyn;

    // Chip totals in PowerReport traversal order.
    double dynamic = 0.0;
    dynamic += cores_dyn;
    dynamic += noc_dyn;
    dynamic += mc_dyn;
    dynamic += pcie_dyn;
    out.dynamic_w = dynamic;

    chip_static += out.uncore_sub[kUncoreNoc] +
                   _uncore_statics[kUncoreNoc].gate_leakage_w;
    chip_static += out.uncore_sub[kUncoreMc] +
                   _uncore_statics[kUncoreMc].gate_leakage_w;
    chip_static += out.uncore_sub[kUncorePcie] +
                   _uncore_statics[kUncorePcie].gate_leakage_w;
    out.static_w = chip_static;

    // --- remaining block splits (legacy blockPowers order) ---
    if (_l2_present) {
        BlockPower &l2 = out.blocks[_l2_block];
        l2.dynamic_w = l2_dyn_share * _n_cores;
        l2.sub_leak_w = l2_sub_share * _n_cores;
        l2.fixed_w = l2_gate_share * _n_cores;
    }
    // Cluster activation lands in the cluster that earned it; the
    // global scheduler sits mid-die with the uncore controllers.
    for (std::size_t c = 0; c < act.cluster_busy_cycles.size(); ++c) {
        double busy = static_cast<double>(act.cluster_busy_cycles[c]);
        out.blocks[std::min<std::size_t>(c, _clusters - 1)].dynamic_w +=
            _cluster_base_w * _base_power_scale *
            std::min(1.0, busy / cycles);
    }
    BlockPower &uncore = out.blocks[_uncore_block];
    uncore.dynamic_w += sched_w;
    for (unsigned comp = 0; comp < kUncoreComponents; ++comp) {
        uncore.dynamic_w += out.uncore_dyn[comp];
        uncore.sub_leak_w += out.uncore_sub[comp];
        uncore.fixed_w += _uncore_statics[comp].gate_leakage_w;
    }

    // --- external DRAM: own supply and clock, so its power is a
    // fixed (feedback-free) share of its board-level block ---
    dram::DramActivity da;
    da.activates = act.mem.dram_activates;
    da.read_bursts = act.mem.dram_read_bursts;
    da.write_bursts = act.mem.dram_write_bursts;
    da.elapsed_s = elapsed;
    double total_dram_cycles = elapsed * _dram_hz * _dram_channels;
    double util = total_dram_cycles > 0.0
                      ? static_cast<double>(act.mem.dram_bus_cycles) /
                            total_dram_cycles
                      : 0.0;
    da.row_open_frac = std::min(1.0, 4.0 * util);
    out.dram_w = _dram->compute(da).total();
    out.blocks[_blocks.dramIndex()].fixed_w = out.dram_w;

    // Reused-Eval hygiene: the workspace vectors must have been
    // (re)sized for *this* model, and the totals a trace loop
    // integrates must be finite numbers — a stale or shared Eval
    // would trip these before it poisons a waveform.
    GSP_DCHECK(out.blocks.size() == _blocks.size() &&
                   out.core_dyn.size() ==
                       std::size_t(_n_cores) * kCoreComponents &&
                   out.core_sub.size() == out.core_dyn.size(),
               "Eval workspace shape does not match model");
    GSP_DCHECK(std::isfinite(out.dynamic_w) &&
                   std::isfinite(out.static_w) &&
                   std::isfinite(out.dram_w),
               "non-finite interval power totals: dyn ", out.dynamic_w,
               " static ", out.static_w, " dram ", out.dram_w);
}

PowerReport
CompiledPowerModel::assembleReport(const Eval &ev) const
{
    PowerReport rep;
    rep.elapsed_s = ev.elapsed_s;
    rep.short_circuit_w = ev.short_circuit_w;
    rep.dram_w = ev.dram_w;
    rep.gpu.name = "GPU";

    PowerNode &cores = rep.gpu.child("Cores");
    const double *cd = ev.core_dyn.data();
    const double *cs = ev.core_sub.data();
    for (unsigned i = 0; i < _n_cores; ++i) {
        PowerNode &core = cores.child("Core" + std::to_string(i));

        PowerNode &base = core.child("Base Power");
        base.runtime_dynamic_w = cd[kCoreBase];

        PowerNode &wcu = core.child("WCU");
        const ComponentStatics &ws = _core_statics[kCoreWcu];
        wcu.area_mm2 = ws.area_mm2;
        wcu.sub_leakage_w = cs[kCoreWcu];
        wcu.gate_leakage_w = ws.gate_leakage_w;
        wcu.peak_dynamic_w = ws.peak_dynamic_w;
        wcu.runtime_dynamic_w = cd[kCoreWcu];

        PowerNode &rf = core.child("Register File");
        const ComponentStatics &rs = _core_statics[kCoreRf];
        rf.area_mm2 = rs.area_mm2;
        rf.sub_leakage_w = cs[kCoreRf];
        rf.gate_leakage_w = rs.gate_leakage_w;
        rf.peak_dynamic_w = rs.peak_dynamic_w;
        rf.runtime_dynamic_w = cd[kCoreRf];

        PowerNode &eu = core.child("Execution Units");
        const ComponentStatics &es = _core_statics[kCoreEu];
        eu.area_mm2 = es.area_mm2;
        eu.sub_leakage_w = cs[kCoreEu];
        eu.gate_leakage_w = es.gate_leakage_w;
        eu.peak_dynamic_w = es.peak_dynamic_w;
        eu.runtime_dynamic_w = cd[kCoreEu];

        PowerNode &ldst = core.child("LDSTU");
        ldst.area_mm2 = _ldst_node_area;
        ldst.sub_leakage_w = cs[kCoreLdst];
        ldst.gate_leakage_w = _ldst_node_gate;
        ldst.peak_dynamic_w = _ldst_node_peak;
        ldst.runtime_dynamic_w = cd[kCoreLdst];

        PowerNode &undiff = core.child("Undiff. Core");
        undiff.sub_leakage_w = cs[kCoreUndiff];
        undiff.area_mm2 = _core_statics[kCoreUndiff].area_mm2;

        cd += kCoreComponents;
        cs += kCoreComponents;
    }
    PowerNode &cluster_base = cores.child("Cluster Base");
    cluster_base.runtime_dynamic_w = ev.cluster_base_w;
    PowerNode &sched = cores.child("Global Scheduler");
    sched.runtime_dynamic_w = ev.sched_w;

    static const char *const uncore_names[kUncoreComponents] = {
        "NoC", "Memory Controller", "PCIe Controller"};
    for (unsigned comp = 0; comp < kUncoreComponents; ++comp) {
        PowerNode &node = rep.gpu.child(uncore_names[comp]);
        const ComponentStatics &s = _uncore_statics[comp];
        node.area_mm2 = s.area_mm2;
        node.sub_leakage_w = ev.uncore_sub[comp];
        node.gate_leakage_w = s.gate_leakage_w;
        node.peak_dynamic_w = s.peak_dynamic_w;
        node.runtime_dynamic_w = ev.uncore_dyn[comp];
    }
    return rep;
}

} // namespace power
} // namespace gpusimpow
