#include "power/batched.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpusimpow {
namespace power {

BatchedPowerEvaluator::BatchedPowerEvaluator(
    std::vector<const CompiledPowerModel *> variants)
    : _variants(std::move(variants))
{
    GSP_ASSERT(!_variants.empty(),
               "batched evaluator needs at least one variant");
    _n_cores = _variants[0]->_n_cores;

    constexpr unsigned cf = perf::core_activity_fields;
    constexpr unsigned mf = perf::mem_activity_fields;
    const std::size_t n_variants = _variants.size();
    _n_lanes = (n_variants + 3) & ~std::size_t(3);
    const std::size_t n_quads = _n_lanes / 4;

    // The counters of row length n, in the order dotCountersRow
    // accumulates them into its four partial-sum chains: chain k % 4
    // over the unrolled body, the tail appended to chain 0. Built
    // once per row length; the sparse quads keep this partition so
    // every surviving term lands in its original chain.
    auto chainOrder = [](unsigned n) {
        std::array<std::vector<unsigned>, 4> chains;
        unsigned main = n - n % 4;
        for (unsigned k = 0; k < main; ++k)
            chains[k % 4].push_back(k);
        for (unsigned k = main; k < n; ++k)
            chains[0].push_back(k);
        return chains;
    };
    const auto core_chains = chainOrder(cf);
    const auto mem_chains = chainOrder(mf);

    // Compress one component row across a quad of four variants:
    // keep a column only when some lane's coefficient is nonzero
    // (dropping `+= 0.0 * counter` terms is bit-neutral — counters
    // are non-negative finite, so no partial sum is ever -0.0).
    auto buildQuad = [](const std::array<std::vector<unsigned>, 4>
                            &chains,
                        const std::array<const double *, 4> &lanes,
                        std::vector<int32_t> &idx_pool,
                        std::vector<double> &coeff_pool) {
        SparseQuad quad;
        quad.off = idx_pool.size();
        for (unsigned chain = 0; chain < 4; ++chain) {
            for (unsigned k : chains[chain]) {
                bool any = false;
                for (const double *lane : lanes)
                    any |= lane && lane[k] != 0.0;
                if (!any)
                    continue;
                idx_pool.push_back(static_cast<int32_t>(k));
                for (const double *lane : lanes)
                    coeff_pool.push_back(lane ? lane[k] : 0.0);
                ++quad.counts[chain];
            }
        }
        return quad;
    };

    _core_quads.reserve(n_quads * rows_per_variant);
    _mem_quads.reserve(n_quads * rows_per_variant);
    for (std::size_t q = 0; q < n_quads; ++q) {
        std::array<const CompiledPowerModel *, 4> ms = {};
        for (unsigned j = 0; j < 4; ++j)
            if (q * 4 + j < n_variants)
                ms[j] = _variants[q * 4 + j];
        // Lane pointers for component r of each variant in the quad
        // (null lanes are constructor padding, all-zero).
        auto corePtr = [&](unsigned j, unsigned r) -> const double * {
            if (!ms[j])
                return nullptr;
            const CoreDynCoefficients &c = ms[j]->_core_coeff;
            switch (r) {
              case 0: return c.wcu.data();
              case 1: return c.rf.data();
              case 2: return c.eu.data();
              default: return c.ldst.data();
            }
        };
        auto memPtr = [&](unsigned j, unsigned r) -> const double * {
            if (!ms[j])
                return nullptr;
            if (r == 0)
                return ms[j]->_l2_share_coeff.data();
            constexpr UncoreComponent comps[] = {kUncoreNoc,
                                                 kUncoreMc,
                                                 kUncorePcie};
            return ms[j]->_mem_coeff[comps[r - 1]].data();
        };
        for (unsigned r = 0; r < rows_per_variant; ++r) {
            _core_quads.push_back(buildQuad(
                core_chains,
                {corePtr(0, r), corePtr(1, r), corePtr(2, r),
                 corePtr(3, r)},
                _core_idx, _core_coeff));
            _mem_quads.push_back(buildQuad(
                mem_chains,
                {memPtr(0, r), memPtr(1, r), memPtr(2, r),
                 memPtr(3, r)},
                _mem_idx, _mem_coeff));
        }
    }

    _core_base_scaled.reserve(n_variants);
    _cluster_base_scaled.reserve(n_variants);
    _sched_scaled.reserve(n_variants);
    _static_blocks.reserve(n_variants);

    for (std::size_t v = 0; v < n_variants; ++v) {
        const CompiledPowerModel &m = *_variants[v];
        GSP_ASSERT(m._n_cores == _n_cores,
                   "batched variants must share the activity shape");

        // evaluateImpl() multiplies these pairs left-to-right before
        // the per-interval factor, so hoisting the products out of
        // the interval loop is bit-neutral.
        _core_base_scaled.push_back(m._core_base_dyn_w *
                                    m._base_power_scale);
        _cluster_base_scaled.push_back(m._cluster_base_w *
                                       m._base_power_scale);
        _sched_scaled.push_back(m._global_sched_w *
                                m._base_power_scale);

        // Nominal-temperature block statics: evaluateImpl() rebuilds
        // these per interval, but with every sub_scale at 1.0 they
        // are activity-independent, so one pass here reproduces what
        // every interval of the scalar path computes — in the same
        // accumulation order, so the values are bit-identical.
        std::vector<BlockPower> blocks(m._blocks.size());
        double l2_sub_share = m._l2_share.sub_leakage_w;
        double l2_gate_share = m._l2_share.gate_leakage_w;
        for (unsigned c = 0; c < m._n_cores; ++c) {
            double wcu_s = m._core_statics[kCoreWcu].sub_leakage_w;
            double rf_s = m._core_statics[kCoreRf].sub_leakage_w;
            double eu_s = m._core_statics[kCoreEu].sub_leakage_w;
            double ldst_s = m._core_statics[kCoreLdst].sub_leakage_w +
                            l2_sub_share;
            double undiff_s =
                m._core_statics[kCoreUndiff].sub_leakage_w;
            double core_sub_total = 0.0;
            core_sub_total += 0.0; // Base Power
            core_sub_total += wcu_s;
            core_sub_total += rf_s;
            core_sub_total += eu_s;
            core_sub_total += ldst_s;
            core_sub_total += undiff_s;
            BlockPower &cluster = blocks[m.coreBlock(c)];
            cluster.sub_leak_w += core_sub_total - l2_sub_share;
            cluster.fixed_w += m._core_gate_total - l2_gate_share;
        }
        if (m._l2_present) {
            blocks[m._l2_block].sub_leak_w = l2_sub_share * m._n_cores;
            blocks[m._l2_block].fixed_w = l2_gate_share * m._n_cores;
        }
        BlockPower &uncore = blocks[m._uncore_block];
        for (unsigned comp = 0; comp < kUncoreComponents; ++comp) {
            uncore.sub_leak_w +=
                m._uncore_statics[comp].sub_leakage_w;
            uncore.fixed_w += m._uncore_statics[comp].gate_leakage_w;
        }
        // The DRAM board block's fixed share is the per-interval
        // dram_w; its static entry stays zero.
        _static_blocks.push_back(std::move(blocks));
    }
}

void
BatchedPowerEvaluator::evaluate(
    const std::vector<const perf::ChipActivity *> &acts,
    bool want_blocks, Workspace &ws,
    std::vector<BatchedKernelPower> &out) const
{
    GSP_TRACE_SPAN("power/batched_eval");
    static obs::Counter &c_evals = obs::Registry::instance().counter(
        "power/batched_evals",
        "batched matrix evaluations (one per kernel per group)");
    c_evals.add(1);

    const std::size_t n_variants = _variants.size();
    const std::size_t n_intervals = acts.size();
    // Doubles per packed value row in the product tiles: the four
    // component slots, each _n_lanes variants wide.
    const std::size_t row_stride = rows_per_variant * _n_lanes;

    out.resize(n_variants);
    for (std::size_t v = 0; v < n_variants; ++v) {
        BatchedKernelPower &o = out[v];
        o.n_intervals = n_intervals;
        o.n_blocks = want_blocks ? _variants[v]->_blocks.size() : 0;
        o.dynamic_w.assign(n_intervals, 0.0);
        o.dram_w.assign(n_intervals, 0.0);
        o.block_dynamic_w.assign(n_intervals * o.n_blocks, 0.0);
        o.static_blocks = _static_blocks[v];
    }
    if (n_intervals == 0)
        return;

    const perf::DotCountersSparseQuadFn quad =
        perf::dotCountersSparseQuadKernel();
    const std::size_t n_quads = _n_lanes / 4;
    GSP_DCHECK(_n_lanes % 4 == 0 &&
                   _core_quads.size() == n_quads * rows_per_variant &&
                   _mem_quads.size() == n_quads * rows_per_variant,
               "sparse quad stack shape mismatch: ", _n_lanes,
               " lanes, ", _core_quads.size(), "/", _mem_quads.size(),
               " quads");

    // Tile over intervals so the workspace footprint stays bounded
    // for arbitrarily long traces while each tile's packed rows stay
    // cache-hot across the whole coefficient stack.
    constexpr std::size_t interval_tile = 32;
    for (std::size_t tile0 = 0; tile0 < n_intervals;
         tile0 += interval_tile) {
        std::size_t tile_n =
            std::min(interval_tile, n_intervals - tile0);

        // Phase 1: pack the tile's counters into the SoA matrix.
        ws.acts.clear();
        for (std::size_t li = 0; li < tile_n; ++li) {
            GSP_ASSERT(acts[tile0 + li]->cores.size() == _n_cores,
                       "activity record does not match configuration");
            ws.acts.append(*acts[tile0 + li]);
        }

        // Phase 2: the full (interval, core) x (variant, component)
        // product — the bulk of the scalar path's arithmetic — via
        // the sparse SIMD quads, each output already divided by its
        // interval's elapsed time (the division every consumer of a
        // dot applies in evaluateImpl()).
        ws.core_prod.resize(tile_n * _n_cores * row_stride);
        ws.mem_prod.resize(tile_n * row_stride);
        for (std::size_t li = 0; li < tile_n; ++li) {
            const perf::ChipActivity &act = *acts[tile0 + li];
            double elapsed = act.elapsed_s > 0.0 ? act.elapsed_s : 1.0;
            for (unsigned c = 0; c < _n_cores; ++c) {
                const double *values =
                    ws.acts.coreRow(li, c);
                double *outrow = ws.core_prod.data() +
                                 (li * _n_cores + c) * row_stride;
                for (std::size_t q = 0; q < n_quads; ++q) {
                    for (unsigned r = 0; r < rows_per_variant; ++r) {
                        const SparseQuad &g =
                            _core_quads[q * rows_per_variant + r];
                        quad(values, _core_idx.data() + g.off,
                             _core_coeff.data() + g.off * 4,
                             g.counts, elapsed,
                             outrow + r * _n_lanes + q * 4);
                    }
                }
            }
            const double *values = ws.acts.memRow(li);
            double *outrow = ws.mem_prod.data() + li * row_stride;
            for (std::size_t q = 0; q < n_quads; ++q) {
                for (unsigned r = 0; r < rows_per_variant; ++r) {
                    const SparseQuad &g =
                        _mem_quads[q * rows_per_variant + r];
                    quad(values, _mem_idx.data() + g.off,
                         _mem_coeff.data() + g.off * 4, g.counts,
                         elapsed, outrow + r * _n_lanes + q * 4);
                }
            }
        }

        // Phase 3: per-(interval, variant) scalar assembly,
        // replicating evaluateImpl()'s operation order exactly.
        // Activity fractions depend only on the interval, so they
        // hoist out of the variant loop (same expressions, same
        // bits).
        for (std::size_t li = 0; li < tile_n; ++li) {
            std::size_t gi = tile0 + li;
            const perf::ChipActivity &act = *acts[gi];
            double elapsed = act.elapsed_s > 0.0 ? act.elapsed_s : 1.0;
            double cycles =
                act.shader_cycles > 0
                    ? static_cast<double>(act.shader_cycles)
                    : 1.0;
            double gpu_busy_frac = std::min(
                1.0,
                static_cast<double>(act.gpu_busy_cycles) / cycles);
            ws.resident_frac.resize(_n_cores);
            for (unsigned c = 0; c < _n_cores; ++c)
                ws.resident_frac[c] = std::min(
                    1.0, static_cast<double>(
                             act.cores[c].cycles_resident) /
                             cycles);
            ws.cluster_frac.resize(act.cluster_busy_cycles.size());
            for (std::size_t c = 0;
                 c < act.cluster_busy_cycles.size(); ++c)
                ws.cluster_frac[c] = std::min(
                    1.0, static_cast<double>(
                             act.cluster_busy_cycles[c]) /
                             cycles);

            for (std::size_t v = 0; v < n_variants; ++v) {
                const CompiledPowerModel &m = *_variants[v];
                BatchedKernelPower &o = out[v];
                const double *q = ws.mem_prod.data() +
                                  li * row_stride + v;
                double *bd = want_blocks
                                 ? o.block_dynamic_w.data() +
                                       gi * o.n_blocks
                                 : nullptr;

                double l2_dyn_share = m._l2_present ? q[0] : 0.0;

                double cores_dyn = 0.0;
                for (unsigned c = 0; c < _n_cores; ++c) {
                    const double *p = ws.core_prod.data() +
                                      (li * _n_cores + c) *
                                          row_stride +
                                      v;
                    double base = _core_base_scaled[v] *
                                  ws.resident_frac[c];
                    double wcu = p[0];
                    double rf = p[_n_lanes];
                    double eu = p[2 * _n_lanes];
                    double ldst = p[3 * _n_lanes] + l2_dyn_share;
                    double core_dyn_total = 0.0;
                    core_dyn_total += base;
                    core_dyn_total += wcu;
                    core_dyn_total += rf;
                    core_dyn_total += eu;
                    core_dyn_total += ldst;
                    core_dyn_total += 0.0; // Undiff. Core
                    if (bd)
                        bd[m.coreBlock(c)] +=
                            core_dyn_total - l2_dyn_share;
                    cores_dyn += core_dyn_total;
                }

                double cluster_base_total = 0.0;
                for (double frac : ws.cluster_frac)
                    cluster_base_total +=
                        _cluster_base_scaled[v] * frac;
                double sched_w = _sched_scaled[v] * gpu_busy_frac;
                cores_dyn += cluster_base_total;
                cores_dyn += sched_w;

                double noc_dyn =
                    m._uncore_busy_w[kUncoreNoc] * gpu_busy_frac +
                    q[_n_lanes];
                double mc_dyn =
                    m._uncore_busy_w[kUncoreMc] * gpu_busy_frac +
                    q[2 * _n_lanes];
                double pcie_dyn =
                    m._uncore_busy_w[kUncorePcie] * gpu_busy_frac +
                    q[3 * _n_lanes];

                double dynamic = 0.0;
                dynamic += cores_dyn;
                dynamic += noc_dyn;
                dynamic += mc_dyn;
                dynamic += pcie_dyn;
                o.dynamic_w[gi] = dynamic;

                if (bd) {
                    if (m._l2_present)
                        bd[m._l2_block] = l2_dyn_share * m._n_cores;
                    for (std::size_t c = 0;
                         c < ws.cluster_frac.size(); ++c) {
                        bd[std::min<std::size_t>(c, m._clusters - 1)] +=
                            _cluster_base_scaled[v] *
                            ws.cluster_frac[c];
                    }
                    double &uncore = bd[m._uncore_block];
                    uncore += sched_w;
                    uncore += noc_dyn;
                    uncore += mc_dyn;
                    uncore += pcie_dyn;
                }

                dram::DramActivity da;
                da.activates = act.mem.dram_activates;
                da.read_bursts = act.mem.dram_read_bursts;
                da.write_bursts = act.mem.dram_write_bursts;
                da.elapsed_s = elapsed;
                double total_dram_cycles =
                    elapsed * m._dram_hz * m._dram_channels;
                double util =
                    total_dram_cycles > 0.0
                        ? static_cast<double>(
                              act.mem.dram_bus_cycles) /
                              total_dram_cycles
                        : 0.0;
                da.row_open_frac = std::min(1.0, 4.0 * util);
                o.dram_w[gi] = m._dram->compute(da).total();
            }
        }
    }
}

} // namespace power
} // namespace gpusimpow
