/**
 * @file
 * Batched multi-variant power evaluation: many activity intervals x
 * many compiled power models in one pass, in the GATSPI spirit of
 * turning per-node power evaluation into dense array kernels.
 *
 * A memoized sweep replays one timing-unique activity snapshot
 * through every power-only variant (process node, supply scale,
 * cooling) of that timing fingerprint. The scalar path re-walks the
 * per-interval loop of CompiledPowerModel::evaluate() once per
 * variant, re-widening the same counters every time. The batched
 * evaluator instead packs the snapshot's intervals into one SoA
 * activity matrix (perf::ActivityMatrix, countersToArray layout),
 * compresses each component's coefficient rows across variants into
 * sparse four-lane quads, and computes the whole interval x variant
 * product with the runtime-dispatched SIMD kernel
 * (perf::dotCountersSparseQuadKernel) before a cheap per-(interval,
 * variant) scalar assembly.
 *
 * Every arithmetic step of the assembly replicates the operation and
 * accumulation order of CompiledPowerModel::evaluateImpl() at the
 * nominal junction temperature, so each output is bit-identical to
 * the corresponding scalar evaluate() call — the invariant that lets
 * the engine switch batching on and off without changing a single
 * result bit (asserted by test_batched_power and bench_power_eval).
 */

#ifndef GPUSIMPOW_POWER_BATCHED_HH
#define GPUSIMPOW_POWER_BATCHED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perf/activity.hh"
#include "power/compiled.hh"

namespace gpusimpow {
namespace power {

/**
 * One variant's per-interval outputs over a kernel's sample list —
 * exactly the values the trace loops consume, split the same way as
 * CompiledPowerModel::Eval.
 */
struct BatchedKernelPower
{
    /** Intervals evaluated. */
    std::size_t n_intervals = 0;
    /** Thermal blocks per interval row (0 unless want_blocks). */
    std::size_t n_blocks = 0;
    /** Chip runtime dynamic power per interval, W — bit-identical
     *  to Eval::dynamic_w of the scalar path. */
    std::vector<double> dynamic_w;
    /** External DRAM power per interval, W (Eval::dram_w). */
    std::vector<double> dram_w;
    /** Per-block dynamic power, [interval * n_blocks + block] —
     *  Eval::blocks[b].dynamic_w; filled only when want_blocks. */
    std::vector<double> block_dynamic_w;
    /** Activity-independent per-block statics at the nominal
     *  junction temperature: sub_leak_w and fixed_w of Eval::blocks,
     *  which evaluate() produces identically for every interval.
     *  The DRAM board block's per-interval fixed share lives in
     *  dram_w instead and is zero here. */
    std::vector<BlockPower> static_blocks;
};

/**
 * The batched evaluator over a fixed set of power-model variants.
 * Construction stacks the variants' coefficient rows and precomputes
 * their nominal-temperature block statics; evaluate() then turns a
 * span of activity records into per-variant BatchedKernelPower.
 *
 * All variants must share the activity shape (core count) — in the
 * engine they share a full timing fingerprint, which implies it.
 */
class BatchedPowerEvaluator
{
  public:
    /** Reusable scratch: one instance per engine worker amortizes
     *  the tile buffers across every group the worker replays. */
    struct Workspace
    {
        /** Packed activity rows of the current tile. */
        perf::ActivityMatrix acts;
        /** Core-row product tile, [(interval, core) x (component,
         *  lane)] — already divided by the interval's elapsed time. */
        std::vector<double> core_prod;
        /** Mem-row product tile, [interval x (component, lane)],
         *  likewise pre-divided. */
        std::vector<double> mem_prod;
        /** Per-core resident fractions of the current interval. */
        std::vector<double> resident_frac;
        /** Per-cluster busy fractions of the current interval. */
        std::vector<double> cluster_frac;
    };

    explicit BatchedPowerEvaluator(
        std::vector<const CompiledPowerModel *> variants);

    /** Number of stacked variants. */
    std::size_t variants() const { return _variants.size(); }

    /**
     * Evaluate every interval for every variant. out is resized to
     * variants() entries; out[v].dynamic_w[i] / dram_w[i] (and, with
     * want_blocks, the per-block rows) are bit-identical to what
     * variants[v]->evaluate(*acts[i], ev) produces. Intervals are
     * processed in tiles, so the workspace footprint is bounded
     * regardless of the trace length.
     */
    void evaluate(const std::vector<const perf::ChipActivity *> &acts,
                  bool want_blocks, Workspace &ws,
                  std::vector<BatchedKernelPower> &out) const;

  private:
    /**
     * One column-compressed coefficient quad: the same component row
     * (e.g. wcu) of four consecutive variants as the four lanes of a
     * sparse group, in the chain-partitioned layout
     * perf::dotCountersSparseQuadPortable defines. Grouping lanes by
     * component — not by variant — is what makes the compression
     * bite: a component's sparsity pattern is shared across variants
     * (the rows are rescalings of one calibration), so all-zero
     * columns stay all-zero across the whole quad and vanish.
     */
    struct SparseQuad
    {
        /** Columns per partial-sum chain, concatenated in order. */
        unsigned counts[4] = {0, 0, 0, 0};
        /** First column in the shared idx/coeff pools. */
        std::size_t off = 0;
    };

    std::vector<const CompiledPowerModel *> _variants;
    unsigned _n_cores = 0;
    /** Variant count rounded up to a whole number of quad lanes;
     *  padding lanes carry all-zero coefficients and their outputs
     *  are never read. */
    std::size_t _n_lanes = 0;
    /** Core coefficient quads, [quad * rows_per_variant + component]
     *  (component order wcu / rf / eu / ldst), with their column
     *  pools. */
    std::vector<SparseQuad> _core_quads;
    std::vector<int32_t> _core_idx;
    std::vector<double> _core_coeff; // [column * 4 + lane]
    /** Uncore quads (component order folded-L2-share / NoC / MC /
     *  PCIe) and their pools. */
    std::vector<SparseQuad> _mem_quads;
    std::vector<int32_t> _mem_idx;
    std::vector<double> _mem_coeff; // [column * 4 + lane]
    /** Per-variant products hoisted out of the per-interval loops:
     *  core_base_dyn * base_power_scale, cluster_base *
     *  base_power_scale, global_sched * base_power_scale — computed
     *  with the same left-to-right association evaluateImpl() uses,
     *  so substituting them is bit-neutral. */
    std::vector<double> _core_base_scaled;
    std::vector<double> _cluster_base_scaled;
    std::vector<double> _sched_scaled;
    /** Per-variant nominal block statics (see static_blocks). */
    std::vector<std::vector<BlockPower>> _static_blocks;

    /** Rows each counter matrix contributes per variant. */
    static constexpr std::size_t rows_per_variant = 4;
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_BATCHED_HH
