#include "power/core_power.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace gpusimpow {
namespace power {

namespace {

/**
 * Fitted model coefficients. Like McPAT, the analytic circuit models
 * are anchored to silicon with a small set of fitted constants; ours
 * are calibrated so the GT240 per-component static/dynamic values
 * land on Table V of the paper (WCU 0.042/0.089 W, RF 0.112/0.173 W,
 * EU 0.0096/0.556 W, LDSTU 0.234/0.014 W per core for blackscholes).
 */
// Clock-distribution overhead folded into each structural
// component's dynamic energy (Table V has no separate clock row).
constexpr double clock_overhead = 1.30;
// Dynamic scale: wiring, control, and driver energy not captured by
// the bare array models.
constexpr double wcu_dyn_scale = 32.0;
constexpr double rf_dyn_scale = 5.0;
constexpr double ldst_dyn_scale = 3.0;
// Static scale: periphery and driver leakage beyond the cell arrays.
constexpr double wcu_leak_scale = 1.0;
constexpr double rf_leak_scale = 0.52;
constexpr double ldst_leak_scale = 2.65;
// Execution units are aggressively clock/power gated on real GPUs;
// Table V attributes only 9.6 mW of leakage to all EUs of a core.
constexpr double eu_leak_w_per_mm2_40nm = 0.0084;
// Analytic per-lane area anchors at 40 nm (Galal & Horowitz [20]
// for FPUs, De Caro et al. [21] for SFUs, scaled by (F/40nm)^2).
constexpr double fp_lane_area_mm2 = 0.030;
constexpr double int_lane_area_mm2 = 0.012;
constexpr double sfu_area_mm2 = 0.35;

} // namespace

CorePowerModel::CorePowerModel(const GpuConfig &cfg,
                               const tech::TechNode &t)
    : _cfg(cfg), _t(t), _fclk(cfg.clocks.shaderHz()),
      _calib_e_scale(cfg.tech.vdd_scale * cfg.tech.vdd_scale)
{
    const CoreConfig &c = cfg.core;
    unsigned warps = c.maxWarps();
    unsigned warp_id_bits = std::max(1u, ceilLog2(warps));

    // --- WCU (Fig. 2) ---
    // Warp Status Table: one entry per in-flight warp; master PC,
    // priority, valid/ready/barrier flags. Multi-ported (fetch reads
    // while issue updates).
    circuit::SramParams wst;
    wst.entries = warps;
    wst.bits_per_entry = 64;
    wst.read_ports = 2;
    wst.write_ports = 2;
    _wst = std::make_unique<circuit::SramArray>(wst, t);

    _fetch_sched = std::make_unique<circuit::PriorityEncoder>(warps, t);
    _issue_sched = std::make_unique<circuit::PriorityEncoder>(warps, t);

    circuit::SramParams ic;
    ic.entries = c.icache_bytes / 8;     // 8-byte instruction slots
    ic.bits_per_entry = 64;
    _icache = std::make_unique<circuit::SramArray>(ic, t);

    _decoder = std::make_unique<circuit::InstructionDecoder>(8, 64, t);

    circuit::CamParams ib;
    ib.entries = warps * c.ibuffer_slots;
    ib.tag_bits = warp_id_bits;
    ib.data_bits = 64;
    _ibuffer = std::make_unique<circuit::CamArray>(ib, t);

    if (c.scoreboard) {
        circuit::CamParams sb;
        sb.entries = warps * c.scoreboard_entries;
        sb.tag_bits = warp_id_bits;
        sb.data_bits = 8;   // destination register id + size bits
        _scoreboard = std::make_unique<circuit::CamArray>(sb, t);
    }

    // Per-warp reconvergence stacks [17]: token = exec PC (32) +
    // reconvergence PC (32) + active mask (warp_size).
    circuit::SramParams rs;
    rs.entries = warps * 16;
    rs.bits_per_entry = 64 + c.warp_size;
    _reconv_stack = std::make_unique<circuit::SramArray>(rs, t);

    // --- Register file [19] ---
    _rf_banks = c.regfile_banks;
    circuit::SramParams rfb;
    rfb.entries = c.regfile_regs * 32 / (c.regfile_banks * 128);
    rfb.bits_per_entry = 128;
    rfb.read_ports = 0;
    rfb.write_ports = 0;
    rfb.rw_ports = 1;   // single-ported banks by design
    _rf_bank = std::make_unique<circuit::SramArray>(rfb, t);

    _collectors = c.operand_collectors;
    _rf_xbar = std::make_unique<circuit::Crossbar>(
        c.regfile_banks, c.operand_collectors, 128, t);

    circuit::SramParams col;
    col.entries = 4;                       // four-entry collectors
    col.bits_per_entry = c.warp_size * 32; // one full warp operand
    col.read_ports = 2;
    col.write_ports = 2;
    _collector = std::make_unique<circuit::SramArray>(col, t);

    // --- Execution units (SectionIII-C3 / III-D) ---
    double scale = (t.feature_m / 40e-9) * (t.feature_m / 40e-9);
    _eu.area_mm2 = (c.fp_lanes * fp_lane_area_mm2 +
                    c.int_lanes * int_lane_area_mm2 +
                    c.sfu_units * sfu_area_mm2) * scale;
    double leak_density = eu_leak_w_per_mm2_40nm *
                          (t.tempLeakFactor() / std::pow(2.0, 2.5));
    _eu.sub_leakage_w = _eu.area_mm2 * leak_density;
    _eu.gate_leakage_w = 0.1 * _eu.sub_leakage_w;
    _eu.peak_dynamic_w =
        ((c.fp_lanes * _cfg.calib.fp_op_pj +
          c.int_lanes * _cfg.calib.int_op_pj) * 1e-12 * _fclk +
         c.sfu_units * _cfg.calib.sfu_op_pj * 1e-12 * _fclk) *
        _calib_e_scale;

    // --- LDSTU (Fig. 3) ---
    _agu_adders = c.sagu_count * 8;   // 8 addresses per SAGU [22]
    _agu_adder = std::make_unique<circuit::Adder>(32, t);

    // Coalescer storage [24]: input queue + output queue + pending
    // request table, held in D-flip-flops (SectionIII-C4).
    double pending_bits =
        c.coalescer_entries * (32.0 + c.warp_size + 8.0);
    double queue_bits = 2.0 * c.coalescer_queue * (32.0 + 32.0);
    _coalescer =
        std::make_unique<circuit::DffStorage>(pending_bits + queue_bits,
                                              t);

    _smem_banks = c.smem_banks;
    circuit::SramParams smb;
    smb.entries = c.smem_l1_bytes / (c.smem_banks * 4);
    smb.bits_per_entry = 32;
    smb.device = tech::DeviceType::HP;
    _smem_bank = std::make_unique<circuit::SramArray>(smb, t);

    _smem_addr_xbar = std::make_unique<circuit::Crossbar>(
        c.warp_size, c.smem_banks, 32, t);
    _smem_data_xbar = std::make_unique<circuit::Crossbar>(
        c.smem_banks, c.warp_size, 32, t);

    circuit::SramParams cc;
    cc.entries = c.const_cache_bytes / 4;
    cc.bits_per_entry = 32;
    _const_cache = std::make_unique<circuit::SramArray>(cc, t);

    if (c.lOneDBytes() > 0) {
        unsigned sets = c.lOneDBytes() / (c.line_bytes * c.l1d_assoc);
        circuit::SramParams tags;
        tags.entries = std::max(1u, sets);
        tags.bits_per_entry = 24 * c.l1d_assoc;
        _l1_tags = std::make_unique<circuit::SramArray>(tags, t);
    }
}

ComponentStatics
CorePowerModel::wcuStatics() const
{
    ComponentStatics s;
    double leak = _wst->numbers().leakage_w + _fetch_sched->leakage() +
                  _issue_sched->leakage() + _icache->numbers().leakage_w +
                  _decoder->leakage() + _ibuffer->numbers().leakage_w +
                  _reconv_stack->numbers().leakage_w;
    double gate = _wst->numbers().gate_leak_w +
                  _icache->numbers().gate_leak_w +
                  _ibuffer->numbers().gate_leak_w +
                  _reconv_stack->numbers().gate_leak_w;
    s.area_mm2 = (_wst->area() + _fetch_sched->area() +
                  _issue_sched->area() + _icache->area() +
                  _decoder->area() + _ibuffer->area() +
                  _reconv_stack->area()) * 1e6;
    if (_scoreboard) {
        leak += _scoreboard->numbers().leakage_w;
        gate += _scoreboard->numbers().gate_leak_w;
        s.area_mm2 += _scoreboard->area() * 1e6;
    }
    s.sub_leakage_w = leak * wcu_leak_scale;
    s.gate_leakage_w = gate * wcu_leak_scale;
    // Peak: fetch + decode + issue every cycle.
    double e_cycle = _wst->readEnergy() + _icache->readEnergy() +
                     _decoder->decodeEnergy() +
                     _fetch_sched->arbitrationEnergy() +
                     _issue_sched->arbitrationEnergy() +
                     _ibuffer->searchEnergy();
    s.peak_dynamic_w =
        e_cycle * _fclk * wcu_dyn_scale * clock_overhead;
    return s;
}

ComponentStatics
CorePowerModel::rfStatics() const
{
    ComponentStatics s;
    double leak = _rf_banks * _rf_bank->numbers().leakage_w +
                  _rf_xbar->numbers().leakage_w +
                  _collectors * _collector->numbers().leakage_w;
    double gate = _rf_banks * _rf_bank->numbers().gate_leak_w +
                  _rf_xbar->numbers().gate_leak_w +
                  _collectors * _collector->numbers().gate_leak_w;
    s.sub_leakage_w = leak * rf_leak_scale;
    s.gate_leakage_w = gate * rf_leak_scale;
    s.area_mm2 = (_rf_banks * _rf_bank->area() + _rf_xbar->area() +
                  _collectors * _collector->area()) * 1e6;
    // Peak: all banks active every cycle.
    s.peak_dynamic_w = _rf_banks * _rf_bank->readEnergy() * _fclk *
                       rf_dyn_scale * clock_overhead;
    return s;
}

ComponentStatics
CorePowerModel::ldstStatics() const
{
    ComponentStatics s;
    double leak = _agu_adders * _agu_adder->leakage() +
                  _coalescer->numbers().leakage_w +
                  _smem_banks * _smem_bank->numbers().leakage_w +
                  _smem_addr_xbar->numbers().leakage_w +
                  _smem_data_xbar->numbers().leakage_w +
                  _const_cache->numbers().leakage_w;
    double gate = _coalescer->numbers().gate_leak_w +
                  _smem_banks * _smem_bank->numbers().gate_leak_w +
                  _const_cache->numbers().gate_leak_w;
    s.area_mm2 = (_agu_adders * _agu_adder->area() + _coalescer->area() +
                  _smem_banks * _smem_bank->area() +
                  _smem_addr_xbar->area() + _smem_data_xbar->area() +
                  _const_cache->area()) * 1e6;
    if (_l1_tags) {
        leak += _l1_tags->numbers().leakage_w;
        gate += _l1_tags->numbers().gate_leak_w;
        s.area_mm2 += _l1_tags->area() * 1e6;
    }
    s.sub_leakage_w = leak * ldst_leak_scale;
    s.gate_leakage_w = gate * ldst_leak_scale;
    double e_cycle = _cfg.core.warp_size * _agu_adder->addEnergy() +
                     _smem_banks * _smem_bank->readEnergy() +
                     _smem_data_xbar->transferEnergy();
    s.peak_dynamic_w =
        e_cycle * _fclk * ldst_dyn_scale * clock_overhead;
    return s;
}

void
CorePowerModel::dynCoefficients(CoreDynCoefficients &c) const
{
    using I = perf::CoreCounterIndex;
    c = CoreDynCoefficients{};

    // --- WCU: fetch/decode/schedule structures of Fig. 2 ---
    const double ws = wcu_dyn_scale * clock_overhead;
    c.wcu[I::wst_reads] = _wst->readEnergy() * ws;
    c.wcu[I::wst_writes] = _wst->writeEnergy() * ws;
    c.wcu[I::fetch_arbitrations] =
        _fetch_sched->arbitrationEnergy() * ws;
    c.wcu[I::issue_arbitrations] =
        _issue_sched->arbitrationEnergy() * ws;
    c.wcu[I::icache_reads] = _icache->readEnergy() * ws;
    c.wcu[I::decodes] = _decoder->decodeEnergy() * ws;
    c.wcu[I::ibuffer_writes] = _ibuffer->writeEnergy() * ws;
    c.wcu[I::ibuffer_reads] = _ibuffer->searchEnergy() * ws;
    if (_scoreboard) {
        c.wcu[I::scoreboard_checks] = _scoreboard->searchEnergy() * ws;
        c.wcu[I::scoreboard_writes] = _scoreboard->writeEnergy() * ws;
    }
    c.wcu[I::reconv_reads] = _reconv_stack->readEnergy() * ws;
    c.wcu[I::reconv_pushes] = _reconv_stack->writeEnergy() * ws;
    c.wcu[I::reconv_pops] = _reconv_stack->writeEnergy() * ws;

    // --- Register file: banks, operand crossbar, collectors ---
    const double rs = rf_dyn_scale * clock_overhead;
    // Every bank read moves its operand over the crossbar too.
    c.rf[I::rf_bank_reads] =
        (_rf_bank->readEnergy() + _rf_xbar->transferEnergy()) * rs;
    c.rf[I::rf_bank_writes] = _rf_bank->writeEnergy() * rs;
    c.rf[I::collector_writes] = _collector->writeEnergy() * rs;
    c.rf[I::collector_reads] = _collector->readEnergy() * rs;

    // --- Execution units: the empirical model of SectionIII-D,
    // measured energy per executed instruction per enabled lane
    // (~40 pJ INT, ~75 pJ FP) at nominal supply, rescaled with V^2
    // (Eq. 1) under DVFS ---
    c.eu[I::int_lane_ops] =
        _cfg.calib.int_op_pj * 1e-12 * _calib_e_scale;
    c.eu[I::fp_lane_ops] =
        _cfg.calib.fp_op_pj * 1e-12 * _calib_e_scale;
    c.eu[I::sfu_lane_ops] =
        _cfg.calib.sfu_op_pj * 1e-12 * _calib_e_scale;

    // --- LDSTU: AGU, coalescer, SMEM/L1, constant cache (Fig. 3) ---
    const double ls = ldst_dyn_scale * clock_overhead;
    c.ldst[I::agu_addrs] =
        _cfg.calib.agu_addr_pj * 1e-12 * _calib_e_scale * ls;
    c.ldst[I::coalescer_lookups] = _coalescer->writeEnergy() * ls;
    c.ldst[I::coalescer_transactions] = _coalescer->readEnergy() * ls;
    c.ldst[I::smem_accesses] =
        (_smem_bank->readEnergy() +
         _smem_data_xbar->transferEnergy() / 8.0 +
         _smem_addr_xbar->transferEnergy() / 8.0) * ls;
    c.ldst[I::const_reads] =
        (_smem_addr_xbar->transferEnergy() / 8.0 +
         _const_cache->readEnergy()) * ls;
    if (_l1_tags) {
        c.ldst[I::l1_reads] = _l1_tags->readEnergy() * ls;
        c.ldst[I::l1_writes] = _l1_tags->readEnergy() * ls;
        c.ldst[I::l1_misses] = _l1_tags->writeEnergy() * ls;
    }
}

ComponentStatics
CorePowerModel::totals() const
{
    ComponentStatics w = wcuStatics();
    ComponentStatics r = rfStatics();
    ComponentStatics l = ldstStatics();
    ComponentStatics s;
    s.area_mm2 = w.area_mm2 + r.area_mm2 + l.area_mm2 + _eu.area_mm2;
    s.sub_leakage_w = w.sub_leakage_w + r.sub_leakage_w +
                      l.sub_leakage_w + _eu.sub_leakage_w;
    s.gate_leakage_w = w.gate_leakage_w + r.gate_leakage_w +
                       l.gate_leakage_w + _eu.gate_leakage_w;
    s.peak_dynamic_w = w.peak_dynamic_w + r.peak_dynamic_w +
                       l.peak_dynamic_w + _eu.peak_dynamic_w;
    return s;
}

double
CorePowerModel::euPeakDynamic() const
{
    return _eu.peak_dynamic_w;
}

} // namespace power
} // namespace gpusimpow
