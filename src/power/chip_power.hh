/**
 * @file
 * The chip-level power model ("GPGPU-Pow" in the paper): assembles
 * the per-core models with the NoC, memory controllers, PCIe
 * controller, shared L2, the empirical base-power model (global
 * scheduler + cluster activation, SectionIII-D / Fig. 4), and the
 * external GDDR5 DRAM. Produces hierarchical PowerReports for any
 * activity interval, plus static-only/area summaries (Table IV).
 */

#ifndef GPUSIMPOW_POWER_CHIP_POWER_HH
#define GPUSIMPOW_POWER_CHIP_POWER_HH

#include <memory>

#include "config/gpu_config.hh"
#include "dram/gddr5.hh"
#include "perf/activity.hh"
#include "power/compiled.hh"
#include "power/core_power.hh"
#include "power/report.hh"
#include "thermal/thermal.hh"

namespace gpusimpow {
namespace power {

/** Power model of one complete GPU card. */
class GpuPowerModel
{
  public:
    explicit GpuPowerModel(const GpuConfig &cfg);

    /**
     * The flat evaluator every result below is derived from: built
     * once at construction, it turns an activity interval into chip
     * totals and per-thermal-block splits with a handful of dot
     * products and no allocation. Hot paths (trace loops, thermal
     * integration) should evaluate through it directly and reuse one
     * CompiledPowerModel::Eval workspace.
     */
    const CompiledPowerModel &compiled() const { return *_compiled; }

    /**
     * Evaluate runtime power for an activity interval, assembling
     * the full hierarchical report (Table V structure) from the
     * compiled evaluation — use for report output, not per-interval
     * loops.
     * @param act activity deltas over the interval
     */
    PowerReport evaluate(const perf::ChipActivity &act) const;

    /**
     * Evaluate with per-block junction temperatures from the thermal
     * solver instead of the single nominal config constant: the
     * subthreshold leakage of every component is rescaled from the
     * nominal temperature to its block's solved temperature. Core
     * subtrees follow their cluster block; the folded L2 share inside
     * each LDSTU follows the L2 block; NoC/MC/PCIe follow the uncore
     * block. At uniformly nominal temperatures this is bit-identical
     * to evaluate().
     * @param block_temps_k temperatures in thermalBlocks() order
     */
    PowerReport evaluateAt(const perf::ChipActivity &act,
                           const std::vector<double> &block_temps_k)
        const;

    /**
     * The die/board block decomposition the thermal network models:
     * one block per core cluster (cores incl. the undifferentiated
     * area), the shared L2 (when present), the lumped uncore
     * (NoC + MC + PCIe), and the off-package DRAM devices.
     */
    thermal::BlockSet thermalBlocks() const;

    /**
     * Split an activity interval's power onto the thermal blocks:
     * clock-scaled / temperature-scaled / fixed shares per block
     * (the vocabulary of the throttling governor and the steady
     * solver), straight from the compiled evaluator — no report
     * tree, no string-path lookups. Summing every component
     * reproduces evaluate(act).totalPower() + dram_w exactly.
     */
    std::vector<BlockPower>
    blockPowers(const perf::ChipActivity &act) const;

    /**
     * Subthreshold-leakage multiplier between the nominal junction
     * temperature and temp_k (1.0 at the nominal temperature).
     */
    double subLeakScaleAt(double temp_k) const;

    /** Static-only report (idle chip, Table IV row). */
    PowerReport staticReport() const;

    /** Chip area in mm^2 (Table IV column). */
    double area() const;

    /** Chip static power in W (Table IV column). */
    double staticPower() const;

    /** Peak dynamic power of the whole chip, W. */
    double peakDynamicPower() const;

    /** The technology node in use (for tests). */
    const tech::TechNode &techNode() const { return _t; }

    /** Access to the per-core model (for calibration benches). */
    const CorePowerModel &coreModel() const { return *_core_model; }

  private:
    GpuConfig _cfg;
    tech::TechNode _t;
    /** V^2*f scale of the empirical base-power constants at the
     *  configured DVFS operating point (1.0 at the identity point). */
    double _base_power_scale = 1.0;
    std::unique_ptr<CorePowerModel> _core_model;
    std::unique_ptr<dram::Gddr5Power> _dram_power;
    std::unique_ptr<CompiledPowerModel> _compiled;

    // Uncore statics, computed once at construction.
    ComponentStatics _noc;
    ComponentStatics _mc;       // all channels together
    ComponentStatics _pcie;
    ComponentStatics _l2;       // all slices together
    double _noc_flit_energy_j = 0.0;
    double _noc_busy_w = 0.0;
    double _l2_access_energy_j = 0.0;
    double _mc_request_energy_j = 0.0;
    double _mc_bit_energy_j = 0.0;
    double _mc_busy_w = 0.0;
    double _pcie_active_w = 0.0;
    double _pcie_byte_energy_j = 0.0;

    // Table IV scalars, cached at construction (each needs a full
    // static-report evaluation).
    double _static_power_w = 0.0;
    double _area_mm2 = 0.0;
    double _peak_dynamic_w = 0.0;

    void buildUncore();
    thermal::BlockSet makeBlocks() const;
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_CHIP_POWER_HH
