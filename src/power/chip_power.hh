/**
 * @file
 * The chip-level power model ("GPGPU-Pow" in the paper): assembles
 * the per-core models with the NoC, memory controllers, PCIe
 * controller, shared L2, the empirical base-power model (global
 * scheduler + cluster activation, SectionIII-D / Fig. 4), and the
 * external GDDR5 DRAM. Produces hierarchical PowerReports for any
 * activity interval, plus static-only/area summaries (Table IV).
 */

#ifndef GPUSIMPOW_POWER_CHIP_POWER_HH
#define GPUSIMPOW_POWER_CHIP_POWER_HH

#include <memory>

#include "config/gpu_config.hh"
#include "dram/gddr5.hh"
#include "perf/activity.hh"
#include "power/core_power.hh"
#include "power/report.hh"
#include "thermal/thermal.hh"

namespace gpusimpow {
namespace power {

/**
 * One thermal block's power split by how it responds to the two
 * feedback knobs: dynamic_w scales with the core clock (throttling),
 * sub_leak_w scales with tempLeakFactor (junction temperature), and
 * fixed_w does neither (gate leakage; the off-chip DRAM power, which
 * runs from its own supply and clock).
 */
struct BlockPower
{
    double dynamic_w = 0.0;
    double sub_leak_w = 0.0;
    double fixed_w = 0.0;

    double total() const { return dynamic_w + sub_leak_w + fixed_w; }
};

/** Power model of one complete GPU card. */
class GpuPowerModel
{
  public:
    explicit GpuPowerModel(const GpuConfig &cfg);

    /**
     * Evaluate runtime power for an activity interval.
     * @param act activity deltas over the interval
     * @return hierarchical report (Table V structure)
     */
    PowerReport evaluate(const perf::ChipActivity &act) const;

    /**
     * Evaluate with per-block junction temperatures from the thermal
     * solver instead of the single nominal config constant: the
     * subthreshold leakage of every component is rescaled from the
     * nominal temperature to its block's solved temperature. Core
     * subtrees follow their cluster block; the folded L2 share inside
     * each LDSTU follows the L2 block; NoC/MC/PCIe follow the uncore
     * block. At uniformly nominal temperatures this is bit-identical
     * to evaluate().
     * @param block_temps_k temperatures in thermalBlocks() order
     */
    PowerReport evaluateAt(const perf::ChipActivity &act,
                           const std::vector<double> &block_temps_k)
        const;

    /**
     * The die/board block decomposition the thermal network models:
     * one block per core cluster (cores incl. the undifferentiated
     * area), the shared L2 (when present), the lumped uncore
     * (NoC + MC + PCIe), and the off-package DRAM devices.
     */
    thermal::BlockSet thermalBlocks() const;

    /**
     * Map a report onto the thermal blocks, splitting each block's
     * power into clock-scaled / temperature-scaled / fixed shares
     * (the vocabulary of the throttling governor and the steady
     * solver). Summing every component reproduces
     * rep.totalPower() + rep.dram_w exactly.
     * @param rep a report produced by evaluate()/evaluateAt()
     * @param act the activity interval rep was evaluated for
     */
    std::vector<BlockPower>
    blockPowers(const PowerReport &rep,
                const perf::ChipActivity &act) const;

    /**
     * Subthreshold-leakage multiplier between the nominal junction
     * temperature and temp_k (1.0 at the nominal temperature).
     */
    double subLeakScaleAt(double temp_k) const;

    /** Static-only report (idle chip, Table IV row). */
    PowerReport staticReport() const;

    /** Chip area in mm^2 (Table IV column). */
    double area() const;

    /** Chip static power in W (Table IV column). */
    double staticPower() const;

    /** Peak dynamic power of the whole chip, W. */
    double peakDynamicPower() const;

    /** The technology node in use (for tests). */
    const tech::TechNode &techNode() const { return _t; }

    /** Access to the per-core model (for calibration benches). */
    const CorePowerModel &coreModel() const { return *_core_model; }

  private:
    GpuConfig _cfg;
    tech::TechNode _t;
    /** V^2*f scale of the empirical base-power constants at the
     *  configured DVFS operating point (1.0 at the identity point). */
    double _base_power_scale = 1.0;
    std::unique_ptr<CorePowerModel> _core_model;
    std::unique_ptr<dram::Gddr5Power> _dram_power;

    // Uncore statics, computed once at construction.
    ComponentStatics _noc;
    ComponentStatics _mc;       // all channels together
    ComponentStatics _pcie;
    ComponentStatics _l2;       // all slices together
    double _noc_flit_energy_j = 0.0;
    double _l2_access_energy_j = 0.0;
    double _mc_request_energy_j = 0.0;
    double _mc_bit_energy_j = 0.0;
    double _pcie_active_w = 0.0;
    double _pcie_byte_energy_j = 0.0;

    void buildUncore();
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_CHIP_POWER_HH
