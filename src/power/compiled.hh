/**
 * @file
 * The compiled power model: the hierarchical per-component model of
 * GPGPU-Pow flattened into index-addressed arrays, in the spirit of
 * GATSPI-style flat power evaluation. Built once per (configuration,
 * process node, operating point), it reduces one activity interval's
 * power evaluation to a handful of dot products over dense
 * coefficient rows laid out against the ChipActivity X-macro counter
 * order (perf::CoreCounterIndex / perf::MemCounterIndex), plus a few
 * closed-form busy-fraction terms — no string lookups, no PowerNode
 * tree, no heap allocation per interval.
 *
 * The compiled model is the *canonical* evaluator: GpuPowerModel's
 * evaluate()/evaluateAt() assemble their PowerReport trees from the
 * per-component values a compiled evaluation produces, and the block
 * splits the thermal subsystem consumes come from the same pass via a
 * precomputed component-to-thermal-block index map. Accumulation
 * orders deliberately replicate the tree traversal orders of
 * PowerNode::totalDynamic()/totalStatic() and the legacy blockPowers
 * tree walk, so the flat totals and per-block splits are bit-identical
 * to the on-demand report trees (asserted by test_compiled_power).
 *
 * Thermal leakage feedback is a scale of the static vectors: each
 * component's subthreshold leakage is multiplied by its thermal
 * block's tempLeakFactor ratio, instead of walking a report subtree
 * with scaleSubLeakage().
 */

#ifndef GPUSIMPOW_POWER_COMPILED_HH
#define GPUSIMPOW_POWER_COMPILED_HH

#include <array>
#include <vector>

#include "config/gpu_config.hh"
#include "dram/gddr5.hh"
#include "perf/activity.hh"
#include "power/core_power.hh"
#include "power/report.hh"
#include "tech/tech.hh"
#include "thermal/thermal.hh"

namespace gpusimpow {
namespace power {

/**
 * One thermal block's power split by how it responds to the two
 * feedback knobs: dynamic_w scales with the core clock (throttling),
 * sub_leak_w scales with tempLeakFactor (junction temperature), and
 * fixed_w does neither (gate leakage; the off-chip DRAM power, which
 * runs from its own supply and clock).
 */
struct BlockPower
{
    double dynamic_w = 0.0;
    double sub_leak_w = 0.0;
    double fixed_w = 0.0;

    double total() const { return dynamic_w + sub_leak_w + fixed_w; }
};

/** Per-core report components, in report child order. */
enum CoreComponent : unsigned
{
    kCoreBase = 0,   // empirical per-core base power
    kCoreWcu,        // warp control unit
    kCoreRf,         // register file
    kCoreEu,         // execution units
    kCoreLdst,       // LDSTU, with the folded L2 share
    kCoreUndiff,     // undifferentiated residual
    kCoreComponents
};

/** Chip-level components with their own report nodes. */
enum UncoreComponent : unsigned
{
    kUncoreNoc = 0,
    kUncoreMc,
    kUncorePcie,
    kUncoreComponents
};

/**
 * Everything the compiled model is built from. GpuPowerModel fills
 * this at construction; the struct keeps the two classes decoupled
 * (chip_power owns calibration and uncore fitting, compiled owns
 * evaluation).
 */
struct CompiledModelInputs
{
    const GpuConfig *cfg = nullptr;
    const tech::TechNode *tech = nullptr;
    const CorePowerModel *core = nullptr;
    /** V^2*f scale of the empirical base powers at the operating
     *  point. */
    double base_power_scale = 1.0;
    /** Uncore component statics (buildUncore outputs). */
    ComponentStatics noc, mc, pcie, l2;
    /** Per-event uncore energies / busy powers. */
    double noc_flit_energy_j = 0.0;
    double noc_busy_w = 0.0;     // clock-tree power while busy
    double l2_access_energy_j = 0.0;
    double mc_request_energy_j = 0.0;
    double mc_bit_energy_j = 0.0;
    double mc_busy_w = 0.0;      // interface power while busy
    double pcie_active_w = 0.0;
    double pcie_byte_energy_j = 0.0;
    /** External DRAM model (owned by GpuPowerModel, outlives us). */
    const dram::Gddr5Power *dram = nullptr;
    /** Thermal block decomposition (component->block index source). */
    thermal::BlockSet blocks;
};

/**
 * Flat power model, evaluated per interval with zero allocation.
 */
class CompiledPowerModel
{
  public:
    explicit CompiledPowerModel(const CompiledModelInputs &in);

    /**
     * Result + reusable workspace of one interval evaluation. The
     * vectors are sized on first use and reused afterwards, so a
     * caller evaluating many intervals (the trace loops) performs no
     * per-interval allocation.
     */
    struct Eval
    {
        /** Per-thermal-block power split (BlockSet order); sub_leak_w
         *  is scaled to the evaluation temperatures. */
        std::vector<BlockPower> blocks;
        /** Chip runtime dynamic power, W; bit-identical to
         *  PowerReport::dynamicPower() of the assembled tree. */
        double dynamic_w = 0.0;
        /** Chip static power at the evaluation temperatures, W;
         *  bit-identical to PowerReport::staticPower(). */
        double static_w = 0.0;
        /** External DRAM power, W. */
        double dram_w = 0.0;
        /** Short-circuit share of the dynamic numbers, W. */
        double short_circuit_w = 0.0;
        /** Interval the runtime numbers integrate over, s. */
        double elapsed_s = 0.0;

        /** Per-core per-component runtime dynamic power, W
         *  (kCoreComponents entries per core; LDSTU includes the
         *  folded L2 share) — the values the report tree is
         *  assembled from. */
        std::vector<double> core_dyn;
        /** Per-core per-component subthreshold leakage at the
         *  evaluation temperatures, W. */
        std::vector<double> core_sub;
        /** Uncore component runtime dynamics, W (UncoreComponent
         *  order). */
        std::array<double, kUncoreComponents> uncore_dyn{};
        /** Uncore component subthreshold leakage at the evaluation
         *  temperatures, W. */
        std::array<double, kUncoreComponents> uncore_sub{};
        /** Cluster-activation power total (Cluster Base node), W. */
        double cluster_base_w = 0.0;
        /** Global work-distribution engine power, W. */
        double sched_w = 0.0;

        /** Block-temperature scale factors used (scratch). */
        std::vector<double> sub_scale;
    };

    /** Evaluate one interval at the nominal junction temperature. */
    void evaluate(const perf::ChipActivity &act, Eval &out) const;

    /**
     * Evaluate with per-block junction temperatures (BlockSet order):
     * every component's subthreshold leakage is scaled from the
     * nominal temperature to its block's temperature. An empty vector
     * evaluates at nominal everywhere (identical to evaluate()).
     */
    void evaluateAt(const perf::ChipActivity &act,
                    const std::vector<double> &block_temps_k,
                    Eval &out) const;

    /**
     * Assemble the full hierarchical report (Table V structure) from
     * a compiled evaluation — the on-demand tree for report output.
     */
    PowerReport assembleReport(const Eval &ev) const;

    /** The thermal block decomposition the block splits target. */
    const thermal::BlockSet &blocks() const { return _blocks; }

    /** Thermal block index of a core (its cluster). */
    std::size_t coreBlock(unsigned core) const
    {
        return core / _cores_per_cluster;
    }

    /**
     * Subthreshold-leakage multiplier between the nominal junction
     * temperature and temp_k (1.0 at the nominal temperature).
     */
    double subLeakScaleAt(double temp_k) const
    {
        return tech::tempLeakFactorAt(temp_k) / _nominal_leak_factor;
    }

    /** Dense core dynamic-energy rows (X-macro counter order). */
    const CoreDynCoefficients &coreCoefficients() const
    {
        return _core_coeff;
    }
    /** Dense uncore dynamic-energy rows (X-macro counter order). */
    const std::array<double, perf::mem_activity_fields> &
    memCoefficients(UncoreComponent comp) const
    {
        return _mem_coeff[comp];
    }
    /** Statics of the per-core folded L2 share (zero without L2). */
    const ComponentStatics &l2ShareStatics() const { return _l2_share; }
    /** Dynamic-energy row of the per-core folded L2 share. */
    const std::array<double, perf::mem_activity_fields> &
    l2ShareCoefficients() const
    {
        return _l2_share_coeff;
    }

  private:
    /** The batched multi-variant evaluator (power/batched.hh) reads
     *  the coefficient rows and static vectors directly so its
     *  assembly can replicate evaluateImpl() bit for bit. */
    friend class BatchedPowerEvaluator;

    // --- configuration scalars ---
    unsigned _n_cores;
    unsigned _clusters;
    unsigned _cores_per_cluster;
    bool _l2_present;
    double _base_power_scale;
    double _core_base_dyn_w;
    double _cluster_base_w;
    double _global_sched_w;
    double _short_circuit_frac;
    double _nominal_leak_factor;
    double _dram_hz;
    unsigned _dram_channels;

    // --- dynamic-energy coefficient rows ---
    CoreDynCoefficients _core_coeff;
    /** NoC / MC / PCIe rows over the uncore counters. */
    std::array<std::array<double, perf::mem_activity_fields>,
               kUncoreComponents> _mem_coeff{};
    /** Folded per-core L2 share row over the uncore counters. */
    std::array<double, perf::mem_activity_fields> _l2_share_coeff{};
    /** Busy-fraction-scaled uncore powers (UncoreComponent order). */
    std::array<double, kUncoreComponents> _uncore_busy_w{};

    // --- static vectors (nominal temperature) ---
    /** Per-core component statics (kCoreComponents entries; LDSTU
     *  without the L2 share, which has its own block). */
    std::array<ComponentStatics, kCoreComponents> _core_statics{};
    /** Folded per-core L2 share statics. */
    ComponentStatics _l2_share;
    /** Uncore component statics (UncoreComponent order). */
    std::array<ComponentStatics, kUncoreComponents> _uncore_statics{};
    /** LDSTU report-node constants with the folded L2 share. */
    double _ldst_node_area = 0.0;
    double _ldst_node_gate = 0.0;
    double _ldst_node_peak = 0.0;
    /** Per-core gate-leakage total (constant under temperature). */
    double _core_gate_total = 0.0;

    // --- component -> thermal block map ---
    thermal::BlockSet _blocks;
    std::size_t _l2_block = 0;
    std::size_t _uncore_block = 0;

    const dram::Gddr5Power *_dram;

    void evaluateImpl(const perf::ChipActivity &act,
                      const std::vector<double> *block_temps_k,
                      Eval &out) const;
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_COMPILED_HH
