#include "power/report.hh"

#include <sstream>

#include "common/strutil.hh"

namespace gpusimpow {
namespace power {

PowerNode &
PowerNode::child(const std::string &child_name)
{
    children.push_back(PowerNode{});
    children.back().name = child_name;
    return children.back();
}

const PowerNode *
PowerNode::find(const std::string &path) const
{
    size_t slash = path.find('/');
    std::string head = path.substr(0, slash);
    // An empty segment ("", "Cores//WCU", trailing '/') names no
    // component; reject it outright instead of letting it match a
    // node that happens to carry an empty name.
    if (head.empty())
        return nullptr;
    for (const auto &c : children) {
        if (c.name == head) {
            if (slash == std::string::npos)
                return &c;
            return c.find(path.substr(slash + 1));
        }
    }
    return nullptr;
}

double
PowerNode::totalStatic() const
{
    double total = sub_leakage_w + gate_leakage_w;
    for (const auto &c : children)
        total += c.totalStatic();
    return total;
}

double
PowerNode::totalSubLeakage() const
{
    double total = sub_leakage_w;
    for (const auto &c : children)
        total += c.totalSubLeakage();
    return total;
}

double
PowerNode::totalGateLeakage() const
{
    double total = gate_leakage_w;
    for (const auto &c : children)
        total += c.totalGateLeakage();
    return total;
}

void
PowerNode::scaleSubLeakage(double factor)
{
    sub_leakage_w *= factor;
    for (auto &c : children)
        c.scaleSubLeakage(factor);
}

double
PowerNode::totalDynamic() const
{
    double total = runtime_dynamic_w;
    for (const auto &c : children)
        total += c.totalDynamic();
    return total;
}

double
PowerNode::totalArea() const
{
    double total = area_mm2;
    for (const auto &c : children)
        total += c.totalArea();
    return total;
}

double
PowerNode::totalPeak() const
{
    double total = peak_dynamic_w;
    for (const auto &c : children)
        total += c.totalPeak();
    return total;
}

std::string
PowerNode::format(int indent) const
{
    std::ostringstream oss;
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    oss << strformat("%s%-28s area %8.3f mm2  static %8.4f W  "
                     "dynamic %8.4f W\n",
                     pad.c_str(), name.c_str(), totalArea(),
                     totalStatic(), totalDynamic());
    for (const auto &c : children)
        oss << c.format(indent + 1);
    return oss.str();
}

std::string
PowerNode::flatten(const std::string &prefix) const
{
    std::ostringstream oss;
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    oss << strformat("%s area_mm2 %.9g\n", path.c_str(), area_mm2);
    oss << strformat("%s sub_leakage_w %.9g\n", path.c_str(),
                     sub_leakage_w);
    oss << strformat("%s gate_leakage_w %.9g\n", path.c_str(),
                     gate_leakage_w);
    oss << strformat("%s peak_dynamic_w %.9g\n", path.c_str(),
                     peak_dynamic_w);
    oss << strformat("%s runtime_dynamic_w %.9g\n", path.c_str(),
                     runtime_dynamic_w);
    for (const auto &c : children)
        oss << c.flatten(path);
    return oss.str();
}

std::string
PowerReport::format() const
{
    std::ostringstream oss;
    oss << gpu.format();
    oss << strformat("External GDDR5 DRAM: %.3f W\n", dram_w);
    oss << strformat("Chip total: static %.3f W, dynamic %.3f W, "
                     "total %.3f W, area %.1f mm2\n",
                     staticPower(), dynamicPower(), totalPower(),
                     area());
    return oss.str();
}

} // namespace power
} // namespace gpusimpow
