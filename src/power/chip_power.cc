#include "power/chip_power.hh"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "circuit/array.hh"
#include "circuit/interconnect.hh"
#include "common/logging.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace power {

namespace {

/**
 * Uncore fitted coefficients, calibrated against the GT240 top half
 * of Table V (NoC 1.484/1.229 W, MC 0.497/1.753 W, PCIe
 * 0.539/0.992 W static/dynamic at blackscholes).
 */
// NoC: busy-clock capacitance per port-bit (crossbar wiring, buffer
// flops, repeaters), and leakage scaling over the router model.
constexpr double noc_clock_f_per_port_bit = 0.42e-12;
constexpr double noc_leak_scale = 72.0;
constexpr double noc_flit_scale = 2.0;
// MC: per-channel static/busy power per interface bit, per-request
// scheduling energy, and per-transferred-bit PHY energy.
constexpr double mc_static_w_per_bit = 0.0036;
constexpr double mc_busy_w_per_bit = 0.0075;
constexpr double mc_request_nj = 0.85;
constexpr double mc_bit_pj = 5.0;
// PCIe Gen2 controller+PHY: per-lane leakage and L0 link-active
// power; per-byte transfer energy.
constexpr double pcie_static_w_per_lane = 0.0337;
constexpr double pcie_active_w_per_lane = 0.0620;
constexpr double pcie_pj_per_byte = 80.0;
// L2 dynamic scaling (tag + data + control per access).
constexpr double l2_dyn_scale = 2.0;
constexpr double l2_leak_scale = 1.5;

} // namespace

GpuPowerModel::GpuPowerModel(const GpuConfig &cfg)
    : _cfg(cfg),
      _t(tech::TechNode::make(cfg.tech.node_nm, cfg.tech.vdd,
                              cfg.tech.temperature,
                              cfg.tech.vdd_scale))
{
    // Empirically measured base *powers* (Section III-D) were fitted
    // at the nominal operating point; Eq. 1 scales them with V^2*f.
    double vs = _cfg.tech.vdd_scale;
    _base_power_scale = vs * vs * _cfg.clocks.freq_scale;
    _core_model = std::make_unique<CorePowerModel>(_cfg, _t);
    _dram_power =
        std::make_unique<dram::Gddr5Power>(_cfg.dram, _cfg.clocks.dram_hz);
    buildUncore();

    // Compile the hierarchical model into the flat evaluator; every
    // evaluate()/evaluateAt()/blockPowers() result below is derived
    // from it.
    CompiledModelInputs in;
    in.cfg = &_cfg;
    in.tech = &_t;
    in.core = _core_model.get();
    in.base_power_scale = _base_power_scale;
    in.noc = _noc;
    in.mc = _mc;
    in.pcie = _pcie;
    in.l2 = _l2;
    in.noc_flit_energy_j = _noc_flit_energy_j;
    in.noc_busy_w = _noc_busy_w;
    in.l2_access_energy_j = _l2_access_energy_j;
    in.mc_request_energy_j = _mc_request_energy_j;
    in.mc_bit_energy_j = _mc_bit_energy_j;
    in.mc_busy_w = _mc_busy_w;
    in.pcie_active_w = _pcie_active_w;
    in.pcie_byte_energy_j = _pcie_byte_energy_j;
    in.dram = _dram_power.get();
    in.blocks = makeBlocks();
    _compiled = std::make_unique<CompiledPowerModel>(in);

    PowerReport stat = staticReport();
    _static_power_w = stat.staticPower();
    _area_mm2 = stat.area();
    double peak = stat.gpu.totalPeak();
    // Base power at full occupancy.
    peak += (_cfg.calib.global_sched_w +
             _cfg.calib.cluster_base_w * _cfg.clusters +
             _cfg.calib.core_base_dyn_w * _cfg.numCores()) *
            _base_power_scale;
    _peak_dynamic_w = peak;
}

void
GpuPowerModel::buildUncore()
{
    // --- NoC: cores + memory partitions on one crossbar ---
    unsigned ports = _cfg.numCores() + _cfg.dram.channels;
    circuit::Router router(ports, _cfg.noc.link_bits, 8,
                           2.0e-3 /* ~2 mm links */, _t);
    _noc.area_mm2 = router.area() * 1e6 * 2.0;  // request + reply nets
    _noc.sub_leakage_w = router.leakage() * noc_leak_scale;
    _noc.gate_leakage_w = 0.1 * _noc.sub_leakage_w;
    _noc_flit_energy_j =
        (router.flitEnergy() + router.linkEnergy()) * noc_flit_scale;
    double noc_clock_cap = noc_clock_f_per_port_bit *
                           static_cast<double>(ports) *
                           _cfg.noc.link_bits;
    _noc_busy_w =
        noc_clock_cap * _t.vdd * _t.vdd * _cfg.clocks.uncoreHz();
    _noc.peak_dynamic_w =
        _noc_busy_w + _noc_flit_energy_j * _cfg.clocks.uncoreHz();

    // --- Memory controllers ---
    double if_bits = static_cast<double>(_cfg.dram.channels) *
                     _cfg.dram.channel_bits;
    _mc.sub_leakage_w = mc_static_w_per_bit * if_bits;
    _mc.gate_leakage_w = 0.08 * _mc.sub_leakage_w;
    _mc.area_mm2 = 0.08 * if_bits *
                   (_t.feature_m / 40e-9) * (_t.feature_m / 40e-9);
    _mc_request_energy_j = mc_request_nj * 1e-9;
    _mc_bit_energy_j = mc_bit_pj * 1e-12;
    _mc_busy_w = mc_busy_w_per_bit * if_bits;
    _mc.peak_dynamic_w =
        _mc_busy_w +
        _mc_bit_energy_j * if_bits * 4.0 * _cfg.clocks.dram_hz;

    // --- PCIe controller ---
    _pcie.sub_leakage_w = pcie_static_w_per_lane * _cfg.pcie.lanes;
    _pcie.gate_leakage_w = 0.0;
    _pcie.area_mm2 = 0.45 * _cfg.pcie.lanes / 16.0;
    _pcie_active_w = pcie_active_w_per_lane * _cfg.pcie.lanes;
    _pcie_byte_energy_j = pcie_pj_per_byte * 1e-12;
    _pcie.peak_dynamic_w =
        _pcie_active_w + _pcie_byte_energy_j * _cfg.pcie.lanes *
                             _cfg.pcie.gbps_per_lane * 1e9 / 10.0;

    // --- Shared L2 (absent on Tesla-class chips) ---
    if (_cfg.l2.present) {
        unsigned slice_bytes = _cfg.l2.total_bytes / _cfg.l2.slices;
        circuit::SramParams p;
        p.entries = slice_bytes / _cfg.l2.line_bytes;
        p.bits_per_entry = _cfg.l2.line_bytes * 8;
        p.banks = 4;
        p.device = tech::DeviceType::LSTP;
        circuit::SramArray slice(p, _t);
        _l2.area_mm2 = slice.area() * 1e6 * _cfg.l2.slices;
        _l2.sub_leakage_w =
            slice.numbers().leakage_w * _cfg.l2.slices * l2_leak_scale;
        _l2.gate_leakage_w =
            slice.numbers().gate_leak_w * _cfg.l2.slices * l2_leak_scale;
        _l2_access_energy_j = slice.readEnergy() * l2_dyn_scale;
        _l2.peak_dynamic_w = _l2_access_energy_j *
                             _cfg.clocks.uncoreHz() * _cfg.l2.slices /
                             4.0;
    }
}

PowerReport
GpuPowerModel::evaluate(const perf::ChipActivity &act) const
{
    CompiledPowerModel::Eval ev;
    _compiled->evaluate(act, ev);
    return _compiled->assembleReport(ev);
}

PowerReport
GpuPowerModel::evaluateAt(const perf::ChipActivity &act,
                          const std::vector<double> &block_temps_k)
    const
{
    if (block_temps_k.empty())
        return evaluate(act);
    CompiledPowerModel::Eval ev;
    _compiled->evaluateAt(act, block_temps_k, ev);
    return _compiled->assembleReport(ev);
}

double
GpuPowerModel::subLeakScaleAt(double temp_k) const
{
    return _compiled->subLeakScaleAt(temp_k);
}

thermal::BlockSet
GpuPowerModel::makeBlocks() const
{
    thermal::BlockSet set;
    set.num_clusters = _cfg.clusters;
    set.has_l2 = _cfg.l2.present;
    // Physical core footprint: the analytic components plus the
    // undifferentiated residual; the shared L2 gets its own block,
    // so the per-core L2 share folded into the report is excluded.
    double core_area = _core_model->totals().area_mm2 +
                       _cfg.calib.undiff_core_area_mm2;
    for (unsigned c = 0; c < _cfg.clusters; ++c) {
        set.names.push_back("cluster" + std::to_string(c));
        set.area_mm2.push_back(core_area * _cfg.cores_per_cluster);
    }
    if (set.has_l2) {
        set.names.push_back("l2");
        set.area_mm2.push_back(_l2.area_mm2);
    }
    set.names.push_back("uncore");
    set.area_mm2.push_back(_noc.area_mm2 + _mc.area_mm2 +
                           _pcie.area_mm2);
    set.names.push_back("dram");
    set.area_mm2.push_back(0.0); // off-package, board-level
    return set;
}

thermal::BlockSet
GpuPowerModel::thermalBlocks() const
{
    return _compiled->blocks();
}

std::vector<BlockPower>
GpuPowerModel::blockPowers(const perf::ChipActivity &act) const
{
    CompiledPowerModel::Eval ev;
    _compiled->evaluate(act, ev);
    return std::move(ev.blocks);
}

PowerReport
GpuPowerModel::staticReport() const
{
    perf::ChipActivity idle;
    idle.cores.resize(_cfg.numCores());
    idle.cluster_busy_cycles.assign(_cfg.clusters, 0);
    idle.shader_cycles = 1;
    idle.elapsed_s = 1.0;
    return evaluate(idle);
}

double
GpuPowerModel::area() const
{
    return _area_mm2;
}

double
GpuPowerModel::staticPower() const
{
    return _static_power_w;
}

double
GpuPowerModel::peakDynamicPower() const
{
    return _peak_dynamic_w;
}

} // namespace power
} // namespace gpusimpow
