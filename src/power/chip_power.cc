#include "power/chip_power.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "circuit/array.hh"
#include "circuit/interconnect.hh"
#include "common/logging.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace power {

namespace {

/**
 * Uncore fitted coefficients, calibrated against the GT240 top half
 * of Table V (NoC 1.484/1.229 W, MC 0.497/1.753 W, PCIe
 * 0.539/0.992 W static/dynamic at blackscholes).
 */
// NoC: busy-clock capacitance per port-bit (crossbar wiring, buffer
// flops, repeaters), and leakage scaling over the router model.
constexpr double noc_clock_f_per_port_bit = 0.42e-12;
constexpr double noc_leak_scale = 72.0;
constexpr double noc_flit_scale = 2.0;
// MC: per-channel static/busy power per interface bit, per-request
// scheduling energy, and per-transferred-bit PHY energy.
constexpr double mc_static_w_per_bit = 0.0036;
constexpr double mc_busy_w_per_bit = 0.0075;
constexpr double mc_request_nj = 0.85;
constexpr double mc_bit_pj = 5.0;
// PCIe Gen2 controller+PHY: per-lane leakage and L0 link-active
// power; per-byte transfer energy.
constexpr double pcie_static_w_per_lane = 0.0337;
constexpr double pcie_active_w_per_lane = 0.0620;
constexpr double pcie_pj_per_byte = 80.0;
// L2 dynamic scaling (tag + data + control per access).
constexpr double l2_dyn_scale = 2.0;
constexpr double l2_leak_scale = 1.5;

} // namespace

GpuPowerModel::GpuPowerModel(const GpuConfig &cfg)
    : _cfg(cfg),
      _t(tech::TechNode::make(cfg.tech.node_nm, cfg.tech.vdd,
                              cfg.tech.temperature,
                              cfg.tech.vdd_scale))
{
    // Empirically measured base *powers* (Section III-D) were fitted
    // at the nominal operating point; Eq. 1 scales them with V^2*f.
    double vs = _cfg.tech.vdd_scale;
    _base_power_scale = vs * vs * _cfg.clocks.freq_scale;
    _core_model = std::make_unique<CorePowerModel>(_cfg, _t);
    _dram_power =
        std::make_unique<dram::Gddr5Power>(_cfg.dram, _cfg.clocks.dram_hz);
    buildUncore();
}

void
GpuPowerModel::buildUncore()
{
    // --- NoC: cores + memory partitions on one crossbar ---
    unsigned ports = _cfg.numCores() + _cfg.dram.channels;
    circuit::Router router(ports, _cfg.noc.link_bits, 8,
                           2.0e-3 /* ~2 mm links */, _t);
    _noc.area_mm2 = router.area() * 1e6 * 2.0;  // request + reply nets
    _noc.sub_leakage_w = router.leakage() * noc_leak_scale;
    _noc.gate_leakage_w = 0.1 * _noc.sub_leakage_w;
    _noc_flit_energy_j =
        (router.flitEnergy() + router.linkEnergy()) * noc_flit_scale;
    double noc_clock_cap = noc_clock_f_per_port_bit *
                           static_cast<double>(ports) *
                           _cfg.noc.link_bits;
    _noc.peak_dynamic_w =
        noc_clock_cap * _t.vdd * _t.vdd * _cfg.clocks.uncoreHz() +
        _noc_flit_energy_j * _cfg.clocks.uncoreHz();

    // --- Memory controllers ---
    double if_bits = static_cast<double>(_cfg.dram.channels) *
                     _cfg.dram.channel_bits;
    _mc.sub_leakage_w = mc_static_w_per_bit * if_bits;
    _mc.gate_leakage_w = 0.08 * _mc.sub_leakage_w;
    _mc.area_mm2 = 0.08 * if_bits *
                   (_t.feature_m / 40e-9) * (_t.feature_m / 40e-9);
    _mc_request_energy_j = mc_request_nj * 1e-9;
    _mc_bit_energy_j = mc_bit_pj * 1e-12;
    _mc.peak_dynamic_w =
        mc_busy_w_per_bit * if_bits +
        _mc_bit_energy_j * if_bits * 4.0 * _cfg.clocks.dram_hz;

    // --- PCIe controller ---
    _pcie.sub_leakage_w = pcie_static_w_per_lane * _cfg.pcie.lanes;
    _pcie.gate_leakage_w = 0.0;
    _pcie.area_mm2 = 0.45 * _cfg.pcie.lanes / 16.0;
    _pcie_active_w = pcie_active_w_per_lane * _cfg.pcie.lanes;
    _pcie_byte_energy_j = pcie_pj_per_byte * 1e-12;
    _pcie.peak_dynamic_w =
        _pcie_active_w + _pcie_byte_energy_j * _cfg.pcie.lanes *
                             _cfg.pcie.gbps_per_lane * 1e9 / 10.0;

    // --- Shared L2 (absent on Tesla-class chips) ---
    if (_cfg.l2.present) {
        unsigned slice_bytes = _cfg.l2.total_bytes / _cfg.l2.slices;
        circuit::SramParams p;
        p.entries = slice_bytes / _cfg.l2.line_bytes;
        p.bits_per_entry = _cfg.l2.line_bytes * 8;
        p.banks = 4;
        p.device = tech::DeviceType::LSTP;
        circuit::SramArray slice(p, _t);
        _l2.area_mm2 = slice.area() * 1e6 * _cfg.l2.slices;
        _l2.sub_leakage_w =
            slice.numbers().leakage_w * _cfg.l2.slices * l2_leak_scale;
        _l2.gate_leakage_w =
            slice.numbers().gate_leak_w * _cfg.l2.slices * l2_leak_scale;
        _l2_access_energy_j = slice.readEnergy() * l2_dyn_scale;
        _l2.peak_dynamic_w = _l2_access_energy_j *
                             _cfg.clocks.uncoreHz() * _cfg.l2.slices /
                             4.0;
    }
}

PowerReport
GpuPowerModel::evaluate(const perf::ChipActivity &act) const
{
    PowerReport rep;
    double elapsed = act.elapsed_s > 0.0 ? act.elapsed_s : 1.0;
    rep.elapsed_s = elapsed;
    rep.gpu.name = "GPU";

    double cycles = act.shader_cycles > 0
                        ? static_cast<double>(act.shader_cycles)
                        : 1.0;
    double gpu_busy_frac =
        std::min(1.0, static_cast<double>(act.gpu_busy_cycles) / cycles);

    // Empirical base power (SectionIII-D): the global scheduler and
    // the per-cluster activation cost derived from the Fig. 4
    // staircase measurement.
    double cluster_base_total = 0.0;
    for (uint64_t busy : act.cluster_busy_cycles) {
        cluster_base_total += _cfg.calib.cluster_base_w *
                              _base_power_scale *
                              std::min(1.0,
                                       static_cast<double>(busy) / cycles);
    }
    double sched_w =
        _cfg.calib.global_sched_w * _base_power_scale * gpu_busy_frac;
    unsigned n_cores = _cfg.numCores();

    // L2 attribution: the paper's LDSTU "encapsulates ... the L2
    // caches"; spread the shared L2 across the cores' LDSTUs.
    ComponentStatics l2_share;
    double l2_dyn_w = 0.0;
    if (_cfg.l2.present) {
        l2_share.area_mm2 = _l2.area_mm2 / n_cores;
        l2_share.sub_leakage_w = _l2.sub_leakage_w / n_cores;
        l2_share.gate_leakage_w = _l2.gate_leakage_w / n_cores;
        l2_share.peak_dynamic_w = _l2.peak_dynamic_w / n_cores;
        double e_l2 = (act.mem.l2_reads + act.mem.l2_writes) *
                      _l2_access_energy_j;
        l2_dyn_w = e_l2 / elapsed / n_cores;
    }

    PowerNode &cores = rep.gpu.child("Cores");
    GSP_ASSERT(act.cores.size() == n_cores,
               "activity record does not match configuration");
    double analytic_dyn = 0.0;
    for (unsigned i = 0; i < n_cores; ++i) {
        PowerNode &core = cores.child("Core" + std::to_string(i));
        double resident_frac = std::min(
            1.0, static_cast<double>(act.cores[i].cycles_resident) /
                     cycles);
        double base_dyn = _cfg.calib.core_base_dyn_w *
                          _base_power_scale * resident_frac;
        _core_model->populate(core, act.cores[i], elapsed, base_dyn,
                              l2_share, l2_dyn_w);
        if (const PowerNode *wcu = core.find("WCU"))
            analytic_dyn += wcu->runtime_dynamic_w;
        if (const PowerNode *rf = core.find("Register File"))
            analytic_dyn += rf->runtime_dynamic_w;
        if (const PowerNode *ldst = core.find("LDSTU"))
            analytic_dyn += ldst->runtime_dynamic_w;
    }
    // Cluster activation (+0.692 W per active cluster on the GT240)
    // and the global work-distribution engine (+3.34 W, measured via
    // the first step of the Fig. 4 staircase). The paper folds both
    // into the cores' base/undifferentiated power; we keep them as
    // named nodes under Cores.
    PowerNode &cluster_base = cores.child("Cluster Base");
    cluster_base.runtime_dynamic_w = cluster_base_total;
    PowerNode &sched = cores.child("Global Scheduler");
    sched.runtime_dynamic_w = sched_w;

    // --- NoC ---
    PowerNode &noc = rep.gpu.child("NoC");
    noc.area_mm2 = _noc.area_mm2;
    noc.sub_leakage_w = _noc.sub_leakage_w;
    noc.gate_leakage_w = _noc.gate_leakage_w;
    noc.peak_dynamic_w = _noc.peak_dynamic_w;
    double noc_clock_cap =
        noc_clock_f_per_port_bit *
        static_cast<double>(_cfg.numCores() + _cfg.dram.channels) *
        _cfg.noc.link_bits;
    noc.runtime_dynamic_w =
        noc_clock_cap * _t.vdd * _t.vdd * _cfg.clocks.uncoreHz() *
            gpu_busy_frac +
        act.mem.noc_flits * _noc_flit_energy_j / elapsed;
    analytic_dyn += noc.runtime_dynamic_w;

    // --- Memory controller ---
    PowerNode &mc = rep.gpu.child("Memory Controller");
    mc.area_mm2 = _mc.area_mm2;
    mc.sub_leakage_w = _mc.sub_leakage_w;
    mc.gate_leakage_w = _mc.gate_leakage_w;
    mc.peak_dynamic_w = _mc.peak_dynamic_w;
    double if_bits = static_cast<double>(_cfg.dram.channels) *
                     _cfg.dram.channel_bits;
    double xfer_bits =
        static_cast<double>(act.mem.dram_read_bursts +
                            act.mem.dram_write_bursts) *
        _cfg.dram.burst_length * _cfg.dram.channel_bits;
    mc.runtime_dynamic_w =
        mc_busy_w_per_bit * if_bits * gpu_busy_frac +
        act.mem.mc_requests * _mc_request_energy_j / elapsed +
        xfer_bits * _mc_bit_energy_j / elapsed;
    analytic_dyn += mc.runtime_dynamic_w;

    // --- PCIe controller ---
    PowerNode &pcie = rep.gpu.child("PCIe Controller");
    pcie.area_mm2 = _pcie.area_mm2;
    pcie.sub_leakage_w = _pcie.sub_leakage_w;
    pcie.gate_leakage_w = _pcie.gate_leakage_w;
    pcie.peak_dynamic_w = _pcie.peak_dynamic_w;
    pcie.runtime_dynamic_w =
        _pcie_active_w * gpu_busy_frac +
        act.mem.pcie_bytes * _pcie_byte_energy_j / elapsed;

    rep.short_circuit_w = _cfg.calib.short_circuit_frac /
                          (1.0 + _cfg.calib.short_circuit_frac) *
                          analytic_dyn;

    // --- External DRAM ---
    dram::DramActivity da;
    da.activates = act.mem.dram_activates;
    da.read_bursts = act.mem.dram_read_bursts;
    da.write_bursts = act.mem.dram_write_bursts;
    da.elapsed_s = elapsed;
    double total_dram_cycles =
        elapsed * _cfg.clocks.dram_hz * _cfg.dram.channels;
    double util = total_dram_cycles > 0.0
                      ? static_cast<double>(act.mem.dram_bus_cycles) /
                            total_dram_cycles
                      : 0.0;
    da.row_open_frac = std::min(1.0, 4.0 * util);
    rep.dram_w = _dram_power->compute(da).total();

    return rep;
}

double
GpuPowerModel::subLeakScaleAt(double temp_k) const
{
    return tech::tempLeakFactorAt(temp_k) /
           tech::tempLeakFactorAt(_t.temperature);
}

thermal::BlockSet
GpuPowerModel::thermalBlocks() const
{
    thermal::BlockSet set;
    set.num_clusters = _cfg.clusters;
    set.has_l2 = _cfg.l2.present;
    // Physical core footprint: the analytic components plus the
    // undifferentiated residual; the shared L2 gets its own block,
    // so the per-core L2 share folded into the report is excluded.
    double core_area = _core_model->totals().area_mm2 +
                       _cfg.calib.undiff_core_area_mm2;
    for (unsigned c = 0; c < _cfg.clusters; ++c) {
        set.names.push_back("cluster" + std::to_string(c));
        set.area_mm2.push_back(core_area * _cfg.cores_per_cluster);
    }
    if (set.has_l2) {
        set.names.push_back("l2");
        set.area_mm2.push_back(_l2.area_mm2);
    }
    set.names.push_back("uncore");
    set.area_mm2.push_back(_noc.area_mm2 + _mc.area_mm2 +
                           _pcie.area_mm2);
    set.names.push_back("dram");
    set.area_mm2.push_back(0.0); // off-package, board-level
    return set;
}

std::vector<BlockPower>
GpuPowerModel::blockPowers(const PowerReport &rep,
                           const perf::ChipActivity &act) const
{
    thermal::BlockSet set = thermalBlocks();
    std::vector<BlockPower> bp(set.size());
    double elapsed = rep.elapsed_s > 0.0 ? rep.elapsed_s : 1.0;
    double cycles = act.shader_cycles > 0
                        ? static_cast<double>(act.shader_cycles)
                        : 1.0;
    unsigned n_cores = _cfg.numCores();

    // The per-core L2 share folded into each LDSTU (statics and the
    // access energy) moves back out into the dedicated L2 block.
    double l2_sub_share = 0.0, l2_gate_share = 0.0, l2_dyn_share = 0.0;
    if (_cfg.l2.present) {
        l2_sub_share = _l2.sub_leakage_w / n_cores;
        l2_gate_share = _l2.gate_leakage_w / n_cores;
        l2_dyn_share = (act.mem.l2_reads + act.mem.l2_writes) *
                       _l2_access_energy_j / elapsed / n_cores;
    }

    for (unsigned i = 0; i < n_cores; ++i) {
        const PowerNode *core =
            rep.gpu.find("Cores/Core" + std::to_string(i));
        GSP_ASSERT(core, "report misses Core", i);
        BlockPower &cluster = bp[i / _cfg.cores_per_cluster];
        cluster.dynamic_w += core->totalDynamic() - l2_dyn_share;
        cluster.sub_leak_w += core->totalSubLeakage() - l2_sub_share;
        cluster.fixed_w += core->totalGateLeakage() - l2_gate_share;
    }
    if (_cfg.l2.present) {
        BlockPower &l2 = bp[set.l2Index()];
        l2.dynamic_w = l2_dyn_share * n_cores;
        l2.sub_leak_w = l2_sub_share * n_cores;
        l2.fixed_w = l2_gate_share * n_cores;
    }

    // Cluster activation power lands in the cluster that earned it
    // (same formula evaluate() aggregates into the Cluster Base
    // node); the global work-distribution engine sits mid-die with
    // the uncore controllers.
    for (std::size_t c = 0; c < act.cluster_busy_cycles.size(); ++c) {
        double busy =
            static_cast<double>(act.cluster_busy_cycles[c]);
        bp[std::min<std::size_t>(c, _cfg.clusters - 1)].dynamic_w +=
            _cfg.calib.cluster_base_w * _base_power_scale *
            std::min(1.0, busy / cycles);
    }
    BlockPower &uncore = bp[set.uncoreIndex()];
    if (const PowerNode *sched = rep.gpu.find("Cores/Global Scheduler"))
        uncore.dynamic_w += sched->totalDynamic();
    for (const char *name :
         {"NoC", "Memory Controller", "PCIe Controller"}) {
        const PowerNode *node = rep.gpu.find(name);
        GSP_ASSERT(node, "report misses ", name);
        uncore.dynamic_w += node->totalDynamic();
        uncore.sub_leak_w += node->totalSubLeakage();
        uncore.fixed_w += node->totalGateLeakage();
    }

    // The external DRAM runs from its own supply and clock: neither
    // core-clock throttling nor die temperature moves it.
    bp[set.dramIndex()].fixed_w = rep.dram_w;
    return bp;
}

PowerReport
GpuPowerModel::evaluateAt(const perf::ChipActivity &act,
                          const std::vector<double> &block_temps_k)
    const
{
    PowerReport rep = evaluate(act);
    if (block_temps_k.empty())
        return rep;
    thermal::BlockSet set = thermalBlocks();
    GSP_ASSERT(block_temps_k.size() == set.size(),
               "temperature vector does not match block set");
    double r_uncore = subLeakScaleAt(block_temps_k[set.uncoreIndex()]);
    double l2_sub_share =
        _cfg.l2.present ? _l2.sub_leakage_w / _cfg.numCores() : 0.0;

    for (PowerNode &top : rep.gpu.children) {
        if (top.name == "Cores") {
            for (PowerNode &child : top.children) {
                if (child.name.rfind("Core", 0) != 0 ||
                    child.name.size() <= 4)
                    continue; // Cluster Base / Global Scheduler
                unsigned i = static_cast<unsigned>(
                    std::stoul(child.name.substr(4)));
                double r_cl = subLeakScaleAt(
                    block_temps_k[i / _cfg.cores_per_cluster]);
                child.scaleSubLeakage(r_cl);
                if (_cfg.l2.present) {
                    // The folded L2 share follows the L2 block, not
                    // the cluster it is reported under.
                    double r_l2 = subLeakScaleAt(
                        block_temps_k[set.l2Index()]);
                    for (PowerNode &part : child.children)
                        if (part.name == "LDSTU")
                            part.sub_leakage_w +=
                                l2_sub_share * (r_l2 - r_cl);
                }
            }
        } else {
            top.scaleSubLeakage(r_uncore);
        }
    }
    return rep;
}

PowerReport
GpuPowerModel::staticReport() const
{
    perf::ChipActivity idle;
    idle.cores.resize(_cfg.numCores());
    idle.cluster_busy_cycles.assign(_cfg.clusters, 0);
    idle.shader_cycles = 1;
    idle.elapsed_s = 1.0;
    return evaluate(idle);
}

double
GpuPowerModel::area() const
{
    return staticReport().area();
}

double
GpuPowerModel::staticPower() const
{
    return staticReport().staticPower();
}

double
GpuPowerModel::peakDynamicPower() const
{
    PowerReport rep = staticReport();
    double peak = rep.gpu.totalPeak();
    // Base power at full occupancy.
    peak += (_cfg.calib.global_sched_w +
             _cfg.calib.cluster_base_w * _cfg.clusters +
             _cfg.calib.core_base_dyn_w * _cfg.numCores()) *
            _base_power_scale;
    return peak;
}

} // namespace power
} // namespace gpusimpow
