/**
 * @file
 * Per-core power model: maps the SIMT core's architectural
 * components (WCU of Fig. 2, register file, execution units, LDSTU
 * of Fig. 3) onto circuit-layer primitives plus the empirical
 * execution-unit and base-power models of SectionIII-D. One
 * instance models one core; all cores of a chip are identical.
 */

#ifndef GPUSIMPOW_POWER_CORE_POWER_HH
#define GPUSIMPOW_POWER_CORE_POWER_HH

#include <memory>

#include "circuit/array.hh"
#include "circuit/interconnect.hh"
#include "circuit/logic.hh"
#include "config/gpu_config.hh"
#include "perf/activity.hh"
#include "power/report.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace power {

/** Static (activity-independent) properties of one component. */
struct ComponentStatics
{
    double area_mm2 = 0.0;
    double sub_leakage_w = 0.0;
    double gate_leakage_w = 0.0;
    double peak_dynamic_w = 0.0;
};

/** Power model of one SIMT core. */
class CorePowerModel
{
  public:
    /**
     * @param cfg full GPU configuration
     * @param t resolved technology node
     */
    CorePowerModel(const GpuConfig &cfg, const tech::TechNode &t);

    /**
     * Build the per-core subtree of the power report (the bottom
     * half of Table V) for one activity interval.
     * @param node output node (the core)
     * @param act this core's activity over the interval
     * @param elapsed_s interval duration
     * @param base_dyn_w externally computed base power (cluster and
     *        global scheduler share, SectionIII-D)
     * @param l2_share externally computed L2 statics/dynamics folded
     *        into the LDSTU (the paper: "the LDSTU encapsulates ...
     *        the L2 caches")
     */
    void populate(PowerNode &node, const perf::CoreActivity &act,
                  double elapsed_s, double base_dyn_w,
                  const ComponentStatics &l2_share,
                  double l2_share_dyn_w) const;

    /** Static properties of the whole core (sum of components). */
    ComponentStatics totals() const;

    /** Peak dynamic power of the execution units alone, W. */
    double euPeakDynamic() const;

  private:
    const GpuConfig &_cfg;
    tech::TechNode _t;
    double _fclk;
    /** V^2 scale of the empirical per-op calibration energies at the
     *  configured DVFS operating point (1.0 at the identity point). */
    double _calib_e_scale;

    // --- WCU ---
    std::unique_ptr<circuit::SramArray> _wst;
    std::unique_ptr<circuit::PriorityEncoder> _fetch_sched;
    std::unique_ptr<circuit::PriorityEncoder> _issue_sched;
    std::unique_ptr<circuit::SramArray> _icache;
    std::unique_ptr<circuit::InstructionDecoder> _decoder;
    std::unique_ptr<circuit::CamArray> _ibuffer;
    std::unique_ptr<circuit::CamArray> _scoreboard;  // null if absent
    std::unique_ptr<circuit::SramArray> _reconv_stack;

    // --- Register file ---
    std::unique_ptr<circuit::SramArray> _rf_bank;
    unsigned _rf_banks;
    std::unique_ptr<circuit::Crossbar> _rf_xbar;
    std::unique_ptr<circuit::SramArray> _collector;
    unsigned _collectors;

    // --- Execution units (areas analytic, energy empirical) ---
    ComponentStatics _eu;

    // --- LDSTU ---
    std::unique_ptr<circuit::Adder> _agu_adder;
    unsigned _agu_adders;
    std::unique_ptr<circuit::DffStorage> _coalescer;
    std::unique_ptr<circuit::SramArray> _smem_bank;
    unsigned _smem_banks;
    std::unique_ptr<circuit::Crossbar> _smem_addr_xbar;
    std::unique_ptr<circuit::Crossbar> _smem_data_xbar;
    std::unique_ptr<circuit::SramArray> _const_cache;
    std::unique_ptr<circuit::SramArray> _l1_tags;  // null without L1

    ComponentStatics wcuStatics() const;
    ComponentStatics rfStatics() const;
    ComponentStatics ldstStatics() const;

    double wcuEnergy(const perf::CoreActivity &act) const;
    double rfEnergy(const perf::CoreActivity &act) const;
    double euEnergy(const perf::CoreActivity &act) const;
    double ldstEnergy(const perf::CoreActivity &act) const;
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_CORE_POWER_HH
