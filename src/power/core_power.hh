/**
 * @file
 * Per-core power model: maps the SIMT core's architectural
 * components (WCU of Fig. 2, register file, execution units, LDSTU
 * of Fig. 3) onto circuit-layer primitives plus the empirical
 * execution-unit and base-power models of SectionIII-D. One
 * instance models one core; all cores of a chip are identical.
 */

#ifndef GPUSIMPOW_POWER_CORE_POWER_HH
#define GPUSIMPOW_POWER_CORE_POWER_HH

#include <array>
#include <memory>

#include "circuit/array.hh"
#include "circuit/interconnect.hh"
#include "circuit/logic.hh"
#include "config/gpu_config.hh"
#include "perf/activity.hh"
#include "tech/tech.hh"

namespace gpusimpow {
namespace power {

/** Static (activity-independent) properties of one component. */
struct ComponentStatics
{
    double area_mm2 = 0.0;
    double sub_leakage_w = 0.0;
    double gate_leakage_w = 0.0;
    double peak_dynamic_w = 0.0;
};

/**
 * Dense dynamic-energy coefficient rows of the four analytic core
 * components: J per counter increment, one entry per CoreActivity
 * counter in X-macro declaration order (perf::CoreCounterIndex).
 * The per-interval dynamic energy of a component is the dot product
 * of its row with the interval's counter vector — the flat form the
 * compiled power model (power/compiled.hh) evaluates.
 */
struct CoreDynCoefficients
{
    std::array<double, perf::core_activity_fields> wcu{};
    std::array<double, perf::core_activity_fields> rf{};
    std::array<double, perf::core_activity_fields> eu{};
    std::array<double, perf::core_activity_fields> ldst{};
};

/** Power model of one SIMT core. */
class CorePowerModel
{
  public:
    /**
     * @param cfg full GPU configuration
     * @param t resolved technology node
     */
    CorePowerModel(const GpuConfig &cfg, const tech::TechNode &t);

    /**
     * Extract the per-counter dynamic-energy coefficients of the
     * WCU, register file, execution units, and LDSTU — the circuit
     * models' per-access energies with the fitted dynamic scales and
     * the clock-distribution overhead folded in. This is the
     * coefficient-extraction half of the compiled power pipeline;
     * the legacy tree path evaluated the same products term by term.
     */
    void dynCoefficients(CoreDynCoefficients &out) const;

    /** Static properties of the WCU (Fig. 2 structures). */
    ComponentStatics wcuStatics() const;
    /** Static properties of the register file. */
    ComponentStatics rfStatics() const;
    /** Static properties of the execution units. */
    ComponentStatics euStatics() const { return _eu; }
    /** Static properties of the LDSTU (without the folded L2). */
    ComponentStatics ldstStatics() const;

    /** Static properties of the whole core (sum of components). */
    ComponentStatics totals() const;

    /** Peak dynamic power of the execution units alone, W. */
    double euPeakDynamic() const;

  private:
    const GpuConfig &_cfg;
    tech::TechNode _t;
    double _fclk;
    /** V^2 scale of the empirical per-op calibration energies at the
     *  configured DVFS operating point (1.0 at the identity point). */
    double _calib_e_scale;

    // --- WCU ---
    std::unique_ptr<circuit::SramArray> _wst;
    std::unique_ptr<circuit::PriorityEncoder> _fetch_sched;
    std::unique_ptr<circuit::PriorityEncoder> _issue_sched;
    std::unique_ptr<circuit::SramArray> _icache;
    std::unique_ptr<circuit::InstructionDecoder> _decoder;
    std::unique_ptr<circuit::CamArray> _ibuffer;
    std::unique_ptr<circuit::CamArray> _scoreboard;  // null if absent
    std::unique_ptr<circuit::SramArray> _reconv_stack;

    // --- Register file ---
    std::unique_ptr<circuit::SramArray> _rf_bank;
    unsigned _rf_banks;
    std::unique_ptr<circuit::Crossbar> _rf_xbar;
    std::unique_ptr<circuit::SramArray> _collector;
    unsigned _collectors;

    // --- Execution units (areas analytic, energy empirical) ---
    ComponentStatics _eu;

    // --- LDSTU ---
    std::unique_ptr<circuit::Adder> _agu_adder;
    unsigned _agu_adders;
    std::unique_ptr<circuit::DffStorage> _coalescer;
    std::unique_ptr<circuit::SramArray> _smem_bank;
    unsigned _smem_banks;
    std::unique_ptr<circuit::Crossbar> _smem_addr_xbar;
    std::unique_ptr<circuit::Crossbar> _smem_data_xbar;
    std::unique_ptr<circuit::SramArray> _const_cache;
    std::unique_ptr<circuit::SramArray> _l1_tags;  // null without L1
};

} // namespace power
} // namespace gpusimpow

#endif // GPUSIMPOW_POWER_CORE_POWER_HH
