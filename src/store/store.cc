#include "store/store.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpusimpow {
namespace store {

namespace {

/** The store's instrument set, registered once with descriptions. */
struct StoreMetrics
{
    obs::Counter &hit;
    obs::Counter &miss;
    obs::Counter &put;
    obs::Counter &put_error;
    obs::Counter &evict;
    obs::Counter &corrupt;
    obs::Gauge &entries;

    static StoreMetrics &instance()
    {
        obs::Registry &reg = obs::Registry::instance();
        static StoreMetrics m{
            reg.counter("store/hit",
                        "store fetches served from a persisted entry"),
            reg.counter("store/miss",
                        "store fetches with no entry for the key"),
            reg.counter("store/put", "snapshots persisted to the store"),
            reg.counter("store/put_error",
                        "store puts abandoned on I/O failure"),
            reg.counter("store/evict",
                        "entries evicted by the max_entries cap"),
            reg.counter("store/corrupt",
                        "entries skipped as corrupt at open or load"),
            reg.gauge("store/entries", "entries currently indexed"),
        };
        return m;
    }
};

/** FNV-1a over a byte span (keys embed newlines, never NUL). */
uint64_t
hashBytes(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One-line result record embedded in an entry: what the snapshot
 *  holds, for the manifest and human inspection — replay never reads
 *  it. Hex floats like every serialized value in the tree. */
std::string
resultRecord(const ActivitySnapshot &snap)
{
    double time_s = 0.0;
    for (const KernelSnapshot &k : snap.kernels)
        time_s += k.perf.time_s;
    return strformat("workload %s scale %u kernels %zu time_s %a "
                     "verified %d",
                     snap.workload.c_str(), snap.scale,
                     snap.kernels.size(), time_s,
                     snap.verified ? 1 : 0);
}

/**
 * Render one entry file: a line-oriented header around two
 * length-and-checksum framed byte sections (key, snapshot payload).
 * The trailing end marker makes truncation detectable even when the
 * snapshot section happens to parse.
 */
std::string
renderEntry(const std::string &key, const std::string &result,
            const std::string &payload)
{
    std::string out;
    out.reserve(key.size() + payload.size() + 256);
    out += SweepStore::entry_magic;
    out += '\n';
    out += strformat("key %zu fnv1a %016llx\n", key.size(),
                     static_cast<unsigned long long>(hashBytes(key)));
    out += key;
    out += '\n';
    out += "result ";
    out += result;
    out += '\n';
    out += strformat("snapshot %zu fnv1a %016llx\n", payload.size(),
                     static_cast<unsigned long long>(
                         hashBytes(payload)));
    out += payload;
    out += '\n';
    out += "end ";
    out += SweepStore::entry_magic;
    out += '\n';
    return out;
}

/** Parsed fields of a validated entry file. */
struct ParsedEntry
{
    std::string key;
    std::string result;
    std::string payload;
};

/** Take the text up to the next newline and advance past it. */
bool
takeLine(const std::string &text, std::size_t &pos, std::string &line)
{
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos)
        return false;
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
}

/** Parse a "<tag> <nbytes> fnv1a <hex>" section header followed by
 *  the framed bytes; false on any mismatch. */
bool
takeSection(const std::string &text, std::size_t &pos,
            const std::string &tag, std::string &bytes)
{
    std::string header;
    if (!takeLine(text, pos, header))
        return false;
    std::istringstream hs(header);
    std::string got_tag, fnv_kw, fnv_hex;
    std::size_t nbytes = 0;
    if (!(hs >> got_tag >> nbytes >> fnv_kw >> fnv_hex) ||
        got_tag != tag || fnv_kw != "fnv1a")
        return false;
    if (pos + nbytes + 1 > text.size())
        return false; // truncated mid-section
    bytes = text.substr(pos, nbytes);
    pos += nbytes;
    if (text[pos] != '\n')
        return false;
    ++pos;
    uint64_t want = 0;
    {
        std::istringstream xs(fnv_hex);
        xs >> std::hex >> want;
        if (xs.fail())
            return false;
    }
    return hashBytes(bytes) == want;
}

/** Validate and decompose one entry file; false (with a reason) on
 *  any corruption — the caller skips and reports, never aborts. */
bool
parseEntry(const std::string &text, ParsedEntry &entry,
           std::string &reason)
{
    std::size_t pos = 0;
    std::string line;
    if (!takeLine(text, pos, line) || line != SweepStore::entry_magic) {
        reason = "bad magic";
        return false;
    }
    if (!takeSection(text, pos, "key", entry.key)) {
        reason = "bad key section";
        return false;
    }
    if (!takeLine(text, pos, line) || !startsWith(line, "result ")) {
        reason = "bad result record";
        return false;
    }
    entry.result = line.substr(7);
    if (!takeSection(text, pos, "snapshot", entry.payload)) {
        reason = "bad snapshot section";
        return false;
    }
    if (!takeLine(text, pos, line) ||
        line != std::string("end ") + SweepStore::entry_magic) {
        reason = "missing end marker";
        return false;
    }
    return true;
}

/** Slurp a file; false on I/O error. */
bool
readFile(const std::filesystem::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        return false;
    out = ss.str();
    return true;
}

/** Write bytes to a temp file in the target's directory and rename
 *  into place — the atomicity half of the durability contract. */
bool
writeFileAtomic(const std::filesystem::path &path,
                const std::filesystem::path &tmp,
                const std::string &bytes)
{
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

SweepStore::SweepStore(std::filesystem::path dir, StoreOptions options)
    : _dir(std::move(dir)), _options(options)
{
    GSP_TRACE_SPAN("store/open");
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec)
        fatal("store: cannot create directory ", _dir.string(), ": ",
              ec.message());
    std::lock_guard<std::mutex> lock(_mutex);
    scanLocked();
    rewriteManifestLocked();
    StoreMetrics::instance().entries.set(
        static_cast<int64_t>(_entries.size()));
}

void
SweepStore::scanLocked()
{
    StoreMetrics &m = StoreMetrics::instance();
    // Sorted paths make entry seq (the eviction order) deterministic
    // for a freshly opened store.
    std::vector<std::filesystem::path> paths;
    for (const auto &de : std::filesystem::directory_iterator(_dir)) {
        if (de.path().extension() == ".entry")
            paths.push_back(de.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::filesystem::path &path : paths) {
        std::string text;
        ParsedEntry parsed;
        std::string reason = "unreadable";
        if (!readFile(path, text) ||
            !parseEntry(text, parsed, reason)) {
            warn("store: skipping corrupt entry ", path.string(), " (",
                 reason, ")");
            ++_corrupt_at_open;
            m.corrupt.add(1);
            continue;
        }
        Entry e;
        e.path = path;
        e.seq = _next_seq++;
        e.result = parsed.result;
        // Last writer wins on duplicate keys (two files can only
        // carry one key after an interrupted rewrite).
        _entries[parsed.key] = std::move(e);
    }
}

std::filesystem::path
SweepStore::pathForLocked(const std::string &key) const
{
    std::string base = strformat(
        "e%016llx", static_cast<unsigned long long>(hashBytes(key)));
    for (std::size_t probe = 0;; ++probe) {
        std::filesystem::path candidate =
            _dir / (probe == 0
                        ? base + ".entry"
                        : strformat("%s-%zu.entry", base.c_str(),
                                    probe));
        bool taken = false;
        for (const auto &kv : _entries) {
            if (kv.first != key && kv.second.path == candidate) {
                taken = true; // 64-bit FNV collision: probe onward
                break;
            }
        }
        if (!taken)
            return candidate;
    }
}

std::shared_ptr<const ActivitySnapshot>
SweepStore::fetch(const std::string &key)
{
    GSP_TRACE_SPAN("store/fetch");
    StoreMetrics &m = StoreMetrics::instance();
    std::filesystem::path path;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key);
        if (it == _entries.end()) {
            m.miss.add(1);
            return nullptr;
        }
        path = it->second.path;
    }

    std::string text;
    ParsedEntry parsed;
    std::string reason = "unreadable";
    if (readFile(path, text) && parseEntry(text, parsed, reason) &&
        parsed.key == key) {
        try {
            auto snap = std::make_shared<ActivitySnapshot>(
                ActivitySnapshot::parse(parsed.payload));
            m.hit.add(1);
            return snap;
        } catch (const FatalError &e) {
            reason = e.what();
        }
    } else if (parsed.key != key && reason == "unreadable" &&
               !text.empty()) {
        reason = "key mismatch";
    }

    // Checksummed framing passed at open but the entry no longer
    // loads (deleted file, torn rewrite, schema drift): drop it from
    // the index and treat the fetch as a miss.
    warn("store: dropping corrupt entry ", path.string(), " (", reason,
         ")");
    m.corrupt.add(1);
    m.miss.add(1);
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it != _entries.end() && it->second.path == path) {
        _entries.erase(it);
        rewriteManifestLocked();
        m.entries.set(static_cast<int64_t>(_entries.size()));
    }
    return nullptr;
}

bool
SweepStore::put(const std::string &key, const ActivitySnapshot &snapshot)
{
    GSP_TRACE_SPAN("store/put");
    StoreMetrics &m = StoreMetrics::instance();
    const std::string payload = snapshot.serialize();
    const std::string result = resultRecord(snapshot);
    const std::string bytes = renderEntry(key, result, payload);

    std::lock_guard<std::mutex> lock(_mutex);
    std::filesystem::path path = pathForLocked(key);
    std::filesystem::path tmp =
        _dir / strformat(".put-%zu.tmp", _tmp_counter++);
    if (!writeFileAtomic(path, tmp, bytes)) {
        warn("store: failed to persist entry ", path.string(),
             " — continuing without it");
        m.put_error.add(1);
        return false;
    }
    Entry e;
    e.path = std::move(path);
    e.seq = _next_seq++;
    e.result = result;
    _entries[key] = std::move(e);
    m.put.add(1);
    evictLocked();
    rewriteManifestLocked();
    m.entries.set(static_cast<int64_t>(_entries.size()));
    return true;
}

void
SweepStore::evictLocked()
{
    if (_options.max_entries == 0)
        return;
    StoreMetrics &m = StoreMetrics::instance();
    while (_entries.size() > _options.max_entries) {
        auto oldest = _entries.end();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (oldest == _entries.end() ||
                it->second.seq < oldest->second.seq)
                oldest = it;
        }
        std::error_code ec;
        std::filesystem::remove(oldest->second.path, ec);
        if (ec)
            warn("store: evicting ", oldest->second.path.string(),
                 " failed: ", ec.message());
        _entries.erase(oldest);
        m.evict.add(1);
    }
}

void
SweepStore::rewriteManifestLocked()
{
    // Advisory index for humans and tooling: the entry files are the
    // source of truth (open() rebuilds the index from them), so a
    // stale manifest can mislead a reader but never the store.
    std::string text;
    text += manifest_magic;
    text += '\n';
    for (const auto &kv : _entries) {
        text += kv.second.path.filename().string();
        text += ' ';
        text += kv.second.result;
        text += '\n';
    }
    std::filesystem::path manifest = _dir / "manifest";
    std::filesystem::path tmp =
        _dir / strformat(".manifest-%zu.tmp", _tmp_counter++);
    if (!writeFileAtomic(manifest, tmp, text))
        warn("store: failed to rewrite manifest in ", _dir.string());
}

bool
SweepStore::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.find(key) != _entries.end();
}

std::size_t
SweepStore::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

StoreHandle
openStore(const std::filesystem::path &dir, StoreOptions options)
{
    return std::make_shared<SweepStore>(dir, options);
}

} // namespace store
} // namespace gpusimpow
