/**
 * @file
 * Persistent content-addressed store of phase-1 activity snapshots —
 * the durable extension of the engine's in-run memo cache. Entries
 * are keyed by the scenario's snapshot key (timing fingerprint +
 * workload identity, extended with the trace options that shape the
 * snapshot payload); the payload is the existing versioned hex-float
 * snapshot text plus a small result record, so a warm store answers
 * any sweep over power-only axes without a single timing capture —
 * across process lifetimes, not just within one run.
 *
 * Durability contract: entries are written to a temp file in the
 * store directory and atomically renamed into place, so a reader (or
 * a reopened store) never observes a partial entry — a crash mid-put
 * loses at most the entry being written. Loading is corruption
 * tolerant: entries failing the magic, length, or checksum
 * validation are skipped and reported (warn + `store/corrupt`
 * counter), never fatal. See docs/sweep_service.md.
 */

#ifndef GPUSIMPOW_STORE_STORE_HH
#define GPUSIMPOW_STORE_STORE_HH

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/snapshot.hh"

namespace gpusimpow {
namespace store {

/** Tuning knobs of a SweepStore. */
struct StoreOptions
{
    /**
     * Entry-count cap: a put that would grow the store past this
     * evicts the oldest entries (by insertion order, reopen-stable
     * through file write times) first. 0 = unbounded.
     */
    std::size_t max_entries = 0;
};

/**
 * On-disk snapshot store over one directory. Thread-safe: the engine
 * sinks snapshots from worker threads and the service fetches on
 * behalf of concurrent jobs against the same instance.
 */
class SweepStore
{
  public:
    /** File format magic of one entry (version-bumped on change). */
    static constexpr const char *entry_magic =
        "gpusimpow-store-entry v1";
    /** Manifest header line. */
    static constexpr const char *manifest_magic =
        "gpusimpow-store-manifest v1";

    /**
     * Open (creating the directory if needed) and index every valid
     * entry; corrupt entries are skipped and reported. fatal() only
     * when the directory itself cannot be created or read.
     */
    explicit SweepStore(std::filesystem::path dir,
                        StoreOptions options = {});

    /**
     * Load the snapshot stored under `key`, or nullptr on a miss.
     * An entry that fails validation at load time is dropped from
     * the index (and reported) rather than surfacing an error.
     */
    std::shared_ptr<const ActivitySnapshot>
    fetch(const std::string &key);

    /**
     * Persist a snapshot under `key` (atomic write + rename),
     * replacing any previous entry. Returns false (after a warn) on
     * I/O failure — a store put must never abort the sweep that
     * produced the snapshot.
     */
    bool put(const std::string &key, const ActivitySnapshot &snapshot);

    /** True when an entry for `key` is indexed. */
    bool contains(const std::string &key) const;

    /** Indexed entry count. */
    std::size_t size() const;

    /** Entries skipped as corrupt when the store was opened. */
    std::size_t corruptAtOpen() const { return _corrupt_at_open; }

    const std::filesystem::path &dir() const { return _dir; }

  private:
    struct Entry
    {
        std::filesystem::path path;
        /** Eviction order: lower = older. */
        std::size_t seq = 0;
        /** One-line result record, for the manifest. */
        std::string result;
    };

    void scanLocked();
    void rewriteManifestLocked();
    void evictLocked();
    std::filesystem::path pathForLocked(const std::string &key) const;

    std::filesystem::path _dir;
    StoreOptions _options;
    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
    std::size_t _next_seq = 0;
    std::size_t _corrupt_at_open = 0;
    std::size_t _tmp_counter = 0;
};

/** Shared ownership of one open store — what SweepSession and the
 *  service hold (the single store instance is the dedupe point). */
using StoreHandle = std::shared_ptr<SweepStore>;

/** Open a store directory and wrap it in a handle. */
StoreHandle openStore(const std::filesystem::path &dir,
                      StoreOptions options = {});

} // namespace store
} // namespace gpusimpow

#endif // GPUSIMPOW_STORE_STORE_HH
