/**
 * @file
 * Rodinia learning/imaging workloads: kmeans (2 kernels), backprop
 * (2 kernels), and heartwall (1 kernel, constant-cache heavy).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_LEARNING_HH
#define GPUSIMPOW_WORKLOADS_WL_LEARNING_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/** kmeans: distance/membership kernel + atomic centroid update. */
class Kmeans : public Workload
{
  public:
    explicit Kmeans(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _points;
    unsigned _clusters;
    unsigned _dims;
    std::vector<float> _features;   // points x dims
    std::vector<float> _centroids;  // clusters x dims
    uint32_t _addr_features = 0;
    uint32_t _addr_centroids = 0;
    uint32_t _addr_membership = 0;
    uint32_t _addr_counts = 0;
    uint32_t _addr_sums = 0;        // fixed-point accumulators
};

/** backprop: layer-forward with SMEM reduction + weight adjust. */
class Backprop : public Workload
{
  public:
    explicit Backprop(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _in;     // input layer size
    unsigned _hid;    // hidden layer size
    std::vector<float> _input;
    std::vector<float> _weights;    // (in x hid)
    std::vector<float> _delta;      // hid
    uint32_t _addr_input = 0;
    uint32_t _addr_weights = 0;
    uint32_t _addr_hidden = 0;
    uint32_t _addr_delta = 0;
    uint32_t _addr_weights_out = 0;
};

/** heartwall: window tracking against a constant-memory template. */
class Heartwall : public Workload
{
  public:
    explicit Heartwall(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _dim;       // square image dimension
    unsigned _win = 5;   // correlation window
    std::vector<float> _image;
    std::vector<float> _template;
    uint32_t _addr_image = 0;
    uint32_t _addr_out = 0;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_LEARNING_HH
