/**
 * @file
 * Four-kernel parallel merge sort (CUDA SDK flavor).
 */

#include "workloads/wl_mergesort.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

namespace {
constexpr unsigned sort_threads = 128;  // threads for kernel 1
} // namespace

MergeSort::MergeSort(unsigned scale)
    : Workload("mergesort"), _chunks(32 * scale), _chunk(256)
{
    GSP_ASSERT(_chunks % 2 == 0, "mergesort needs chunk pairs");
}

std::string
MergeSort::description() const
{
    return "Parallel merge-sort";
}

std::string
MergeSort::origin() const
{
    return "CUDA SDK";
}

std::vector<KernelLaunch>
MergeSort::prepare(perf::Gpu &gpu)
{
    const unsigned n = _chunks * _chunk;
    _keys = randomInts(n, 0x4D53, 1000000);
    _addr_keys = gpu.allocator().alloc(n * 4);
    _addr_ranks = gpu.allocator().alloc(n * 4);
    _addr_limits = gpu.allocator().alloc((n / 4) * 4);
    _addr_out = gpu.allocator().alloc(n * 4);
    gpu.memcpyToDevice(_addr_keys, _keys.data(), n * 4);

    std::vector<KernelLaunch> seq;

    // ---- mergeSort1: odd-even transposition sort per chunk ----
    {
        KernelBuilder b("mergeSortShared", 14, _chunk * 4);
        b.mov(0, S(SpecialReg::TidX));
        b.imul(1, S(SpecialReg::CtaIdX), I(_chunk));
        // Load two keys per thread into shared memory.
        for (unsigned half = 0; half < 2; ++half) {
            b.iadd(2, R(0), I(half * sort_threads));
            b.iadd(3, R(1), R(2));
            b.imad(3, R(3), I(4), I(_addr_keys));
            b.ldg(4, R(3));
            b.imul(5, R(2), I(4));
            b.sts(R(5), R(4));
        }
        b.bar();
        // Odd-even phases with predicated compare-exchange.
        b.mov(6, I(0));   // phase
        auto loop = b.newLabel();
        auto done = b.newLabel();
        b.bind(loop);
        b.setp(0, Cmp::GE, CmpType::U32, R(6), I(_chunk));
        b.braIf(0, false, done, done);
        // idx = 2*tid + (phase & 1)
        b.iand(7, R(6), I(1));
        b.imad(8, R(0), I(2), R(7));
        // valid = idx + 1 < chunk
        b.iadd(9, R(8), I(1));
        b.setp(1, Cmp::LT, CmpType::U32, R(9), I(_chunk));
        b.imul(10, R(8), I(4));
        b.pred(1).lds(11, R(10));
        b.pred(1).lds(12, R(10), 4);
        b.imin(13, R(11), R(12));
        b.imax(11, R(11), R(12));
        b.pred(1).sts(R(10), R(13));
        b.pred(1).sts(R(10), R(11), 4);
        b.bar();
        b.iadd(6, R(6), I(1));
        b.jump(loop);
        b.bind(done);
        // Write the sorted chunk back.
        for (unsigned half = 0; half < 2; ++half) {
            b.iadd(2, R(0), I(half * sort_threads));
            b.imul(5, R(2), I(4));
            b.lds(4, R(5));
            b.iadd(3, R(1), R(2));
            b.imad(3, R(3), I(4), I(_addr_keys));
            b.stg(R(3), R(4));
        }
        b.exit();
        KernelLaunch k;
        k.label = "mergeSort1";
        k.prog = b.finish();
        k.launch.grid = {_chunks, 1};
        k.launch.block = {sort_threads, 1};
        seq.push_back(std::move(k));
    }

    // ---- mergeSort2: rank computation via binary search ----
    // Blocks 2p rank chunk 2p's keys inside chunk 2p+1 (strict <);
    // blocks 2p+1 rank chunk 2p+1's keys inside chunk 2p (<=),
    // giving a stable merge position for every key.
    {
        KernelBuilder b("mergeSortRanks", 14);
        b.mov(0, S(SpecialReg::TidX));
        b.iand(1, S(SpecialReg::CtaIdX), I(1));        // parity
        b.ishr(2, S(SpecialReg::CtaIdX), I(1));        // pair index
        // own chunk = 2*pair + parity; sibling = 2*pair + 1-parity
        b.imad(3, R(2), I(2), R(1));                   // own chunk id
        b.isub(4, I(1), R(1));
        b.imad(4, R(2), I(2), R(4));                   // sibling id
        // key = keys[own*chunk + tid]
        b.imad(5, R(3), I(_chunk), R(0));
        b.imad(6, R(5), I(4), I(_addr_keys));
        b.ldg(7, R(6));                                // key
        // Branchless binary search over the sibling chunk. A
        // lower_bound needs up to log2(chunk)+1 steps because the
        // lo = mid+1 move does not halve exactly; every step is
        // guarded with a lo < hi "continue" flag so extra steps are
        // no-ops once converged.
        b.mov(8, I(0));                                // lo
        b.mov(9, I(_chunk));                           // hi
        b.imul(10, R(4), I(_chunk));                   // sibling base
        unsigned steps = 1;
        for (unsigned c = _chunk; c > 1; c /= 2)
            ++steps;
        for (unsigned it = 0; it < steps; ++it) {
            b.setp(0, Cmp::LT, CmpType::U32, R(8), R(9));  // continue?
            b.iadd(11, R(8), R(9));
            b.ishr(11, R(11), I(1));                   // mid
            b.iadd(12, R(10), R(11));
            b.imad(12, R(12), I(4), I(_addr_keys));
            b.ldg(13, R(12));                          // v
            // parity 0: v < key ; parity 1: v <= key
            b.setp(1, Cmp::LT, CmpType::U32, R(13), R(7));
            b.setp(2, Cmp::LE, CmpType::U32, R(13), R(7));
            // Pick strict/loose comparison by block parity (uniform
            // per block, so the selects do not diverge).
            b.setp(3, Cmp::EQ, CmpType::U32, R(1), I(0));
            b.selp(12, 1, I(1), I(0));  // strict result as int
            b.selp(13, 2, I(1), I(0));  // loose result as int
            b.selp(12, 3, R(12), R(13));   // chosen
            b.selp(6, 0, I(1), I(0));      // continue flag as int
            b.isub(13, I(1), R(12));       // !chosen
            b.iand(13, R(13), R(6));       // hi-update flag
            b.iand(12, R(12), R(6));       // lo-update flag
            b.setp(1, Cmp::NE, CmpType::U32, R(12), I(0));
            b.setp(2, Cmp::NE, CmpType::U32, R(13), I(0));
            b.iadd(6, R(11), I(1));        // mid + 1
            b.selp(8, 1, R(6), R(8));      // lo = p1 ? mid+1 : lo
            b.selp(9, 2, R(11), R(9));     // hi = p2 ? mid : hi
        }
        // Recompute the ranks address clobbered during the search.
        b.imad(5, R(3), I(_chunk), R(0));
        // ranks[own*chunk + tid] = lo
        b.imad(6, R(5), I(4), I(_addr_ranks));
        b.stg(R(6), R(8));
        b.exit();
        KernelLaunch k;
        k.label = "mergeSort2";
        k.prog = b.finish();
        k.launch.grid = {_chunks, 1};
        k.launch.block = {_chunk, 1};
        seq.push_back(std::move(k));
    }

    // ---- mergeSort3: rank/limit fixup (the ~1 ms short kernel the
    // paper flags as a measurement artifact: it processes its data
    // in place and cannot be re-run) ----
    {
        const unsigned fixup_iters = 1600;
        KernelBuilder b("mergeSortLimits", 8);
        emitGlobalTid(b, 0);
        b.imad(1, R(0), I(4), I(_addr_ranks));
        b.ldg(2, R(1));                    // rank value
        // Only the first 8 lanes of each warp do the fixup (the
        // kernel is latency-, not throughput-bound).
        b.mov(7, S(SpecialReg::LaneId));
        b.setp(1, Cmp::LT, CmpType::U32, R(7), I(8));
        b.mov(3, I(0));
        auto loop = b.newLabel();
        auto done = b.newLabel();
        b.bind(loop);
        b.setp(0, Cmp::GE, CmpType::U32, R(3), I(fixup_iters));
        b.braIf(0, false, done, done);
        // Two Galois-LFSR steps per iteration (hash-style fixup).
        for (unsigned u = 0; u < 2; ++u) {
            b.pred(1).iand(4, R(2), I(1));
            b.pred(1).isub(5, I(0), R(4));
            b.pred(1).iand(5, R(5), I(0xB400));
            b.pred(1).ishr(2, R(2), I(1));
            b.pred(1).ixor(2, R(2), R(5));
        }
        b.iadd(3, R(3), I(1));
        b.jump(loop);
        b.bind(done);
        b.iadd(2, R(2), R(0));
        b.imad(6, R(0), I(4), I(_addr_limits));
        b.stg(R(6), R(2));
        b.exit();
        KernelLaunch k;
        k.label = "mergeSort3";
        k.prog = b.finish();
        k.launch.grid = {32, 1};
        k.launch.block = {256, 1};
        // In-place rank fixup: cannot be repeated for measurement
        // (SectionV-A measurement-artifact discussion).
        k.repeatable = false;
        seq.push_back(std::move(k));
    }

    // ---- mergeSort4: scatter keys to merged positions ----
    {
        KernelBuilder b("mergeSortMerge", 12);
        b.mov(0, S(SpecialReg::TidX));
        b.ishr(1, S(SpecialReg::CtaIdX), I(1));        // pair
        // element index within full array
        b.imul(2, S(SpecialReg::CtaIdX), I(_chunk));
        b.iadd(2, R(2), R(0));
        b.imad(3, R(2), I(4), I(_addr_keys));
        b.ldg(4, R(3));                                // key
        b.imad(3, R(2), I(4), I(_addr_ranks));
        b.ldg(5, R(3));                                // rank
        // merged position = pair_base + tid + rank
        b.imul(6, R(1), I(2 * _chunk));
        b.iadd(6, R(6), R(0));
        b.iadd(6, R(6), R(5));
        b.imad(6, R(6), I(4), I(_addr_out));
        b.stg(R(6), R(4));
        b.exit();
        KernelLaunch k;
        k.label = "mergeSort4";
        k.prog = b.finish();
        k.launch.grid = {_chunks, 1};
        k.launch.block = {_chunk, 1};
        seq.push_back(std::move(k));
    }

    return seq;
}

bool
MergeSort::verify(perf::Gpu &gpu) const
{
    const unsigned n = _chunks * _chunk;
    std::vector<uint32_t> out(n);
    gpu.memcpyToHost(out.data(), _addr_out, n * 4);
    // Every chunk pair must now be one sorted run that is a
    // permutation of the input pair.
    for (unsigned p = 0; p < _chunks / 2; ++p) {
        std::vector<uint32_t> want(_keys.begin() + p * 2 * _chunk,
                                   _keys.begin() + (p + 1) * 2 * _chunk);
        std::sort(want.begin(), want.end());
        for (unsigned i = 0; i < 2 * _chunk; ++i) {
            if (out[p * 2 * _chunk + i] != want[i])
                return false;
        }
    }
    // mergeSort3 result check: replicate the LFSR fixup on the host.
    std::vector<uint32_t> ranks(n);
    std::vector<uint32_t> limits(n / 4);
    gpu.memcpyToHost(ranks.data(), _addr_ranks, n * 4);
    gpu.memcpyToHost(limits.data(), _addr_limits, (n / 4) * 4);
    for (unsigned g = 0; g < 8192 && g < n / 4; ++g) {
        uint32_t v = ranks[g];
        if (g % 32 < 8) {   // only the first 8 lanes run the fixup
            for (unsigned it = 0; it < 1600 * 2; ++it) {
                uint32_t lsb = v & 1;
                v = (v >> 1) ^ ((0u - lsb) & 0xB400u);
            }
        }
        if (limits[g] != v + g)
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
