/**
 * @file
 * bfs: the Rodinia breadth-first-search benchmark (2 kernels),
 * irregular control flow and uncoalesced neighbor accesses.
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_GRAPH_HH
#define GPUSIMPOW_WORKLOADS_WL_GRAPH_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/** Frontier-based BFS over a random CSR graph. */
class Bfs : public Workload
{
  public:
    explicit Bfs(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _nodes;
    unsigned _degree;
    std::vector<uint32_t> _row_offsets;
    std::vector<uint32_t> _edges;
    std::vector<uint32_t> _host_cost;
    unsigned _levels = 0;
    uint32_t _addr_rows = 0;
    uint32_t _addr_edges = 0;
    uint32_t _addr_frontier = 0;
    uint32_t _addr_updating = 0;
    uint32_t _addr_visited = 0;
    uint32_t _addr_cost = 0;

    void buildGraph();
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_GRAPH_HH
