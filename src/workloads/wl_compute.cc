/**
 * @file
 * matmul and blackscholes implementations.
 */

#include "workloads/wl_compute.hh"

#include <cmath>

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

namespace {
constexpr unsigned tile = 16;
} // namespace

// ----------------------------------------------------------------
// matmul
// ----------------------------------------------------------------

MatMul::MatMul(unsigned scale)
    : Workload("matmul"), _n(64 * scale)
{
}

std::string
MatMul::description() const
{
    return "Matrix-matrix multiplication";
}

std::string
MatMul::origin() const
{
    return "CUDA SDK";
}

std::vector<KernelLaunch>
MatMul::prepare(perf::Gpu &gpu)
{
    const unsigned n = _n;
    _a = randomFloats(n * n, 0xAA17, -1.0f, 1.0f);
    _b = randomFloats(n * n, 0xBB18, -1.0f, 1.0f);
    _addr_a = gpu.allocator().alloc(n * n * 4);
    _addr_b = gpu.allocator().alloc(n * n * 4);
    _addr_c = gpu.allocator().alloc(n * n * 4);
    gpu.memcpyToDevice(_addr_a, _a.data(), n * n * 4);
    gpu.memcpyToDevice(_addr_b, _b.data(), n * n * 4);

    // Shared memory: As tile at 0, Bs tile at tile*tile*4.
    const unsigned bs_base = tile * tile * 4;
    KernelBuilder b("matrixMul", 18, 2 * tile * tile * 4);
    b.mov(0, S(SpecialReg::TidX));
    b.mov(1, S(SpecialReg::TidY));
    b.imad(2, S(SpecialReg::CtaIdY), I(tile), R(1));   // row
    b.imad(3, S(SpecialReg::CtaIdX), I(tile), R(0));   // col
    b.mov(4, F(0.0f));                                 // acc
    b.mov(5, I(0));                                    // tile index
    b.imul(14, R(1), I(tile * 4));   // As row base (bytes)
    b.imad(16, R(0), I(4), I(bs_base));  // Bs column base (bytes)

    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(5), I(_n / tile));
    b.braIf(0, false, done, done);

    // Load A[row][t*tile + tidx] into As[tidy][tidx].
    b.imad(6, R(5), I(tile), R(0));
    b.imad(7, R(2), I(n), R(6));
    b.imad(7, R(7), I(4), I(_addr_a));
    b.ldg(8, R(7));
    b.imad(9, R(0), I(4), R(14));   // smem offset = tidy*64 + tidx*4
    b.sts(R(9), R(8));
    // Load B[t*tile + tidy][col] into Bs[tidy][tidx].
    b.imad(10, R(5), I(tile), R(1));
    b.imad(11, R(10), I(n), R(3));
    b.imad(11, R(11), I(4), I(_addr_b));
    b.ldg(12, R(11));
    b.sts(R(9), R(12), static_cast<int32_t>(bs_base));
    b.bar();

    // acc += As[tidy][k] * Bs[k][tidx], unrolled.
    for (unsigned k = 0; k < tile; ++k) {
        b.lds(13, R(14), static_cast<int32_t>(k * 4));
        b.lds(15, R(16), static_cast<int32_t>(k * tile * 4));
        b.ffma(4, R(13), R(15), R(4));
    }
    b.bar();
    b.iadd(5, R(5), I(1));
    b.jump(loop);
    b.bind(done);

    b.imad(6, R(2), I(n), R(3));
    b.imad(6, R(6), I(4), I(_addr_c));
    b.stg(R(6), R(4));
    b.exit();

    KernelLaunch launch;
    launch.label = "matrixMul";
    launch.prog = b.finish();
    launch.launch.grid = {n / tile, n / tile};
    launch.launch.block = {tile, tile};
    return {std::move(launch)};
}

bool
MatMul::verify(perf::Gpu &gpu) const
{
    const unsigned n = _n;
    std::vector<float> c(static_cast<size_t>(n) * n);
    gpu.memcpyToHost(c.data(), _addr_c, n * n * 4);
    for (unsigned row = 0; row < n; ++row) {
        for (unsigned col = 0; col < n; ++col) {
            float acc = 0.0f;
            for (unsigned k = 0; k < n; ++k)
                acc = _a[row * n + k] * _b[k * n + col] + acc;
            if (!closeEnough(c[row * n + col], acc, 1e-3f))
                return false;
        }
    }
    return true;
}

// ----------------------------------------------------------------
// blackscholes
// ----------------------------------------------------------------

namespace {

constexpr float bs_riskfree = 0.02f;
constexpr float bs_volatility = 0.30f;
constexpr float ln2 = 0.69314718f;
constexpr float log2e = 1.44269504f;
constexpr float inv_sqrt_2pi = 0.39894228f;

/** Cumulative normal distribution, Abramowitz-Stegun polynomial. */
float
cndHost(float d)
{
    const float a1 = 0.31938153f;
    const float a2 = -0.356563782f;
    const float a3 = 1.781477937f;
    const float a4 = -1.821255978f;
    const float a5 = 1.330274429f;
    float ad = std::fabs(d);
    float k = 1.0f / (1.0f + 0.2316419f * ad);
    float poly =
        k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))));
    float pdf =
        inv_sqrt_2pi * std::exp2f(-d * d * 0.5f * log2e);
    float cnd = 1.0f - pdf * poly;
    return d < 0.0f ? 1.0f - cnd : cnd;
}

} // namespace

void
BlackScholes::priceHost(float s, float x, float t, float r, float v,
                        float &call, float &put)
{
    float sqrt_t = std::sqrt(t);
    float d1 = (std::log2f(s / x) * ln2 + (r + 0.5f * v * v) * t) /
               (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    float cnd1 = cndHost(d1);
    float cnd2 = cndHost(d2);
    float exp_rt = std::exp2f(-r * t * log2e);
    call = s * cnd1 - x * exp_rt * cnd2;
    put = x * exp_rt * (1.0f - cnd2) - s * (1.0f - cnd1);
}

BlackScholes::BlackScholes(unsigned scale)
    : Workload("blackscholes"), _n(16384 * scale)
{
}

std::string
BlackScholes::description() const
{
    return "Black-Scholes PDE solver";
}

std::string
BlackScholes::origin() const
{
    return "CUDA SDK";
}

namespace {

/**
 * Emit CND(R(d)) -> R(out). Uses registers r16..r22 as scratch.
 * Leaves d intact.
 */
void
emitCnd(KernelBuilder &b, unsigned d, unsigned out)
{
    const float a1 = 0.31938153f;
    const float a2 = -0.356563782f;
    const float a3 = 1.781477937f;
    const float a4 = -1.821255978f;
    const float a5 = 1.330274429f;
    // r16 = |d|
    b.fsub(16, F(0.0f), R(d));
    b.fmax(16, R(d), R(16));
    // r17 = k = 1 / (1 + 0.2316419 |d|)
    b.ffma(17, R(16), F(0.2316419f), F(1.0f));
    b.rcp(17, R(17));
    // r18 = poly(k), Horner.
    b.ffma(18, R(17), F(a5), F(a4));
    b.ffma(18, R(17), R(18), F(a3));
    b.ffma(18, R(17), R(18), F(a2));
    b.ffma(18, R(17), R(18), F(a1));
    b.fmul(18, R(18), R(17));
    // r19 = pdf = inv_sqrt_2pi * 2^(-d^2/2 * log2e)
    b.fmul(19, R(d), R(d));
    b.fmul(19, R(19), F(-0.5f * log2e));
    b.ex2(19, R(19));
    b.fmul(19, R(19), F(inv_sqrt_2pi));
    // r20 = cnd = 1 - pdf*poly
    b.fmul(20, R(19), R(18));
    b.fsub(20, F(1.0f), R(20));
    // out = d < 0 ? 1 - cnd : cnd
    b.setp(1, Cmp::LT, CmpType::F32, R(d), F(0.0f));
    b.fsub(21, F(1.0f), R(20));
    b.selp(out, 1, R(21), R(20));
}

} // namespace

std::vector<KernelLaunch>
BlackScholes::prepare(perf::Gpu &gpu)
{
    const unsigned n = _n;
    _s = randomFloats(n, 0xB511, 5.0f, 30.0f);
    _x = randomFloats(n, 0xB512, 1.0f, 100.0f);
    _t = randomFloats(n, 0xB513, 0.25f, 10.0f);
    _addr_s = gpu.allocator().alloc(n * 4);
    _addr_x = gpu.allocator().alloc(n * 4);
    _addr_t = gpu.allocator().alloc(n * 4);
    _addr_call = gpu.allocator().alloc(n * 4);
    _addr_put = gpu.allocator().alloc(n * 4);
    gpu.memcpyToDevice(_addr_s, _s.data(), n * 4);
    gpu.memcpyToDevice(_addr_x, _x.data(), n * 4);
    gpu.memcpyToDevice(_addr_t, _t.data(), n * 4);

    KernelBuilder b("BlackScholes", 24);
    emitGlobalTid(b, 0);
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(0), I(n));
    b.braIf(0, false, done, done);

    b.imad(1, R(0), I(4), I(_addr_s));
    b.ldg(2, R(1));                     // S
    b.imad(1, R(0), I(4), I(_addr_x));
    b.ldg(3, R(1));                     // X
    b.imad(1, R(0), I(4), I(_addr_t));
    b.ldg(4, R(1));                     // T

    // r5 = sqrt(T); r6 = v*sqrt(T)
    b.fsqrt(5, R(4));
    b.fmul(6, R(5), F(bs_volatility));
    // r7 = d1 = (ln(S/X) + (r + v^2/2) T) / (v sqrt(T))
    b.rcp(7, R(3));
    b.fmul(7, R(2), R(7));
    b.lg2(7, R(7));
    b.fmul(7, R(7), F(ln2));
    b.ffma(7, R(4),
           F(bs_riskfree + 0.5f * bs_volatility * bs_volatility),
           R(7));
    b.rcp(8, R(6));
    b.fmul(7, R(7), R(8));
    // r9 = d2 = d1 - v sqrt(T)
    b.fsub(9, R(7), R(6));

    emitCnd(b, 7, 10);    // r10 = CND(d1)
    emitCnd(b, 9, 11);    // r11 = CND(d2)

    // r12 = X * exp(-rT)
    b.fmul(12, R(4), F(-bs_riskfree * log2e));
    b.ex2(12, R(12));
    b.fmul(12, R(12), R(3));
    // call = S*cnd1 - Xexp*cnd2
    b.fmul(13, R(2), R(10));
    b.fmul(14, R(12), R(11));
    b.fsub(13, R(13), R(14));
    // put = Xexp*(1-cnd2) - S*(1-cnd1)
    b.fsub(14, F(1.0f), R(11));
    b.fmul(14, R(12), R(14));
    b.fsub(15, F(1.0f), R(10));
    b.fmul(15, R(2), R(15));
    b.fsub(14, R(14), R(15));

    b.imad(1, R(0), I(4), I(_addr_call));
    b.stg(R(1), R(13));
    b.imad(1, R(0), I(4), I(_addr_put));
    b.stg(R(1), R(14));

    b.imul(22, S(SpecialReg::NTidX), S(SpecialReg::NCtaIdX));
    b.iadd(0, R(0), R(22));
    b.jump(loop);
    b.bind(done);
    b.exit();

    KernelLaunch launch;
    launch.label = "BlackScholes";
    launch.prog = b.finish();
    launch.launch.grid = {48, 1};
    launch.launch.block = {256, 1};
    return {std::move(launch)};
}

bool
BlackScholes::verify(perf::Gpu &gpu) const
{
    std::vector<float> call(_n);
    std::vector<float> put(_n);
    gpu.memcpyToHost(call.data(), _addr_call, _n * 4);
    gpu.memcpyToHost(put.data(), _addr_put, _n * 4);
    for (unsigned i = 0; i < _n; ++i) {
        float want_call = 0.0f;
        float want_put = 0.0f;
        priceHost(_s[i], _x[i], _t[i], bs_riskfree, bs_volatility,
                  want_call, want_put);
        if (!closeEnough(call[i], want_call, 2e-2f))
            return false;
        if (!closeEnough(put[i], want_put, 2e-2f))
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
